// Multi-vulnerability discovery (the §III-C extension of the paper).
//
// msgtool contains two distinct buffer overflows in different functions,
// triggered by different inputs (encode-mode titles vs decode-mode
// bodies). The extension clusters the faulty logs by fault signature and
// runs the StatSym pipeline once per cluster, identifying each vulnerable
// path in turn — "one-by-one through an iterative process until all
// vulnerabilities and paths are identified".
//
// Run with: go run ./examples/multibug
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/workload"
)

func main() {
	app, err := apps.Get("msgtool")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== %s: %s\n\n", app.Name, app.Description)

	corpus, err := workload.BuildCorpus(app, workload.Options{SampleRate: 0.3, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	multi, err := core.RunMulti(app.Program(), corpus, core.Config{Spec: app.Spec})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("faulty logs form %d clusters:\n", len(multi.Clusters))
	for i, cl := range multi.Clusters {
		fmt.Printf("  cluster %d: %s in %s (%d runs)\n", i+1, cl.FaultKind, cl.FaultFunc, cl.Runs)
	}
	fmt.Println()

	for i, rep := range multi.Reports {
		cl := multi.Clusters[i]
		if !rep.Found() {
			fmt.Printf("cluster %d (%s): vulnerable path NOT found\n", i+1, cl.FaultFunc)
			continue
		}
		fmt.Printf("cluster %d: found %s in %s (%d paths, %v)\n",
			i+1, rep.Vuln.Kind, rep.Vuln.Func, rep.TotalPaths,
			(rep.StatTime + rep.SymTime).Round(time.Millisecond))

		// Replay each witness: it must reproduce its own cluster's fault.
		res, err := interp.Run(app.Program(), rep.Vuln.Witness, interp.Config{})
		if err != nil {
			log.Fatal(err)
		}
		if !res.Faulty() || res.FaultFunc != cl.FaultFunc {
			log.Fatalf("cluster %d witness reproduced %s in %s, want fault in %s",
				i+1, res.Fault, res.FaultFunc, cl.FaultFunc)
		}
		fmt.Printf("  witness replay: crash in %s reproduced (mode %q)\n",
			res.FaultFunc, rep.Vuln.Witness.Args[0])
	}
	if multi.Found() != 2 {
		log.Fatalf("expected both vulnerabilities, found %d", multi.Found())
	}
	fmt.Println("\nboth vulnerabilities identified and reproduced.")
}
