// Sensitivity study (§VII-D, Fig. 10 of the paper).
//
// Sweeps the log sampling rate from 20% to 100% on polymorph and CTree and
// reports the time split between the statistical analysis module and the
// statistics-guided symbolic execution module, together with the log
// volume and detour counts. The paper's qualitative findings to look for:
// StatSym succeeds at every rate (even 20%), statistical-analysis cost
// grows with the sampling rate (larger logs), and sparser logs yield more
// detours / more candidate paths.
//
// Run with: go run ./examples/sensitivity
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/bench"
)

func main() {
	rates := []float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	rows, err := bench.Figure10(context.Background(), []string{"polymorph", "ctree"}, rates, bench.DefaultSeed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(bench.FormatFigure10(rows))

	// Verify the headline claim: the vulnerable path is identified at
	// every sampling rate, including the lowest.
	for _, r := range rows {
		if !r.Found {
			log.Fatalf("%s at %.0f%% sampling: vulnerable path NOT found", r.Program, r.Rate*100)
		}
	}
	fmt.Println("\nStatSym identified the vulnerable path at every sampling rate (20%-100%).")
}
