// Quickstart: the paper's motivating example (Fig. 2) end to end.
//
// A small program guards an assertion behind a loop driven by a symbolic
// integer. We compile it, let the symbolic executor prove the assertion
// failure reachable, and replay the produced witness input on the concrete
// VM to confirm the fault — the full workflow of the library in ~80 lines.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/bytecode"
	"repro/internal/interp"
	"repro/internal/symexec"
)

// The sample source of Fig. 2a, ported to MiniC: vul_func faults when its
// argument reaches 3, and f1's loop passes 0..x-1 for the symbolic x.
const src = `
func vul_func(int a) void {
  if (a >= 3) {
    assert(0);
  }
  return;
}

func f1(int x) void {
  if (x >= 1000 || x < 0) {
    return;
  }
  int i = 0;
  while (i < x) {
    vul_func(i);
    i = i + 1;
  }
  print(i);
  return;
}

func main() int {
  int m = input_int("sym_m");
  f1(m);
  return 0;
}
`

func main() {
	prog := bytecode.MustCompile("fig2", src)

	// Symbolic execution: m is symbolic (input_int registers it), every
	// branch forks, and the assert(0) oracle reports the reachable fault.
	ex := symexec.New(prog, nil, symexec.DefaultOptions())
	res := ex.Run()
	if !res.Found() {
		log.Fatalf("expected a vulnerability, got %+v", res)
	}
	v := res.Vulns[0]
	fmt.Printf("found: %s in %s at %s\n", v.Kind, v.Func, v.Pos)
	fmt.Printf("explored %d paths, %d forks, %d solver checks\n",
		res.Paths, res.Forks, res.SolverChecks)

	fmt.Println("vulnerable path (function entry/exit locations):")
	for _, loc := range v.Path {
		fmt.Println("  ", loc)
	}
	fmt.Println("path constraints:")
	for _, c := range v.Constraints {
		fmt.Println("  ", c.String(ex.Table))
	}
	m := v.Witness.Ints["sym_m"]
	fmt.Printf("witness input: sym_m = %d\n", m)

	// Concrete replay: the witness must drive the real interpreter into
	// the same assertion failure.
	concrete, err := interp.Run(prog, v.Witness, interp.Config{})
	if err != nil {
		log.Fatal(err)
	}
	if !concrete.Faulty() {
		log.Fatal("witness did not reproduce the fault")
	}
	fmt.Printf("concrete replay: %s in %s — reproduced\n",
		concrete.Fault, concrete.FaultFunc)
}
