// Polymorph case study (§VII-C1 of the paper).
//
// Reproduces the full StatSym pipeline on the Bugbench polymorph port:
// collect 100 correct + 100 faulty sampled logs, construct and rank
// predicates (Table V), build candidate vulnerable paths (Fig. 9), run
// statistics-guided symbolic execution, and compare against the pure
// KLEE-style baseline (the polymorph rows of Table IV).
//
// Run with: go run ./examples/polymorph
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	app, err := apps.Get("polymorph")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== %s: %s\n\n", app.Name, app.Description)

	// Step 1: emulate user runs and collect partially-sampled logs.
	corpus, err := workload.BuildCorpus(app, workload.Options{SampleRate: 0.3, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	runs, locs, vars := corpus.Counts()
	fmt.Printf("collected %d runs over %d locations / %d variables at 30%% sampling\n\n",
		runs, locs, vars)

	// Step 2+3: statistical analysis and guided symbolic execution.
	rep, err := core.Run(app.Program(), corpus, core.Config{Spec: app.Spec})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("top 10 predicates (Table V):")
	for i, p := range rep.Analysis.Top(10) {
		fmt.Printf("  P%-2d %-48s @ %s\n", i+1, p.String(), p.Loc)
	}
	fmt.Println("\ncandidate vulnerable paths (Fig. 9):")
	for i, cand := range rep.PathRes.Candidates {
		fmt.Printf("  %d. (avg score %.3f) %s\n", i+1, cand.AvgScore, cand)
	}

	if !rep.Found() {
		log.Fatal("StatSym did not find the vulnerable path")
	}
	fmt.Printf("\nStatSym: found %s in %s — %d paths explored, %v total\n",
		rep.Vuln.Kind, rep.Vuln.Func, rep.TotalPaths,
		(rep.StatTime + rep.SymTime).Round(time.Millisecond))
	name := rep.Vuln.Witness.Args[2]
	fmt.Printf("witness: polymorph -h -f <%d-byte name> (buffer is 512 bytes)\n\n", len(name))

	// Step 4: the pure baseline for comparison.
	pure := core.RunPure(app.Program(), app.Spec, 20_000, 20_000_000, 2*time.Minute)
	if pure.Found() {
		fmt.Printf("pure symbolic execution: found after %d paths, %v\n",
			pure.Paths, pure.Elapsed.Round(time.Millisecond))
		speedup := float64(pure.Elapsed) / float64(rep.StatTime+rep.SymTime)
		fmt.Printf("speedup from statistical guidance: %.1fx (paths: %d -> %d)\n",
			speedup, pure.Paths, rep.TotalPaths)
	} else {
		fmt.Println("pure symbolic execution failed within budget")
	}
}
