// Web-server case study (§VII-C2 of the paper): thttpd's defang overflow.
//
// Demonstrates the scenario the paper leads with: a server-class program
// whose request-parsing loops defeat pure symbolic execution (state
// explosion — "Failed" in Table IV), while StatSym's candidate path and
// the len(str) predicate steer the executor to the defang buffer overflow
// and emit a concrete exploit request.
//
// Run with: go run ./examples/webserver
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	app, err := apps.Get("thttpd")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== %s: %s\n\n", app.Name, app.Description)

	// Pure symbolic execution first: it must drown in the per-character
	// request-scanning forks.
	fmt.Println("-- pure symbolic execution (KLEE baseline)")
	pure := core.RunPure(app.Program(), app.Spec, 20_000, 5_000_000, 60*time.Second)
	if pure.Found() {
		fmt.Printf("   unexpectedly found the bug after %d paths\n", pure.Paths)
	} else {
		reason := "budget exhausted"
		if pure.Exhausted {
			reason = "state space exploded (out of memory)"
		}
		fmt.Printf("   FAILED: %s after %d paths / %d live states\n\n",
			reason, pure.Paths, pure.MaxLive)
	}

	// StatSym: logs → predicates → candidate path → guided search.
	fmt.Println("-- StatSym")
	corpus, err := workload.BuildCorpus(app, workload.Options{SampleRate: 0.3, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := core.Run(app.Program(), corpus, core.Config{Spec: app.Spec})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   statistical analysis: %v (%d detours, %d candidate paths)\n",
		rep.StatTime.Round(time.Millisecond), rep.Detours(), len(rep.PathRes.Candidates))
	if !rep.Found() {
		log.Fatal("StatSym did not find the vulnerable path")
	}
	faultEnter := trace.Location{Func: rep.Vuln.Func, Kind: trace.EventEnter}
	if p := rep.Analysis.BestAt(faultEnter); p != nil {
		fmt.Printf("   gating predicate at the fault site: %s\n", p)
	}
	fmt.Printf("   guided symbolic execution: %v, %d paths (candidate %d of %d)\n",
		rep.SymTime.Round(time.Millisecond), rep.TotalPaths,
		rep.CandidateUsed, len(rep.PathRes.Candidates))
	fmt.Printf("   vulnerable path: %s ... %s (%d locations)\n",
		rep.Vuln.Path[0], rep.Vuln.Path[len(rep.Vuln.Path)-1], len(rep.Vuln.Path))

	// The witness is a concrete HTTP request; replay it.
	req := rep.Vuln.Witness.Strs["request"]
	fmt.Printf("   exploit request: %d bytes (%q...)\n", len(req), head(req, 24))
	res, err := interp.Run(app.Program(), rep.Vuln.Witness, interp.Config{})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Faulty() {
		log.Fatal("witness did not crash the server")
	}
	fmt.Printf("   replay: %s in %s — server crash reproduced\n", res.Fault, res.FaultFunc)
}

func head(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}
