// Package summary implements the compositional-execution layer of the
// engine: scope policies deciding which functions the symbolic executor
// interprets, a per-function bytecode effect analysis backing havoc
// summaries for out-of-scope calls, and a sharded cache memoizing mined
// per-function path summaries keyed by function bytecode hash.
//
// The package is deliberately independent of the executor: it knows about
// bytecode, the solver's constraint language, and nothing else, so the
// executor (internal/symexec) can consume it without an import cycle.
package summary

import (
	"fmt"
	"sort"
	"strings"
)

// Policy decides which functions are in scope for interpretation. Calls to
// out-of-scope functions are replaced by havoc summaries (fresh symbolic
// return plus the callee's declared side-effect set). A nil *Policy treats
// every function as in scope.
//
// Policies are immutable after construction and safe for concurrent use.
type Policy struct {
	all   bool
	names map[string]bool // explicit in-scope set when !all
	excl  map[string]bool // exclusions when all
}

// AllInScope is the default policy: every function is interpreted.
func AllInScope() *Policy { return &Policy{all: true} }

// ParsePolicy parses a -scope flag value:
//
//	""            everything in scope (same as "all")
//	"all"         everything in scope
//	"all,-f,-g"   everything except f and g
//	"f,g,h"       exactly f, g, h (plus main, which is always in scope)
//
// Mixing a plain list with "-name" exclusions outside the "all" form is an
// error.
func ParsePolicy(spec string) (*Policy, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "all" {
		return AllInScope(), nil
	}
	parts := strings.Split(spec, ",")
	p := &Policy{}
	for _, raw := range parts {
		item := strings.TrimSpace(raw)
		if item == "" {
			continue
		}
		switch {
		case item == "all":
			p.all = true
		case strings.HasPrefix(item, "-"):
			name := strings.TrimPrefix(item, "-")
			if name == "" {
				return nil, fmt.Errorf("summary: empty exclusion in scope %q", spec)
			}
			if p.excl == nil {
				p.excl = make(map[string]bool)
			}
			p.excl[name] = true
		default:
			if p.names == nil {
				p.names = make(map[string]bool)
			}
			p.names[item] = true
		}
	}
	if p.all && p.names != nil {
		return nil, fmt.Errorf("summary: scope %q mixes \"all\" with an explicit list", spec)
	}
	if !p.all && p.excl != nil && p.names == nil {
		// "-f,-g" without "all": treat as all-minus-exclusions.
		p.all = true
	}
	if !p.all && p.names == nil {
		return nil, fmt.Errorf("summary: scope %q selects no functions", spec)
	}
	if !p.all && p.excl != nil {
		return nil, fmt.Errorf("summary: scope %q mixes a list with exclusions", spec)
	}
	return p, nil
}

// InScope reports whether the named function is interpreted under this
// policy. main and the synthetic $init function are always in scope — the
// entry point cannot be havocked. Nil policies cover everything.
func (p *Policy) InScope(name string) bool {
	if p == nil {
		return true
	}
	if name == "main" || name == "$init" {
		return true
	}
	if p.all {
		return !p.excl[name]
	}
	return p.names[name]
}

// CoversAll reports whether the policy interprets every function (the
// differential-mode precondition: with full coverage, summarize mode must
// detect exactly what full interpretation detects).
func (p *Policy) CoversAll() bool {
	return p == nil || (p.all && len(p.excl) == 0)
}

// String renders the policy in -scope flag syntax.
func (p *Policy) String() string {
	if p.CoversAll() {
		return "all"
	}
	if p.all {
		var excl []string
		for n := range p.excl {
			excl = append(excl, "-"+n)
		}
		sort.Strings(excl)
		return strings.Join(append([]string{"all"}, excl...), ",")
	}
	var names []string
	for n := range p.names {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ",")
}
