package summary

import (
	"sync"
	"sync/atomic"
)

// Cache is a process-wide, race-safe store of mined function summaries,
// shared across candidate attempts (and across frontier workers) following
// the sharded-cache pattern of solver.SharedCache. Entries are keyed by
// function bytecode hash, so structurally identical functions — and the
// same function across repeated candidate verifications — share one mining
// effort.
//
// Mining is a pure, deterministic function of the bytecode, so serving a
// cached summary returns exactly what local mining would have computed;
// hit/miss counts here are timing dependent under concurrency and belong
// in obs telemetry, never in deterministic Report counters.
type Cache struct {
	shards [cacheShards]cacheShard

	hits   atomic.Int64
	misses atomic.Int64
	stores atomic.Int64
	mined  atomic.Int64
	failed atomic.Int64
}

const cacheShards = 16

type cacheShard struct {
	mu sync.Mutex
	m  map[uint64]*FnSummary
}

// NewCache returns an empty summary cache. Summaries are small (bounded by
// the mining budget) and keyed by content hash, so there is no eviction:
// the population is bounded by the number of distinct function bodies seen.
func NewCache() *Cache {
	c := &Cache{}
	for i := range c.shards {
		c.shards[i].m = make(map[uint64]*FnSummary)
	}
	return c
}

func (c *Cache) shard(key uint64) *cacheShard {
	return &c.shards[key%cacheShards]
}

// Lookup returns the cached summary for key. The returned *FnSummary is
// shared and must be treated as immutable.
func (c *Cache) Lookup(key uint64) (*FnSummary, bool) {
	if c == nil {
		return nil, false
	}
	sh := c.shard(key)
	sh.mu.Lock()
	s, ok := sh.m[key]
	sh.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return s, ok
}

// Store publishes a mined summary (or a Failed negative entry) for key.
// First writer wins; a concurrent duplicate mine stores the identical
// value, so dropping the loser is harmless.
func (c *Cache) Store(key uint64, s *FnSummary) {
	if c == nil || s == nil {
		return
	}
	sh := c.shard(key)
	sh.mu.Lock()
	if _, ok := sh.m[key]; !ok {
		sh.m[key] = s
	}
	sh.mu.Unlock()
	c.stores.Add(1)
	if s.Failed {
		c.failed.Add(1)
	} else {
		c.mined.Add(1)
	}
}

// Len returns the number of cached summaries across shards.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// Counters is a snapshot of the cache telemetry.
type Counters struct {
	Hits, Misses, Stores, Mined, Failed int64
}

// Counters snapshots the cache telemetry (approximate under concurrency —
// these feed obs metrics and bench hit-rate reporting, not Report
// determinism).
func (c *Cache) Counters() Counters {
	if c == nil {
		return Counters{}
	}
	return Counters{
		Hits:   c.hits.Load(),
		Misses: c.misses.Load(),
		Stores: c.stores.Load(),
		Mined:  c.mined.Load(),
		Failed: c.failed.Load(),
	}
}
