package summary

import (
	"hash/fnv"
	"sort"

	"repro/internal/bytecode"
	"repro/internal/minic"
)

// FnEffects is the per-function side-effect set derived from bytecode:
// which global slots the function may write (transitively), whether it may
// write through a buffer, and whether it is eligible for path-summary
// mining. Havoc summaries for out-of-scope calls are built from this
// record: every possibly-written global is replaced by a fresh symbolic
// value and every buffer argument is smeared when WritesBuf holds.
type FnEffects struct {
	// WritesGlobals lists global slots the function or any transitive
	// callee may store to (sorted, deduplicated).
	WritesGlobals []int
	// ReadsGlobals lists global slots possibly loaded (sorted).
	ReadsGlobals []int
	// WritesBuf marks possible writes through buffer values (bufwrite
	// anywhere in the transitive call graph). Buffers are passed by
	// reference, so a havocked call must smear its buffer arguments.
	WritesBuf bool
	// UsesBuiltin marks any builtin use: input channels, buffer and string
	// operations, prints, assertions. Builtins can fault, allocate fresh
	// solver variables, and touch the input registry, so their presence
	// disqualifies a function from summary mining.
	UsesBuiltin bool
	// MayFault marks possible faults (assert/abort, buffer and string
	// oracles, division/modulo). Havoc replaces the callee wholesale, so
	// faults inside out-of-scope code go undetected — callers surface this
	// in the documented soundness caveat.
	MayFault bool
	// Calls lists direct callee indices (sorted, deduplicated).
	Calls []int
	// Summarizable marks leaf functions over int parameters with an int or
	// void result and no side effects at all: no calls, no builtins, no
	// global access, no buffers, no division. Exactly the fragment whose
	// complete behavior a finite set of (entry constraints → return
	// expression) path summaries can capture.
	Summarizable bool
}

// Analyze derives the effect record of every function in prog, transitively
// closed over the call graph (indexed by Fn.Index). The analysis is a
// fixpoint over direct effects, so mutual recursion converges.
func Analyze(prog *bytecode.Program) []FnEffects {
	n := len(prog.Funcs)
	fx := make([]FnEffects, n)
	writes := make([]map[int]bool, n)
	reads := make([]map[int]bool, n)

	// Direct effects.
	for i, fn := range prog.Funcs {
		e := &fx[i]
		writes[i] = make(map[int]bool)
		reads[i] = make(map[int]bool)
		calls := make(map[int]bool)
		divmod := false
		nonIntOps := false
		for _, in := range fn.Code {
			switch in.Op {
			case bytecode.OpStoreGlobal:
				writes[i][in.A] = true
			case bytecode.OpLoadGlobal:
				reads[i][in.A] = true
			case bytecode.OpCall:
				calls[in.A] = true
			case bytecode.OpBuiltin:
				e.UsesBuiltin = true
				switch minic.Builtin(in.A) {
				case minic.BuiltinBufWrite:
					e.WritesBuf = true
					e.MayFault = true
				case minic.BuiltinBufRead, minic.BuiltinChar,
					minic.BuiltinAssert, minic.BuiltinAbort:
					e.MayFault = true
				}
			case bytecode.OpBin:
				if op := minic.BinOp(in.A); op == minic.OpDiv || op == minic.OpMod {
					divmod = true
					e.MayFault = true
				}
			case bytecode.OpNewBuf, bytecode.OpConstStr:
				nonIntOps = true
			}
		}
		for c := range calls {
			e.Calls = append(e.Calls, c)
		}
		sort.Ints(e.Calls)
		// Static summarizability filter: a leaf over ints with no effects.
		// The miner re-checks dynamically (e.g. a nonlinear multiply still
		// aborts mining), so this only needs to be sound, not tight.
		e.Summarizable = len(e.Calls) == 0 && !e.UsesBuiltin && !divmod &&
			!nonIntOps && len(writes[i]) == 0 && len(reads[i]) == 0 &&
			fn.Name != bytecode.InitFuncName &&
			(fn.Ret == minic.TypeInt || fn.Ret == minic.TypeVoid)
		for _, t := range fn.ParamTypes {
			if t != minic.TypeInt {
				e.Summarizable = false
			}
		}
	}

	// Transitive closure (fixpoint: effects flow from callee to caller).
	for changed := true; changed; {
		changed = false
		for i := range fx {
			for _, c := range fx[i].Calls {
				if c < 0 || c >= n {
					continue
				}
				for g := range writes[c] {
					if !writes[i][g] {
						writes[i][g] = true
						changed = true
					}
				}
				for g := range reads[c] {
					if !reads[i][g] {
						reads[i][g] = true
						changed = true
					}
				}
				if fx[c].WritesBuf && !fx[i].WritesBuf {
					fx[i].WritesBuf = true
					changed = true
				}
				if fx[c].UsesBuiltin && !fx[i].UsesBuiltin {
					fx[i].UsesBuiltin = true
					changed = true
				}
				if fx[c].MayFault && !fx[i].MayFault {
					fx[i].MayFault = true
					changed = true
				}
			}
		}
	}
	for i := range fx {
		fx[i].WritesGlobals = sortedKeys(writes[i])
		fx[i].ReadsGlobals = sortedKeys(reads[i])
	}
	return fx
}

func sortedKeys(m map[int]bool) []int {
	if len(m) == 0 {
		return nil
	}
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// FnHash returns a content hash of the function's bytecode — the summary
// cache key. Positions and the function name are excluded (identical bodies
// share summaries); the signature (param count/types, return type) is mixed
// in because summaries are expressed over canonical parameter variables.
// Only leaf functions are summarized, so call operands never smuggle in
// context the hash misses.
func FnHash(fn *bytecode.Fn) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	word := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	word(uint64(len(fn.ParamTypes)))
	for _, t := range fn.ParamTypes {
		word(uint64(t))
	}
	word(uint64(fn.Ret))
	word(uint64(fn.NumLocals))
	for _, in := range fn.Code {
		word(uint64(in.Op))
		word(uint64(int64(in.A)))
		word(uint64(int64(in.B)))
		word(uint64(in.Imm))
		if in.Str != "" {
			h.Write([]byte(in.Str))
		}
	}
	return h.Sum64()
}

// HashProgram returns the per-function hash table for prog, indexed by
// Fn.Index. Computed once per run and shared read-only across executors.
func HashProgram(prog *bytecode.Program) []uint64 {
	out := make([]uint64, len(prog.Funcs))
	for i, fn := range prog.Funcs {
		out[i] = FnHash(fn)
	}
	return out
}
