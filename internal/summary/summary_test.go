package summary

import (
	"sync"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/solver"
)

func TestParsePolicyForms(t *testing.T) {
	cases := []struct {
		spec    string
		in, out []string
		covers  bool
		str     string
	}{
		{"", []string{"main", "f", "g"}, nil, true, "all"},
		{"all", []string{"main", "f", "g"}, nil, true, "all"},
		{"all,-f,-g", []string{"main", "h"}, []string{"f", "g"}, false, "all,-f,-g"},
		{"-g,-f", []string{"main", "h"}, []string{"f", "g"}, false, "all,-f,-g"},
		{"f, g", []string{"main", "f", "g"}, []string{"h"}, false, "f,g"},
	}
	for _, c := range cases {
		p, err := ParsePolicy(c.spec)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", c.spec, err)
		}
		for _, n := range c.in {
			if !p.InScope(n) {
				t.Errorf("%q: %q should be in scope", c.spec, n)
			}
		}
		for _, n := range c.out {
			if p.InScope(n) {
				t.Errorf("%q: %q should be out of scope", c.spec, n)
			}
		}
		if p.CoversAll() != c.covers {
			t.Errorf("%q: CoversAll = %v, want %v", c.spec, p.CoversAll(), c.covers)
		}
		if p.String() != c.str {
			t.Errorf("%q: String = %q, want %q", c.spec, p.String(), c.str)
		}
	}
}

func TestParsePolicyErrors(t *testing.T) {
	for _, spec := range []string{"all,f", "f,-g", "-", ","} {
		if _, err := ParsePolicy(spec); err == nil {
			t.Errorf("ParsePolicy(%q): expected error", spec)
		}
	}
}

func TestPolicyEntryAlwaysInScope(t *testing.T) {
	p, err := ParsePolicy("all,-main,-$init")
	if err != nil {
		t.Fatal(err)
	}
	if !p.InScope("main") || !p.InScope("$init") {
		t.Error("main/$init must never leave scope")
	}
	var nilPolicy *Policy
	if !nilPolicy.InScope("anything") || !nilPolicy.CoversAll() {
		t.Error("nil policy must cover everything")
	}
}

const effectsSrc = `
global int counter = 0;
global string label;

func leaf(int a, int b) int {
  if (a > b) { return a - b; }
  return b - a;
}
func bumps() void {
  counter = counter + 1;
  return;
}
func caller(int x) int {
  bumps();
  return leaf(x, 2);
}
func fills(buf b, int n) void {
  bufwrite(b, 0, n);
  return;
}
func divides(int a, int b) int {
  return a / b;
}
func main() int {
  buf scratch[8];
  fills(scratch, 65);
  return caller(counter);
}`

func TestAnalyzeEffects(t *testing.T) {
	prog := bytecode.MustCompile("effects", effectsSrc)
	fx := Analyze(prog)
	get := func(name string) FnEffects { return fx[prog.Fn(name).Index] }

	leaf := get("leaf")
	if !leaf.Summarizable {
		t.Errorf("leaf should be summarizable: %+v", leaf)
	}
	if leaf.MayFault || leaf.WritesBuf || leaf.UsesBuiltin || len(leaf.WritesGlobals) != 0 {
		t.Errorf("leaf should be effect-free: %+v", leaf)
	}

	bumps := get("bumps")
	counterSlot := -1
	for i, g := range prog.Globals {
		if g.Name == "counter" {
			counterSlot = i
		}
	}
	if len(bumps.WritesGlobals) != 1 || bumps.WritesGlobals[0] != counterSlot {
		t.Errorf("bumps.WritesGlobals = %v, want [%d]", bumps.WritesGlobals, counterSlot)
	}
	if bumps.Summarizable {
		t.Error("global-writing function must not be summarizable")
	}

	// Transitive closure: caller inherits bumps' global write and is a
	// non-leaf, so it is not summarizable either.
	caller := get("caller")
	if len(caller.WritesGlobals) != 1 || caller.WritesGlobals[0] != counterSlot {
		t.Errorf("caller.WritesGlobals = %v, want [%d]", caller.WritesGlobals, counterSlot)
	}
	if caller.Summarizable {
		t.Error("non-leaf function must not be summarizable")
	}
	if len(caller.Calls) != 2 {
		t.Errorf("caller.Calls = %v, want two callees", caller.Calls)
	}

	fills := get("fills")
	if !fills.WritesBuf || !fills.MayFault || fills.Summarizable {
		t.Errorf("fills should write buffers and may fault: %+v", fills)
	}

	div := get("divides")
	if !div.MayFault || div.Summarizable {
		t.Errorf("divides should be faulting and unsummarizable: %+v", div)
	}

	m := get("main")
	if !m.WritesBuf || !m.MayFault || len(m.WritesGlobals) != 1 {
		t.Errorf("main should inherit transitive effects: %+v", m)
	}
}

func TestFnHashContent(t *testing.T) {
	p1 := bytecode.MustCompile("h1", effectsSrc)
	p2 := bytecode.MustCompile("h2", effectsSrc)
	// Recompiling the same source yields the same hashes.
	h1, h2 := HashProgram(p1), HashProgram(p2)
	if len(h1) != len(h2) {
		t.Fatalf("hash table lengths differ: %d vs %d", len(h1), len(h2))
	}
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Errorf("fn %s: hash differs across identical compiles", p1.Funcs[i].Name)
		}
	}
	// Identical bodies under different names share one hash.
	twin := bytecode.MustCompile("twin", `
func f(int a, int b) int { return a + b; }
func g(int a, int b) int { return a + b; }
func h(int a, int b) int { return a - b; }
func main() int { return f(1, 2) + g(3, 4) + h(5, 6); }`)
	th := HashProgram(twin)
	if th[twin.Fn("f").Index] != th[twin.Fn("g").Index] {
		t.Error("identical bodies should hash equal")
	}
	if th[twin.Fn("f").Index] == th[twin.Fn("h").Index] {
		t.Error("different bodies should hash differently")
	}
}

func TestCacheStoreLookup(t *testing.T) {
	c := NewCache()
	if _, ok := c.Lookup(42); ok {
		t.Fatal("empty cache hit")
	}
	s := &FnSummary{Name: "f", NParams: 1, Paths: []PathSummary{{Ret: ptrExpr(solver.ConstExpr(7))}}}
	c.Store(42, s)
	got, ok := c.Lookup(42)
	if !ok || got != s {
		t.Fatalf("Lookup(42) = %v, %v", got, ok)
	}
	// First writer wins.
	c.Store(42, &FnSummary{Name: "other"})
	if got, _ := c.Lookup(42); got != s {
		t.Error("second Store overwrote first")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
	ctr := c.Counters()
	if ctr.Hits != 2 || ctr.Misses != 1 || ctr.Stores != 2 || ctr.Mined != 2 {
		t.Errorf("counters = %+v", ctr)
	}
	c.Store(43, &FnSummary{Name: "bad", Failed: true})
	if c.Counters().Failed != 1 {
		t.Errorf("failed counter = %d, want 1", c.Counters().Failed)
	}

	var nilCache *Cache
	if _, ok := nilCache.Lookup(1); ok {
		t.Error("nil cache hit")
	}
	nilCache.Store(1, s) // must not panic
	if nilCache.Len() != 0 {
		t.Error("nil cache Len != 0")
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := uint64(i % 37)
				if _, ok := c.Lookup(key); !ok {
					c.Store(key, &FnSummary{Name: "f", NParams: int(key)})
				}
			}
		}()
	}
	wg.Wait()
	if c.Len() != 37 {
		t.Errorf("Len = %d, want 37", c.Len())
	}
	for k := uint64(0); k < 37; k++ {
		if _, ok := c.Lookup(k); !ok {
			t.Errorf("key %d missing after concurrent fill", k)
		}
	}
}

func ptrExpr(e solver.LinExpr) *solver.LinExpr { return &e }
