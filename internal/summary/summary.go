package summary

import "repro/internal/solver"

// PathSummary is one mined intra-procedural path of a function, expressed
// over canonical parameter variables: the i-th parameter is solver.Var(i)
// (the miner allocates them first on a fresh VarTable, so the IDs are
// guaranteed). Cons are the entry constraints that select this path; Ret is
// the return expression over the same variables (nil for void functions).
type PathSummary struct {
	Cons []solver.Constraint
	Ret  *solver.LinExpr
}

// FnSummary is the complete mined summary of one function: the disjunction
// of its path summaries covers every feasible intra-procedural path, so
// applying a summary call is exact — it forks once per feasible path under
// the caller's path condition and never loses a behavior.
//
// Failed summaries are negative-cache entries: mining aborted (unsupported
// opcode, nonlinear arithmetic, budget exhausted) and callers must fall
// back to interpretation. Caching the failure avoids re-mining on every
// call site.
type FnSummary struct {
	Name    string
	NParams int
	Failed  bool
	Paths   []PathSummary
}
