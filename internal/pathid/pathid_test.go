package pathid

import (
	"strings"
	"testing"

	"repro/internal/stats"
	"repro/internal/trace"
)

func loc(f string, kind trace.EventKind) trace.Location {
	return trace.Location{Func: f, Kind: kind}
}

// run builds a run from a location sequence with one observed variable per
// location so predicates exist.
func mkRun(id int, faulty bool, vals map[string]int64, locs ...trace.Location) trace.Run {
	r := trace.Run{ID: id, Faulty: faulty}
	for _, l := range locs {
		rec := trace.Record{Loc: l}
		v := vals[l.String()]
		rec.Obs = []trace.Observation{{Var: "x", Class: trace.ClassParam, Kind: trace.ValueInt, Int: v}}
		r.Records = append(r.Records, rec)
	}
	return r
}

// linearCorpus: main -> a -> b(fault site). Faulty runs end at b:enter with
// large x.
func linearCorpus() *trace.Corpus {
	mainE := loc("main", trace.EventEnter)
	aE := loc("a", trace.EventEnter)
	aL := loc("a", trace.EventLeave)
	bE := loc("b", trace.EventEnter)
	bL := loc("b", trace.EventLeave)
	mainL := loc("main", trace.EventLeave)
	c := &trace.Corpus{Program: "lin"}
	lowVals := map[string]int64{mainE.String(): 1, aE.String(): 1, aL.String(): 1, bE.String(): 1, bL.String(): 1, mainL.String(): 1}
	hiVals := map[string]int64{mainE.String(): 900, aE.String(): 900, bE.String(): 900}
	for i := 0; i < 10; i++ {
		c.Runs = append(c.Runs, mkRun(i, false, lowVals, mainE, aE, aL, bE, bL, mainL))
	}
	for i := 10; i < 20; i++ {
		// Faulty runs crash inside b: no b:leave / main:leave.
		c.Runs = append(c.Runs, mkRun(i, true, hiVals, mainE, aE, aL, bE))
	}
	return c
}

func TestBuildGraphBasics(t *testing.T) {
	corpus := linearCorpus()
	g := BuildGraph(corpus, Config{})
	if len(g.Nodes) != 4 {
		t.Fatalf("nodes = %v", g.Nodes)
	}
	if g.Failure != loc("b", trace.EventEnter) {
		t.Errorf("failure = %v", g.Failure)
	}
	if len(g.Entries) != 1 || g.Entries[0] != loc("main", trace.EventEnter) {
		t.Errorf("entries = %v", g.Entries)
	}
	// Transition main:enter -> a:enter has confidence 1.
	es := g.Succ[loc("main", trace.EventEnter)]
	if len(es) != 1 || es[0].Confidence != 1.0 || es[0].Count != 10 {
		t.Errorf("edges from main:enter = %+v", es)
	}
}

func TestSkeletonLinear(t *testing.T) {
	corpus := linearCorpus()
	analysis := stats.Analyze(corpus)
	res, err := Build(corpus, analysis, Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := "main():enter -> a():enter -> a():leave -> b():enter"
	got := make([]string, len(res.Skeleton))
	for i, l := range res.Skeleton {
		got[i] = l.String()
	}
	if strings.Join(got, " -> ") != want {
		t.Errorf("skeleton = %v, want %s", got, want)
	}
	if len(res.Detours) != 0 {
		t.Errorf("detours = %+v, want none", res.Detours)
	}
	if len(res.Candidates) == 0 {
		t.Fatal("no candidates")
	}
	if res.Candidates[0].Len() != 4 {
		t.Errorf("candidate len = %d", res.Candidates[0].Len())
	}
	// Candidate nodes carry predicates at high-divergence locations.
	foundPred := false
	for _, n := range res.Candidates[0].Nodes {
		if n.Pred != nil && n.Pred.Score == 1.0 {
			foundPred = true
		}
	}
	if !foundPred {
		t.Errorf("no perfect-score predicate attached to candidate path")
	}
}

// branchCorpus adds an off-skeleton function d with a high-score predicate:
// faulty runs sometimes go main -> a -> d -> a -> b.
func branchCorpus() *trace.Corpus {
	mainE := loc("main", trace.EventEnter)
	aE := loc("a", trace.EventEnter)
	dE := loc("d", trace.EventEnter)
	dL := loc("d", trace.EventLeave)
	bE := loc("b", trace.EventEnter)
	bL := loc("b", trace.EventLeave)
	mainL := loc("main", trace.EventLeave)
	c := &trace.Corpus{Program: "br"}
	low := map[string]int64{mainE.String(): 1, aE.String(): 1, dE.String(): 1, dL.String(): 1, bE.String(): 1, bL.String(): 1, mainL.String(): 1}
	hi := map[string]int64{mainE.String(): 900, aE.String(): 900, dE.String(): 900, dL.String(): 900, bE.String(): 900}
	for i := 0; i < 10; i++ {
		c.Runs = append(c.Runs, mkRun(i, false, low, mainE, aE, bE, bL, mainL))
	}
	for i := 10; i < 20; i++ {
		if i%2 == 0 {
			c.Runs = append(c.Runs, mkRun(i, true, hi, mainE, aE, dE, dL, aE, bE))
		} else {
			c.Runs = append(c.Runs, mkRun(i, true, hi, mainE, aE, bE))
		}
	}
	return c
}

func TestDetourIdentification(t *testing.T) {
	corpus := branchCorpus()
	analysis := stats.Analyze(corpus)
	res, err := Build(corpus, analysis, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// d:enter has a perfect-score predicate but might not be on the
	// skeleton (the direct a->b path is shorter); if off-skeleton, a
	// detour must reach it.
	onSkel := false
	for _, l := range res.Skeleton {
		if l == loc("d", trace.EventEnter) {
			onSkel = true
		}
	}
	if !onSkel && len(res.Detours) == 0 {
		t.Errorf("d():enter not on skeleton and no detour found")
	}
	if len(res.Candidates) == 0 {
		t.Fatal("no candidates")
	}
	// The full candidate list must contain a path visiting d:enter.
	visits := false
	for _, cand := range res.Candidates {
		if strings.Contains(cand.String(), "d():enter") {
			visits = true
		}
	}
	if !visits {
		t.Errorf("no candidate visits the high-score detour location; candidates:\n%v", res.Candidates)
	}
	// Candidates are ranked by average score, descending.
	for i := 1; i < len(res.Candidates); i++ {
		if res.Candidates[i-1].AvgScore < res.Candidates[i].AvgScore {
			t.Errorf("candidates not ranked: %v then %v",
				res.Candidates[i-1].AvgScore, res.Candidates[i].AvgScore)
		}
	}
}

func TestCandidateDeduplication(t *testing.T) {
	corpus := linearCorpus()
	analysis := stats.Analyze(corpus)
	res, err := Build(corpus, analysis, Config{})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, cand := range res.Candidates {
		key := cand.String()
		if seen[key] {
			t.Errorf("duplicate candidate: %s", key)
		}
		seen[key] = true
	}
}

func TestMaxCandidatesCap(t *testing.T) {
	corpus := branchCorpus()
	analysis := stats.Analyze(corpus)
	res, err := Build(corpus, analysis, Config{MaxCandidates: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 1 {
		t.Errorf("candidates = %d, want 1", len(res.Candidates))
	}
}

func TestMinConfidenceFilter(t *testing.T) {
	corpus := branchCorpus()
	// With an extreme confidence floor, rare edges vanish and the graph
	// thins out; the build must still not panic, though it may fail to
	// find a path.
	g := BuildGraph(corpus, Config{MinConfidence: 0.9})
	total := 0
	for _, es := range g.Succ {
		total += len(es)
	}
	gFull := BuildGraph(corpus, Config{})
	fullTotal := 0
	for _, es := range gFull.Succ {
		fullTotal += len(es)
	}
	if total >= fullTotal {
		t.Errorf("confidence filter removed nothing: %d vs %d", total, fullTotal)
	}
}

func TestEmptyCorpus(t *testing.T) {
	corpus := &trace.Corpus{Program: "empty"}
	analysis := stats.Analyze(corpus)
	if _, err := Build(corpus, analysis, Config{}); err == nil {
		t.Error("expected error for corpus without faulty runs")
	}
}

func TestDetourTypeString(t *testing.T) {
	if DetourForward.String() != "forward" || DetourBackward.String() != "backward" || DetourSelf.String() != "self" {
		t.Error("detour type names wrong")
	}
}

func TestCycleCandidate(t *testing.T) {
	// Backward detour: faulty runs revisit a after d (a -> d -> a), and d
	// is entered from b's vicinity... construct: main a b d a b(fault).
	mainE := loc("main", trace.EventEnter)
	aE := loc("a", trace.EventEnter)
	bE := loc("b", trace.EventEnter)
	dE := loc("d", trace.EventEnter)
	c := &trace.Corpus{Program: "cyc"}
	hi := map[string]int64{mainE.String(): 9, aE.String(): 9, bE.String(): 9, dE.String(): 900}
	low := map[string]int64{mainE.String(): 1, aE.String(): 1, bE.String(): 1, dE.String(): 1}
	for i := 0; i < 5; i++ {
		c.Runs = append(c.Runs, mkRun(i, false, low, mainE, aE, bE))
	}
	for i := 5; i < 10; i++ {
		c.Runs = append(c.Runs, mkRun(i, true, hi, mainE, aE, bE, dE, aE, bE))
	}
	analysis := stats.Analyze(c)
	res, err := Build(c, analysis, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Some candidate should visit d (possibly via a cycle).
	visits := false
	for _, cand := range res.Candidates {
		if strings.Contains(cand.String(), "d():enter") {
			visits = true
		}
	}
	if !visits {
		t.Logf("skeleton: %v", res.Skeleton)
		t.Logf("detours: %+v", res.Detours)
		for _, cand := range res.Candidates {
			t.Logf("candidate: %s", cand)
		}
		t.Errorf("no candidate visits d():enter")
	}
}
