package pathid

import (
	"strings"
	"testing"

	"repro/internal/stats"
	"repro/internal/trace"
)

func TestGraphWriteDOT(t *testing.T) {
	corpus := linearCorpus()
	analysis := stats.Analyze(corpus)
	res, err := Build(corpus, analysis, Config{})
	if err != nil {
		t.Fatal(err)
	}
	dot := res.Graph.WriteDOT(analysis, res.Skeleton)
	for _, want := range []string{
		"digraph transitions",
		`"main():enter"`,
		`"b():enter"`,
		"doubleoctagon", // failure point marker
		"->",
		"penwidth=2", // skeleton highlight
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Balanced braces, single graph.
	if strings.Count(dot, "digraph") != 1 || !strings.HasSuffix(dot, "}\n") {
		t.Errorf("malformed DOT:\n%s", dot)
	}
}

func TestGraphWriteDOTNilInputs(t *testing.T) {
	corpus := linearCorpus()
	g := BuildGraph(corpus, Config{})
	dot := g.WriteDOT(nil, nil)
	if !strings.Contains(dot, "digraph") {
		t.Errorf("nil-input DOT malformed")
	}
}

func TestCandidatePathWriteDOT(t *testing.T) {
	cp := &CandidatePath{Nodes: []PathNode{
		{Loc: trace.Location{Func: "main", Kind: trace.EventEnter}},
		{Loc: trace.Location{Func: "f", Kind: trace.EventEnter}, Pred: &stats.Predicate{
			Var: "x", Class: trace.ClassParam, Op: stats.PredGe, Threshold: 3.5,
		}},
	}}
	dot := cp.WriteDOT("candidate1")
	for _, want := range []string{"n0", "n1", "n0 -> n1", "x FUNCPARAM >= 3.5"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestSpurDetourJoinsInPlace(t *testing.T) {
	skeleton := []trace.Location{
		{Func: "a", Kind: trace.EventEnter},
		{Func: "b", Kind: trace.EventEnter},
		{Func: "c", Kind: trace.EventEnter},
	}
	spur := Detour{
		FromIdx: 1, ToIdx: 1, Type: DetourSpur,
		Via: []trace.Location{{Func: "x", Kind: trace.EventEnter}},
	}
	out := splice(skeleton, []Detour{spur})
	want := "a():enter b():enter x():enter c():enter"
	got := make([]string, len(out))
	for i, l := range out {
		got[i] = l.String()
	}
	if strings.Join(got, " ") != want {
		t.Errorf("splice = %v, want %s", got, want)
	}
}

func TestForwardDetourReplacesSegment(t *testing.T) {
	skeleton := []trace.Location{
		{Func: "a", Kind: trace.EventEnter},
		{Func: "b", Kind: trace.EventEnter},
		{Func: "c", Kind: trace.EventEnter},
		{Func: "d", Kind: trace.EventEnter},
	}
	fwd := Detour{
		FromIdx: 0, ToIdx: 2, Type: DetourForward,
		Via: []trace.Location{{Func: "x", Kind: trace.EventEnter}},
	}
	out := splice(skeleton, []Detour{fwd})
	// a -> x -> c -> d (b replaced).
	got := make([]string, len(out))
	for i, l := range out {
		got[i] = l.String()
	}
	want := "a():enter x():enter c():enter d():enter"
	if strings.Join(got, " ") != want {
		t.Errorf("splice = %v, want %s", got, want)
	}
}
