// Package pathid implements the paper's Candidate Path Constructor (§V-B,
// §VI-B): it mines location transitions from faulty-run logs with
// association-rule confidence µ(ei,ej) = o(ei→ej)/o(ei) (Eq. 3), builds a
// transition graph, extracts the skeleton (the entry→failure path with the
// highest average predicate score), identifies detours that visit
// high-score predicates off the skeleton, and joins them into a ranked
// list of candidate vulnerable paths.
package pathid

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/stats"
	"repro/internal/trace"
)

// Config tunes path construction.
type Config struct {
	// MinConfidence filters transitions: edges with µ below it are
	// considered statistically insignificant. Zero means
	// DefaultMinConfidence.
	MinConfidence float64
	// MinSupport requires at least this many observed occurrences of a
	// transition (default 1).
	MinSupport int
	// DetourScoreMin is the minimum predicate score for a location to
	// attract a detour (default 0.5).
	DetourScoreMin float64
	// MaxCandidates caps the emitted candidate list (default 12).
	MaxCandidates int
	// MaxSkeletonPaths caps the acyclic-path enumeration (default 4096).
	MaxSkeletonPaths int
}

// Defaults.
const (
	DefaultMinConfidence    = 0.02
	DefaultDetourScoreMin   = 0.5
	DefaultMaxCandidates    = 12
	DefaultMaxSkeletonPaths = 4096
)

func (c Config) minConfidence() float64 {
	if c.MinConfidence <= 0 {
		return DefaultMinConfidence
	}
	return c.MinConfidence
}

func (c Config) minSupport() int {
	if c.MinSupport <= 0 {
		return 1
	}
	return c.MinSupport
}

func (c Config) detourScoreMin() float64 {
	if c.DetourScoreMin <= 0 {
		return DefaultDetourScoreMin
	}
	return c.DetourScoreMin
}

func (c Config) maxCandidates() int {
	if c.MaxCandidates <= 0 {
		return DefaultMaxCandidates
	}
	return c.MaxCandidates
}

func (c Config) maxSkeletonPaths() int {
	if c.MaxSkeletonPaths <= 0 {
		return DefaultMaxSkeletonPaths
	}
	return c.MaxSkeletonPaths
}

// Edge is a mined transition with its confidence.
type Edge struct {
	From, To   trace.Location
	Count      int
	Confidence float64
}

// Graph is the dynamic control-transfer graph reconstructed from faulty
// logs.
type Graph struct {
	Nodes []trace.Location
	// Succ maps a node to its significant successors (sorted for
	// determinism).
	Succ map[trace.Location][]Edge
	// Entry nodes have no incoming significant edge; Failure is the most
	// frequent final location of faulty runs.
	Entries []trace.Location
	Failure trace.Location
}

// BuildGraph mines transitions from the faulty runs of the corpus.
// Locations are interned to dense ids once per corpus, so transition
// counting keys on [2]int32 (string keys cost two allocations per logged
// transition — the dominant cost of graph construction on large corpora).
// The counting lives in TransitionCounter (stream.go), shared with the
// streaming path.
func BuildGraph(corpus *trace.Corpus, cfg Config) *Graph {
	tc := NewTransitionCounter()
	for i := range corpus.Runs {
		tc.Add(&corpus.Runs[i])
	}
	return tc.Graph(cfg)
}

// PathNode pairs a location with the best predicate at that location (nil
// when none scores high enough to gate on).
type PathNode struct {
	Loc  trace.Location
	Pred *stats.Predicate
}

// CandidatePath is one ranked candidate vulnerable path.
type CandidatePath struct {
	Nodes    []PathNode
	AvgScore float64
	// Detours records how many detours were joined into this candidate.
	Detours int
}

// Len returns the node count (Fig. 7's path length).
func (p *CandidatePath) Len() int { return len(p.Nodes) }

// String renders the candidate compactly: L1 -> L2 -> ...
func (p *CandidatePath) String() string {
	parts := make([]string, len(p.Nodes))
	for i, n := range p.Nodes {
		parts[i] = n.Loc.String()
	}
	return strings.Join(parts, " -> ")
}

// DetourType classifies a detour by its skeleton indices (§VI-B).
type DetourType int

// Detour types: forward detours replace a skeleton segment; backward and
// self detours introduce cycles; spur detours visit a high-score location
// with no sampled transition back to the skeleton (common near the failure
// point, where faulty logs end abruptly) and rejoin it in place.
const (
	DetourForward DetourType = iota + 1
	DetourBackward
	DetourSelf
	DetourSpur
)

// String names the detour type.
func (t DetourType) String() string {
	switch t {
	case DetourForward:
		return "forward"
	case DetourBackward:
		return "backward"
	case DetourSelf:
		return "self"
	case DetourSpur:
		return "spur"
	default:
		return fmt.Sprintf("DetourType(%d)", int(t))
	}
}

// Detour is a path segment branching off the skeleton to visit a
// high-score predicate location and returning to the skeleton.
type Detour struct {
	FromIdx, ToIdx int // skeleton indices
	Via            []trace.Location
	Type           DetourType
	Score          float64
}

// Result is the full output of candidate-path construction.
type Result struct {
	Graph      *Graph
	Skeleton   []trace.Location
	Detours    []Detour
	Candidates []*CandidatePath
}

// Build runs the complete §V-B pipeline over a corpus and its predicate
// analysis.
func Build(corpus *trace.Corpus, analysis *stats.Analysis, cfg Config) (*Result, error) {
	return BuildFromGraph(BuildGraph(corpus, cfg), analysis, cfg)
}

// BuildFromGraph runs skeleton extraction, detour identification, and
// candidate joining on an already-mined transition graph (the steps after
// Eq. 3). It is the shared back half of Build and BuildStream.
func BuildFromGraph(g *Graph, analysis *stats.Analysis, cfg Config) (*Result, error) {
	if len(g.Nodes) == 0 {
		return nil, fmt.Errorf("pathid: no faulty-run locations in corpus")
	}
	skeleton := findSkeleton(g, analysis, cfg)
	if len(skeleton) == 0 {
		return nil, fmt.Errorf("pathid: no entry-to-failure path in transition graph")
	}
	detours := findDetours(g, analysis, skeleton, cfg)
	candidates := joinCandidates(skeleton, detours, analysis, cfg)
	return &Result{Graph: g, Skeleton: skeleton, Detours: detours, Candidates: candidates}, nil
}

// findSkeleton enumerates acyclic entry→failure paths and returns the one
// with the largest average node score (step 1 of §V-B).
func findSkeleton(g *Graph, analysis *stats.Analysis, cfg Config) []trace.Location {
	entries := g.Entries
	if len(entries) == 0 {
		// Cyclic graph with no pure entry: fall back to the most common
		// convention (main():enter) or any node.
		mainEnter := trace.Location{Func: "main", Kind: trace.EventEnter}
		for _, n := range g.Nodes {
			if n == mainEnter {
				entries = []trace.Location{n}
				break
			}
		}
		if len(entries) == 0 {
			entries = g.Nodes[:1]
		}
	}
	var best []trace.Location
	bestScore := -1.0
	budget := cfg.maxSkeletonPaths()

	var path []trace.Location
	onPath := make(map[trace.Location]bool)
	var dfs func(cur trace.Location)
	dfs = func(cur trace.Location) {
		if budget <= 0 {
			return
		}
		path = append(path, cur)
		onPath[cur] = true
		defer func() {
			path = path[:len(path)-1]
			delete(onPath, cur)
		}()
		if cur == g.Failure {
			budget--
			score := avgScore(path, analysis)
			if score > bestScore || (score == bestScore && better(path, best)) {
				bestScore = score
				best = append([]trace.Location(nil), path...)
			}
			return
		}
		for _, e := range g.Succ[cur] {
			if onPath[e.To] {
				continue
			}
			dfs(e.To)
			if budget <= 0 {
				return
			}
		}
	}
	for _, entry := range entries {
		dfs(entry)
	}
	return best
}

func avgScore(path []trace.Location, analysis *stats.Analysis) float64 {
	if len(path) == 0 {
		return 0
	}
	total := 0.0
	for _, loc := range path {
		total += analysis.LocationScore(loc)
	}
	return total / float64(len(path))
}

// better is a deterministic tie-break: prefer shorter paths, then
// lexicographic order.
func better(a, b []trace.Location) bool {
	if b == nil {
		return true
	}
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	for i := range a {
		if a[i] != b[i] {
			return a[i].String() < b[i].String()
		}
	}
	return false
}

// findDetours locates path segments from a skeleton node through each
// high-score off-skeleton predicate location back to the skeleton (step 2
// of §V-B), classifying them by start/end indices. When a location hosts
// multiple same-type detours, the highest average-score one is kept
// (§VI-B).
func findDetours(g *Graph, analysis *stats.Analysis, skeleton []trace.Location, cfg Config) []Detour {
	onSkel := make(map[trace.Location]int, len(skeleton))
	for i, loc := range skeleton {
		onSkel[loc] = i
	}
	// Collect target locations: high-score predicates off the skeleton.
	seen := make(map[trace.Location]bool)
	var targets []trace.Location
	for _, p := range analysis.Predicates {
		if p.Score < cfg.detourScoreMin() {
			break // ranked list: everything after is lower
		}
		if _, ok := onSkel[p.Loc]; ok {
			continue
		}
		if !seen[p.Loc] && graphHasNode(g, p.Loc) {
			seen[p.Loc] = true
			targets = append(targets, p.Loc)
		}
	}

	best := make(map[string]Detour) // key: fromIdx/toIdx/type → best-score detour
	for _, tgt := range targets {
		out, fromIdx, ok1 := shortestFromSkeleton(g, onSkel, tgt)
		if !ok1 {
			continue
		}
		back, toIdx, ok2 := shortestToSkeleton(g, onSkel, tgt)
		via := make([]trace.Location, 0, len(out)+len(back)+1)
		via = append(via, out...)
		via = append(via, tgt)
		d := Detour{FromIdx: fromIdx, Via: via, Score: 0}
		if ok2 {
			d.Via = append(d.Via, back...)
			d.ToIdx = toIdx
			switch {
			case fromIdx < toIdx:
				d.Type = DetourForward
			case fromIdx > toIdx:
				d.Type = DetourBackward
			default:
				d.Type = DetourSelf
			}
		} else {
			// One-way spur: the logs never observed a transition back
			// (typical when the target sits just before the failure
			// point); the candidate path resumes at the origin.
			d.ToIdx = fromIdx
			d.Type = DetourSpur
		}
		d.Score = avgScore(d.Via, analysis)
		key := fmt.Sprintf("%d/%d/%d", d.FromIdx, d.ToIdx, d.Type)
		if prev, ok := best[key]; !ok || d.Score > prev.Score {
			best[key] = d
		}
	}
	detours := make([]Detour, 0, len(best))
	for _, d := range best {
		detours = append(detours, d)
	}
	sort.Slice(detours, func(i, j int) bool {
		if detours[i].Score != detours[j].Score {
			return detours[i].Score > detours[j].Score
		}
		if detours[i].FromIdx != detours[j].FromIdx {
			return detours[i].FromIdx < detours[j].FromIdx
		}
		return detours[i].ToIdx < detours[j].ToIdx
	})
	return detours
}

func graphHasNode(g *Graph, loc trace.Location) bool {
	for _, n := range g.Nodes {
		if n == loc {
			return true
		}
	}
	return false
}

// shortestFromSkeleton finds the shortest path from any skeleton node to
// tgt (excluding endpoints), returning intermediate nodes and the skeleton
// index.
func shortestFromSkeleton(g *Graph, onSkel map[trace.Location]int, tgt trace.Location) ([]trace.Location, int, bool) {
	// Reverse BFS from tgt until a skeleton node is reached.
	type item struct {
		loc  trace.Location
		path []trace.Location // reversed intermediates
	}
	pred := reverseAdj(g)
	visited := map[trace.Location]bool{tgt: true}
	queue := []item{{loc: tgt}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, p := range pred[cur.loc] {
			if idx, ok := onSkel[p]; ok {
				// Reverse the intermediate list.
				out := make([]trace.Location, len(cur.path))
				for i, l := range cur.path {
					out[len(cur.path)-1-i] = l
				}
				return out, idx, true
			}
			if visited[p] {
				continue
			}
			visited[p] = true
			np := append(append([]trace.Location(nil), cur.path...), p)
			queue = append(queue, item{loc: p, path: np})
		}
	}
	return nil, 0, false
}

// shortestToSkeleton finds the shortest path from tgt back to any skeleton
// node.
func shortestToSkeleton(g *Graph, onSkel map[trace.Location]int, tgt trace.Location) ([]trace.Location, int, bool) {
	type item struct {
		loc  trace.Location
		path []trace.Location
	}
	visited := map[trace.Location]bool{tgt: true}
	queue := []item{{loc: tgt}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range g.Succ[cur.loc] {
			if idx, ok := onSkel[e.To]; ok {
				return cur.path, idx, true
			}
			if visited[e.To] {
				continue
			}
			visited[e.To] = true
			np := append(append([]trace.Location(nil), cur.path...), e.To)
			queue = append(queue, item{loc: e.To, path: np})
		}
	}
	return nil, 0, false
}

// reverseAdj builds the predecessor adjacency of the graph.
func reverseAdj(g *Graph) map[trace.Location][]trace.Location {
	pred := make(map[trace.Location][]trace.Location)
	for from, es := range g.Succ {
		for _, e := range es {
			pred[e.To] = append(pred[e.To], from)
		}
	}
	for to := range pred {
		ps := pred[to]
		sort.Slice(ps, func(i, j int) bool { return ps[i].String() < ps[j].String() })
	}
	return pred
}

// joinCandidates assembles ranked candidates (step 3 of §V-B): the
// skeleton with all detours, the skeleton with each single detour (by
// descending score), and the bare skeleton, deduplicated and capped.
func joinCandidates(skeleton []trace.Location, detours []Detour, analysis *stats.Analysis, cfg Config) []*CandidatePath {
	var out []*CandidatePath
	seen := make(map[string]bool)
	add := func(locs []trace.Location, nDetours int) {
		cp := &CandidatePath{Detours: nDetours}
		for _, loc := range locs {
			cp.Nodes = append(cp.Nodes, PathNode{Loc: loc, Pred: analysis.BestAt(loc)})
		}
		cp.AvgScore = avgScore(locs, analysis)
		key := cp.String()
		if seen[key] {
			return
		}
		seen[key] = true
		out = append(out, cp)
	}

	if len(detours) > 0 {
		add(splice(skeleton, detours), len(detours))
	}
	for _, d := range detours {
		add(splice(skeleton, []Detour{d}), 1)
	}
	add(skeleton, 0)

	// Rank by average predicate score, then by more detours (richer
	// guidance first), then deterministically.
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].AvgScore != out[j].AvgScore {
			return out[i].AvgScore > out[j].AvgScore
		}
		if out[i].Detours != out[j].Detours {
			return out[i].Detours > out[j].Detours
		}
		return out[i].String() < out[j].String()
	})
	if len(out) > cfg.maxCandidates() {
		out = out[:cfg.maxCandidates()]
	}
	return out
}

// splice inserts detours into the skeleton. Forward detours replace the
// skipped skeleton segment; backward and self detours are inserted after
// their origin, revisiting skeleton nodes (cycles are allowed on candidate
// paths).
func splice(skeleton []trace.Location, detours []Detour) []trace.Location {
	// Process in ascending FromIdx so indices stay valid relative to the
	// original skeleton; build segment lists keyed by origin index.
	inserts := make(map[int][]Detour)
	for _, d := range detours {
		inserts[d.FromIdx] = append(inserts[d.FromIdx], d)
	}
	var out []trace.Location
	i := 0
	for i < len(skeleton) {
		out = append(out, skeleton[i])
		advanced := false
		for _, d := range inserts[i] {
			out = append(out, d.Via...)
			if d.Type == DetourSpur {
				// One-way spur: visit and resume the skeleton in place.
				continue
			}
			if d.Type == DetourForward && !advanced {
				// Skip the replaced skeleton segment; resume at ToIdx.
				out = append(out, skeleton[d.ToIdx])
				i = d.ToIdx
				advanced = true
			} else {
				// Cycle back onto the skeleton at ToIdx (already emitted
				// earlier or equal); just note the revisit.
				out = append(out, skeleton[d.ToIdx])
				if d.ToIdx != i {
					// Re-walk forward from ToIdx to the current node so the
					// path remains connected in the graph.
					for k := d.ToIdx + 1; k <= i; k++ {
						out = append(out, skeleton[k])
					}
				}
			}
		}
		i++
	}
	return out
}
