package pathid

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/stats"
	"repro/internal/trace"
)

// WriteDOT renders the transition graph in Graphviz DOT format, shading
// nodes by their best predicate score and highlighting the skeleton and
// failure point — a renderable version of the paper's Fig. 4/Fig. 9
// diagrams. skeleton and analysis may be nil.
func (g *Graph) WriteDOT(analysis *stats.Analysis, skeleton []trace.Location) string {
	onSkel := make(map[trace.Location]bool, len(skeleton))
	for _, l := range skeleton {
		onSkel[l] = true
	}
	var sb strings.Builder
	sb.WriteString("digraph transitions {\n")
	sb.WriteString("  rankdir=LR;\n")
	sb.WriteString("  node [shape=box, fontname=\"monospace\", fontsize=10];\n")

	nodes := append([]trace.Location(nil), g.Nodes...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].String() < nodes[j].String() })
	for _, n := range nodes {
		attrs := []string{fmt.Sprintf("label=%q", n.String())}
		if analysis != nil {
			if score := analysis.LocationScore(n); score > 0 {
				// Shade by score: high-score predicate locations stand out.
				gray := 100 - int(score*45)
				attrs = append(attrs, fmt.Sprintf("style=filled, fillcolor=\"gray%d\"", gray))
				attrs = append(attrs, fmt.Sprintf("tooltip=\"score %.3f\"", score))
			}
		}
		if onSkel[n] {
			attrs = append(attrs, "penwidth=2")
		}
		if n == g.Failure {
			attrs = append(attrs, "shape=doubleoctagon, color=red")
		}
		fmt.Fprintf(&sb, "  %q [%s];\n", n.String(), strings.Join(attrs, ", "))
	}

	froms := make([]trace.Location, 0, len(g.Succ))
	for from := range g.Succ {
		froms = append(froms, from)
	}
	sort.Slice(froms, func(i, j int) bool { return froms[i].String() < froms[j].String() })
	for _, from := range froms {
		for _, e := range g.Succ[from] {
			style := ""
			if onSkel[e.From] && onSkel[e.To] {
				style = ", penwidth=2"
			}
			fmt.Fprintf(&sb, "  %q -> %q [label=\"%.2f\"%s];\n",
				e.From.String(), e.To.String(), e.Confidence, style)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// WriteDOT renders a candidate path as a linear DOT chain annotated with
// its predicates.
func (p *CandidatePath) WriteDOT(name string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", name)
	sb.WriteString("  rankdir=LR;\n")
	sb.WriteString("  node [shape=circle, fontname=\"monospace\", fontsize=9];\n")
	for i, n := range p.Nodes {
		label := n.Loc.String()
		if n.Pred != nil {
			label += "\\n" + n.Pred.String()
		}
		fmt.Fprintf(&sb, "  n%d [label=%q];\n", i, label)
		if i > 0 {
			fmt.Fprintf(&sb, "  n%d -> n%d;\n", i-1, i)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
