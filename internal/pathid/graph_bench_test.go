package pathid

import (
	"fmt"
	"testing"

	"repro/internal/trace"
)

// benchCorpus builds a corpus of long faulty runs over a moderate location
// alphabet — the shape that made string-keyed transition counting the
// allocation hot spot of BuildGraph (two Location.String calls per step).
func benchCorpus(runs, steps, funcs int) *trace.Corpus {
	locs := make([]trace.Location, funcs*2)
	for i := 0; i < funcs; i++ {
		name := fmt.Sprintf("fn%03d", i)
		locs[2*i] = trace.Location{Func: name, Kind: trace.EventEnter}
		locs[2*i+1] = trace.Location{Func: name, Kind: trace.EventLeave}
	}
	c := &trace.Corpus{Program: "bench"}
	for r := 0; r < runs; r++ {
		run := trace.Run{ID: r, Faulty: true, FaultFunc: "fn000"}
		for s := 0; s < steps; s++ {
			// Deterministic walk that revisits locations heavily, like a
			// sampled execution trace with loops.
			run.Records = append(run.Records, trace.Record{Loc: locs[(r*7+s*3)%len(locs)]})
		}
		c.Runs = append(c.Runs, run)
	}
	return c
}

func BenchmarkBuildGraph(b *testing.B) {
	corpus := benchCorpus(50, 400, 40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := BuildGraph(corpus, Config{})
		if len(g.Nodes) == 0 {
			b.Fatal("empty graph")
		}
	}
}
