package pathid

import (
	"io"
	"sort"

	"repro/internal/stats"
	"repro/internal/trace"
)

// TransitionCounter accumulates the Eq. 3 transition statistics one run at
// a time: interned location occurrence counts, ordered-pair counts, final
// locations, and fault-function votes. It holds counters only — never the
// runs — so graph mining over an on-disk corpus is a bounded-memory pass.
// Feeding it runs in corpus order reproduces BuildGraph exactly (location
// IDs are assigned in first-seen order, and graph assembly sorts
// everything else).
type TransitionCounter struct {
	ids        map[trace.Location]int32
	nodes      []trace.Location
	occ        []int // occurrence count, indexed by interned id
	pair       map[[2]int32]int
	finals     map[trace.Location]int
	faultFuncs map[string]int
	runs       int // faulty runs folded in
}

// NewTransitionCounter returns an empty counter.
func NewTransitionCounter() *TransitionCounter {
	return &TransitionCounter{
		ids:        make(map[trace.Location]int32),
		pair:       make(map[[2]int32]int),
		finals:     make(map[trace.Location]int),
		faultFuncs: make(map[string]int),
	}
}

func (t *TransitionCounter) intern(l trace.Location) int32 {
	id, ok := t.ids[l]
	if !ok {
		id = int32(len(t.nodes))
		t.ids[l] = id
		t.nodes = append(t.nodes, l)
		t.occ = append(t.occ, 0)
	}
	return id
}

// Add folds one run into the counters. Correct runs are ignored — the
// paper mines transitions from faulty logs only (§V-B).
func (t *TransitionCounter) Add(run *trace.Run) {
	if !run.Faulty {
		return
	}
	t.runs++
	if run.FaultFunc != "" {
		t.faultFuncs[run.FaultFunc]++
	}
	prev := int32(-1)
	for _, rec := range run.Records {
		id := t.intern(rec.Loc)
		t.occ[id]++
		if prev >= 0 {
			t.pair[[2]int32{prev, id}]++
		}
		prev = id
	}
	if fin, ok := run.FinalLocation(); ok {
		t.finals[fin]++
	}
}

// Runs reports the number of faulty runs folded in.
func (t *TransitionCounter) Runs() int { return t.runs }

// Graph assembles the transition graph from the accumulated counters —
// the second half of BuildGraph, shared by the in-memory and streaming
// paths. Deterministic: successor lists and entries are sorted, and the
// failure-point tie-breaks are value-based.
func (t *TransitionCounter) Graph(cfg Config) *Graph {
	g := &Graph{Nodes: t.nodes, Succ: make(map[trace.Location][]Edge)}
	hasIncoming := make(map[trace.Location]bool)
	for key, count := range t.pair {
		if count < cfg.minSupport() {
			continue
		}
		conf := float64(count) / float64(t.occ[key[0]])
		if conf < cfg.minConfidence() {
			continue
		}
		e := Edge{From: t.nodes[key[0]], To: t.nodes[key[1]], Count: count, Confidence: conf}
		g.Succ[e.From] = append(g.Succ[e.From], e)
		hasIncoming[e.To] = true
	}
	for from := range g.Succ {
		es := g.Succ[from]
		sort.Slice(es, func(i, j int) bool {
			if es[i].Confidence != es[j].Confidence {
				return es[i].Confidence > es[j].Confidence
			}
			return es[i].To.String() < es[j].To.String()
		})
	}
	for _, n := range g.Nodes {
		if !hasIncoming[n] {
			g.Entries = append(g.Entries, n)
		}
	}
	sort.Slice(g.Entries, func(i, j int) bool { return g.Entries[i].String() < g.Entries[j].String() })
	// Failure point: the crash report names the faulting function (§II:
	// the failure point is where the crash manifests), so its entry
	// location is the target — provided the sampled logs ever observed
	// it. Fall back to the modal final location of faulty runs when no
	// fault function was recorded or its entry never got sampled.
	bestFault := ""
	bestCount := 0
	for fn, c := range t.faultFuncs {
		if c > bestCount || (c == bestCount && fn < bestFault) {
			bestFault, bestCount = fn, c
		}
	}
	if bestFault != "" {
		enter := trace.Location{Func: bestFault, Kind: trace.EventEnter}
		if _, ok := t.ids[enter]; ok {
			g.Failure = enter
			return g
		}
	}
	best := -1
	for _, n := range g.Nodes {
		if c := t.finals[n]; c > best {
			best = c
			g.Failure = n
		}
	}
	return g
}

// BuildGraphStream mines the transition graph from a run iterator in one
// pass, byte-identical to BuildGraph on the materialized corpus.
func BuildGraphStream(it trace.RunIterator, cfg Config) (*Graph, error) {
	tc := NewTransitionCounter()
	for {
		run, err := it.Next()
		if err == io.EOF {
			return tc.Graph(cfg), nil
		}
		if err != nil {
			return nil, err
		}
		tc.Add(run)
	}
}

// BuildStream runs the complete §V-B pipeline over a run iterator.
func BuildStream(it trace.RunIterator, analysis *stats.Analysis, cfg Config) (*Result, error) {
	g, err := BuildGraphStream(it, cfg)
	if err != nil {
		return nil, err
	}
	return BuildFromGraph(g, analysis, cfg)
}
