package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Standard metric names. Instrumented layers register under these so
// traces from different runs and tools line up; ad-hoc names are allowed
// but the report and CLI dumps are built around this set.
const (
	// Solver effort (internal/solver).
	MetricSolverChecks  = "solver.checks"
	MetricSolverSat     = "solver.sat"
	MetricSolverUnsat   = "solver.unsat"
	MetricSolverUnknown = "solver.unknown"
	MetricCacheHits     = "solver.cache.hits"
	MetricCacheMisses   = "solver.cache.misses"

	// Query-cache fast paths and eviction pressure (internal/solver).
	// Evictions is the total entries dropped; the .capacity/.invalidated
	// split attributes them to cache pressure vs code change.
	MetricCacheFastSat             = "solver.cache.fast_sat"
	MetricCacheFastUnsat           = "solver.cache.fast_unsat"
	MetricCacheEvictions           = "solver.cache.evictions"
	MetricCacheEvictionsCapacity   = "solver.cache.evictions.capacity"
	MetricCacheEvictionsInvalidate = "solver.cache.evictions.invalidated"

	// Shared cross-executor cache (parallel candidate verification).
	// Timing dependent under concurrency: telemetry only, never part of
	// the deterministic Report counters.
	MetricSharedCacheHits          = "solver.shared.hits"
	MetricSharedCacheMisses        = "solver.shared.misses"
	MetricSharedCacheStores        = "solver.shared.stores"
	MetricSharedCacheEvictions     = "solver.shared.evictions"
	MetricSharedCacheInvalidations = "solver.shared.invalidations"

	// Persistent cross-run solver cache (internal/solver/persist).
	MetricPersistLoaded      = "solvercache.persist.loaded"       // entries loaded and seeded
	MetricPersistLoadRejects = "solvercache.persist.load_rejects" // verified-on-load rejections
	MetricPersistInvalidated = "solvercache.persist.invalidated"  // entries dropped by FnHash diff/tombstone
	MetricPersistHits        = "solvercache.persist.hits"         // warm-start hits served from loaded entries
	MetricPersistSpilled     = "solvercache.persist.spilled"      // entries written behind Check
	MetricPersistDropped     = "solvercache.persist.dropped"      // spill-channel overflow drops
	MetricPersistDeduped     = "solvercache.persist.deduped"      // spill offers already on disk
	MetricPersistSegments    = "solvercache.persist.segments_sealed"
	MetricPersistBytes       = "solvercache.persist.bytes_written"

	// Memoized statistical phase (core warm start, rides CacheDir).
	MetricStatsCacheHits   = "statscache.hits"   // stats phases replayed from disk
	MetricStatsCacheMisses = "statscache.misses" // stats phases derived and memoized

	// Symbolic execution (internal/symexec).
	MetricSteps         = "exec.steps"
	MetricForks         = "exec.forks"
	MetricPaths         = "exec.paths"
	MetricStatesCreated = "exec.states.created"
	MetricStatesLive    = "exec.states.live" // gauge: peak live states
	MetricStatesPruned  = "exec.states.pruned"
	MetricRevivals      = "exec.revivals"

	// Parallel frontier engine (internal/symexec/frontier.go).
	MetricEpochs          = "exec.epochs"
	MetricEpochFill       = "exec.epoch.fill"       // histogram: states drafted per epoch
	MetricWorkers         = "exec.workers"          // gauge: configured worker count
	MetricWorkerBusyNanos = "exec.workers.busy_ns"  // counter: summed worker busy time
	MetricWorkerUtilPct   = "exec.workers.util_pct" // gauge: busy / (workers × elapsed)
	// Per-slot solver wall split: one counter per draft slot, named
	// "exec.slot.<id>.solver_wall_ns" (see SlotSolverWallMetric). The run
	// total still folds into the executor's SolverTime; the split exists
	// so traces show which lanes carried the solver load.
	MetricSlotSolverWallPrefix = "exec.slot."

	// Distributed dispatch (internal/core/dispatch.go): attempt units
	// executed remotely ("stolen" by a worker process), locally, re-run
	// locally after a worker failure, and workers lost to transport
	// errors. Scheduling telemetry — never part of DetectionDigest.
	MetricDispatchRemote       = "dispatch.units.remote"
	MetricDispatchLocal        = "dispatch.units.local"
	MetricDispatchRedispatched = "dispatch.units.redispatched"
	MetricDispatchWorkersDead  = "dispatch.workers.dead"
	MetricDispatchUnitBytes    = "dispatch.unit.bytes"   // counter: encoded unit payloads shipped
	MetricDispatchResultBytes  = "dispatch.result.bytes" // counter: result payloads received

	// Compositional execution (internal/summary + internal/symexec).
	// Cache hit/miss/mined/failed rates are timing dependent under
	// concurrency (telemetry only); summary.calls/paths and havoc/depth
	// counters mirror the deterministic Result counters.
	MetricSummaryHits    = "summary.hits"
	MetricSummaryMisses  = "summary.misses"
	MetricSummaryMined   = "summary.mined"
	MetricSummaryFailed  = "summary.failed"
	MetricSummaryCalls   = "summary.calls"
	MetricSummaryPaths   = "summary.paths"
	MetricHavocCalls     = "summary.havoc_calls"
	MetricDepthExhausted = "exec.depth_exhausted"

	// Guidance (internal/core): distribution of diverted-hop counts at
	// the moment states are suspended — the τ pressure profile.
	MetricDivertedHops = "guidance.diverted_hops"

	// Candidate verification (internal/core).
	MetricCandidateAttempts   = "candidate.attempts"
	MetricCandidateFound      = "candidate.found"
	MetricCandidateInfeasible = "candidate.infeasible"

	// Corpus collection (internal/monitor).
	MetricMonitorRuns    = "monitor.runs"
	MetricMonitorRecords = "monitor.records"

	// Analysis-as-a-service daemon (internal/service). Queue depth is a
	// gauge sampled on every admission and dispatch; the job counters
	// split completions by terminal state; wall_ms is the job wall-time
	// histogram (submission to terminal state) whose p50/p99 ride the
	// /metrics exposition. Per-tenant admissions use
	// ServiceTenantMetric(tenant).
	MetricServiceQueueDepth      = "service.queue.depth"
	MetricServiceJobsSubmitted   = "service.jobs.submitted"
	MetricServiceJobsCompleted   = "service.jobs.completed"
	MetricServiceJobsFailed      = "service.jobs.failed"
	MetricServiceJobsCancelled   = "service.jobs.cancelled"
	MetricServiceJobsInterrupted = "service.jobs.interrupted"
	MetricServiceJobsRejected    = "service.jobs.rejected" // queue-full 429s
	MetricServiceJobWallMS       = "service.job.wall_ms"
	MetricServiceIngestRuns      = "service.ingest.runs"
	MetricServiceIngestBytes     = "service.ingest.bytes"
	MetricServiceTenantPrefix    = "service.tenant."

	// Segmented trace store (internal/corpus).
	MetricCorpusRunsAppended   = "corpus.runs.appended"
	MetricCorpusBlocksWritten  = "corpus.blocks.written"
	MetricCorpusSegmentsSealed = "corpus.segments.sealed"
	MetricCorpusBytesWritten   = "corpus.bytes.written" // compressed, sealed segments only
	MetricCorpusCompactions    = "corpus.compactions"
	MetricCorpusScanRuns       = "corpus.scan.runs"
	MetricCorpusScanBytes      = "corpus.scan.bytes" // compressed bytes streamed by iterators
)

// HopBuckets is the standard bucketing for MetricDivertedHops: fine near
// zero (on-path states) and coarser toward and beyond typical τ values.
var HopBuckets = []int64{0, 1, 2, 3, 5, 8, 13, 21}

// ServiceJobWallBuckets is the standard bucketing for MetricServiceJobWallMS:
// fine under a second (cache-warm small jobs) and coarser out to the
// minutes a cold guided run can take.
var ServiceJobWallBuckets = []int64{50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000, 60000, 300000}

// ServiceTenantMetric names the per-tenant admission counter for one
// tenant ID, so fairness is observable per tenant in /metrics.
func ServiceTenantMetric(tenant string) string {
	return MetricServiceTenantPrefix + tenant + ".admitted"
}

// SlotSolverWallMetric names the per-slot solver wall counter for one
// frontier draft slot. Slot ids are stable within a run (0..EpochWidth-1),
// so a trace's slot counters can be compared across epochs.
func SlotSolverWallMetric(slot int) string {
	return fmt.Sprintf("%s%d.solver_wall_ns", MetricSlotSolverWallPrefix, slot)
}

// EpochFillBuckets is the standard bucketing for MetricEpochFill: how many
// states each epoch actually drafted, up to the configured width.
var EpochFillBuckets = []int64{1, 2, 4, 8, 16, 32}

// Registry is a race-safe named-metric registry. Metrics are created on
// first use and live for the registry's lifetime; lookups take a mutex,
// updates on the returned handles are lock-free atomics — hot paths
// resolve a handle once and hammer the atomic.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Nil-safe:
// a nil registry returns a nil counter, whose methods are no-ops.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use (nil-safe).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// ascending bucket upper bounds on first use; later calls reuse the
// existing instance and ignore bounds (nil-safe).
func (r *Registry) Histogram(name string, bounds ...int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot flattens every metric into name→value pairs: counters and
// gauges map directly; a histogram expands to name.count, name.sum, one
// name.le_B entry per bucket (plus name.le_inf for the overflow bucket),
// and — when it has observations — interpolated name.p50 and name.p99
// quantile estimates. Safe to call while updates are in flight — values
// are per-metric atomic reads, not a consistent cut.
func (r *Registry) Snapshot() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters)+len(r.gauges)+8*len(r.hists))
	for n, c := range r.counters {
		out[n] = c.Load()
	}
	for n, g := range r.gauges {
		out[n] = g.Load()
	}
	for n, h := range r.hists {
		out[n+".count"] = h.count.Load()
		out[n+".sum"] = h.sum.Load()
		for i, b := range h.bounds {
			out[fmt.Sprintf("%s.le_%d", n, b)] = h.counts[i].Load()
		}
		out[n+".le_inf"] = h.counts[len(h.bounds)].Load()
		if h.Count() > 0 {
			out[n+".p50"] = int64(h.Quantile(0.50) + 0.5)
			out[n+".p99"] = int64(h.Quantile(0.99) + 0.5)
		}
	}
	return out
}

// HistogramSnapshot is one histogram's point-in-time state: per-bucket
// counts (len(Bounds)+1, the last entry being the +inf overflow bucket)
// plus the running count and sum.
type HistogramSnapshot struct {
	Name   string
	Bounds []int64
	Counts []int64
	Count  int64
	Sum    int64
}

// Export is a typed registry snapshot that keeps the three metric kinds
// separate, for renderers that need the distinction (the Prometheus
// exposition endpoint renders counters, gauges, and histogram bucket
// series differently). Histograms are sorted by name.
type Export struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	Histograms []HistogramSnapshot
}

// Export captures a typed snapshot of the registry (nil-safe: a nil
// registry exports empty maps). Like Snapshot, values are per-metric
// atomic reads, not a consistent cut.
func (r *Registry) Export() Export {
	ex := Export{Counters: map[string]int64{}, Gauges: map[string]int64{}}
	if r == nil {
		return ex
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for n, c := range r.counters {
		ex.Counters[n] = c.Load()
	}
	for n, g := range r.gauges {
		ex.Gauges[n] = g.Load()
	}
	for n, h := range r.hists {
		hs := HistogramSnapshot{
			Name:   n,
			Bounds: h.bounds,
			Counts: make([]int64, len(h.counts)),
			Count:  h.count.Load(),
			Sum:    h.sum.Load(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		ex.Histograms = append(ex.Histograms, hs)
	}
	sort.Slice(ex.Histograms, func(i, j int) bool { return ex.Histograms[i].Name < ex.Histograms[j].Name })
	return ex
}

// Format renders the snapshot as a sorted two-column text table (the
// binaries' -metrics dump).
func (r *Registry) Format() string {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, n := range names {
		fmt.Fprintf(&sb, "%-36s %12d\n", n, snap[n])
	}
	return sb.String()
}

// Counter is a monotonically increasing metric. The zero value is ready;
// all methods are nil-safe no-ops on a nil receiver.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value (0 on nil).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a set-to-current-value metric (nil-safe like Counter).
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// SetMax ratchets the gauge up to n if n exceeds the current value
// (lock-free; used for peak trackers shared across goroutines).
func (g *Gauge) SetMax(n int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Load returns the current value (0 on nil).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into ≤-bound buckets with an implicit
// +inf overflow bucket, plus running count and sum. Observations are
// lock-free atomics (nil-safe).
type Histogram struct {
	bounds     []int64
	counts     []atomic.Int64
	count, sum atomic.Int64
}

func newHistogram(bounds []int64) *Histogram {
	b := make([]int64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			return
		}
	}
	h.counts[len(h.bounds)].Add(1)
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile estimates the q-quantile (q in [0,1]) from the bucket counts
// by linear interpolation inside the bucket holding the q-th observation,
// assuming a uniform spread within each bucket (the standard
// bucket-histogram estimator). The first bucket interpolates from 0 (all
// observed values are non-negative in this registry); an estimate landing
// in the +inf overflow bucket is clamped to the highest finite bound,
// since the ray above it has no upper edge to interpolate toward.
// Returns 0 with no observations (or on nil).
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 || len(h.bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i, b := range h.bounds {
		n := h.counts[i].Load()
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= rank {
			lo := float64(0)
			if i > 0 {
				lo = float64(h.bounds[i-1])
			}
			hi := float64(b)
			if hi < lo {
				hi = lo
			}
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	// The rank falls in the overflow bucket: clamp to the last finite bound.
	return float64(h.bounds[len(h.bounds)-1])
}
