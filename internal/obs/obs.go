// Package obs is the pipeline's observability layer: a race-safe metrics
// registry (counters, gauges, histograms), hierarchical spans that ride
// the context.Context plumbing of the pipeline, and a JSONL event sink
// streaming span open/close events, periodic progress snapshots, and
// warnings so long runs emit machine-readable progress while they run.
//
// The layer is opt-in and zero-dependency (standard library only). A run
// without an Obs in its context pays one context lookup per executor run
// and nothing else: every entry point is nil-safe, so instrumented code
// calls it unconditionally and a disabled handle compiles down to a nil
// check.
package obs

import (
	"context"
	"os"
	"sync/atomic"
	"time"
)

// Obs bundles a metrics registry with an event sink and the snapshot
// cadence. One Obs observes one logical run (a pipeline invocation, a
// benchmark sweep); concurrent phases share it freely — the registry and
// sink are race-safe.
type Obs struct {
	// Metrics is the run's metric registry (never nil on a non-nil Obs).
	Metrics *Registry
	// Interval is the period between progress snapshots emitted by
	// long-running phases. Zero disables snapshots; span and warn events
	// still flow.
	Interval time.Duration

	sink Sink
	ids  atomic.Int64
}

// New returns an Obs emitting to sink (nil sink: metrics only).
func New(sink Sink) *Obs {
	return &Obs{Metrics: NewRegistry(), sink: sink}
}

// Emit forwards ev to the sink, stamping the time if unset. No-op on a
// nil Obs or nil sink.
func (o *Obs) Emit(ev Event) {
	if o == nil || o.sink == nil {
		return
	}
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	o.sink.Emit(ev)
}

// nextID allocates a process-unique span ID (IDs start at 1; 0 means "no
// span" in parent references).
func (o *Obs) nextID() int64 { return o.ids.Add(1) }

type obsKey struct{}

// NewContext returns ctx carrying o. A nil o returns ctx unchanged, so
// callers wire the flag value through without branching.
func NewContext(ctx context.Context, o *Obs) context.Context {
	if o == nil {
		return ctx
	}
	return context.WithValue(ctx, obsKey{}, o)
}

// FromContext returns the context's Obs, or nil when observability is
// disabled for this run.
func FromContext(ctx context.Context) *Obs {
	if ctx == nil {
		return nil
	}
	o, _ := ctx.Value(obsKey{}).(*Obs)
	return o
}

// Setup builds the Obs for a binary from its flag values: tracePath
// streams JSONL events to a file (empty: no trace), interval sets the
// progress-snapshot cadence, and metrics requests a registry even without
// a trace (for the -metrics dump at exit). The returned close function
// flushes and closes the trace file; it is never nil. When neither a
// trace nor metrics is requested the Obs is nil and the whole layer stays
// disabled.
func Setup(tracePath string, interval time.Duration, metrics bool) (*Obs, func() error, error) {
	noop := func() error { return nil }
	var sink Sink
	closer := noop
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return nil, noop, err
		}
		js := NewJSONLSink(f)
		sink = js
		closer = js.Close
	}
	if sink == nil && !metrics {
		return nil, noop, nil
	}
	o := New(sink)
	o.Interval = interval
	return o, closer, nil
}
