// Package obs is the pipeline's observability layer: a race-safe metrics
// registry (counters, gauges, histograms), hierarchical spans that ride
// the context.Context plumbing of the pipeline, and a JSONL event sink
// streaming span open/close events, periodic progress snapshots, and
// warnings so long runs emit machine-readable progress while they run.
//
// The layer is opt-in and zero-dependency (standard library only). A run
// without an Obs in its context pays one context lookup per executor run
// and nothing else: every entry point is nil-safe, so instrumented code
// calls it unconditionally and a disabled handle compiles down to a nil
// check.
package obs

import (
	"context"
	"os"
	"sync/atomic"
	"time"
)

// Obs bundles a metrics registry with an event sink and the snapshot
// cadence. One Obs observes one logical run (a pipeline invocation, a
// benchmark sweep); concurrent phases share it freely — the registry and
// sink are race-safe.
type Obs struct {
	// Metrics is the run's metric registry (never nil on a non-nil Obs).
	Metrics *Registry
	// Interval is the period between progress snapshots emitted by
	// long-running phases. Zero disables snapshots; span and warn events
	// still flow.
	Interval time.Duration

	sink Sink
}

// spanIDs is the process-wide span ID allocator. IDs are unique across
// every Obs in the process — not just within one — so events from
// derived handles (the daemon runs many jobs, each with its own Obs)
// interleave in shared sinks without span collisions.
var spanIDs atomic.Int64

// New returns an Obs emitting to sink (nil sink: metrics only).
func New(sink Sink) *Obs {
	return &Obs{Metrics: NewRegistry(), sink: sink}
}

// Derive returns an Obs that shares parent's metrics registry and
// snapshot cadence but emits events both to parent's sinks and to extra —
// how the statsymd daemon gives each job a private event stream (its
// per-job hub feeding /v1/jobs/{id}/events) while job metrics still
// aggregate into the daemon-wide registry and daemon-wide sinks (trace,
// flight recorder, global /progress) still see everything. A nil parent
// yields a standalone Obs over extra.
func Derive(parent *Obs, extra ...Sink) *Obs {
	var sinks MultiSink
	if parent != nil {
		sinks = append(sinks, parent)
	}
	for _, s := range extra {
		if s != nil {
			sinks = append(sinks, s)
		}
	}
	var sink Sink
	switch len(sinks) {
	case 0:
	case 1:
		sink = sinks[0]
	default:
		sink = sinks
	}
	o := New(sink)
	if parent != nil {
		o.Metrics = parent.Metrics
		o.Interval = parent.Interval
	}
	return o
}

// Emit forwards ev to the sink, stamping the time if unset. No-op on a
// nil Obs or nil sink.
func (o *Obs) Emit(ev Event) {
	if o == nil || o.sink == nil {
		return
	}
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	o.sink.Emit(ev)
}

// nextID allocates a process-unique span ID (IDs start at 1; 0 means "no
// span" in parent references).
func (o *Obs) nextID() int64 { return spanIDs.Add(1) }

type obsKey struct{}

// NewContext returns ctx carrying o. A nil o returns ctx unchanged, so
// callers wire the flag value through without branching.
func NewContext(ctx context.Context, o *Obs) context.Context {
	if o == nil {
		return ctx
	}
	return context.WithValue(ctx, obsKey{}, o)
}

// FromContext returns the context's Obs, or nil when observability is
// disabled for this run.
func FromContext(ctx context.Context) *Obs {
	if ctx == nil {
		return nil
	}
	o, _ := ctx.Value(obsKey{}).(*Obs)
	return o
}

// Setup builds the Obs for a binary from its flag values: tracePath
// streams JSONL events to a file (empty: no trace), interval sets the
// progress-snapshot cadence, and metrics requests a registry even without
// a trace (for the -metrics dump at exit). The returned close function
// flushes and closes the trace file; it is never nil. When neither a
// trace nor metrics is requested the Obs is nil and the whole layer stays
// disabled.
func Setup(tracePath string, interval time.Duration, metrics bool) (*Obs, func() error, error) {
	noop := func() error { return nil }
	var sink Sink
	closer := noop
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return nil, noop, err
		}
		js := NewJSONLSink(f)
		sink = js
		closer = js.Close
	}
	if sink == nil && !metrics {
		return nil, noop, nil
	}
	o := New(sink)
	o.Interval = interval
	return o, closer, nil
}
