package flight

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/obs"
)

// Dump-file format (JSONL, one record per line):
//
//	{"type":"flight.header","reason":...,"t":...,"cats":K,"depth":D}
//	{"type":"flight.category","name":"progress","total":T,"kept":M}
//	{"type":"flight.event","cat":"progress","seq":N,"ev":{...obs.Event...}}
//	... (M event lines per category, seq strictly increasing)
//
// Categories are sorted by name; events within a category are oldest
// first. total counts every event the category ever saw, so total-kept is
// the number evicted by the ring — the dump states its own truncation.

// Header is the dump's first line.
type Header struct {
	Type   string    `json:"type"` // "flight.header"
	Reason string    `json:"reason"`
	Time   time.Time `json:"t"`
	Cats   int       `json:"cats"`
	Depth  int       `json:"depth"`
}

// Category introduces one category's event block.
type Category struct {
	Type  string `json:"type"` // "flight.category"
	Name  string `json:"name"`
	Total int64  `json:"total"`
	Kept  int    `json:"kept"`
}

// Line is one retained event with its category and sequence number.
type Line struct {
	Type string    `json:"type"` // "flight.event"
	Cat  string    `json:"cat"`
	Seq  int64     `json:"seq"`
	Ev   obs.Event `json:"ev"`
}

// Record-type tags.
const (
	TypeHeader   = "flight.header"
	TypeCategory = "flight.category"
	TypeEvent    = "flight.event"
)

// WriteTo dumps the recorder's retained events to w. Safe to call while
// emitters are still running: racing slots are skipped, never torn.
func (r *Recorder) WriteTo(w io.Writer, reason string) error {
	if r == nil {
		return nil
	}
	cats := *r.cats.Load()
	names := make([]string, 0, len(cats))
	for n := range cats {
		names = append(names, n)
	}
	sort.Strings(names)

	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(Header{Type: TypeHeader, Reason: reason, Time: time.Now(), Cats: len(names), Depth: r.depth}); err != nil {
		return err
	}
	for _, n := range names {
		recs, total := cats[n].snapshot()
		if err := enc.Encode(Category{Type: TypeCategory, Name: n, Total: total, Kept: len(recs)}); err != nil {
			return err
		}
		for _, rec := range recs {
			if err := enc.Encode(Line{Type: TypeEvent, Cat: n, Seq: rec.seq, Ev: rec.ev}); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// DumpFile writes the dump to path via a same-directory temp file renamed
// into place after a successful sync (the trace.WriteFile discipline), so
// a crash mid-dump never leaves a truncated artifact under the final
// name. Only the first DumpFile of a recorder's lifetime writes; later
// calls (a fault followed by the cancellation that tears the run down,
// or a panic unwinding through stacked handlers) are no-ops returning
// nil, so the artifact always reflects the first trigger.
func (r *Recorder) DumpFile(path, reason string) error {
	if r == nil || path == "" {
		return nil
	}
	if !r.dumped.CompareAndSwap(false, true) {
		return nil
	}
	f, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	cleanup := func() {
		f.Close()
		os.Remove(f.Name())
	}
	if err := r.WriteTo(f, reason); err != nil {
		cleanup()
		return err
	}
	if err := f.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return err
	}
	if err := os.Rename(f.Name(), path); err != nil {
		os.Remove(f.Name())
		return err
	}
	return nil
}

// knownEventTypes mirrors the obs event vocabulary for validation.
var knownEventTypes = map[string]bool{
	obs.EventSpanOpen:  true,
	obs.EventSpanClose: true,
	obs.EventProgress:  true,
	obs.EventWarn:      true,
	obs.EventDispatch:  true,
}

// Validate checks a flight dump's structural invariants and returns the
// violations found (up to 20) plus a one-line summary. Checked: the
// header leads and declares the category count; every category block's
// kept count matches its event lines and never exceeds the ring depth or
// the category's total; event lines carry their block's category, a known
// obs event type equal to the category, and strictly increasing sequence
// numbers. cmd/tracecheck fronts this for CI.
func Validate(rd io.Reader) (problems []string, summary string, err error) {
	flagProblem := func(format string, args ...any) {
		if len(problems) < 20 {
			problems = append(problems, fmt.Sprintf(format, args...))
		}
	}
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)

	var hdr Header
	var cats, events, lines int
	var cur *Category   // category block being read
	var curSeen int     // event lines seen in the current block
	var lastSeq int64   // last seq in the current block
	var lastName string // previous category name (sorted-order check)

	endBlock := func() {
		if cur != nil && curSeen != cur.Kept {
			flagProblem("category %q declares kept=%d but has %d event lines", cur.Name, cur.Kept, curSeen)
		}
		cur = nil
	}

	for sc.Scan() {
		lines++
		line := sc.Bytes()
		if len(line) == 0 {
			flagProblem("line %d: empty", lines)
			continue
		}
		var probe struct {
			Type string `json:"type"`
		}
		if jerr := json.Unmarshal(line, &probe); jerr != nil {
			flagProblem("line %d: not valid JSON: %v", lines, jerr)
			continue
		}
		switch probe.Type {
		case TypeHeader:
			if lines != 1 {
				flagProblem("line %d: header not on line 1", lines)
				continue
			}
			if jerr := json.Unmarshal(line, &hdr); jerr != nil {
				flagProblem("line 1: bad header: %v", jerr)
			}
			if hdr.Depth <= 0 {
				flagProblem("line 1: header depth %d not positive", hdr.Depth)
			}
		case TypeCategory:
			if lines == 1 {
				flagProblem("line 1: dump does not start with a flight.header")
			}
			endBlock()
			var c Category
			if jerr := json.Unmarshal(line, &c); jerr != nil {
				flagProblem("line %d: bad category: %v", lines, jerr)
				continue
			}
			cats++
			if c.Name <= lastName && lastName != "" {
				flagProblem("line %d: category %q out of sorted order (after %q)", lines, c.Name, lastName)
			}
			lastName = c.Name
			if hdr.Depth > 0 && c.Kept > hdr.Depth {
				flagProblem("line %d: category %q kept %d exceeds ring depth %d", lines, c.Name, c.Kept, hdr.Depth)
			}
			if int64(c.Kept) > c.Total {
				flagProblem("line %d: category %q kept %d exceeds total %d", lines, c.Name, c.Kept, c.Total)
			}
			cur = &c
			curSeen = 0
			lastSeq = -1
		case TypeEvent:
			var l Line
			if jerr := json.Unmarshal(line, &l); jerr != nil {
				flagProblem("line %d: bad event: %v", lines, jerr)
				continue
			}
			events++
			if cur == nil {
				flagProblem("line %d: event outside a category block", lines)
				continue
			}
			curSeen++
			if l.Cat != cur.Name {
				flagProblem("line %d: event category %q inside block %q", lines, l.Cat, cur.Name)
			}
			if !knownEventTypes[l.Ev.Type] {
				flagProblem("line %d: unknown event type %q", lines, l.Ev.Type)
			} else if l.Ev.Type != cur.Name {
				flagProblem("line %d: event type %q filed under category %q", lines, l.Ev.Type, cur.Name)
			}
			if l.Seq <= lastSeq {
				flagProblem("line %d: seq %d not increasing (prev %d)", lines, l.Seq, lastSeq)
			}
			lastSeq = l.Seq
			if l.Ev.Time.IsZero() {
				flagProblem("line %d: event missing timestamp", lines)
			}
		default:
			flagProblem("line %d: unknown record type %q", lines, probe.Type)
		}
	}
	if serr := sc.Err(); serr != nil {
		return nil, "", serr
	}
	endBlock()
	if lines == 0 {
		flagProblem("empty dump")
	}
	if hdr.Cats != cats && hdr.Type == TypeHeader {
		flagProblem("header declares %d categories, dump has %d", hdr.Cats, cats)
	}
	summary = fmt.Sprintf("%d lines — flight dump (reason %q), %d categories, %d events, %d problems",
		lines, hdr.Reason, cats, events, len(problems))
	return problems, summary, nil
}
