// Package flight is a bounded lock-free flight recorder for the pipeline's
// observability events: it retains the last N events per category
// (category = event type: span.open, progress, warn, ...) in fixed-size
// rings and dumps itself as a JSONL post-mortem artifact on fault
// detection, panic, or context cancellation — so a crashed or killed run
// leaves evidence without full tracing enabled.
//
// The recorder implements obs.Sink, so it taps the same event stream a
// -trace file would, but with O(categories × depth) memory instead of
// unbounded disk. The hot path (Emit) takes no locks: the category map is
// copy-on-write behind an atomic pointer, and each ring append is one
// atomic sequence increment plus one atomic slot-pointer store. Readers
// (Dump) observe each slot atomically; a dump raced by writers sees a
// consistent set of whole events, never a torn one.
package flight

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// DefaultDepth is the per-category ring capacity when Options.Depth is 0.
const DefaultDepth = 256

// Recorder retains the last Depth events per category. The zero value is
// not usable; build one with New. All methods are nil-safe no-ops.
type Recorder struct {
	depth int
	start time.Time

	// cats is a copy-on-write map[string]*ring: lock-free lookups on the
	// Emit hot path, with mu serializing the rare insert of a new category.
	cats atomic.Pointer[map[string]*ring]
	mu   sync.Mutex

	// dumped latches the first dump so a panic unwinding through several
	// deferred handlers (or a fault followed by a cancel) writes once.
	dumped atomic.Bool
}

// ring is one category's bounded buffer. seq counts every append ever;
// slot i%depth holds the i-th event. Writers may race on the same slot
// under wraparound pressure; the slot pointer store is atomic, so readers
// always see some whole event from the newest few.
type ring struct {
	seq   atomic.Int64
	slots []atomic.Pointer[record]
}

// record is one retained event with its per-category sequence number.
type record struct {
	seq int64
	ev  obs.Event
}

// New returns a recorder retaining the last depth events per category
// (depth <= 0: DefaultDepth).
func New(depth int) *Recorder {
	if depth <= 0 {
		depth = DefaultDepth
	}
	r := &Recorder{depth: depth, start: time.Now()}
	empty := map[string]*ring{}
	r.cats.Store(&empty)
	return r
}

// Depth returns the per-category ring capacity (0 on nil).
func (r *Recorder) Depth() int {
	if r == nil {
		return 0
	}
	return r.depth
}

// Emit implements obs.Sink: the event is appended to its type's ring,
// evicting the oldest retained event of that category once the ring is
// full. Lock-free except when a category is seen for the first time.
func (r *Recorder) Emit(ev obs.Event) {
	if r == nil {
		return
	}
	rg := r.ring(ev.Type)
	seq := rg.seq.Add(1) - 1
	rg.slots[seq%int64(len(rg.slots))].Store(&record{seq: seq, ev: ev})
}

// ring returns the category's ring, creating it on first use.
func (r *Recorder) ring(cat string) *ring {
	if rg, ok := (*r.cats.Load())[cat]; ok {
		return rg
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := *r.cats.Load()
	if rg, ok := cur[cat]; ok {
		return rg
	}
	next := make(map[string]*ring, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	rg := &ring{slots: make([]atomic.Pointer[record], r.depth)}
	next[cat] = rg
	r.cats.Store(&next)
	return rg
}

// snapshot reads one category's retained events, oldest first, with their
// sequence numbers and the total ever appended.
func (rg *ring) snapshot() (recs []record, total int64) {
	total = rg.seq.Load()
	depth := int64(len(rg.slots))
	lo := int64(0)
	if total > depth {
		lo = total - depth
	}
	for i := lo; i < total; i++ {
		p := rg.slots[i%depth].Load()
		if p == nil || p.seq != i {
			// Slot not yet stored, or already lapped by a racing writer
			// (whose record surfaces at its own index). Skipping keeps the
			// snapshot strictly seq-ordered and duplicate-free.
			continue
		}
		recs = append(recs, *p)
	}
	return recs, total
}
