package flight

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func ev(typ string, n int) obs.Event {
	return obs.Event{Time: time.Unix(1, 0).Add(time.Duration(n)), Type: typ, Msg: fmt.Sprint(n)}
}

// TestRingWraparound checks that a category retains exactly the last
// depth events with correct, strictly increasing sequence numbers.
func TestRingWraparound(t *testing.T) {
	r := New(8)
	const total = 30
	for i := 0; i < total; i++ {
		r.Emit(ev(obs.EventProgress, i))
	}
	var buf bytes.Buffer
	if err := r.WriteTo(&buf, "test"); err != nil {
		t.Fatal(err)
	}
	problems, summary, err := Validate(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) > 0 {
		t.Fatalf("validate: %v", problems)
	}
	if !strings.Contains(summary, "8 events") {
		t.Errorf("summary %q, want 8 retained events", summary)
	}

	// The retained window is exactly [total-depth, total).
	var seqs []int64
	var cat Category
	for _, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("bad line %s: %v", line, err)
		}
		switch probe.Type {
		case TypeCategory:
			if err := json.Unmarshal(line, &cat); err != nil {
				t.Fatal(err)
			}
		case TypeEvent:
			var l Line
			if err := json.Unmarshal(line, &l); err != nil {
				t.Fatal(err)
			}
			seqs = append(seqs, l.Seq)
			if want := fmt.Sprint(l.Seq); l.Ev.Msg != want {
				t.Errorf("seq %d carries event %q, want %q", l.Seq, l.Ev.Msg, want)
			}
		}
	}
	if cat.Total != total || cat.Kept != 8 {
		t.Errorf("category total/kept = %d/%d, want %d/8", cat.Total, cat.Kept, total)
	}
	for i, s := range seqs {
		if want := int64(total - 8 + i); s != want {
			t.Errorf("seq[%d] = %d, want %d", i, s, want)
		}
	}
}

// TestDumpFileOrderingAndLatch checks the dump artifact: categories
// sorted, events ordered within each, the temp+rename write, and the
// first-dump-wins latch.
func TestDumpFileOrderingAndLatch(t *testing.T) {
	r := New(4)
	for i := 0; i < 6; i++ {
		r.Emit(ev(obs.EventProgress, i))
	}
	r.Emit(ev(obs.EventWarn, 100))
	r.Emit(ev(obs.EventSpanOpen, 200))

	path := filepath.Join(t.TempDir(), "flight.jsonl")
	if err := r.DumpFile(path, "fault"); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	problems, summary, err := Validate(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) > 0 {
		t.Fatalf("validate: %v", problems)
	}
	if !strings.Contains(summary, `reason "fault"`) || !strings.Contains(summary, "3 categories") {
		t.Errorf("summary = %q", summary)
	}
	// Category order in the file must be sorted: progress, span.open, warn.
	text := string(blob)
	pi := strings.Index(text, `"name":"progress"`)
	si := strings.Index(text, `"name":"span.open"`)
	wi := strings.Index(text, `"name":"warn"`)
	if !(pi >= 0 && pi < si && si < wi) {
		t.Errorf("categories not sorted: progress@%d span.open@%d warn@%d", pi, si, wi)
	}
	if strings.Contains(strings.Join(dirNames(t, filepath.Dir(path)), ","), ".tmp-") {
		t.Error("temp file left behind")
	}

	// Second dump is latched: the artifact still says "fault".
	r.Emit(ev(obs.EventProgress, 999))
	if err := r.DumpFile(path, "cancelled"); err != nil {
		t.Fatal(err)
	}
	blob2, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Error("latched dump rewrote the artifact")
	}
}

func dirNames(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names
}

// TestConcurrentEmitAndDump races emitters against dumps (meaningful
// under -race): every dump must be structurally valid even mid-wrap.
func TestConcurrentEmitAndDump(t *testing.T) {
	r := New(16)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Emit(ev(obs.EventProgress, w*1_000_000+i))
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := r.WriteTo(&buf, "race"); err != nil {
			t.Fatal(err)
		}
		problems, _, err := Validate(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if len(problems) > 0 {
			t.Fatalf("dump %d invalid under concurrency: %v", i, problems)
		}
	}
	close(stop)
	wg.Wait()
}

// TestValidateCatchesCorruption checks the validator flags the classes
// of damage it claims to: out-of-order seq, category mismatch, missing
// header, kept/line-count mismatch.
func TestValidateCatchesCorruption(t *testing.T) {
	mk := func(lines ...string) []string {
		problems, _, err := Validate(strings.NewReader(strings.Join(lines, "\n") + "\n"))
		if err != nil {
			t.Fatal(err)
		}
		return problems
	}
	hdr := `{"type":"flight.header","reason":"x","t":"2026-01-01T00:00:00Z","cats":1,"depth":4}`
	cat := `{"type":"flight.category","name":"progress","total":2,"kept":2}`
	e0 := `{"type":"flight.event","cat":"progress","seq":0,"ev":{"t":"2026-01-01T00:00:00Z","type":"progress"}}`
	e1 := `{"type":"flight.event","cat":"progress","seq":1,"ev":{"t":"2026-01-01T00:00:00Z","type":"progress"}}`

	if p := mk(hdr, cat, e0, e1); len(p) != 0 {
		t.Fatalf("clean dump flagged: %v", p)
	}
	if p := mk(hdr, cat, e1, e0); len(p) == 0 {
		t.Error("out-of-order seq not flagged")
	}
	if p := mk(cat, e0, e1); len(p) == 0 {
		t.Error("missing header not flagged")
	}
	if p := mk(hdr, cat, e0); len(p) == 0 {
		t.Error("kept/line-count mismatch not flagged")
	}
	bad := strings.Replace(e1, `"cat":"progress"`, `"cat":"warn"`, 1)
	if p := mk(hdr, cat, e0, bad); len(p) == 0 {
		t.Error("category mismatch not flagged")
	}
}

// TestRecorderNilSafety: nil recorder is inert everywhere.
func TestRecorderNilSafety(t *testing.T) {
	var r *Recorder
	r.Emit(ev(obs.EventProgress, 1))
	if err := r.WriteTo(&bytes.Buffer{}, "x"); err != nil {
		t.Fatal(err)
	}
	if err := r.DumpFile(filepath.Join(t.TempDir(), "f"), "x"); err != nil {
		t.Fatal(err)
	}
	if r.Depth() != 0 {
		t.Error("nil Depth != 0")
	}
}
