package live

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flight"
)

// Options are the observability flag values a binary collects; Init turns
// them into a wired Runtime. This is the one place the statsym, symexec
// and benchtab binaries share their -listen/-trace/-metrics/-flight
// plumbing instead of three copies of it.
type Options struct {
	Binary string // binary name for diagnostics ("statsym", ...)

	Listen string // -listen: introspection server address ("" disables)
	Pprof  string // -pprof: deprecated alias for -listen (pprof now rides the same mux)

	Trace    string        // -trace: JSONL event trace path ("" disables)
	Interval time.Duration // -trace-interval: progress-snapshot cadence
	Metrics  bool          // -metrics: keep a registry even without trace/listen

	Flight      string // -flight: flight-recorder dump path ("" disables)
	FlightDepth int    // -flight-depth: per-category ring depth (0: default)

	// Mounts are extra handlers grafted onto the live server's mux under
	// their ServeMux patterns — how statsymd serves its /v1 job API and
	// the introspection endpoints from one listener. Ignored when Listen
	// is empty.
	Mounts map[string]http.Handler

	// ForceHub keeps an event hub (and therefore a non-nil Obs) even
	// without a Listen address, for embedders that fan events out to
	// their own subscribers (the daemon's per-job SSE streams).
	ForceHub bool
}

// Runtime is a binary's wired observability: the Obs handle (nil when
// everything is disabled), the live server, and the flight recorder.
// All methods are nil-safe.
type Runtime struct {
	obsv    *obs.Obs
	hub     *Hub
	rec     *flight.Recorder
	srv     *Server
	opts    Options
	closers []func() error
	faulted atomic.Bool
}

// Init wires the runtime from flag values. The deprecated -pprof address
// is honored as -listen when -listen is unset (pprof handlers are on the
// live mux). Errors come only from the trace file or the listener.
func Init(o Options) (*Runtime, error) {
	rt := &Runtime{opts: o}
	if o.Listen == "" && o.Pprof != "" {
		fmt.Fprintf(os.Stderr, "%s: -pprof is deprecated, use -listen (pprof is served on the same mux)\n", o.Binary)
		rt.opts.Listen = o.Pprof
	}
	o = rt.opts

	var sinks obs.MultiSink
	var closeTrace func() error
	if o.Trace != "" {
		f, err := os.Create(o.Trace)
		if err != nil {
			return nil, err
		}
		js := obs.NewJSONLSink(f)
		sinks = append(sinks, js)
		closeTrace = js.Close
	}
	if o.Listen != "" || o.ForceHub {
		rt.hub = NewHub()
		sinks = append(sinks, rt.hub)
	}
	if o.Flight != "" {
		rt.rec = flight.New(o.FlightDepth)
		sinks = append(sinks, rt.rec)
	}

	if len(sinks) > 0 || o.Metrics {
		var sink obs.Sink
		switch len(sinks) {
		case 0:
		case 1:
			sink = sinks[0]
		default:
			sink = sinks
		}
		rt.obsv = obs.New(sink)
		rt.obsv.Interval = o.Interval
	}
	if closeTrace != nil {
		rt.closers = append(rt.closers, closeTrace)
	}

	if o.Listen != "" {
		rt.srv = NewServer(rt.obsv, rt.hub)
		for pattern, h := range o.Mounts {
			rt.srv.Mount(pattern, h)
		}
		addr, err := rt.srv.Start(o.Listen)
		if err != nil {
			for _, c := range rt.closers {
				_ = c()
			}
			return nil, fmt.Errorf("listen: %w", err)
		}
		fmt.Fprintf(os.Stderr, "%s: live introspection on http://%s/\n", o.Binary, addr)
	}
	return rt, nil
}

// Obs returns the run's observability handle (nil when disabled).
func (rt *Runtime) Obs() *obs.Obs {
	if rt == nil {
		return nil
	}
	return rt.obsv
}

// Context returns ctx carrying the runtime's Obs (ctx unchanged when
// observability is disabled).
func (rt *Runtime) Context(ctx context.Context) context.Context {
	if rt == nil {
		return ctx
	}
	return obs.NewContext(ctx, rt.obsv)
}

// Hub returns the runtime's event hub (nil without a listener or
// ForceHub). Embedders use it to fan run events out to their own
// subscribers alongside the /progress stream.
func (rt *Runtime) Hub() *Hub {
	if rt == nil {
		return nil
	}
	return rt.hub
}

// Addr returns the live server's bound address ("" when not listening).
func (rt *Runtime) Addr() string {
	if rt == nil || rt.srv == nil {
		return ""
	}
	return rt.srv.Addr()
}

// Flight returns the flight recorder (nil when disabled). Exposed for
// tests; binaries only need NoteFault/Shutdown.
func (rt *Runtime) Flight() *flight.Recorder {
	if rt == nil {
		return nil
	}
	return rt.rec
}

// NoteFault marks the run as having detected a fault (a verified
// vulnerability, a failed invariant), so Shutdown dumps the flight
// recorder even on a clean exit.
func (rt *Runtime) NoteFault() {
	if rt == nil {
		return
	}
	rt.faulted.Store(true)
}

// DumpOnPanic is deferred at the top of an instrumented run: on panic it
// dumps the flight recorder (reason "panic") and re-panics, so the
// post-mortem artifact exists alongside the crash trace.
func (rt *Runtime) DumpOnPanic() {
	if rt == nil || rt.rec == nil {
		return
	}
	if p := recover(); p != nil {
		if err := rt.rec.DumpFile(rt.opts.Flight, "panic"); err == nil {
			fmt.Fprintf(os.Stderr, "%s: flight recorder dumped to %s (panic)\n", rt.opts.Binary, rt.opts.Flight)
		}
		panic(p)
	}
}

// Shutdown finalizes the runtime: dumps the flight recorder when the run
// faulted or was cancelled, flushes the trace, and stops the live server.
// The first error wins; later steps still run.
func (rt *Runtime) Shutdown(ctx context.Context) error {
	if rt == nil {
		return nil
	}
	var first error
	keep := func(err error) {
		if first == nil && err != nil {
			first = err
		}
	}
	if rt.rec != nil {
		reason := ""
		switch {
		case rt.faulted.Load():
			reason = "fault"
		case ctx != nil && ctx.Err() != nil:
			reason = "cancelled"
		}
		if reason != "" {
			if err := rt.rec.DumpFile(rt.opts.Flight, reason); err != nil {
				keep(err)
			} else {
				fmt.Fprintf(os.Stderr, "%s: flight recorder dumped to %s (%s)\n", rt.opts.Binary, rt.opts.Flight, reason)
			}
		}
	}
	for _, c := range rt.closers {
		keep(c())
	}
	if rt.srv != nil {
		keep(rt.srv.Close())
	}
	return first
}
