package live

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flight"
)

// validateFile runs the flight validator over a dump on disk.
func validateFile(path string) ([]string, string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	return flight.Validate(f)
}

// TestExpositionRoundTrip renders a populated registry and feeds the
// output through the lint: zero problems, and the family/sample counts
// reflect the metrics.
func TestExpositionRoundTrip(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("symexec.steps").Add(100)
	r.Counter("solver.checks").Add(7)
	r.Gauge("states.live").Set(12)
	h := r.Histogram("diverted.hops", obs.HopBuckets...)
	for i := int64(0); i < 50; i++ {
		h.Observe(i % 20)
	}
	var buf bytes.Buffer
	if err := WriteExposition(&buf, r.Export()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE statsym_symexec_steps counter",
		"statsym_symexec_steps 100",
		"# TYPE statsym_states_live gauge",
		"# TYPE statsym_diverted_hops histogram",
		`statsym_diverted_hops_bucket{le="+Inf"} 50`,
		"statsym_diverted_hops_count 50",
		"# TYPE statsym_diverted_hops_p50 gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	problems, families, samples, err := LintExposition(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) > 0 {
		t.Fatalf("lint: %v", problems)
	}
	if families < 5 || samples < 5 {
		t.Errorf("families=%d samples=%d, want >=5 each", families, samples)
	}
}

// TestLintCatchesViolations exercises each lint class on hand-built
// expositions.
func TestLintCatchesViolations(t *testing.T) {
	cases := []struct {
		name, text, wantProblem string
	}{
		{"duplicate family",
			"# TYPE a counter\na 1\n# TYPE a counter\na 2\n", "duplicate family"},
		{"undeclared sample",
			"b 1\n", "no TYPE declaration"},
		{"bad value",
			"# TYPE a counter\na xyz\n", "not a number"},
		{"non-cumulative buckets",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 5\n",
			"not cumulative"},
		{"descending bounds",
			"# TYPE h histogram\nh_bucket{le=\"5\"} 1\nh_bucket{le=\"2\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n",
			"not ascending"},
		{"missing +Inf",
			"# TYPE h histogram\nh_bucket{le=\"5\"} 1\nh_sum 1\nh_count 1\n",
			`missing le="+Inf"`},
		{"histogram family sampled bare",
			"# TYPE h histogram\nh 3\n", "without _bucket"},
		{"empty", "", "empty exposition"},
	}
	for _, tc := range cases {
		problems, _, _, err := LintExposition(strings.NewReader(tc.text))
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, p := range problems {
			if strings.Contains(p, tc.wantProblem) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: problems %v do not mention %q", tc.name, problems, tc.wantProblem)
		}
	}
}

// TestHubNeverBlocks: an emitter with a full, unread subscriber channel
// must not block; drops are counted per subscriber.
func TestHubNeverBlocks(t *testing.T) {
	h := NewHub()
	_, cancel := h.Subscribe(2) // tiny buffer, never read
	defer cancel()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			h.Emit(obs.Event{Time: time.Now(), Type: obs.EventProgress})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("hub blocked on a slow subscriber")
	}
	if h.Events() != 1000 {
		t.Errorf("events = %d, want 1000", h.Events())
	}
}

// TestHubSubscribeCancel: cancel unsubscribes, closes the channel, and
// is idempotent.
func TestHubSubscribeCancel(t *testing.T) {
	h := NewHub()
	ch, cancel := h.Subscribe(0)
	if h.Subscribers() != 1 {
		t.Fatalf("subscribers = %d, want 1", h.Subscribers())
	}
	cancel()
	cancel() // idempotent
	if h.Subscribers() != 0 {
		t.Errorf("subscribers = %d after cancel, want 0", h.Subscribers())
	}
	if _, open := <-ch; open {
		t.Error("channel not closed after cancel")
	}
	h.Emit(obs.Event{Type: obs.EventProgress}) // must not panic on closed ch
}

// TestSpanTree reconstructs parentage, durations, and wraparound.
func TestSpanTree(t *testing.T) {
	h := NewHub()
	now := time.Now()
	h.Emit(obs.Event{Time: now, Type: obs.EventSpanOpen, Span: 1, Name: "pipeline"})
	h.Emit(obs.Event{Time: now, Type: obs.EventSpanOpen, Span: 2, Parent: 1, Name: "stats"})
	h.Emit(obs.Event{Time: now, Type: obs.EventSpanClose, Span: 2, Parent: 1, Name: "stats", DurUS: 42})
	h.Emit(obs.Event{Time: now, Type: obs.EventSpanOpen, Span: 3, Parent: 1, Name: "verify", Attrs: map[string]any{"rank": 1}})

	roots := h.SpanTree()
	if len(roots) != 1 || roots[0].Name != "pipeline" || !roots[0].Open {
		t.Fatalf("roots = %+v", roots)
	}
	kids := roots[0].Children
	if len(kids) != 2 || kids[0].Name != "stats" || kids[1].Name != "verify" {
		t.Fatalf("children = %+v", kids)
	}
	if kids[0].Open || kids[0].DurUS != 42 {
		t.Errorf("stats child = %+v, want closed with 42us", kids[0])
	}
	if kids[1].Attrs["rank"] != 1 {
		t.Errorf("verify attrs = %v", kids[1].Attrs)
	}

	// Overflow the ring: old spans fall out, tree still builds.
	for i := int64(10); i < int64(10+spanRingDepth+50); i++ {
		h.Emit(obs.Event{Time: now, Type: obs.EventSpanOpen, Span: i, Name: "s"})
	}
	roots = h.SpanTree()
	if len(roots) == 0 || len(roots) > spanRingDepth {
		t.Errorf("wrapped tree has %d roots", len(roots))
	}
}

// newTestServer wires a hub+registry server on an ephemeral port.
func newTestServer(t *testing.T) (*Server, *obs.Obs, string) {
	t.Helper()
	hub := NewHub()
	o := obs.New(hub)
	srv := NewServer(o, hub)
	srv.Tick = 20 * time.Millisecond
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, o, addr
}

// TestServerMetricsEndpoint scrapes /metrics and lints the response.
func TestServerMetricsEndpoint(t *testing.T) {
	_, o, addr := newTestServer(t)
	o.Metrics.Counter("symexec.steps").Add(5)
	o.Metrics.Histogram("diverted.hops", obs.HopBuckets...).Observe(3)

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	problems, families, _, err := LintExposition(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) > 0 {
		t.Fatalf("live /metrics fails lint: %v", problems)
	}
	if families < 2 {
		t.Errorf("families = %d, want >= 2", families)
	}
}

// TestServerSpansEndpoint checks /spans returns the JSON tree.
func TestServerSpansEndpoint(t *testing.T) {
	srv, o, addr := newTestServer(t)
	_ = srv
	ctx := obs.NewContext(context.Background(), o)
	ctx, sp := obs.StartSpan(ctx, "pipeline")
	_, child := obs.StartSpan(ctx, "stats")
	child.End()
	sp.End()

	resp, err := http.Get("http://" + addr + "/spans")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var roots []*SpanNode
	if err := json.NewDecoder(resp.Body).Decode(&roots); err != nil {
		t.Fatal(err)
	}
	if len(roots) != 1 || roots[0].Name != "pipeline" || len(roots[0].Children) != 1 {
		t.Fatalf("spans = %+v", roots)
	}
}

// TestSSEProgressStream reads /progress: the immediate snapshot frame, a
// live progress event, and a periodic tick must all arrive.
func TestSSEProgressStream(t *testing.T) {
	_, o, addr := newTestServer(t)
	o.Metrics.Counter("symexec.steps").Add(9)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", "http://"+addr+"/progress", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	// Emit a progress event once the subscription exists; retry a few
	// times since subscribe happens inside the handler.
	go func() {
		for i := 0; i < 50; i++ {
			o.Progress(nil, obs.A("steps", 123))
			time.Sleep(10 * time.Millisecond)
		}
	}()

	sc := bufio.NewScanner(resp.Body)
	var sawSnapshot, sawEvent bool
	for sc.Scan() && !(sawSnapshot && sawEvent) {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var frame sseFrame
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &frame); err != nil {
			t.Fatalf("bad frame %q: %v", line, err)
		}
		switch frame.Kind {
		case "snapshot":
			if frame.Counters["symexec.steps"] != 9 {
				t.Errorf("snapshot counters = %v", frame.Counters)
			}
			sawSnapshot = true
		case "event":
			if frame.Event == nil || frame.Event.Type != obs.EventProgress {
				t.Errorf("event frame = %+v", frame)
			}
			sawEvent = true
		}
	}
	if !sawSnapshot || !sawEvent {
		t.Fatalf("sawSnapshot=%v sawEvent=%v (scanner err %v)", sawSnapshot, sawEvent, sc.Err())
	}
}

// TestSSECancellationNoLeak opens SSE clients, cancels them, and checks
// every hub subscription is released — the goroutine-leak guard for the
// -listen server (run with -race).
func TestSSECancellationNoLeak(t *testing.T) {
	srv, o, addr := newTestServer(t)
	hub := srv.hub
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			req, _ := http.NewRequestWithContext(ctx, "GET", "http://"+addr+"/progress", nil)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				cancel()
				return
			}
			buf := make([]byte, 256)
			_, _ = resp.Body.Read(buf) // first frame
			cancel()
			resp.Body.Close()
		}()
	}
	// Emit while clients churn.
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				o.Progress(nil, obs.A("x", 1))
			}
		}
	}()
	wg.Wait()
	close(stop)

	deadline := time.Now().Add(5 * time.Second)
	for hub.Subscribers() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("hub still has %d subscribers after all clients cancelled", hub.Subscribers())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRuntimeWiring: Init with everything off yields an inert runtime;
// with listen+flight it wires a reachable server and a recorder, and
// Shutdown after cancellation dumps the flight ring.
func TestRuntimeWiring(t *testing.T) {
	rt, err := Init(Options{Binary: "test"})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Obs() != nil || rt.Addr() != "" {
		t.Errorf("disabled runtime not inert: obs=%v addr=%q", rt.Obs(), rt.Addr())
	}
	if err := rt.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	dump := t.TempDir() + "/flight.jsonl"
	rt2, err := Init(Options{
		Binary: "test", Listen: "127.0.0.1:0",
		Flight: dump, FlightDepth: 8, Interval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt2.Obs() == nil || rt2.Addr() == "" || rt2.Flight() == nil {
		t.Fatalf("runtime not wired: obs=%v addr=%q flight=%v", rt2.Obs(), rt2.Addr(), rt2.Flight())
	}
	ctx := rt2.Context(context.Background())
	obs.Warn(ctx, "boom", obs.A("n", 1))

	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", rt2.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := rt2.Shutdown(cctx); err != nil {
		t.Fatal(err)
	}
	problems, summary, err := validateFile(dump)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) > 0 {
		t.Fatalf("dump invalid: %v", problems)
	}
	if !strings.Contains(summary, `reason "cancelled"`) {
		t.Errorf("summary = %q, want cancelled reason", summary)
	}
}
