package live

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"repro/internal/obs"
)

// Server is the embeddable introspection HTTP server behind the binaries'
// -listen flag. It owns its mux (never http.DefaultServeMux, so two
// instrumented components in one process don't collide) and serves:
//
//	/metrics        Prometheus text exposition of the obs.Registry
//	/progress       SSE stream: an immediate snapshot, then progress
//	                events from the run interleaved with periodic
//	                registry ticks
//	/spans          recent span tree as JSON
//	/debug/pprof/*  the standard profiling handlers
//	/               index listing the endpoints
type Server struct {
	obsv *obs.Obs
	hub  *Hub

	// Tick is the cadence of registry snapshots pushed on /progress between
	// run events (0: 1s). Tests shrink it.
	Tick time.Duration

	mu     sync.Mutex
	ln     net.Listener
	srv    *http.Server
	wg     sync.WaitGroup
	mounts []mount
}

// mount is one extra handler grafted onto the introspection mux — how an
// embedding daemon (statsymd) serves its API and the introspection plane
// from a single listener.
type mount struct {
	pattern string
	h       http.Handler
}

// NewServer builds a server over the run's Obs and hub. Both may be nil
// (endpoints then serve empty documents), though real wiring always has
// both.
func NewServer(o *obs.Obs, hub *Hub) *Server {
	return &Server{obsv: o, hub: hub}
}

// Mount grafts an extra handler onto the server's mux under the given
// ServeMux pattern (e.g. "/v1/"). Must be called before Handler/Start.
func (s *Server) Mount(pattern string, h http.Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mounts = append(s.mounts, mount{pattern, h})
}

// Handler returns the server's mux, for embedding or tests.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	s.mu.Lock()
	mounts := append([]mount(nil), s.mounts...)
	s.mu.Unlock()
	for _, m := range mounts {
		mux.Handle(m.pattern, m.h)
	}
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/progress", s.handleProgress)
	mux.HandleFunc("/spans", s.handleSpans)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Start listens on addr (e.g. "localhost:6060" or ":0") and serves in the
// background. Returns the bound address, so ":0" callers learn the port.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: s.Handler()}
	s.mu.Lock()
	s.ln, s.srv = ln, srv
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		_ = srv.Serve(ln)
	}()
	return ln.Addr().String(), nil
}

// Addr returns the bound address ("" before Start).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts the server down, waiting briefly for in-flight handlers
// (SSE streams end when their client context is cancelled by shutdown).
func (s *Server) Close() error {
	s.mu.Lock()
	srv := s.srv
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err := srv.Shutdown(ctx)
	if err != nil {
		err = srv.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	var events int64
	if s.hub != nil {
		events = s.hub.Events()
	}
	fmt.Fprintf(w, `<!doctype html><title>statsym live</title>
<h1>statsym live introspection</h1>
<ul>
<li><a href="/metrics">/metrics</a> — Prometheus exposition</li>
<li><a href="/progress">/progress</a> — SSE progress stream</li>
<li><a href="/spans">/spans</a> — recent span tree (JSON)</li>
<li><a href="/debug/pprof/">/debug/pprof/</a> — profiling</li>
</ul>
<p>%d events observed.</p>
`, events)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var ex obs.Export
	if s.obsv != nil {
		ex = s.obsv.Metrics.Export()
	}
	_ = WriteExposition(w, ex)
}

func (s *Server) handleSpans(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	var roots []*SpanNode
	if s.hub != nil {
		roots = s.hub.SpanTree()
	}
	if roots == nil {
		roots = []*SpanNode{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(roots)
}

// sseFrame is one /progress message: either a live obs event or a
// periodic registry tick.
type sseFrame struct {
	Kind     string           `json:"kind"` // "snapshot" | "event"
	Time     time.Time        `json:"t"`
	Event    *obs.Event       `json:"event,omitempty"`
	Counters map[string]int64 `json:"counters,omitempty"`
	Gauges   map[string]int64 `json:"gauges,omitempty"`
}

// handleProgress streams progress as SSE. The first frame is an immediate
// registry snapshot (so a short-lived scrape like CI's `curl -m 2`
// captures at least one tick), then live progress/warn events from the
// hub interleaved with periodic snapshots. The stream ends when the
// client disconnects or the server shuts down; the hub subscription is
// always released.
func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	ServeSSE(w, r, s.obsv, s.hub, s.Tick, nil)
}

// ServeSSE streams one hub's progress/warn events as SSE frames
// interleaved with periodic registry snapshots: an immediate snapshot
// first (so even a one-shot scrape sees state), then events as they
// arrive. This is the engine behind the binaries' /progress endpoint and
// the daemon's per-job /v1/jobs/{id}/events streams (one Hub per job).
//
// The tick cadence is tick (0: 1s), overridable per request by a ?tick=
// duration query parameter. The stream ends when the client disconnects,
// the hub subscription closes, or done (optional) is closed — a closed
// done sends one final snapshot frame so the consumer always observes
// the terminal registry state.
func ServeSSE(w http.ResponseWriter, r *http.Request, o *obs.Obs, hub *Hub, tick time.Duration, done <-chan struct{}) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	if tick <= 0 {
		tick = time.Second
	}
	if q := r.URL.Query().Get("tick"); q != "" {
		if d, err := time.ParseDuration(q); err == nil && d > 0 {
			tick = d
		}
	}
	var events <-chan obs.Event
	cancel := func() {}
	if hub != nil {
		events, cancel = hub.Subscribe(256)
	}
	defer cancel()

	enc := json.NewEncoder(w)
	send := func(f sseFrame) bool {
		if _, err := fmt.Fprint(w, "data: "); err != nil {
			return false
		}
		if err := enc.Encode(f); err != nil { // Encode appends the newline
			return false
		}
		if _, err := fmt.Fprint(w, "\n"); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	snapshot := func() sseFrame {
		f := sseFrame{Kind: "snapshot", Time: time.Now()}
		if o != nil {
			ex := o.Metrics.Export()
			f.Counters, f.Gauges = ex.Counters, ex.Gauges
		}
		return f
	}
	if !send(snapshot()) {
		return
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-done:
			// Terminal state reached (e.g. the job finished): flush one
			// last snapshot so the subscriber sees the final counters,
			// then end the stream.
			send(snapshot())
			return
		case <-ticker.C:
			if !send(snapshot()) {
				return
			}
		case ev, open := <-events:
			if !open {
				return
			}
			if ev.Type != obs.EventProgress && ev.Type != obs.EventWarn {
				continue // span churn stays on /spans
			}
			evCopy := ev
			if !send(sseFrame{Kind: "event", Time: ev.Time, Event: &evCopy}) {
				return
			}
		}
	}
}
