package live

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// Prometheus text exposition format (version 0.0.4) rendered from the
// registry's typed export. Metric names are prefixed "statsym_" and
// sanitized (dots become underscores); histograms render the cumulative
// le-bucket series the format requires (the registry stores per-bucket
// counts), plus _sum and _count, plus p50/p99 gauges interpolated from
// the buckets so dashboards get quantiles without PromQL.

// promPrefix namespaces every exported family.
const promPrefix = "statsym_"

// promName sanitizes a registry metric name into a Prometheus family name.
func promName(name string) string {
	var sb strings.Builder
	sb.WriteString(promPrefix)
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// WriteExposition renders the export as Prometheus exposition text. Two
// registry names that sanitize to the same family would be a duplicate;
// the second is skipped (the lint treats duplicates as violations, so the
// renderer must never produce one).
func WriteExposition(w io.Writer, ex obs.Export) error {
	bw := bufio.NewWriter(w)
	seen := map[string]bool{}
	emit := func(family, kind string, render func()) {
		if seen[family] {
			return
		}
		seen[family] = true
		fmt.Fprintf(bw, "# HELP %s StatSym metric %s\n", family, kind)
		fmt.Fprintf(bw, "# TYPE %s %s\n", family, kind)
		render()
	}
	sorted := func(m map[string]int64) []string {
		names := make([]string, 0, len(m))
		for n := range m {
			names = append(names, n)
		}
		sort.Strings(names)
		return names
	}
	for _, n := range sorted(ex.Counters) {
		family, v := promName(n), ex.Counters[n]
		emit(family, "counter", func() { fmt.Fprintf(bw, "%s %d\n", family, v) })
	}
	for _, n := range sorted(ex.Gauges) {
		family, v := promName(n), ex.Gauges[n]
		emit(family, "gauge", func() { fmt.Fprintf(bw, "%s %d\n", family, v) })
	}
	for _, h := range ex.Histograms {
		h := h
		family := promName(h.Name)
		emit(family, "histogram", func() {
			var cum int64
			for i, b := range h.Bounds {
				cum += h.Counts[i]
				fmt.Fprintf(bw, "%s_bucket{le=\"%d\"} %d\n", family, b, cum)
			}
			cum += h.Counts[len(h.Bounds)]
			fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", family, cum)
			fmt.Fprintf(bw, "%s_sum %d\n", family, h.Sum)
			fmt.Fprintf(bw, "%s_count %d\n", family, h.Count)
		})
		if h.Count > 0 {
			hist := histFromSnapshot(h)
			for _, q := range []struct {
				label string
				q     float64
			}{{"p50", 0.50}, {"p99", 0.99}} {
				qf := promName(h.Name + "_" + q.label)
				v := hist.Quantile(q.q)
				emit(qf, "gauge", func() { fmt.Fprintf(bw, "%s %g\n", qf, v) })
			}
		}
	}
	return bw.Flush()
}

// histFromSnapshot rebuilds a Histogram from its snapshot so the shared
// Quantile estimator serves the exposition too.
func histFromSnapshot(h obs.HistogramSnapshot) *obs.Histogram {
	rebuilt := obs.NewRegistry().Histogram(h.Name, h.Bounds...)
	// Replay per-bucket counts as representative observations: bucket i's
	// upper bound re-lands in bucket i, the overflow count past the last
	// bound. Count/Sum-exact replay is unnecessary — Quantile only reads
	// bucket counts and the total.
	for i, b := range h.Bounds {
		for k := int64(0); k < h.Counts[i]; k++ {
			rebuilt.Observe(b)
		}
	}
	last := h.Bounds[len(h.Bounds)-1]
	for k := int64(0); k < h.Counts[len(h.Bounds)]; k++ {
		rebuilt.Observe(last + 1)
	}
	return rebuilt
}

// --- exposition lint ---

var (
	typeLineRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	helpLineRe   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .*$`)
	sampleLineRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)( [0-9]+)?$`)
	leLabelRe    = regexp.MustCompile(`le="([^"]*)"`)
)

// LintExposition checks Prometheus text exposition output for structural
// violations: unparseable lines, duplicate family declarations, samples
// without a declared family, histogram series (_bucket/_sum/_count)
// outside a histogram family, non-cumulative or unterminated bucket
// series, and unparseable sample values. Returns the violations (up to
// 20), the family count, and the sample count. cmd/tracecheck fronts this
// so CI can lint a live run's /metrics scrape.
func LintExposition(rd io.Reader) (problems []string, families, samples int, err error) {
	flagProblem := func(format string, args ...any) {
		if len(problems) < 20 {
			problems = append(problems, fmt.Sprintf(format, args...))
		}
	}
	types := map[string]string{}
	// bucketCum tracks each histogram family's cumulative bucket series:
	// last le value and last count, to enforce cumulative ordering.
	type bucketState struct {
		lastLe  float64
		lastCum float64
		sawInf  bool
	}
	buckets := map[string]*bucketState{}

	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lines := 0
	for sc.Scan() {
		lines++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			m := typeLineRe.FindStringSubmatch(line)
			if m == nil {
				flagProblem("line %d: malformed TYPE line", lines)
				continue
			}
			if _, dup := types[m[1]]; dup {
				flagProblem("line %d: duplicate family %q", lines, m[1])
			}
			types[m[1]] = m[2]
			families++
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			if helpLineRe.FindStringSubmatch(line) == nil {
				flagProblem("line %d: malformed HELP line", lines)
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // free-form comment
		}
		m := sampleLineRe.FindStringSubmatch(line)
		if m == nil {
			flagProblem("line %d: malformed sample line", lines)
			continue
		}
		name, labels, value := m[1], m[2], m[3]
		fv, perr := strconv.ParseFloat(value, 64)
		if perr != nil {
			flagProblem("line %d: sample value %q not a number", lines, value)
			continue
		}
		samples++
		family, series := name, ""
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && types[base] == "histogram" {
				family, series = base, suffix
				break
			}
		}
		kind, declared := types[family]
		if !declared {
			flagProblem("line %d: sample %q has no TYPE declaration", lines, name)
			continue
		}
		if kind == "histogram" && series == "" {
			flagProblem("line %d: histogram family %q sampled without _bucket/_sum/_count", lines, name)
			continue
		}
		if kind != "histogram" && labels != "" {
			flagProblem("line %d: unexpected labels on %s %q", lines, kind, name)
		}
		if series == "_bucket" {
			le := leLabelRe.FindStringSubmatch(labels)
			if le == nil {
				flagProblem("line %d: histogram bucket without le label", lines)
				continue
			}
			st := buckets[family]
			if st == nil {
				st = &bucketState{lastLe: -1 << 62}
				buckets[family] = st
			}
			bound := 0.0
			if le[1] == "+Inf" {
				st.sawInf = true
			} else if bound, perr = strconv.ParseFloat(le[1], 64); perr != nil {
				flagProblem("line %d: bucket le %q not a number", lines, le[1])
				continue
			} else if st.sawInf {
				flagProblem("line %d: finite bucket after le=\"+Inf\" in %q", lines, family)
			} else if bound <= st.lastLe {
				flagProblem("line %d: bucket bounds not ascending in %q", lines, family)
			}
			if fv < st.lastCum {
				flagProblem("line %d: bucket counts not cumulative in %q", lines, family)
			}
			st.lastLe, st.lastCum = bound, fv
		}
	}
	if serr := sc.Err(); serr != nil {
		return nil, 0, 0, serr
	}
	for f, st := range buckets {
		if !st.sawInf {
			flagProblem("histogram %q bucket series missing le=\"+Inf\"", f)
		}
	}
	if lines == 0 {
		flagProblem("empty exposition")
	}
	return problems, families, samples, nil
}
