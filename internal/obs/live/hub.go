// Package live is the pipeline's live introspection layer: an embeddable
// HTTP server (the binaries' -listen flag) exposing the run while it
// executes — /metrics in Prometheus text exposition format rendered from
// the obs.Registry, /progress as an SSE stream of pipeline/frontier
// snapshots, /spans as the recent span tree, and the net/http/pprof
// handlers consolidated onto the same mux.
//
// The hard invariant is that none of it perturbs determinism: the server
// only ever reads atomics (metrics) and consumes the event stream through
// a never-blocking fan-out (the Hub drops events to slow subscribers
// rather than applying backpressure), so a run scraped continuously is
// byte-identical in detections and counters to an unobserved one. The
// differential test in internal/core pins exactly that across every
// evaluation app.
package live

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// spanRingDepth bounds the retained span open/close events behind /spans.
const spanRingDepth = 512

// Hub fans the obs event stream out to live subscribers (the SSE
// handlers) and retains a bounded window of recent span events for the
// /spans tree. It implements obs.Sink and never blocks: a subscriber that
// cannot keep up loses events (counted per subscriber), the emitting run
// is never slowed or reordered.
type Hub struct {
	mu      sync.Mutex
	subs    map[*subscriber]struct{}
	spans   []obs.Event // ring of recent span.open/span.close events
	next    int         // ring write cursor
	wrapped bool

	// Events counts everything emitted through the hub (telemetry for the
	// index page, not a metric).
	events atomic.Int64
}

type subscriber struct {
	ch      chan obs.Event
	dropped atomic.Int64
}

// NewHub returns an empty hub.
func NewHub() *Hub {
	return &Hub{subs: map[*subscriber]struct{}{}}
}

// Emit implements obs.Sink. Span events are retained in the ring; every
// event is offered to each subscriber without blocking.
func (h *Hub) Emit(ev obs.Event) {
	if h == nil {
		return
	}
	h.events.Add(1)
	h.mu.Lock()
	if ev.Type == obs.EventSpanOpen || ev.Type == obs.EventSpanClose {
		if len(h.spans) < spanRingDepth {
			h.spans = append(h.spans, ev)
		} else {
			h.spans[h.next] = ev
			h.wrapped = true
		}
		h.next = (h.next + 1) % spanRingDepth
	}
	for s := range h.subs {
		select {
		case s.ch <- ev:
		default:
			s.dropped.Add(1)
		}
	}
	h.mu.Unlock()
}

// Subscribe registers a live event consumer with the given channel buffer
// (<=0: 64) and returns its channel plus a cancel function that
// unsubscribes and releases it. After cancel returns the channel is
// closed and no further events arrive.
func (h *Hub) Subscribe(buf int) (<-chan obs.Event, func()) {
	if buf <= 0 {
		buf = 64
	}
	s := &subscriber{ch: make(chan obs.Event, buf)}
	h.mu.Lock()
	h.subs[s] = struct{}{}
	h.mu.Unlock()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			h.mu.Lock()
			delete(h.subs, s)
			h.mu.Unlock()
			close(s.ch)
		})
	}
	return s.ch, cancel
}

// Subscribers returns the current subscriber count (leak checks in tests).
func (h *Hub) Subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// Events returns the number of events the hub has seen.
func (h *Hub) Events() int64 { return h.events.Load() }

// SpanNode is one reconstructed span for the /spans tree.
type SpanNode struct {
	ID       int64          `json:"id"`
	Parent   int64          `json:"parent,omitempty"`
	Name     string         `json:"name"`
	Open     bool           `json:"open"`
	DurUS    int64          `json:"dur_us,omitempty"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []*SpanNode    `json:"children,omitempty"`
}

// SpanTree reconstructs the recent span tree from the retained window:
// open events create nodes (with their open-time attributes), close
// events complete them with duration and close-time attributes. A node
// whose parent fell out of the window surfaces as a root. Roots and
// children are ordered by span ID, so the rendering is deterministic for
// a given window.
func (h *Hub) SpanTree() []*SpanNode {
	h.mu.Lock()
	window := make([]obs.Event, 0, len(h.spans))
	if h.wrapped {
		window = append(window, h.spans[h.next:]...)
	}
	window = append(window, h.spans[:h.next]...)
	if !h.wrapped && h.next == 0 {
		window = append(window, h.spans...)
	}
	h.mu.Unlock()

	nodes := map[int64]*SpanNode{}
	for _, ev := range window {
		switch ev.Type {
		case obs.EventSpanOpen:
			nodes[ev.Span] = &SpanNode{ID: ev.Span, Parent: ev.Parent, Name: ev.Name, Open: true, Attrs: ev.Attrs}
		case obs.EventSpanClose:
			n := nodes[ev.Span]
			if n == nil {
				n = &SpanNode{ID: ev.Span, Parent: ev.Parent, Name: ev.Name}
				nodes[ev.Span] = n
			}
			n.Open = false
			n.DurUS = ev.DurUS
			if len(ev.Attrs) > 0 {
				if n.Attrs == nil {
					n.Attrs = map[string]any{}
				}
				for k, v := range ev.Attrs {
					n.Attrs[k] = v
				}
			}
		}
	}
	var roots []*SpanNode
	for _, n := range nodes {
		if p := nodes[n.Parent]; n.Parent != 0 && p != nil {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	byID := func(s []*SpanNode) {
		sort.Slice(s, func(i, j int) bool { return s[i].ID < s[j].ID })
	}
	byID(roots)
	for _, n := range nodes {
		byID(n.Children)
	}
	return roots
}
