package obs

import (
	"context"
	"time"
)

// Attr is one key/value span or event attribute.
type Attr struct {
	Key string
	Val any
}

// A is shorthand for building an Attr at a call site.
func A(key string, val any) Attr { return Attr{Key: key, Val: val} }

func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Val
	}
	return m
}

// Span is one node of the trace tree. Spans nest through the context:
// StartSpan parents the new span under the context's current span, so
// concurrent children (the parallel verify workers) each derive their own
// context from the same parent and the tree stays deterministic
// regardless of scheduling.
type Span struct {
	ID     int64
	Parent int64
	Name   string
	Start  time.Time

	o *Obs
}

type spanKey struct{}

// StartSpan opens a span named name as a child of the context's current
// span (a root when there is none) and returns a derived context carrying
// it. With no Obs in ctx it returns (ctx, nil); a nil *Span is a valid
// no-op handle, so callers never branch.
func StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	o := FromContext(ctx)
	if o == nil {
		return ctx, nil
	}
	var parent int64
	if ps := SpanFromContext(ctx); ps != nil {
		parent = ps.ID
	}
	s := &Span{ID: o.nextID(), Parent: parent, Name: name, Start: time.Now(), o: o}
	o.Emit(Event{Time: s.Start, Type: EventSpanOpen, Span: s.ID, Parent: parent, Name: name, Attrs: attrMap(attrs)})
	return context.WithValue(ctx, spanKey{}, s), s
}

// SpanFromContext returns the context's current span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// End closes the span, recording its duration and any close-time
// attributes. No-op on nil.
func (s *Span) End(attrs ...Attr) {
	if s == nil {
		return
	}
	now := time.Now()
	s.o.Emit(Event{
		Time: now, Type: EventSpanClose, Span: s.ID, Parent: s.Parent,
		Name: s.Name, DurUS: now.Sub(s.Start).Microseconds(), Attrs: attrMap(attrs),
	})
}

// EmitChild records an already-measured child span of s as an open/close
// event pair. Used for aggregated sub-phases that are not practical to
// span live — e.g. the per-candidate "solver" span, whose duration is the
// candidate's accumulated solver wall time rather than one contiguous
// interval. No-op on nil.
func (s *Span) EmitChild(name string, start time.Time, dur time.Duration, attrs ...Attr) {
	if s == nil {
		return
	}
	id := s.o.nextID()
	s.o.Emit(Event{Time: start, Type: EventSpanOpen, Span: id, Parent: s.ID, Name: name})
	s.o.Emit(Event{
		Time: start.Add(dur), Type: EventSpanClose, Span: id, Parent: s.ID,
		Name: name, DurUS: dur.Microseconds(), Attrs: attrMap(attrs),
	})
}

// Progress emits a snapshot event attached to sp (sp may be nil: the
// event then carries span 0, a rootless snapshot). No-op on a nil Obs.
func (o *Obs) Progress(sp *Span, attrs ...Attr) {
	if o == nil {
		return
	}
	ev := Event{Type: EventProgress, Attrs: attrMap(attrs)}
	if sp != nil {
		ev.Span = sp.ID
		ev.Name = sp.Name
	}
	o.Emit(ev)
}

// Progress emits a snapshot event attached to the context's current span
// — the pipeline-phase hook used at module boundaries (stats done,
// candidates built, verify attempt started), complementing the executor's
// periodic in-run snapshots. No-op when observability is disabled.
func Progress(ctx context.Context, attrs ...Attr) {
	o := FromContext(ctx)
	if o == nil {
		return
	}
	o.Progress(SpanFromContext(ctx), attrs...)
}

// Warn emits a one-line warning event attached to the context's current
// span. No-op when observability is disabled.
func Warn(ctx context.Context, msg string, attrs ...Attr) {
	o := FromContext(ctx)
	if o == nil {
		return
	}
	ev := Event{Type: EventWarn, Msg: msg, Attrs: attrMap(attrs)}
	if s := SpanFromContext(ctx); s != nil {
		ev.Span = s.ID
		ev.Name = s.Name
	}
	o.Emit(ev)
}
