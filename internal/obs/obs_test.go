package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryRace hammers one registry from many goroutines through the
// named-lookup path (not pre-resolved handles) — meaningful under -race —
// and checks the final values.
func TestRegistryRace(t *testing.T) {
	r := NewRegistry()
	const workers, ops = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").SetMax(int64(w*ops + i))
				r.Histogram("h", HopBuckets...).Observe(int64(i % 30))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("c").Load(); got != workers*ops {
		t.Errorf("counter = %d, want %d", got, workers*ops)
	}
	if got := r.Gauge("g").Load(); got != workers*ops-1 {
		t.Errorf("gauge max = %d, want %d", got, workers*ops-1)
	}
	if got := r.Histogram("h").Count(); got != workers*ops {
		t.Errorf("histogram count = %d, want %d", got, workers*ops)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]int64{0, 2, 5})
	for _, v := range []int64{0, 1, 2, 3, 5, 6, 100} {
		h.Observe(v)
	}
	want := []int64{1, 2, 2, 2} // ≤0, ≤2, ≤5, +inf
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 7 || h.Sum() != 117 {
		t.Errorf("count/sum = %d/%d, want 7/117", h.Count(), h.Sum())
	}
}

func TestSnapshotFlattensHistograms(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(3)
	r.Gauge("b").Set(7)
	r.Histogram("h", 1, 2).Observe(2)
	snap := r.Snapshot()
	for key, want := range map[string]int64{
		"a": 3, "b": 7, "h.count": 1, "h.sum": 2, "h.le_1": 0, "h.le_2": 1, "h.le_inf": 0,
	} {
		if snap[key] != want {
			t.Errorf("snapshot[%q] = %d, want %d", key, snap[key], want)
		}
	}
	if !strings.Contains(r.Format(), "h.le_2") {
		t.Errorf("Format missing histogram bucket:\n%s", r.Format())
	}
}

// TestNilSafety: every handle and entry point must be a no-op when
// observability is disabled — this is the "near-zero overhead" contract.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(1)
	r.Gauge("x").Set(1)
	r.Histogram("x").Observe(1)
	if r.Snapshot() != nil {
		t.Error("nil registry snapshot should be nil")
	}
	var o *Obs
	o.Emit(Event{Type: EventWarn})
	o.Progress(nil, A("k", 1))

	ctx := context.Background()
	if FromContext(ctx) != nil {
		t.Error("FromContext on bare context should be nil")
	}
	ctx2, sp := StartSpan(ctx, "x")
	if sp != nil || ctx2 != ctx {
		t.Error("StartSpan without an Obs must return the context unchanged and a nil span")
	}
	sp.End()                                   // nil-safe
	sp.EmitChild("y", time.Now(), time.Second) // nil-safe
	Warn(ctx, "nothing")                       // nil-safe
	if NewContext(ctx, nil) != ctx {
		t.Error("NewContext with nil Obs must return ctx unchanged")
	}
}

func TestSpanNestingAndEvents(t *testing.T) {
	rec := &Recorder{}
	o := New(rec)
	ctx := NewContext(context.Background(), o)

	ctx, root := StartSpan(ctx, "root", A("k", "v"))
	cctx, child := StartSpan(ctx, "child")
	if child.Parent != root.ID {
		t.Fatalf("child parent = %d, want %d", child.Parent, root.ID)
	}
	_, grand := StartSpan(cctx, "grand")
	if grand.Parent != child.ID {
		t.Fatalf("grandchild parent = %d, want %d", grand.Parent, child.ID)
	}
	// A sibling started from the root context still parents under root,
	// exactly how concurrent verify workers derive their contexts.
	_, sib := StartSpan(ctx, "sibling")
	if sib.Parent != root.ID {
		t.Fatalf("sibling parent = %d, want %d", sib.Parent, root.ID)
	}
	grand.End()
	child.End()
	sib.End()
	Warn(cctx, "w", A("rank", 2))
	root.End()

	events := rec.Events()
	opens, closes, warns := 0, 0, 0
	for _, ev := range events {
		switch ev.Type {
		case EventSpanOpen:
			opens++
		case EventSpanClose:
			closes++
			if ev.DurUS < 0 {
				t.Errorf("span %d negative duration", ev.Span)
			}
		case EventWarn:
			warns++
			if ev.Span != child.ID {
				t.Errorf("warn attached to span %d, want %d", ev.Span, child.ID)
			}
		}
	}
	if opens != 4 || closes != 4 || warns != 1 {
		t.Errorf("events = %d opens / %d closes / %d warns, want 4/4/1", opens, closes, warns)
	}
}

func TestJSONLSinkOutputParses(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	o := New(sink)
	ctx := NewContext(context.Background(), o)
	ctx, sp := StartSpan(ctx, "root", A("program", "p"))
	o.Progress(sp, A("steps", int64(10)))
	Warn(ctx, "candidate abandoned", A("reason", "max-steps"))
	sp.EmitChild("solver", sp.Start, 42*time.Microsecond, A("checks", 3))
	sp.End(A("found", true))
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 6 {
		t.Fatalf("got %d lines, want 6:\n%s", len(lines), buf.String())
	}
	for i, line := range lines {
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d does not parse: %v\n%s", i+1, err, line)
		}
		if ev.Type == "" || ev.Time.IsZero() {
			t.Errorf("line %d missing type or time: %s", i+1, line)
		}
	}
}

func TestSetupDisabled(t *testing.T) {
	o, closer, err := Setup("", time.Second, false)
	if err != nil {
		t.Fatal(err)
	}
	if o != nil {
		t.Error("Setup with no trace and no metrics must return a nil Obs")
	}
	if err := closer(); err != nil {
		t.Error(err)
	}
}

func TestSetupTraceFile(t *testing.T) {
	path := t.TempDir() + "/trace.jsonl"
	o, closer, err := Setup(path, 100*time.Millisecond, true)
	if err != nil {
		t.Fatal(err)
	}
	if o == nil || o.Metrics == nil || o.Interval != 100*time.Millisecond {
		t.Fatalf("Setup returned %+v", o)
	}
	_, sp := StartSpan(NewContext(context.Background(), o), "root")
	sp.End()
	if err := closer(); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), `"span.open"`) {
		t.Errorf("trace file missing span.open:\n%s", blob)
	}
}
