package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryRace hammers one registry from many goroutines through the
// named-lookup path (not pre-resolved handles) — meaningful under -race —
// and checks the final values.
func TestRegistryRace(t *testing.T) {
	r := NewRegistry()
	const workers, ops = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").SetMax(int64(w*ops + i))
				r.Histogram("h", HopBuckets...).Observe(int64(i % 30))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("c").Load(); got != workers*ops {
		t.Errorf("counter = %d, want %d", got, workers*ops)
	}
	if got := r.Gauge("g").Load(); got != workers*ops-1 {
		t.Errorf("gauge max = %d, want %d", got, workers*ops-1)
	}
	if got := r.Histogram("h").Count(); got != workers*ops {
		t.Errorf("histogram count = %d, want %d", got, workers*ops)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]int64{0, 2, 5})
	for _, v := range []int64{0, 1, 2, 3, 5, 6, 100} {
		h.Observe(v)
	}
	want := []int64{1, 2, 2, 2} // ≤0, ≤2, ≤5, +inf
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 7 || h.Sum() != 117 {
		t.Errorf("count/sum = %d/%d, want 7/117", h.Count(), h.Sum())
	}
}

func TestSnapshotFlattensHistograms(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(3)
	r.Gauge("b").Set(7)
	r.Histogram("h", 1, 2).Observe(2)
	snap := r.Snapshot()
	for key, want := range map[string]int64{
		"a": 3, "b": 7, "h.count": 1, "h.sum": 2, "h.le_1": 0, "h.le_2": 1, "h.le_inf": 0,
	} {
		if snap[key] != want {
			t.Errorf("snapshot[%q] = %d, want %d", key, snap[key], want)
		}
	}
	if !strings.Contains(r.Format(), "h.le_2") {
		t.Errorf("Format missing histogram bucket:\n%s", r.Format())
	}
}

// TestNilSafety: every handle and entry point must be a no-op when
// observability is disabled — this is the "near-zero overhead" contract.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(1)
	r.Gauge("x").Set(1)
	r.Histogram("x").Observe(1)
	if r.Snapshot() != nil {
		t.Error("nil registry snapshot should be nil")
	}
	var o *Obs
	o.Emit(Event{Type: EventWarn})
	o.Progress(nil, A("k", 1))

	ctx := context.Background()
	if FromContext(ctx) != nil {
		t.Error("FromContext on bare context should be nil")
	}
	ctx2, sp := StartSpan(ctx, "x")
	if sp != nil || ctx2 != ctx {
		t.Error("StartSpan without an Obs must return the context unchanged and a nil span")
	}
	sp.End()                                   // nil-safe
	sp.EmitChild("y", time.Now(), time.Second) // nil-safe
	Warn(ctx, "nothing")                       // nil-safe
	if NewContext(ctx, nil) != ctx {
		t.Error("NewContext with nil Obs must return ctx unchanged")
	}
}

func TestSpanNestingAndEvents(t *testing.T) {
	rec := &Recorder{}
	o := New(rec)
	ctx := NewContext(context.Background(), o)

	ctx, root := StartSpan(ctx, "root", A("k", "v"))
	cctx, child := StartSpan(ctx, "child")
	if child.Parent != root.ID {
		t.Fatalf("child parent = %d, want %d", child.Parent, root.ID)
	}
	_, grand := StartSpan(cctx, "grand")
	if grand.Parent != child.ID {
		t.Fatalf("grandchild parent = %d, want %d", grand.Parent, child.ID)
	}
	// A sibling started from the root context still parents under root,
	// exactly how concurrent verify workers derive their contexts.
	_, sib := StartSpan(ctx, "sibling")
	if sib.Parent != root.ID {
		t.Fatalf("sibling parent = %d, want %d", sib.Parent, root.ID)
	}
	grand.End()
	child.End()
	sib.End()
	Warn(cctx, "w", A("rank", 2))
	root.End()

	events := rec.Events()
	opens, closes, warns := 0, 0, 0
	for _, ev := range events {
		switch ev.Type {
		case EventSpanOpen:
			opens++
		case EventSpanClose:
			closes++
			if ev.DurUS < 0 {
				t.Errorf("span %d negative duration", ev.Span)
			}
		case EventWarn:
			warns++
			if ev.Span != child.ID {
				t.Errorf("warn attached to span %d, want %d", ev.Span, child.ID)
			}
		}
	}
	if opens != 4 || closes != 4 || warns != 1 {
		t.Errorf("events = %d opens / %d closes / %d warns, want 4/4/1", opens, closes, warns)
	}
}

func TestJSONLSinkOutputParses(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	o := New(sink)
	ctx := NewContext(context.Background(), o)
	ctx, sp := StartSpan(ctx, "root", A("program", "p"))
	o.Progress(sp, A("steps", int64(10)))
	Warn(ctx, "candidate abandoned", A("reason", "max-steps"))
	sp.EmitChild("solver", sp.Start, 42*time.Microsecond, A("checks", 3))
	sp.End(A("found", true))
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 6 {
		t.Fatalf("got %d lines, want 6:\n%s", len(lines), buf.String())
	}
	for i, line := range lines {
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d does not parse: %v\n%s", i+1, err, line)
		}
		if ev.Type == "" || ev.Time.IsZero() {
			t.Errorf("line %d missing type or time: %s", i+1, line)
		}
	}
}

func TestSetupDisabled(t *testing.T) {
	o, closer, err := Setup("", time.Second, false)
	if err != nil {
		t.Fatal(err)
	}
	if o != nil {
		t.Error("Setup with no trace and no metrics must return a nil Obs")
	}
	if err := closer(); err != nil {
		t.Error(err)
	}
}

func TestSetupTraceFile(t *testing.T) {
	path := t.TempDir() + "/trace.jsonl"
	o, closer, err := Setup(path, 100*time.Millisecond, true)
	if err != nil {
		t.Fatal(err)
	}
	if o == nil || o.Metrics == nil || o.Interval != 100*time.Millisecond {
		t.Fatalf("Setup returned %+v", o)
	}
	_, sp := StartSpan(NewContext(context.Background(), o), "root")
	sp.End()
	if err := closer(); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), `"span.open"`) {
		t.Errorf("trace file missing span.open:\n%s", blob)
	}
}

// TestHistogramQuantile checks the bucket-interpolation estimator:
// uniform mass in one bucket interpolates linearly across it, the first
// bucket interpolates from zero, and overflow mass clamps to the highest
// finite bound.
func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q.us", 10, 100, 1000)
	for i := 0; i < 100; i++ {
		h.Observe(5) // all mass in the le_10 bucket
	}
	if got := h.Quantile(0.50); got != 5.0 {
		t.Errorf("p50 = %v, want 5.0 (midpoint of [0,10))", got)
	}
	if got := h.Quantile(0.99); got != 9.9 {
		t.Errorf("p99 = %v, want 9.9", got)
	}
	if got := h.Quantile(0); got != 0 {
		t.Errorf("q=0 = %v, want 0", got)
	}

	// Mass split across buckets: 50 in le_10, 50 in (10,100].
	h2 := r.Histogram("q2.us", 10, 100, 1000)
	for i := 0; i < 50; i++ {
		h2.Observe(1)
		h2.Observe(50)
	}
	if got := h2.Quantile(0.75); got != 55.0 {
		t.Errorf("p75 = %v, want 55.0 (halfway through (10,100])", got)
	}

	// Overflow: everything beyond the last bound clamps to it.
	h3 := r.Histogram("q3.us", 10, 100)
	h3.Observe(5000)
	if got := h3.Quantile(0.99); got != 100 {
		t.Errorf("overflow p99 = %v, want clamp to 100", got)
	}

	// Empty and nil are 0.
	h4 := r.Histogram("q4.us", 10)
	if got := h4.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
	var hn *Histogram
	if got := hn.Quantile(0.5); got != 0 {
		t.Errorf("nil quantile = %v, want 0", got)
	}
}

// TestSnapshotQuantiles checks that Snapshot (and therefore Format and
// the HTML metrics table) exposes p50/p99 for histograms with data and
// omits them for empty ones.
func TestSnapshotQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat.us", 10, 100)
	for i := 0; i < 10; i++ {
		h.Observe(5)
	}
	r.Histogram("empty.us", 10)
	snap := r.Snapshot()
	if got, ok := snap["lat.us.p50"]; !ok || got != 5 {
		t.Errorf("lat.us.p50 = %d (present %v), want 5", got, ok)
	}
	if _, ok := snap["lat.us.p99"]; !ok {
		t.Error("lat.us.p99 missing from snapshot")
	}
	if _, ok := snap["empty.us.p50"]; ok {
		t.Error("empty histogram should not export quantiles")
	}
	if !strings.Contains(r.Format(), "lat.us.p50") {
		t.Error("Format does not include the p50 row")
	}
}

// TestExport checks the typed snapshot: kinds kept separate, histogram
// bucket counts exact, histograms sorted by name, nil registry safe.
func TestExport(t *testing.T) {
	r := NewRegistry()
	r.Counter("c.total").Add(7)
	r.Gauge("g.live").Set(3)
	hb := r.Histogram("b.us", 10, 100)
	hb.Observe(5)
	hb.Observe(50)
	hb.Observe(5000)
	r.Histogram("a.us", 10).Observe(1)

	ex := r.Export()
	if ex.Counters["c.total"] != 7 || ex.Gauges["g.live"] != 3 {
		t.Errorf("counters/gauges wrong: %+v", ex)
	}
	if len(ex.Histograms) != 2 || ex.Histograms[0].Name != "a.us" || ex.Histograms[1].Name != "b.us" {
		t.Fatalf("histograms not sorted by name: %+v", ex.Histograms)
	}
	b := ex.Histograms[1]
	if b.Count != 3 || b.Sum != 5055 {
		t.Errorf("b.us count/sum = %d/%d, want 3/5055", b.Count, b.Sum)
	}
	want := []int64{1, 1, 1} // le_10, le_100, overflow
	for i, w := range want {
		if b.Counts[i] != w {
			t.Errorf("b.us bucket %d = %d, want %d", i, b.Counts[i], w)
		}
	}

	var rn *Registry
	nex := rn.Export()
	if nex.Counters == nil || nex.Gauges == nil || len(nex.Histograms) != 0 {
		t.Errorf("nil registry export not empty: %+v", nex)
	}
}

// TestMultiSink checks fan-out order and that the package-level Progress
// helper attaches to the context span.
func TestMultiSink(t *testing.T) {
	a, b := &Recorder{}, &Recorder{}
	o := New(MultiSink{a, b})
	ctx := NewContext(context.Background(), o)
	ctx, sp := StartSpan(ctx, "phase")
	Progress(ctx, A("k", 1))
	sp.End()
	for name, rec := range map[string]*Recorder{"a": a, "b": b} {
		evs := rec.Events()
		if len(evs) != 3 {
			t.Fatalf("sink %s saw %d events, want 3", name, len(evs))
		}
		if evs[1].Type != EventProgress || evs[1].Span != sp.ID {
			t.Errorf("sink %s progress event = %+v, want span %d", name, evs[1], sp.ID)
		}
	}
	// Progress without an Obs in context is a no-op.
	Progress(context.Background(), A("k", 2))
}
