package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event is one record of the JSONL trace. Field meaning by Type:
//
//	span.open   Span/Parent/Name identify the new span; Attrs carry
//	            open-time attributes (e.g. rank, program).
//	span.close  same identity plus DurUS (microseconds) and close-time
//	            attributes (outcome, counters).
//	progress    a periodic snapshot attached to the enclosing span;
//	            Attrs carry the live counters.
//	warn        a one-line diagnostic (Msg) attached to a span.
//
// One event per line; the schema is documented in DESIGN.md §9.
type Event struct {
	Time   time.Time      `json:"t"`
	Type   string         `json:"type"`
	Span   int64          `json:"span,omitempty"`
	Parent int64          `json:"parent,omitempty"`
	Name   string         `json:"name,omitempty"`
	Msg    string         `json:"msg,omitempty"`
	DurUS  int64          `json:"dur_us,omitempty"`
	Attrs  map[string]any `json:"attrs,omitempty"`
}

// Event types.
const (
	EventSpanOpen  = "span.open"
	EventSpanClose = "span.close"
	EventProgress  = "progress"
	EventWarn      = "warn"
	// EventDispatch records coordinator/worker scheduling decisions
	// (dispatch, steal, redispatch, merge) from the distributed frontier.
	// Attrs carry the unit's rank and the worker address.
	EventDispatch = "dispatch"
)

// Sink consumes events. Implementations must be safe for concurrent Emit.
type Sink interface {
	Emit(Event)
}

// JSONLSink streams events as JSON lines through a buffered writer. Emit
// errors are swallowed: an unwritable trace must never fail the pipeline
// it observes.
type JSONLSink struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	c   io.Closer
}

// NewJSONLSink wraps w. If w is an io.Closer (a file), Close closes it
// after flushing.
func NewJSONLSink(w io.Writer) *JSONLSink {
	bw := bufio.NewWriter(w)
	s := &JSONLSink{bw: bw, enc: json.NewEncoder(bw)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Emit writes one event line.
func (s *JSONLSink) Emit(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.enc.Encode(ev)
}

// Close flushes buffered lines and closes the underlying writer when it
// is closable.
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.bw.Flush()
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// MultiSink fans every event out to several sinks in order. Used when a
// run streams the same events to a trace file, the live introspection
// hub, and the flight recorder simultaneously.
type MultiSink []Sink

// Emit implements Sink.
func (m MultiSink) Emit(ev Event) {
	for _, s := range m {
		s.Emit(ev)
	}
}

// Recorder is an in-memory sink for tests: it keeps every event in
// arrival order.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// Emit implements Sink.
func (r *Recorder) Emit(ev Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, ev)
}

// Events returns a copy of the recorded events.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}
