package bench

import (
	"context"
	"strings"
	"testing"
)

// TestAblationCorpusStore checks the storage-backend comparison runs on
// every app and that both backends persist the same corpus: same run count
// and — since the streaming front-end is pinned byte-identical elsewhere —
// the same number of predicates.
func TestAblationCorpusStore(t *testing.T) {
	rows, err := AblationCorpusStore(context.Background(), "", DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	byApp := map[string]map[string]CorpusRow{}
	for _, r := range rows {
		if r.Bytes <= 0 || r.Runs <= 0 {
			t.Errorf("%s/%s: empty artifact: %+v", r.Program, r.Backend, r)
		}
		if byApp[r.Program] == nil {
			byApp[r.Program] = map[string]CorpusRow{}
		}
		byApp[r.Program][r.Backend] = r
	}
	for app, backends := range byApp {
		j, ok1 := backends["json"]
		s, ok2 := backends["store"]
		if !ok1 || !ok2 {
			t.Fatalf("%s: missing a backend row: %v", app, backends)
		}
		if j.Runs != s.Runs {
			t.Errorf("%s: run counts diverge: json %d, store %d", app, j.Runs, s.Runs)
		}
		if j.Preds != s.Preds {
			t.Errorf("%s: predicate counts diverge: json %d, store %d", app, j.Preds, s.Preds)
		}
	}
	out := FormatCorpusAblation("t", rows)
	if !strings.Contains(out, "store") || !strings.Contains(out, "json") {
		t.Errorf("formatted table lost backend labels:\n%s", out)
	}
}
