package bench

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/solver"
	"repro/internal/solver/persist"
	"repro/internal/symexec"
	"repro/internal/workload"
)

// AblationRow is one configuration's outcome on one app.
type AblationRow struct {
	Program string
	Config  string
	Found   bool
	Paths   int
	Steps   int64
	Elapsed time.Duration
	// SolverWall is the wall clock spent inside physical solver checks
	// (cache hits excluded), when the ablation records it.
	SolverWall time.Duration
	Failed     bool // resource exhaustion without a find
	// Summary-cache telemetry (summaries ablation): calls replaced by
	// memoized summaries, cache hits across every candidate attempt, and
	// summaries mined. Hits > Mined means later attempts were served from
	// earlier attempts' mining work.
	SummaryCalls int   `json:",omitempty"`
	SummaryHits  int64 `json:",omitempty"`
	SummaryMined int64 `json:",omitempty"`
	// Persistent solver-cache telemetry (solvercache ablation): entries
	// loaded+verified at warm start, lookup hits served from them, entries
	// spilled to disk, and verified-on-load rejections. Digest is the
	// run's detection digest so cold/warm equality is checkable from the
	// ledger alone.
	PersistLoaded  int64  `json:",omitempty"`
	PersistHits    int64  `json:",omitempty"`
	PersistSpilled int64  `json:",omitempty"`
	PersistRejects int64  `json:",omitempty"`
	Digest         string `json:",omitempty"`
}

// FormatAblation renders any ablation row set.
func FormatAblation(title string, rows []AblationRow) string {
	var sb strings.Builder
	sb.WriteString(title + "\n")
	solverCol, summaryCol, persistCol := false, false, false
	for _, r := range rows {
		if r.SolverWall > 0 {
			solverCol = true
		}
		if r.SummaryCalls > 0 || r.SummaryHits > 0 || r.SummaryMined > 0 {
			summaryCol = true
		}
		if strings.HasPrefix(r.Config, "solvercache=") {
			persistCol = true
		}
	}
	fmt.Fprintf(&sb, "%-10s %-22s %6s %8s %12s %12s", "Program", "config", "found", "paths", "steps", "time")
	if solverCol {
		fmt.Fprintf(&sb, " %12s", "solver")
	}
	if summaryCol {
		fmt.Fprintf(&sb, " %9s %9s %6s", "sumcalls", "hits", "mined")
	}
	if persistCol {
		fmt.Fprintf(&sb, " %7s %7s %8s %7s %7s", "loaded", "p-hits", "reuse", "spilled", "rejects")
	}
	sb.WriteString("\n")
	for _, r := range rows {
		status := fmt.Sprintf("%v", r.Found)
		if r.Failed {
			status = "FAILED"
		}
		fmt.Fprintf(&sb, "%-10s %-22s %6s %8d %12d %12s",
			r.Program, r.Config, status, r.Paths, r.Steps, r.Elapsed.Round(time.Millisecond))
		if solverCol {
			fmt.Fprintf(&sb, " %12s", r.SolverWall.Round(time.Millisecond))
		}
		if summaryCol {
			fmt.Fprintf(&sb, " %9d %9d %6d", r.SummaryCalls, r.SummaryHits, r.SummaryMined)
		}
		if persistCol {
			rate := "-"
			if r.PersistLoaded > 0 {
				rate = fmt.Sprintf("%5.1f%%", 100*float64(r.PersistHits)/float64(r.PersistLoaded))
			}
			fmt.Fprintf(&sb, " %7d %7d %8s %7d %7d",
				r.PersistLoaded, r.PersistHits, rate, r.PersistSpilled, r.PersistRejects)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// AblationScheduler compares unguided schedulers (BFS, DFS, random,
// coverage) against StatSym guidance on every app. It isolates how much of
// StatSym's win is scheduling (depth-first chase) versus statistical
// pruning.
func AblationScheduler(ctx context.Context, seed int64, budgets Budgets) ([]AblationRow, error) {
	var rows []AblationRow
	for _, app := range apps.All() {
		scheds := []func() symexec.Scheduler{
			func() symexec.Scheduler { return symexec.NewBFS() },
			func() symexec.Scheduler { return symexec.NewDFS() },
			func() symexec.Scheduler { return symexec.NewRandom(seed) },
			func() symexec.Scheduler { return symexec.NewCoverage() },
		}
		for _, mk := range scheds {
			if err := ctx.Err(); err != nil {
				return rows, err
			}
			sched := mk()
			res := pureWithScheduler(ctx, app, sched, budgets)
			rows = append(rows, AblationRow{
				Program: app.Name,
				Config:  "pure/" + sched.Name(),
				Found:   res.Found(),
				Paths:   res.Paths,
				Steps:   res.Steps,
				Elapsed: res.Elapsed,
				Failed:  !res.Found() && (res.Exhausted || res.StepLimited || res.TimedOut),
			})
		}
		rep, err := RunPipeline(ctx, app, 0.3, seed, budgets)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Program: app.Name,
			Config:  "statsym",
			Found:   rep.Found(),
			Paths:   rep.TotalPaths,
			Steps:   rep.TotalSteps,
			Elapsed: rep.SymTime,
			Failed:  !rep.Found(),
		})
	}
	return rows, nil
}

// AblationGuidance disables StatSym's two guidance mechanisms one at a
// time: full guidance, inter-function only (no predicates), intra-function
// only (no hop suspension), and neither (guided scheduler alone).
func AblationGuidance(ctx context.Context, seed int64, budgets Budgets) ([]AblationRow, error) {
	configs := []struct {
		name               string
		disInter, disPreds bool
	}{
		{"guided/full", false, false},
		{"guided/inter-only", false, true},
		{"guided/intra-only", true, false},
		{"guided/neither", true, true},
	}
	var rows []AblationRow
	for _, app := range apps.All() {
		corpus, err := workload.BuildCorpus(app, workload.Options{SampleRate: 0.3, Seed: seed})
		if err != nil {
			return nil, err
		}
		for _, c := range configs {
			if err := ctx.Err(); err != nil {
				return rows, err
			}
			cfg := core.Config{
				Spec:                 app.Spec,
				PerCandidateTimeout:  budgets.GuidedTimeout,
				PerCandidateMaxSteps: budgets.GuidedMaxSteps,
				Parallel:             budgets.Parallel,
				DisableSharedCache:   budgets.DisableSharedCache,
				DisableInter:         c.disInter,
				DisablePredicates:    c.disPreds,
			}
			rep, err := core.RunContext(ctx, app.Program(), corpus, cfg)
			if err != nil {
				return nil, err
			}
			rows = append(rows, AblationRow{
				Program: app.Name,
				Config:  c.name,
				Found:   rep.Found(),
				Paths:   rep.TotalPaths,
				Steps:   rep.TotalSteps,
				Elapsed: rep.SymTime,
				Failed:  !rep.Found(),
			})
		}
	}
	return rows, nil
}

// AblationTau sweeps the hop threshold τ on one app (default thttpd, whose
// candidate paths are longest).
func AblationTau(ctx context.Context, appName string, taus []int, seed int64, budgets Budgets) ([]AblationRow, error) {
	if len(taus) == 0 {
		taus = []int{0, 1, 2, 5, 10, 20, 50}
	}
	app, err := apps.Get(appName)
	if err != nil {
		return nil, err
	}
	corpus, err := workload.BuildCorpus(app, workload.Options{SampleRate: 0.3, Seed: seed})
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, tau := range taus {
		if err := ctx.Err(); err != nil {
			return rows, err
		}
		cfg := core.Config{
			Spec:                 app.Spec,
			Tau:                  tau,
			MinPredScore:         core.DefaultMinPredScore,
			PerCandidateTimeout:  budgets.GuidedTimeout,
			PerCandidateMaxSteps: budgets.GuidedMaxSteps,
			Parallel:             budgets.Parallel,
			DisableSharedCache:   budgets.DisableSharedCache,
		}
		if tau == 0 {
			cfg.Tau = -1 // τ=0: any off-path hop suspends (Config treats 0 as default)
		}
		rep, err := core.RunContext(ctx, app.Program(), corpus, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Program: app.Name,
			Config:  fmt.Sprintf("tau=%d", tau),
			Found:   rep.Found(),
			Paths:   rep.TotalPaths,
			Steps:   rep.TotalSteps,
			Elapsed: rep.SymTime,
			Failed:  !rep.Found(),
		})
	}
	return rows, nil
}

// AblationFrontier sweeps the in-candidate frontier worker count on the
// three widest-frontier apps, in two regimes: the guided pipeline
// ("guided/workers=N", symbolic-execution wall time) and the pure BFS
// baseline ("pure-bfs/workers=N", whole-run wall time). workers=0 is the
// sequential engine; workers>=1 is the epoch engine, whose counters are
// identical across worker counts within each regime — the determinism
// guarantee — so any row-to-row delta among them is pure wall-clock
// scaling (epoch rows can differ from workers=0 only at budget
// boundaries; see DESIGN.md §11).
func AblationFrontier(ctx context.Context, workerCounts []int, seed int64, budgets Budgets) ([]AblationRow, error) {
	if len(workerCounts) == 0 {
		workerCounts = []int{0, 1, 2, 4}
	}
	var rows []AblationRow
	for _, name := range []string{"polymorph", "thttpd", "grep"} {
		app, err := apps.Get(name)
		if err != nil {
			return nil, err
		}
		corpus, err := workload.BuildCorpus(app, workload.Options{SampleRate: 0.3, Seed: seed})
		if err != nil {
			return nil, err
		}
		for _, w := range workerCounts {
			if err := ctx.Err(); err != nil {
				return rows, err
			}
			cfg := core.Config{
				Spec:                 app.Spec,
				PerCandidateTimeout:  budgets.GuidedTimeout,
				PerCandidateMaxSteps: budgets.GuidedMaxSteps,
				Workers:              w,
				DisableSharedCache:   budgets.DisableSharedCache,
			}
			rep, err := core.RunContext(ctx, app.Program(), corpus, cfg)
			if err != nil {
				return nil, err
			}
			rows = append(rows, AblationRow{
				Program: app.Name,
				Config:  fmt.Sprintf("guided/workers=%d", w),
				Found:   rep.Found(),
				Paths:   rep.TotalPaths,
				Steps:   rep.TotalSteps,
				Elapsed: rep.SymTime,
				Failed:  !rep.Found(),
			})
		}
		for _, w := range workerCounts {
			if err := ctx.Err(); err != nil {
				return rows, err
			}
			res := core.RunPureWorkers(ctx, app.Program(), app.Spec,
				budgets.PureMaxStates, budgets.PureMaxSteps, budgets.PureTimeout, w)
			rows = append(rows, AblationRow{
				Program:    app.Name,
				Config:     fmt.Sprintf("pure-bfs/workers=%d", w),
				Found:      res.Found(),
				Paths:      res.Paths,
				Steps:      res.Steps,
				Elapsed:    res.Elapsed,
				SolverWall: res.SolverTime,
				Failed:     !res.Found() && (res.Exhausted || res.StepLimited || res.TimedOut),
			})
		}
	}
	return rows, nil
}

// AblationSolverCache compares the exact-match cache (the default), the
// cache with the opt-in KLEE-style heuristic fast paths, and effectively
// uncached constraint solving on polymorph's pure baseline, quantifying
// what each query-caching layer buys this engine.
func AblationSolverCache(ctx context.Context, budgets Budgets) ([]AblationRow, error) {
	app, err := apps.Get("polymorph")
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, name := range []string{"solver-cache=on", "solver-cache=fastpaths", "solver-cache=off"} {
		if err := ctx.Err(); err != nil {
			return rows, err
		}
		opts := symexec.DefaultOptions()
		opts.Sched = symexec.NewBFS()
		opts.MaxStates = budgets.PureMaxStates
		opts.MaxSteps = budgets.PureMaxSteps
		opts.Timeout = budgets.PureTimeout
		opts.SolverFastPaths = name == "solver-cache=fastpaths"
		ex := symexec.New(app.Program(), app.Spec, opts)
		if name == "solver-cache=off" {
			ex.Solver = solver.NewCached(solver.New())
			ex.Solver.Disabled = true // every query goes straight to the solver
		}
		res := ex.RunContext(ctx)
		rows = append(rows, AblationRow{
			Program:    app.Name,
			Config:     name,
			Found:      res.Found(),
			Paths:      res.Paths,
			Steps:      res.Steps,
			Elapsed:    res.Elapsed,
			SolverWall: res.SolverTime,
		})
	}
	return rows, nil
}

// AblationSolverCachePersist measures the persistent cross-run solver cache
// end to end on every app: a cold run against an empty store, a warm run
// against the store the cold run sealed, and a warm run after simulating an
// edit of the hottest function (the origin with the most cached entries is
// tombstoned, so its verdicts are invalidated at load). The corpus is built
// once per app outside the timed region, so each row's time is the analysis
// wall — statistics, candidate construction, and guided symbolic execution —
// the quantity a warm start accelerates. Each row records the run's
// detection-digest token: cold and warm MUST agree, including after the
// simulated edit (re-verification makes staleness a speed question only).
// solverCacheReps is how many times each cold/warm configuration is timed;
// the fastest rep is reported (standard min-of-N to shed scheduler noise).
const solverCacheReps = 3

func AblationSolverCachePersist(ctx context.Context, seed int64, budgets Budgets) ([]AblationRow, error) {
	baseDir := budgets.CacheDir
	if baseDir == "" {
		dir, err := os.MkdirTemp("", "statsym-solvercache-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		baseDir = dir
	}
	var rows []AblationRow
	// The differential tests pin cold-vs-warm digests on this five-app set
	// (the paper's four plus msgtool); the ablation measures the same set.
	programs := append(apps.All(), apps.MsgTool())
	for _, app := range programs {
		corpus, err := workload.BuildCorpus(app, workload.Options{SampleRate: 0.3, Seed: seed})
		if err != nil {
			return nil, err
		}
		cacheDir := filepath.Join(baseDir, app.Name)
		run := func(config string) (AblationRow, error) {
			if err := ctx.Err(); err != nil {
				return AblationRow{}, err
			}
			cfg := core.Config{
				Spec:                 app.Spec,
				PerCandidateTimeout:  budgets.GuidedTimeout,
				PerCandidateMaxSteps: budgets.GuidedMaxSteps,
				Parallel:             budgets.Parallel,
				Workers:              budgets.Workers,
				CacheDir:             cacheDir,
			}
			start := time.Now()
			rep, err := core.RunContext(ctx, app.Program(), corpus, cfg)
			if err != nil {
				return AblationRow{}, err
			}
			return AblationRow{
				Program:        app.Name,
				Config:         config,
				Found:          rep.Found(),
				Paths:          rep.TotalPaths,
				Steps:          rep.TotalSteps,
				Elapsed:        time.Since(start),
				SolverWall:     rep.SolverTime,
				Failed:         !rep.Found(),
				PersistLoaded:  rep.PersistLoaded,
				PersistHits:    rep.PersistHits,
				PersistSpilled: rep.PersistSpilled,
				PersistRejects: rep.PersistRejected,
				Digest:         core.DigestToken(rep),
			}, nil
		}
		// Cold and warm carry the headline ratio, and at millisecond scale a
		// single sample is scheduler noise — take the best of solverCacheReps
		// runs, keeping each rep's semantics exact: every cold rep starts
		// from a wiped store, every warm rep replays the identical sealed
		// store (a warm run spills nothing, so reps don't interfere).
		// Determinism makes all reps' counters and digests identical; only
		// the clock varies.
		best := func(config string, before func() error) (AblationRow, error) {
			var min AblationRow
			for i := 0; i < solverCacheReps; i++ {
				if before != nil {
					if err := before(); err != nil {
						return AblationRow{}, err
					}
				}
				row, err := run(config)
				if err != nil {
					return AblationRow{}, err
				}
				if i == 0 || row.Elapsed < min.Elapsed {
					min = row
				}
			}
			return min, nil
		}
		cold, err := best("solvercache=cold", func() error { return os.RemoveAll(cacheDir) })
		if err != nil {
			return rows, err
		}
		warm, err := best("solvercache=warm", nil)
		if err != nil {
			return rows, err
		}
		// Simulate an edit of the hottest function: tombstone the origin
		// with the most cached verdicts, then run once (the run re-spills
		// the invalidated verdicts, so repeating it would measure a store
		// with duplicate entries, not the edit).
		if _, _, err := persist.TombstoneHeaviest(cacheDir); err != nil {
			return rows, err
		}
		edit, err := run("solvercache=warm-edit")
		if err != nil {
			return rows, err
		}
		rows = append(rows, cold, warm, edit)
	}
	return rows, nil
}

// AblationSummaries compares full interpretation ("calls=interpret") against
// memoized function summaries with a full-coverage scope
// ("calls=summarize") on every app, holding the corpus fixed. Detections are
// pinned byte-identical between the two modes by the differential tests
// (core.DetectionDigest), so the rows quantify pure effort: wall time plus
// the summary cache's telemetry — hits far above mined means later candidate
// attempts were served entirely from earlier attempts' mining work. Apps
// whose guided runs never cross a summarizable call (sumcalls=0) are the
// control group: both rows must be step-identical.
func AblationSummaries(ctx context.Context, seed int64, budgets Budgets) ([]AblationRow, error) {
	var rows []AblationRow
	for _, app := range apps.All() {
		corpus, err := workload.BuildCorpus(app, workload.Options{SampleRate: 0.3, Seed: seed})
		if err != nil {
			return nil, err
		}
		for _, summarize := range []bool{false, true} {
			if err := ctx.Err(); err != nil {
				return rows, err
			}
			cfg := core.Config{
				Spec:                 app.Spec,
				PerCandidateTimeout:  budgets.GuidedTimeout,
				PerCandidateMaxSteps: budgets.GuidedMaxSteps,
				Parallel:             budgets.Parallel,
				DisableSharedCache:   budgets.DisableSharedCache,
				Scope:                budgets.Scope,
				Summaries:            summarize,
			}
			rep, err := core.RunContext(ctx, app.Program(), corpus, cfg)
			if err != nil {
				return nil, err
			}
			name := "calls=interpret"
			if summarize {
				name = "calls=summarize"
			}
			rows = append(rows, AblationRow{
				Program:      app.Name,
				Config:       name,
				Found:        rep.Found(),
				Paths:        rep.TotalPaths,
				Steps:        rep.TotalSteps,
				Elapsed:      rep.SymTime,
				Failed:       !rep.Found(),
				SummaryCalls: rep.SummaryCalls,
				SummaryHits:  rep.SummaryHits,
				SummaryMined: rep.SummaryMined,
			})
		}
	}
	return rows, nil
}

// AblationDispatch measures the coordinator/worker dispatch backend
// against the in-process sequential loop on polymorph, thttpd, and grep:
// dispatch off, dispatch local-only (the backend's own scheduling with no
// workers), then 1, 2, and 4 workers. Workers are served in-process over
// unix sockets, so the rows pay the full unit codec + framing + socket
// round-trip cost of a real worker process while staying hermetic for CI.
// Wall clock is min-of-3 per configuration (scheduling noise dominates
// single runs at these durations); detections are pinned — every dispatch
// row must reproduce the sequential row's digest or the ablation fails.
// On a single-core host the worker rows measure protocol overhead, not
// speedup: the workers share the one CPU with the coordinator.
func AblationDispatch(ctx context.Context, workerCounts []int, seed int64, budgets Budgets) ([]AblationRow, error) {
	if len(workerCounts) == 0 {
		workerCounts = []int{0, 1, 2, 4}
	}
	const reps = 3
	maxWorkers := 0
	for _, n := range workerCounts {
		if n > maxWorkers {
			maxWorkers = n
		}
	}
	// One shared worker pool for the whole ablation; each configuration
	// addresses a prefix of it.
	sockDir, err := os.MkdirTemp("", "statsym-dispatch-ablation")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(sockDir)
	addrs := make([]string, maxWorkers)
	for i := range addrs {
		addrs[i] = filepath.Join(sockDir, fmt.Sprintf("w%d.sock", i))
		l, err := dispatch.Listen(addrs[i])
		if err != nil {
			return nil, err
		}
		defer l.Close()
		go dispatch.Serve(l, core.NewDispatchRunner(core.WorkerConfig{}))
	}

	var rows []AblationRow
	for _, name := range []string{"polymorph", "thttpd", "grep"} {
		app, err := apps.Get(name)
		if err != nil {
			return nil, err
		}
		corpus, err := workload.BuildCorpus(app, workload.Options{SampleRate: 0.3, Seed: seed})
		if err != nil {
			return nil, err
		}
		base := core.Config{
			Spec:                 app.Spec,
			PerCandidateTimeout:  budgets.GuidedTimeout,
			PerCandidateMaxSteps: budgets.GuidedMaxSteps,
			DisableSharedCache:   budgets.DisableSharedCache,
		}
		configs := []struct {
			label string
			n     int // -1: dispatch off (sequential loop)
		}{{"dispatch/off", -1}}
		for _, n := range workerCounts {
			label := fmt.Sprintf("dispatch/workers=%d", n)
			if n == 0 {
				label = "dispatch/local"
			}
			configs = append(configs, struct {
				label string
				n     int
			}{label, n})
		}
		refDigest := ""
		for _, c := range configs {
			cfg := base
			if c.n >= 0 {
				cfg.Dispatch = true
				cfg.WorkerAddrs = addrs[:c.n]
			}
			var best *core.Report
			for rep := 0; rep < reps; rep++ {
				if err := ctx.Err(); err != nil {
					return rows, err
				}
				r, err := core.RunContext(ctx, app.Program(), corpus, cfg)
				if err != nil {
					return nil, err
				}
				if best == nil || r.SymTime < best.SymTime {
					best = r
				}
			}
			digest := core.DigestToken(best)
			if refDigest == "" {
				refDigest = digest
			} else if digest != refDigest {
				return nil, fmt.Errorf("dispatch ablation: %s %s digest %s diverged from sequential %s",
					name, c.label, digest, refDigest)
			}
			rows = append(rows, AblationRow{
				Program: app.Name,
				Config:  c.label,
				Found:   best.Found(),
				Paths:   best.TotalPaths,
				Steps:   best.TotalSteps,
				Elapsed: best.SymTime,
				Failed:  !best.Found(),
				Digest:  digest,
			})
		}
	}
	return rows, nil
}
