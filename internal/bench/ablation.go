package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/solver"
	"repro/internal/symexec"
	"repro/internal/workload"
)

// AblationRow is one configuration's outcome on one app.
type AblationRow struct {
	Program string
	Config  string
	Found   bool
	Paths   int
	Steps   int64
	Elapsed time.Duration
	// SolverWall is the wall clock spent inside physical solver checks
	// (cache hits excluded), when the ablation records it.
	SolverWall time.Duration
	Failed     bool // resource exhaustion without a find
	// Summary-cache telemetry (summaries ablation): calls replaced by
	// memoized summaries, cache hits across every candidate attempt, and
	// summaries mined. Hits > Mined means later attempts were served from
	// earlier attempts' mining work.
	SummaryCalls int   `json:",omitempty"`
	SummaryHits  int64 `json:",omitempty"`
	SummaryMined int64 `json:",omitempty"`
}

// FormatAblation renders any ablation row set.
func FormatAblation(title string, rows []AblationRow) string {
	var sb strings.Builder
	sb.WriteString(title + "\n")
	solverCol, summaryCol := false, false
	for _, r := range rows {
		if r.SolverWall > 0 {
			solverCol = true
		}
		if r.SummaryCalls > 0 || r.SummaryHits > 0 || r.SummaryMined > 0 {
			summaryCol = true
		}
	}
	fmt.Fprintf(&sb, "%-10s %-22s %6s %8s %12s %12s", "Program", "config", "found", "paths", "steps", "time")
	if solverCol {
		fmt.Fprintf(&sb, " %12s", "solver")
	}
	if summaryCol {
		fmt.Fprintf(&sb, " %9s %9s %6s", "sumcalls", "hits", "mined")
	}
	sb.WriteString("\n")
	for _, r := range rows {
		status := fmt.Sprintf("%v", r.Found)
		if r.Failed {
			status = "FAILED"
		}
		fmt.Fprintf(&sb, "%-10s %-22s %6s %8d %12d %12s",
			r.Program, r.Config, status, r.Paths, r.Steps, r.Elapsed.Round(time.Millisecond))
		if solverCol {
			fmt.Fprintf(&sb, " %12s", r.SolverWall.Round(time.Millisecond))
		}
		if summaryCol {
			fmt.Fprintf(&sb, " %9d %9d %6d", r.SummaryCalls, r.SummaryHits, r.SummaryMined)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// AblationScheduler compares unguided schedulers (BFS, DFS, random,
// coverage) against StatSym guidance on every app. It isolates how much of
// StatSym's win is scheduling (depth-first chase) versus statistical
// pruning.
func AblationScheduler(ctx context.Context, seed int64, budgets Budgets) ([]AblationRow, error) {
	var rows []AblationRow
	for _, app := range apps.All() {
		scheds := []func() symexec.Scheduler{
			func() symexec.Scheduler { return symexec.NewBFS() },
			func() symexec.Scheduler { return symexec.NewDFS() },
			func() symexec.Scheduler { return symexec.NewRandom(seed) },
			func() symexec.Scheduler { return symexec.NewCoverage() },
		}
		for _, mk := range scheds {
			if err := ctx.Err(); err != nil {
				return rows, err
			}
			sched := mk()
			res := pureWithScheduler(ctx, app, sched, budgets)
			rows = append(rows, AblationRow{
				Program: app.Name,
				Config:  "pure/" + sched.Name(),
				Found:   res.Found(),
				Paths:   res.Paths,
				Steps:   res.Steps,
				Elapsed: res.Elapsed,
				Failed:  !res.Found() && (res.Exhausted || res.StepLimited || res.TimedOut),
			})
		}
		rep, err := RunPipeline(ctx, app, 0.3, seed, budgets)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Program: app.Name,
			Config:  "statsym",
			Found:   rep.Found(),
			Paths:   rep.TotalPaths,
			Steps:   rep.TotalSteps,
			Elapsed: rep.SymTime,
			Failed:  !rep.Found(),
		})
	}
	return rows, nil
}

// AblationGuidance disables StatSym's two guidance mechanisms one at a
// time: full guidance, inter-function only (no predicates), intra-function
// only (no hop suspension), and neither (guided scheduler alone).
func AblationGuidance(ctx context.Context, seed int64, budgets Budgets) ([]AblationRow, error) {
	configs := []struct {
		name               string
		disInter, disPreds bool
	}{
		{"guided/full", false, false},
		{"guided/inter-only", false, true},
		{"guided/intra-only", true, false},
		{"guided/neither", true, true},
	}
	var rows []AblationRow
	for _, app := range apps.All() {
		corpus, err := workload.BuildCorpus(app, workload.Options{SampleRate: 0.3, Seed: seed})
		if err != nil {
			return nil, err
		}
		for _, c := range configs {
			if err := ctx.Err(); err != nil {
				return rows, err
			}
			cfg := core.Config{
				Spec:                 app.Spec,
				PerCandidateTimeout:  budgets.GuidedTimeout,
				PerCandidateMaxSteps: budgets.GuidedMaxSteps,
				Parallel:             budgets.Parallel,
				DisableSharedCache:   budgets.DisableSharedCache,
				DisableInter:         c.disInter,
				DisablePredicates:    c.disPreds,
			}
			rep, err := core.RunContext(ctx, app.Program(), corpus, cfg)
			if err != nil {
				return nil, err
			}
			rows = append(rows, AblationRow{
				Program: app.Name,
				Config:  c.name,
				Found:   rep.Found(),
				Paths:   rep.TotalPaths,
				Steps:   rep.TotalSteps,
				Elapsed: rep.SymTime,
				Failed:  !rep.Found(),
			})
		}
	}
	return rows, nil
}

// AblationTau sweeps the hop threshold τ on one app (default thttpd, whose
// candidate paths are longest).
func AblationTau(ctx context.Context, appName string, taus []int, seed int64, budgets Budgets) ([]AblationRow, error) {
	if len(taus) == 0 {
		taus = []int{0, 1, 2, 5, 10, 20, 50}
	}
	app, err := apps.Get(appName)
	if err != nil {
		return nil, err
	}
	corpus, err := workload.BuildCorpus(app, workload.Options{SampleRate: 0.3, Seed: seed})
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, tau := range taus {
		if err := ctx.Err(); err != nil {
			return rows, err
		}
		cfg := core.Config{
			Spec:                 app.Spec,
			Tau:                  tau,
			MinPredScore:         core.DefaultMinPredScore,
			PerCandidateTimeout:  budgets.GuidedTimeout,
			PerCandidateMaxSteps: budgets.GuidedMaxSteps,
			Parallel:             budgets.Parallel,
			DisableSharedCache:   budgets.DisableSharedCache,
		}
		if tau == 0 {
			cfg.Tau = -1 // τ=0: any off-path hop suspends (Config treats 0 as default)
		}
		rep, err := core.RunContext(ctx, app.Program(), corpus, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Program: app.Name,
			Config:  fmt.Sprintf("tau=%d", tau),
			Found:   rep.Found(),
			Paths:   rep.TotalPaths,
			Steps:   rep.TotalSteps,
			Elapsed: rep.SymTime,
			Failed:  !rep.Found(),
		})
	}
	return rows, nil
}

// AblationFrontier sweeps the in-candidate frontier worker count on the
// three widest-frontier apps, in two regimes: the guided pipeline
// ("guided/workers=N", symbolic-execution wall time) and the pure BFS
// baseline ("pure-bfs/workers=N", whole-run wall time). workers=0 is the
// sequential engine; workers>=1 is the epoch engine, whose counters are
// identical across worker counts within each regime — the determinism
// guarantee — so any row-to-row delta among them is pure wall-clock
// scaling (epoch rows can differ from workers=0 only at budget
// boundaries; see DESIGN.md §11).
func AblationFrontier(ctx context.Context, workerCounts []int, seed int64, budgets Budgets) ([]AblationRow, error) {
	if len(workerCounts) == 0 {
		workerCounts = []int{0, 1, 2, 4}
	}
	var rows []AblationRow
	for _, name := range []string{"polymorph", "thttpd", "grep"} {
		app, err := apps.Get(name)
		if err != nil {
			return nil, err
		}
		corpus, err := workload.BuildCorpus(app, workload.Options{SampleRate: 0.3, Seed: seed})
		if err != nil {
			return nil, err
		}
		for _, w := range workerCounts {
			if err := ctx.Err(); err != nil {
				return rows, err
			}
			cfg := core.Config{
				Spec:                 app.Spec,
				PerCandidateTimeout:  budgets.GuidedTimeout,
				PerCandidateMaxSteps: budgets.GuidedMaxSteps,
				Workers:              w,
				DisableSharedCache:   budgets.DisableSharedCache,
			}
			rep, err := core.RunContext(ctx, app.Program(), corpus, cfg)
			if err != nil {
				return nil, err
			}
			rows = append(rows, AblationRow{
				Program: app.Name,
				Config:  fmt.Sprintf("guided/workers=%d", w),
				Found:   rep.Found(),
				Paths:   rep.TotalPaths,
				Steps:   rep.TotalSteps,
				Elapsed: rep.SymTime,
				Failed:  !rep.Found(),
			})
		}
		for _, w := range workerCounts {
			if err := ctx.Err(); err != nil {
				return rows, err
			}
			res := core.RunPureWorkers(ctx, app.Program(), app.Spec,
				budgets.PureMaxStates, budgets.PureMaxSteps, budgets.PureTimeout, w)
			rows = append(rows, AblationRow{
				Program:    app.Name,
				Config:     fmt.Sprintf("pure-bfs/workers=%d", w),
				Found:      res.Found(),
				Paths:      res.Paths,
				Steps:      res.Steps,
				Elapsed:    res.Elapsed,
				SolverWall: res.SolverTime,
				Failed:     !res.Found() && (res.Exhausted || res.StepLimited || res.TimedOut),
			})
		}
	}
	return rows, nil
}

// AblationSolverCache compares the exact-match cache (the default), the
// cache with the opt-in KLEE-style heuristic fast paths, and effectively
// uncached constraint solving on polymorph's pure baseline, quantifying
// what each query-caching layer buys this engine.
func AblationSolverCache(ctx context.Context, budgets Budgets) ([]AblationRow, error) {
	app, err := apps.Get("polymorph")
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, name := range []string{"solver-cache=on", "solver-cache=fastpaths", "solver-cache=off"} {
		if err := ctx.Err(); err != nil {
			return rows, err
		}
		opts := symexec.DefaultOptions()
		opts.Sched = symexec.NewBFS()
		opts.MaxStates = budgets.PureMaxStates
		opts.MaxSteps = budgets.PureMaxSteps
		opts.Timeout = budgets.PureTimeout
		opts.SolverFastPaths = name == "solver-cache=fastpaths"
		ex := symexec.New(app.Program(), app.Spec, opts)
		if name == "solver-cache=off" {
			ex.Solver = solver.NewCached(solver.New())
			ex.Solver.Disabled = true // every query goes straight to the solver
		}
		res := ex.RunContext(ctx)
		rows = append(rows, AblationRow{
			Program:    app.Name,
			Config:     name,
			Found:      res.Found(),
			Paths:      res.Paths,
			Steps:      res.Steps,
			Elapsed:    res.Elapsed,
			SolverWall: res.SolverTime,
		})
	}
	return rows, nil
}

// AblationSummaries compares full interpretation ("calls=interpret") against
// memoized function summaries with a full-coverage scope
// ("calls=summarize") on every app, holding the corpus fixed. Detections are
// pinned byte-identical between the two modes by the differential tests
// (core.DetectionDigest), so the rows quantify pure effort: wall time plus
// the summary cache's telemetry — hits far above mined means later candidate
// attempts were served entirely from earlier attempts' mining work. Apps
// whose guided runs never cross a summarizable call (sumcalls=0) are the
// control group: both rows must be step-identical.
func AblationSummaries(ctx context.Context, seed int64, budgets Budgets) ([]AblationRow, error) {
	var rows []AblationRow
	for _, app := range apps.All() {
		corpus, err := workload.BuildCorpus(app, workload.Options{SampleRate: 0.3, Seed: seed})
		if err != nil {
			return nil, err
		}
		for _, summarize := range []bool{false, true} {
			if err := ctx.Err(); err != nil {
				return rows, err
			}
			cfg := core.Config{
				Spec:                 app.Spec,
				PerCandidateTimeout:  budgets.GuidedTimeout,
				PerCandidateMaxSteps: budgets.GuidedMaxSteps,
				Parallel:             budgets.Parallel,
				DisableSharedCache:   budgets.DisableSharedCache,
				Scope:                budgets.Scope,
				Summaries:            summarize,
			}
			rep, err := core.RunContext(ctx, app.Program(), corpus, cfg)
			if err != nil {
				return nil, err
			}
			name := "calls=interpret"
			if summarize {
				name = "calls=summarize"
			}
			rows = append(rows, AblationRow{
				Program:      app.Name,
				Config:       name,
				Found:        rep.Found(),
				Paths:        rep.TotalPaths,
				Steps:        rep.TotalSteps,
				Elapsed:      rep.SymTime,
				Failed:       !rep.Found(),
				SummaryCalls: rep.SummaryCalls,
				SummaryHits:  rep.SummaryHits,
				SummaryMined: rep.SummaryMined,
			})
		}
	}
	return rows, nil
}
