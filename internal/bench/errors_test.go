package bench

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestUnknownAppErrors(t *testing.T) {
	if _, err := Table5(context.Background(), "nope", 10, 1); err == nil {
		t.Error("Table5 accepted unknown app")
	}
	if _, _, err := Figure8("nope"); err == nil {
		t.Error("Figure8 accepted unknown app")
	}
	if _, err := Figure9(context.Background(), "nope", 1); err == nil {
		t.Error("Figure9 accepted unknown app")
	}
	if _, err := Figure10(context.Background(), []string{"nope"}, []float64{0.3}, 1); err == nil {
		t.Error("Figure10 accepted unknown app")
	}
	if _, err := AblationTau(context.Background(), "nope", nil, 1, DefaultBudgets()); err == nil {
		t.Error("AblationTau accepted unknown app")
	}
}

func TestFormatTable4FailureRendering(t *testing.T) {
	rows := []Table4Row{
		{
			Program:     "demo",
			GuidedPaths: 3,
			GuidedTime:  12 * time.Millisecond,
			GuidedFound: true,
			PurePaths:   999,
			PureTime:    5 * time.Second,
			PureFailed:  true,
		},
		{
			Program:     "demo2",
			GuidedFound: false,
			PureFound:   false,
			PureFailed:  false,
		},
	}
	out := FormatTable4(rows)
	if !strings.Contains(out, "Failed") {
		t.Errorf("failed pure run not rendered:\n%s", out)
	}
	if !strings.Contains(out, "NOT FOUND") {
		t.Errorf("guided miss not rendered:\n%s", out)
	}
	if !strings.Contains(out, "no vuln") {
		t.Errorf("clean pure completion not rendered:\n%s", out)
	}
}

func TestFormatAblationFailedRendering(t *testing.T) {
	out := FormatAblation("T", []AblationRow{
		{Program: "p", Config: "c", Failed: true, Paths: 7},
		{Program: "p", Config: "d", Found: true},
	})
	if !strings.Contains(out, "FAILED") || !strings.Contains(out, "true") {
		t.Errorf("ablation rendering:\n%s", out)
	}
}

func TestDefaultBudgetsSane(t *testing.T) {
	b := DefaultBudgets()
	if b.PureMaxStates <= 0 || b.PureMaxSteps <= 0 || b.PureTimeout <= 0 {
		t.Errorf("budgets = %+v", b)
	}
	if b.GuidedTimeout <= 0 || b.GuidedMaxSteps <= 0 {
		t.Errorf("budgets = %+v", b)
	}
}
