package bench

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

func sampleRows() []AblationRow {
	return []AblationRow{
		{Program: "polymorph", Config: "calls=interpret", Found: true, Paths: 2, Steps: 9482, Elapsed: 2 * time.Millisecond},
		{Program: "polymorph", Config: "calls=summarize", Found: true, Paths: 2, Steps: 9482, Elapsed: time.Millisecond, SummaryCalls: 3, SummaryHits: 2, SummaryMined: 1},
		{Program: "thttpd", Config: "tau=10", Found: true, Paths: 4, Steps: 20000, Elapsed: 5 * time.Millisecond},
	}
}

// TestLedgerRoundTrip: write a ledger, read it back as a baseline, and
// compare it against itself — zero regressions.
func TestLedgerRoundTrip(t *testing.T) {
	rows := LedgerFromRows(sampleRows())
	path := filepath.Join(t.TempDir(), "ledger.json")
	if err := WriteLedger(path, Ledger{Title: "t", Seed: 1, Rows: rows}); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, back) {
		t.Fatalf("round trip mismatch:\nwrote %+v\nread  %+v", rows, back)
	}
	if regs := CompareLedger(back, rows, DefaultTolerances()); len(regs) != 0 {
		t.Fatalf("self-comparison regressed: %+v", regs)
	}
}

// TestCompareLedgerFlagsRegressions injects each regression class.
func TestCompareLedgerFlagsRegressions(t *testing.T) {
	base := LedgerFromRows(sampleRows())
	tol := DefaultTolerances()

	metricOf := func(regs []Regression) map[string]bool {
		m := map[string]bool{}
		for _, r := range regs {
			m[r.Metric] = true
		}
		return m
	}

	// Steps blown past the tolerance.
	cur := LedgerFromRows(sampleRows())
	cur[0].Steps = cur[0].Steps * 2
	if m := metricOf(CompareLedger(base, cur, tol)); !m["steps"] {
		t.Error("2x steps not flagged")
	}
	// Within tolerance: +5% is fine at the 10% default.
	cur = LedgerFromRows(sampleRows())
	cur[0].Steps = cur[0].Steps * 105 / 100
	if regs := CompareLedger(base, cur, tol); len(regs) != 0 {
		t.Errorf("+5%% steps flagged: %+v", regs)
	}
	// Lost detection.
	cur = LedgerFromRows(sampleRows())
	cur[1].Found = false
	if m := metricOf(CompareLedger(base, cur, tol)); !m["found"] {
		t.Error("lost detection not flagged")
	}
	// Newly failing.
	cur = LedgerFromRows(sampleRows())
	cur[2].Failed = true
	if m := metricOf(CompareLedger(base, cur, tol)); !m["failed"] {
		t.Error("new failure not flagged")
	}
	// Missing row.
	cur = LedgerFromRows(sampleRows())[:2]
	if m := metricOf(CompareLedger(base, cur, tol)); !m["missing"] {
		t.Error("missing row not flagged")
	}
	// Wall time gated only when TimeRatio is set.
	cur = LedgerFromRows(sampleRows())
	cur[0].SymMS = base[0].SymMS * 10
	if regs := CompareLedger(base, cur, tol); len(regs) != 0 {
		t.Errorf("time flagged with gate off: %+v", regs)
	}
	if m := metricOf(CompareLedger(base, cur, Tolerances{StepsPct: 0.10, TimeRatio: 2})); !m["sym_ms"] {
		t.Error("10x time not flagged with TimeRatio=2")
	}
}

// TestReadBaselineLegacySchema parses the BENCH_pr*.json shape: sections
// keyed by experiment, each holding a prose note plus a rows array.
func TestReadBaselineLegacySchema(t *testing.T) {
	legacy := `{
  "pr": 6,
  "title": "whatever",
  "machine": {"goos": "linux", "note": "prose"},
  "summaries_ablation": {
    "note": "prose",
    "rows": [
      {"program": "polymorph", "config": "calls=interpret", "found": true, "paths": 2, "steps": 9482, "sym_ms": 1.9},
      {"program": "polymorph", "config": "calls=summarize", "found": true, "paths": 2, "steps": 9482, "sym_ms": 1.3, "summary_calls": 0, "cache_hits": 0, "mined": 0}
    ]
  }
}`
	path := filepath.Join(t.TempDir(), "BENCH_legacy.json")
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	rows, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %+v, want 2", rows)
	}
	if rows[0].Program != "polymorph" || rows[0].Steps != 9482 || rows[0].SymMS != 1.9 {
		t.Errorf("row 0 = %+v", rows[0])
	}
	if got := AblationsNeeded(rows); !reflect.DeepEqual(got, []string{"summaries"}) {
		t.Errorf("AblationsNeeded = %v, want [summaries]", got)
	}
}

// TestReadBaselineCheckedInHistory reads the repo's real BENCH_pr6.json.
func TestReadBaselineCheckedInHistory(t *testing.T) {
	path := "../../BENCH_pr6.json"
	if _, err := os.Stat(path); err != nil {
		t.Skip("BENCH_pr6.json not present")
	}
	rows, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows from BENCH_pr6.json")
	}
	for _, r := range rows {
		if !strings.HasPrefix(r.Config, "calls=") {
			t.Errorf("unexpected config %q", r.Config)
		}
	}
	if got := AblationsNeeded(rows); !reflect.DeepEqual(got, []string{"summaries"}) {
		t.Errorf("AblationsNeeded = %v, want [summaries]", got)
	}
}

// TestAblationFor pins the config→ablation mapping the -baseline flow
// depends on.
func TestAblationFor(t *testing.T) {
	cases := map[string]string{
		"pure/bfs":            "scheduler",
		"statsym":             "scheduler",
		"guided/full":         "guidance",
		"guided/inter-only":   "guidance",
		"tau=10":              "tau",
		"solver-cache=on":     "cache",
		"guided/workers=4":    "frontier",
		"pure-bfs/workers=2":  "frontier",
		"calls=interpret":     "summaries",
		"calls=summarize":     "summaries",
		"store/json-blob":     "",
		"something-unrelated": "",
	}
	for config, want := range cases {
		if got := ablationFor(config); got != want {
			t.Errorf("ablationFor(%q) = %q, want %q", config, got, want)
		}
	}
}
