// Package bench regenerates every table and figure of the paper's
// evaluation (§VII) from this reproduction's own modules. Each experiment
// returns structured rows plus a paper-style text rendering; cmd/benchtab
// and the repository-level testing.B benchmarks drive them.
//
// Absolute times differ from the paper (the substrate is a bytecode
// interpreter on one host, not KLEE on a Xeon testbed); the comparisons
// that carry the paper's conclusions — who finds the vulnerability, who
// fails with state exhaustion, which module dominates, how counts relate —
// are the reproduced quantities.
package bench

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/minic"
	"repro/internal/obs"
	"repro/internal/symexec"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Budgets holds the resource limits standing in for the paper's 8-hour
// KLEE timeout and its machine's memory. They are deliberately small: the
// modeled programs are smaller than the originals by a similar factor.
type Budgets struct {
	PureMaxStates int
	PureMaxSteps  int64
	PureTimeout   time.Duration

	GuidedMaxSteps int64
	GuidedTimeout  time.Duration

	// Parallel is the candidate-verification worker count handed to
	// core.Config.Parallel by every experiment that runs the guided
	// pipeline. 0 and 1 keep the sequential loop; the reported counters
	// are identical either way (the parallel engine's determinism
	// guarantee), only wall-clock time changes.
	Parallel int

	// DisableSharedCache switches off the cross-candidate solver cache in
	// every guided pipeline run (A/B comparisons; counters are identical
	// either way, only solver wall time changes).
	DisableSharedCache bool

	// Workers is the in-candidate frontier worker count handed to
	// core.Config.Workers by every experiment that runs the guided
	// pipeline. 0 keeps the sequential engine; any value >= 1 selects the
	// epoch engine, whose counters are worker-count-invariant — as with
	// Parallel, only wall-clock time changes.
	Workers int

	// Scope is the interpretation scope policy handed to core.Config.Scope
	// by every experiment that runs the guided pipeline ("" interprets
	// everything; see summary.ParsePolicy for the syntax).
	Scope string

	// CacheDir, when set, hands every guided pipeline run a persistent
	// cross-run solver-cache directory (core.Config.CacheDir). The
	// solvercache ablation uses it as its store root (one subdirectory
	// per app); empty means a throwaway temp directory.
	CacheDir string

	// Summaries switches the executor's call strategy to summarize mode in
	// every guided pipeline run: summarizable leaf calls are replaced by
	// memoized path summaries shared across candidate attempts. With a
	// full-coverage Scope the detections are byte-identical to full
	// interpretation (core.DetectionDigest); only effort changes.
	Summaries bool
}

// DefaultBudgets returns the standard experiment budgets.
func DefaultBudgets() Budgets {
	return Budgets{
		PureMaxStates:  20_000,
		PureMaxSteps:   20_000_000,
		PureTimeout:    60 * time.Second,
		GuidedMaxSteps: 20_000_000,
		GuidedTimeout:  30 * time.Second,
	}
}

// DefaultSeed is the workload seed shared by the experiments.
const DefaultSeed = 1

// --- Table I ---

// Table1Row is one program's static statistics.
type Table1Row struct {
	Program string
	Stats   minic.ProgramStats
}

// Table1 computes program statistics for the four applications.
func Table1() []Table1Row {
	var rows []Table1Row
	for _, app := range apps.All() {
		rows = append(rows, Table1Row{Program: app.Name, Stats: app.Stats()})
	}
	return rows
}

// FormatTable1 renders Table I.
func FormatTable1(rows []Table1Row) string {
	var sb strings.Builder
	sb.WriteString("TABLE I: Program statistics\n")
	fmt.Fprintf(&sb, "%-10s %6s %9s %11s %6s %8s\n",
		"Program", "SLOC", "Ext.Call", "Inter.Call", "G.V.", "Params.")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %6d %9d %11d %6d %8d\n",
			r.Program, r.Stats.SLOC, r.Stats.ExternalCalls, r.Stats.InternalCalls,
			r.Stats.GlobalVars, r.Stats.Params)
	}
	return sb.String()
}

// --- Tables II / III (module breakdown at a sampling rate) ---

// ModuleRow is one benchmark's detour count and per-module time breakdown.
type ModuleRow struct {
	Program    string
	Detours    int
	StatTime   time.Duration
	SymTime    time.Duration
	Found      bool
	Candidates int
	LogBytes   int
}

// RunPipeline executes the full StatSym pipeline for one app at the given
// sampling rate and returns the report (shared by several experiments).
// Cancelling ctx aborts the guided search and surfaces the partial report's
// error state to the experiment driver. When an observability handle rides
// in ctx, the whole run — corpus collection included — is wrapped in one
// "pipeline" root span (core.RunContext reuses it rather than opening a
// second root), and the report carries the monitor phase's wall time.
func RunPipeline(ctx context.Context, app *apps.App, rate float64, seed int64, budgets Budgets) (*core.Report, error) {
	ctx, root := obs.StartSpan(ctx, "pipeline", obs.A("app", app.Name), obs.A("rate", rate))
	defer root.End()
	monStart := time.Now()
	corpus, err := workload.BuildCorpusCtx(ctx, app, workload.Options{SampleRate: rate, Seed: seed})
	if err != nil {
		return nil, err
	}
	monTime := time.Since(monStart)
	cfg := core.Config{
		Spec:                 app.Spec,
		PerCandidateTimeout:  budgets.GuidedTimeout,
		PerCandidateMaxSteps: budgets.GuidedMaxSteps,
		Parallel:             budgets.Parallel,
		Workers:              budgets.Workers,
		DisableSharedCache:   budgets.DisableSharedCache,
		Scope:                budgets.Scope,
		Summaries:            budgets.Summaries,
	}
	// A persistent store is single-program (its manifest pins the program
	// name), so a shared cache root gets one subdirectory per app.
	if budgets.CacheDir != "" {
		cfg.CacheDir = filepath.Join(budgets.CacheDir, app.Name)
	}
	rep, err := core.RunContext(ctx, app.Program(), corpus, cfg)
	if rep != nil {
		rep.MonTime = monTime
	}
	return rep, err
}

// TableModule runs every app at the given sampling rate — Table II with
// rate=1.0, Table III with rate=0.3.
func TableModule(ctx context.Context, rate float64, seed int64, budgets Budgets) ([]ModuleRow, error) {
	var rows []ModuleRow
	for _, app := range apps.All() {
		if err := ctx.Err(); err != nil {
			return rows, err
		}
		rep, err := RunPipeline(ctx, app, rate, seed, budgets)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", app.Name, err)
		}
		rows = append(rows, ModuleRow{
			Program:    app.Name,
			Detours:    rep.Detours(),
			StatTime:   rep.StatTime,
			SymTime:    rep.SymTime,
			Found:      rep.Found(),
			Candidates: len(rep.PathRes.Candidates),
			LogBytes:   rep.LogBytes,
		})
	}
	return rows, nil
}

// FormatTableModule renders Table II/III.
func FormatTableModule(title string, rows []ModuleRow) string {
	var sb strings.Builder
	sb.WriteString(title + "\n")
	fmt.Fprintf(&sb, "%-10s %8s %14s %14s %7s %9s\n",
		"Benchmark", "detours", "stat-time", "symex-time", "found", "log-KB")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %8d %14s %14s %7v %9d\n",
			r.Program, r.Detours, r.StatTime.Round(time.Millisecond),
			r.SymTime.Round(time.Millisecond), r.Found, r.LogBytes/1024)
	}
	return sb.String()
}

// --- Table IV (guided vs pure) ---

// Table4Row compares StatSym against pure symbolic execution for one app.
type Table4Row struct {
	Program string

	GuidedPaths int
	GuidedTime  time.Duration
	GuidedFound bool

	PurePaths  int
	PureTime   time.Duration
	PureFound  bool
	PureFailed bool // state/step/time budget exhausted without a find
}

// Table4 runs the comparison at 30% sampling (the paper's setting).
func Table4(ctx context.Context, seed int64, budgets Budgets) ([]Table4Row, error) {
	var rows []Table4Row
	for _, app := range apps.All() {
		if err := ctx.Err(); err != nil {
			return rows, err
		}
		rep, err := RunPipeline(ctx, app, 0.3, seed, budgets)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", app.Name, err)
		}
		row := Table4Row{
			Program:     app.Name,
			GuidedPaths: rep.TotalPaths,
			GuidedTime:  rep.StatTime + rep.SymTime,
			GuidedFound: rep.Found(),
		}
		pure := core.RunPureContext(ctx, app.Program(), app.Spec,
			budgets.PureMaxStates, budgets.PureMaxSteps, budgets.PureTimeout)
		row.PurePaths = pure.Paths
		row.PureTime = pure.Elapsed
		row.PureFound = pure.Found()
		row.PureFailed = !pure.Found() && (pure.Exhausted || pure.StepLimited || pure.TimedOut)
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable4 renders Table IV.
func FormatTable4(rows []Table4Row) string {
	var sb strings.Builder
	sb.WriteString("TABLE IV: StatSym vs pure symbolic execution (30% sampling)\n")
	fmt.Fprintf(&sb, "%-10s | %12s %12s | %12s %12s\n",
		"Benchmark", "SS #paths", "SS time", "pure #paths", "pure time")
	for _, r := range rows {
		ssTime := r.GuidedTime.Round(time.Millisecond).String()
		if !r.GuidedFound {
			ssTime = "NOT FOUND"
		}
		pureTime := r.PureTime.Round(time.Millisecond).String()
		if r.PureFailed {
			pureTime = "Failed"
		} else if !r.PureFound {
			pureTime = "no vuln"
		}
		fmt.Fprintf(&sb, "%-10s | %12d %12s | %12d %12s\n",
			r.Program, r.GuidedPaths, ssTime, r.PurePaths, pureTime)
	}
	return sb.String()
}

// --- Table V (top predicates, polymorph) ---

// Table5 returns the top-k ranked predicates for an app at 30% sampling.
func Table5(ctx context.Context, appName string, k int, seed int64) ([]string, error) {
	app, err := apps.Get(appName)
	if err != nil {
		return nil, err
	}
	rep, err := RunPipeline(ctx, app, 0.3, seed, DefaultBudgets())
	if err != nil {
		return nil, err
	}
	var out []string
	for i, p := range rep.Analysis.Top(k) {
		out = append(out, fmt.Sprintf("P%-2d %-50s @ %-32s score %.3f",
			i+1, p.String(), p.Loc, p.Score))
	}
	return out, nil
}

// --- Figure 7 (candidate path lengths) ---

// Fig7Row summarizes an app's candidate-path lengths.
type Fig7Row struct {
	Program  string
	NumPaths int
	MinLen   int
	AvgLen   float64
	MaxLen   int
}

// Figure7 computes candidate path length statistics at 30% sampling.
func Figure7(ctx context.Context, seed int64) ([]Fig7Row, error) {
	var rows []Fig7Row
	for _, app := range apps.All() {
		if err := ctx.Err(); err != nil {
			return rows, err
		}
		rep, err := RunPipeline(ctx, app, 0.3, seed, DefaultBudgets())
		if err != nil {
			return nil, fmt.Errorf("%s: %w", app.Name, err)
		}
		row := Fig7Row{Program: app.Name, NumPaths: len(rep.PathRes.Candidates)}
		total := 0
		for i, cand := range rep.PathRes.Candidates {
			n := cand.Len()
			total += n
			if i == 0 || n < row.MinLen {
				row.MinLen = n
			}
			if n > row.MaxLen {
				row.MaxLen = n
			}
		}
		if row.NumPaths > 0 {
			row.AvgLen = float64(total) / float64(row.NumPaths)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatFigure7 renders Fig. 7 as a table.
func FormatFigure7(rows []Fig7Row) string {
	var sb strings.Builder
	sb.WriteString("FIGURE 7: Candidate path lengths (30% sampling)\n")
	fmt.Fprintf(&sb, "%-10s %7s %7s %8s %7s\n", "Program", "#paths", "min", "avg", "max")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %7d %7d %8.1f %7d\n",
			r.Program, r.NumPaths, r.MinLen, r.AvgLen, r.MaxLen)
	}
	return sb.String()
}

// --- Figure 8 (instrumented locations and variables, polymorph) ---

// Figure8 lists an app's instrumentation locations and observable
// variables.
func Figure8(appName string) ([]string, []string, error) {
	app, err := apps.Get(appName)
	if err != nil {
		return nil, nil, err
	}
	prog := app.Program()
	var locs, vars []string
	seen := map[string]bool{}
	for _, fn := range prog.Funcs {
		if fn.Name == "$init" {
			continue
		}
		locs = append(locs,
			trace.Location{Func: fn.Name, Kind: trace.EventEnter}.String(),
			trace.Location{Func: fn.Name, Kind: trace.EventLeave}.String())
		for _, p := range fn.ParamNames {
			key := "FUNCPARAM " + p
			if !seen[key] {
				seen[key] = true
				vars = append(vars, key)
			}
		}
	}
	for _, g := range prog.Globals {
		vars = append(vars, "GLOBAL "+g.Name)
	}
	return locs, vars, nil
}

// --- Figure 9 (candidate paths, polymorph) ---

// Figure9 renders an app's ranked candidate paths at 30% sampling.
func Figure9(ctx context.Context, appName string, seed int64) ([]string, error) {
	app, err := apps.Get(appName)
	if err != nil {
		return nil, err
	}
	rep, err := RunPipeline(ctx, app, 0.3, seed, DefaultBudgets())
	if err != nil {
		return nil, err
	}
	var out []string
	for i, cand := range rep.PathRes.Candidates {
		out = append(out, fmt.Sprintf("candidate %d (avg score %.3f, %d detours): %s",
			i+1, cand.AvgScore, cand.Detours, cand.String()))
	}
	return out, nil
}

// --- Figure 10 (sensitivity to sampling rate) ---

// Fig10Row is one (app, rate) measurement.
type Fig10Row struct {
	Program  string
	Rate     float64
	StatTime time.Duration
	SymTime  time.Duration
	Found    bool
	Detours  int
	LogBytes int
}

// Figure10 sweeps sampling rates for the given apps (the paper uses
// polymorph and CTree, 20%–100%).
func Figure10(ctx context.Context, appNames []string, rates []float64, seed int64) ([]Fig10Row, error) {
	if len(rates) == 0 {
		rates = []float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	}
	var rows []Fig10Row
	for _, name := range appNames {
		app, err := apps.Get(name)
		if err != nil {
			return nil, err
		}
		for _, rate := range rates {
			if err := ctx.Err(); err != nil {
				return rows, err
			}
			rep, err := RunPipeline(ctx, app, rate, seed, DefaultBudgets())
			if err != nil {
				return nil, fmt.Errorf("%s@%.0f%%: %w", name, rate*100, err)
			}
			rows = append(rows, Fig10Row{
				Program:  name,
				Rate:     rate,
				StatTime: rep.StatTime,
				SymTime:  rep.SymTime,
				Found:    rep.Found(),
				Detours:  rep.Detours(),
				LogBytes: rep.LogBytes,
			})
		}
	}
	return rows, nil
}

// FormatFigure10 renders the sensitivity sweep.
func FormatFigure10(rows []Fig10Row) string {
	var sb strings.Builder
	sb.WriteString("FIGURE 10: Sensitivity to sampling rate\n")
	fmt.Fprintf(&sb, "%-10s %6s %14s %14s %8s %7s %9s\n",
		"Program", "rate", "stat-time", "symex-time", "detours", "found", "log-KB")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %5.0f%% %14s %14s %8d %7v %9d\n",
			r.Program, r.Rate*100, r.StatTime.Round(time.Microsecond),
			r.SymTime.Round(time.Microsecond), r.Detours, r.Found, r.LogBytes/1024)
	}
	return sb.String()
}

// --- symexec helper reused by ablations ---

// pureWithScheduler runs unguided symbolic execution under a given
// scheduler.
func pureWithScheduler(ctx context.Context, app *apps.App, sched symexec.Scheduler, budgets Budgets) *symexec.Result {
	opts := symexec.DefaultOptions()
	opts.Sched = sched
	opts.MaxStates = budgets.PureMaxStates
	opts.MaxSteps = budgets.PureMaxSteps
	opts.Timeout = budgets.PureTimeout
	ex := symexec.New(app.Program(), app.Spec, opts)
	return ex.RunContext(ctx)
}
