package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"
)

// The run ledger is the benchmark suite's regression memory: every
// benchtab run can serialize its rows as a ledger file, and a later run
// handed that file via -baseline compares itself row by row and exits
// nonzero on regression. The reader also accepts the hand-written
// BENCH_pr*.json files earlier PRs checked in (any JSON object whose
// sections carry a "rows" array of row-shaped objects), so the existing
// history is usable as a baseline without conversion.

// LedgerSchema identifies ledger files written by WriteLedger.
const LedgerSchema = "statsym.ledger/v1"

// LedgerRow is one (program, config) outcome. The JSON field names match
// the rows of the legacy BENCH_pr*.json files, so both formats unmarshal
// into it directly.
type LedgerRow struct {
	Program string  `json:"program"`
	Config  string  `json:"config"`
	Found   bool    `json:"found"`
	Paths   int     `json:"paths"`
	Steps   int64   `json:"steps"`
	SymMS   float64 `json:"sym_ms"`
	Failed  bool    `json:"failed,omitempty"`

	SummaryCalls int64 `json:"summary_calls,omitempty"`
	CacheHits    int64 `json:"cache_hits,omitempty"`
	Mined        int64 `json:"mined,omitempty"`

	// Persistent solver-cache columns (solvercache ablation rows only).
	PersistLoaded  int64  `json:"persist_loaded,omitempty"`
	PersistHits    int64  `json:"persist_hits,omitempty"`
	PersistSpilled int64  `json:"persist_spilled,omitempty"`
	PersistRejects int64  `json:"persist_rejects,omitempty"`
	Digest         string `json:"digest,omitempty"`
}

// Key identifies the row for baseline matching.
func (r LedgerRow) Key() string { return r.Program + "|" + r.Config }

// Ledger is the on-disk run record.
type Ledger struct {
	Schema string      `json:"schema"`
	Title  string      `json:"title,omitempty"`
	Date   string      `json:"date,omitempty"`
	Seed   int64       `json:"seed,omitempty"`
	Rows   []LedgerRow `json:"rows"`
}

// LedgerFromRows converts ablation rows into ledger rows.
func LedgerFromRows(rows []AblationRow) []LedgerRow {
	out := make([]LedgerRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, LedgerRow{
			Program:        r.Program,
			Config:         r.Config,
			Found:          r.Found,
			Paths:          r.Paths,
			Steps:          r.Steps,
			SymMS:          float64(r.Elapsed) / float64(time.Millisecond),
			Failed:         r.Failed,
			SummaryCalls:   int64(r.SummaryCalls),
			CacheHits:      r.SummaryHits,
			Mined:          r.SummaryMined,
			PersistLoaded:  r.PersistLoaded,
			PersistHits:    r.PersistHits,
			PersistSpilled: r.PersistSpilled,
			PersistRejects: r.PersistRejects,
			Digest:         r.Digest,
		})
	}
	return out
}

// WriteLedger serializes the ledger to path (indented JSON).
func WriteLedger(path string, l Ledger) error {
	l.Schema = LedgerSchema
	blob, err := json.MarshalIndent(l, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// ReadBaseline loads baseline rows from path. Two formats are accepted:
// a ledger written by WriteLedger (top-level "rows"), or a legacy
// BENCH_pr*.json — a JSON object scanned for sections that are objects
// holding a "rows" array; every such array contributes. Rows missing a
// program or config are dropped (prose sections don't row-shape).
func ReadBaseline(path string) ([]LedgerRow, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(blob, &top); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	var rows []LedgerRow
	take := func(raw json.RawMessage) {
		var rs []LedgerRow
		if err := json.Unmarshal(raw, &rs); err != nil {
			return
		}
		for _, r := range rs {
			if r.Program != "" && r.Config != "" {
				rows = append(rows, r)
			}
		}
	}
	if raw, ok := top["rows"]; ok {
		take(raw)
	}
	// Legacy sections: {"summaries_ablation": {"note": ..., "rows": [...]}}.
	keys := make([]string, 0, len(top))
	for k := range top {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if k == "rows" {
			continue
		}
		var section struct {
			Rows json.RawMessage `json:"rows"`
		}
		if err := json.Unmarshal(top[k], &section); err != nil || section.Rows == nil {
			continue
		}
		take(section.Rows)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("baseline %s: no benchmark rows found", path)
	}
	return rows, nil
}

// ablationFor maps a row's config string to the ablation that produces
// it, so a -baseline run knows which experiments to re-run.
func ablationFor(config string) string {
	switch {
	case strings.HasPrefix(config, "dispatch/"):
		return "dispatch"
	case strings.Contains(config, "workers="):
		return "frontier"
	case strings.HasPrefix(config, "pure/"), config == "statsym":
		return "scheduler"
	case strings.HasPrefix(config, "guided/"):
		return "guidance"
	case strings.HasPrefix(config, "tau="):
		return "tau"
	case strings.HasPrefix(config, "solver-cache="):
		return "cache"
	case strings.HasPrefix(config, "solvercache="):
		return "solvercache"
	case strings.HasPrefix(config, "calls="):
		return "summaries"
	default:
		return ""
	}
}

// AblationsNeeded returns the sorted set of ablation names required to
// reproduce the baseline's rows. Rows whose config maps to no known
// ablation are skipped during comparison instead of failing it.
func AblationsNeeded(rows []LedgerRow) []string {
	set := map[string]bool{}
	for _, r := range rows {
		if a := ablationFor(r.Config); a != "" {
			set[a] = true
		}
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Tolerances gate the per-metric regression thresholds. Comparisons are
// one-sided: only a worse current value is a regression.
type Tolerances struct {
	// StepsPct allows the current step count to exceed the baseline by
	// this fraction (0.10 = +10%) before flagging. Steps are deterministic
	// for a fixed seed, so the default headroom only absorbs intentional
	// small shifts; a real search-order regression blows well past it.
	StepsPct float64
	// TimeRatio, when > 0, flags current sym_ms above baseline*TimeRatio.
	// Off by default: wall clock jitters 10-20% run to run and CI machines
	// differ from the machine that wrote the baseline.
	TimeRatio float64
}

// DefaultTolerances is the comparator's standard gate.
func DefaultTolerances() Tolerances { return Tolerances{StepsPct: 0.10} }

// Regression is one failed row comparison.
type Regression struct {
	Key    string // program|config
	Metric string // "found", "failed", "steps", "sym_ms", "missing"
	Detail string
}

// CompareLedger checks current rows against the baseline under the
// tolerances. Every baseline row whose config maps to a known ablation
// must be present and no worse; current-only rows are ignored (new
// configurations are not regressions).
func CompareLedger(baseline, current []LedgerRow, tol Tolerances) []Regression {
	cur := make(map[string]LedgerRow, len(current))
	for _, r := range current {
		cur[r.Key()] = r
	}
	var regs []Regression
	for _, b := range baseline {
		if ablationFor(b.Config) == "" {
			continue
		}
		c, ok := cur[b.Key()]
		if !ok {
			regs = append(regs, Regression{Key: b.Key(), Metric: "missing",
				Detail: "row present in baseline but not produced by this run"})
			continue
		}
		if b.Found && !c.Found {
			regs = append(regs, Regression{Key: b.Key(), Metric: "found",
				Detail: "baseline found the vulnerability, this run did not"})
		}
		if !b.Failed && c.Failed {
			regs = append(regs, Regression{Key: b.Key(), Metric: "failed",
				Detail: "run now fails (resource exhaustion) where the baseline completed"})
		}
		if limit := float64(b.Steps) * (1 + tol.StepsPct); b.Steps > 0 && float64(c.Steps) > limit {
			regs = append(regs, Regression{Key: b.Key(), Metric: "steps",
				Detail: fmt.Sprintf("steps %d exceeds baseline %d by more than %.0f%%",
					c.Steps, b.Steps, tol.StepsPct*100)})
		}
		if b.Digest != "" && c.Digest != "" && b.Digest != c.Digest {
			regs = append(regs, Regression{Key: b.Key(), Metric: "digest",
				Detail: fmt.Sprintf("detection digest %s diverged from baseline %s", c.Digest, b.Digest)})
		}
		if tol.TimeRatio > 0 && b.SymMS > 0 && c.SymMS > b.SymMS*tol.TimeRatio {
			regs = append(regs, Regression{Key: b.Key(), Metric: "sym_ms",
				Detail: fmt.Sprintf("sym time %.1fms exceeds baseline %.1fms × %.2f",
					c.SymMS, b.SymMS, tol.TimeRatio)})
		}
	}
	return regs
}

// FormatComparison renders the comparison outcome for the CLI.
func FormatComparison(baseline string, nBase, nCur int, regs []Regression) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "REGRESSION GATE: %d baseline rows (%s) vs %d current rows\n", nBase, baseline, nCur)
	if len(regs) == 0 {
		sb.WriteString("  no regressions\n")
		return sb.String()
	}
	for _, r := range regs {
		fmt.Fprintf(&sb, "  REGRESSION %-28s %-8s %s\n", r.Key, r.Metric, r.Detail)
	}
	fmt.Fprintf(&sb, "  %d regression(s)\n", len(regs))
	return sb.String()
}
