package bench

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/corpus"
	"repro/internal/pathid"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// CorpusRow is one storage backend's ingest/scan/analysis outcome on one
// app's corpus.
type CorpusRow struct {
	Program  string
	Backend  string // "json" or "store"
	Runs     int
	Bytes    int64         // persisted size on disk
	Ingest   time.Duration // wall time to persist the corpus
	Scan     time.Duration // wall time to re-read every run
	Analysis time.Duration // wall time of the statistical front-end
	Preds    int           // predicates produced (must match across backends)
}

// IngestMBs is the persist throughput in MB/s over the on-disk size.
func (r CorpusRow) IngestMBs() float64 { return mbs(r.Bytes, r.Ingest) }

// ScanMBs is the full-read throughput in MB/s over the on-disk size.
func (r CorpusRow) ScanMBs() float64 { return mbs(r.Bytes, r.Scan) }

func mbs(bytes int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / (1 << 20) / d.Seconds()
}

// FormatCorpusAblation renders the storage-backend comparison.
func FormatCorpusAblation(title string, rows []CorpusRow) string {
	var sb strings.Builder
	sb.WriteString(title + "\n")
	fmt.Fprintf(&sb, "%-10s %-6s %6s %10s %9s %9s %10s %6s\n",
		"Program", "store", "runs", "bytes", "ingest", "scan", "analysis", "preds")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %-6s %6d %10d %7.1f/s %7.1f/s %10s %6d\n",
			r.Program, r.Backend, r.Runs, r.Bytes,
			r.IngestMBs(), r.ScanMBs(), r.Analysis.Round(time.Millisecond), r.Preds)
	}
	return sb.String()
}

// AblationCorpusStore compares the legacy one-blob JSON corpus against the
// segmented binary store on every app: persist the same corpus both ways,
// re-read it in full, and run the statistical front-end (in-memory Analyze
// over the JSON corpus, streaming AnalyzeStream plus the transition counter
// over the store). The predicate counts must agree — the differential tests
// in internal/corpus pin byte-identity; this ablation prices the two paths.
// dir, when non-empty, is where the artifacts are written (one JSON blob
// and one store subdirectory per app, recreated each run and left behind
// for inspection); otherwise a temp directory is used and discarded.
func AblationCorpusStore(ctx context.Context, dir string, seed int64) ([]CorpusRow, error) {
	tmp := dir
	if tmp == "" {
		var err error
		tmp, err = os.MkdirTemp("", "bench-corpus-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
	}
	var rows []CorpusRow
	for _, app := range apps.All() {
		if err := ctx.Err(); err != nil {
			return rows, err
		}
		c, err := workload.BuildCorpus(app, workload.Options{SampleRate: 0.3, Seed: seed})
		if err != nil {
			return nil, err
		}

		// Backend 1: one gzipped JSON blob, read back whole, analyzed in
		// memory (the pre-store pipeline).
		blob := filepath.Join(tmp, app.Name+".log.gz")
		start := time.Now()
		n, err := c.WriteFile(blob)
		if err != nil {
			return nil, err
		}
		ingest := time.Since(start)
		start = time.Now()
		rc, err := trace.ReadFile(blob)
		if err != nil {
			return nil, err
		}
		scan := time.Since(start)
		start = time.Now()
		a := stats.Analyze(rc)
		pathid.BuildGraph(rc, pathid.Config{})
		rows = append(rows, CorpusRow{
			Program: app.Name, Backend: "json", Runs: len(rc.Runs), Bytes: int64(n),
			Ingest: ingest, Scan: scan, Analysis: time.Since(start), Preds: len(a.Predicates),
		})

		// Backend 2: segmented binary store, scanned block by block,
		// analyzed by the streaming front-end.
		sdir := filepath.Join(tmp, app.Name+".store")
		if err := os.RemoveAll(sdir); err != nil {
			return nil, err
		}
		s, err := corpus.Create(sdir, app.Name)
		if err != nil {
			return nil, err
		}
		start = time.Now()
		w := s.NewWriter(corpus.Options{})
		for i := range c.Runs {
			if err := w.Append(&c.Runs[i]); err != nil {
				return nil, err
			}
		}
		if err := w.Close(); err != nil {
			return nil, err
		}
		ingest = time.Since(start)
		start = time.Now()
		it := s.Iter()
		runs := 0
		for {
			if _, err := it.Next(); err != nil {
				if err == io.EOF {
					break
				}
				return nil, err
			}
			runs++
		}
		it.Close()
		scan = time.Since(start)
		start = time.Now()
		sa, err := stats.AnalyzeStream(ctx, s.Iter(), stats.StreamOpts{})
		if err != nil {
			return nil, err
		}
		if _, err := pathid.BuildGraphStream(s.Iter(), pathid.Config{}); err != nil {
			return nil, err
		}
		rows = append(rows, CorpusRow{
			Program: app.Name, Backend: "store", Runs: runs, Bytes: s.TotalBytes(),
			Ingest: ingest, Scan: scan, Analysis: time.Since(start), Preds: len(sa.Predicates),
		})
	}
	return rows, nil
}
