package bench

import (
	"context"
	"strings"
	"testing"
	"time"
)

// smallBudgets keeps unit tests fast while preserving outcome shapes.
func smallBudgets() Budgets {
	return Budgets{
		PureMaxStates:  5_000,
		PureMaxSteps:   2_000_000,
		PureTimeout:    20 * time.Second,
		GuidedMaxSteps: 10_000_000,
		GuidedTimeout:  20 * time.Second,
	}
}

func TestTable1Shape(t *testing.T) {
	rows := Table1()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	names := []string{"polymorph", "ctree", "thttpd", "grep"}
	for i, r := range rows {
		if r.Program != names[i] {
			t.Errorf("row %d = %s, want %s", i, r.Program, names[i])
		}
		if r.Stats.SLOC == 0 || r.Stats.ExternalCalls == 0 {
			t.Errorf("%s: zero stats %+v", r.Program, r.Stats)
		}
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "TABLE I") || !strings.Contains(out, "polymorph") {
		t.Errorf("format output:\n%s", out)
	}
}

func TestTableModuleAllFound(t *testing.T) {
	rows, err := TableModule(context.Background(), 0.3, DefaultSeed, smallBudgets())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.Found {
			t.Errorf("%s: not found at 30%%", r.Program)
		}
		if r.StatTime <= 0 {
			t.Errorf("%s: stat time not measured", r.Program)
		}
	}
	out := FormatTableModule("TABLE III", rows)
	if !strings.Contains(out, "grep") {
		t.Errorf("format output:\n%s", out)
	}
}

func TestTable4Shape(t *testing.T) {
	rows, err := Table4(context.Background(), DefaultSeed, smallBudgets())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.GuidedFound {
			t.Errorf("%s: StatSym failed", r.Program)
		}
		switch r.Program {
		case "polymorph":
			if !r.PureFound {
				t.Errorf("polymorph: pure baseline should succeed")
			}
			if r.PurePaths <= r.GuidedPaths {
				t.Errorf("polymorph: pure %d paths vs guided %d — no reduction",
					r.PurePaths, r.GuidedPaths)
			}
		default:
			if r.PureFound {
				t.Errorf("%s: pure baseline unexpectedly succeeded", r.Program)
			}
			if !r.PureFailed {
				t.Errorf("%s: pure baseline neither found nor failed", r.Program)
			}
		}
	}
	out := FormatTable4(rows)
	if !strings.Contains(out, "Failed") {
		t.Errorf("Table IV output lacks a Failed row:\n%s", out)
	}
}

func TestTable5Predicates(t *testing.T) {
	lines, err := Table5(context.Background(), "polymorph", 10, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 10 {
		t.Fatalf("lines = %d", len(lines))
	}
	// The top predicate must be a string-length predicate (the paper's
	// P1-P6 pattern).
	if !strings.Contains(lines[0], "len(") {
		t.Errorf("top predicate is not length-based: %s", lines[0])
	}
}

func TestFigure7Shape(t *testing.T) {
	rows, err := Figure7(context.Background(), DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.NumPaths == 0 {
			t.Errorf("%s: no candidate paths", r.Program)
		}
		if r.MinLen > r.MaxLen || r.AvgLen < float64(r.MinLen) || r.AvgLen > float64(r.MaxLen) {
			t.Errorf("%s: inconsistent lengths %+v", r.Program, r)
		}
	}
	out := FormatFigure7(rows)
	if !strings.Contains(out, "FIGURE 7") {
		t.Error("format header missing")
	}
}

func TestFigure8Polymorph(t *testing.T) {
	locs, vars, err := Figure8("polymorph")
	if err != nil {
		t.Fatal(err)
	}
	// 7 functions x enter+exit = 14 locations.
	if len(locs) != 14 {
		t.Errorf("locations = %d, want 14: %v", len(locs), locs)
	}
	joined := strings.Join(vars, ",")
	for _, want := range []string{"GLOBAL target", "GLOBAL track", "FUNCPARAM original", "FUNCPARAM suspect"} {
		if !strings.Contains(joined, want) {
			t.Errorf("variables missing %q: %v", want, vars)
		}
	}
}

func TestFigure9Polymorph(t *testing.T) {
	lines, err := Figure9(context.Background(), "polymorph", DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Fatal("no candidates")
	}
	if !strings.Contains(lines[0], "convert_fileName():enter") {
		t.Errorf("first candidate misses the fault site: %s", lines[0])
	}
}

func TestFigure10Shape(t *testing.T) {
	rows, err := Figure10(context.Background(), []string{"polymorph"}, []float64{0.2, 1.0}, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.Found {
			t.Errorf("not found at %.0f%%", r.Rate*100)
		}
	}
	// Higher sampling => larger logs (the Fig. 10 driver).
	if rows[1].LogBytes <= rows[0].LogBytes {
		t.Errorf("log size did not grow with sampling: %d vs %d",
			rows[0].LogBytes, rows[1].LogBytes)
	}
	out := FormatFigure10(rows)
	if !strings.Contains(out, "FIGURE 10") {
		t.Error("format header missing")
	}
}

func TestAblationGuidanceShape(t *testing.T) {
	rows, err := AblationGuidance(context.Background(), DefaultSeed, smallBudgets())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 { // 4 apps x 4 configs
		t.Fatalf("rows = %d, want 16", len(rows))
	}
	for _, r := range rows {
		// Configurations with predicate gating must always find the
		// vulnerable path. Without predicates (inter-only / neither),
		// thttpd's defang chase has no length bound to prune with and may
		// exhaust its budget — the honest degradation toward pure
		// symbolic execution.
		hasPredicates := r.Config == "guided/full" || r.Config == "guided/intra-only"
		if hasPredicates && !r.Found {
			t.Errorf("%s/%s: not found", r.Program, r.Config)
		}
		if !r.Found && r.Program != "thttpd" {
			t.Errorf("%s/%s: not found (only thttpd may fail without predicates)",
				r.Program, r.Config)
		}
	}
	out := FormatAblation("ABLATION", rows)
	if !strings.Contains(out, "guided/inter-only") {
		t.Error("ablation output malformed")
	}
}

func TestAblationTauShape(t *testing.T) {
	rows, err := AblationTau(context.Background(), "polymorph", []int{1, 10}, DefaultSeed, smallBudgets())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
}
