package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/obs"
)

// TestGracefulDrainOnSIGTERM is the drain satellite: a daemon with a
// running job, queued jobs, and a streaming corpus ingestion in flight
// receives a real SIGTERM. The drain must leave no ledger corruption,
// close the sockets, finish or interrupt the in-flight job, and a
// restarted daemon over the same data dir must recover the interrupted
// jobs and run them to completion.
func TestGracefulDrainOnSIGTERM(t *testing.T) {
	if testing.Short() {
		t.Skip("drain test runs real jobs; run without -short")
	}
	dataDir := t.TempDir()
	svc, ts := startService(t, Config{
		DataDir:    dataDir,
		Runners:    1, // one runner: everything behind the first job stays queued
		QueueSlots: 8,
	})

	// Wire the same signal handling statsymd's main uses, then raise a
	// real SIGTERM at ourselves once the load is in flight.
	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()

	// Job 1: big enough that its corpus collection alone outlasts the
	// test's signal latency (the drain interrupts it mid-collection).
	big := JobSpec{Tenant: "t1", App: "grep", Corpus: CorpusSpec{Runs: 4000, Rate: 0.3, Seed: 1}}
	resp, body := postJSON(t, ts.URL+"/v1/jobs", big)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit big: HTTP %d: %s", resp.StatusCode, body)
	}
	var bigSt Status
	json.Unmarshal(body, &bigSt)

	// Jobs 2 and 3: queued behind the single runner; both must come back
	// as interrupted and be recovered by the restart.
	small := JobSpec{Tenant: "t2", App: "polymorph", Corpus: CorpusSpec{Runs: 10, Rate: 0.3, Seed: 1}}
	var queuedIDs []string
	for i := 0; i < 2; i++ {
		resp, body = postJSON(t, ts.URL+"/v1/jobs", small)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit small %d: HTTP %d: %s", i, resp.StatusCode, body)
		}
		var st Status
		json.Unmarshal(body, &st)
		queuedIDs = append(queuedIDs, st.ID)
	}

	// Wait until the big job is actually running (the runner popped it).
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, body = getBody(t, ts.URL+"/v1/jobs/"+bigSt.ID)
		var st Status
		json.Unmarshal(body, &st)
		if st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("big job never started (state %s)", st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// A corpus ingestion stream is mid-flight when the signal lands: the
	// pipe stays open across the drain, trickling runs.
	pr, pw := io.Pipe()
	runs := buildWorkloadRuns(t, "polymorph", 10, 7)
	var ingestWG sync.WaitGroup
	ingestWG.Add(2)
	go func() {
		defer ingestWG.Done()
		defer pw.Close()
		enc := json.NewEncoder(pw)
		for _, run := range runs {
			if enc.Encode(run) != nil {
				return // pipe closed by the server side during drain
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	go func() {
		defer ingestWG.Done()
		resp, err := http.Post(ts.URL+"/v1/corpora/drainage/runs?program=polymorph", "application/x-ndjson", pr)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	time.Sleep(20 * time.Millisecond) // let the stream open and move

	// The real signal, exactly as a process manager would deliver it.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-sigCtx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("SIGTERM not delivered")
	}
	stop()

	// Drain with a short budget: the big job cannot finish, so it must be
	// interrupted, not left running.
	drainCtx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	if err := svc.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	ingestWG.Wait()
	ts.Close() // sockets closed

	// Every job is terminal: the big one interrupted (drain beat it), the
	// queued ones interrupted without ever running.
	for _, id := range append([]string{bigSt.ID}, queuedIDs...) {
		j := svc.job(id)
		if j == nil {
			t.Fatalf("job %s vanished", id)
		}
		if st := j.State(); st != StateInterrupted {
			t.Errorf("job %s ended %s, want interrupted", id, st)
		}
	}

	// No ledger corruption: the sealed ledger validates clean.
	ledgerPath := filepath.Join(dataDir, LedgerName)
	problems, summary, err := ValidateLedger(ledgerPath)
	if err != nil {
		t.Fatalf("ledger: %v", err)
	}
	if len(problems) != 0 {
		t.Fatalf("ledger problems after drain: %v\n(%s)", problems, summary)
	}

	// No corpus corruption: whatever the interrupted ingestion landed is
	// sealed and verifies clean.
	cdir := filepath.Join(dataDir, "corpora", "drainage")
	if corpus.IsShardedDir(cdir) {
		sh, err := corpus.OpenSharded(cdir)
		if err != nil {
			t.Fatal(err)
		}
		cproblems, _, err := sh.Verify()
		if err != nil {
			t.Fatal(err)
		}
		if len(cproblems) != 0 {
			t.Fatalf("corpus problems after drain: %v", cproblems)
		}
	}

	// Restart over the same data dir: all three interrupted jobs are
	// recovered, requeued, and — with a smaller spec for the big one not
	// possible (the spec is the spec) — run to completion.
	svc2, err := New(Config{DataDir: dataDir, Runners: 2, QueueSlots: 8})
	if err != nil {
		t.Fatal(err)
	}
	rec := svc2.Recovered()
	if len(rec) != 3 {
		t.Fatalf("restart recovered %d jobs, want 3", len(rec))
	}
	if err := svc2.Start(obs.New(nil)); err != nil {
		t.Fatal(err)
	}
	recDeadline := time.Now().Add(5 * time.Minute)
	for _, r := range rec {
		for {
			j := svc2.job(r.ID)
			if j == nil {
				t.Fatalf("recovered job %s not registered", r.ID)
			}
			if st := j.State(); st.Terminal() {
				if st != StateDone {
					j.mu.Lock()
					msg := j.err
					j.mu.Unlock()
					t.Errorf("recovered job %s ended %s (%s), want done", r.ID, st, msg)
				}
				break
			}
			if time.Now().After(recDeadline) {
				t.Fatalf("recovered job %s not terminal in time (state %s)", r.ID, svc2.job(r.ID).State())
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	if err := svc2.Drain(drainCtx2(t)); err != nil {
		t.Fatal(err)
	}
	// The post-recovery ledger still validates.
	problems, _, err = ValidateLedger(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("ledger problems after recovery run: %v", problems)
	}
}

func drainCtx2(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// TestDrainInterruptsQueuedIdle covers the queued-only drain path without
// signals: an idle service with queued jobs drains instantly, every job
// interrupted and recoverable.
func TestDrainInterruptsQueuedIdle(t *testing.T) {
	dataDir := t.TempDir()
	svc, ts := startIdleService(t, Config{DataDir: dataDir, QueueSlots: 4})
	spec := JobSpec{App: "polymorph", Corpus: CorpusSpec{Runs: 10, Rate: 0.3, Seed: 1}}
	for i := 0; i < 3; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/jobs", spec)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d: %s", i, resp.StatusCode, body)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	// Submissions after drain are refused.
	resp, body := postJSON(t, ts.URL+"/v1/jobs", spec)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit: HTTP %d (%s), want 503", resp.StatusCode, body)
	}
	rec, _, err := Recover(filepath.Join(dataDir, LedgerName))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec) != 3 {
		t.Fatalf("recovered %d jobs, want 3", len(rec))
	}
}

// TestRecoveryExceedingQueueCapacity covers a crash under full load: the
// ledger legally holds up to QueueSlots+Runners non-terminal jobs, more
// than the queue admits from the API. Recovery must requeue all of them
// (bypassing the 429 bound) rather than fail Start — which would re-mark
// the overflow interrupted and brick every subsequent restart.
func TestRecoveryExceedingQueueCapacity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real recovered jobs; run without -short")
	}
	dataDir := t.TempDir()
	ledgerPath := filepath.Join(dataDir, LedgerName)
	l, err := OpenLedger(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{App: "polymorph", Corpus: CorpusSpec{Runs: 10, Rate: 0.3, Seed: 1}}
	const jobs = 4 // > QueueSlots(1) + Runners(1) below
	var ids []string
	for i := 0; i < jobs; i++ {
		id := fmt.Sprintf("j-prev-%06d", i)
		if err := l.Append(LedgerRecord{Job: id, State: StateQueued, Spec: &spec}); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	svc, err := New(Config{DataDir: dataDir, QueueSlots: 1, Runners: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(svc.Recovered()); got != jobs {
		t.Fatalf("recovered %d jobs, want %d", got, jobs)
	}
	if err := svc.Start(obs.New(nil)); err != nil {
		t.Fatalf("start with %d recovered jobs and 1 queue slot: %v", jobs, err)
	}
	deadline := time.Now().Add(5 * time.Minute)
	for _, id := range ids {
		for {
			j := svc.job(id)
			if j == nil {
				t.Fatalf("recovered job %s not registered", id)
			}
			if st := j.State(); st.Terminal() {
				if st != StateDone {
					t.Errorf("recovered job %s ended %s, want done", id, st)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("recovered job %s not terminal in time (state %s)", id, svc.job(id).State())
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	if err := svc.Drain(drainCtx2(t)); err != nil {
		t.Fatal(err)
	}
	problems, _, err := ValidateLedger(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("ledger problems after over-capacity recovery: %v", problems)
	}
}
