package service

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/workload"
)

// differentialApps is the five-app surface the API-vs-CLI digest
// invariant is pinned on (the same list as the core dispatch tests).
var differentialApps = []string{"polymorph", "ctree", "thttpd", "grep", "msgtool"}

// referenceDigest runs the pipeline directly, exactly as the statsym CLI
// does for `-app X -rate 0.3 -seed 1`: same workload, same config
// defaults — the reference the daemon must reproduce byte-for-byte.
func referenceDigest(t *testing.T, appName string) string {
	t.Helper()
	app, err := apps.Get(appName)
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := workload.BuildCorpusCtx(context.Background(), app, workload.Options{
		SampleRate: 0.3, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.RunContext(context.Background(), app.Program(), corpus, core.Config{Spec: app.Spec})
	if err != nil {
		t.Fatal(err)
	}
	return core.DetectionDigest(rep)
}

// startServiceWorker serves real dispatch attempt units on a unix socket,
// the in-process stand-in for a `symexec -serve-worker` process.
func startServiceWorker(t *testing.T) string {
	t.Helper()
	addr := t.TempDir() + "/w.sock"
	l, err := dispatch.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	go dispatch.Serve(l, core.NewDispatchRunner(core.WorkerConfig{}))
	t.Cleanup(func() { l.Close() })
	return addr
}

// watchSSE subscribes to a job's event stream and reads frames until the
// server closes it (terminal state), counting data frames seen.
func watchSSE(t *testing.T, url string, frames *int, wg *sync.WaitGroup) {
	defer wg.Done()
	resp, err := http.Get(url)
	if err != nil {
		t.Errorf("sse: %v", err)
		return
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Errorf("sse content-type = %q", ct)
		return
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<22)
	n := 0
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "data:") {
			n++
		}
	}
	*frames = n
}

// TestAPIDifferential pins the tentpole contract: a job submitted over
// HTTP produces a DetectionDigest byte-identical to the direct pipeline
// call (what the CLI runs) on every evaluation app — including when the
// daemon schedules candidate verification onto dispatch workers — while
// concurrent SSE subscribers stream each job's progress.
func TestAPIDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep is minutes of work; run without -short")
	}
	workers := []string{startServiceWorker(t), startServiceWorker(t)}
	svc, ts := startService(t, Config{
		Runners:     2,
		QueueSlots:  16,
		WorkerAddrs: workers,
	})
	defer func() {
		if err := svc.Drain(drainCtx(t)); err != nil {
			t.Errorf("drain: %v", err)
		}
	}()

	for _, appName := range differentialApps {
		appName := appName
		t.Run(appName, func(t *testing.T) {
			want := referenceDigest(t, appName)

			for _, mode := range []struct {
				name     string
				dispatch bool
			}{
				{"api", false},
				{"api-dispatch", true},
			} {
				spec := JobSpec{
					Tenant:   "diff",
					App:      appName,
					Corpus:   CorpusSpec{Rate: 0.3, Seed: 1},
					Dispatch: mode.dispatch,
				}
				resp, body := postJSON(t, ts.URL+"/v1/jobs", spec)
				if resp.StatusCode != http.StatusAccepted {
					t.Fatalf("%s: submit: HTTP %d: %s", mode.name, resp.StatusCode, body)
				}
				var st Status
				if err := json.Unmarshal(body, &st); err != nil {
					t.Fatal(err)
				}

				// Concurrent SSE subscribers ride the job while it runs.
				var wg sync.WaitGroup
				frames := make([]int, 3)
				for i := range frames {
					wg.Add(1)
					go watchSSE(t, ts.URL+"/v1/jobs/"+st.ID+"/events?tick=50ms", &frames[i], &wg)
				}

				final := waitTerminal(t, ts.URL, st.ID, 5*time.Minute)
				wg.Wait()
				if final.State != StateDone {
					t.Fatalf("%s: job ended %s (%s), want done", mode.name, final.State, final.Error)
				}
				if final.Digest != want {
					t.Errorf("%s: digest diverged from direct pipeline:\n--- direct ---\n%s--- %s ---\n%s",
						mode.name, want, mode.name, final.Digest)
				}
				for i, n := range frames {
					if n == 0 {
						t.Errorf("%s: SSE subscriber %d saw no data frames", mode.name, i)
					}
				}

				// The report endpoint repeats the same digest.
				rresp, rbody := getBody(t, ts.URL+"/v1/jobs/"+st.ID+"/report")
				if rresp.StatusCode != http.StatusOK {
					t.Fatalf("%s: report: HTTP %d: %s", mode.name, rresp.StatusCode, rbody)
				}
				var view struct {
					DetectionDigest string `json:"detection_digest"`
				}
				if err := json.Unmarshal(rbody, &view); err != nil {
					t.Fatal(err)
				}
				if view.DetectionDigest != want {
					t.Errorf("%s: report digest diverged from direct pipeline", mode.name)
				}
			}
		})
	}
}
