package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// The job ledger is the daemon's durable memory: an append-only JSONL
// file where every line is {"crc":<crc32-IEEE of rec bytes>,"rec":{...}}
// — the same frame-and-checksum discipline as the corpus segment format,
// applied to job lifecycle records. The first record is a typed header;
// each subsequent record is one state transition. Appends fsync before
// returning, so an acknowledged transition survives a crash. On restart
// the daemon replays the ledger: jobs whose last state is non-terminal
// (queued/running) were interrupted by the crash and are requeued from
// the spec carried on their queued record.
const (
	LedgerType    = "statsymd.ledger"
	LedgerVersion = 1
	// LedgerName is the ledger's filename inside the daemon data dir.
	LedgerName = "jobs.ledger"
)

// ledgerHeader is the first record of every ledger file.
type ledgerHeader struct {
	Type    string `json:"type"`
	Version int    `json:"v"`
}

// LedgerRecord is one job lifecycle transition. Queued records carry the
// full spec (that is what recovery re-runs); done records carry the
// detection digest so a sealed ledger documents outcomes.
type LedgerRecord struct {
	Type    string   `json:"type,omitempty"` // header only
	Version int      `json:"v,omitempty"`    // header only
	Time    string   `json:"time,omitempty"`
	Job     string   `json:"job,omitempty"`
	State   State    `json:"state,omitempty"`
	Spec    *JobSpec `json:"spec,omitempty"`   // queued records
	Digest  string   `json:"digest,omitempty"` // done records
	Error   string   `json:"error,omitempty"`  // failed/interrupted records
}

// ledgerLine is the wire frame: the CRC covers the raw rec bytes exactly
// as they appear on the line, so a torn or bit-flipped record is caught
// without trusting JSON round-trip stability.
type ledgerLine struct {
	CRC uint32          `json:"crc"`
	Rec json.RawMessage `json:"rec"`
}

// Ledger is an open, appendable job ledger.
type Ledger struct {
	mu   sync.Mutex
	path string
	f    *os.File
	w    *bufio.Writer
}

// OpenLedger opens (creating if absent) the ledger at path and appends
// the header if the file is new.
func OpenLedger(path string) (*Ledger, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	l := &Ledger{path: path, f: f, w: bufio.NewWriter(f)}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() == 0 {
		if err := l.append(LedgerRecord{Type: LedgerType, Version: LedgerVersion}); err != nil {
			f.Close()
			return nil, err
		}
	} else {
		// A torn final record is tolerated on read, but appending after it
		// with O_APPEND would concatenate the next record onto the partial
		// line, merging both into one garbage line that is no longer the
		// tail — the restart after that one would refuse the ledger as
		// mid-file corruption. Truncate to the last fully-valid record
		// before the first append.
		_, _, validOff, rerr := readLedger(path)
		if rerr != nil {
			f.Close()
			return nil, rerr
		}
		if validOff < st.Size() {
			if terr := f.Truncate(validOff); terr != nil {
				f.Close()
				return nil, terr
			}
			if serr := f.Sync(); serr != nil {
				f.Close()
				return nil, serr
			}
		}
	}
	return l, nil
}

// Append durably records one transition (fsync before returning).
func (l *Ledger) Append(rec LedgerRecord) error {
	if rec.Time == "" {
		rec.Time = time.Now().UTC().Format(time.RFC3339Nano)
	}
	return l.append(rec)
}

func (l *Ledger) append(rec LedgerRecord) error {
	blob, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line, err := json.Marshal(ledgerLine{CRC: crc32.ChecksumIEEE(blob), Rec: blob})
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("service: ledger %s is closed", l.path)
	}
	if _, err := l.w.Write(append(line, '\n')); err != nil {
		return err
	}
	if err := l.w.Flush(); err != nil {
		return err
	}
	return l.f.Sync()
}

// Close flushes and closes the ledger file.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.w.Flush()
	if serr := l.f.Sync(); err == nil {
		err = serr
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// Seal compacts the ledger in place via temp+fsync+rename: terminal jobs
// keep only their final record (plus the spec off their queued record so
// a sealed ledger still replays), interrupted/queued jobs keep their full
// history for recovery. Called on graceful drain; a crash skips it and
// recovery reads the uncompacted file just as well.
func (l *Ledger) Seal() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f != nil {
		if err := l.w.Flush(); err != nil {
			return err
		}
		if err := l.f.Sync(); err != nil {
			return err
		}
	}
	recs, _, _, err := readLedger(l.path)
	if err != nil {
		return err
	}
	jobs := replayJobs(recs)
	var keep []LedgerRecord
	var ids []string
	for id := range jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		h := jobs[id]
		last := h[len(h)-1]
		if last.State.Terminal() && last.State != StateInterrupted {
			if last.Spec == nil {
				last.Spec = h[0].Spec
			}
			keep = append(keep, last)
			continue
		}
		keep = append(keep, h...)
	}
	tmp := l.path + ".tmp"
	tf, err := os.Create(tmp)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(tf)
	write := func(rec LedgerRecord) error {
		blob, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		line, err := json.Marshal(ledgerLine{CRC: crc32.ChecksumIEEE(blob), Rec: blob})
		if err != nil {
			return err
		}
		_, err = bw.Write(append(line, '\n'))
		return err
	}
	werr := write(LedgerRecord{Type: LedgerType, Version: LedgerVersion,
		Time: time.Now().UTC().Format(time.RFC3339Nano)})
	for _, rec := range keep {
		if werr != nil {
			break
		}
		werr = write(rec)
	}
	if werr == nil {
		werr = bw.Flush()
	}
	if werr == nil {
		werr = tf.Sync()
	}
	if cerr := tf.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return werr
	}
	// Swap the live file handle to the compacted ledger.
	if l.f != nil {
		l.f.Close()
	}
	if err := os.Rename(tmp, l.path); err != nil {
		return err
	}
	if dir, err := os.Open(filepath.Dir(l.path)); err == nil {
		dir.Sync()
		dir.Close()
	}
	f, err := os.OpenFile(l.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		l.f = nil
		return err
	}
	l.f = f
	l.w = bufio.NewWriter(f)
	return nil
}

// readLedger parses the ledger at path. A torn final line (crash mid
// -append) is tolerated and reported in problems; any earlier corruption
// is an error. The returned records exclude the header. validOff is the
// byte offset just past the last fully-written (newline-terminated) valid
// line: OpenLedger truncates the file to this offset before appending, so
// a post-crash append starts a fresh line instead of concatenating onto
// the torn tail.
func readLedger(path string) (recs []LedgerRecord, problems []string, validOff int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, 0, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	n := 0
	sawHeader := false
	for {
		raw, rerr := br.ReadBytes('\n')
		if rerr != nil && rerr != io.EOF {
			return nil, nil, 0, rerr
		}
		if len(raw) == 0 {
			break // clean EOF
		}
		n++
		if rerr == io.EOF {
			// No trailing newline: the append never finished this line, and
			// the fsync behind it never acknowledged — drop it even if the
			// bytes happen to parse.
			problems = append(problems, fmt.Sprintf("line %d: torn final record dropped (no newline)", n))
			break
		}
		line := bytes.TrimSuffix(raw, []byte("\n"))
		line = bytes.TrimSuffix(line, []byte("\r"))
		if len(line) == 0 {
			validOff += int64(len(raw))
			continue
		}
		var frame ledgerLine
		bad := ""
		if jerr := json.Unmarshal(line, &frame); jerr != nil {
			bad = fmt.Sprintf("bad ledger line: %v", jerr)
		} else if crc32.ChecksumIEEE(frame.Rec) != frame.CRC {
			bad = "CRC mismatch"
		}
		if bad != "" {
			// Only a torn tail is forgivable: peek whether more data follows.
			if _, perr := br.Peek(1); perr == nil {
				return nil, nil, 0, fmt.Errorf("%s:%d: %s", path, n, bad)
			}
			problems = append(problems, fmt.Sprintf("line %d: torn final record dropped (%s)", n, bad))
			break
		}
		var rec LedgerRecord
		if jerr := json.Unmarshal(frame.Rec, &rec); jerr != nil {
			return nil, nil, 0, fmt.Errorf("%s:%d: bad ledger record: %v", path, n, jerr)
		}
		validOff += int64(len(raw))
		if n == 1 {
			if rec.Type != LedgerType || rec.Version != LedgerVersion {
				return nil, nil, 0, fmt.Errorf("%s: not a %s v%d ledger (header type %q v%d)",
					path, LedgerType, LedgerVersion, rec.Type, rec.Version)
			}
			sawHeader = true
			continue
		}
		recs = append(recs, rec)
	}
	if n == 0 {
		return nil, nil, 0, io.ErrUnexpectedEOF
	}
	if !sawHeader {
		return nil, nil, 0, fmt.Errorf("%s: missing ledger header", path)
	}
	return recs, problems, validOff, nil
}

// replayJobs groups records by job ID in append order.
func replayJobs(recs []LedgerRecord) map[string][]LedgerRecord {
	jobs := map[string][]LedgerRecord{}
	for _, rec := range recs {
		if rec.Job == "" {
			continue
		}
		jobs[rec.Job] = append(jobs[rec.Job], rec)
	}
	return jobs
}

// RecoveredJob is one job a restarted daemon must requeue: its last
// persisted state was non-terminal (the previous process died with it
// queued or running), so recovery marks it interrupted and resubmits its
// spec.
type RecoveredJob struct {
	ID        string
	Spec      JobSpec
	LastState State
}

// Recover replays the ledger at path and returns the jobs to requeue.
// Missing file means a fresh data dir: no recovery, no error.
func Recover(path string) ([]RecoveredJob, []string, error) {
	if _, err := os.Stat(path); os.IsNotExist(err) {
		return nil, nil, nil
	}
	recs, problems, _, err := readLedger(path)
	if err != nil {
		return nil, nil, err
	}
	jobs := replayJobs(recs)
	var ids []string
	for id := range jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var out []RecoveredJob
	for _, id := range ids {
		h := jobs[id]
		last := h[len(h)-1].State
		if last.Terminal() && last != StateInterrupted {
			continue
		}
		var spec *JobSpec
		for _, rec := range h {
			if rec.Spec != nil {
				spec = rec.Spec
				break
			}
		}
		if spec == nil {
			problems = append(problems, fmt.Sprintf("job %s: non-terminal (%s) but no spec record; cannot recover", id, last))
			continue
		}
		out = append(out, RecoveredJob{ID: id, Spec: *spec, LastState: last})
	}
	return out, problems, nil
}

// ValidateLedger deep-checks a ledger file for tracecheck: frame and CRC
// discipline, known states, monotonic per-job transitions, specs present
// on queued records and valid, digests present on done records. The
// summary line is human-oriented; problems is empty for a healthy file.
func ValidateLedger(path string) (problems []string, summary string, err error) {
	recs, problems, _, err := readLedger(path)
	if err != nil {
		return nil, "", err
	}
	states := map[string]State{}
	var order []string
	terminal := 0
	for i, rec := range recs {
		where := fmt.Sprintf("record %d (job %s)", i+2, rec.Job)
		if rec.Job == "" {
			problems = append(problems, where+": missing job ID")
			continue
		}
		if !rec.State.Known() {
			problems = append(problems, fmt.Sprintf("%s: unknown state %q", where, rec.State))
			continue
		}
		prev, seen := states[rec.Job]
		if !seen {
			order = append(order, rec.Job)
		}
		// A sealed ledger compacts a terminal job to one summary record
		// carrying the spec; that is the only legal way to open a job's
		// history in a terminal state.
		sealed := prev == "" && rec.State.Terminal() && rec.State != StateInterrupted && rec.Spec != nil
		if !sealed && !TransitionOK(prev, rec.State) {
			problems = append(problems, fmt.Sprintf("%s: illegal transition %q -> %q", where, prev, rec.State))
		}
		if prev == "" {
			if rec.Spec == nil {
				problems = append(problems, where+": first record for job missing spec")
			} else if ps := rec.Spec.Problems(); len(ps) > 0 {
				for _, p := range ps {
					problems = append(problems, where+": spec: "+p)
				}
			}
		}
		if rec.State == StateDone && rec.Digest == "" {
			problems = append(problems, where+": done record missing digest")
		}
		if rec.Time != "" {
			if _, terr := time.Parse(time.RFC3339Nano, rec.Time); terr != nil {
				problems = append(problems, fmt.Sprintf("%s: bad timestamp %q", where, rec.Time))
			}
		}
		states[rec.Job] = rec.State
	}
	for _, id := range order {
		if s := states[id]; s.Terminal() {
			terminal++
		}
	}
	summary = fmt.Sprintf("job ledger — %d records, %d jobs (%d terminal), %d problems",
		len(recs), len(order), terminal, len(problems))
	return problems, summary, nil
}
