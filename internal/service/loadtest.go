package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/apps"
	"repro/internal/trace"
)

// LoadOptions sizes one load-test run against a live daemon.
type LoadOptions struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:7077".
	BaseURL string
	// Jobs is the total job count to submit (default 25).
	Jobs int
	// Tenants spreads submissions round-robin over this many synthetic
	// tenants (default 5) so the run exercises the fair scheduler.
	Tenants int
	// Concurrency is the submitting-client fan-out (default 8).
	Concurrency int
	// App is the analyzed program (default "polymorph", the fastest).
	App string
	// IngestStreams runs this many concurrent corpus-ingestion streams
	// alongside the job load (default 2; 0 disables).
	IngestStreams int
	// IngestRuns is the run count per ingestion stream (default 50).
	IngestRuns int
	// Timeout bounds the whole load test (default 5 minutes).
	Timeout time.Duration
	// Budgets applies to every submitted job (zero: small defaults tuned
	// for load testing, not analysis depth).
	Budgets Budgets
	// Seed varies the synthetic corpus payloads.
	Seed int64
}

func (o LoadOptions) withDefaults() LoadOptions {
	if o.Jobs <= 0 {
		o.Jobs = 25
	}
	if o.Tenants <= 0 {
		o.Tenants = 5
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 8
	}
	if o.App == "" {
		o.App = "polymorph"
	}
	if o.IngestStreams < 0 {
		o.IngestStreams = 0
	}
	if o.IngestRuns <= 0 {
		o.IngestRuns = 50
	}
	if o.Timeout <= 0 {
		o.Timeout = 5 * time.Minute
	}
	if o.Budgets == (Budgets{}) {
		o.Budgets = Budgets{MaxStates: 256, MaxSteps: 200000}
	}
	return o
}

// LoadReport summarizes one load-test run.
type LoadReport struct {
	Jobs        int   `json:"jobs"`
	Done        int   `json:"done"`
	Failed      int   `json:"failed"`
	Rejected429 int   `json:"rejected_429"` // transient rejections, retried
	WallMS      int64 `json:"wall_ms"`

	// SubmitP50/P99 are submission-call latencies; JobP50/P99 are
	// submit-to-terminal latencies (milliseconds).
	SubmitP50MS int64 `json:"submit_p50_ms"`
	SubmitP99MS int64 `json:"submit_p99_ms"`
	JobP50MS    int64 `json:"job_p50_ms"`
	JobP99MS    int64 `json:"job_p99_ms"`

	// JobsPerSec is terminal-job throughput over the wall clock.
	JobsPerSec float64 `json:"jobs_per_sec"`

	// PerTenant counts completed jobs per synthetic tenant — flat counts
	// demonstrate fairness under symmetric load.
	PerTenant map[string]int `json:"per_tenant"`

	// IngestedRuns totals runs streamed by the ingestion side-load.
	IngestedRuns int `json:"ingested_runs"`

	Errors []string `json:"errors,omitempty"`
}

// RunLoadTest drives a live daemon with Opts.Jobs concurrent submissions
// spread over synthetic tenants, polls every job to a terminal state, and
// optionally streams synthetic corpora in parallel. It fails (non-nil
// error) when any job ends failed/interrupted, when a submission cannot
// be placed before the timeout, or when the daemon misbehaves.
func RunLoadTest(opts LoadOptions) (*LoadReport, error) {
	opts = opts.withDefaults()
	base := strings.TrimRight(opts.BaseURL, "/")
	client := &http.Client{Timeout: 30 * time.Second}
	deadline := time.Now().Add(opts.Timeout)

	rep := &LoadReport{Jobs: opts.Jobs, PerTenant: map[string]int{}}
	var mu sync.Mutex
	addErr := func(format string, args ...any) {
		mu.Lock()
		rep.Errors = append(rep.Errors, fmt.Sprintf(format, args...))
		mu.Unlock()
	}

	start := time.Now()

	// Ingestion side-load: each stream pushes synthetic runs into its own
	// named corpus while the job load runs.
	var ingestWG sync.WaitGroup
	for i := 0; i < opts.IngestStreams; i++ {
		ingestWG.Add(1)
		go func(i int) {
			defer ingestWG.Done()
			n, err := ingestStream(client, base, opts, i)
			mu.Lock()
			rep.IngestedRuns += n
			mu.Unlock()
			if err != nil {
				addErr("ingest stream %d: %v", i, err)
			}
		}(i)
	}

	// Job load: Concurrency submitters draw job indices from a shared
	// feed, submit (retrying 429s with the daemon's Retry-After), then
	// poll to terminal.
	type result struct {
		tenant   string
		state    State
		submitMS int64
		jobMS    int64
	}
	feed := make(chan int)
	results := make(chan result, opts.Jobs)
	var wg sync.WaitGroup
	for w := 0; w < opts.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range feed {
				tenant := fmt.Sprintf("tenant-%02d", idx%opts.Tenants)
				spec := JobSpec{
					Tenant:  tenant,
					App:     opts.App,
					Corpus:  CorpusSpec{Runs: 10, Rate: 0.3, Seed: opts.Seed + int64(idx)},
					Budgets: opts.Budgets,
				}
				jobStart := time.Now()
				id, submitMS, rejects, err := submitJob(client, base, spec, deadline)
				mu.Lock()
				rep.Rejected429 += rejects
				mu.Unlock()
				if err != nil {
					addErr("job %d: %v", idx, err)
					results <- result{tenant: tenant, state: StateFailed}
					continue
				}
				st, err := pollJob(client, base, id, deadline)
				if err != nil {
					addErr("job %d (%s): %v", idx, id, err)
					results <- result{tenant: tenant, state: StateFailed}
					continue
				}
				results <- result{
					tenant:   tenant,
					state:    st,
					submitMS: submitMS,
					jobMS:    time.Since(jobStart).Milliseconds(),
				}
			}
		}()
	}
	for i := 0; i < opts.Jobs; i++ {
		feed <- i
	}
	close(feed)
	wg.Wait()
	close(results)
	ingestWG.Wait()

	var submitLat, jobLat []int64
	for res := range results {
		switch res.state {
		case StateDone:
			rep.Done++
			rep.PerTenant[res.tenant]++
			submitLat = append(submitLat, res.submitMS)
			jobLat = append(jobLat, res.jobMS)
		default:
			rep.Failed++
		}
	}
	rep.WallMS = time.Since(start).Milliseconds()
	rep.SubmitP50MS = percentile(submitLat, 0.50)
	rep.SubmitP99MS = percentile(submitLat, 0.99)
	rep.JobP50MS = percentile(jobLat, 0.50)
	rep.JobP99MS = percentile(jobLat, 0.99)
	if rep.WallMS > 0 {
		rep.JobsPerSec = float64(rep.Done) / (float64(rep.WallMS) / 1000)
	}
	if rep.Failed > 0 || len(rep.Errors) > 0 {
		return rep, fmt.Errorf("loadtest: %d/%d jobs failed (%d errors)", rep.Failed, rep.Jobs, len(rep.Errors))
	}
	return rep, nil
}

// submitJob POSTs the spec, retrying 429s until deadline. Returns the job
// ID, the (final, accepted) submission latency, and the 429 count.
func submitJob(client *http.Client, base string, spec JobSpec, deadline time.Time) (string, int64, int, error) {
	blob, err := json.Marshal(spec)
	if err != nil {
		return "", 0, 0, err
	}
	rejects := 0
	for {
		t0 := time.Now()
		resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader(blob))
		if err != nil {
			return "", 0, rejects, err
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			var st Status
			if err := json.Unmarshal(body, &st); err != nil {
				return "", 0, rejects, fmt.Errorf("bad submit response: %v", err)
			}
			return st.ID, time.Since(t0).Milliseconds(), rejects, nil
		case http.StatusTooManyRequests:
			rejects++
			if time.Now().After(deadline) {
				return "", 0, rejects, fmt.Errorf("queue full until deadline")
			}
			time.Sleep(retryAfter(resp.Header))
		default:
			return "", 0, rejects, fmt.Errorf("submit: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
		}
	}
}

// pollJob polls the status endpoint until the job is terminal.
func pollJob(client *http.Client, base, id string, deadline time.Time) (State, error) {
	for {
		if time.Now().After(deadline) {
			return "", fmt.Errorf("not terminal before deadline")
		}
		resp, err := client.Get(base + "/v1/jobs/" + id)
		if err != nil {
			return "", err
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("status: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
		}
		var st Status
		if err := json.Unmarshal(body, &st); err != nil {
			return "", err
		}
		if st.State.Terminal() {
			if st.State != StateDone {
				return st.State, fmt.Errorf("terminal state %s (%s)", st.State, st.Error)
			}
			return st.State, nil
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// ingestStream streams synthetic runs of the load-test app into a
// per-stream named corpus, exercising the sharded-writer path under
// concurrency. Returns the run count streamed.
func ingestStream(client *http.Client, base string, opts LoadOptions, i int) (int, error) {
	app, err := apps.Get(opts.App)
	if err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(opts.Seed + 7919*int64(i+1)))
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for n := 0; n < opts.IngestRuns; n++ {
		run := syntheticRun(app, rng, i, n)
		if err := enc.Encode(run); err != nil {
			return 0, err
		}
	}
	name := fmt.Sprintf("loadtest-%s-%02d", opts.App, i)
	url := fmt.Sprintf("%s/v1/corpora/%s/runs?program=%s", base, name, app.Name)
	resp, err := client.Post(url, "application/x-ndjson", &buf)
	if err != nil {
		return 0, err
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("ingest: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	var res IngestResult
	if err := json.Unmarshal(body, &res); err != nil {
		return 0, err
	}
	return res.Runs, nil
}

// syntheticRun fabricates a minimal labeled run for ingestion load (the
// loadtest measures the streaming path, not analysis quality).
func syntheticRun(app *apps.App, rng *rand.Rand, stream, n int) *trace.Run {
	_ = app.NewInput(rng) // keep the generator's stream position moving
	return &trace.Run{
		ID:     stream*100000 + n,
		Faulty: n%2 == 1,
	}
}

// percentile returns the q-quantile of latencies (0 for an empty set).
func percentile(v []int64, q float64) int64 {
	if len(v) == 0 {
		return 0
	}
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
	idx := int(q * float64(len(v)-1))
	return v[idx]
}

// FormatLoadReport renders the report for the terminal.
func FormatLoadReport(r *LoadReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "loadtest: %d jobs, %d done, %d failed, %d transient 429s in %.1fs (%.1f jobs/s)\n",
		r.Jobs, r.Done, r.Failed, r.Rejected429, float64(r.WallMS)/1000, r.JobsPerSec)
	fmt.Fprintf(&b, "  submit latency p50 %dms  p99 %dms\n", r.SubmitP50MS, r.SubmitP99MS)
	fmt.Fprintf(&b, "  job latency    p50 %dms  p99 %dms\n", r.JobP50MS, r.JobP99MS)
	if r.IngestedRuns > 0 {
		fmt.Fprintf(&b, "  ingested %d runs\n", r.IngestedRuns)
	}
	var tenants []string
	for t := range r.PerTenant {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	for _, t := range tenants {
		fmt.Fprintf(&b, "  %-12s %d done\n", t, r.PerTenant[t])
	}
	for _, e := range r.Errors {
		fmt.Fprintf(&b, "  error: %s\n", e)
	}
	return b.String()
}
