package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/workload"
)

// buildWorkloadRuns collects a real corpus for app exactly as the daemon's
// collect-on-demand path would (same rate/seed determinism), returning the
// runs for JSONL ingestion.
func buildWorkloadRuns(t *testing.T, appName string, runs int, seed int64) []trace.Run {
	t.Helper()
	app, err := apps.Get(appName)
	if err != nil {
		t.Fatal(err)
	}
	c, err := workload.BuildCorpusCtx(context.Background(), app, workload.Options{
		SampleRate: 0.3, Seed: seed, Correct: runs, Faulty: runs,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c.Runs
}

// ---------------------------------------------------------------------------
// Spec validation

func TestJobSpecValidation(t *testing.T) {
	good := JobSpec{App: "polymorph", Corpus: CorpusSpec{Runs: 10, Rate: 0.3, Seed: 1}}
	if ps := good.Problems(); len(ps) != 0 {
		t.Fatalf("valid spec rejected: %v", ps)
	}
	cases := []struct {
		name string
		mut  func(*JobSpec)
	}{
		{"unknown app", func(s *JobSpec) { s.App = "nonesuch" }},
		{"missing app", func(s *JobSpec) { s.App = "" }},
		{"bad kind", func(s *JobSpec) { s.Kind = "bogus/v9" }},
		{"bad tenant", func(s *JobSpec) { s.Tenant = "no spaces allowed" }},
		{"bad rate", func(s *JobSpec) { s.Corpus.Rate = 1.5 }},
		{"negative runs", func(s *JobSpec) { s.Corpus.Runs = -1 }},
		{"name+collection", func(s *JobSpec) { s.Corpus.Name = "c1" }},
		{"negative budget", func(s *JobSpec) { s.Budgets.MaxStates = -1 }},
		{"parallel too big", func(s *JobSpec) { s.Parallel = 1000 }},
		{"bad scope", func(s *JobSpec) { s.Scope = "all,-" }},
	}
	for _, tc := range cases {
		s := good
		tc.mut(&s)
		if ps := s.Problems(); len(ps) == 0 {
			t.Errorf("%s: expected a validation problem, got none", tc.name)
		}
	}
}

func TestTransitionTable(t *testing.T) {
	legal := [][2]State{
		{"", StateQueued},
		{StateQueued, StateRunning}, {StateQueued, StateCancelled}, {StateQueued, StateInterrupted},
		{StateRunning, StateDone}, {StateRunning, StateFailed},
		{StateRunning, StateCancelled}, {StateRunning, StateInterrupted},
		{StateInterrupted, StateQueued},
	}
	for _, e := range legal {
		if !TransitionOK(e[0], e[1]) {
			t.Errorf("transition %q -> %q should be legal", e[0], e[1])
		}
	}
	illegal := [][2]State{
		{"", StateRunning}, {"", StateDone},
		{StateQueued, StateDone}, {StateQueued, StateFailed},
		{StateDone, StateQueued}, {StateDone, StateRunning},
		{StateFailed, StateQueued}, {StateCancelled, StateQueued},
		{StateRunning, StateQueued},
	}
	for _, e := range illegal {
		if TransitionOK(e[0], e[1]) {
			t.Errorf("transition %q -> %q should be illegal", e[0], e[1])
		}
	}
}

// ---------------------------------------------------------------------------
// Fair queue

func qjob(id, tenant string) *Job {
	return newJob(id, JobSpec{Tenant: tenant, App: "polymorph"}, nil)
}

func TestFairQueueRoundRobin(t *testing.T) {
	q := newFairQueue(16)
	// Tenant A floods 6 jobs, then B and C submit one each; round-robin
	// must interleave B and C right after A's first job.
	for i := 0; i < 6; i++ {
		if !q.Push(qjob(fmt.Sprintf("a%d", i), "ta")) {
			t.Fatal("push rejected below capacity")
		}
	}
	q.Push(qjob("b0", "tb"))
	q.Push(qjob("c0", "tc"))
	var order []string
	for i := 0; i < 8; i++ {
		j, ok := q.Pop()
		if !ok {
			t.Fatal("queue closed early")
		}
		order = append(order, j.ID)
	}
	got := strings.Join(order, " ")
	want := "a0 b0 c0 a1 a2 a3 a4 a5"
	if got != want {
		t.Fatalf("round-robin order = %q, want %q", got, want)
	}
}

func TestFairQueueCapacityAndDrain(t *testing.T) {
	q := newFairQueue(2)
	if !q.Push(qjob("1", "")) || !q.Push(qjob("2", "")) {
		t.Fatal("pushes below capacity rejected")
	}
	if q.Push(qjob("3", "")) {
		t.Fatal("push above capacity accepted")
	}
	if got := len(q.Drain()); got != 2 {
		t.Fatalf("drain returned %d jobs, want 2", got)
	}
	if q.Push(qjob("4", "")) {
		t.Fatal("push after drain accepted")
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop after drain returned a job")
	}
}

func TestFairQueueRemove(t *testing.T) {
	q := newFairQueue(4)
	j1, j2 := qjob("1", "t"), qjob("2", "t")
	q.Push(j1)
	q.Push(j2)
	if !q.Remove(j1) {
		t.Fatal("remove of queued job failed")
	}
	if q.Remove(j1) {
		t.Fatal("second remove succeeded")
	}
	j, ok := q.Pop()
	if !ok || j.ID != "2" {
		t.Fatalf("pop after remove = %v, want job 2", j)
	}
}

func TestFairQueueConcurrent(t *testing.T) {
	q := newFairQueue(1000)
	const producers, perProducer = 8, 50
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Push(qjob(fmt.Sprintf("p%d-%d", p, i), fmt.Sprintf("t%d", p%4)))
			}
		}(p)
	}
	seen := make(chan string, producers*perProducer)
	var cw sync.WaitGroup
	for c := 0; c < 4; c++ {
		cw.Add(1)
		go func() {
			defer cw.Done()
			for {
				j, ok := q.Pop()
				if !ok {
					return
				}
				seen <- j.ID
			}
		}()
	}
	wg.Wait()
	// Wait for consumers to drain the queue, then close it.
	for q.Len() > 0 {
		time.Sleep(time.Millisecond)
	}
	q.Drain()
	cw.Wait()
	close(seen)
	got := map[string]bool{}
	for id := range seen {
		if got[id] {
			t.Fatalf("job %s popped twice", id)
		}
		got[id] = true
	}
	if len(got) != producers*perProducer {
		t.Fatalf("popped %d unique jobs, want %d", len(got), producers*perProducer)
	}
}

// ---------------------------------------------------------------------------
// Ledger

func TestLedgerAppendRecoverValidate(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, LedgerName)
	l, err := OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{App: "polymorph", Corpus: CorpusSpec{Runs: 5, Rate: 0.3}}
	must := func(rec LedgerRecord) {
		t.Helper()
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	must(LedgerRecord{Job: "j1", State: StateQueued, Spec: &spec})
	must(LedgerRecord{Job: "j1", State: StateRunning})
	must(LedgerRecord{Job: "j1", State: StateDone, Digest: "program: x\n"})
	must(LedgerRecord{Job: "j2", State: StateQueued, Spec: &spec})
	must(LedgerRecord{Job: "j2", State: StateRunning})
	must(LedgerRecord{Job: "j3", State: StateQueued, Spec: &spec})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	problems, summary, err := ValidateLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("healthy ledger has problems: %v", problems)
	}
	if !strings.Contains(summary, "3 jobs") {
		t.Fatalf("summary = %q, want 3 jobs", summary)
	}

	// j2 (running) and j3 (queued) must come back; j1 (done) must not.
	rec, rproblems, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rproblems) != 0 {
		t.Fatalf("recovery problems: %v", rproblems)
	}
	var ids []string
	for _, r := range rec {
		ids = append(ids, r.ID)
	}
	if got := strings.Join(ids, " "); got != "j2 j3" {
		t.Fatalf("recovered %q, want \"j2 j3\"", got)
	}
}

func TestLedgerTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, LedgerName)
	l, err := OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{App: "polymorph"}
	if err := l.Append(LedgerRecord{Job: "j1", State: StateQueued, Spec: &spec}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: half a record at the tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"crc":123,"rec":{"job":"j2","sta`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	problems, _, err := ValidateLedger(path)
	if err != nil {
		t.Fatalf("torn tail should validate with problems, got error: %v", err)
	}
	if len(problems) != 1 || !strings.Contains(problems[0], "torn final record") {
		t.Fatalf("problems = %v, want one torn-final-record note", problems)
	}
	rec, _, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec) != 1 || rec[0].ID != "j1" {
		t.Fatalf("recovered %v, want j1 only", rec)
	}
}

// TestLedgerTornTailTruncatedOnReopen is the survive-two-crashes case:
// reopening after a torn append must truncate the partial line, so the
// next append starts fresh instead of concatenating onto it (which would
// turn the torn tail into mid-file corruption and brick the restart after
// this one).
func TestLedgerTornTailTruncatedOnReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, LedgerName)
	l, err := OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{App: "polymorph"}
	if err := l.Append(LedgerRecord{Job: "j1", State: StateQueued, Spec: &spec}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"crc":123,"rec":{"job":"j2","sta`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l, err = OpenLedger(path)
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	if err := l.Append(LedgerRecord{Job: "j1", State: StateRunning}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	problems, _, err := ValidateLedger(path)
	if err != nil {
		t.Fatalf("ledger unreadable after post-crash append: %v", err)
	}
	if len(problems) != 0 {
		t.Fatalf("problems after post-crash append: %v", problems)
	}
	recs, _, _, err := readLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].State != StateQueued || recs[1].State != StateRunning {
		t.Fatalf("records after truncate+append = %+v, want j1 queued then running", recs)
	}
}

func TestLedgerCorruptionMidFileRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, LedgerName)
	l, err := OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{App: "polymorph"}
	l.Append(LedgerRecord{Job: "j1", State: StateQueued, Spec: &spec})
	l.Append(LedgerRecord{Job: "j1", State: StateRunning})
	l.Close()
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the second line's rec payload (not the tail).
	lines := bytes.Split(blob, []byte("\n"))
	lines[1] = bytes.Replace(lines[1], []byte(`"queued"`), []byte(`"QUEUED"`), 1)
	if err := os.WriteFile(path, bytes.Join(lines, []byte("\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ValidateLedger(path); err == nil {
		t.Fatal("mid-file corruption validated cleanly")
	}
	if _, _, err := Recover(path); err == nil {
		t.Fatal("mid-file corruption recovered cleanly")
	}
}

func TestLedgerSealCompacts(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, LedgerName)
	l, err := OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{App: "polymorph"}
	l.Append(LedgerRecord{Job: "j1", State: StateQueued, Spec: &spec})
	l.Append(LedgerRecord{Job: "j1", State: StateRunning})
	l.Append(LedgerRecord{Job: "j1", State: StateDone, Digest: "d\n"})
	l.Append(LedgerRecord{Job: "j2", State: StateQueued, Spec: &spec})
	l.Append(LedgerRecord{Job: "j2", State: StateRunning})
	l.Append(LedgerRecord{Job: "j2", State: StateInterrupted, Error: "drain"})
	if err := l.Seal(); err != nil {
		t.Fatal(err)
	}
	// Sealed ledger still appendable and still valid.
	if err := l.Append(LedgerRecord{Job: "j2", State: StateQueued, Spec: &spec}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	problems, summary, err := ValidateLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("sealed ledger has problems: %v\n(%s)", problems, summary)
	}
	recs, _, _, err := readLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	// j1 compacts to one record; j2 keeps its 3-record history + requeue.
	var j1 int
	for _, r := range recs {
		if r.Job == "j1" {
			j1++
		}
	}
	if j1 != 1 {
		t.Fatalf("sealed ledger has %d records for done job j1, want 1", j1)
	}
	rec, _, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec) != 1 || rec[0].ID != "j2" {
		t.Fatalf("recovered %v, want j2 only", rec)
	}
}

// ---------------------------------------------------------------------------
// End-to-end over HTTP

// startService wires a Service onto an httptest server, with runner count
// and queue slots tuned per test.
func startService(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Start(obs.New(nil)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return svc, ts
}

func postJSON(t *testing.T, url string, v any) (*http.Response, []byte) {
	t.Helper()
	blob, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, body
}

func waitTerminal(t *testing.T, base, id string, within time.Duration) Status {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var st Status
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("bad status body %q: %v", body, err)
		}
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s not terminal within %v (state %s)", id, within, st.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestServiceEndToEnd(t *testing.T) {
	dataDir := t.TempDir()
	svc, ts := startService(t, Config{DataDir: dataDir, Runners: 2, QueueSlots: 8})

	// Submit a small polymorph job and ride it to done.
	spec := JobSpec{
		Tenant: "acme",
		App:    "polymorph",
		Corpus: CorpusSpec{Runs: 10, Rate: 0.3, Seed: 1},
	}
	resp, body := postJSON(t, ts.URL+"/v1/jobs", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.State != StateQueued {
		t.Fatalf("submitted job state %s, want queued", st.State)
	}
	final := waitTerminal(t, ts.URL, st.ID, 60*time.Second)
	if final.State != StateDone {
		t.Fatalf("job ended %s (%s), want done", final.State, final.Error)
	}
	if final.Digest == "" {
		t.Fatal("done job has no digest")
	}
	if !final.Found {
		t.Fatal("polymorph job found no vulnerability")
	}

	// Report endpoint: JSON carries the digest; HTML renders.
	resp2, body2 := getBody(t, ts.URL+"/v1/jobs/"+st.ID+"/report")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("report: HTTP %d: %s", resp2.StatusCode, body2)
	}
	var repView struct {
		DetectionDigest string `json:"detection_digest"`
	}
	if err := json.Unmarshal(body2, &repView); err != nil {
		t.Fatal(err)
	}
	if repView.DetectionDigest != final.Digest {
		t.Fatalf("report digest %q != status digest %q", repView.DetectionDigest, final.Digest)
	}
	resp3, body3 := getBody(t, ts.URL+"/v1/jobs/"+st.ID+"/report?format=html")
	if resp3.StatusCode != http.StatusOK || !bytes.Contains(body3, []byte("<html")) {
		t.Fatalf("html report: HTTP %d, html? %v", resp3.StatusCode, bytes.Contains(body3, []byte("<html")))
	}

	// Job list includes it; health is sane; the ledger validates.
	resp4, body4 := getBody(t, ts.URL+"/v1/jobs")
	if resp4.StatusCode != http.StatusOK || !bytes.Contains(body4, []byte(st.ID)) {
		t.Fatalf("list: HTTP %d: %s", resp4.StatusCode, body4)
	}
	if err := svc.Drain(drainCtx(t)); err != nil {
		t.Fatal(err)
	}
	problems, _, err := ValidateLedger(filepath.Join(dataDir, LedgerName))
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("ledger problems after drain: %v", problems)
	}
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, body
}

func drainCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// startIdleService builds a Service whose runner pool is never started,
// so admitted jobs stay queued — the deterministic way to test admission
// control and queued-job cancellation (a started runner can finish a
// small job faster than the test submits the next one).
func startIdleService(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc.corpora = NewCorpora(filepath.Join(cfg.DataDir, "corpora"), nil)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return svc, ts
}

func TestServiceRejectsWhenFull(t *testing.T) {
	// No runners: every accepted job stays queued, so the 3rd submission
	// must hit the 2-slot bound with 429 + Retry-After.
	_, ts := startIdleService(t, Config{QueueSlots: 2})
	spec := JobSpec{App: "polymorph", Corpus: CorpusSpec{Runs: 10, Rate: 0.3, Seed: 1}}
	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/jobs", spec)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d: %s", i, resp.StatusCode, body)
		}
	}
	resp, body := postJSON(t, ts.URL+"/v1/jobs", spec)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("3rd submit: HTTP %d (%s), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("429 without Retry-After: %s", body)
	}
}

func TestServiceValidationErrors(t *testing.T) {
	_, ts := startService(t, Config{DataDir: t.TempDir(), Runners: 1, QueueSlots: 2})
	// Bad spec: unknown app.
	resp, _ := postJSON(t, ts.URL+"/v1/jobs", JobSpec{App: "nonesuch"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown app: HTTP %d, want 400", resp.StatusCode)
	}
	// Dispatch without workers.
	resp, _ = postJSON(t, ts.URL+"/v1/jobs", JobSpec{App: "polymorph", Dispatch: true})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("dispatch without workers: HTTP %d, want 400", resp.StatusCode)
	}
	// Unknown named corpus.
	resp, _ = postJSON(t, ts.URL+"/v1/jobs", JobSpec{App: "polymorph", Corpus: CorpusSpec{Name: "nope"}})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown corpus: HTTP %d, want 404", resp.StatusCode)
	}
	// Unknown job.
	resp, _ = getBody(t, ts.URL+"/v1/jobs/j-0-000000")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: HTTP %d, want 404", resp.StatusCode)
	}
}

func TestServiceCancelQueuedJob(t *testing.T) {
	// No runners: the job stays queued until the DELETE lands.
	_, ts := startIdleService(t, Config{QueueSlots: 4})
	spec := JobSpec{App: "polymorph", Corpus: CorpusSpec{Runs: 10, Rate: 0.3, Seed: 1}}
	resp, body := postJSON(t, ts.URL+"/v1/jobs", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, body)
	}
	var queued Status
	if err := json.Unmarshal(body, &queued); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dbody, _ := io.ReadAll(dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: HTTP %d: %s", dresp.StatusCode, dbody)
	}
	st := waitTerminal(t, ts.URL, queued.ID, 10*time.Second)
	if st.State != StateCancelled {
		t.Fatalf("cancelled queued job ended %s, want cancelled", st.State)
	}
}

// TestServiceCancelBetweenPopAndRun pins the lost-cancellation race:
// DELETE lands after a runner popped the job but before runJob stored
// j.cancel, so queue.Remove misses and the handler can only set the
// cancelled flag. runJob must honour that flag and finish the job
// cancelled instead of running it to completion.
func TestServiceCancelBetweenPopAndRun(t *testing.T) {
	// No runners: we play the runner by hand to land in the race window.
	svc, ts := startIdleService(t, Config{QueueSlots: 4})
	spec := JobSpec{App: "polymorph", Corpus: CorpusSpec{Runs: 10, Rate: 0.3, Seed: 1}}
	resp, body := postJSON(t, ts.URL+"/v1/jobs", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, body)
	}
	var queued Status
	if err := json.Unmarshal(body, &queued); err != nil {
		t.Fatal(err)
	}
	j := svc.job(queued.ID)
	popped, ok := svc.queue.Pop()
	if !ok || popped != j {
		t.Fatalf("popped %v, want job %s", popped, queued.ID)
	}
	// The DELETE finds the job gone from the queue and j.cancel still nil.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: HTTP %d", dresp.StatusCode)
	}
	svc.runJob(j)
	if got := j.State(); got != StateCancelled {
		t.Fatalf("job ended %s, want cancelled", got)
	}
	if j.Report() != nil {
		t.Fatal("cancelled job ran to completion and produced a report")
	}
}

func TestServiceIngestAndNamedCorpusJob(t *testing.T) {
	dataDir := t.TempDir()
	_, ts := startService(t, Config{DataDir: dataDir, Runners: 1, QueueSlots: 4, Shards: 2})

	// Stream a real corpus: generate runs the exact way the workload
	// does, encode as JSONL, POST them.
	runs := buildWorkloadRuns(t, "polymorph", 10, 1)
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, run := range runs {
		if err := enc.Encode(run); err != nil {
			t.Fatal(err)
		}
	}
	resp, body := postRaw(t, ts.URL+"/v1/corpora/c1/runs?program=polymorph", &buf)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: HTTP %d: %s", resp.StatusCode, body)
	}
	var res IngestResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Runs != len(runs) || res.TotalRuns != len(runs) {
		t.Fatalf("ingest result %+v, want %d runs", res, len(runs))
	}

	// Corpus list sees it.
	lresp, lbody := getBody(t, ts.URL+"/v1/corpora")
	if lresp.StatusCode != http.StatusOK || !bytes.Contains(lbody, []byte(`"c1"`)) {
		t.Fatalf("corpora list: HTTP %d: %s", lresp.StatusCode, lbody)
	}

	// A job against the named corpus runs to done.
	resp, body = postJSON(t, ts.URL+"/v1/jobs", JobSpec{App: "polymorph", Corpus: CorpusSpec{Name: "c1"}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, body)
	}
	var st Status
	json.Unmarshal(body, &st)
	final := waitTerminal(t, ts.URL, st.ID, 60*time.Second)
	if final.State != StateDone {
		t.Fatalf("named-corpus job ended %s (%s), want done", final.State, final.Error)
	}

	// Wrong-program job against the same corpus fails cleanly.
	resp, body = postJSON(t, ts.URL+"/v1/jobs", JobSpec{App: "grep", Corpus: CorpusSpec{Name: "c1"}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit wrong-program: HTTP %d: %s", resp.StatusCode, body)
	}
	json.Unmarshal(body, &st)
	final = waitTerminal(t, ts.URL, st.ID, 30*time.Second)
	if final.State != StateFailed {
		t.Fatalf("wrong-program job ended %s, want failed", final.State)
	}
}

func postRaw(t *testing.T, url string, body io.Reader) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/x-ndjson", body)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, b
}
