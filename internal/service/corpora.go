package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/corpus"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Corpora is the daemon's named-corpus registry: each name maps to a
// sharded segment store under <dataDir>/corpora/<name>, populated by the
// streaming ingestion endpoint and consumed by jobs whose spec references
// the corpus by name. Stores open lazily and stay open for the daemon's
// life (writers are per-shard and cheap when idle).
type Corpora struct {
	dir string
	o   *obs.Obs

	mu     sync.Mutex
	stores map[string]*corpus.Sharded
}

// NewCorpora returns a registry rooted at dir.
func NewCorpora(dir string, o *obs.Obs) *Corpora {
	return &Corpora{dir: dir, o: o, stores: map[string]*corpus.Sharded{}}
}

// open returns the named sharded store, creating it for program when
// absent. An existing store must belong to the same program.
func (c *Corpora) open(name, program string, shards int) (*corpus.Sharded, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s, ok := c.stores[name]; ok {
		if program != "" && s.Program() != program {
			return nil, fmt.Errorf("service: corpus %q belongs to %q, not %q", name, s.Program(), program)
		}
		return s, nil
	}
	dir := filepath.Join(c.dir, name)
	var s *corpus.Sharded
	var err error
	if corpus.IsShardedDir(dir) {
		s, err = corpus.OpenSharded(dir)
		if err == nil && program != "" && s.Program() != program {
			err = fmt.Errorf("service: corpus %q belongs to %q, not %q", name, s.Program(), program)
		}
	} else {
		if program == "" {
			return nil, fmt.Errorf("service: corpus %q does not exist", name)
		}
		s, err = corpus.CreateSharded(dir, program, shards)
	}
	if err != nil {
		return nil, err
	}
	s.SetObs(c.o)
	c.stores[name] = s
	return s, nil
}

// Get returns the named store for reading (jobs), without creating it.
func (c *Corpora) Get(name string) (*corpus.Sharded, error) {
	return c.open(name, "", 0)
}

// IngestResult summarizes one ingestion stream.
type IngestResult struct {
	Corpus  string `json:"corpus"`
	Program string `json:"program"`
	Runs    int    `json:"runs"`
	Bytes   int64  `json:"bytes"`
	Shards  int    `json:"shards"`
	// TotalRuns is the sealed run count after this stream.
	TotalRuns int `json:"total_runs"`
}

// Ingest streams JSONL-encoded trace.Run records from r into the named
// corpus for program, appending each run as it arrives (round-robin over
// the shards) and sealing the touched writers at end of stream so a
// completed ingestion is durable. Returns per-stream counts.
func (c *Corpora) Ingest(name, program string, shards int, r io.Reader) (*IngestResult, error) {
	s, err := c.open(name, program, shards)
	if err != nil {
		return nil, err
	}
	res := &IngestResult{Corpus: name, Program: s.Program(), Shards: s.Shards()}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var run trace.Run
		if err := json.Unmarshal(raw, &run); err != nil {
			return res, fmt.Errorf("service: ingest %s line %d: %w", name, line, err)
		}
		if err := s.Append(&run); err != nil {
			return res, fmt.Errorf("service: ingest %s line %d: %w", name, line, err)
		}
		res.Runs++
		res.Bytes += int64(len(raw))
		if c.o != nil {
			c.o.Metrics.Counter(obs.MetricServiceIngestRuns).Add(1)
			c.o.Metrics.Counter(obs.MetricServiceIngestBytes).Add(int64(len(raw)))
		}
	}
	if err := sc.Err(); err != nil {
		return res, fmt.Errorf("service: ingest %s: %w", name, err)
	}
	if err := s.Seal(); err != nil {
		return res, fmt.Errorf("service: ingest %s: seal: %w", name, err)
	}
	res.TotalRuns = s.TotalRuns()
	return res, nil
}

// Seal seals every open store (graceful drain).
func (c *Corpora) Seal() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var first error
	for _, s := range c.stores {
		if err := s.Seal(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// CorpusInfo is the wire view of one named corpus (GET /v1/corpora).
type CorpusInfo struct {
	Name    string `json:"name"`
	Program string `json:"program"`
	Shards  int    `json:"shards"`
	Runs    int    `json:"runs"`
	Bytes   int64  `json:"bytes"`
}

// List returns every corpus under the registry root (on disk, whether or
// not it has been opened yet), sorted by name.
func (c *Corpora) List() ([]CorpusInfo, error) {
	ents, err := os.ReadDir(c.dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []CorpusInfo
	for _, ent := range ents {
		if !ent.IsDir() || !corpus.IsShardedDir(filepath.Join(c.dir, ent.Name())) {
			continue
		}
		s, err := c.Get(ent.Name())
		if err != nil {
			return nil, err
		}
		out = append(out, CorpusInfo{
			Name:    ent.Name(),
			Program: s.Program(),
			Shards:  s.Shards(),
			Runs:    s.TotalRuns(),
			Bytes:   s.TotalBytes(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}
