package service

import (
	"context"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/live"
)

// State is a job's lifecycle state. Transitions are monotonic (validated
// by TransitionOK and enforced by tracecheck over the ledger): a job is
// admitted as queued, becomes running when a runner picks it up, and ends
// in exactly one terminal state — except interrupted, which a restarted
// daemon requeues.
type State string

const (
	// StateQueued: admitted, waiting for a runner slot.
	StateQueued State = "queued"
	// StateRunning: a runner is executing the pipeline.
	StateRunning State = "running"
	// StateDone: pipeline completed; report and digest recorded.
	StateDone State = "done"
	// StateFailed: pipeline returned an error.
	StateFailed State = "failed"
	// StateCancelled: the user cancelled via DELETE /v1/jobs/{id}.
	StateCancelled State = "cancelled"
	// StateInterrupted: the daemon shut down (drain or crash) before the
	// job finished; a restarted daemon requeues it.
	StateInterrupted State = "interrupted"
)

// Terminal reports whether s ends a job's life in this daemon process.
// Interrupted is terminal for the process but revivable across restarts.
func (s State) Terminal() bool {
	switch s {
	case StateDone, StateFailed, StateCancelled, StateInterrupted:
		return true
	}
	return false
}

// Known reports whether s is one of the defined states.
func (s State) Known() bool {
	switch s {
	case StateQueued, StateRunning, StateDone, StateFailed, StateCancelled, StateInterrupted:
		return true
	}
	return false
}

// TransitionOK reports whether a job may move from one state to the next.
// The "" → queued edge admits a new job; interrupted → queued is the
// recovery requeue on daemon restart.
func TransitionOK(from, to State) bool {
	switch from {
	case "":
		return to == StateQueued
	case StateQueued:
		return to == StateRunning || to == StateCancelled || to == StateInterrupted
	case StateRunning:
		return to == StateDone || to == StateFailed || to == StateCancelled || to == StateInterrupted
	case StateInterrupted:
		return to == StateQueued
	}
	return false
}

// Job is one admitted analysis job: its spec, live state, per-job
// observability (a private hub feeding the job's SSE stream, derived from
// the daemon Obs so metrics aggregate daemon-wide), and — once terminal —
// its outcome.
type Job struct {
	ID   string
	Spec JobSpec

	mu        sync.Mutex
	state     State
	err       string // failure reason (failed/interrupted)
	report    *core.Report
	digest    string
	submitted time.Time
	started   time.Time
	finished  time.Time

	// cancel aborts the running pipeline; cancelled records that the user
	// asked (DELETE) so the terminal state is cancelled, not interrupted.
	cancel    context.CancelFunc
	cancelled bool

	// obs/hub are the job-private event fan-out; done closes when the job
	// reaches a terminal state, ending its SSE streams with a final frame.
	obs  *obs.Obs
	hub  *live.Hub
	done chan struct{}
}

func newJob(id string, spec JobSpec, parent *obs.Obs) *Job {
	hub := live.NewHub()
	return &Job{
		ID:        id,
		Spec:      spec,
		state:     StateQueued,
		submitted: time.Now(),
		obs:       obs.Derive(parent, hub),
		hub:       hub,
		done:      make(chan struct{}),
	}
}

// Status is the wire view of a job (GET /v1/jobs/{id}).
type Status struct {
	ID        string  `json:"id"`
	State     State   `json:"state"`
	Tenant    string  `json:"tenant,omitempty"`
	App       string  `json:"app"`
	Error     string  `json:"error,omitempty"`
	Digest    string  `json:"digest,omitempty"`
	Submitted string  `json:"submitted"`
	Started   string  `json:"started,omitempty"`
	Finished  string  `json:"finished,omitempty"`
	WallMS    int64   `json:"wall_ms,omitempty"`
	Found     bool    `json:"found,omitempty"`
	Spec      JobSpec `json:"spec"`
}

// status snapshots the job under its lock.
func (j *Job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:        j.ID,
		State:     j.state,
		Tenant:    j.Spec.Tenant,
		App:       j.Spec.App,
		Error:     j.err,
		Digest:    j.digest,
		Submitted: j.submitted.UTC().Format(time.RFC3339Nano),
		Spec:      j.Spec,
	}
	if !j.started.IsZero() {
		st.Started = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		st.Finished = j.finished.UTC().Format(time.RFC3339Nano)
		st.WallMS = j.finished.Sub(j.started).Milliseconds()
	}
	if j.report != nil {
		st.Found = j.report.Vuln != nil
	}
	return st
}

// state returns the job's current state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Report returns the completed report (nil until done).
func (j *Job) Report() *core.Report {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.report
}
