package service

import (
	"path/filepath"
	"testing"
	"time"
)

// TestLoadTestSmoke is the loadtest satellite: 25 concurrent jobs over 5
// tenants against a live daemon must all complete with zero failures, the
// per-tenant completion counts must come out flat (the fair scheduler
// under symmetric load), and the ledger must validate afterwards.
func TestLoadTestSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("loadtest runs 25 real jobs; run without -short")
	}
	dataDir := t.TempDir()
	svc, ts := startService(t, Config{
		DataDir:    dataDir,
		Runners:    4,
		QueueSlots: 8, // deliberately smaller than the job count: 429s happen
	})

	const jobs, tenants = 25, 5
	rep, err := RunLoadTest(LoadOptions{
		BaseURL:       ts.URL,
		Jobs:          jobs,
		Tenants:       tenants,
		Concurrency:   8,
		IngestStreams: 2,
		IngestRuns:    20,
		Timeout:       4 * time.Minute,
		Seed:          42,
	})
	if err != nil {
		t.Fatalf("loadtest: %v\n%s", err, FormatLoadReport(rep))
	}
	if rep.Done != jobs || rep.Failed != 0 {
		t.Fatalf("loadtest: %d done / %d failed, want %d / 0\n%s",
			rep.Done, rep.Failed, jobs, FormatLoadReport(rep))
	}

	// Symmetric load over T tenants: every tenant finishes jobs/T jobs.
	if len(rep.PerTenant) != tenants {
		t.Fatalf("per-tenant counts cover %d tenants, want %d: %v",
			len(rep.PerTenant), tenants, rep.PerTenant)
	}
	for tenant, n := range rep.PerTenant {
		if n != jobs/tenants {
			t.Errorf("tenant %s completed %d jobs, want %d (unfair schedule)",
				tenant, n, jobs/tenants)
		}
	}
	if rep.IngestedRuns != 2*20 {
		t.Errorf("ingested %d runs, want %d", rep.IngestedRuns, 2*20)
	}

	if err := svc.Drain(drainCtx(t)); err != nil {
		t.Fatal(err)
	}
	problems, summary, err := ValidateLedger(filepath.Join(dataDir, LedgerName))
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("ledger problems after loadtest: %v\n(%s)", problems, summary)
	}
}
