// Package service is the analysis-as-a-service layer behind the statsymd
// daemon: a bounded job queue with per-tenant weighted-fair scheduling, a
// crash-safe append-only job ledger, streaming corpus ingestion into
// sharded segment stores, per-job live progress hubs, and the HTTP/JSON
// API that exposes the whole job lifecycle (submit, status, SSE events,
// report, cancel). The pipeline itself is untouched — every job runs
// through core.RunJob, so an API-submitted job is detection-digest
// byte-identical to the equivalent statsym CLI invocation.
package service

import (
	"fmt"
	"regexp"
	"time"

	"repro/internal/apps"
	"repro/internal/summary"
)

// SpecKind tags a persisted job-spec JSON document so tooling (tracecheck)
// can recognize and validate it standalone.
const SpecKind = "statsymd.jobspec/v1"

// nameRE constrains tenant IDs and corpus names: they appear in metric
// names, directory names, and URLs, so keep them boring.
var nameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$`)

// Budgets bounds one job's symbolic-execution resources. The zero value
// uses the executor defaults, exactly like an unflagged CLI run.
type Budgets struct {
	// MaxStates bounds live states per candidate attempt.
	MaxStates int `json:"max_states,omitempty"`
	// MaxSteps bounds instructions per candidate attempt.
	MaxSteps int64 `json:"max_steps,omitempty"`
	// CandidateTimeoutMS bounds one candidate attempt's wall clock.
	CandidateTimeoutMS int64 `json:"candidate_timeout_ms,omitempty"`
	// TotalTimeoutMS bounds the whole symbolic-execution phase.
	TotalTimeoutMS int64 `json:"total_timeout_ms,omitempty"`
}

// CorpusSpec names the corpus a job analyzes: either a server-side named
// corpus populated through the streaming ingestion endpoint, or a
// collect-on-demand request (the daemon runs the app's workload monitor
// exactly like the CLI does, so the corpus — and everything downstream —
// is deterministic in (runs, rate, seed)).
type CorpusSpec struct {
	// Name references a corpus ingested via POST /v1/corpora/{name}/runs.
	// Mutually exclusive with the collection fields below.
	Name string `json:"name,omitempty"`

	// Runs is the per-class run count to collect (0: workload default).
	Runs int `json:"runs,omitempty"`
	// Rate is the log sampling rate (0: 0.3, the paper's default).
	Rate float64 `json:"rate,omitempty"`
	// Seed drives input generation and sampling.
	Seed int64 `json:"seed,omitempty"`
}

// JobSpec is the wire form of one analysis job (POST /v1/jobs).
type JobSpec struct {
	// Kind is SpecKind when the spec is persisted standalone; optional on
	// submission.
	Kind string `json:"kind,omitempty"`
	// Tenant attributes the job for fair scheduling and metrics
	// ("" is the anonymous tenant, scheduled like any other).
	Tenant string `json:"tenant,omitempty"`
	// App names the program to analyze (apps.Get name).
	App string `json:"app"`
	// Corpus selects or collects the run corpus.
	Corpus CorpusSpec `json:"corpus"`
	// Budgets bounds the symbolic-execution phase.
	Budgets Budgets `json:"budgets"`

	// Parallel is the candidate-verification worker count (core.Config).
	Parallel int `json:"parallel,omitempty"`
	// Workers is the in-candidate frontier worker count (core.Config).
	Workers int `json:"workers,omitempty"`
	// Scope is the compositional scope policy (summary.ParsePolicy).
	Scope string `json:"scope,omitempty"`
	// Summaries enables memoized path summaries.
	Summaries bool `json:"summaries,omitempty"`
	// Dispatch schedules candidate attempts onto the daemon's configured
	// worker pool (rejected when the daemon has none).
	Dispatch bool `json:"dispatch,omitempty"`
}

// maxEngineFanout bounds per-job parallel/worker requests so one tenant
// cannot oversubscribe the host through a single spec.
const maxEngineFanout = 64

// Problems returns every validation finding (empty: the spec is valid).
// The daemon rejects submissions with problems; tracecheck prints them.
func (s *JobSpec) Problems() []string {
	var ps []string
	if s.Kind != "" && s.Kind != SpecKind {
		ps = append(ps, fmt.Sprintf("kind %q, want %q or empty", s.Kind, SpecKind))
	}
	if s.Tenant != "" && !nameRE.MatchString(s.Tenant) {
		ps = append(ps, fmt.Sprintf("tenant %q: must match %s", s.Tenant, nameRE))
	}
	if s.App == "" {
		ps = append(ps, "missing app")
	} else if _, err := apps.Get(s.App); err != nil {
		ps = append(ps, err.Error())
	}
	c := s.Corpus
	if c.Name != "" {
		if !nameRE.MatchString(c.Name) {
			ps = append(ps, fmt.Sprintf("corpus name %q: must match %s", c.Name, nameRE))
		}
		if c.Runs != 0 || c.Rate != 0 || c.Seed != 0 {
			ps = append(ps, "corpus: name and collection fields (runs/rate/seed) are mutually exclusive")
		}
	} else {
		if c.Runs < 0 || c.Runs > 100000 {
			ps = append(ps, fmt.Sprintf("corpus runs %d out of range [0, 100000]", c.Runs))
		}
		if c.Rate < 0 || c.Rate > 1 {
			ps = append(ps, fmt.Sprintf("corpus rate %g out of range (0, 1]", c.Rate))
		}
	}
	b := s.Budgets
	if b.MaxStates < 0 || b.MaxSteps < 0 || b.CandidateTimeoutMS < 0 || b.TotalTimeoutMS < 0 {
		ps = append(ps, "budgets must be non-negative")
	}
	if s.Parallel < 0 || s.Parallel > maxEngineFanout {
		ps = append(ps, fmt.Sprintf("parallel %d out of range [0, %d]", s.Parallel, maxEngineFanout))
	}
	if s.Workers < 0 || s.Workers > maxEngineFanout {
		ps = append(ps, fmt.Sprintf("workers %d out of range [0, %d]", s.Workers, maxEngineFanout))
	}
	if _, err := summary.ParsePolicy(s.Scope); err != nil {
		ps = append(ps, err.Error())
	}
	return ps
}

// Validate returns an error describing the first validation problem.
func (s *JobSpec) Validate() error {
	if ps := s.Problems(); len(ps) > 0 {
		return fmt.Errorf("job spec: %s", ps[0])
	}
	return nil
}

// rate returns the corpus sampling rate with the CLI default applied.
func (c CorpusSpec) rate() float64 {
	if c.Rate == 0 {
		return 0.3
	}
	return c.Rate
}

// dur converts a millisecond budget to a duration (0 stays 0: unbounded).
func dur(ms int64) time.Duration { return time.Duration(ms) * time.Millisecond }
