package service

import "sync"

// fairQueue is the bounded admission queue with per-tenant round-robin
// fairness: each tenant gets its own FIFO, and Pop cycles a cursor over
// the tenants that have work, so a tenant streaming 200 submissions
// cannot starve one submitting a single job — the single job waits behind
// at most one job per competing tenant, not behind the flood. Capacity
// bounds the total queued jobs across tenants; a full queue rejects
// (HTTP 429 upstream) instead of buffering unboundedly.
type fairQueue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	cap     int
	size    int
	perTen  map[string][]*Job
	tenants []string // ring of tenants with queued work
	cursor  int
	closed  bool
}

func newFairQueue(capacity int) *fairQueue {
	if capacity <= 0 {
		capacity = 1
	}
	q := &fairQueue{cap: capacity, perTen: map[string][]*Job{}}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push admits j, returning false when the queue is at capacity or closed.
func (q *fairQueue) Push(j *Job) bool { return q.push(j, false) }

// ForcePush admits j even past capacity, returning false only when the
// queue is closed. Recovery requeues use it: the ledger can legally hold
// up to QueueSlots+Runners non-terminal jobs, and bouncing the overflow
// would make every restart after a crash-under-full-load fail the same
// way. The capacity bound exists to protect API admission (429), not
// recovery.
func (q *fairQueue) ForcePush(j *Job) bool { return q.push(j, true) }

func (q *fairQueue) push(j *Job, force bool) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || (!force && q.size >= q.cap) {
		return false
	}
	t := j.Spec.Tenant
	if len(q.perTen[t]) == 0 {
		q.tenants = append(q.tenants, t)
	}
	q.perTen[t] = append(q.perTen[t], j)
	q.size++
	q.cond.Signal()
	return true
}

// Pop blocks until a job is available (returned in tenant round-robin
// order) or the queue is closed (nil, false).
func (q *fairQueue) Pop() (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if j := q.popLocked(); j != nil {
			return j, true
		}
		if q.closed {
			return nil, false
		}
		q.cond.Wait()
	}
}

// popLocked removes and returns the next job in round-robin order, or nil
// when the queue is empty. Caller holds q.mu.
func (q *fairQueue) popLocked() *Job {
	for len(q.tenants) > 0 {
		if q.cursor >= len(q.tenants) {
			q.cursor = 0
		}
		t := q.tenants[q.cursor]
		fifo := q.perTen[t]
		if len(fifo) == 0 {
			// Tenant drained (all its jobs were Removed): drop it from the
			// ring without advancing the cursor — the next tenant slides
			// into this slot.
			q.tenants = append(q.tenants[:q.cursor], q.tenants[q.cursor+1:]...)
			delete(q.perTen, t)
			continue
		}
		j := fifo[0]
		q.perTen[t] = fifo[1:]
		q.size--
		if len(q.perTen[t]) == 0 {
			q.tenants = append(q.tenants[:q.cursor], q.tenants[q.cursor+1:]...)
			delete(q.perTen, t)
		} else {
			q.cursor++
		}
		return j
	}
	return nil
}

// Remove deletes j from the queue if still queued (user cancellation of a
// not-yet-running job). Returns whether it was found.
func (q *fairQueue) Remove(j *Job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	t := j.Spec.Tenant
	fifo := q.perTen[t]
	for i, cand := range fifo {
		if cand == j {
			q.perTen[t] = append(fifo[:i:i], fifo[i+1:]...)
			q.size--
			return true
		}
	}
	return false
}

// Drain closes the queue and returns every still-queued job (in tenant
// round-robin order). Subsequent Push returns false; blocked Pops return.
func (q *fairQueue) Drain() []*Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	var out []*Job
	for {
		j := q.popLocked()
		if j == nil {
			break
		}
		out = append(out, j)
	}
	q.cond.Broadcast()
	return out
}

// Len returns the current queue depth.
func (q *fairQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}
