package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/live"
	"repro/internal/report"
	"repro/internal/workload"
)

// Config sizes and wires one daemon instance.
type Config struct {
	// DataDir holds the job ledger and the named-corpus stores.
	DataDir string
	// QueueSlots bounds jobs waiting for a runner (default 32). A full
	// queue rejects submissions with 429 + Retry-After.
	QueueSlots int
	// Runners is the concurrent job runner count (default 2).
	Runners int
	// DrainTimeout is how long a graceful drain lets in-flight jobs finish
	// before cancelling them into the interrupted state (default 30s).
	DrainTimeout time.Duration

	// WorkerAddrs lists dispatch worker processes; jobs submitted with
	// dispatch=true verify candidates on this pool. Empty: such jobs are
	// rejected at admission.
	WorkerAddrs []string
	// UnitDeadline bounds one remote dispatch unit (0: dispatch default).
	UnitDeadline time.Duration
	// DispatchLog appends scheduling events for dispatched jobs.
	DispatchLog string
	// CacheDir attaches the persistent solver cache to every job.
	CacheDir string
	// Shards is the fan-out for newly created named corpora (0: default).
	Shards int
}

func (c Config) withDefaults() Config {
	if c.QueueSlots <= 0 {
		c.QueueSlots = 32
	}
	if c.Runners <= 0 {
		c.Runners = 2
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	return c
}

// Service is the statsymd daemon core: admission, the fair queue, the
// runner pool, the job table, the ledger, and the HTTP API over them.
type Service struct {
	cfg     Config
	ledger  *Ledger
	queue   *fairQueue
	corpora *Corpora

	// o is the daemon-wide Obs (metrics registry shared by every job);
	// set by Start, nil-safe before.
	o *obs.Obs

	mu        sync.Mutex
	jobs      map[string]*Job
	order     []string // job IDs in admission order, for listing
	seq       int64
	draining  bool
	recovered []RecoveredJob

	runnersWG sync.WaitGroup
	started   time.Time
}

// New opens the data dir (ledger + corpora) and replays the ledger for
// jobs interrupted by a previous process. Call Handler to get the API
// mux and Start to launch the runner pool.
func New(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	ledgerPath := filepath.Join(cfg.DataDir, LedgerName)
	recovered, problems, err := Recover(ledgerPath)
	if err != nil {
		return nil, fmt.Errorf("service: recover %s: %w", ledgerPath, err)
	}
	ledger, err := OpenLedger(ledgerPath)
	if err != nil {
		return nil, fmt.Errorf("service: open ledger: %w", err)
	}
	s := &Service{
		cfg:       cfg,
		ledger:    ledger,
		queue:     newFairQueue(cfg.QueueSlots),
		jobs:      map[string]*Job{},
		recovered: recovered,
		started:   time.Now(),
	}
	for _, p := range problems {
		// Recovery problems are diagnostics, not fatal: a torn tail is the
		// expected signature of the crash being recovered from.
		fmt.Printf("statsymd: ledger recovery: %s\n", p)
	}
	return s, nil
}

// Recovered returns the jobs found queued/running in the ledger at open
// (requeued by Start).
func (s *Service) Recovered() []RecoveredJob {
	return append([]RecoveredJob(nil), s.recovered...)
}

// Start attaches the daemon Obs, launches the runner pool, and requeues
// recovered jobs (marking the interrupted → queued transition in the
// ledger). Idempotent per Service; must precede traffic.
func (s *Service) Start(o *obs.Obs) error {
	s.o = o
	s.corpora = NewCorpora(filepath.Join(s.cfg.DataDir, "corpora"), o)
	for i := 0; i < s.cfg.Runners; i++ {
		s.runnersWG.Add(1)
		go s.runner()
	}
	for _, rec := range s.recovered {
		if rec.LastState != StateInterrupted {
			// The previous process died without writing the interrupted
			// record; write it now so the history stays monotonic.
			if err := s.ledger.Append(LedgerRecord{Job: rec.ID, State: StateInterrupted,
				Error: "daemon restarted"}); err != nil {
				return err
			}
		}
		j := newJob(rec.ID, rec.Spec, s.o)
		if err := s.admit(j, true); err != nil {
			return fmt.Errorf("service: requeue %s: %w", rec.ID, err)
		}
	}
	return nil
}

// admit registers j, writes the queued ledger record, and enqueues it.
// requeue marks a recovery admission (job ID already allocated).
func (s *Service) admit(j *Job, requeue bool) error {
	rec := LedgerRecord{Job: j.ID, State: StateQueued, Spec: &j.Spec}
	if err := s.ledger.Append(rec); err != nil {
		return err
	}
	s.mu.Lock()
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.mu.Unlock()
	// Recovery requeues bypass the capacity bound (ForcePush): a crash can
	// leave up to QueueSlots+Runners non-terminal jobs in the ledger, and
	// rejecting the overflow would re-mark them interrupted and brick every
	// subsequent restart. API admissions stay bounded (checked under s.mu
	// in handleSubmit, re-checked by Push here).
	pushed := false
	if requeue {
		pushed = s.queue.ForcePush(j)
	} else {
		pushed = s.queue.Push(j)
	}
	if !pushed {
		// Full (API race) or closed (drain): mark it interrupted so a later
		// restart retries.
		s.setTerminal(j, StateInterrupted, "", nil, "queue full at admission")
		return fmt.Errorf("queue full")
	}
	s.gauge()
	if s.o != nil {
		s.o.Metrics.Counter(obs.MetricServiceJobsSubmitted).Inc()
		if !requeue {
			s.o.Metrics.Counter(obs.ServiceTenantMetric(tenantOrDefault(j.Spec.Tenant))).Inc()
		}
	}
	return nil
}

// newJobIDLocked allocates a fresh job ID under s.mu. Nanosecond submit
// time (not the per-process start second) keeps IDs from colliding with
// jobs recovered from a previous process after a quick restart; the map
// check closes the remainder so an ID can never overwrite a live job or
// extend another job's ledger history.
func (s *Service) newJobIDLocked() string {
	for {
		s.seq++
		id := fmt.Sprintf("j-%d-%06d", time.Now().UnixNano(), s.seq)
		if _, taken := s.jobs[id]; !taken {
			return id
		}
	}
}

func tenantOrDefault(t string) string {
	if t == "" {
		return "anonymous"
	}
	return t
}

// gauge refreshes the queue-depth gauge.
func (s *Service) gauge() {
	if s.o != nil {
		s.o.Metrics.Gauge(obs.MetricServiceQueueDepth).Set(int64(s.queue.Len()))
	}
}

// runner is one worker of the runner pool: pop, run, repeat until drain.
func (s *Service) runner() {
	defer s.runnersWG.Done()
	for {
		j, ok := s.queue.Pop()
		if !ok {
			return
		}
		s.gauge()
		s.runJob(j)
	}
}

// runJob executes one job through the core pipeline and records its
// terminal state.
func (s *Service) runJob(j *Job) {
	ctx, cancel := context.WithCancel(context.Background())
	j.mu.Lock()
	if j.state != StateQueued {
		// Cancelled (or otherwise finished) while queued; nothing to run.
		j.mu.Unlock()
		cancel()
		return
	}
	if j.cancelled {
		// DELETE landed between queue.Pop and here: Remove missed the job
		// and j.cancel was still nil, so the handler could only set the
		// flag. Honour the acknowledged cancel instead of running the job
		// to completion.
		j.mu.Unlock()
		cancel()
		s.setTerminal(j, StateCancelled, "", nil, "")
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	j.mu.Unlock()
	if err := s.ledger.Append(LedgerRecord{Job: j.ID, State: StateRunning}); err != nil {
		s.setTerminal(j, StateFailed, "", nil, "ledger: "+err.Error())
		cancel()
		return
	}

	rep, err := s.execute(ctx, j)
	cancel()

	j.mu.Lock()
	userCancelled := j.cancelled
	j.mu.Unlock()
	switch {
	case err != nil && userCancelled:
		s.setTerminal(j, StateCancelled, "", nil, "")
	case err != nil && s.isDraining():
		s.setTerminal(j, StateInterrupted, "", nil, "drain: "+err.Error())
	case err != nil:
		s.setTerminal(j, StateFailed, "", nil, err.Error())
	case rep.Cancelled && userCancelled:
		s.setTerminal(j, StateCancelled, "", rep, "")
	case rep.Cancelled && s.isDraining():
		s.setTerminal(j, StateInterrupted, "", rep, "drain timeout")
	default:
		s.setTerminal(j, StateDone, core.DetectionDigest(rep), rep, "")
	}
}

// execute assembles the job's inputs and runs the pipeline under the
// job's private Obs.
func (s *Service) execute(ctx context.Context, j *Job) (*core.Report, error) {
	app, err := apps.Get(j.Spec.App)
	if err != nil {
		return nil, err
	}
	in := core.JobInputs{Prog: app.Program(), Spec: app.Spec}
	if name := j.Spec.Corpus.Name; name != "" {
		sh, err := s.corpora.Get(name)
		if err != nil {
			return nil, err
		}
		if sh.Program() != app.Name {
			return nil, fmt.Errorf("corpus %q holds runs of %q, job analyzes %q", name, sh.Program(), app.Name)
		}
		c, err := sh.Materialize()
		if err != nil {
			return nil, err
		}
		in.Corpus = c
	} else {
		cs := j.Spec.Corpus
		c, err := workload.BuildCorpusCtx(ctx, app, workload.Options{
			SampleRate: cs.rate(),
			Seed:       cs.Seed,
			Correct:    cs.Runs,
			Faulty:     cs.Runs,
		})
		if err != nil {
			return nil, err
		}
		in.Corpus = c
	}

	cfg := core.Config{
		MaxStates:            j.Spec.Budgets.MaxStates,
		PerCandidateMaxSteps: j.Spec.Budgets.MaxSteps,
		PerCandidateTimeout:  dur(j.Spec.Budgets.CandidateTimeoutMS),
		TotalTimeout:         dur(j.Spec.Budgets.TotalTimeoutMS),
		Parallel:             j.Spec.Parallel,
		Workers:              j.Spec.Workers,
		Scope:                j.Spec.Scope,
		Summaries:            j.Spec.Summaries,
		CacheDir:             s.cfg.CacheDir,
	}
	if j.Spec.Dispatch {
		cfg.Dispatch = true
		cfg.WorkerAddrs = append([]string(nil), s.cfg.WorkerAddrs...)
		cfg.UnitDeadline = s.cfg.UnitDeadline
		cfg.DispatchLog = s.cfg.DispatchLog
	}
	return core.RunJob(obs.NewContext(ctx, j.obs), in, cfg)
}

// setTerminal moves j to a terminal state, persists the transition, and
// closes the job's done channel (ending its SSE streams).
func (s *Service) setTerminal(j *Job, st State, digest string, rep *core.Report, errMsg string) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state = st
	j.err = errMsg
	j.digest = digest
	j.report = rep
	j.finished = time.Now()
	if j.started.IsZero() {
		j.started = j.finished
	}
	wall := j.finished.Sub(j.started)
	close(j.done)
	j.mu.Unlock()

	if err := s.ledger.Append(LedgerRecord{Job: j.ID, State: st, Digest: digest, Error: errMsg}); err != nil {
		fmt.Printf("statsymd: ledger append %s %s: %v\n", j.ID, st, err)
	}
	if s.o == nil {
		return
	}
	m := s.o.Metrics
	switch st {
	case StateDone:
		m.Counter(obs.MetricServiceJobsCompleted).Inc()
	case StateFailed:
		m.Counter(obs.MetricServiceJobsFailed).Inc()
	case StateCancelled:
		m.Counter(obs.MetricServiceJobsCancelled).Inc()
	case StateInterrupted:
		m.Counter(obs.MetricServiceJobsInterrupted).Inc()
	}
	m.Histogram(obs.MetricServiceJobWallMS, obs.ServiceJobWallBuckets...).Observe(wall.Milliseconds())
}

func (s *Service) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain gracefully shuts the service down: stop admitting (503), mark
// still-queued jobs interrupted, give running jobs until ctx (the
// caller bounds it with DrainTimeout) before cancelling them into the
// interrupted state, then seal the ledger and corpora. Returns when every
// runner has exited.
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	s.mu.Unlock()

	// Close the queue: runners finish their current job and exit; jobs
	// never started are interrupted (recovered on restart).
	for _, j := range s.queue.Drain() {
		s.setTerminal(j, StateInterrupted, "", nil, "drain")
	}
	s.gauge()

	// Let in-flight jobs finish within the budget, then cancel them.
	done := make(chan struct{})
	go func() {
		s.runnersWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.mu.Lock()
		for _, j := range s.jobs {
			j.mu.Lock()
			if j.cancel != nil && !j.state.Terminal() {
				j.cancel()
			}
			j.mu.Unlock()
		}
		s.mu.Unlock()
		<-done
	}

	var first error
	if s.corpora != nil {
		if err := s.corpora.Seal(); err != nil {
			first = err
		}
	}
	if err := s.ledger.Seal(); err != nil && first == nil {
		first = err
	}
	if err := s.ledger.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

// ---------------------------------------------------------------------------
// HTTP API

// Handler returns the /v1 API mux. Mount it on the live server (or any
// mux) under "/v1/".
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/report", s.handleReport)
	mux.HandleFunc("POST /v1/corpora/{name}/runs", s.handleIngest)
	mux.HandleFunc("GET /v1/corpora", s.handleCorpora)
	mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	return mux
}

// apiError is the uniform JSON error envelope.
func apiError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&spec); err != nil {
		apiError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	if ps := spec.Problems(); len(ps) > 0 {
		apiError(w, http.StatusBadRequest, "invalid job spec: %s", ps[0])
		return
	}
	// Stamp the document kind so every persisted copy of the spec (ledger
	// records, status views) is a self-identifying jobspec document.
	spec.Kind = SpecKind
	if spec.Dispatch && len(s.cfg.WorkerAddrs) == 0 {
		apiError(w, http.StatusBadRequest, "job requests dispatch but the daemon has no workers (-dispatch)")
		return
	}
	if name := spec.Corpus.Name; name != "" {
		if _, err := s.corpora.Get(name); err != nil {
			apiError(w, http.StatusNotFound, "%v", err)
			return
		}
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		apiError(w, http.StatusServiceUnavailable, "daemon is draining")
		return
	}
	if s.queue.Len() >= s.cfg.QueueSlots {
		s.mu.Unlock()
		if s.o != nil {
			s.o.Metrics.Counter(obs.MetricServiceJobsRejected).Inc()
		}
		w.Header().Set("Retry-After", "5")
		apiError(w, http.StatusTooManyRequests, "queue full (%d slots)", s.cfg.QueueSlots)
		return
	}
	id := s.newJobIDLocked()
	s.mu.Unlock()

	j := newJob(id, spec, s.o)
	if err := s.admit(j, false); err != nil {
		apiError(w, http.StatusServiceUnavailable, "admit: %v", err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+id)
	writeJSON(w, http.StatusAccepted, j.status())
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]Status, 0, len(ids))
	for _, id := range ids {
		if j := s.job(id); j != nil {
			out = append(out, j.status())
		}
	}
	if t := r.URL.Query().Get("tenant"); t != "" {
		filtered := out[:0]
		for _, st := range out {
			if st.Tenant == t {
				filtered = append(filtered, st)
			}
		}
		out = filtered
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Service) job(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		apiError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		apiError(w, http.StatusNotFound, "no such job")
		return
	}
	j.mu.Lock()
	if j.state.Terminal() {
		st := j.state
		j.mu.Unlock()
		apiError(w, http.StatusConflict, "job already %s", st)
		return
	}
	j.cancelled = true
	cancel := j.cancel
	j.mu.Unlock()
	if s.queue.Remove(j) {
		// Never started: terminal immediately.
		s.setTerminal(j, StateCancelled, "", nil, "")
		s.gauge()
	} else if cancel != nil {
		// Running: the pipeline winds down and runJob records the state.
		cancel()
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		apiError(w, http.StatusNotFound, "no such job")
		return
	}
	tick := time.Second
	if s.o != nil && s.o.Interval > 0 {
		tick = s.o.Interval
	}
	live.ServeSSE(w, r, j.obs, j.hub, tick, j.done)
}

func (s *Service) handleReport(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		apiError(w, http.StatusNotFound, "no such job")
		return
	}
	rep := j.Report()
	st := j.status()
	if rep == nil {
		apiError(w, http.StatusConflict, "job is %s: no report yet", st.State)
		return
	}
	now := time.Now().UTC().Format(time.RFC3339)
	if r.URL.Query().Get("format") == "html" {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		if err := report.WriteHTML(w, rep, now); err != nil {
			apiError(w, http.StatusInternalServerError, "render: %v", err)
		}
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"job":              st,
		"detection_digest": st.Digest,
		"report":           report.Build(rep, now),
	})
}

func (s *Service) handleIngest(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	program := r.URL.Query().Get("program")
	if !nameRE.MatchString(name) {
		apiError(w, http.StatusBadRequest, "corpus name %q: must match %s", name, nameRE)
		return
	}
	if program == "" {
		apiError(w, http.StatusBadRequest, "missing ?program= query parameter")
		return
	}
	if _, err := apps.Get(program); err != nil {
		apiError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if s.isDraining() {
		apiError(w, http.StatusServiceUnavailable, "daemon is draining")
		return
	}
	res, err := s.corpora.Ingest(name, program, s.cfg.Shards, r.Body)
	if err != nil {
		apiError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Service) handleCorpora(w http.ResponseWriter, r *http.Request) {
	infos, err := s.corpora.List()
	if err != nil {
		apiError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if infos == nil {
		infos = []CorpusInfo{}
	}
	writeJSON(w, http.StatusOK, infos)
}

// healthView is the GET /v1/healthz payload.
type healthView struct {
	State      string         `json:"state"` // "ok" or "draining"
	UptimeMS   int64          `json:"uptime_ms"`
	QueueDepth int            `json:"queue_depth"`
	Runners    int            `json:"runners"`
	QueueSlots int            `json:"queue_slots"`
	Jobs       map[string]int `json:"jobs"`
	Dispatch   int            `json:"dispatch_workers"`
}

func (s *Service) handleHealth(w http.ResponseWriter, r *http.Request) {
	hv := healthView{
		State:      "ok",
		UptimeMS:   time.Since(s.started).Milliseconds(),
		QueueDepth: s.queue.Len(),
		Runners:    s.cfg.Runners,
		QueueSlots: s.cfg.QueueSlots,
		Jobs:       map[string]int{},
		Dispatch:   len(s.cfg.WorkerAddrs),
	}
	s.mu.Lock()
	if s.draining {
		hv.State = "draining"
	}
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	for _, id := range ids {
		if j := s.job(id); j != nil {
			hv.Jobs[string(j.State())]++
		}
	}
	writeJSON(w, http.StatusOK, hv)
}

// MarshalSpec pretty-prints a spec with its kind stamped — the standalone
// form tracecheck validates.
func MarshalSpec(spec JobSpec) ([]byte, error) {
	spec.Kind = SpecKind
	return json.MarshalIndent(spec, "", "  ")
}

// retryAfter parses a Retry-After header (seconds form) for the loadtest
// client's backoff.
func retryAfter(h http.Header) time.Duration {
	if v := h.Get("Retry-After"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return time.Duration(n) * time.Second
		}
	}
	return time.Second
}
