package minic

import (
	"strings"
	"testing"
)

func parseOK(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse failed: %v\nsource:\n%s", err, src)
	}
	return prog
}

func TestParseMinimal(t *testing.T) {
	prog := parseOK(t, `func main() int { return 0; }`)
	if len(prog.Funcs) != 1 || prog.Funcs[0].Name != "main" {
		t.Fatalf("unexpected program: %+v", prog)
	}
	if prog.Funcs[0].Ret != TypeInt {
		t.Errorf("main return type = %v, want int", prog.Funcs[0].Ret)
	}
}

func TestParseGlobals(t *testing.T) {
	prog := parseOK(t, `
global int counter;
global string name = "ab";
func main() int { return 0; }
`)
	if len(prog.Globals) != 2 {
		t.Fatalf("got %d globals, want 2", len(prog.Globals))
	}
	if prog.Globals[0].Name != "counter" || prog.Globals[0].Type != TypeInt {
		t.Errorf("global 0: %+v", prog.Globals[0])
	}
	if prog.Globals[1].Init == nil {
		t.Errorf("global 1 missing initializer")
	}
}

func TestParseParams(t *testing.T) {
	prog := parseOK(t, `func f(int a, string b, buf c) void { return; } func main() int { return 0; }`)
	f := prog.Func("f")
	if f == nil {
		t.Fatal("missing func f")
	}
	want := []Type{TypeInt, TypeString, TypeBuf}
	for i, prm := range f.Params {
		if prm.Type != want[i] {
			t.Errorf("param %d type = %v, want %v", i, prm.Type, want[i])
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	prog := parseOK(t, `func main() int { int x = 1 + 2 * 3; return x; }`)
	decl := prog.Funcs[0].Body.Stmts[0].(*VarDeclStmt)
	bin, ok := decl.Init.(*BinExpr)
	if !ok || bin.Op != OpAdd {
		t.Fatalf("top op = %v, want +", decl.Init)
	}
	if r, ok := bin.R.(*BinExpr); !ok || r.Op != OpMul {
		t.Errorf("rhs = %v, want * expression", bin.R)
	}
}

func TestParseLogicalPrecedence(t *testing.T) {
	// a || b && c parses as a || (b && c).
	prog := parseOK(t, `func main() int { return 1 || 2 && 3; }`)
	ret := prog.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	or, ok := ret.Value.(*BinExpr)
	if !ok || or.Op != OpOr {
		t.Fatalf("top op: %v", ret.Value)
	}
	if and, ok := or.R.(*BinExpr); !ok || and.Op != OpAnd {
		t.Errorf("rhs op: %v", or.R)
	}
}

func TestParseIfElseChain(t *testing.T) {
	prog := parseOK(t, `
func main() int {
  int x = 0;
  if (x > 0) { x = 1; } else if (x < 0) { x = 2; } else { x = 3; }
  return x;
}`)
	ifst := prog.Funcs[0].Body.Stmts[1].(*IfStmt)
	if _, ok := ifst.Else.(*IfStmt); !ok {
		t.Errorf("else branch = %T, want *IfStmt", ifst.Else)
	}
}

func TestParseLoops(t *testing.T) {
	prog := parseOK(t, `
func main() int {
  int s = 0;
  for (int i = 0; i < 10; i = i + 1) { s = s + i; }
  while (s > 0) { s = s - 1; if (s == 2) { break; } continue; }
  for (;;) { break; }
  return s;
}`)
	body := prog.Funcs[0].Body.Stmts
	if _, ok := body[1].(*ForStmt); !ok {
		t.Errorf("stmt 1 = %T, want for", body[1])
	}
	if _, ok := body[2].(*WhileStmt); !ok {
		t.Errorf("stmt 2 = %T, want while", body[2])
	}
	inf := body[3].(*ForStmt)
	if inf.Init != nil || inf.Cond != nil || inf.Post != nil {
		t.Errorf("for(;;) clauses should be nil: %+v", inf)
	}
}

func TestParseBufDecl(t *testing.T) {
	prog := parseOK(t, `func main() int { buf b[512]; bufwrite(b, 0, 65); return bufread(b, 0); }`)
	bd := prog.Funcs[0].Body.Stmts[0].(*BufDeclStmt)
	if bd.Cap != 512 {
		t.Errorf("cap = %d, want 512", bd.Cap)
	}
}

func TestParseCallArgs(t *testing.T) {
	prog := parseOK(t, `func f(int a, int b) int { return a + b; } func main() int { return f(1, 2 + 3); }`)
	ret := prog.Func("main").Body.Stmts[0].(*ReturnStmt)
	call := ret.Value.(*CallExpr)
	if call.Name != "f" || len(call.Args) != 2 {
		t.Fatalf("call = %+v", call)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"func main() int { return 0 }",              // missing semicolon
		"func main() int { if x > 0 {} return 0; }", // missing parens
		"func main() { return; }",                   // missing return type
		"func main() int { buf b[0]; return 0; }",   // zero-size buffer
		"func main() int { buf b[-1]; return 0; }",
		"global buf b; func main() int { return 0; }", // global buffer
		"int x;",                      // top-level non-declaration
		"func main() int { return 0;", // unclosed block
		"func main() int { int = 3; return 0; }",
		"func main() int { 1 +; return 0; }",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := Parse("func main() int {\n  wrong syntax here ===;\n}")
	if err == nil {
		t.Fatal("expected error")
	}
	var serr *SyntaxError
	if !asSyntaxError(err, &serr) {
		t.Fatalf("error type %T, want *SyntaxError", err)
	}
	if serr.Pos.Line != 2 {
		t.Errorf("error line = %d, want 2", serr.Pos.Line)
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Errorf("error message %q lacks position", err.Error())
	}
}

func asSyntaxError(err error, out **SyntaxError) bool {
	se, ok := err.(*SyntaxError)
	if ok {
		*out = se
	}
	return ok
}
