package minic

import (
	"testing"
)

// FuzzLex: the lexer must never panic or loop on arbitrary input.
func FuzzLex(f *testing.F) {
	seeds := []string{
		"",
		"func main() int { return 0; }",
		`global string s = "x\n\t\"";`,
		"'a' '\\n' \"unterminated",
		"/* nested /* block */",
		"a && b || !c == d != e <= f >= g",
		"12345678901234567890123456789",
		"\x00\xff\x80",
		"int int int ((({{{",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := Lex(src)
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].Kind != TokenEOF {
			t.Fatalf("lexer succeeded without EOF terminator: %v", toks)
		}
	})
}

// FuzzParseAndCheck: the full front end must never panic; successfully
// checked programs must also compile positions consistently.
func FuzzParseAndCheck(f *testing.F) {
	seeds := []string{
		"func main() int { return 0; }",
		"global int g = 1; func main() int { return g; }",
		"func f(int a, string b) void { return; } func main() int { f(1, \"x\"); return 0; }",
		"func main() int { buf b[8]; bufwrite(b, 0, 'x'); return bufread(b, 0); }",
		"func main() int { for (int i = 0; i < 3; i = i + 1) { if (i == 1) { continue; } } return 0; }",
		"func main() int { while (1) { break; } return 0; }",
		"func main() int { return 1 + 2 * 3 / 4 % 5 - 6; }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := ParseAndCheck(src)
		if err != nil {
			return
		}
		// A checked program always has main, and statistics never panic.
		if prog.Func("main") == nil {
			t.Fatal("checked program lacks main")
		}
		_ = Stats(prog, src)
	})
}
