package minic

import "strings"

// ProgramStats summarizes a MiniC program in the shape of Table I of the
// paper: Source Lines of Code, external calls, internal user-level calls,
// global-variable instances, and function-parameter instances.
//
// Definitions used by this reproduction (the paper measures C binaries with
// Fjalar; we measure MiniC sources with the same intent):
//
//   - SLOC: non-blank, non-comment source lines.
//   - ExternalCalls: builtin call sites (MiniC builtins stand in for libc
//     and system calls).
//   - InternalCalls: user-defined function call sites.
//   - GlobalVars: global-variable instances observable by the monitor —
//     each global is logged separately at every instrumented location
//     (2 per function: entry and exit), matching the paper's rule that
//     "the same variable instrumented at different locations is considered
//     separately".
//   - Params: function-parameter instances across all call sites (every
//     call binds each parameter once).
type ProgramStats struct {
	Name          string
	SLOC          int
	ExternalCalls int
	InternalCalls int
	GlobalVars    int
	Params        int
	Functions     int
}

// SourceLines counts non-blank, non-comment lines in src. Block comments
// spanning whole lines are excluded; a line containing both code and a
// comment counts as code.
func SourceLines(src string) int {
	count := 0
	inBlock := false
	for _, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if inBlock {
			if idx := strings.Index(line, "*/"); idx >= 0 {
				inBlock = false
				line = strings.TrimSpace(line[idx+2:])
			} else {
				continue
			}
		}
		// Strip line comments.
		if idx := strings.Index(line, "//"); idx >= 0 {
			line = strings.TrimSpace(line[:idx])
		}
		// Strip a trailing block comment opener (only the simple,
		// single-opener case; adequate for source statistics).
		if idx := strings.Index(line, "/*"); idx >= 0 {
			if !strings.Contains(line[idx:], "*/") {
				inBlock = true
			}
			line = strings.TrimSpace(line[:idx])
		}
		if line != "" {
			count++
		}
	}
	return count
}

// Stats computes ProgramStats for a checked program and its source text.
func Stats(prog *Program, src string) ProgramStats {
	st := ProgramStats{
		Name:      prog.Name,
		SLOC:      SourceLines(src),
		Functions: len(prog.Funcs),
	}
	callParams := make(map[string]int, len(prog.Funcs))
	for _, f := range prog.Funcs {
		callParams[f.Name] = len(f.Params)
	}
	WalkProgram(prog, func(n Node) {
		call, ok := n.(*CallExpr)
		if !ok {
			return
		}
		if call.Builtin != BuiltinNone {
			st.ExternalCalls++
			return
		}
		st.InternalCalls++
		st.Params += callParams[call.Name]
	})
	// Two instrumented locations (entry + exit) per function; every global
	// is observable at each.
	st.GlobalVars = len(prog.Globals) * 2 * len(prog.Funcs)
	return st
}

// WalkProgram invokes fn on every AST node of the program in source order.
func WalkProgram(prog *Program, fn func(Node)) {
	for _, g := range prog.Globals {
		fn(g)
		if g.Init != nil {
			walkExpr(g.Init, fn)
		}
	}
	for _, f := range prog.Funcs {
		fn(f)
		walkStmt(f.Body, fn)
	}
}

func walkStmt(st Stmt, fn func(Node)) {
	if st == nil {
		return
	}
	fn(st)
	switch s := st.(type) {
	case *BlockStmt:
		for _, inner := range s.Stmts {
			walkStmt(inner, fn)
		}
	case *VarDeclStmt:
		if s.Init != nil {
			walkExpr(s.Init, fn)
		}
	case *AssignStmt:
		walkExpr(s.Value, fn)
	case *IfStmt:
		walkExpr(s.Cond, fn)
		walkStmt(s.Then, fn)
		walkStmt(s.Else, fn)
	case *WhileStmt:
		walkExpr(s.Cond, fn)
		walkStmt(s.Body, fn)
	case *ForStmt:
		walkStmt(s.Init, fn)
		if s.Cond != nil {
			walkExpr(s.Cond, fn)
		}
		walkStmt(s.Post, fn)
		walkStmt(s.Body, fn)
	case *ReturnStmt:
		if s.Value != nil {
			walkExpr(s.Value, fn)
		}
	case *ExprStmt:
		walkExpr(s.X, fn)
	}
}

func walkExpr(e Expr, fn func(Node)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *BinExpr:
		walkExpr(x.L, fn)
		walkExpr(x.R, fn)
	case *UnaryExpr:
		walkExpr(x.X, fn)
	case *CallExpr:
		for _, arg := range x.Args {
			walkExpr(arg, fn)
		}
	}
}
