// Package minic implements a small C-like imperative language used as the
// program-under-test substrate for the StatSym reproduction. The paper
// analyzes real C applications (polymorph, CTree, Grep, thttpd); this
// repository re-authors those applications in MiniC so that the program
// monitor, statistical analysis, and symbolic execution modules can operate
// on them without an LLVM/Valgrind toolchain.
//
// The package provides a lexer, a recursive-descent parser producing a typed
// AST, a semantic checker, and static program statistics (used to reproduce
// Table I of the paper).
package minic

import "fmt"

// TokenKind enumerates lexical token categories.
type TokenKind int

// Token kinds. The zero value is TokenInvalid so that uninitialized tokens
// are never mistaken for valid ones.
const (
	TokenInvalid TokenKind = iota
	TokenEOF
	TokenIdent
	TokenInt
	TokenString
	TokenChar

	// Keywords.
	TokenKwGlobal
	TokenKwFunc
	TokenKwInt
	TokenKwString
	TokenKwVoid
	TokenKwBuf
	TokenKwIf
	TokenKwElse
	TokenKwWhile
	TokenKwFor
	TokenKwReturn
	TokenKwBreak
	TokenKwContinue

	// Punctuation and operators.
	TokenLParen
	TokenRParen
	TokenLBrace
	TokenRBrace
	TokenLBracket
	TokenRBracket
	TokenComma
	TokenSemicolon
	TokenAssign
	TokenPlus
	TokenMinus
	TokenStar
	TokenSlash
	TokenPercent
	TokenEq
	TokenNeq
	TokenLt
	TokenLe
	TokenGt
	TokenGe
	TokenAndAnd
	TokenOrOr
	TokenNot
)

var tokenNames = map[TokenKind]string{
	TokenInvalid:    "invalid",
	TokenEOF:        "EOF",
	TokenIdent:      "identifier",
	TokenInt:        "int literal",
	TokenString:     "string literal",
	TokenChar:       "char literal",
	TokenKwGlobal:   "global",
	TokenKwFunc:     "func",
	TokenKwInt:      "int",
	TokenKwString:   "string",
	TokenKwVoid:     "void",
	TokenKwBuf:      "buf",
	TokenKwIf:       "if",
	TokenKwElse:     "else",
	TokenKwWhile:    "while",
	TokenKwFor:      "for",
	TokenKwReturn:   "return",
	TokenKwBreak:    "break",
	TokenKwContinue: "continue",
	TokenLParen:     "(",
	TokenRParen:     ")",
	TokenLBrace:     "{",
	TokenRBrace:     "}",
	TokenLBracket:   "[",
	TokenRBracket:   "]",
	TokenComma:      ",",
	TokenSemicolon:  ";",
	TokenAssign:     "=",
	TokenPlus:       "+",
	TokenMinus:      "-",
	TokenStar:       "*",
	TokenSlash:      "/",
	TokenPercent:    "%",
	TokenEq:         "==",
	TokenNeq:        "!=",
	TokenLt:         "<",
	TokenLe:         "<=",
	TokenGt:         ">",
	TokenGe:         ">=",
	TokenAndAnd:     "&&",
	TokenOrOr:       "||",
	TokenNot:        "!",
}

// String returns a human-readable name for the token kind.
func (k TokenKind) String() string {
	if s, ok := tokenNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokenKind(%d)", int(k))
}

var keywords = map[string]TokenKind{
	"global":   TokenKwGlobal,
	"func":     TokenKwFunc,
	"int":      TokenKwInt,
	"string":   TokenKwString,
	"void":     TokenKwVoid,
	"buf":      TokenKwBuf,
	"if":       TokenKwIf,
	"else":     TokenKwElse,
	"while":    TokenKwWhile,
	"for":      TokenKwFor,
	"return":   TokenKwReturn,
	"break":    TokenKwBreak,
	"continue": TokenKwContinue,
}

// Pos identifies a source location (1-based line and column).
type Pos struct {
	Line int
	Col  int
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a single lexical token with its source position.
type Token struct {
	Kind TokenKind
	Text string // raw text for identifiers; decoded value for strings
	Int  int64  // value for int and char literals
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case TokenIdent:
		return fmt.Sprintf("identifier %q", t.Text)
	case TokenInt:
		return fmt.Sprintf("int %d", t.Int)
	case TokenString:
		return fmt.Sprintf("string %q", t.Text)
	case TokenChar:
		return fmt.Sprintf("char %q", string(rune(t.Int)))
	default:
		return t.Kind.String()
	}
}
