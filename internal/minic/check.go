package minic

import "fmt"

// SemanticError reports a semantic-analysis failure with a source position.
type SemanticError struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *SemanticError) Error() string {
	return fmt.Sprintf("%s: %s", e.Pos, e.Msg)
}

// Check resolves identifiers, assigns frame slots and global indices, and
// type-checks the program in place.
func Check(prog *Program) error {
	c := &checker{prog: prog, funcs: make(map[string]*FuncDecl)}
	return c.run()
}

type localVar struct {
	name string
	typ  Type
	slot int
}

type scope struct {
	parent *scope
	vars   map[string]localVar
}

func (s *scope) lookup(name string) (localVar, bool) {
	for cur := s; cur != nil; cur = cur.parent {
		if v, ok := cur.vars[name]; ok {
			return v, true
		}
	}
	return localVar{}, false
}

type checker struct {
	prog    *Program
	funcs   map[string]*FuncDecl
	globals map[string]*GlobalDecl

	// Per-function state.
	fn       *FuncDecl
	scope    *scope
	nextSlot int
	loopDep  int
}

func (c *checker) errf(pos Pos, format string, args ...any) error {
	return &SemanticError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (c *checker) run() error {
	c.globals = make(map[string]*GlobalDecl, len(c.prog.Globals))
	for i, g := range c.prog.Globals {
		if _, dup := c.globals[g.Name]; dup {
			return c.errf(g.Pos, "duplicate global %q", g.Name)
		}
		if IsBuiltinName(g.Name) {
			return c.errf(g.Pos, "global %q shadows a builtin", g.Name)
		}
		g.Index = i
		c.globals[g.Name] = g
	}
	for _, f := range c.prog.Funcs {
		if _, dup := c.funcs[f.Name]; dup {
			return c.errf(f.Pos, "duplicate function %q", f.Name)
		}
		if IsBuiltinName(f.Name) {
			return c.errf(f.Pos, "function %q shadows a builtin", f.Name)
		}
		c.funcs[f.Name] = f
	}
	if c.prog.Func("main") == nil {
		return c.errf(Pos{Line: 1, Col: 1}, "program has no main function")
	}
	// Global initializers must be literals or expressions over other
	// globals; they are checked in the empty-function context.
	for _, g := range c.prog.Globals {
		if g.Init == nil {
			continue
		}
		c.fn = nil
		c.scope = &scope{vars: map[string]localVar{}}
		t, err := c.checkExpr(g.Init)
		if err != nil {
			return err
		}
		if t != g.Type {
			return c.errf(g.Pos, "global %q initializer has type %s, want %s", g.Name, t, g.Type)
		}
	}
	for _, f := range c.prog.Funcs {
		if err := c.checkFunc(f); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkFunc(f *FuncDecl) error {
	c.fn = f
	c.scope = &scope{vars: map[string]localVar{}}
	c.nextSlot = 0
	c.loopDep = 0
	for _, prm := range f.Params {
		if _, dup := c.scope.vars[prm.Name]; dup {
			return c.errf(prm.Pos, "duplicate parameter %q", prm.Name)
		}
		c.scope.vars[prm.Name] = localVar{name: prm.Name, typ: prm.Type, slot: c.nextSlot}
		c.nextSlot++
	}
	if err := c.checkBlock(f.Body); err != nil {
		return err
	}
	f.NumLocals = c.nextSlot
	return nil
}

func (c *checker) pushScope() { c.scope = &scope{parent: c.scope, vars: map[string]localVar{}} }
func (c *checker) popScope()  { c.scope = c.scope.parent }

func (c *checker) declare(pos Pos, name string, typ Type) (int, error) {
	if _, dup := c.scope.vars[name]; dup {
		return 0, c.errf(pos, "duplicate variable %q in this scope", name)
	}
	if IsBuiltinName(name) {
		return 0, c.errf(pos, "variable %q shadows a builtin", name)
	}
	slot := c.nextSlot
	c.nextSlot++
	c.scope.vars[name] = localVar{name: name, typ: typ, slot: slot}
	return slot, nil
}

func (c *checker) checkBlock(b *BlockStmt) error {
	c.pushScope()
	defer c.popScope()
	for _, st := range b.Stmts {
		if err := c.checkStmt(st); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(st Stmt) error {
	switch s := st.(type) {
	case *BlockStmt:
		return c.checkBlock(s)
	case *VarDeclStmt:
		if s.Init != nil {
			t, err := c.checkExpr(s.Init)
			if err != nil {
				return err
			}
			if t != s.Type {
				return c.errf(s.Pos, "cannot initialize %s %q with %s", s.Type, s.Name, t)
			}
		}
		slot, err := c.declare(s.Pos, s.Name, s.Type)
		if err != nil {
			return err
		}
		s.Slot = slot
		return nil
	case *BufDeclStmt:
		slot, err := c.declare(s.Pos, s.Name, TypeBuf)
		if err != nil {
			return err
		}
		s.Slot = slot
		return nil
	case *AssignStmt:
		t, err := c.checkExpr(s.Value)
		if err != nil {
			return err
		}
		if v, ok := c.scope.lookup(s.Name); ok {
			if v.typ == TypeBuf {
				return c.errf(s.Pos, "cannot assign to buffer %q", s.Name)
			}
			if v.typ != t {
				return c.errf(s.Pos, "cannot assign %s to %s %q", t, v.typ, s.Name)
			}
			s.IsGlobal = false
			s.Slot = v.slot
			s.VarType = v.typ
			return nil
		}
		if g, ok := c.globals[s.Name]; ok {
			if g.Type != t {
				return c.errf(s.Pos, "cannot assign %s to global %s %q", t, g.Type, s.Name)
			}
			s.IsGlobal = true
			s.Slot = g.Index
			s.VarType = g.Type
			return nil
		}
		return c.errf(s.Pos, "assignment to undeclared variable %q", s.Name)
	case *IfStmt:
		t, err := c.checkExpr(s.Cond)
		if err != nil {
			return err
		}
		if t != TypeInt {
			return c.errf(s.Pos, "if condition must be int, got %s", t)
		}
		if err := c.checkBlock(s.Then); err != nil {
			return err
		}
		if s.Else != nil {
			return c.checkStmt(s.Else)
		}
		return nil
	case *WhileStmt:
		t, err := c.checkExpr(s.Cond)
		if err != nil {
			return err
		}
		if t != TypeInt {
			return c.errf(s.Pos, "while condition must be int, got %s", t)
		}
		c.loopDep++
		defer func() { c.loopDep-- }()
		return c.checkBlock(s.Body)
	case *ForStmt:
		c.pushScope()
		defer c.popScope()
		if s.Init != nil {
			if err := c.checkStmt(s.Init); err != nil {
				return err
			}
		}
		if s.Cond != nil {
			t, err := c.checkExpr(s.Cond)
			if err != nil {
				return err
			}
			if t != TypeInt {
				return c.errf(s.Pos, "for condition must be int, got %s", t)
			}
		}
		if s.Post != nil {
			if err := c.checkStmt(s.Post); err != nil {
				return err
			}
		}
		c.loopDep++
		defer func() { c.loopDep-- }()
		return c.checkBlock(s.Body)
	case *ReturnStmt:
		if s.Value == nil {
			if c.fn.Ret != TypeVoid {
				return c.errf(s.Pos, "function %q must return %s", c.fn.Name, c.fn.Ret)
			}
			return nil
		}
		t, err := c.checkExpr(s.Value)
		if err != nil {
			return err
		}
		if c.fn.Ret == TypeVoid {
			return c.errf(s.Pos, "void function %q cannot return a value", c.fn.Name)
		}
		if t != c.fn.Ret {
			return c.errf(s.Pos, "function %q returns %s, got %s", c.fn.Name, c.fn.Ret, t)
		}
		return nil
	case *BreakStmt:
		if c.loopDep == 0 {
			return c.errf(s.Pos, "break outside loop")
		}
		return nil
	case *ContinueStmt:
		if c.loopDep == 0 {
			return c.errf(s.Pos, "continue outside loop")
		}
		return nil
	case *ExprStmt:
		_, err := c.checkExpr(s.X)
		return err
	default:
		return c.errf(st.NodePos(), "unknown statement %T", st)
	}
}

func (c *checker) checkExpr(e Expr) (Type, error) {
	switch x := e.(type) {
	case *IntLit:
		return TypeInt, nil
	case *StringLit:
		return TypeString, nil
	case *Ident:
		if v, ok := c.scope.lookup(x.Name); ok {
			x.IsGlobal = false
			x.Slot = v.slot
			x.Type = v.typ
			return v.typ, nil
		}
		if g, ok := c.globals[x.Name]; ok {
			x.IsGlobal = true
			x.Slot = g.Index
			x.Type = g.Type
			return g.Type, nil
		}
		return TypeInvalid, c.errf(x.Pos, "undeclared variable %q", x.Name)
	case *UnaryExpr:
		t, err := c.checkExpr(x.X)
		if err != nil {
			return TypeInvalid, err
		}
		if t != TypeInt {
			return TypeInvalid, c.errf(x.Pos, "unary %s requires int, got %s", x.Op, t)
		}
		return TypeInt, nil
	case *BinExpr:
		lt, err := c.checkExpr(x.L)
		if err != nil {
			return TypeInvalid, err
		}
		rt, err := c.checkExpr(x.R)
		if err != nil {
			return TypeInvalid, err
		}
		switch {
		case x.Op == OpAdd && lt == TypeString && rt == TypeString:
			x.Type = TypeString // string concatenation
		case x.Op.IsComparison():
			if lt != rt {
				return TypeInvalid, c.errf(x.Pos, "comparison %s of mismatched types %s and %s", x.Op, lt, rt)
			}
			if lt == TypeBuf {
				return TypeInvalid, c.errf(x.Pos, "buffers cannot be compared")
			}
			if lt == TypeString && x.Op != OpEq && x.Op != OpNeq {
				return TypeInvalid, c.errf(x.Pos, "strings support only == and !=, not %s", x.Op)
			}
			x.Type = TypeInt
		default:
			if lt != TypeInt || rt != TypeInt {
				return TypeInvalid, c.errf(x.Pos, "operator %s requires int operands, got %s and %s", x.Op, lt, rt)
			}
			x.Type = TypeInt
		}
		return x.Type, nil
	case *CallExpr:
		return c.checkCall(x)
	default:
		return TypeInvalid, c.errf(e.NodePos(), "unknown expression %T", e)
	}
}

func (c *checker) checkCall(x *CallExpr) (Type, error) {
	if info, ok := builtinSigs[x.Name]; ok {
		sig := info.sig
		if len(x.Args) != len(sig.params) {
			return TypeInvalid, c.errf(x.Pos, "builtin %s expects %d arguments, got %d",
				x.Name, len(sig.params), len(x.Args))
		}
		for i, arg := range x.Args {
			t, err := c.checkExpr(arg)
			if err != nil {
				return TypeInvalid, err
			}
			want := sig.params[i]
			if want == TypeInvalid { // any (print)
				continue
			}
			if t != want {
				return TypeInvalid, c.errf(x.Pos, "builtin %s argument %d has type %s, want %s",
					x.Name, i+1, t, want)
			}
		}
		x.Builtin = info.id
		x.Type = sig.ret
		return sig.ret, nil
	}
	fn, ok := c.funcs[x.Name]
	if !ok {
		return TypeInvalid, c.errf(x.Pos, "call to undefined function %q", x.Name)
	}
	if len(x.Args) != len(fn.Params) {
		return TypeInvalid, c.errf(x.Pos, "function %s expects %d arguments, got %d",
			x.Name, len(fn.Params), len(x.Args))
	}
	for i, arg := range x.Args {
		t, err := c.checkExpr(arg)
		if err != nil {
			return TypeInvalid, err
		}
		if t != fn.Params[i].Type {
			return TypeInvalid, c.errf(x.Pos, "function %s argument %d (%s) has type %s, want %s",
				x.Name, i+1, fn.Params[i].Name, t, fn.Params[i].Type)
		}
	}
	x.Fn = fn
	x.Type = fn.Ret
	return fn.Ret, nil
}
