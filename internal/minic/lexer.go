package minic

import (
	"fmt"
	"strconv"
	"strings"
)

// SyntaxError reports a lexing or parsing failure with its source position.
type SyntaxError struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("%s: %s", e.Pos, e.Msg)
}

// Lexer converts MiniC source text into a token stream.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Lex tokenizes the entire source, returning the token list terminated by a
// TokenEOF token.
func Lex(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		tok, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, tok)
		if tok.Kind == TokenEOF {
			return toks, nil
		}
	}
}

func (lx *Lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peek2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) skipSpaceAndComments() error {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			start := lx.pos()
			lx.advance()
			lx.advance()
			closed := false
			for lx.off < len(lx.src) {
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return &SyntaxError{Pos: start, Msg: "unterminated block comment"}
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token in the stream.
func (lx *Lexer) Next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: TokenEOF, Pos: pos}, nil
	}
	c := lx.peek()
	switch {
	case isIdentStart(c):
		return lx.lexIdent(pos), nil
	case isDigit(c):
		return lx.lexInt(pos)
	case c == '"':
		return lx.lexString(pos)
	case c == '\'':
		return lx.lexChar(pos)
	}
	lx.advance()
	two := func(kind TokenKind) (Token, error) {
		lx.advance()
		return Token{Kind: kind, Pos: pos}, nil
	}
	switch c {
	case '(':
		return Token{Kind: TokenLParen, Pos: pos}, nil
	case ')':
		return Token{Kind: TokenRParen, Pos: pos}, nil
	case '{':
		return Token{Kind: TokenLBrace, Pos: pos}, nil
	case '}':
		return Token{Kind: TokenRBrace, Pos: pos}, nil
	case '[':
		return Token{Kind: TokenLBracket, Pos: pos}, nil
	case ']':
		return Token{Kind: TokenRBracket, Pos: pos}, nil
	case ',':
		return Token{Kind: TokenComma, Pos: pos}, nil
	case ';':
		return Token{Kind: TokenSemicolon, Pos: pos}, nil
	case '+':
		return Token{Kind: TokenPlus, Pos: pos}, nil
	case '-':
		return Token{Kind: TokenMinus, Pos: pos}, nil
	case '*':
		return Token{Kind: TokenStar, Pos: pos}, nil
	case '/':
		return Token{Kind: TokenSlash, Pos: pos}, nil
	case '%':
		return Token{Kind: TokenPercent, Pos: pos}, nil
	case '=':
		if lx.peek() == '=' {
			return two(TokenEq)
		}
		return Token{Kind: TokenAssign, Pos: pos}, nil
	case '!':
		if lx.peek() == '=' {
			return two(TokenNeq)
		}
		return Token{Kind: TokenNot, Pos: pos}, nil
	case '<':
		if lx.peek() == '=' {
			return two(TokenLe)
		}
		return Token{Kind: TokenLt, Pos: pos}, nil
	case '>':
		if lx.peek() == '=' {
			return two(TokenGe)
		}
		return Token{Kind: TokenGt, Pos: pos}, nil
	case '&':
		if lx.peek() == '&' {
			return two(TokenAndAnd)
		}
		return Token{}, &SyntaxError{Pos: pos, Msg: "expected && (single & is not an operator)"}
	case '|':
		if lx.peek() == '|' {
			return two(TokenOrOr)
		}
		return Token{}, &SyntaxError{Pos: pos, Msg: "expected || (single | is not an operator)"}
	}
	return Token{}, &SyntaxError{Pos: pos, Msg: fmt.Sprintf("unexpected character %q", string(c))}
}

func (lx *Lexer) lexIdent(pos Pos) Token {
	start := lx.off
	for lx.off < len(lx.src) && isIdentPart(lx.peek()) {
		lx.advance()
	}
	text := lx.src[start:lx.off]
	if kw, ok := keywords[text]; ok {
		return Token{Kind: kw, Text: text, Pos: pos}
	}
	return Token{Kind: TokenIdent, Text: text, Pos: pos}
}

func (lx *Lexer) lexInt(pos Pos) (Token, error) {
	start := lx.off
	for lx.off < len(lx.src) && isDigit(lx.peek()) {
		lx.advance()
	}
	text := lx.src[start:lx.off]
	v, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return Token{}, &SyntaxError{Pos: pos, Msg: fmt.Sprintf("invalid integer literal %q", text)}
	}
	return Token{Kind: TokenInt, Text: text, Int: v, Pos: pos}, nil
}

func (lx *Lexer) lexEscape(pos Pos) (byte, error) {
	if lx.off >= len(lx.src) {
		return 0, &SyntaxError{Pos: pos, Msg: "unterminated escape sequence"}
	}
	c := lx.advance()
	switch c {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case '\\':
		return '\\', nil
	case '\'':
		return '\'', nil
	case '"':
		return '"', nil
	}
	return 0, &SyntaxError{Pos: pos, Msg: fmt.Sprintf("unknown escape sequence \\%s", string(c))}
}

func (lx *Lexer) lexString(pos Pos) (Token, error) {
	lx.advance() // opening quote
	var sb strings.Builder
	for {
		if lx.off >= len(lx.src) {
			return Token{}, &SyntaxError{Pos: pos, Msg: "unterminated string literal"}
		}
		c := lx.advance()
		switch c {
		case '"':
			return Token{Kind: TokenString, Text: sb.String(), Pos: pos}, nil
		case '\n':
			return Token{}, &SyntaxError{Pos: pos, Msg: "newline in string literal"}
		case '\\':
			e, err := lx.lexEscape(pos)
			if err != nil {
				return Token{}, err
			}
			sb.WriteByte(e)
		default:
			sb.WriteByte(c)
		}
	}
}

func (lx *Lexer) lexChar(pos Pos) (Token, error) {
	lx.advance() // opening quote
	if lx.off >= len(lx.src) {
		return Token{}, &SyntaxError{Pos: pos, Msg: "unterminated char literal"}
	}
	var v byte
	c := lx.advance()
	if c == '\\' {
		e, err := lx.lexEscape(pos)
		if err != nil {
			return Token{}, err
		}
		v = e
	} else if c == '\'' {
		return Token{}, &SyntaxError{Pos: pos, Msg: "empty char literal"}
	} else {
		v = c
	}
	if lx.off >= len(lx.src) || lx.advance() != '\'' {
		return Token{}, &SyntaxError{Pos: pos, Msg: "unterminated char literal"}
	}
	return Token{Kind: TokenChar, Int: int64(v), Pos: pos}, nil
}
