package minic

import "testing"

func TestSourceLines(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want int
	}{
		{"empty", "", 0},
		{"blank lines", "\n\n  \n", 0},
		{"code", "a\nb\nc\n", 3},
		{"line comments", "// only\ncode // trailing\n// more\n", 1},
		{"block comment lines", "/*\nall\ncomment\n*/\ncode\n", 1},
		{"inline block", "a /* c */ b\n", 1},
		{"block opener with code", "code /* starts\nstill comment\n*/\n", 1},
		{"mixed", "x\n\n// c\ny /* b */\n/* m\nm */\nz\n", 3},
	}
	for _, tt := range tests {
		if got := SourceLines(tt.src); got != tt.want {
			t.Errorf("%s: SourceLines = %d, want %d", tt.name, got, tt.want)
		}
	}
}

func TestProgramStats(t *testing.T) {
	src := `
global int g1;
global string g2;

// helper doubles its input
func double(int x) int {
  return x * 2;
}

func main() int {
  int a = double(3);      // internal call
  int b = double(a);      // internal call
  print(b);               // external (builtin) call
  g1 = len(g2);           // external call
  return g1 + b;
}
`
	prog := MustParse("t", src)
	st := Stats(prog, src)
	if st.Functions != 2 {
		t.Errorf("functions = %d", st.Functions)
	}
	if st.InternalCalls != 2 {
		t.Errorf("internal calls = %d, want 2", st.InternalCalls)
	}
	if st.ExternalCalls != 2 {
		t.Errorf("external calls = %d, want 2 (print, len)", st.ExternalCalls)
	}
	// Params: double has 1 param, called twice => 2 bound instances.
	if st.Params != 2 {
		t.Errorf("params = %d, want 2", st.Params)
	}
	// GlobalVars: 2 globals x 2 locations x 2 functions.
	if st.GlobalVars != 8 {
		t.Errorf("global instances = %d, want 8", st.GlobalVars)
	}
	// 12 non-blank, non-comment lines (2 globals, 3 for double, 7 for
	// main including braces).
	if st.SLOC != 12 {
		t.Errorf("SLOC = %d, want 12", st.SLOC)
	}
}

func TestWalkProgramVisitsEverything(t *testing.T) {
	src := `
global int g = 1 + 2;
func f(int a) int {
  if (a > 0) { return a; } else { return -a; }
}
func main() int {
  int s = 0;
  for (int i = 0; i < 3; i = i + 1) { s = s + f(i); }
  while (s > 100) { break; }
  return s;
}`
	prog := MustParse("w", src)
	counts := map[string]int{}
	WalkProgram(prog, func(n Node) {
		switch n.(type) {
		case *GlobalDecl:
			counts["global"]++
		case *FuncDecl:
			counts["func"]++
		case *IfStmt:
			counts["if"]++
		case *ForStmt:
			counts["for"]++
		case *WhileStmt:
			counts["while"]++
		case *CallExpr:
			counts["call"]++
		case *BinExpr:
			counts["bin"]++
		case *ReturnStmt:
			counts["return"]++
		}
	})
	want := map[string]int{
		"global": 1, "func": 2, "if": 1, "for": 1, "while": 1,
		"call": 1, "return": 3,
	}
	for k, v := range want {
		if counts[k] != v {
			t.Errorf("%s nodes = %d, want %d", k, counts[k], v)
		}
	}
	if counts["bin"] < 5 {
		t.Errorf("binary expressions = %d, want >= 5", counts["bin"])
	}
}
