package minic

import (
	"strings"
	"testing"
	"testing/quick"
)

func lexKinds(t *testing.T, src string) []TokenKind {
	t.Helper()
	toks, err := Lex(src)
	if err != nil {
		t.Fatalf("Lex(%q): %v", src, err)
	}
	kinds := make([]TokenKind, len(toks))
	for i, tok := range toks {
		kinds[i] = tok.Kind
	}
	return kinds
}

func TestLexBasicTokens(t *testing.T) {
	tests := []struct {
		src  string
		want []TokenKind
	}{
		{"", []TokenKind{TokenEOF}},
		{"x", []TokenKind{TokenIdent, TokenEOF}},
		{"42", []TokenKind{TokenInt, TokenEOF}},
		{`"hi"`, []TokenKind{TokenString, TokenEOF}},
		{"'a'", []TokenKind{TokenChar, TokenEOF}},
		{"x = 1;", []TokenKind{TokenIdent, TokenAssign, TokenInt, TokenSemicolon, TokenEOF}},
		{"a == b != c", []TokenKind{TokenIdent, TokenEq, TokenIdent, TokenNeq, TokenIdent, TokenEOF}},
		{"< <= > >=", []TokenKind{TokenLt, TokenLe, TokenGt, TokenGe, TokenEOF}},
		{"&& || !", []TokenKind{TokenAndAnd, TokenOrOr, TokenNot, TokenEOF}},
		{"+ - * / %", []TokenKind{TokenPlus, TokenMinus, TokenStar, TokenSlash, TokenPercent, TokenEOF}},
		{"( ) { } [ ] , ;", []TokenKind{
			TokenLParen, TokenRParen, TokenLBrace, TokenRBrace,
			TokenLBracket, TokenRBracket, TokenComma, TokenSemicolon, TokenEOF}},
	}
	for _, tt := range tests {
		got := lexKinds(t, tt.src)
		if len(got) != len(tt.want) {
			t.Errorf("Lex(%q) = %v, want %v", tt.src, got, tt.want)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("Lex(%q)[%d] = %v, want %v", tt.src, i, got[i], tt.want[i])
			}
		}
	}
}

func TestLexKeywords(t *testing.T) {
	src := "global func int string void buf if else while for return break continue"
	want := []TokenKind{
		TokenKwGlobal, TokenKwFunc, TokenKwInt, TokenKwString, TokenKwVoid,
		TokenKwBuf, TokenKwIf, TokenKwElse, TokenKwWhile, TokenKwFor,
		TokenKwReturn, TokenKwBreak, TokenKwContinue, TokenEOF,
	}
	got := lexKinds(t, src)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("keyword %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexIntValue(t *testing.T) {
	toks, err := Lex("12345")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Int != 12345 {
		t.Errorf("int literal = %d, want 12345", toks[0].Int)
	}
}

func TestLexCharValue(t *testing.T) {
	tests := []struct {
		src  string
		want int64
	}{
		{"'a'", 'a'},
		{"'<'", '<'},
		{`'\n'`, '\n'},
		{`'\t'`, '\t'},
		{`'\0'`, 0},
		{`'\\'`, '\\'},
		{`'\''`, '\''},
	}
	for _, tt := range tests {
		toks, err := Lex(tt.src)
		if err != nil {
			t.Fatalf("Lex(%q): %v", tt.src, err)
		}
		if toks[0].Int != tt.want {
			t.Errorf("Lex(%q) = %d, want %d", tt.src, toks[0].Int, tt.want)
		}
	}
}

func TestLexStringEscapes(t *testing.T) {
	toks, err := Lex(`"a\nb\t\"c\"\\"`)
	if err != nil {
		t.Fatal(err)
	}
	want := "a\nb\t\"c\"\\"
	if toks[0].Text != want {
		t.Errorf("string literal = %q, want %q", toks[0].Text, want)
	}
}

func TestLexComments(t *testing.T) {
	src := `
// line comment
x /* block
   comment */ y // trailing
`
	got := lexKinds(t, src)
	want := []TokenKind{TokenIdent, TokenIdent, TokenEOF}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != (Pos{Line: 1, Col: 1}) {
		t.Errorf("a pos = %v, want 1:1", toks[0].Pos)
	}
	if toks[1].Pos != (Pos{Line: 2, Col: 3}) {
		t.Errorf("b pos = %v, want 2:3", toks[1].Pos)
	}
}

func TestLexErrors(t *testing.T) {
	bad := []string{
		`"unterminated`,
		"'",
		"''",
		"'ab'",
		"@",
		"a & b",
		"a | b",
		"/* unclosed",
		`"bad \q escape"`,
		"\"newline\nin string\"",
	}
	for _, src := range bad {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) succeeded, want error", src)
		}
	}
}

// TestLexNeverPanics feeds arbitrary strings to the lexer; it must return a
// token list or an error, never panic, and always terminate.
func TestLexNeverPanics(t *testing.T) {
	f := func(s string) bool {
		toks, err := Lex(s)
		if err != nil {
			return true
		}
		return len(toks) > 0 && toks[len(toks)-1].Kind == TokenEOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestLexIdentRoundTrip checks that identifier-ish strings survive lexing.
func TestLexIdentRoundTrip(t *testing.T) {
	f := func(raw string) bool {
		// Sanitize into a valid identifier.
		var sb strings.Builder
		sb.WriteByte('v')
		for _, c := range []byte(raw) {
			if isIdentPart(c) {
				sb.WriteByte(c)
			}
		}
		name := sb.String()
		if _, isKw := keywords[name]; isKw || IsBuiltinName(name) {
			return true
		}
		toks, err := Lex(name)
		if err != nil {
			return false
		}
		return toks[0].Kind == TokenIdent && toks[0].Text == name
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
