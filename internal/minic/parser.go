package minic

import "fmt"

// Parser builds an AST from a token stream using recursive descent.
type Parser struct {
	toks []Token
	pos  int
}

// Parse lexes and parses src into an unchecked Program.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	return p.parseProgram()
}

// ParseAndCheck parses src and runs semantic analysis.
func ParseAndCheck(src string) (*Program, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if err := Check(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

// MustParse parses and checks src, panicking on error. Intended for
// compile-time-constant program sources (the application registry).
func MustParse(name, src string) *Program {
	prog, err := ParseAndCheck(src)
	if err != nil {
		panic(fmt.Sprintf("minic.MustParse(%s): %v", name, err))
	}
	prog.Name = name
	return prog
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) at(kind TokenKind) bool { return p.cur().Kind == kind }

func (p *Parser) accept(kind TokenKind) bool {
	if p.at(kind) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(kind TokenKind) (Token, error) {
	if !p.at(kind) {
		return Token{}, &SyntaxError{
			Pos: p.cur().Pos,
			Msg: fmt.Sprintf("expected %s, found %s", kind, p.cur()),
		}
	}
	return p.next(), nil
}

func (p *Parser) errorf(format string, args ...any) error {
	return &SyntaxError{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *Parser) parseProgram() (*Program, error) {
	prog := &Program{}
	for !p.at(TokenEOF) {
		switch p.cur().Kind {
		case TokenKwGlobal:
			g, err := p.parseGlobal()
			if err != nil {
				return nil, err
			}
			prog.Globals = append(prog.Globals, g)
		case TokenKwFunc:
			f, err := p.parseFunc()
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, f)
		default:
			return nil, p.errorf("expected global or func declaration, found %s", p.cur())
		}
	}
	return prog, nil
}

func (p *Parser) parseType() (Type, error) {
	switch p.cur().Kind {
	case TokenKwInt:
		p.next()
		return TypeInt, nil
	case TokenKwString:
		p.next()
		return TypeString, nil
	case TokenKwBuf:
		p.next()
		return TypeBuf, nil
	default:
		return TypeInvalid, p.errorf("expected type, found %s", p.cur())
	}
}

func (p *Parser) parseGlobal() (*GlobalDecl, error) {
	start, _ := p.expect(TokenKwGlobal)
	typ, err := p.parseType()
	if err != nil {
		return nil, err
	}
	if typ == TypeBuf {
		return nil, &SyntaxError{Pos: start.Pos, Msg: "buffers may not be global"}
	}
	name, err := p.expect(TokenIdent)
	if err != nil {
		return nil, err
	}
	g := &GlobalDecl{Pos: start.Pos, Type: typ, Name: name.Text}
	if p.accept(TokenAssign) {
		g.Init, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokenSemicolon); err != nil {
		return nil, err
	}
	return g, nil
}

func (p *Parser) parseFunc() (*FuncDecl, error) {
	start, _ := p.expect(TokenKwFunc)
	name, err := p.expect(TokenIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokenLParen); err != nil {
		return nil, err
	}
	fn := &FuncDecl{Pos: start.Pos, Name: name.Text}
	for !p.at(TokenRParen) {
		if len(fn.Params) > 0 {
			if _, err := p.expect(TokenComma); err != nil {
				return nil, err
			}
		}
		ppos := p.cur().Pos
		typ, err := p.parseType()
		if err != nil {
			return nil, err
		}
		pname, err := p.expect(TokenIdent)
		if err != nil {
			return nil, err
		}
		fn.Params = append(fn.Params, Param{Pos: ppos, Type: typ, Name: pname.Text})
	}
	p.next() // )
	switch p.cur().Kind {
	case TokenKwInt:
		fn.Ret = TypeInt
		p.next()
	case TokenKwString:
		fn.Ret = TypeString
		p.next()
	case TokenKwVoid:
		fn.Ret = TypeVoid
		p.next()
	default:
		return nil, p.errorf("expected return type, found %s", p.cur())
	}
	fn.Body, err = p.parseBlock()
	if err != nil {
		return nil, err
	}
	return fn, nil
}

func (p *Parser) parseBlock() (*BlockStmt, error) {
	start, err := p.expect(TokenLBrace)
	if err != nil {
		return nil, err
	}
	blk := &BlockStmt{Pos: start.Pos}
	for !p.at(TokenRBrace) {
		if p.at(TokenEOF) {
			return nil, p.errorf("unexpected EOF, unclosed block")
		}
		st, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		blk.Stmts = append(blk.Stmts, st)
	}
	p.next() // }
	return blk, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	switch p.cur().Kind {
	case TokenKwInt, TokenKwString:
		return p.parseVarDecl()
	case TokenKwBuf:
		return p.parseBufDecl()
	case TokenKwIf:
		return p.parseIf()
	case TokenKwWhile:
		return p.parseWhile()
	case TokenKwFor:
		return p.parseFor()
	case TokenKwReturn:
		return p.parseReturn()
	case TokenKwBreak:
		tok := p.next()
		if _, err := p.expect(TokenSemicolon); err != nil {
			return nil, err
		}
		return &BreakStmt{Pos: tok.Pos}, nil
	case TokenKwContinue:
		tok := p.next()
		if _, err := p.expect(TokenSemicolon); err != nil {
			return nil, err
		}
		return &ContinueStmt{Pos: tok.Pos}, nil
	case TokenLBrace:
		return p.parseBlock()
	default:
		st, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokenSemicolon); err != nil {
			return nil, err
		}
		return st, nil
	}
}

// parseSimpleStmt parses an assignment or expression statement without the
// trailing semicolon (shared by for-loop clauses and plain statements).
func (p *Parser) parseSimpleStmt() (Stmt, error) {
	// Assignment: IDENT '=' expr. Lookahead distinguishes it from an
	// expression starting with an identifier (e.g. a call).
	if p.at(TokenIdent) && p.toks[p.pos+1].Kind == TokenAssign {
		name := p.next()
		p.next() // =
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{Pos: name.Pos, Name: name.Text, Value: val}, nil
	}
	pos := p.cur().Pos
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &ExprStmt{Pos: pos, X: x}, nil
}

func (p *Parser) parseVarDecl() (Stmt, error) {
	pos := p.cur().Pos
	typ, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(TokenIdent)
	if err != nil {
		return nil, err
	}
	decl := &VarDeclStmt{Pos: pos, Type: typ, Name: name.Text}
	if p.accept(TokenAssign) {
		decl.Init, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokenSemicolon); err != nil {
		return nil, err
	}
	return decl, nil
}

func (p *Parser) parseBufDecl() (Stmt, error) {
	pos := p.cur().Pos
	p.next() // buf
	name, err := p.expect(TokenIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokenLBracket); err != nil {
		return nil, err
	}
	size, err := p.expect(TokenInt)
	if err != nil {
		return nil, err
	}
	if size.Int <= 0 {
		return nil, &SyntaxError{Pos: size.Pos, Msg: "buffer capacity must be positive"}
	}
	if _, err := p.expect(TokenRBracket); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokenSemicolon); err != nil {
		return nil, err
	}
	return &BufDeclStmt{Pos: pos, Name: name.Text, Cap: size.Int}, nil
}

func (p *Parser) parseIf() (Stmt, error) {
	pos := p.cur().Pos
	p.next() // if
	if _, err := p.expect(TokenLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokenRParen); err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{Pos: pos, Cond: cond, Then: then}
	if p.accept(TokenKwElse) {
		if p.at(TokenKwIf) {
			st.Else, err = p.parseIf()
		} else {
			st.Else, err = p.parseBlock()
		}
		if err != nil {
			return nil, err
		}
	}
	return st, nil
}

func (p *Parser) parseWhile() (Stmt, error) {
	pos := p.cur().Pos
	p.next() // while
	if _, err := p.expect(TokenLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokenRParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Pos: pos, Cond: cond, Body: body}, nil
}

func (p *Parser) parseFor() (Stmt, error) {
	pos := p.cur().Pos
	p.next() // for
	if _, err := p.expect(TokenLParen); err != nil {
		return nil, err
	}
	st := &ForStmt{Pos: pos}
	var err error
	if !p.at(TokenSemicolon) {
		// The init clause may be a declaration or a simple statement.
		if p.at(TokenKwInt) || p.at(TokenKwString) {
			st.Init, err = p.parseVarDecl() // consumes the semicolon
			if err != nil {
				return nil, err
			}
		} else {
			st.Init, err = p.parseSimpleStmt()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokenSemicolon); err != nil {
				return nil, err
			}
		}
	} else {
		p.next()
	}
	if !p.at(TokenSemicolon) {
		st.Cond, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokenSemicolon); err != nil {
		return nil, err
	}
	if !p.at(TokenRParen) {
		st.Post, err = p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokenRParen); err != nil {
		return nil, err
	}
	st.Body, err = p.parseBlock()
	if err != nil {
		return nil, err
	}
	return st, nil
}

func (p *Parser) parseReturn() (Stmt, error) {
	pos := p.cur().Pos
	p.next() // return
	st := &ReturnStmt{Pos: pos}
	if !p.at(TokenSemicolon) {
		var err error
		st.Value, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokenSemicolon); err != nil {
		return nil, err
	}
	return st, nil
}

// --- Expressions (precedence climbing) ---

func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	lhs, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.at(TokenOrOr) {
		pos := p.next().Pos
		rhs, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		lhs = &BinExpr{Pos: pos, Op: OpOr, L: lhs, R: rhs}
	}
	return lhs, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	lhs, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.at(TokenAndAnd) {
		pos := p.next().Pos
		rhs, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		lhs = &BinExpr{Pos: pos, Op: OpAnd, L: lhs, R: rhs}
	}
	return lhs, nil
}

var cmpOps = map[TokenKind]BinOp{
	TokenEq: OpEq, TokenNeq: OpNeq,
	TokenLt: OpLt, TokenLe: OpLe, TokenGt: OpGt, TokenGe: OpGe,
}

func (p *Parser) parseCmp() (Expr, error) {
	lhs, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if op, ok := cmpOps[p.cur().Kind]; ok {
		pos := p.next().Pos
		rhs, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &BinExpr{Pos: pos, Op: op, L: lhs, R: rhs}, nil
	}
	return lhs, nil
}

func (p *Parser) parseAdd() (Expr, error) {
	lhs, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.at(TokenPlus) || p.at(TokenMinus) {
		op := OpAdd
		if p.at(TokenMinus) {
			op = OpSub
		}
		pos := p.next().Pos
		rhs, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		lhs = &BinExpr{Pos: pos, Op: op, L: lhs, R: rhs}
	}
	return lhs, nil
}

func (p *Parser) parseMul() (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.at(TokenStar) || p.at(TokenSlash) || p.at(TokenPercent) {
		var op BinOp
		switch p.cur().Kind {
		case TokenStar:
			op = OpMul
		case TokenSlash:
			op = OpDiv
		default:
			op = OpMod
		}
		pos := p.next().Pos
		rhs, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		lhs = &BinExpr{Pos: pos, Op: op, L: lhs, R: rhs}
	}
	return lhs, nil
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.at(TokenMinus) || p.at(TokenNot) {
		tok := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Pos: tok.Pos, Op: tok.Kind, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	tok := p.cur()
	switch tok.Kind {
	case TokenInt:
		p.next()
		return &IntLit{Pos: tok.Pos, Value: tok.Int}, nil
	case TokenChar:
		p.next()
		return &IntLit{Pos: tok.Pos, Value: tok.Int}, nil
	case TokenString:
		p.next()
		return &StringLit{Pos: tok.Pos, Value: tok.Text}, nil
	case TokenLParen:
		p.next()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokenRParen); err != nil {
			return nil, err
		}
		return x, nil
	case TokenIdent:
		p.next()
		if !p.at(TokenLParen) {
			return &Ident{Pos: tok.Pos, Name: tok.Text}, nil
		}
		p.next() // (
		call := &CallExpr{Pos: tok.Pos, Name: tok.Text}
		for !p.at(TokenRParen) {
			if len(call.Args) > 0 {
				if _, err := p.expect(TokenComma); err != nil {
					return nil, err
				}
			}
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, arg)
		}
		p.next() // )
		return call, nil
	default:
		return nil, p.errorf("expected expression, found %s", tok)
	}
}
