package minic

import (
	"strings"
	"testing"
)

func checkOK(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := ParseAndCheck(src)
	if err != nil {
		t.Fatalf("ParseAndCheck failed: %v\nsource:\n%s", err, src)
	}
	return prog
}

func TestCheckResolvesLocals(t *testing.T) {
	prog := checkOK(t, `
func add(int a, int b) int {
  int c = a + b;
  return c;
}
func main() int { return add(1, 2); }
`)
	f := prog.Func("add")
	if f.NumLocals != 3 {
		t.Errorf("NumLocals = %d, want 3", f.NumLocals)
	}
	decl := f.Body.Stmts[0].(*VarDeclStmt)
	if decl.Slot != 2 {
		t.Errorf("local c slot = %d, want 2", decl.Slot)
	}
	bin := decl.Init.(*BinExpr)
	a := bin.L.(*Ident)
	if a.Slot != 0 || a.IsGlobal {
		t.Errorf("param a resolution: %+v", a)
	}
}

func TestCheckResolvesGlobals(t *testing.T) {
	prog := checkOK(t, `
global int g1;
global int g2;
func main() int { g2 = 5; return g2 + g1; }
`)
	asg := prog.Func("main").Body.Stmts[0].(*AssignStmt)
	if !asg.IsGlobal || asg.Slot != 1 {
		t.Errorf("assign resolution: %+v", asg)
	}
}

func TestCheckShadowing(t *testing.T) {
	// Inner scopes may redeclare names used in outer scopes.
	prog := checkOK(t, `
func main() int {
  int x = 1;
  if (x > 0) {
    int x = 2;
    print(x);
  }
  return x;
}`)
	f := prog.Func("main")
	if f.NumLocals != 2 {
		t.Errorf("NumLocals = %d, want 2 (outer x + inner x)", f.NumLocals)
	}
}

func TestCheckStringOps(t *testing.T) {
	checkOK(t, `
func main() int {
  string a = "x";
  string b = a + "y";
  if (a == b) { return 1; }
  if (a != b) { return 2; }
  return len(b);
}`)
}

func TestCheckErrors(t *testing.T) {
	bad := []struct {
		src, wantSub string
	}{
		{`func main() int { return y; }`, "undeclared"},
		{`func main() int { y = 1; return 0; }`, "undeclared"},
		{`func main() int { int x = "s"; return x; }`, "initialize"},
		{`func main() int { string s = "a"; s = 3; return 0; }`, "assign"},
		{`func main() int { string s = "a"; if (s) { } return 0; }`, "condition"},
		{`func main() int { string s = "a"; return s < s; }`, "strings support only"},
		{`func main() int { return 1 + "a"; }`, "operator"},
		{`func f() void { return 1; } func main() int { return 0; }`, "void"},
		{`func f() int { return; } func main() int { return 0; }`, "must return"},
		{`func main() int { break; return 0; }`, "break outside"},
		{`func main() int { continue; return 0; }`, "continue outside"},
		{`func main() int { int x = 1; int x = 2; return x; }`, "duplicate"},
		{`func f(int a, int a) int { return a; } func main() int { return 0; }`, "duplicate parameter"},
		{`global int g; global int g; func main() int { return 0; }`, "duplicate global"},
		{`func f() int { return 0; } func f() int { return 1; } func main() int { return 0; }`, "duplicate function"},
		{`func main() int { return missing(); }`, "undefined function"},
		{`func f(int a) int { return a; } func main() int { return f(); }`, "expects 1 arguments"},
		{`func f(int a) int { return a; } func main() int { return f("s"); }`, "want int"},
		{`func main() int { return len(3); }`, "want string"},
		{`func main() int { buf b[4]; b = 3; return 0; }`, "buffer"},
		{`func main() int { buf b[4]; buf c[4]; if (b == c) {} return 0; }`, "compared"},
		{`func len() int { return 0; } func main() int { return 0; }`, "shadows a builtin"},
		{`func main() int { int print = 3; return print; }`, "shadows a builtin"},
		{`global string main_g = 3; func main() int { return 0; }`, "type"},
		{`func f() int { return 0; }`, "no main"},
		{`func main() int { return bufread(1, 0); }`, "want buf"},
	}
	for _, tt := range bad {
		_, err := ParseAndCheck(tt.src)
		if err == nil {
			t.Errorf("Check(%q) succeeded, want error containing %q", tt.src, tt.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), tt.wantSub) {
			t.Errorf("Check(%q) error = %q, want substring %q", tt.src, err.Error(), tt.wantSub)
		}
	}
}

func TestCheckBuiltinResolution(t *testing.T) {
	prog := checkOK(t, `func main() int { return input_int("m"); }`)
	ret := prog.Func("main").Body.Stmts[0].(*ReturnStmt)
	call := ret.Value.(*CallExpr)
	if call.Builtin != BuiltinInputInt {
		t.Errorf("builtin = %v, want BuiltinInputInt", call.Builtin)
	}
	if call.Type != TypeInt {
		t.Errorf("call type = %v, want int", call.Type)
	}
}

func TestCheckBufParamPassing(t *testing.T) {
	checkOK(t, `
func fill(buf b, int n) void {
  int i = 0;
  while (i < n) { bufwrite(b, i, 0); i = i + 1; }
  return;
}
func main() int {
  buf local[16];
  fill(local, 16);
  return bufread(local, 0);
}`)
}

func TestBuiltinNameRoundTrip(t *testing.T) {
	for name, info := range builtinSigs {
		if got := BuiltinName(info.id); got != name {
			t.Errorf("BuiltinName(%v) = %q, want %q", info.id, got, name)
		}
		if !IsBuiltinName(name) {
			t.Errorf("IsBuiltinName(%q) = false", name)
		}
	}
	if BuiltinName(BuiltinNone) != "" {
		t.Errorf("BuiltinName(BuiltinNone) should be empty")
	}
}
