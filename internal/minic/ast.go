package minic

import "fmt"

// Type is the static type of a MiniC expression or variable.
type Type int

// MiniC types. Buffers are fixed-capacity byte arrays that live in a
// function's frame and may be passed by reference to callees.
const (
	TypeInvalid Type = iota
	TypeInt
	TypeString
	TypeBuf
	TypeVoid
)

// String returns the source-level name of the type.
func (t Type) String() string {
	switch t {
	case TypeInt:
		return "int"
	case TypeString:
		return "string"
	case TypeBuf:
		return "buf"
	case TypeVoid:
		return "void"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Node is implemented by every AST node.
type Node interface {
	NodePos() Pos
}

// Expr is implemented by expression nodes.
type Expr interface {
	Node
	exprNode()
	// ResultType reports the checked static type; valid after Check.
	ResultType() Type
}

// Stmt is implemented by statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// Program is a parsed MiniC compilation unit.
type Program struct {
	Globals []*GlobalDecl
	Funcs   []*FuncDecl

	// Name is an optional label for the program (set by callers, e.g. the
	// application registry); not part of the syntax.
	Name string
}

// Func returns the function with the given name, or nil.
func (p *Program) Func(name string) *FuncDecl {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Global returns the global with the given name, or nil.
func (p *Program) Global(name string) *GlobalDecl {
	for _, g := range p.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// GlobalDecl declares a module-level variable.
type GlobalDecl struct {
	Pos  Pos
	Type Type // TypeInt or TypeString
	Name string
	Init Expr // optional; nil means zero value

	// Index is the global slot assigned during checking.
	Index int
}

// NodePos returns the declaration position.
func (d *GlobalDecl) NodePos() Pos { return d.Pos }

// Param is a function parameter.
type Param struct {
	Pos  Pos
	Type Type
	Name string
}

// FuncDecl declares a function.
type FuncDecl struct {
	Pos    Pos
	Name   string
	Params []Param
	Ret    Type // TypeInt, TypeString or TypeVoid
	Body   *BlockStmt

	// NumLocals is the frame slot count assigned during checking
	// (parameters occupy the first len(Params) slots).
	NumLocals int
}

// NodePos returns the declaration position.
func (d *FuncDecl) NodePos() Pos { return d.Pos }

// --- Statements ---

// BlockStmt is a brace-delimited statement list introducing a scope.
type BlockStmt struct {
	Pos   Pos
	Stmts []Stmt
}

// VarDeclStmt declares a local int or string variable.
type VarDeclStmt struct {
	Pos  Pos
	Type Type
	Name string
	Init Expr // optional

	Slot int // frame slot, assigned during checking
}

// BufDeclStmt declares a local fixed-capacity buffer.
type BufDeclStmt struct {
	Pos  Pos
	Name string
	Cap  int64

	Slot int
}

// AssignStmt assigns to a local or global variable.
type AssignStmt struct {
	Pos   Pos
	Name  string
	Value Expr

	// Resolution (filled during checking).
	IsGlobal bool
	Slot     int // frame slot or global index
	VarType  Type
}

// IfStmt is a conditional with optional else branch.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then *BlockStmt
	Else Stmt // *BlockStmt, *IfStmt, or nil
}

// WhileStmt is a pre-test loop.
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body *BlockStmt
}

// ForStmt is a C-style for loop. Init and Post are optional simple
// statements (assignment or expression); Cond is optional.
type ForStmt struct {
	Pos  Pos
	Init Stmt
	Cond Expr
	Post Stmt
	Body *BlockStmt
}

// ReturnStmt returns from the enclosing function.
type ReturnStmt struct {
	Pos   Pos
	Value Expr // nil for void returns
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt jumps to the innermost loop's post/condition.
type ContinueStmt struct{ Pos Pos }

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct {
	Pos Pos
	X   Expr
}

// NodePos implementations for statements.
func (s *BlockStmt) NodePos() Pos    { return s.Pos }
func (s *VarDeclStmt) NodePos() Pos  { return s.Pos }
func (s *BufDeclStmt) NodePos() Pos  { return s.Pos }
func (s *AssignStmt) NodePos() Pos   { return s.Pos }
func (s *IfStmt) NodePos() Pos       { return s.Pos }
func (s *WhileStmt) NodePos() Pos    { return s.Pos }
func (s *ForStmt) NodePos() Pos      { return s.Pos }
func (s *ReturnStmt) NodePos() Pos   { return s.Pos }
func (s *BreakStmt) NodePos() Pos    { return s.Pos }
func (s *ContinueStmt) NodePos() Pos { return s.Pos }
func (s *ExprStmt) NodePos() Pos     { return s.Pos }

func (s *BlockStmt) stmtNode()    {}
func (s *VarDeclStmt) stmtNode()  {}
func (s *BufDeclStmt) stmtNode()  {}
func (s *AssignStmt) stmtNode()   {}
func (s *IfStmt) stmtNode()       {}
func (s *WhileStmt) stmtNode()    {}
func (s *ForStmt) stmtNode()      {}
func (s *ReturnStmt) stmtNode()   {}
func (s *BreakStmt) stmtNode()    {}
func (s *ContinueStmt) stmtNode() {}
func (s *ExprStmt) stmtNode()     {}

// --- Expressions ---

// BinOp enumerates binary operators.
type BinOp int

// Binary operators.
const (
	OpInvalid BinOp = iota
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNeq
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

var binOpNames = map[BinOp]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpEq: "==", OpNeq: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "&&", OpOr: "||",
}

// String returns the operator's source spelling.
func (op BinOp) String() string {
	if s, ok := binOpNames[op]; ok {
		return s
	}
	return fmt.Sprintf("BinOp(%d)", int(op))
}

// IsComparison reports whether the operator yields a boolean-ish int from
// two operands of matching type.
func (op BinOp) IsComparison() bool {
	switch op {
	case OpEq, OpNeq, OpLt, OpLe, OpGt, OpGe:
		return true
	}
	return false
}

// IntLit is an integer literal (also produced by char literals).
type IntLit struct {
	Pos   Pos
	Value int64
}

// StringLit is a string literal.
type StringLit struct {
	Pos   Pos
	Value string
}

// Ident references a local, parameter, or global variable.
type Ident struct {
	Pos  Pos
	Name string

	// Resolution (filled during checking).
	IsGlobal bool
	Slot     int
	Type     Type
}

// BinExpr is a binary operation.
type BinExpr struct {
	Pos  Pos
	Op   BinOp
	L, R Expr

	Type Type
}

// UnaryExpr is negation (-) or logical not (!).
type UnaryExpr struct {
	Pos Pos
	Op  TokenKind // TokenMinus or TokenNot
	X   Expr
}

// CallExpr calls a user function or a builtin.
type CallExpr struct {
	Pos  Pos
	Name string
	Args []Expr

	// Resolution (filled during checking).
	Builtin Builtin // BuiltinNone for user calls
	Fn      *FuncDecl
	Type    Type
}

// NodePos implementations for expressions.
func (e *IntLit) NodePos() Pos    { return e.Pos }
func (e *StringLit) NodePos() Pos { return e.Pos }
func (e *Ident) NodePos() Pos     { return e.Pos }
func (e *BinExpr) NodePos() Pos   { return e.Pos }
func (e *UnaryExpr) NodePos() Pos { return e.Pos }
func (e *CallExpr) NodePos() Pos  { return e.Pos }

func (e *IntLit) exprNode()    {}
func (e *StringLit) exprNode() {}
func (e *Ident) exprNode()     {}
func (e *BinExpr) exprNode()   {}
func (e *UnaryExpr) exprNode() {}
func (e *CallExpr) exprNode()  {}

// ResultType implementations.
func (e *IntLit) ResultType() Type    { return TypeInt }
func (e *StringLit) ResultType() Type { return TypeString }
func (e *Ident) ResultType() Type     { return e.Type }
func (e *BinExpr) ResultType() Type   { return e.Type }
func (e *UnaryExpr) ResultType() Type { return TypeInt }
func (e *CallExpr) ResultType() Type  { return e.Type }

// Builtin enumerates the MiniC builtin functions.
type Builtin int

// Builtins. BuiltinNone marks a user-defined call.
const (
	BuiltinNone Builtin = iota
	BuiltinLen
	BuiltinChar
	BuiltinSubstr
	BuiltinConcat
	BuiltinStreq
	BuiltinAtoi
	BuiltinInputInt
	BuiltinInputString
	BuiltinEnv
	BuiltinArg
	BuiltinNargs
	BuiltinPrint
	BuiltinBufWrite
	BuiltinBufRead
	BuiltinBufCap
	BuiltinBufStr
	BuiltinAssert
	BuiltinAbort
)

// builtinSig describes a builtin's arity and types. A TypeInvalid parameter
// accepts any type (used by print).
type builtinSig struct {
	params []Type
	ret    Type
}

var builtinSigs = map[string]struct {
	id  Builtin
	sig builtinSig
}{
	"len":          {BuiltinLen, builtinSig{[]Type{TypeString}, TypeInt}},
	"char":         {BuiltinChar, builtinSig{[]Type{TypeString, TypeInt}, TypeInt}},
	"substr":       {BuiltinSubstr, builtinSig{[]Type{TypeString, TypeInt, TypeInt}, TypeString}},
	"concat":       {BuiltinConcat, builtinSig{[]Type{TypeString, TypeString}, TypeString}},
	"streq":        {BuiltinStreq, builtinSig{[]Type{TypeString, TypeString}, TypeInt}},
	"atoi":         {BuiltinAtoi, builtinSig{[]Type{TypeString}, TypeInt}},
	"input_int":    {BuiltinInputInt, builtinSig{[]Type{TypeString}, TypeInt}},
	"input_string": {BuiltinInputString, builtinSig{[]Type{TypeString}, TypeString}},
	"env":          {BuiltinEnv, builtinSig{[]Type{TypeString}, TypeString}},
	"arg":          {BuiltinArg, builtinSig{[]Type{TypeInt}, TypeString}},
	"nargs":        {BuiltinNargs, builtinSig{nil, TypeInt}},
	"print":        {BuiltinPrint, builtinSig{[]Type{TypeInvalid}, TypeVoid}},
	"bufwrite":     {BuiltinBufWrite, builtinSig{[]Type{TypeBuf, TypeInt, TypeInt}, TypeVoid}},
	"bufread":      {BuiltinBufRead, builtinSig{[]Type{TypeBuf, TypeInt}, TypeInt}},
	"bufcap":       {BuiltinBufCap, builtinSig{[]Type{TypeBuf}, TypeInt}},
	"bufstr":       {BuiltinBufStr, builtinSig{[]Type{TypeBuf, TypeInt}, TypeString}},
	"assert":       {BuiltinAssert, builtinSig{[]Type{TypeInt}, TypeVoid}},
	"abort":        {BuiltinAbort, builtinSig{nil, TypeVoid}},
}

// BuiltinName returns the source name of a builtin, or "" for BuiltinNone.
func BuiltinName(b Builtin) string {
	for name, info := range builtinSigs {
		if info.id == b {
			return name
		}
	}
	return ""
}

// IsBuiltinName reports whether name denotes a builtin function.
func IsBuiltinName(name string) bool {
	_, ok := builtinSigs[name]
	return ok
}
