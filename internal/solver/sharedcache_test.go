package solver

import (
	"fmt"
	"sync"
	"testing"
)

// sharedWorkload builds one deterministic query set: a mix of sat, unsat
// and repeated conjunctions over tbl's variables.
func sharedWorkload(tbl *VarTable, vars []Var) [][]Constraint {
	var qs [][]Constraint
	for i, v := range vars {
		k := int64(i)
		qs = append(qs,
			[]Constraint{Ge(VarExpr(v), ConstExpr(k)), Le(VarExpr(v), ConstExpr(k+10))},
			[]Constraint{Ge(VarExpr(v), ConstExpr(k+10)), Lt(VarExpr(v), ConstExpr(k))},
			[]Constraint{Ge(VarExpr(v), ConstExpr(k)), Le(VarExpr(v), ConstExpr(k+10))}, // repeat
		)
	}
	for i := 0; i+1 < len(vars); i++ {
		qs = append(qs, []Constraint{
			Lt(VarExpr(vars[i]), VarExpr(vars[i+1])),
			Lt(VarExpr(vars[i+1]), VarExpr(vars[i])),
		})
	}
	return qs
}

// TestSharedCacheConcurrentWorkers: N goroutines, each with its own
// CachedSolver over the same VarTable, share one SharedCache while running
// the same workload. Every verdict must match an uncached reference solver,
// and every worker's logical counters must be identical — the determinism
// contract (run under -race in CI).
func TestSharedCacheConcurrentWorkers(t *testing.T) {
	tbl := NewVarTable()
	vars := make([]Var, 6)
	for i := range vars {
		vars[i] = tbl.NewVarBounded(fmt.Sprintf("v%d", i), -100, 100)
	}
	queries := sharedWorkload(tbl, vars)

	// Reference verdicts from a bare solver.
	want := make([]Result, len(queries))
	for i, q := range queries {
		want[i], _ = New().Check(tbl, q)
	}

	const workers = 8
	shared := NewSharedCache(0)
	solvers := make([]*CachedSolver, workers)
	var wg sync.WaitGroup
	errs := make(chan error, workers*len(queries))
	for w := 0; w < workers; w++ {
		cs := NewCached(New())
		cs.Shared = shared
		solvers[w] = cs
		wg.Add(1)
		go func(w int, cs *CachedSolver) {
			defer wg.Done()
			for i, q := range queries {
				res, m := cs.Check(tbl, q)
				if res != want[i] {
					errs <- fmt.Errorf("worker %d query %d: %v, want %v", w, i, res, want[i])
					continue
				}
				if res == Sat {
					for _, c := range q {
						if !c.Holds(m) {
							errs <- fmt.Errorf("worker %d query %d: model %v violates %s",
								w, i, m, c.String(tbl))
						}
					}
				}
			}
		}(w, cs)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Logical counters are per-worker deterministic regardless of who won
	// the race to populate the shared cache.
	ref := solvers[0].Queries
	for w, cs := range solvers {
		if cs.Queries != ref {
			t.Errorf("worker %d logical counters %+v diverge from worker 0 %+v",
				w, cs.Queries, ref)
		}
		if cs.Hits+cs.Misses != len(queries) {
			t.Errorf("worker %d: hits+misses = %d, want %d",
				w, cs.Hits+cs.Misses, len(queries))
		}
	}
	c := shared.Counters()
	if c.Stores == 0 || c.Hits == 0 {
		t.Errorf("shared cache unused: %+v", c)
	}
	// Only shared misses that went on to a physical solve store back.
	if c.Stores > c.Misses {
		t.Errorf("more stores than misses: %+v", c)
	}
}

// TestSharedCacheCrossTableBounds: two workers whose VarTables assign the
// same Var ID different intrinsic bounds must not poison each other through
// the shared cache — the bounds signature keeps entries table-specific.
func TestSharedCacheCrossTableBounds(t *testing.T) {
	shared := NewSharedCache(0)

	wide := NewVarTable()
	xw := wide.NewVar("x")
	csW := NewCached(New())
	csW.Shared = shared

	narrow := NewVarTable()
	xn := narrow.NewVarBounded("x", 0, 255)
	csN := NewCached(New())
	csN.Shared = shared

	if xw != xn {
		t.Fatalf("test premise broken: var IDs differ")
	}
	cons := []Constraint{Ge(VarExpr(xw), ConstExpr(300))}
	if res, _ := csW.Check(wide, cons); res != Sat {
		t.Fatalf("unbounded table: %v, want sat", res)
	}
	if res, _ := csN.Check(narrow, cons); res != Unsat {
		t.Fatalf("bounded table served the other table's verdict: %v, want unsat", res)
	}
}

// TestSharedCacheEviction: a tiny shared cache evicts under pressure and
// stays within its capacity.
func TestSharedCacheEviction(t *testing.T) {
	tbl := NewVarTable()
	x := tbl.NewVar("x")
	shared := NewSharedCache(sharedCacheShards) // one entry per shard
	cs := NewCached(New())
	cs.Shared = shared
	for i := 0; i < 200; i++ {
		cs.Check(tbl, []Constraint{Eq(VarExpr(x), ConstExpr(int64(i)))})
	}
	if got := shared.Len(); got > sharedCacheShards {
		t.Errorf("shared cache holds %d entries, capacity %d", got, sharedCacheShards)
	}
	if shared.Counters().Evictions == 0 {
		t.Errorf("no evictions recorded under pressure: %+v", shared.Counters())
	}
}
