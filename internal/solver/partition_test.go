package solver

import (
	"math/rand"
	"testing"
)

func TestPartitionDisjointComponents(t *testing.T) {
	tbl := NewVarTable()
	x := tbl.NewVar("x")
	y := tbl.NewVar("y")
	z := tbl.NewVar("z")
	w := tbl.NewVar("w")
	cons := []Constraint{
		Le(VarExpr(x), ConstExpr(5)),   // comp A
		Le(VarExpr(y), VarExpr(z)),     // comp B
		Ge(VarExpr(x), ConstExpr(1)),   // comp A
		Le(VarExpr(z), ConstExpr(9)),   // comp B (shares z)
		Eq(VarExpr(w), ConstExpr(3)),   // comp C
		Le(ConstExpr(0), ConstExpr(1)), // ground
		Ne(ConstExpr(2), ConstExpr(3)), // ground (merges with above)
	}
	comps := Partition(cons)
	if len(comps) != 4 {
		t.Fatalf("components = %d, want 4: %v", len(comps), comps)
	}
	// Total constraint count preserved.
	total := 0
	for _, c := range comps {
		total += len(c)
	}
	if total != len(cons) {
		t.Errorf("constraints lost: %d of %d", total, len(cons))
	}
	// Variable-disjointness.
	seen := make(map[Var]int)
	for ci, comp := range comps {
		for _, c := range comp {
			for _, tm := range c.E.Terms {
				if prev, ok := seen[tm.Var]; ok && prev != ci {
					t.Errorf("variable %d appears in components %d and %d", tm.Var, prev, ci)
				}
				seen[tm.Var] = ci
			}
		}
	}
}

func TestPartitionTransitiveLinking(t *testing.T) {
	tbl := NewVarTable()
	a := tbl.NewVar("a")
	b := tbl.NewVar("b")
	c := tbl.NewVar("c")
	cons := []Constraint{
		Le(VarExpr(a), VarExpr(b)), // links a-b
		Le(VarExpr(b), VarExpr(c)), // links b-c => one component
	}
	comps := Partition(cons)
	if len(comps) != 1 {
		t.Fatalf("transitively linked constraints split into %d components", len(comps))
	}
}

func TestPartitionEmptyAndSingle(t *testing.T) {
	if Partition(nil) != nil {
		t.Error("Partition(nil) should be nil")
	}
	tbl := NewVarTable()
	x := tbl.NewVar("x")
	comps := Partition([]Constraint{Le(VarExpr(x), ConstExpr(1))})
	if len(comps) != 1 || len(comps[0]) != 1 {
		t.Errorf("single constraint partition: %v", comps)
	}
}

func TestPartitionGroundOnly(t *testing.T) {
	// A conjunction of variable-free constraints is a single component: all
	// ground constraints anchor to one synthetic node.
	cons := []Constraint{
		Le(ConstExpr(0), ConstExpr(1)),
		Ne(ConstExpr(2), ConstExpr(3)),
		Ge(ConstExpr(5), ConstExpr(4)),
	}
	comps := Partition(cons)
	if len(comps) != 1 || len(comps[0]) != 3 {
		t.Fatalf("ground-only partition: %v, want one 3-constraint component", comps)
	}
}

func TestPartitionSingleSharedVarChain(t *testing.T) {
	// Every constraint mentions x plus one private variable: x welds the
	// whole conjunction into a single component.
	tbl := NewVarTable()
	x := tbl.NewVar("x")
	var cons []Constraint
	for i := 0; i < 5; i++ {
		p := tbl.NewVar("p")
		cons = append(cons, Le(VarExpr(x).Add(VarExpr(p)), ConstExpr(int64(i))))
	}
	comps := Partition(cons)
	if len(comps) != 1 {
		t.Fatalf("shared-variable chain split into %d components", len(comps))
	}
	if len(comps[0]) != len(cons) {
		t.Fatalf("component dropped constraints: %d of %d", len(comps[0]), len(cons))
	}
}

func TestPartitionOrderingDeterministic(t *testing.T) {
	// Components are emitted in order of their first constraint, and each
	// component preserves the conjunction's internal order — repeated calls
	// must agree exactly (cache keys depend on it).
	tbl := NewVarTable()
	x := tbl.NewVar("x")
	y := tbl.NewVar("y")
	z := tbl.NewVar("z")
	cons := []Constraint{
		Le(VarExpr(y), ConstExpr(2)), // component of y — first seen
		Le(VarExpr(x), ConstExpr(5)), // component of x
		Ge(VarExpr(z), ConstExpr(1)), // component of z
		Ge(VarExpr(y), ConstExpr(0)), // joins y's component
	}
	first := Partition(cons)
	if len(first) != 3 {
		t.Fatalf("components = %d, want 3", len(first))
	}
	if len(first[0]) != 2 || first[0][0].E.Terms[0].Var != y {
		t.Fatalf("first component is not y's (order not first-index): %v", first)
	}
	if first[0][1].Op != OpLe || first[0][0].Op != OpLe {
		// first[0] = [y<=2, y>=0] in original order; y>=0 is Le of -y.
		t.Logf("component internal order: %v", first[0])
	}
	for trial := 0; trial < 10; trial++ {
		again := Partition(cons)
		if len(again) != len(first) {
			t.Fatalf("trial %d: component count changed", trial)
		}
		for i := range first {
			if len(again[i]) != len(first[i]) {
				t.Fatalf("trial %d: component %d size changed", trial, i)
			}
			for j := range first[i] {
				if !constraintEq(again[i][j], first[i][j]) {
					t.Fatalf("trial %d: component %d constraint %d differs", trial, i, j)
				}
			}
		}
	}
}

func TestCheckPartitionedEquivalence(t *testing.T) {
	// Random systems: CheckPartitioned must agree with a monolithic Check.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		tbl := NewVarTable()
		nv := 2 + rng.Intn(5)
		vars := make([]Var, nv)
		for i := range vars {
			vars[i] = tbl.NewVarBounded("v", -5, 5)
		}
		nc := 1 + rng.Intn(6)
		cons := make([]Constraint, 0, nc)
		for i := 0; i < nc; i++ {
			// Sparse constraints touch 1-2 variables, creating several
			// independent components in most trials.
			e := ConstExpr(int64(rng.Intn(7) - 3))
			e = e.Add(VarExpr(vars[rng.Intn(nv)]).MulConst(int64(rng.Intn(3) - 1)))
			if rng.Intn(2) == 0 {
				e = e.Add(VarExpr(vars[rng.Intn(nv)]).MulConst(int64(rng.Intn(3) - 1)))
			}
			op := []ConstraintOp{OpLe, OpEq, OpNe}[rng.Intn(3)]
			cons = append(cons, Constraint{E: e, Op: op})
		}
		mono, monoModel := New().Check(tbl, cons)
		cs := NewCached(New())
		part, partModel := cs.CheckPartitioned(tbl, cons)
		if mono == Unknown || part == Unknown {
			continue
		}
		if mono != part {
			t.Fatalf("trial %d: monolithic=%v partitioned=%v for %v",
				trial, mono, part, renderCons(tbl, cons))
		}
		if part == Sat {
			for _, c := range cons {
				if !c.Holds(partModel) {
					t.Fatalf("trial %d: partitioned model %v violates %s",
						trial, partModel, c.String(tbl))
				}
			}
			for _, c := range cons {
				if !c.Holds(monoModel) {
					t.Fatalf("trial %d: monolithic model violates %s", trial, c.String(tbl))
				}
			}
		}
	}
}

func TestCheckPartitionedComponentCaching(t *testing.T) {
	tbl := NewVarTable()
	x := tbl.NewVar("x")
	y := tbl.NewVar("y")
	cs := NewCached(New())
	base := []Constraint{Ge(VarExpr(x), ConstExpr(3)), Le(VarExpr(x), ConstExpr(9))}
	res, _ := cs.CheckPartitioned(tbl, base)
	if res != Sat {
		t.Fatal(res)
	}
	missesBefore := cs.Misses
	// Adding an independent constraint about y re-solves only the y
	// component: the x component hits the cache.
	grown := append(append([]Constraint(nil), base...), Ge(VarExpr(y), ConstExpr(1)))
	res, m := cs.CheckPartitioned(tbl, grown)
	if res != Sat {
		t.Fatal(res)
	}
	if m[x] < 3 || m[x] > 9 || m[y] < 1 {
		t.Errorf("merged model = %v", m)
	}
	if cs.Hits == 0 {
		t.Errorf("x-component did not hit the cache (hits=%d misses=%d->%d)",
			cs.Hits, missesBefore, cs.Misses)
	}
}

func TestCheckPartitionedUnsatComponent(t *testing.T) {
	tbl := NewVarTable()
	x := tbl.NewVar("x")
	y := tbl.NewVar("y")
	cons := []Constraint{
		Ge(VarExpr(x), ConstExpr(0)), // sat component
		Lt(VarExpr(y), VarExpr(y)),   // unsat component
	}
	cs := NewCached(New())
	res, _ := cs.CheckPartitioned(tbl, cons)
	if res != Unsat {
		t.Errorf("result = %v, want unsat", res)
	}
}
