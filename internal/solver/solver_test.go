package solver

import (
	"math/rand"
	"testing"
)

// checkSat asserts Sat and returns a verified model.
func checkSat(t *testing.T, tbl *VarTable, cons []Constraint) Model {
	t.Helper()
	s := New()
	res, m := s.Check(tbl, cons)
	if res != Sat {
		t.Fatalf("Check = %v, want sat; constraints: %v", res, renderCons(tbl, cons))
	}
	for _, c := range cons {
		if !c.Holds(m) {
			t.Fatalf("model %v violates %s", m, c.String(tbl))
		}
	}
	return m
}

func checkUnsat(t *testing.T, tbl *VarTable, cons []Constraint) {
	t.Helper()
	s := New()
	res, _ := s.Check(tbl, cons)
	if res != Unsat {
		t.Fatalf("Check = %v, want unsat; constraints: %v", res, renderCons(tbl, cons))
	}
}

func renderCons(tbl *VarTable, cons []Constraint) []string {
	out := make([]string, len(cons))
	for i, c := range cons {
		out[i] = c.String(tbl)
	}
	return out
}

func TestLinExprAlgebra(t *testing.T) {
	tbl := NewVarTable()
	x := tbl.NewVar("x")
	y := tbl.NewVar("y")
	e := VarExpr(x).MulConst(2).Add(VarExpr(y)).AddConst(3) // 2x + y + 3
	e2 := e.Sub(VarExpr(y))                                 // 2x + 3
	if len(e2.Terms) != 1 || e2.Terms[0].Coeff != 2 || e2.Const != 3 {
		t.Fatalf("e2 = %+v", e2)
	}
	if got := e.Eval(Model{x: 5, y: 7}); got != 20 {
		t.Errorf("Eval = %d, want 20", got)
	}
	neg := e.Neg()
	if got := neg.Eval(Model{x: 5, y: 7}); got != -20 {
		t.Errorf("Neg Eval = %d, want -20", got)
	}
	zero := e.Sub(e)
	if !zero.IsConst() || zero.Const != 0 {
		t.Errorf("e - e = %+v, want 0", zero)
	}
}

func TestNormalizeMergesDuplicates(t *testing.T) {
	tbl := NewVarTable()
	x := tbl.NewVar("x")
	e := VarExpr(x).Add(VarExpr(x)).Add(VarExpr(x).MulConst(-2))
	if !e.IsConst() || e.Const != 0 {
		t.Fatalf("x + x - 2x = %+v, want const 0", e)
	}
}

func TestTrivialConstraints(t *testing.T) {
	tbl := NewVarTable()
	res, m := New().Check(tbl, []Constraint{Le(ConstExpr(1), ConstExpr(2))})
	if res != Sat || m == nil {
		t.Errorf("1<=2: %v", res)
	}
	res, _ = New().Check(tbl, []Constraint{Le(ConstExpr(3), ConstExpr(2))})
	if res != Unsat {
		t.Errorf("3<=2: %v, want unsat", res)
	}
	res, _ = New().Check(tbl, nil)
	if res != Sat {
		t.Errorf("empty: %v, want sat", res)
	}
}

func TestSimpleBounds(t *testing.T) {
	tbl := NewVarTable()
	x := tbl.NewVar("x")
	m := checkSat(t, tbl, []Constraint{
		Ge(VarExpr(x), ConstExpr(3)),
		Lt(VarExpr(x), ConstExpr(10)),
	})
	if m[x] < 3 || m[x] >= 10 {
		t.Errorf("model x = %d outside [3,10)", m[x])
	}
	checkUnsat(t, tbl, []Constraint{
		Ge(VarExpr(x), ConstExpr(10)),
		Lt(VarExpr(x), ConstExpr(10)),
	})
}

func TestIntegerGap(t *testing.T) {
	// 3 < x < 4 has no integer solution (rationally feasible).
	tbl := NewVarTable()
	x := tbl.NewVar("x")
	res, _ := New().Check(tbl, []Constraint{
		Gt(VarExpr(x), ConstExpr(3)),
		Lt(VarExpr(x), ConstExpr(4)),
	})
	// Strict integer translation (x ≥ 4 ∧ x ≤ 3) makes propagation prove
	// unsat.
	if res != Unsat {
		t.Errorf("3<x<4: %v, want unsat", res)
	}
}

func TestEqualityChains(t *testing.T) {
	tbl := NewVarTable()
	x := tbl.NewVar("x")
	y := tbl.NewVar("y")
	z := tbl.NewVar("z")
	m := checkSat(t, tbl, []Constraint{
		Eq(VarExpr(x), VarExpr(y).AddConst(1)),
		Eq(VarExpr(y), VarExpr(z).AddConst(1)),
		Eq(VarExpr(z), ConstExpr(5)),
	})
	if m[x] != 7 || m[y] != 6 || m[z] != 5 {
		t.Errorf("model = %v, want x=7 y=6 z=5", m)
	}
	checkUnsat(t, tbl, []Constraint{
		Eq(VarExpr(x), VarExpr(y).AddConst(1)),
		Eq(VarExpr(y), VarExpr(x).AddConst(1)),
	})
}

func TestDisequality(t *testing.T) {
	tbl := NewVarTable()
	x := tbl.NewVarBounded("x", 0, 1)
	m := checkSat(t, tbl, []Constraint{Ne(VarExpr(x), ConstExpr(0))})
	if m[x] != 1 {
		t.Errorf("x = %d, want 1", m[x])
	}
	checkUnsat(t, tbl, []Constraint{
		Ne(VarExpr(x), ConstExpr(0)),
		Ne(VarExpr(x), ConstExpr(1)),
	})
}

func TestDisequalityUnbounded(t *testing.T) {
	tbl := NewVarTable()
	x := tbl.NewVar("x")
	m := checkSat(t, tbl, []Constraint{
		Ne(VarExpr(x), ConstExpr(0)),
		Ne(VarExpr(x), ConstExpr(1)),
		Ne(VarExpr(x), ConstExpr(-1)),
	})
	if m[x] == 0 || m[x] == 1 || m[x] == -1 {
		t.Errorf("x = %d violates disequalities", m[x])
	}
}

func TestTwoVarInequalities(t *testing.T) {
	tbl := NewVarTable()
	x := tbl.NewVar("x")
	y := tbl.NewVar("y")
	// x ≤ y − 5, y ≤ 10, x ≥ 3 → x ∈ [3,5], y ∈ [8,10].
	m := checkSat(t, tbl, []Constraint{
		Le(VarExpr(x), VarExpr(y).AddConst(-5)),
		Le(VarExpr(y), ConstExpr(10)),
		Ge(VarExpr(x), ConstExpr(3)),
	})
	if m[x] < 3 || m[x] > 5 || m[y] < m[x]+5 || m[y] > 10 {
		t.Errorf("model = %v", m)
	}
	checkUnsat(t, tbl, []Constraint{
		Le(VarExpr(x), VarExpr(y).AddConst(-5)),
		Le(VarExpr(y), ConstExpr(10)),
		Ge(VarExpr(x), ConstExpr(6)),
	})
}

func TestFMChainUnsat(t *testing.T) {
	// x < y, y < z, z < x is infeasible; propagation alone cannot see it
	// (all variables unbounded), so this exercises Fourier–Motzkin.
	tbl := NewVarTable()
	x := tbl.NewVar("x")
	y := tbl.NewVar("y")
	z := tbl.NewVar("z")
	checkUnsat(t, tbl, []Constraint{
		Lt(VarExpr(x), VarExpr(y)),
		Lt(VarExpr(y), VarExpr(z)),
		Lt(VarExpr(z), VarExpr(x)),
	})
}

func TestFMSumConstraint(t *testing.T) {
	// x + y ≤ 1 ∧ x + y ≥ 2 infeasible with unbounded vars.
	tbl := NewVarTable()
	x := tbl.NewVar("x")
	y := tbl.NewVar("y")
	sum := VarExpr(x).Add(VarExpr(y))
	checkUnsat(t, tbl, []Constraint{
		Le(sum, ConstExpr(1)),
		Ge(sum, ConstExpr(2)),
	})
	m := checkSat(t, tbl, []Constraint{
		Le(sum, ConstExpr(5)),
		Ge(sum, ConstExpr(5)),
	})
	if m[x]+m[y] != 5 {
		t.Errorf("x+y = %d, want 5", m[x]+m[y])
	}
}

func TestCoefficients(t *testing.T) {
	tbl := NewVarTable()
	x := tbl.NewVar("x")
	// 3x ≥ 7 → x ≥ 3 for integers.
	m := checkSat(t, tbl, []Constraint{Ge(VarExpr(x).MulConst(3), ConstExpr(7))})
	if m[x] < 3 {
		t.Errorf("3x>=7 gave x = %d", m[x])
	}
	// 2x = 7 has no integer solution.
	res, _ := New().Check(tbl, []Constraint{Eq(VarExpr(x).MulConst(2), ConstExpr(7))})
	if res == Sat {
		t.Errorf("2x=7: got sat")
	}
}

func TestIntrinsicBounds(t *testing.T) {
	tbl := NewVarTable()
	length := tbl.NewVarMin("len", 0)
	checkUnsat(t, tbl, []Constraint{Lt(VarExpr(length), ConstExpr(0))})
	b := tbl.NewVarBounded("byte", 0, 255)
	checkUnsat(t, tbl, []Constraint{Gt(VarExpr(b), ConstExpr(255))})
	m := checkSat(t, tbl, []Constraint{Gt(VarExpr(b), ConstExpr(254))})
	if m[b] != 255 {
		t.Errorf("byte = %d, want 255", m[b])
	}
}

func TestPaperStyleQuery(t *testing.T) {
	// The polymorph predicate: len(target) > 518 together with the loop
	// guard i < len(target) and overflow query i ≥ 512.
	tbl := NewVarTable()
	length := tbl.NewVarMin("len(target)", 0)
	i := tbl.NewVarMin("i", 0)
	m := checkSat(t, tbl, []Constraint{
		Gt(VarExpr(length), ConstExpr(518)),
		Lt(VarExpr(i), VarExpr(length)),
		Ge(VarExpr(i), ConstExpr(512)),
	})
	if m[length] <= 518 || m[i] < 512 || m[i] >= m[length] {
		t.Errorf("model = %v", m)
	}
	// With a short string the overflow is unreachable.
	checkUnsat(t, tbl, []Constraint{
		Lt(VarExpr(length), ConstExpr(100)),
		Lt(VarExpr(i), VarExpr(length)),
		Ge(VarExpr(i), ConstExpr(512)),
	})
}

func TestNegate(t *testing.T) {
	tbl := NewVarTable()
	x := tbl.NewVar("x")
	cons := []Constraint{
		Le(VarExpr(x), ConstExpr(5)),
		Eq(VarExpr(x), ConstExpr(3)),
		Ne(VarExpr(x), ConstExpr(3)),
	}
	for _, c := range cons {
		n := c.Negate()
		for v := int64(-10); v <= 10; v++ {
			m := Model{x: v}
			if c.Holds(m) == n.Holds(m) {
				t.Errorf("constraint %s and negation %s agree at x=%d",
					c.String(tbl), n.String(tbl), v)
			}
		}
		nn := n.Negate()
		for v := int64(-10); v <= 10; v++ {
			m := Model{x: v}
			if c.Holds(m) != nn.Holds(m) {
				t.Errorf("double negation differs at x=%d", v)
			}
		}
	}
}

func TestFloorCeilDiv(t *testing.T) {
	tests := []struct {
		a, b, floor, ceil int64
	}{
		{7, 2, 3, 4},
		{-7, 2, -4, -3},
		{7, -2, -4, -3},
		{-7, -2, 3, 4},
		{6, 3, 2, 2},
		{-6, 3, -2, -2},
		{0, 5, 0, 0},
	}
	for _, tt := range tests {
		if got := floorDiv(tt.a, tt.b); got != tt.floor {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", tt.a, tt.b, got, tt.floor)
		}
		if got := ceilDiv(tt.a, tt.b); got != tt.ceil {
			t.Errorf("ceilDiv(%d,%d) = %d, want %d", tt.a, tt.b, got, tt.ceil)
		}
	}
}

func TestConstraintString(t *testing.T) {
	tbl := NewVarTable()
	x := tbl.NewVar("x")
	y := tbl.NewVar("y")
	tests := []struct {
		c    Constraint
		want string
	}{
		{Le(VarExpr(x), ConstExpr(5)), "x <= 5"},
		{Ge(VarExpr(x), ConstExpr(3)), "x >= 3"},
		{Eq(VarExpr(x), ConstExpr(7)), "x == 7"},
		{Ne(VarExpr(x), ConstExpr(2)), "x != 2"},
		{Le(VarExpr(x).Add(VarExpr(y)), ConstExpr(1)), "x + y - 1 <= 0"},
	}
	for _, tt := range tests {
		if got := tt.c.String(tbl); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}

// bruteForce exhaustively decides a system over a small box domain.
func bruteForce(cons []Constraint, vars []Var, lo, hi int64) (bool, Model) {
	assign := make(Model, len(vars))
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(vars) {
			for _, c := range cons {
				if !c.Holds(assign) {
					return false
				}
			}
			return true
		}
		for v := lo; v <= hi; v++ {
			assign[vars[i]] = v
			if rec(i + 1) {
				return true
			}
		}
		return false
	}
	if rec(0) {
		return true, assign
	}
	return false, nil
}

// TestAgainstBruteForce generates random small systems over bounded
// variables and cross-checks the solver against exhaustive search. The
// solver must never contradict brute force (Unknown is allowed but counted).
func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const trials = 400
	unknowns := 0
	for trial := 0; trial < trials; trial++ {
		tbl := NewVarTable()
		nv := 1 + rng.Intn(3)
		vars := make([]Var, nv)
		for i := range vars {
			vars[i] = tbl.NewVarBounded("x"+string(rune('0'+i)), -4, 4)
		}
		nc := 1 + rng.Intn(4)
		cons := make([]Constraint, 0, nc)
		for i := 0; i < nc; i++ {
			e := ConstExpr(int64(rng.Intn(9) - 4))
			for _, v := range vars {
				coeff := int64(rng.Intn(5) - 2)
				e = e.Add(VarExpr(v).MulConst(coeff))
			}
			var c Constraint
			switch rng.Intn(3) {
			case 0:
				c = Constraint{E: e, Op: OpLe}
			case 1:
				c = Constraint{E: e, Op: OpEq}
			default:
				c = Constraint{E: e, Op: OpNe}
			}
			cons = append(cons, c)
		}
		res, model := New().Check(tbl, cons)
		bfSat, _ := bruteForce(cons, vars, -4, 4)
		switch res {
		case Sat:
			for _, c := range cons {
				if !c.Holds(model) {
					t.Fatalf("trial %d: returned model %v violates %s",
						trial, model, c.String(tbl))
				}
			}
			// A solver model may lie outside the brute-force box only if
			// the variable bounds allowed it — but bounds here are the box
			// itself, so brute force must also be sat.
			if !bfSat {
				t.Fatalf("trial %d: solver sat, brute force unsat; cons=%v model=%v",
					trial, renderCons(tbl, cons), model)
			}
		case Unsat:
			if bfSat {
				t.Fatalf("trial %d: solver unsat, brute force sat; cons=%v",
					trial, renderCons(tbl, cons))
			}
		case Unknown:
			unknowns++
		}
	}
	if unknowns > trials/10 {
		t.Errorf("too many unknowns: %d/%d", unknowns, trials)
	}
}

func TestCachedSolver(t *testing.T) {
	tbl := NewVarTable()
	x := tbl.NewVar("x")
	cs := NewCached(New())
	cons := []Constraint{Ge(VarExpr(x), ConstExpr(3)), Le(VarExpr(x), ConstExpr(5))}
	r1, m1 := cs.Check(tbl, cons)
	r2, m2 := cs.Check(tbl, cons)
	if r1 != Sat || r2 != Sat {
		t.Fatalf("results: %v, %v", r1, r2)
	}
	if m1[x] != m2[x] {
		t.Errorf("cached model differs: %v vs %v", m1, m2)
	}
	if cs.Hits != 1 || cs.Misses != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", cs.Hits, cs.Misses)
	}
	// Order-insensitivity of the key.
	rev := []Constraint{cons[1], cons[0]}
	cs.Check(tbl, rev)
	if cs.Hits != 2 {
		t.Errorf("reordered query missed the cache: hits=%d", cs.Hits)
	}
}

func TestSolverStats(t *testing.T) {
	tbl := NewVarTable()
	x := tbl.NewVar("x")
	s := New()
	s.Check(tbl, []Constraint{Ge(VarExpr(x), ConstExpr(0))})
	s.Check(tbl, []Constraint{Lt(VarExpr(x), VarExpr(x))})
	if s.Stats.Checks != 2 || s.Stats.Sat != 1 || s.Stats.Unsat != 1 {
		t.Errorf("stats = %+v", s.Stats)
	}
}

func TestSortedVars(t *testing.T) {
	tbl := NewVarTable()
	x := tbl.NewVar("x")
	y := tbl.NewVar("y")
	cons := []Constraint{
		Le(VarExpr(y), ConstExpr(1)),
		Le(VarExpr(x).Add(VarExpr(y)), ConstExpr(2)),
	}
	vars := SortedVars(cons)
	if len(vars) != 2 || vars[0] != x || vars[1] != y {
		t.Errorf("SortedVars = %v", vars)
	}
}
