package solver

import (
	"sync"
	"testing"
	"time"
)

// TestCacheCollisionVerified: a digest hit whose stored conjunction differs
// from the query (an FNV-64 collision) must be treated as a miss, never
// returned as the stored verdict. Collisions are simulated by inserting
// directly into the LRU under a forged digest.
func TestCacheCollisionVerified(t *testing.T) {
	tbl := NewVarTable()
	x := tbl.NewVar("x")
	stored := []Constraint{Ge(VarExpr(x), ConstExpr(3))}
	other := []Constraint{Le(VarExpr(x), ConstExpr(-1))}
	d := DigestOf(stored)

	var lru lruCache
	lru.add(d, boundsSig(tbl, stored), 0, stored, Unsat, nil, 8)

	// Same digest, different conjunction: must miss (the stored Unsat
	// verdict would be wrong for `other`).
	if res, _, ok := lru.lookup(d, other); ok {
		t.Fatalf("colliding lookup served stored verdict %v", res)
	}
	// The genuine conjunction still hits.
	if _, _, ok := lru.lookup(d, stored); !ok {
		t.Fatal("exact conjunction missed its own entry")
	}
}

// TestDigestNoAffineSumCollision: regression for a structural collision in
// the additive digest. Raw FNV-64a propagates a low-bit Var difference as a
// prefix-independent additive constant, so conjunctions pairing the same
// constraint shapes over different variables (per-character string
// constraints, e.g. c_i >= 'A' && c_i <= 'F' for successive i) summed to
// equal digests roughly half the time — collapsing the cache hit rate from
// ~99% to ~2% on thttpd. mix64's avalanche finalizer breaks the affine
// structure; this pins the exact colliding pair found in that run.
func TestDigestNoAffineSumCollision(t *testing.T) {
	mk := func(op ConstraintOp, k int64, v Var) Constraint {
		return Constraint{Op: op, E: LinExpr{Const: k, Terms: []Term{{Coeff: 1, Var: v}}}}
	}
	overVar := func(v Var) []Constraint {
		return []Constraint{mk(OpNe, -32, v), mk(OpLe, -37, v)}
	}
	if DigestOf(overVar(1)) == DigestOf(overVar(3)) {
		t.Fatal("digests of same-shape conjunctions over different variables collide")
	}
	// Sweep many same-shape variable pairs: none may collide.
	seen := make(map[Digest]Var)
	for v := Var(0); v < 256; v++ {
		d := DigestOf(overVar(v))
		if prev, dup := seen[d]; dup {
			t.Fatalf("digest collision between var %d and var %d", prev, v)
		}
		seen[d] = v
	}
}

// TestCacheBoundsSignature: on the cross-table path (lookupBsig, used by
// the SharedCache's shards), the same conjunction over a variable whose
// intrinsic VarTable bounds differ must not share an exact-match entry —
// parallel executors build their own tables, Var IDs recur across them,
// and the same structural query can flip verdicts with the bounds. (The
// per-executor LRU and heuristic fast paths stay single-table, where no
// signature is needed.)
func TestCacheBoundsSignature(t *testing.T) {
	wide := NewVarTable()
	x1 := wide.NewVar("x") // unbounded
	narrow := NewVarTable()
	x2 := narrow.NewVarBounded("x", 0, 255) // same Var ID, byte-bounded
	if x1 != x2 {
		t.Fatalf("test premise broken: var IDs differ (%d vs %d)", x1, x2)
	}
	cons := []Constraint{Ge(VarExpr(x1), ConstExpr(300))}
	sigWide, sigNarrow := boundsSig(wide, cons), boundsSig(narrow, cons)
	if sigWide == sigNarrow {
		t.Fatal("bounds signatures agree across differently-bounded tables")
	}
	var lru lruCache
	d := DigestOf(cons)
	lru.add(d, sigWide, 0, cons, Sat, Model{x1: 300}, 8)
	// Under the byte-bounded table the same structural query is Unsat; a
	// bounds-blind cache would replay the Sat verdict.
	if e := lru.lookupBsig(d, sigNarrow, cons); e != nil {
		t.Fatalf("cross-table lookup served %v", e.res)
	}
	if e := lru.lookupBsig(d, sigWide, cons); e == nil {
		t.Fatal("same-table lookup missed")
	}
}

// TestCacheFastUnsatSubset: with FastPaths enabled, once a small
// conjunction is refuted, any superset query is answered by the
// UNSAT-core fast path without a physical solve.
func TestCacheFastUnsatSubset(t *testing.T) {
	tbl := NewVarTable()
	x := tbl.NewVar("x")
	y := tbl.NewVar("y")
	cs := NewCached(New())
	cs.FastPaths = true
	core := []Constraint{Ge(VarExpr(x), ConstExpr(10)), Le(VarExpr(x), ConstExpr(5))}
	if res, _ := cs.Check(tbl, core); res != Unsat {
		t.Fatalf("core: %v, want unsat", res)
	}
	physical := cs.S.Stats.Checks
	super := append(append([]Constraint(nil), core...), Ge(VarExpr(y), ConstExpr(0)))
	res, _ := cs.Check(tbl, super)
	if res != Unsat {
		t.Fatalf("superset: %v, want unsat", res)
	}
	if cs.FastUnsat != 1 {
		t.Errorf("FastUnsat = %d, want 1", cs.FastUnsat)
	}
	if cs.S.Stats.Checks != physical {
		t.Errorf("fast path still performed a physical solve (%d -> %d)",
			physical, cs.S.Stats.Checks)
	}
	// Fast-path answers are cache answers: like exact hits, they do not
	// count as logical solver queries.
	if cs.Queries.Unsat != 1 {
		t.Errorf("Queries.Unsat = %d, want 1", cs.Queries.Unsat)
	}
}

// TestCacheFastSatModelReuse: with FastPaths enabled, a remembered model
// satisfying every query constraint proves Sat without a physical solve.
func TestCacheFastSatModelReuse(t *testing.T) {
	tbl := NewVarTable()
	x := tbl.NewVar("x")
	cs := NewCached(New())
	cs.FastPaths = true
	full := []Constraint{Ge(VarExpr(x), ConstExpr(3)), Le(VarExpr(x), ConstExpr(9))}
	res, m := cs.Check(tbl, full)
	if res != Sat {
		t.Fatalf("full: %v, want sat", res)
	}
	physical := cs.S.Stats.Checks
	// The subset query is satisfied by the remembered model.
	sub := []Constraint{Ge(VarExpr(x), ConstExpr(3))}
	res, m2 := cs.Check(tbl, sub)
	if res != Sat {
		t.Fatalf("subset: %v, want sat", res)
	}
	if cs.FastSat != 1 {
		t.Errorf("FastSat = %d, want 1", cs.FastSat)
	}
	if cs.S.Stats.Checks != physical {
		t.Errorf("fast path still performed a physical solve")
	}
	for _, c := range sub {
		if !c.Holds(m2) {
			t.Errorf("reused model %v violates %s (original %v)", m2, c.String(tbl), m)
		}
	}
}

// TestCacheFastPathsOffByDefault: the heuristic shortcuts are opt-in —
// reused models carry different (if valid) concrete values and core
// subsumption can sharpen a budget-exhausted Unknown into Unsat, both of
// which can steer a model-sensitive executor differently. By default a
// subset/superset query that misses the exact layer must reach the
// physical solver.
func TestCacheFastPathsOffByDefault(t *testing.T) {
	tbl := NewVarTable()
	x := tbl.NewVar("x")
	y := tbl.NewVar("y")
	cs := NewCached(New())
	core := []Constraint{Ge(VarExpr(x), ConstExpr(10)), Le(VarExpr(x), ConstExpr(5))}
	if res, _ := cs.Check(tbl, core); res != Unsat {
		t.Fatalf("core: %v, want unsat", res)
	}
	physical := cs.S.Stats.Checks
	super := append(append([]Constraint(nil), core...), Ge(VarExpr(y), ConstExpr(0)))
	if res, _ := cs.Check(tbl, super); res != Unsat {
		t.Fatalf("superset: %v, want unsat", res)
	}
	if cs.S.Stats.Checks != physical+1 {
		t.Errorf("physical checks %d -> %d, want a real solve with FastPaths off",
			physical, cs.S.Stats.Checks)
	}
	if cs.FastSat != 0 || cs.FastUnsat != 0 {
		t.Errorf("fast-path counters moved while disabled: sat=%d unsat=%d",
			cs.FastSat, cs.FastUnsat)
	}
}

// TestCacheLRUEviction: exceeding MaxEntries evicts the least recently
// used entry (and only that), counted in Evictions — no wholesale reset.
func TestCacheLRUEviction(t *testing.T) {
	tbl := NewVarTable()
	vars := make([]Var, 3)
	for i := range vars {
		vars[i] = tbl.NewVar("v")
	}
	cs := NewCached(New())
	cs.MaxEntries = 2
	q := func(i int) []Constraint {
		return []Constraint{Eq(VarExpr(vars[i]), ConstExpr(int64(i+1)))}
	}
	for i := 0; i < 3; i++ {
		if res, _ := cs.Check(tbl, q(i)); res != Sat {
			t.Fatalf("query %d: %v", i, res)
		}
	}
	if cs.Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", cs.Evictions)
	}
	if got := cs.lru.len(); got != 2 {
		t.Errorf("lru holds %d entries, want 2", got)
	}
	// Queries 1 and 2 survived the eviction and hit the exact layer. (Check
	// them before re-touching query 0: re-inserting it would evict another.)
	hits := cs.Hits
	cs.Check(tbl, q(1))
	cs.Check(tbl, q(2))
	if cs.Hits != hits+2 {
		t.Errorf("surviving entries missed: hits %d -> %d", hits, cs.Hits)
	}
	// Query 0 was evicted: re-checking it is an exact-layer miss (with the
	// heuristic fast paths off by default, it re-solves physically).
	misses := cs.Misses
	cs.Check(tbl, q(0))
	if cs.Misses != misses+1 {
		t.Errorf("evicted query hit the exact layer (misses %d -> %d)", misses, cs.Misses)
	}
}

// TestCacheDisabled: the ablation knob bypasses every layer — identical
// repeated queries each reach the physical solver — while the logical
// counters and wall clock keep working.
func TestCacheDisabled(t *testing.T) {
	tbl := NewVarTable()
	x := tbl.NewVar("x")
	cs := NewCached(New())
	cs.Disabled = true
	cons := []Constraint{Ge(VarExpr(x), ConstExpr(3))}
	cs.Check(tbl, cons)
	cs.Check(tbl, cons)
	if cs.Hits != 0 || cs.Misses != 0 {
		t.Errorf("disabled cache recorded hits=%d misses=%d", cs.Hits, cs.Misses)
	}
	if cs.S.Stats.Checks != 2 {
		t.Errorf("physical checks = %d, want 2", cs.S.Stats.Checks)
	}
	if cs.Queries.Checks != 2 || cs.Queries.Sat != 2 {
		t.Errorf("logical counters = %+v, want 2 checks / 2 sat", cs.Queries)
	}
	if cs.WallTime() <= 0 {
		t.Errorf("WallTime = %v, want > 0 after physical solves", cs.WallTime())
	}
}

// TestCacheLogicalCountersMatchVerdicts: Queries splits by outcome exactly
// once per query, whether served from cache layers or solved.
func TestCacheLogicalCountersMatchVerdicts(t *testing.T) {
	tbl := NewVarTable()
	x := tbl.NewVar("x")
	cs := NewCached(New())
	sat := []Constraint{Ge(VarExpr(x), ConstExpr(0))}
	unsat := []Constraint{Lt(VarExpr(x), VarExpr(x))}
	cs.Check(tbl, sat)
	cs.Check(tbl, sat) // exact hit: no logical query
	cs.Check(tbl, unsat)
	if cs.Queries.Checks != 2 || cs.Queries.Sat != 1 || cs.Queries.Unsat != 1 {
		t.Errorf("Queries = %+v, want checks=2 sat=1 unsat=1", cs.Queries)
	}
	if cs.Hits != 1 {
		t.Errorf("Hits = %d, want 1", cs.Hits)
	}
}

// TestWallTimeConcurrentReaders: progress snapshots read WallTime while
// the owning goroutine solves; under -race this proves the accumulator is
// genuinely atomic (satellite requirement).
func TestWallTimeConcurrentReaders(t *testing.T) {
	tbl := NewVarTable()
	x := tbl.NewVar("x")
	cs := NewCached(New())
	cs.Disabled = true // force a physical solve (and recordWall) per query
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				_ = cs.WallTime()
			}
		}
	}()
	for i := 0; i < 200; i++ {
		cs.Check(tbl, []Constraint{Ge(VarExpr(x), ConstExpr(int64(i)))})
	}
	close(done)
	wg.Wait()
	if cs.WallTime() <= 0 || cs.WallTime() > time.Minute {
		t.Errorf("implausible accumulated wall time %v", cs.WallTime())
	}
}
