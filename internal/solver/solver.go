package solver

import (
	"context"
	"sort"
)

// Solver decides conjunctions of constraints. The zero value is usable and
// applies default budgets; budgets make every call terminate.
type Solver struct {
	// MaxPasses bounds interval-propagation sweeps per node.
	MaxPasses int
	// MaxNodes bounds branch-and-propagate search nodes per Check.
	MaxNodes int
	// MaxFMConstraints aborts Fourier–Motzkin when intermediate systems
	// grow beyond this size; MaxFMVars skips it entirely for systems with
	// more variables than this.
	MaxFMConstraints int
	MaxFMVars        int

	// Stats counters (updated by Check).
	Stats Stats
}

// Stats counts solver activity.
type Stats struct {
	Checks  int
	Sat     int
	Unsat   int
	Unknown int
}

// Default budgets.
const (
	DefaultMaxPasses        = 64
	DefaultMaxNodes         = 20_000
	DefaultMaxFMConstraints = 4_096
)

// New returns a solver with default budgets.
func New() *Solver {
	return &Solver{
		MaxPasses:        DefaultMaxPasses,
		MaxNodes:         DefaultMaxNodes,
		MaxFMConstraints: DefaultMaxFMConstraints,
	}
}

func (s *Solver) maxPasses() int {
	if s.MaxPasses <= 0 {
		return DefaultMaxPasses
	}
	return s.MaxPasses
}

func (s *Solver) maxNodes() int {
	if s.MaxNodes <= 0 {
		return DefaultMaxNodes
	}
	return s.MaxNodes
}

func (s *Solver) maxFM() int {
	if s.MaxFMConstraints <= 0 {
		return DefaultMaxFMConstraints
	}
	return s.MaxFMConstraints
}

// Check decides the conjunction of cons over variables from t. On Sat the
// returned model assigns every variable that occurs in cons (other
// variables are unconstrained; use their intrinsic bounds or zero).
func (s *Solver) Check(t *VarTable, cons []Constraint) (Result, Model) {
	return s.CheckCtx(context.Background(), t, cons)
}

// CheckCtx is Check under a context. A cancelled or expired context makes
// the query resolve to Unknown without searching — callers that explore
// optimistically on Unknown stay sound, and the enclosing executor observes
// the same cancellation at its own loop and stops. Every individual query
// is already bounded by the solver budgets, so the context is consulted
// between the solving stages rather than inside the inner search loops.
func (s *Solver) CheckCtx(ctx context.Context, t *VarTable, cons []Constraint) (Result, Model) {
	s.Stats.Checks++
	if ctx != nil && ctx.Err() != nil {
		s.Stats.Unknown++
		return Unknown, nil
	}
	// Trivial screening.
	live := make([]Constraint, 0, len(cons))
	for _, c := range cons {
		if c.IsTriviallyTrue() {
			continue
		}
		if c.IsTriviallyFalse() {
			s.Stats.Unsat++
			return Unsat, nil
		}
		live = append(live, c)
	}
	if len(live) == 0 {
		s.Stats.Sat++
		return Sat, Model{}
	}

	p := newProblem(t, live)
	if !p.propagate(s.maxPasses()) {
		s.Stats.Unsat++
		return Unsat, nil
	}
	budget := s.maxNodes()
	if m, found := p.search(&budget, s.maxPasses()); found {
		s.Stats.Sat++
		return Sat, m
	}
	// Model search failed: attempt a rational infeasibility proof (sound
	// for the integer problem too). Fourier–Motzkin is quadratic in the
	// variable count, so it is the last resort and is skipped for very
	// wide systems — and under a cancelled context.
	if (ctx == nil || ctx.Err() == nil) && len(p.vars) <= s.maxFMVars() {
		if feasible, ok := p.fourierMotzkin(s.maxFM()); ok && !feasible {
			s.Stats.Unsat++
			return Unsat, nil
		}
	}
	s.Stats.Unknown++
	return Unknown, nil
}

// MaxFMVars bounds the variable count for which Fourier–Motzkin runs.
const DefaultMaxFMVars = 96

func (s *Solver) maxFMVars() int {
	if s.MaxFMVars <= 0 {
		return DefaultMaxFMVars
	}
	return s.MaxFMVars
}

// --- extended arithmetic (int64 with ±∞) ---

type extClass int8

const (
	ninf extClass = -1
	fin  extClass = 0
	pinf extClass = 1
)

type ext struct {
	v   int64
	cls extClass
}

var (
	extNegInf = ext{cls: ninf}
	extPosInf = ext{cls: pinf}
)

func extOf(v int64) ext { return ext{v: v} }

func (a ext) isFin() bool { return a.cls == fin }

// less reports a < b in the extended order.
func (a ext) less(b ext) bool {
	if a.cls != b.cls {
		return a.cls < b.cls
	}
	return a.cls == fin && a.v < b.v
}

const (
	maxI64 = int64(^uint64(0) >> 1)
	minI64 = -maxI64 - 1
)

// satAdd adds finite int64s, saturating to ±∞ on overflow (sound for bound
// arithmetic: saturation only loosens bounds).
func satAdd(a, b int64) ext {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		if a > 0 {
			return extPosInf
		}
		return extNegInf
	}
	return extOf(s)
}

// extAdd adds extended values; (+∞) + (−∞) never occurs in our usage (the
// caller checks finiteness first), but is defined as +∞ to stay loose.
func extAdd(a, b ext) ext {
	if a.cls == fin && b.cls == fin {
		return satAdd(a.v, b.v)
	}
	if a.cls == pinf || b.cls == pinf {
		return extPosInf
	}
	return extNegInf
}

// mulCoeff multiplies an extended value by a non-zero finite coefficient.
func mulCoeff(k int64, a ext) ext {
	switch a.cls {
	case pinf:
		if k > 0 {
			return extPosInf
		}
		return extNegInf
	case ninf:
		if k > 0 {
			return extNegInf
		}
		return extPosInf
	}
	p := k * a.v
	if a.v != 0 && (p/a.v != k) {
		// Overflow: saturate by sign.
		if (k > 0) == (a.v > 0) {
			return extPosInf
		}
		return extNegInf
	}
	return extOf(p)
}

// floorDiv returns ⌊a/b⌋ for b ≠ 0.
func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

// ceilDiv returns ⌈a/b⌉ for b ≠ 0.
func ceilDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) == (b < 0)) {
		q++
	}
	return q
}

// interval is a (possibly unbounded) integer range.
type interval struct {
	lo, hi ext
}

func fullInterval() interval { return interval{lo: extNegInf, hi: extPosInf} }

func (iv interval) empty() bool { return iv.hi.less(iv.lo) }

func (iv interval) fixed() (int64, bool) {
	if iv.lo.isFin() && iv.hi.isFin() && iv.lo.v == iv.hi.v {
		return iv.lo.v, true
	}
	return 0, false
}

func (iv interval) contains(v int64) bool {
	e := extOf(v)
	return !e.less(iv.lo) && !iv.hi.less(e)
}

// tightenHi lowers the upper bound to at most h; reports whether changed.
func (iv *interval) tightenHi(h ext) bool {
	if h.less(iv.hi) {
		iv.hi = h
		return true
	}
	return false
}

// tightenLo raises the lower bound to at least l; reports whether changed.
func (iv *interval) tightenLo(l ext) bool {
	if iv.lo.less(l) {
		iv.lo = l
		return true
	}
	return false
}

// --- problem state ---

type problem struct {
	table *VarTable
	cons  []Constraint
	// vars lists the distinct variables occurring in cons; idx maps a Var
	// to its dense index.
	vars []Var
	idx  map[Var]int
	ivs  []interval
	// neq collects single-variable unit-coefficient disequalities as
	// (dense index, forbidden value).
	neq []neqEntry
}

type neqEntry struct {
	di  int
	val int64
}

func newProblem(t *VarTable, cons []Constraint) *problem {
	p := &problem{table: t, cons: cons, idx: make(map[Var]int)}
	for _, c := range cons {
		for _, tm := range c.E.Terms {
			if _, seen := p.idx[tm.Var]; !seen {
				p.idx[tm.Var] = len(p.vars)
				p.vars = append(p.vars, tm.Var)
			}
		}
	}
	p.ivs = make([]interval, len(p.vars))
	for i, v := range p.vars {
		iv := fullInterval()
		info := t.Info(v)
		if info.HasLo {
			iv.lo = extOf(info.Lo)
		}
		if info.HasHi {
			iv.hi = extOf(info.Hi)
		}
		p.ivs[i] = iv
	}
	for _, c := range cons {
		if c.Op != OpNe {
			continue
		}
		if v, coeff, ok := c.E.SingleVar(); ok && (coeff == 1 || coeff == -1) {
			// coeff·v + k ≠ 0  ⇒  v ≠ −k/coeff (only when divisible).
			k := c.E.Const
			if k%coeff == 0 {
				p.neq = append(p.neq, neqEntry{di: p.idx[v], val: -k / coeff})
			}
		}
	}
	return p
}

func (p *problem) clone() *problem {
	q := *p
	q.ivs = make([]interval, len(p.ivs))
	copy(q.ivs, p.ivs)
	return &q
}

// propagate tightens intervals to a fixpoint; returns false on emptiness.
func (p *problem) propagate(maxPasses int) bool {
	for pass := 0; pass < maxPasses; pass++ {
		changed := false
		for _, c := range p.cons {
			switch c.Op {
			case OpLe:
				ch, ok := p.propagateLe(c.E)
				if !ok {
					return false
				}
				changed = changed || ch
			case OpEq:
				ch1, ok := p.propagateLe(c.E)
				if !ok {
					return false
				}
				ch2, ok := p.propagateLe(c.E.Neg())
				if !ok {
					return false
				}
				changed = changed || ch1 || ch2
			case OpNe:
				// Handled by hole punching below and by verification.
			}
		}
		for _, ne := range p.neq {
			iv := &p.ivs[ne.di]
			if v, ok := iv.fixed(); ok && v == ne.val {
				return false
			}
			if iv.lo.isFin() && iv.lo.v == ne.val {
				iv.lo = extOf(ne.val + 1)
				changed = true
			}
			if iv.hi.isFin() && iv.hi.v == ne.val {
				iv.hi = extOf(ne.val - 1)
				changed = true
			}
			if iv.empty() {
				return false
			}
		}
		if !changed {
			return true
		}
	}
	return true
}

// propagateLe tightens bounds using Σ ci·xi ≤ −Const. For each term i,
//
//	ci·xi ≤ −Const − Σ_{j≠i} cj·xj ≤ −Const − min(Σ_{j≠i} cj·xj).
func (p *problem) propagateLe(e LinExpr) (changed, ok bool) {
	// Feasibility of the constraint itself: min(Σ ci·xi) ≤ −Const.
	totalMin := extOf(0)
	for _, tm := range e.Terms {
		totalMin = extAdd(totalMin, p.termMin(tm))
	}
	if totalMin.isFin() && totalMin.v > -e.Const {
		return false, false
	}
	if totalMin.cls == pinf {
		return false, false
	}
	for i, tm := range e.Terms {
		// min over the other terms.
		rest := extOf(0)
		for j, tj := range e.Terms {
			if j == i {
				continue
			}
			rest = extAdd(rest, p.termMin(tj))
		}
		if !rest.isFin() {
			continue // unbounded rest: no tightening possible
		}
		rhs := satAdd(-e.Const, -rest.v)
		if !rhs.isFin() {
			continue
		}
		di := p.idx[tm.Var]
		iv := &p.ivs[di]
		if tm.Coeff > 0 {
			if iv.tightenHi(extOf(floorDiv(rhs.v, tm.Coeff))) {
				changed = true
			}
		} else {
			if iv.tightenLo(extOf(ceilDiv(rhs.v, tm.Coeff))) {
				changed = true
			}
		}
		if iv.empty() {
			return changed, false
		}
	}
	return changed, true
}

// termMin returns min(ci·xi) over the variable's interval.
func (p *problem) termMin(tm Term) ext {
	iv := p.ivs[p.idx[tm.Var]]
	if tm.Coeff > 0 {
		return mulCoeff(tm.Coeff, iv.lo)
	}
	return mulCoeff(tm.Coeff, iv.hi)
}

// --- model search ---

// search attempts to build an integer model by branching on candidate
// values and re-propagating. It is sound (returned models are verified) but
// intentionally incomplete; the FM pass provides unsat proofs.
func (p *problem) search(budget *int, maxPasses int) (Model, bool) {
	if *budget <= 0 {
		return nil, false
	}
	*budget--
	if !p.propagate(maxPasses) {
		return nil, false
	}
	// Find the first unfixed variable, preferring small finite domains.
	branch := -1
	var branchSize ext = extPosInf
	for i := range p.ivs {
		if _, ok := p.ivs[i].fixed(); ok {
			continue
		}
		size := extPosInf
		if p.ivs[i].lo.isFin() && p.ivs[i].hi.isFin() {
			size = extOf(p.ivs[i].hi.v - p.ivs[i].lo.v)
		}
		if branch == -1 || size.less(branchSize) {
			branch = i
			branchSize = size
		}
	}
	if branch == -1 {
		m := p.modelFromFixed()
		if p.verify(m) {
			return m, true
		}
		return nil, false
	}
	for _, cand := range p.candidates(branch) {
		q := p.clone()
		q.ivs[branch] = interval{lo: extOf(cand), hi: extOf(cand)}
		if m, ok := q.search(budget, maxPasses); ok {
			return m, true
		}
		if *budget <= 0 {
			return nil, false
		}
	}
	return nil, false
}

// candidates proposes trial values for the variable at dense index di.
func (p *problem) candidates(di int) []int64 {
	iv := p.ivs[di]
	forbidden := make(map[int64]bool)
	for _, ne := range p.neq {
		if ne.di == di {
			forbidden[ne.val] = true
		}
	}
	var out []int64
	add := func(v int64) {
		if !iv.contains(v) || forbidden[v] {
			return
		}
		for _, x := range out {
			if x == v {
				return
			}
		}
		out = append(out, v)
	}
	// Preference order: small magnitudes first for readable witnesses.
	if iv.contains(0) {
		add(0)
	}
	if iv.lo.isFin() {
		add(iv.lo.v)
		add(iv.lo.v + 1)
		add(iv.lo.v + 2)
	}
	if iv.hi.isFin() {
		add(iv.hi.v)
		add(iv.hi.v - 1)
	}
	if iv.lo.isFin() && iv.hi.isFin() {
		add(iv.lo.v + (iv.hi.v-iv.lo.v)/2)
	}
	if len(out) == 0 {
		// Fully unbounded with a forbidden hole at 0 (or holes near it):
		// probe small values.
		for v := int64(1); v <= 4 && len(out) == 0; v++ {
			add(v)
			add(-v)
		}
	}
	return out
}

func (p *problem) modelFromFixed() Model {
	m := make(Model, len(p.vars))
	for i, v := range p.vars {
		val, _ := p.ivs[i].fixed()
		m[v] = val
	}
	return m
}

func (p *problem) verify(m Model) bool {
	for _, c := range p.cons {
		if !c.Holds(m) {
			return false
		}
	}
	return true
}

// --- Fourier–Motzkin ---

// fmRow is Σ coeffs·x ≤ rhs over dense indices.
type fmRow struct {
	coeffs []int64
	rhs    int64
}

func gcd64(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// mulOK multiplies with overflow detection.
func mulOK(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}

func addOK(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

// fourierMotzkin tests rational feasibility of the LE/EQ constraints plus
// intrinsic/propagated bounds. Returns (feasible, ok); ok=false means the
// procedure gave up (size cap or overflow) and nothing can be concluded.
func (p *problem) fourierMotzkin(maxRows int) (feasible, ok bool) {
	n := len(p.vars)
	var rows []fmRow
	addRow := func(coeffs []int64, rhs int64) {
		rows = append(rows, fmRow{coeffs: coeffs, rhs: rhs})
	}
	rowFrom := func(e LinExpr, negate bool) {
		coeffs := make([]int64, n)
		for _, tm := range e.Terms {
			c := tm.Coeff
			if negate {
				c = -c
			}
			coeffs[p.idx[tm.Var]] = c
		}
		rhs := -e.Const
		if negate {
			rhs = e.Const
		}
		addRow(coeffs, rhs)
	}
	for _, c := range p.cons {
		switch c.Op {
		case OpLe:
			rowFrom(c.E, false)
		case OpEq:
			rowFrom(c.E, false)
			rowFrom(c.E, true)
		}
	}
	for i := range p.ivs {
		if p.ivs[i].hi.isFin() {
			coeffs := make([]int64, n)
			coeffs[i] = 1
			addRow(coeffs, p.ivs[i].hi.v)
		}
		if p.ivs[i].lo.isFin() {
			coeffs := make([]int64, n)
			coeffs[i] = -1
			addRow(coeffs, -p.ivs[i].lo.v)
		}
	}
	for vi := 0; vi < n; vi++ {
		var pos, neg, rest []fmRow
		for _, r := range rows {
			switch {
			case r.coeffs[vi] > 0:
				pos = append(pos, r)
			case r.coeffs[vi] < 0:
				neg = append(neg, r)
			default:
				rest = append(rest, r)
			}
		}
		if len(rest)+len(pos)*len(neg) > maxRows {
			return true, false
		}
		rows = rest
		for _, pr := range pos {
			for _, nr := range neg {
				combined, combOK := combineRows(pr, nr, vi, n)
				if !combOK {
					return true, false
				}
				// Constant row: check immediately; variable row: keep.
				if isZeroRow(combined.coeffs) {
					if combined.rhs < 0 {
						return false, true
					}
					continue
				}
				rows = append(rows, combined)
			}
		}
	}
	for _, r := range rows {
		if isZeroRow(r.coeffs) && r.rhs < 0 {
			return false, true
		}
	}
	return true, true
}

func isZeroRow(coeffs []int64) bool {
	for _, c := range coeffs {
		if c != 0 {
			return false
		}
	}
	return true
}

// combineRows eliminates variable vi from pr (coeff > 0) and nr (coeff < 0):
// (−nr.c)·pr + (pr.c)·nr.
func combineRows(pr, nr fmRow, vi, n int) (fmRow, bool) {
	a := pr.coeffs[vi]  // > 0
	b := -nr.coeffs[vi] // > 0
	g := gcd64(a, b)
	a /= g
	b /= g
	out := fmRow{coeffs: make([]int64, n)}
	for i := 0; i < n; i++ {
		x, ok1 := mulOK(b, pr.coeffs[i])
		y, ok2 := mulOK(a, nr.coeffs[i])
		if !ok1 || !ok2 {
			return fmRow{}, false
		}
		s, ok3 := addOK(x, y)
		if !ok3 {
			return fmRow{}, false
		}
		out.coeffs[i] = s
	}
	x, ok1 := mulOK(b, pr.rhs)
	y, ok2 := mulOK(a, nr.rhs)
	if !ok1 || !ok2 {
		return fmRow{}, false
	}
	s, ok3 := addOK(x, y)
	if !ok3 {
		return fmRow{}, false
	}
	out.rhs = s
	// Normalize by gcd to slow coefficient growth.
	g = 0
	for _, c := range out.coeffs {
		g = gcd64(g, c)
	}
	if g > 1 {
		for i := range out.coeffs {
			out.coeffs[i] /= g
		}
		out.rhs = floorDiv(out.rhs, g)
	}
	return out, true
}

// SortedVars returns the problem variables of a constraint set in id order
// (useful for deterministic iteration in diagnostics and tests).
func SortedVars(cons []Constraint) []Var {
	seen := make(map[Var]struct{})
	var out []Var
	for _, c := range cons {
		for _, tm := range c.E.Terms {
			if _, ok := seen[tm.Var]; !ok {
				seen[tm.Var] = struct{}{}
				out = append(out, tm.Var)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
