package persist

import (
	"repro/internal/bytecode"
	"repro/internal/obs"
	"repro/internal/solver"
)

// Config wires a persistent cache session to one analysis run.
type Config struct {
	// Dir is the store directory (created if missing).
	Dir string
	// Program is the freshly compiled program; its function hashes drive
	// invalidation.
	Program *bytecode.Program
	// Shared is the run's SharedCache: loaded entries are seeded into it
	// and its spill hook is pointed at the session's sink. Required.
	Shared *solver.SharedCache
	// Obs, when set, receives solvercache.persist.* metrics.
	Obs *obs.Obs
	// SpillDepth bounds the write-behind channel (0 = DefaultSpillDepth).
	SpillDepth int
	// Writer geometry (zero = defaults).
	Options Options
}

// SessionStats summarizes a session's persistence traffic. Load-side
// numbers are final after Attach; spill-side numbers are final after Close.
type SessionStats struct {
	Loaded      int64 // entries verified and seeded at warm start
	Rejected    int64 // verified-on-load rejections (corruption)
	Invalidated int64 // entries dropped by FnHash diff or tombstone
	Spilled     int64 // entries written behind Check this run
	Dropped     int64 // spill offers lost to channel overflow
	Deduped     int64 // spill offers already on disk
}

// Session is one run's attachment to a persistent solver-cache store:
// entries are loaded, diffed against the current program, verified, and
// seeded at Attach; fresh verdicts spill asynchronously during the run;
// Close seals the store and advances its manifest to the current program.
type Session struct {
	Store *Store
	Sink  *Sink
	Diff  FnDiff

	shared *solver.SharedCache
	fns    []Fn
	ob     *obs.Obs
	stats  SessionStats
}

// Attach opens (or creates) the store, invalidates entries whose origin
// function changed (manifest FnHash diff plus pending tombstones), loads
// and verifies the survivors into cfg.Shared, and installs the write-behind
// spill hook. A load error degrades to a cold start with an already-sealed
// store left intact; it is reported through the returned session's Stats,
// never as a hard failure — except for store-level setup errors (unusable
// directory, foreign program), which do fail.
func Attach(cfg Config) (*Session, error) {
	st, err := Create(cfg.Dir, cfg.Program.Name)
	if err != nil {
		return nil, err
	}
	st.Obs = cfg.Obs
	fns := FnsOf(cfg.Program)
	diff := DiffFns(st.Fns(), fns)

	drop := make(map[uint64]bool, len(diff.Dead))
	for h := range diff.Dead {
		drop[h] = true
	}
	for _, h := range st.Tombstones() {
		drop[h] = true
	}

	s := &Session{
		Store:  st,
		Sink:   NewSink(st, cfg.Options, cfg.SpillDepth, cfg.Obs),
		Diff:   diff,
		shared: cfg.Shared,
		fns:    fns,
		ob:     cfg.Obs,
	}
	loadStats, loadErr := st.Load(drop, func(e Entry) {
		cfg.Shared.Seed(e.D, e.Bsig, e.Origin, e.Cons, e.Res, e.Model)
		s.Sink.MarkSeen(e.D)
	})
	// A damaged segment aborts its own load mid-way; whatever seeded before
	// the damage stays usable and the run proceeds cold for the rest.
	_ = loadErr
	s.stats.Loaded = loadStats.Loaded
	s.stats.Rejected = loadStats.Rejected
	s.stats.Invalidated = loadStats.Invalidated
	if cfg.Obs != nil {
		m := cfg.Obs.Metrics
		m.Counter(obs.MetricPersistLoaded).Add(loadStats.Loaded)
		m.Counter(obs.MetricPersistLoadRejects).Add(loadStats.Rejected)
		m.Counter(obs.MetricPersistInvalidated).Add(loadStats.Invalidated)
	}
	cfg.Shared.Spill = s.Sink.Offer
	return s, nil
}

// Stats returns the session's traffic so far (spill-side totals settle at
// Close).
func (s *Session) Stats() SessionStats {
	out := s.stats
	out.Spilled = s.Sink.Spilled()
	out.Dropped = s.Sink.Dropped()
	out.Deduped = s.Sink.Deduped()
	return out
}

// PersistHits returns the warm-start hits served from seeded entries.
func (s *Session) PersistHits() int64 {
	return s.shared.Counters().PersistHits
}

// Close drains and seals the spill, records the current program's function
// set in the manifest (the next run diffs against it), and clears consumed
// tombstones. Call exactly once, after the run's executors have stopped.
func (s *Session) Close() error {
	s.shared.Spill = nil
	err := s.Sink.Close()
	if e := s.Store.SetFns(s.fns); err == nil {
		err = e
	}
	if e := s.Store.ClearTombstones(); err == nil {
		err = e
	}
	if s.ob != nil {
		s.ob.Metrics.Counter(obs.MetricPersistHits).Add(s.PersistHits())
	}
	return err
}
