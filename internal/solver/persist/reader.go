package persist

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/corpus"
)

// LoadStats is the outcome of a warm-start load.
type LoadStats struct {
	// Loaded is the count of entries that decoded, passed verification,
	// and were delivered to the callback.
	Loaded int64
	// Rejected counts entries that decoded but failed the verified-on-load
	// check (digest mismatch or non-satisfying model) — logic-level
	// corruption the block CRC could not see.
	Rejected int64
	// Invalidated counts entries dropped because their origin hash is in
	// the caller's drop set (changed/removed functions, tombstones).
	Invalidated int64
}

// Load streams every entry of every sealed segment through fn, skipping
// entries whose origin is in drop and entries that fail verification.
// Segment-level damage (torn file, bad block) aborts that segment with an
// error but the caller may treat it as a cold start: the store is an
// accelerator, never a source of truth.
func (s *Store) Load(drop map[uint64]bool, fn func(e Entry)) (LoadStats, error) {
	var stats LoadStats
	for _, info := range s.Segments() {
		if err := s.loadSegment(filepath.Join(s.dir, info.Name), drop, fn, &stats); err != nil {
			return stats, err
		}
	}
	return stats, nil
}

func (s *Store) loadSegment(path string, drop map[uint64]bool, fn func(e Entry), stats *LoadStats) error {
	footer, err := readSegFooter(path)
	if err != nil {
		return err
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var raw []byte
	for bi := range footer.Blocks {
		b := &footer.Blocks[bi]
		raw, err = corpus.ReadFramedBlock(f, b.BlockFrame, raw)
		if err != nil {
			return fmt.Errorf("solvercache: %s: %w", path, err)
		}
		r := corpus.NewByteReader(raw)
		for i := 0; i < b.Entries; i++ {
			e, err := decodeEntry(r)
			if err != nil {
				return fmt.Errorf("solvercache: %s: entry %d in block %d: %w", path, i, bi, err)
			}
			if drop != nil && drop[e.Origin] {
				stats.Invalidated++
				continue
			}
			if err := e.Verify(); err != nil {
				stats.Rejected++
				continue
			}
			stats.Loaded++
			fn(e)
		}
	}
	return nil
}

// readSegFooter validates the segment envelope and unmarshals the footer.
func readSegFooter(path string) (*segFooter, error) {
	blob, _, err := corpus.ReadFooterBlob(path, segMagic, trailerMagic)
	if err != nil {
		return nil, fmt.Errorf("solvercache: %w", err)
	}
	var footer segFooter
	if err := json.Unmarshal(blob, &footer); err != nil {
		return nil, fmt.Errorf("solvercache: %s: bad footer: %w", path, err)
	}
	return &footer, nil
}

// OriginCounts scans the store and returns the number of valid entries per
// origin hash (tombstoned and corrupt entries excluded).
func (s *Store) OriginCounts() (map[uint64]int, error) {
	counts := make(map[uint64]int)
	_, err := s.Load(nil, func(e Entry) { counts[e.Origin]++ })
	return counts, err
}

// TombstoneHeaviest tombstones the origin with the most cached entries and
// returns (origin, entryCount). It simulates "the hottest function was
// edited" for the warm-after-edit ablation without touching program source.
// A store with no entries returns (0, 0) and writes nothing.
func TombstoneHeaviest(dir string) (uint64, int, error) {
	s, err := Open(dir)
	if err != nil {
		return 0, 0, err
	}
	counts, err := s.OriginCounts()
	if err != nil {
		return 0, 0, err
	}
	var best uint64
	bestN := 0
	for origin, n := range counts {
		if n > bestN || (n == bestN && origin < best) {
			best, bestN = origin, n
		}
	}
	if bestN == 0 {
		return 0, 0, nil
	}
	if err := s.AddTombstones(best); err != nil {
		return 0, 0, err
	}
	return best, bestN, nil
}
