// Package persist is the disk-backed, cross-run solver cache: it spills
// the verified-on-hit LRU entries of internal/solver (SAT models and UNSAT
// verdicts) to an append-only segment store and seeds them back into a
// SharedCache at the start of a later run, so the Nth analysis of a
// program family re-pays only the solving the first run didn't do.
//
// The on-disk machinery is the internal/corpus segment layer: CRC'd gzip
// blocks with uvarint frame headers, a JSON footer index, and crash-safe
// temp+fsync+rename sealing — only the record codec and footer schema are
// this package's own. Entries are keyed by the order-insensitive
// path-condition digest (solver.Digest) plus the intrinsic-bounds
// signature, and tagged with the summary.FnHash of the function whose
// branch issued the query, so a store survives renames and recompiles but
// sheds exactly the entries whose origin function's body changed.
//
// Correctness never depends on the store: a loaded entry is served only on
// an exact, verified match (digest + bounds signature + constraint
// multiset), every loaded SAT model is re-checked against its own
// conjunction before seeding, and block CRCs catch bit rot below that. A
// stale, torn, or corrupted store degrades hit rate, not verdicts.
package persist

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/bytecode"
	"repro/internal/corpus"
	"repro/internal/obs"
	"repro/internal/summary"
)

// On-disk constants. Distinct magics and names keep solver-cache stores
// self-identifying next to trace-corpus stores (cmd/tracecheck sniffs on
// them).
const (
	segMagic     = "SQCHv01\x00" // first 8 bytes of every cache segment
	trailerMagic = "SQCHFTR1"    // last 8 bytes of every sealed segment

	// SegmentSuffix names solver-cache segment files.
	SegmentSuffix = ".scq"
	// ManifestName is the store's manifest file — deliberately not the
	// corpus's manifest.json, so a directory identifies its own store kind.
	ManifestName = "solvercache.json"

	manifestVersion = 1

	// DefaultBlockBytes is the raw payload target per compressed block.
	// Cache entries are small; small blocks keep load-time partial reads
	// cheap.
	DefaultBlockBytes = 64 << 10
	// DefaultSegmentBytes is the compressed-size target at which the
	// writer seals and rolls. Solver caches are far smaller than trace
	// corpora.
	DefaultSegmentBytes = 1 << 20
)

// Fn is one function's identity in the invalidation manifest: its name (for
// diff reporting and incremental re-analysis) and its content hash
// (summary.FnHash — positions and name excluded, so renames keep the hash).
type Fn struct {
	Name string `json:"name"`
	Hash uint64 `json:"hash"`
}

// FnsOf extracts the manifest function set from a compiled program, sorted
// by name.
func FnsOf(prog *bytecode.Program) []Fn {
	hashes := summary.HashProgram(prog)
	out := make([]Fn, 0, len(prog.Funcs))
	for i, fn := range prog.Funcs {
		out = append(out, Fn{Name: fn.Name, Hash: hashes[i]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SegmentInfo is one sealed segment's manifest entry.
type SegmentInfo struct {
	Name    string `json:"name"`
	Entries int    `json:"entries"`
	Bytes   int64  `json:"bytes"`
}

// storeManifest is the store-level index: which program the cache belongs
// to, the function set it was built against, the sealed segments, and any
// pending origin tombstones.
type storeManifest struct {
	Version  int           `json:"version"`
	Program  string        `json:"program"`
	Fns      []Fn          `json:"fns,omitempty"`
	Segments []SegmentInfo `json:"segments,omitempty"`
	// Tombstones are origin hashes whose entries must be dropped on the
	// next load — manual invalidation (and the warm-after-edit ablation's
	// edit simulation). They are cleared once a session has consumed them;
	// re-spilling from the next run heals the coverage.
	Tombstones []uint64 `json:"tombstones,omitempty"`
}

// Store is an on-disk solver-cache: a directory holding ManifestName plus
// sealed SegmentSuffix segments. The mutex guards the manifest and segment
// name sequence; segments themselves are immutable once sealed.
type Store struct {
	dir string

	// Obs, when set, receives persistence metrics; nil disables them.
	Obs *obs.Obs

	mu      sync.Mutex
	man     storeManifest
	nextSeq int
}

// Create initializes (or reopens) a cache store for the named program. An
// existing store must belong to the same program.
func Create(dir, program string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if _, err := os.Stat(filepath.Join(dir, ManifestName)); err == nil {
		s, err := Open(dir)
		if err != nil {
			return nil, err
		}
		if s.Program() != program {
			return nil, fmt.Errorf("solvercache: store %s belongs to %q, not %q", dir, s.Program(), program)
		}
		return s, nil
	}
	s := &Store{dir: dir, man: storeManifest{Version: manifestVersion, Program: program}}
	if err := s.writeManifestLocked(); err != nil {
		return nil, err
	}
	return s, nil
}

// Open loads an existing store's manifest.
func Open(dir string) (*Store, error) {
	blob, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("solvercache: %s: %w", dir, err)
	}
	s := &Store{dir: dir}
	if err := json.Unmarshal(blob, &s.man); err != nil {
		return nil, fmt.Errorf("solvercache: %s: bad manifest: %w", dir, err)
	}
	if s.man.Version != manifestVersion {
		return nil, fmt.Errorf("solvercache: %s: manifest version %d, want %d", dir, s.man.Version, manifestVersion)
	}
	for _, seg := range s.man.Segments {
		if seq := segmentSeq(seg.Name); seq >= s.nextSeq {
			s.nextSeq = seq + 1
		}
	}
	return s, nil
}

// IsStoreDir reports whether dir looks like a solver-cache store (it holds
// a ManifestName file) — the sniff cmd/tracecheck uses to route a
// directory argument here rather than to the trace corpus.
func IsStoreDir(dir string) bool {
	st, err := os.Stat(filepath.Join(dir, ManifestName))
	return err == nil && !st.IsDir()
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Program returns the program the cache belongs to.
func (s *Store) Program() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.man.Program
}

// Fns returns the manifest's function set (the program version the cached
// entries were built against).
func (s *Store) Fns() []Fn {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Fn(nil), s.man.Fns...)
}

// SetFns records the current program's function set and persists the
// manifest — called at session close, after the run's entries (attributed
// to these functions) have been sealed.
func (s *Store) SetFns(fns []Fn) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.man.Fns = append([]Fn(nil), fns...)
	return s.writeManifestLocked()
}

// Segments returns a snapshot of the sealed segments in seal order.
func (s *Store) Segments() []SegmentInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]SegmentInfo(nil), s.man.Segments...)
}

// TotalEntries returns the manifest's entry count across sealed segments.
func (s *Store) TotalEntries() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, seg := range s.man.Segments {
		n += seg.Entries
	}
	return n
}

// Tombstones returns the pending origin tombstones.
func (s *Store) Tombstones() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]uint64(nil), s.man.Tombstones...)
}

// AddTombstones marks origin hashes for invalidation on the next load and
// persists the manifest.
func (s *Store) AddTombstones(origins ...uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.man.Tombstones = append(s.man.Tombstones, origins...)
	return s.writeManifestLocked()
}

// ClearTombstones removes all pending tombstones (they have been consumed
// by a load) and persists the manifest.
func (s *Store) ClearTombstones() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.man.Tombstones) == 0 {
		return nil
	}
	s.man.Tombstones = nil
	return s.writeManifestLocked()
}

// segmentSeq parses the numeric sequence out of "cache-000042.scq" (-1 when
// the name is foreign).
func segmentSeq(name string) int {
	if !strings.HasPrefix(name, "cache-") || !strings.HasSuffix(name, SegmentSuffix) {
		return -1
	}
	n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "cache-"), SegmentSuffix))
	if err != nil {
		return -1
	}
	return n
}

func (s *Store) allocSegmentName() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	name := fmt.Sprintf("cache-%06d%s", s.nextSeq, SegmentSuffix)
	s.nextSeq++
	return name
}

// registerSegment appends a sealed segment to the manifest and persists it.
func (s *Store) registerSegment(info SegmentInfo) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.man.Segments = append(s.man.Segments, info)
	return s.writeManifestLocked()
}

func (s *Store) writeManifestLocked() error {
	sort.SliceStable(s.man.Segments, func(i, j int) bool {
		si, sj := segmentSeq(s.man.Segments[i].Name), segmentSeq(s.man.Segments[j].Name)
		if si != sj {
			if si < 0 || sj < 0 {
				return sj < 0 && si >= 0
			}
			return si < sj
		}
		return s.man.Segments[i].Name < s.man.Segments[j].Name
	})
	blob, err := json.MarshalIndent(&s.man, "", "  ")
	if err != nil {
		return err
	}
	return corpus.WriteFileAtomic(s.dir, ManifestName, append(blob, '\n'))
}

// FnDiff is the outcome of comparing a store's manifest function set with
// a freshly compiled program.
type FnDiff struct {
	// Dirty are function names whose bodies changed or that are new —
	// incremental re-analysis must re-run candidate paths crossing them.
	Dirty []string
	// Removed are names present in the manifest but gone from the program.
	Removed []string
	// Renamed counts functions whose hash survived under a new name
	// (entries survive: origin hashes are name-independent).
	Renamed int
	// Unchanged counts functions with identical name and hash.
	Unchanged int
	// Dead is the set of origin hashes no longer present in the program —
	// entries attributed to them are invalidated at load.
	Dead map[uint64]bool
}

// HasChanges reports whether anything differs.
func (d FnDiff) HasChanges() bool { return len(d.Dirty) > 0 || len(d.Removed) > 0 }

// DiffFns compares the manifest function set against the current program's.
// An empty old set (fresh store) reports every function unchanged: there is
// nothing to invalidate.
func DiffFns(old, cur []Fn) FnDiff {
	diff := FnDiff{Dead: map[uint64]bool{}}
	if len(old) == 0 {
		diff.Unchanged = len(cur)
		return diff
	}
	oldByName := make(map[string]uint64, len(old))
	for _, f := range old {
		oldByName[f.Name] = f.Hash
	}
	curHashes := make(map[uint64]bool, len(cur))
	curNames := make(map[string]bool, len(cur))
	for _, f := range cur {
		curHashes[f.Hash] = true
		curNames[f.Name] = true
	}
	oldHashes := make(map[uint64]bool, len(old))
	for _, f := range old {
		oldHashes[f.Hash] = true
	}
	for _, f := range cur {
		oldHash, known := oldByName[f.Name]
		switch {
		case known && oldHash == f.Hash:
			diff.Unchanged++
		case !known && oldHashes[f.Hash]:
			// Same body under a new name: entries keyed by the hash live on.
			diff.Renamed++
		default:
			diff.Dirty = append(diff.Dirty, f.Name)
		}
	}
	for _, f := range old {
		if !curNames[f.Name] && !curHashes[f.Hash] {
			diff.Removed = append(diff.Removed, f.Name)
		}
		if !curHashes[f.Hash] {
			diff.Dead[f.Hash] = true
		}
	}
	sort.Strings(diff.Dirty)
	sort.Strings(diff.Removed)
	return diff
}
