package persist

import (
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/solver"
)

// DefaultSpillDepth is the spill channel's default capacity.
const DefaultSpillDepth = 4096

// Sink is the write-behind half of the persistent cache: Offer (a
// solver.SpillFunc) enqueues freshly decided verdicts onto a bounded
// channel and returns immediately — it NEVER blocks the solver's hot path.
// A single drain goroutine encodes and appends them through a Writer.
// When the channel is full the verdict is dropped and counted; a dropped
// spill costs a future cold solve, never correctness.
type Sink struct {
	w  *Writer
	ob *obs.Obs

	ch   chan Entry
	done chan struct{}

	// seen dedups offers by digest: pre-seeded with every digest loaded
	// from disk and extended as offers are accepted, so re-runs do not
	// grow the store with duplicates.
	mu   sync.Mutex
	seen map[solver.Digest]bool

	spilled atomic.Int64
	dropped atomic.Int64
	deduped atomic.Int64

	closeOnce sync.Once
	err       error // first drain error, read after Close
}

// NewSink starts a sink draining into a new Writer on s. depth <= 0 selects
// DefaultSpillDepth.
func NewSink(s *Store, opts Options, depth int, ob *obs.Obs) *Sink {
	if depth <= 0 {
		depth = DefaultSpillDepth
	}
	k := &Sink{
		w:    s.NewWriter(opts),
		ob:   ob,
		ch:   make(chan Entry, depth),
		done: make(chan struct{}),
		seen: make(map[solver.Digest]bool),
	}
	go k.drain()
	return k
}

func (k *Sink) drain() {
	defer close(k.done)
	for e := range k.ch {
		if k.err != nil {
			continue // keep draining so Offer never sticks; drop silently
		}
		if err := k.w.Add(e); err != nil {
			k.err = err
			continue
		}
		k.spilled.Add(1)
		if k.ob != nil {
			k.ob.Metrics.Counter(obs.MetricPersistSpilled).Inc()
		}
	}
}

// MarkSeen records a digest as already persisted so later offers for it are
// deduplicated — called for every entry loaded at warm start.
func (k *Sink) MarkSeen(d solver.Digest) {
	k.mu.Lock()
	k.seen[d] = true
	k.mu.Unlock()
}

// Offer is the solver.SpillFunc: it enqueues one verdict for asynchronous
// persistence. Unknown verdicts (budget artifacts) are not persistable.
// The constraint slice and model are copied here — the caller keeps
// mutating its own buffers.
func (k *Sink) Offer(d solver.Digest, bsig, origin uint64, cons []solver.Constraint, res solver.Result, model solver.Model) {
	if res != solver.Sat && res != solver.Unsat {
		return
	}
	k.mu.Lock()
	if k.seen[d] {
		k.mu.Unlock()
		k.deduped.Add(1)
		if k.ob != nil {
			k.ob.Metrics.Counter(obs.MetricPersistDeduped).Inc()
		}
		return
	}
	k.seen[d] = true
	k.mu.Unlock()

	e := Entry{D: d, Bsig: bsig, Origin: origin, Res: res,
		Cons: append([]solver.Constraint(nil), cons...)}
	if model != nil {
		e.Model = make(solver.Model, len(model))
		for v, val := range model {
			e.Model[v] = val
		}
	}
	select {
	case k.ch <- e:
	default:
		// Channel full: drop rather than back-pressure Check. Un-mark the
		// digest so a later identical verdict can retry.
		k.mu.Lock()
		delete(k.seen, d)
		k.mu.Unlock()
		k.dropped.Add(1)
		if k.ob != nil {
			k.ob.Metrics.Counter(obs.MetricPersistDropped).Inc()
		}
	}
}

// Spilled returns the entries handed to the writer so far.
func (k *Sink) Spilled() int64 { return k.spilled.Load() }

// Dropped returns the offers lost to channel overflow.
func (k *Sink) Dropped() int64 { return k.dropped.Load() }

// Deduped returns the offers skipped as already persisted.
func (k *Sink) Deduped() int64 { return k.deduped.Load() }

// Close drains the channel, seals the in-progress segment, and returns the
// first error encountered by the drain goroutine or the writer. Offer must
// not be called after Close.
func (k *Sink) Close() error {
	k.closeOnce.Do(func() {
		close(k.ch)
		<-k.done
		if cerr := k.w.Close(); k.err == nil {
			k.err = cerr
		}
	})
	return k.err
}
