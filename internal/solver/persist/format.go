package persist

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/corpus"
	"repro/internal/solver"
)

// Entry is one persisted solver verdict: the conjunction's identity (digest
// + bounds signature), its origin function's content hash, the canonical
// constraint multiset, and the verdict with its model (Sat only).
//
// Record layout (all integers varint unless noted):
//
//	uvarint digest sum
//	uvarint digest N
//	uvarint bounds signature
//	uvarint origin FnHash
//	byte    flags (bit0: Sat, bit1: model present)
//	uvarint constraint count
//	cons:   byte op (OpLe/OpEq/OpNe)
//	        varint Const
//	        uvarint term count
//	        terms:  uvarint Var, varint Coeff
//	[model] uvarint assignment count, sorted by Var
//	        each:   uvarint Var, varint value
type Entry struct {
	D      solver.Digest
	Bsig   uint64
	Origin uint64
	Cons   []solver.Constraint
	Res    solver.Result
	Model  solver.Model
}

const (
	entryFlagSat   = 1 << 0
	entryFlagModel = 1 << 1
)

// appendEntry encodes one entry onto dst. Only Sat/Unsat verdicts are
// persistable (Unknown is a budget artifact, filtered upstream).
func appendEntry(dst []byte, e *Entry) []byte {
	dst = binary.AppendUvarint(dst, e.D.Sum)
	dst = binary.AppendUvarint(dst, uint64(e.D.N))
	dst = binary.AppendUvarint(dst, e.Bsig)
	dst = binary.AppendUvarint(dst, e.Origin)
	var flags byte
	if e.Res == solver.Sat {
		flags |= entryFlagSat
	}
	if e.Model != nil {
		flags |= entryFlagModel
	}
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, uint64(len(e.Cons)))
	for _, c := range e.Cons {
		dst = append(dst, byte(c.Op))
		dst = binary.AppendVarint(dst, c.E.Const)
		dst = binary.AppendUvarint(dst, uint64(len(c.E.Terms)))
		for _, t := range c.E.Terms {
			dst = binary.AppendUvarint(dst, uint64(uint32(t.Var)))
			dst = binary.AppendVarint(dst, t.Coeff)
		}
	}
	if e.Model != nil {
		vars := make([]solver.Var, 0, len(e.Model))
		for v := range e.Model {
			vars = append(vars, v)
		}
		sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })
		dst = binary.AppendUvarint(dst, uint64(len(vars)))
		for _, v := range vars {
			dst = binary.AppendUvarint(dst, uint64(uint32(v)))
			dst = binary.AppendVarint(dst, e.Model[v])
		}
	}
	return dst
}

// decodeEntry decodes one entry. Counts are sanity-bounded by the remaining
// bytes so corrupt headers cannot force giant allocations.
func decodeEntry(r *corpus.ByteReader) (Entry, error) {
	var e Entry
	sum, err := r.Uvarint()
	if err != nil {
		return e, err
	}
	n, err := r.Uvarint()
	if err != nil {
		return e, err
	}
	e.D = solver.Digest{Sum: sum, N: int(n)}
	if e.Bsig, err = r.Uvarint(); err != nil {
		return e, err
	}
	if e.Origin, err = r.Uvarint(); err != nil {
		return e, err
	}
	flags, err := r.Byte()
	if err != nil {
		return e, err
	}
	if flags&^byte(entryFlagSat|entryFlagModel) != 0 {
		return e, fmt.Errorf("unknown entry flags %#x", flags)
	}
	if flags&entryFlagSat != 0 {
		e.Res = solver.Sat
	} else {
		e.Res = solver.Unsat
	}
	ncons, err := r.Uvarint()
	if err != nil {
		return e, err
	}
	if ncons > uint64(r.Len()/2+1) {
		return e, fmt.Errorf("constraint count %d exceeds remaining %d bytes", ncons, r.Len())
	}
	e.Cons = make([]solver.Constraint, 0, ncons)
	for i := uint64(0); i < ncons; i++ {
		op, err := r.Byte()
		if err != nil {
			return e, err
		}
		cop := solver.ConstraintOp(op)
		if cop != solver.OpLe && cop != solver.OpEq && cop != solver.OpNe {
			return e, fmt.Errorf("invalid constraint op %d", op)
		}
		c := solver.Constraint{Op: cop}
		if c.E.Const, err = r.Varint(); err != nil {
			return e, err
		}
		nterms, err := r.Uvarint()
		if err != nil {
			return e, err
		}
		if nterms > uint64(r.Len()/2+1) {
			return e, fmt.Errorf("term count %d exceeds remaining %d bytes", nterms, r.Len())
		}
		if nterms > 0 {
			c.E.Terms = make([]solver.Term, 0, nterms)
		}
		for j := uint64(0); j < nterms; j++ {
			v, err := r.Uvarint()
			if err != nil {
				return e, err
			}
			coeff, err := r.Varint()
			if err != nil {
				return e, err
			}
			c.E.Terms = append(c.E.Terms, solver.Term{Coeff: coeff, Var: solver.Var(int32(uint32(v)))})
		}
		e.Cons = append(e.Cons, c)
	}
	if flags&entryFlagModel != 0 {
		nvals, err := r.Uvarint()
		if err != nil {
			return e, err
		}
		if nvals > uint64(r.Len()/2+1) {
			return e, fmt.Errorf("model size %d exceeds remaining %d bytes", nvals, r.Len())
		}
		e.Model = make(solver.Model, nvals)
		for i := uint64(0); i < nvals; i++ {
			v, err := r.Uvarint()
			if err != nil {
				return e, err
			}
			val, err := r.Varint()
			if err != nil {
				return e, err
			}
			e.Model[solver.Var(int32(uint32(v)))] = val
		}
	}
	return e, nil
}

// Verify re-derives the entry's identity from its own payload — the
// verified-on-load contract. The stored digest must equal the digest of the
// stored conjunction, and a Sat entry's model must satisfy every stored
// constraint. An entry that fails is rejected (never seeded), so logic-level
// corruption that slipped past the block CRC degrades hit rate, not
// correctness. A fabricated Unsat verdict over a consistent conjunction is
// not detectable without solving; the store is trusted to the same degree
// as every other local artifact.
func (e *Entry) Verify() error {
	if d := solver.DigestOf(e.Cons); d != e.D {
		return fmt.Errorf("stored digest %x/%d does not match conjunction digest %x/%d",
			e.D.Sum, e.D.N, d.Sum, d.N)
	}
	if e.Res == solver.Sat {
		for i, c := range e.Cons {
			if !c.Holds(e.Model) {
				return fmt.Errorf("stored model does not satisfy constraint %d", i)
			}
		}
	}
	return nil
}

// sortEntries orders entries by (digest sum, N, bounds signature) — the
// canonical within-block order the verifier checks.
func sortEntries(entries []Entry) {
	sort.Slice(entries, func(i, j int) bool {
		a, b := &entries[i], &entries[j]
		if a.D.Sum != b.D.Sum {
			return a.D.Sum < b.D.Sum
		}
		if a.D.N != b.D.N {
			return a.D.N < b.D.N
		}
		return a.Bsig < b.Bsig
	})
}

// blockIndex is one compressed block's footer entry: the generic frame plus
// the entry count and the block's digest-sum range (the ordering invariant
// verifiers check without decoding neighbors).
type blockIndex struct {
	corpus.BlockFrame
	Entries int    `json:"entries"`
	MinSum  uint64 `json:"min"`
	MaxSum  uint64 `json:"max"`
}

// segFooter is the per-segment index, serialized as JSON ahead of the
// fixed-size trailer.
type segFooter struct {
	Program string       `json:"program"`
	Entries int          `json:"entries"`
	Blocks  []blockIndex `json:"blocks"`
}
