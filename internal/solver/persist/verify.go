package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/corpus"
)

// SegmentReport is the outcome of deep-validating one cache segment.
type SegmentReport struct {
	Name     string
	Entries  int
	Blocks   int
	Bytes    int64
	Problems []string
}

// OK reports whether the segment validated cleanly.
func (r *SegmentReport) OK() bool { return len(r.Problems) == 0 }

// VerifyReport aggregates a whole-store validation.
type VerifyReport struct {
	Segments []SegmentReport
	Problems []string // store-level findings
}

// OK reports whether the store validated cleanly.
func (r *VerifyReport) OK() bool {
	if len(r.Problems) > 0 {
		return false
	}
	for i := range r.Segments {
		if !r.Segments[i].OK() {
			return false
		}
	}
	return true
}

// Summary renders a one-line validation summary.
func (r *VerifyReport) Summary() string {
	entries, blocks, problems := 0, 0, len(r.Problems)
	for i := range r.Segments {
		s := &r.Segments[i]
		entries += s.Entries
		blocks += s.Blocks
		problems += len(s.Problems)
	}
	return fmt.Sprintf("%d segments, %d blocks, %d entries, %d problems",
		len(r.Segments), blocks, entries, problems)
}

// AllProblems flattens store- and segment-level findings.
func (r *VerifyReport) AllProblems() []string {
	out := append([]string(nil), r.Problems...)
	for i := range r.Segments {
		for _, p := range r.Segments[i].Problems {
			out = append(out, r.Segments[i].Name+": "+p)
		}
	}
	return out
}

// VerifySegmentFile deep-validates one cache segment: envelope (magic,
// trailer, footer CRC), every block's frame header and payload CRC, a full
// entry decode, each entry's self-consistency (stored digest vs recomputed,
// Sat models satisfying their conjunction), the within-block digest
// ordering, and the footer's min/max/count agreement.
func VerifySegmentFile(path string) (*SegmentReport, error) {
	rep := &SegmentReport{Name: filepath.Base(path)}
	footer, err := readSegFooter(path)
	if err != nil {
		return rep, err
	}
	if st, err := os.Stat(path); err == nil {
		rep.Bytes = st.Size()
	}
	rep.Blocks = len(footer.Blocks)
	flag := func(format string, args ...any) {
		if len(rep.Problems) < 20 {
			rep.Problems = append(rep.Problems, fmt.Sprintf(format, args...))
		}
	}

	f, err := os.Open(path)
	if err != nil {
		return rep, err
	}
	defer f.Close()

	var raw []byte
	entries := 0
	nextOffset := int64(len(segMagic))
	for bi := range footer.Blocks {
		b := &footer.Blocks[bi]
		if b.Offset != nextOffset {
			flag("block %d: offset %d, want contiguous %d", bi, b.Offset, nextOffset)
		}
		raw, err = corpus.ReadFramedBlock(f, b.BlockFrame, raw)
		if err != nil {
			flag("block %d: %v", bi, err)
			break // downstream offsets are unreliable after a bad block
		}
		nextOffset = b.Offset + int64(corpus.FrameHeaderLen(b.BlockFrame)) + int64(b.CompLen)
		r := corpus.NewByteReader(raw)
		var prev Entry
		for i := 0; i < b.Entries; i++ {
			e, derr := decodeEntry(r)
			if derr != nil {
				flag("block %d: entry %d: %v", bi, i, derr)
				break
			}
			if verr := e.Verify(); verr != nil {
				flag("block %d: entry %d: %v", bi, i, verr)
			}
			if i == 0 {
				if e.D.Sum != b.MinSum {
					flag("block %d: first digest sum %#x, footer min %#x", bi, e.D.Sum, b.MinSum)
				}
			} else if digestLess(e, prev) {
				flag("block %d: entry %d breaks digest ordering", bi, i)
			}
			if i == b.Entries-1 && e.D.Sum != b.MaxSum {
				flag("block %d: last digest sum %#x, footer max %#x", bi, e.D.Sum, b.MaxSum)
			}
			prev = e
			entries++
		}
		if r.Len() != 0 {
			flag("block %d: %d undecoded trailing bytes", bi, r.Len())
		}
	}
	rep.Entries = entries
	if entries != footer.Entries {
		flag("decoded %d entries, footer declares %d", entries, footer.Entries)
	}
	return rep, nil
}

// digestLess reports a < b under the canonical (Sum, N, Bsig) block order.
func digestLess(a, b Entry) bool {
	if a.D.Sum != b.D.Sum {
		return a.D.Sum < b.D.Sum
	}
	if a.D.N != b.D.N {
		return a.D.N < b.D.N
	}
	return a.Bsig < b.Bsig
}

// Verify validates the whole store: every manifest segment must open,
// checksum, decode, and agree with its manifest entry; stray temp files
// and unmanifested segments are store-level problems. The error return is
// reserved for I/O failures on the directory itself.
func (s *Store) Verify() (*VerifyReport, error) {
	rep := &VerifyReport{}
	flag := func(format string, args ...any) {
		if len(rep.Problems) < 20 {
			rep.Problems = append(rep.Problems, fmt.Sprintf(format, args...))
		}
	}
	manifested := make(map[string]bool)
	for _, info := range s.Segments() {
		manifested[info.Name] = true
		segRep, err := VerifySegmentFile(filepath.Join(s.dir, info.Name))
		if err != nil {
			segRep.Problems = append(segRep.Problems, err.Error())
		}
		if err == nil {
			if segRep.Entries != info.Entries {
				segRep.Problems = append(segRep.Problems,
					fmt.Sprintf("manifest declares %d entries, segment holds %d", info.Entries, segRep.Entries))
			}
			if segRep.Bytes != info.Bytes {
				segRep.Problems = append(segRep.Problems,
					fmt.Sprintf("manifest declares %d bytes, file is %d", info.Bytes, segRep.Bytes))
			}
		}
		rep.Segments = append(rep.Segments, *segRep)
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return rep, err
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case name == ManifestName || e.IsDir():
		case strings.Contains(name, ".tmp-"):
			flag("stray temp file %s (crashed writer; safe to delete)", name)
		case strings.HasSuffix(name, SegmentSuffix) && !manifested[name]:
			flag("segment %s on disk but not in manifest", name)
		}
	}
	return rep, nil
}
