package persist

import (
	"encoding/json"

	"repro/internal/corpus"
	"repro/internal/obs"
)

// Options tunes a Writer's block and segment geometry. The zero value uses
// the package defaults.
type Options struct {
	BlockBytes   int
	SegmentBytes int64
}

func (o Options) blockBytes() int {
	if o.BlockBytes <= 0 {
		return DefaultBlockBytes
	}
	return o.BlockBytes
}

func (o Options) segmentBytes() int64 {
	if o.SegmentBytes <= 0 {
		return DefaultSegmentBytes
	}
	return o.SegmentBytes
}

// Writer appends cache entries to a store. Entries buffer per block and are
// sorted by digest before encoding, so every sealed block is internally
// ordered (the verifier's digest-ordering check). A segment becomes visible
// only at seal (temp + fsync + rename via the corpus segment layer); a
// crash mid-write leaves at worst an invisible temp file.
//
// A Writer is single-goroutine; the Sink serializes concurrent spills in
// front of it.
type Writer struct {
	s    *Store
	opts Options

	seg       *corpus.SegmentFile
	finalName string

	pending  []Entry // entries of the block being accumulated
	pendSize int     // rough encoded size of pending
	buf      []byte
	blocks   []blockIndex
	entries  int // entries in the current segment

	sealedEntries int
	sealedBytes   int64
}

// NewWriter returns a Writer appending to the store.
func (s *Store) NewWriter(opts Options) *Writer {
	return &Writer{s: s, opts: opts}
}

// Add appends one entry, flushing a block when the raw buffer fills and
// sealing + rolling the segment when it reaches SegmentBytes.
func (w *Writer) Add(e Entry) error {
	if w.seg == nil {
		if err := w.startSegment(); err != nil {
			return err
		}
	}
	w.pending = append(w.pending, e)
	// Cheap size estimate: fixed header + per-constraint + per-term costs.
	w.pendSize += 40 + len(e.Cons)*16 + len(e.Model)*12
	for _, c := range e.Cons {
		w.pendSize += len(c.E.Terms) * 12
	}
	if w.pendSize >= w.opts.blockBytes() {
		if err := w.flushBlock(); err != nil {
			return err
		}
		if w.seg.Written() >= w.opts.segmentBytes() {
			return w.seal()
		}
	}
	return nil
}

func (w *Writer) startSegment() error {
	w.finalName = w.s.allocSegmentName()
	seg, err := corpus.CreateSegmentFile(w.s.dir, w.finalName, segMagic)
	if err != nil {
		return err
	}
	w.seg = seg
	w.blocks = nil
	w.entries = 0
	w.pending = w.pending[:0]
	w.pendSize = 0
	return nil
}

func (w *Writer) flushBlock() error {
	if len(w.pending) == 0 {
		return nil
	}
	sortEntries(w.pending)
	w.buf = w.buf[:0]
	for i := range w.pending {
		w.buf = appendEntry(w.buf, &w.pending[i])
	}
	frame, err := w.seg.AppendBlock(w.buf)
	if err != nil {
		return err
	}
	w.blocks = append(w.blocks, blockIndex{
		BlockFrame: frame,
		Entries:    len(w.pending),
		MinSum:     w.pending[0].D.Sum,
		MaxSum:     w.pending[len(w.pending)-1].D.Sum,
	})
	w.entries += len(w.pending)
	w.pending = w.pending[:0]
	w.pendSize = 0
	return nil
}

func (w *Writer) seal() error {
	if w.seg == nil {
		return nil
	}
	if err := w.flushBlock(); err != nil {
		return w.abort(err)
	}
	if w.entries == 0 {
		w.seg.Abort()
		w.seg = nil
		return nil
	}
	footer := segFooter{Program: w.s.Program(), Entries: w.entries, Blocks: w.blocks}
	blob, err := json.Marshal(&footer)
	if err != nil {
		return w.abort(err)
	}
	size, err := w.seg.Seal(blob, trailerMagic)
	if err != nil {
		w.seg = nil
		return err
	}
	info := SegmentInfo{Name: w.finalName, Entries: w.entries, Bytes: size}
	w.sealedEntries += w.entries
	w.sealedBytes += size
	if w.s.Obs != nil {
		w.s.Obs.Metrics.Counter(obs.MetricPersistSegments).Inc()
		w.s.Obs.Metrics.Counter(obs.MetricPersistBytes).Add(size)
	}
	w.seg = nil
	return w.s.registerSegment(info)
}

func (w *Writer) abort(err error) error {
	if w.seg != nil {
		w.seg.Abort()
		w.seg = nil
	}
	return err
}

// Close seals the in-progress segment, if any. The writer may be reused.
func (w *Writer) Close() error { return w.seal() }

// SealedEntries returns the entries this writer made durable.
func (w *Writer) SealedEntries() int { return w.sealedEntries }

// SealedBytes returns the on-disk bytes of the segments this writer sealed.
func (w *Writer) SealedBytes() int64 { return w.sealedBytes }
