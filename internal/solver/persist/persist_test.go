package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/solver"
)

// testEntry builds a distinct, self-consistent entry: x_i - i <= 0 with the
// satisfying model {x_i: i}. Origin cycles over a small set so tombstone and
// invalidation tests have something to drop.
func testEntry(i int) Entry {
	cons := []solver.Constraint{
		{E: solver.LinExpr{Terms: []solver.Term{{Coeff: 1, Var: solver.Var(i)}}, Const: -int64(i)}, Op: solver.OpLe},
		{E: solver.LinExpr{Terms: []solver.Term{{Coeff: 1, Var: solver.Var(i)}}, Const: int64(-i)}, Op: solver.OpEq},
	}
	return Entry{
		D:      solver.DigestOf(cons),
		Bsig:   uint64(1000 + i%7),
		Origin: uint64(100 + i%3),
		Cons:   cons,
		Res:    solver.Sat,
		Model:  solver.Model{solver.Var(i): int64(i)},
	}
}

func writeEntries(t *testing.T, s *Store, n int) {
	t.Helper()
	w := s.NewWriter(Options{})
	for i := 0; i < n; i++ {
		if err := w.Add(testEntry(i)); err != nil {
			t.Fatalf("Add(%d): %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, "prog")
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	writeEntries(t, s, n)
	if got := s.TotalEntries(); got != n {
		t.Fatalf("TotalEntries = %d, want %d", got, n)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Program() != "prog" {
		t.Fatalf("Program = %q", s2.Program())
	}
	seen := map[solver.Digest]Entry{}
	stats, err := s2.Load(nil, func(e Entry) { seen[e.D] = e })
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if stats.Loaded != n || stats.Rejected != 0 || stats.Invalidated != 0 {
		t.Fatalf("stats = %+v, want %d loaded", stats, n)
	}
	for i := 0; i < n; i++ {
		want := testEntry(i)
		got, ok := seen[want.D]
		if !ok {
			t.Fatalf("entry %d missing after load", i)
		}
		if got.Bsig != want.Bsig || got.Origin != want.Origin || got.Res != want.Res ||
			len(got.Cons) != len(want.Cons) || got.Model[solver.Var(i)] != int64(i) {
			t.Fatalf("entry %d mismatch: got %+v want %+v", i, got, want)
		}
	}
}

func TestVerifyCleanStore(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, "prog")
	if err != nil {
		t.Fatal(err)
	}
	// Small blocks force several blocks per segment, exercising the
	// digest-ordering and contiguous-offset checks across boundaries.
	w := s.NewWriter(Options{BlockBytes: 256})
	for i := 0; i < 300; i++ {
		if err := w.Add(testEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("verify failed: %v", rep.AllProblems())
	}
	if len(rep.Segments) == 0 || rep.Segments[0].Blocks < 2 {
		t.Fatalf("expected multiple blocks, got %+v", rep.Segments)
	}
}

func segmentPath(t *testing.T, s *Store) string {
	t.Helper()
	segs := s.Segments()
	if len(segs) == 0 {
		t.Fatal("no sealed segments")
	}
	return filepath.Join(s.Dir(), segs[0].Name)
}

func TestCorruptBlockDetected(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, "prog")
	if err != nil {
		t.Fatal(err)
	}
	writeEntries(t, s, 200)
	path := segmentPath(t, s)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/3] ^= 0xFF // flip a bit mid-payload
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := VerifySegmentFile(path)
	if err == nil && rep.OK() {
		t.Fatal("corrupted segment passed verification")
	}
	// Load must surface the damage as an error (the session treats it as a
	// cold start), never as silently served entries.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Load(nil, func(Entry) {}); err == nil {
		t.Fatal("Load of corrupted segment succeeded")
	}
}

func TestTornSegmentRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, "prog")
	if err != nil {
		t.Fatal(err)
	}
	writeEntries(t, s, 200)
	path := segmentPath(t, s)
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()/2); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Load(nil, func(Entry) {}); err == nil {
		t.Fatal("Load of torn segment succeeded")
	}
	rep, err := s2.Verify()
	if err == nil && rep.OK() {
		t.Fatal("torn segment passed verification")
	}

	// A crashed writer's temp file is flagged but harmless: sealing is
	// temp+fsync+rename, so a half-written temp never becomes a segment.
	if err := os.WriteFile(filepath.Join(dir, "cache-000009.scq.tmp-123"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err = s2.Verify()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range rep.AllProblems() {
		if p != "" {
			found = true
		}
	}
	if !found {
		t.Fatal("stray temp file not flagged")
	}
}

func TestPoisonedEntriesRejectedOnLoad(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, "prog")
	if err != nil {
		t.Fatal(err)
	}
	w := s.NewWriter(Options{})
	good := testEntry(1)
	if err := w.Add(good); err != nil {
		t.Fatal(err)
	}
	// Poison 1: a Sat verdict whose model does not satisfy its conjunction.
	badModel := testEntry(2)
	badModel.Model = solver.Model{solver.Var(2): 99}
	if err := w.Add(badModel); err != nil {
		t.Fatal(err)
	}
	// Poison 2: a digest that does not match the stored conjunction.
	badDigest := testEntry(3)
	badDigest.D.Sum ^= 0xDEAD
	if err := w.Add(badDigest); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var loaded []Entry
	stats, err := s.Load(nil, func(e Entry) { loaded = append(loaded, e) })
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if stats.Loaded != 1 || stats.Rejected != 2 {
		t.Fatalf("stats = %+v, want 1 loaded / 2 rejected", stats)
	}
	if len(loaded) != 1 || loaded[0].D != good.D {
		t.Fatalf("loaded %+v, want only the good entry", loaded)
	}
}

func TestTombstonesAndOriginDrop(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, "prog")
	if err != nil {
		t.Fatal(err)
	}
	writeEntries(t, s, 90) // origins 100, 101, 102 — 30 entries each
	counts, err := s.OriginCounts()
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 3 || counts[100] != 30 {
		t.Fatalf("origin counts = %v", counts)
	}

	stats, err := s.Load(map[uint64]bool{101: true}, func(Entry) {})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Loaded != 60 || stats.Invalidated != 30 {
		t.Fatalf("stats = %+v, want 60 loaded / 30 invalidated", stats)
	}

	// TombstoneHeaviest picks the max-count origin (ties: lowest hash) and
	// persists it in the manifest.
	origin, n, err := TombstoneHeaviest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if origin != 100 || n != 30 {
		t.Fatalf("TombstoneHeaviest = (%d, %d), want (100, 30)", origin, n)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ts := s2.Tombstones(); len(ts) != 1 || ts[0] != 100 {
		t.Fatalf("tombstones = %v", ts)
	}
	if err := s2.ClearTombstones(); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ts := s3.Tombstones(); len(ts) != 0 {
		t.Fatalf("tombstones not cleared: %v", ts)
	}
}

func TestSinkConcurrentOffer(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, "prog")
	if err != nil {
		t.Fatal(err)
	}
	k := NewSink(s, Options{}, 0, nil)
	const workers, per = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				e := testEntry(w*per + i)
				k.Offer(e.D, e.Bsig, e.Origin, e.Cons, e.Res, e.Model)
				// Duplicate offers must dedup, not double-write.
				k.Offer(e.D, e.Bsig, e.Origin, e.Cons, e.Res, e.Model)
			}
		}(w)
	}
	wg.Wait()
	if err := k.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	total := k.Spilled() + k.Dropped()
	if total != workers*per {
		t.Fatalf("spilled %d + dropped %d = %d, want %d", k.Spilled(), k.Dropped(), total, workers*per)
	}
	if k.Deduped() < workers*per/2 {
		t.Fatalf("deduped = %d, want at least %d", k.Deduped(), workers*per/2)
	}
	stats, err := s.Load(nil, func(Entry) {})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Loaded != k.Spilled() {
		t.Fatalf("loaded %d, spilled %d", stats.Loaded, k.Spilled())
	}
	rep, err := s.Verify()
	if err != nil || !rep.OK() {
		t.Fatalf("verify after concurrent spill: err=%v problems=%v", err, rep.AllProblems())
	}
}

func TestSinkSkipsUnknownAndUnmarksOnDrop(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, "prog")
	if err != nil {
		t.Fatal(err)
	}
	k := NewSink(s, Options{}, 0, nil)
	e := testEntry(1)
	k.Offer(e.D, e.Bsig, e.Origin, e.Cons, solver.Unknown, nil)
	if err := k.Close(); err != nil {
		t.Fatal(err)
	}
	if k.Spilled() != 0 {
		t.Fatalf("Unknown verdict spilled")
	}
}

func TestDiffFns(t *testing.T) {
	old := []Fn{{"a", 1}, {"b", 2}, {"c", 3}}

	// No changes.
	d := DiffFns(old, old)
	if d.HasChanges() || d.Unchanged != 3 || len(d.Dead) != 0 {
		t.Fatalf("identical diff = %+v", d)
	}

	// b's body changed, c renamed to c2, d added, a removed.
	cur := []Fn{{"b", 20}, {"c2", 3}, {"d", 4}}
	d = DiffFns(old, cur)
	if got := fmt.Sprint(d.Dirty); got != "[b d]" {
		t.Fatalf("Dirty = %v", d.Dirty)
	}
	if got := fmt.Sprint(d.Removed); got != "[a]" {
		t.Fatalf("Removed = %v", d.Removed)
	}
	if d.Renamed != 1 || d.Unchanged != 0 {
		t.Fatalf("diff = %+v", d)
	}
	// Dead: hashes 1 (a, removed) and 2 (b, changed). Hash 3 survives via
	// the rename, so c's entries live on.
	if len(d.Dead) != 2 || !d.Dead[1] || !d.Dead[2] || d.Dead[3] {
		t.Fatalf("Dead = %v", d.Dead)
	}

	// Fresh store: nothing to invalidate.
	d = DiffFns(nil, cur)
	if d.HasChanges() || d.Unchanged != len(cur) {
		t.Fatalf("fresh diff = %+v", d)
	}
}

func TestCreateRejectsForeignProgram(t *testing.T) {
	dir := t.TempDir()
	if _, err := Create(dir, "prog-a"); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(dir, "prog-b"); err == nil {
		t.Fatal("Create accepted a store belonging to another program")
	}
	if !IsStoreDir(dir) {
		t.Fatal("IsStoreDir = false for a store")
	}
	if IsStoreDir(t.TempDir()) {
		t.Fatal("IsStoreDir = true for an empty dir")
	}
}

func TestWriterRollsSegments(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, "prog")
	if err != nil {
		t.Fatal(err)
	}
	w := s.NewWriter(Options{BlockBytes: 128, SegmentBytes: 512})
	const n = 400
	for i := 0; i < n; i++ {
		if err := w.Add(testEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if len(s.Segments()) < 2 {
		t.Fatalf("expected multiple segments, got %d", len(s.Segments()))
	}
	if w.SealedEntries() != n {
		t.Fatalf("SealedEntries = %d, want %d", w.SealedEntries(), n)
	}
	stats, err := s.Load(nil, func(Entry) {})
	if err != nil || stats.Loaded != n {
		t.Fatalf("Load after roll: stats=%+v err=%v", stats, err)
	}
	rep, err := s.Verify()
	if err != nil || !rep.OK() {
		t.Fatalf("verify after roll: err=%v problems=%v", err, rep.AllProblems())
	}
}
