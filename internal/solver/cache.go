package solver

import (
	"context"
	"hash/fnv"
	"sort"
	"strconv"
	"time"
)

// CachedSolver memoizes Check results keyed by the canonicalized constraint
// conjunction. KLEE caches solver queries for the same reason: symbolic
// execution re-issues many identical path-condition prefixes.
type CachedSolver struct {
	S *Solver

	// MaxEntries bounds memory; when exceeded the cache is reset (simple
	// and adequate for bounded explorations).
	MaxEntries int

	cache map[uint64]cachedResult
	// Hits and Misses count cache effectiveness (for the ablation bench
	// and the per-candidate solver columns of core.Report).
	Hits, Misses int
	// Wall accumulates wall-clock time spent inside non-memoized checks.
	// Cache hits are excluded so the hit fast path stays clock-free; the
	// sum is the candidate's real solver effort (Report/HTML "solver
	// time" column).
	Wall time.Duration
}

type cachedResult struct {
	res   Result
	model Model
}

// NewCached wraps s with a query cache.
func NewCached(s *Solver) *CachedSolver {
	return &CachedSolver{S: s, MaxEntries: 1 << 16, cache: make(map[uint64]cachedResult)}
}

// Check is Solver.Check with memoization.
func (cs *CachedSolver) Check(t *VarTable, cons []Constraint) (Result, Model) {
	return cs.CheckCtx(context.Background(), t, cons)
}

// CheckCtx is Check under a context. Results produced while the context is
// cancelled are not cached: such queries resolve to Unknown as an artifact
// of cancellation, and memoizing them would poison later retries of the
// same conjunction.
func (cs *CachedSolver) CheckCtx(ctx context.Context, t *VarTable, cons []Constraint) (Result, Model) {
	key := hashConstraints(cons)
	if r, ok := cs.cache[key]; ok {
		cs.Hits++
		return r.res, r.model
	}
	cs.Misses++
	start := time.Now()
	res, model := cs.S.CheckCtx(ctx, t, cons)
	cs.Wall += time.Since(start)
	if ctx != nil && ctx.Err() != nil {
		return res, model
	}
	if len(cs.cache) >= cs.MaxEntries {
		cs.cache = make(map[uint64]cachedResult)
	}
	cs.cache[key] = cachedResult{res: res, model: model}
	return res, model
}

// hashConstraints produces an order-insensitive digest of the conjunction.
func hashConstraints(cons []Constraint) uint64 {
	keys := make([]string, len(cons))
	for i, c := range cons {
		keys[i] = constraintKey(c)
	}
	sort.Strings(keys)
	h := fnv.New64a()
	for _, k := range keys {
		h.Write([]byte(k))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

func constraintKey(c Constraint) string {
	buf := make([]byte, 0, 16+12*len(c.E.Terms))
	buf = strconv.AppendInt(buf, int64(c.Op), 10)
	buf = append(buf, '|')
	buf = strconv.AppendInt(buf, c.E.Const, 10)
	for _, tm := range c.E.Terms {
		buf = append(buf, ';')
		buf = strconv.AppendInt(buf, int64(tm.Var), 10)
		buf = append(buf, '*')
		buf = strconv.AppendInt(buf, tm.Coeff, 10)
	}
	return string(buf)
}
