package solver

import (
	"container/list"
	"context"
	"sync/atomic"
	"time"
)

// CachedSolver memoizes Check results keyed by an incremental digest of the
// constraint conjunction. KLEE caches solver queries for the same reason:
// symbolic execution re-issues many identical path-condition prefixes.
//
// Layers, cheapest first:
//
//  1. a bounded LRU of exact conjunctions (digest-keyed, with the stored
//     conjunction verified on every hit so an FNV-64 collision can never
//     return a wrong verdict);
//  2. opt-in KLEE-style fast paths on an exact miss (FastPaths): a
//     remembered UNSAT core that is a subset of the query proves Unsat; a
//     recent model that satisfies every query constraint proves Sat with
//     model reuse;
//  3. an optional per-run SharedCache consulted before solving, so
//     parallel candidate verifications reuse each other's work;
//  4. the underlying Solver.
//
// A CachedSolver is single-goroutine like the executor that owns it; only
// the wall-clock accumulator is atomic, so progress snapshots and shared
// concurrent accounting can read it safely (see WallTime).
type CachedSolver struct {
	S *Solver

	// Spill, when set, receives every freshly decided verdict (exact or
	// fast-path) so a persistence layer can write it behind the solver's
	// back. It must never block: callers sit on the executor's hot path.
	// When Shared is also set, physically solved verdicts are spilled by
	// SharedCache.store instead, so each verdict is offered exactly once.
	Spill SpillFunc

	// Origin tags spilled verdicts with the content hash (summary.FnHash)
	// of the function whose branch issued the query. Zero means unknown;
	// the executor updates it as frames change. Purely attributive — it
	// never affects lookups or verdicts, only persistence retention.
	Origin uint64

	// MaxEntries bounds the exact-match LRU; the least recently used entry
	// is evicted when it is full (a hot cache is never dropped wholesale).
	MaxEntries int

	// Shared, when set, is consulted after a local miss and fed after a
	// local solve. Shared results are byte-identical to what a local solve
	// would produce (the solver is deterministic), so enabling it changes
	// wall-clock only — never verdicts, models, or the logical counters.
	Shared *SharedCache

	// FastPaths enables the heuristic layer (UNSAT-core subsumption and
	// Sat-model reuse). Off by default: both can change what a fresh solve
	// would have returned — a reused model carries different (equally
	// valid) values, and a subsumed core can answer Unsat where a large
	// query would have exhausted the solver's budget into Unknown — and
	// the executor concretizes strings and indices from model values, so
	// enabling this changes exploration. Exact-match layers (LRU, Shared)
	// always replay the canonical verdict and model and need no gate.
	FastPaths bool

	// Disabled bypasses every cache layer (ablation support): each query
	// goes straight to the solver, with only the logical counters and the
	// wall clock maintained.
	Disabled bool

	// Hits/Misses count the exact-match layer. FastSat/FastUnsat count
	// layer-2 shortcut answers (a subclass of Misses); Evictions counts
	// capacity evictions only — entries dropped because the LRU was full.
	// Invalidations counts entries removed because their origin function's
	// bytecode changed (InvalidateOrigins); keeping the two apart lets the
	// solver-cache ablation attribute misses correctly. All are
	// deterministic per query sequence.
	Hits, Misses       int
	FastSat, FastUnsat int
	Evictions          int
	Invalidations      int

	// Queries are the logical solver verdicts: one Check per query that
	// passed the local fast paths, split by outcome. Unlike S.Stats (which
	// counts physical solves), Queries is independent of whether the Shared
	// cache served the result, so Report counters built from it stay
	// deterministic across sequential, parallel, shared and unshared runs.
	Queries Stats

	// SharedHits/SharedMisses count Shared-layer lookups. They are timing
	// dependent in parallel runs (whoever solves first populates the cache)
	// and are surfaced through obs metrics, never through Report.
	SharedHits, SharedMisses int

	// wallNanos accumulates wall-clock time spent inside physical solver
	// checks, atomically (shared concurrent readers, and writers that
	// record from multiple goroutines in tests, must not race).
	wallNanos atomic.Int64

	lru    lruCache
	cores  coreRing
	models modelRing
}

// SpillFunc receives one decided verdict for asynchronous persistence:
// the conjunction's digest, its intrinsic-bounds signature, the FnHash of
// the function that issued the query (0 when unknown), the constraint
// multiset, and the verdict with its model (nil unless Sat).
// Implementations must not block and must copy what they keep.
type SpillFunc func(d Digest, bsig, origin uint64, cons []Constraint, res Result, model Model)

// NewCached wraps s with a query cache.
func NewCached(s *Solver) *CachedSolver {
	return &CachedSolver{S: s, MaxEntries: DefaultCacheEntries}
}

// DefaultCacheEntries is the default exact-match LRU capacity.
const DefaultCacheEntries = 1 << 16

// WallTime returns the wall clock accumulated inside physical solver
// checks. Cache hits and fast paths are excluded, so the sum is the real
// solving effort (Report/HTML "solver time" column).
func (cs *CachedSolver) WallTime() time.Duration {
	return time.Duration(cs.wallNanos.Load())
}

// recordWall adds one solve's duration to the wall clock (atomic: safe
// under shared concurrent use).
func (cs *CachedSolver) recordWall(d time.Duration) { cs.wallNanos.Add(int64(d)) }

// note tallies a logical solver verdict.
func (st *Stats) note(res Result) {
	st.Checks++
	switch res {
	case Sat:
		st.Sat++
	case Unsat:
		st.Unsat++
	default:
		st.Unknown++
	}
}

// Check is Solver.Check with memoization.
func (cs *CachedSolver) Check(t *VarTable, cons []Constraint) (Result, Model) {
	return cs.CheckCtx(context.Background(), t, cons)
}

// CheckCtx is Check under a context. Results produced while the context is
// cancelled are not cached: such queries resolve to Unknown as an artifact
// of cancellation, and memoizing them would poison later retries of the
// same conjunction.
func (cs *CachedSolver) CheckCtx(ctx context.Context, t *VarTable, cons []Constraint) (Result, Model) {
	return cs.checkDigest(ctx, t, cons, DigestOf(cons), nil)
}

// CheckDigestCtx is CheckCtx for callers that maintain the conjunction's
// digest incrementally (the executor's per-state rolling digest), skipping
// the O(n) re-hash.
func (cs *CachedSolver) CheckDigestCtx(ctx context.Context, t *VarTable, cons []Constraint, d Digest) (Result, Model) {
	return cs.checkDigest(ctx, t, cons, d, nil)
}

// checkDigest is the cache pipeline. hashes, when non-nil, are the
// precomputed per-constraint hashes of cons (the partitioned path computes
// them once for component digests and passes them through).
func (cs *CachedSolver) checkDigest(ctx context.Context, t *VarTable, cons []Constraint, d Digest, hashes []uint64) (Result, Model) {
	if cs.Disabled {
		start := time.Now()
		res, model := cs.S.CheckCtx(ctx, t, cons)
		cs.recordWall(time.Since(start))
		cs.Queries.note(res)
		return res, model
	}
	// The local LRU holds only this executor's own queries, all over one
	// fixed VarTable, so a verified conjunction match implies matching
	// intrinsic bounds — no signature needed on the lookup hot path.
	if res, m, ok := cs.lru.lookup(d, cons); ok {
		cs.Hits++
		return res, m
	}
	cs.Misses++
	// The bounds signature matters only across executors (the SharedCache
	// refuses hits whose variables carry different intrinsic bounds) and
	// for persistence (spilled entries carry it so a later process can
	// match exactly), so it is computed lazily, on a miss.
	var bsig uint64
	if cs.Shared != nil || cs.Spill != nil {
		bsig = boundsSig(t, cons)
	}
	if cs.FastPaths {
		// The rings need per-constraint hashes; computed only here so the
		// default path never pays for them.
		if hashes == nil {
			hashes = hashAll(cons)
		}
		// Fast path: a remembered UNSAT core contained in the query
		// refutes it (adding constraints preserves unsatisfiability).
		if cs.cores.subsetOf(cons, hashes) {
			cs.FastUnsat++
			cs.store(d, bsig, cons, Unsat, nil)
			cs.spill(d, bsig, cons, Unsat, nil)
			return Unsat, nil
		}
		// Fast path: a recent model satisfying every constraint of the
		// query is a Sat witness (typically from a superset conjunction).
		if m, ok := cs.models.satisfying(cons); ok {
			cs.FastSat++
			cs.store(d, bsig, cons, Sat, m)
			cs.spill(d, bsig, cons, Sat, m)
			return Sat, m
		}
	}
	var res Result
	var model Model
	served := false
	if cs.Shared != nil {
		if r, m, ok := cs.Shared.lookup(d, bsig, cons); ok {
			res, model, served = r, m, true
			cs.SharedHits++
		} else {
			cs.SharedMisses++
		}
	}
	if !served {
		start := time.Now()
		res, model = cs.S.CheckCtx(ctx, t, cons)
		cs.recordWall(time.Since(start))
		if ctx != nil && ctx.Err() != nil {
			cs.Queries.note(res)
			return res, model
		}
		if cs.Shared != nil {
			cs.Shared.store(d, bsig, cs.Origin, cons, res, model)
		} else {
			cs.spill(d, bsig, cons, res, model)
		}
	}
	cs.Queries.note(res)
	cs.store(d, bsig, cons, res, model)
	if cs.FastPaths {
		switch res {
		case Unsat:
			cs.cores.add(cons, hashes)
		case Sat:
			cs.models.add(model)
		}
	}
	return res, model
}

// store inserts the verdict into the exact-match LRU, counting evictions.
func (cs *CachedSolver) store(d Digest, bsig uint64, cons []Constraint, res Result, model Model) {
	max := cs.MaxEntries
	if max <= 0 {
		max = DefaultCacheEntries
	}
	cs.Evictions += cs.lru.add(d, bsig, cs.Origin, cons, res, model, max)
}

// spill offers a freshly decided verdict to the persistence hook, if any.
func (cs *CachedSolver) spill(d Digest, bsig uint64, cons []Constraint, res Result, model Model) {
	if cs.Spill != nil {
		cs.Spill(d, bsig, cs.Origin, cons, res, model)
	}
}

// CacheEntry is one exported verdict of the exact-match cache, in the form
// ExportCache emits and ImportCache accepts. Used by the checkpoint codec
// to ship a warm cache across a process boundary: a resumed executor then
// replays the captured run's exact hit/miss history, which is what makes
// its solver counters — not just its verdicts — match an uninterrupted
// run's.
type CacheEntry struct {
	Digest Digest
	BSig   uint64
	Origin uint64
	Cons   []Constraint
	Res    Result
	Model  Model
}

// ExportCache returns the exact-match cache's entries, least recently used
// first, so importing them in that order reproduces the recency order.
// The Cons and Model values alias cache-internal storage; callers must not
// mutate them.
func (cs *CachedSolver) ExportCache() []CacheEntry {
	if cs.lru.ll == nil {
		return nil
	}
	out := make([]CacheEntry, 0, cs.lru.ll.Len())
	for el := cs.lru.ll.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*cacheEntry)
		out = append(out, CacheEntry{Digest: e.d, BSig: e.bsig, Origin: e.origin, Cons: e.cons, Res: e.res, Model: e.model})
	}
	return out
}

// ImportCache seeds the exact-match cache with entries in order (the last
// entry becomes the most recently used). Counters are untouched; capacity
// eviction applies as usual.
func (cs *CachedSolver) ImportCache(entries []CacheEntry) {
	max := cs.MaxEntries
	if max <= 0 {
		max = DefaultCacheEntries
	}
	for _, e := range entries {
		cs.lru.add(e.Digest, e.BSig, e.Origin, e.Cons, e.Res, e.Model, max)
	}
}

// InvalidateOrigins drops every LRU entry whose origin function is in dead
// (a set of stale FnHash values), returning the number removed. Counted
// separately from capacity evictions so telemetry can attribute later
// misses to code change rather than cache pressure.
func (cs *CachedSolver) InvalidateOrigins(dead map[uint64]bool) int {
	n := cs.lru.invalidateOrigins(dead)
	cs.Invalidations += n
	return n
}

// --- exact-match LRU ---

// cacheEntry stores a decided conjunction with everything needed to make a
// hit collision-proof: the canonical constraint multiset and the intrinsic
// bounds signature of its variables. origin is the FnHash of the function
// that issued the query (0 unknown) — attribution for persistence and
// invalidation, never part of the match. persisted marks entries seeded
// from a disk cache, so warm-start hits can be counted apart.
type cacheEntry struct {
	d         Digest
	bsig      uint64
	origin    uint64
	cons      []Constraint
	res       Result
	model     Model
	persisted bool
}

// lruCache is a digest-keyed LRU. The zero value is ready to use. It is
// shared by the per-executor cache (no lock) and, per shard under a mutex,
// by SharedCache.
type lruCache struct {
	ll  *list.List // front: most recently used; values are *cacheEntry
	idx map[Digest]*list.Element
}

func (c *lruCache) init() {
	if c.ll == nil {
		c.ll = list.New()
		c.idx = make(map[Digest]*list.Element)
	}
}

// lookup returns the verdict stored for the conjunction. A digest match
// with a different stored conjunction (hash collision) is a miss, never a
// wrong answer. This is the single-table path: all entries and queries
// come from one VarTable, so a conjunction match implies matching
// intrinsic bounds.
func (c *lruCache) lookup(d Digest, cons []Constraint) (Result, Model, bool) {
	if c.ll == nil {
		return Unknown, nil, false
	}
	el, ok := c.idx[d]
	if !ok {
		return Unknown, nil, false
	}
	e := el.Value.(*cacheEntry)
	if !sameConjunction(e.cons, cons) {
		return Unknown, nil, false
	}
	c.ll.MoveToFront(el)
	return e.res, e.model, true
}

// lookupBsig is lookup for caches shared across VarTables: a hit must also
// carry the same intrinsic-bounds signature, because a Var ID recurring in
// another executor's table can be bounded differently and flip the verdict.
// The entry itself is returned (nil on miss) so callers can read
// attribution fields like persisted.
func (c *lruCache) lookupBsig(d Digest, bsig uint64, cons []Constraint) *cacheEntry {
	if c.ll == nil {
		return nil
	}
	el, ok := c.idx[d]
	if !ok {
		return nil
	}
	e := el.Value.(*cacheEntry)
	if e.bsig != bsig || !sameConjunction(e.cons, cons) {
		return nil
	}
	c.ll.MoveToFront(el)
	return e
}

// add inserts (or refreshes) an entry and returns the number of evictions
// performed to respect max.
func (c *lruCache) add(d Digest, bsig, origin uint64, cons []Constraint, res Result, model Model, max int) int {
	c.init()
	if el, ok := c.idx[d]; ok {
		// Digest already present: keep the newest conjunction for this
		// digest (collisions are astronomically rare; the verified lookup
		// keeps this safe either way).
		e := el.Value.(*cacheEntry)
		e.bsig, e.origin, e.cons, e.res, e.model = bsig, origin, append([]Constraint(nil), cons...), res, model
		c.ll.MoveToFront(el)
		return 0
	}
	e := &cacheEntry{d: d, bsig: bsig, origin: origin, cons: append([]Constraint(nil), cons...), res: res, model: model}
	c.idx[d] = c.ll.PushFront(e)
	evicted := 0
	for c.ll.Len() > max {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.idx, back.Value.(*cacheEntry).d)
		evicted++
	}
	return evicted
}

// entry returns the entry stored under d without touching recency (nil
// when absent).
func (c *lruCache) entry(d Digest) *cacheEntry {
	if c.ll == nil {
		return nil
	}
	el, ok := c.idx[d]
	if !ok {
		return nil
	}
	return el.Value.(*cacheEntry)
}

// invalidateOrigins removes every entry whose origin is in dead, returning
// the count removed.
func (c *lruCache) invalidateOrigins(dead map[uint64]bool) int {
	if c.ll == nil || len(dead) == 0 {
		return 0
	}
	removed := 0
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*cacheEntry); dead[e.origin] {
			c.ll.Remove(el)
			delete(c.idx, e.d)
			removed++
		}
		el = next
	}
	return removed
}

// len returns the number of cached entries.
func (c *lruCache) len() int {
	if c.ll == nil {
		return 0
	}
	return c.ll.Len()
}

// --- UNSAT-core ring ---

// Core retention limits: only small refuted conjunctions are kept (small
// cores subsume the most future queries, and the subset test stays cheap).
const (
	maxUnsatCores = 16
	maxCoreSize   = 8
)

type unsatCore struct {
	cons   []Constraint
	hashes []uint64
}

// coreRing is a fixed-size ring of recently refuted small conjunctions.
type coreRing struct {
	cores []unsatCore
	next  int
}

func (r *coreRing) add(cons []Constraint, hashes []uint64) {
	if len(cons) == 0 || len(cons) > maxCoreSize {
		return
	}
	core := unsatCore{
		cons:   append([]Constraint(nil), cons...),
		hashes: append([]uint64(nil), hashes...),
	}
	if len(r.cores) < maxUnsatCores {
		r.cores = append(r.cores, core)
		return
	}
	r.cores[r.next] = core
	r.next = (r.next + 1) % maxUnsatCores
}

// subsetOf reports whether any remembered core is a sub-multiset of the
// query (hashes are the query's per-constraint hashes).
func (r *coreRing) subsetOf(cons []Constraint, hashes []uint64) bool {
nextCore:
	for ci := range r.cores {
		core := &r.cores[ci]
		if len(core.cons) > len(cons) {
			continue
		}
	nextCons:
		for i, ch := range core.hashes {
			for j, qh := range hashes {
				if ch == qh && constraintEq(core.cons[i], cons[j]) {
					continue nextCons
				}
			}
			continue nextCore
		}
		return true
	}
	return false
}

// --- recent-model ring ---

// maxRecentModels bounds the Sat-model reuse window.
const maxRecentModels = 8

type modelRing struct {
	models []Model
	next   int
}

func (r *modelRing) add(m Model) {
	if m == nil {
		return
	}
	if len(r.models) < maxRecentModels {
		r.models = append(r.models, m)
		return
	}
	r.models[r.next] = m
	r.next = (r.next + 1) % maxRecentModels
}

// satisfying returns a remembered model under which every constraint of
// cons holds (variables missing from the model read 0, matching the
// executor's witness semantics).
func (r *modelRing) satisfying(cons []Constraint) (Model, bool) {
	if len(cons) == 0 {
		return nil, false
	}
nextModel:
	for i := len(r.models) - 1; i >= 0; i-- {
		m := r.models[i]
		for _, c := range cons {
			if !c.Holds(m) {
				continue nextModel
			}
		}
		return m, true
	}
	return nil, false
}
