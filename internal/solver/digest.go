package solver

// Incremental, order-insensitive digests of constraint conjunctions.
//
// The symbolic executor's path condition is append-only (with an occasional
// in-place replacement when a single-variable bound is compacted), so the
// cache key for "pc ∧ extras" can be maintained in O(1) per added
// constraint instead of re-sorting and re-stringifying the whole
// conjunction on every query, which is what the previous hashConstraints
// did. The digest combines per-constraint hashes with modular addition, so
// it is insensitive to constraint order, supports removal (needed by bound
// compaction), and two digests of the same multiset are always equal.
//
// A digest is only a probabilistic key: cache layers that use it must
// verify the stored conjunction on a hit (see sameConjunction) so an FNV-64
// collision can never return a wrong verdict.

// Digest is an order-insensitive fingerprint of a constraint multiset.
// The zero value is the digest of the empty conjunction. Digests are
// comparable and usable as map keys.
type Digest struct {
	// Sum is the mod-2^64 sum of the per-constraint hashes.
	Sum uint64
	// N is the number of constraints digested (so conjunctions whose
	// hashes happen to sum equally but differ in length never collide).
	N int
}

// FNV-64a parameters (hash/fnv is not used directly: feeding the hash
// word-by-word through a local function avoids the []byte round trip and
// its allocations on the hot path).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvWord folds the 8 bytes of v (little-endian) into an FNV-64a state.
func fnvWord(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

// mix64 finalizes a hash with SplitMix64's avalanche rounds. Raw FNV-64a
// must not be combined additively: a low-bit difference in one input word
// (say Var 1 vs Var 3, everything else equal) propagates through FNV's
// xor-multiply chain as an additive constant that does not depend on the
// prefix, so conjunctions pairing the same constraint shapes over
// different variables — exactly what per-character string constraints
// produce — would sum to colliding digests in droves. The avalanche makes
// each per-constraint hash's contribution to the sum non-affine in its
// input.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// HashConstraint returns a structural hash of c (FNV-64a over its words,
// finalized by mix64 so hashes are safe to combine additively).
// Constraints are canonical (terms sorted by variable, no zero
// coefficients), so structurally equal constraints always hash equally.
func HashConstraint(c Constraint) uint64 {
	h := fnvWord(uint64(fnvOffset64), uint64(c.Op))
	h = fnvWord(h, uint64(c.E.Const))
	for _, tm := range c.E.Terms {
		h = fnvWord(h, uint64(tm.Var))
		h = fnvWord(h, uint64(tm.Coeff))
	}
	return mix64(h)
}

// Add returns the digest extended by a constraint with hash h.
func (d Digest) Add(h uint64) Digest { return Digest{Sum: d.Sum + h, N: d.N + 1} }

// Remove returns the digest with a constraint of hash h removed. The caller
// must only remove hashes previously added.
func (d Digest) Remove(h uint64) Digest { return Digest{Sum: d.Sum - h, N: d.N - 1} }

// DigestOf computes the digest of a conjunction from scratch.
func DigestOf(cons []Constraint) Digest {
	var sum uint64
	for _, c := range cons {
		sum += HashConstraint(c)
	}
	return Digest{Sum: sum, N: len(cons)}
}

// hashAll returns the per-constraint hashes of cons.
func hashAll(cons []Constraint) []uint64 {
	hs := make([]uint64, len(cons))
	for i, c := range cons {
		hs[i] = HashConstraint(c)
	}
	return hs
}

// constraintEq reports structural equality of two canonical constraints.
func constraintEq(a, b Constraint) bool {
	if a.Op != b.Op || a.E.Const != b.E.Const || len(a.E.Terms) != len(b.E.Terms) {
		return false
	}
	for i, tm := range a.E.Terms {
		if tm != b.E.Terms[i] {
			return false
		}
	}
	return true
}

// sameConjunction reports whether a and b are equal as constraint
// multisets. The common case — the same conjunction presented in the same
// order — is O(n); a permuted match falls back to quadratic matching, which
// is fine because it only runs on digest-equal conjunctions.
func sameConjunction(a, b []Constraint) bool {
	if len(a) != len(b) {
		return false
	}
	ordered := true
	for i := range a {
		if !constraintEq(a[i], b[i]) {
			ordered = false
			break
		}
	}
	if ordered {
		return true
	}
	used := make([]bool, len(b))
outer:
	for i := range a {
		for j := range b {
			if !used[j] && constraintEq(a[i], b[j]) {
				used[j] = true
				continue outer
			}
		}
		return false
	}
	return true
}

// boundsSig hashes the intrinsic bounds of every variable the conjunction
// mentions. The solver's verdict depends on those bounds (a byte is
// 0..255, a string length is ≥ 0), and they are fixed per VarTable at
// variable creation — but different executors build different tables, so a
// cache shared across executors must refuse a hit whose variables carry
// different intrinsic bounds even when the constraints are structurally
// identical.
//
// Like Digest, the signature sums per-constraint hashes, so it is
// insensitive to constraint order: the digest and sameConjunction both
// treat permuted conjunctions as equal, and an order-sensitive signature
// would turn those permuted re-queries — which symbolic execution produces
// constantly, states accumulating the same constraints along different
// branch orders — into spurious misses. (Term order within a constraint is
// canonical, so chaining inside one constraint is deterministic.)
func boundsSig(t *VarTable, cons []Constraint) uint64 {
	var sig uint64
	for _, c := range cons {
		h := uint64(fnvOffset64)
		for _, tm := range c.E.Terms {
			info := t.Info(tm.Var)
			h = fnvWord(h, uint64(tm.Var))
			var flags uint64
			if info.HasLo {
				flags |= 1
				h = fnvWord(h, uint64(info.Lo))
			}
			if info.HasHi {
				flags |= 2
				h = fnvWord(h, uint64(info.Hi))
			}
			h = fnvWord(h, flags)
		}
		sig += mix64(h)
	}
	return sig
}
