package solver

import "testing"

// TestCachedSolverSpillFiresOncePerVerdict: the spill hook must see every
// freshly decided verdict exactly once, tagged with the solver's Origin,
// and must NOT fire again when the verdict is later served from the LRU.
func TestCachedSolverSpillFiresOncePerVerdict(t *testing.T) {
	cs := NewCached(New())
	cs.Origin = 42
	type spilled struct {
		d      Digest
		origin uint64
		res    Result
	}
	var got []spilled
	cs.Spill = func(d Digest, bsig, origin uint64, cons []Constraint, res Result, model Model) {
		got = append(got, spilled{d, origin, res})
	}
	tbl := NewVarTable()
	x := tbl.NewVar("x")
	sat := []Constraint{Ge(VarExpr(x), ConstExpr(3))}
	unsat := []Constraint{Ge(VarExpr(x), ConstExpr(3)), Le(VarExpr(x), ConstExpr(1))}

	if res, _ := cs.Check(tbl, sat); res != Sat {
		t.Fatalf("sat query = %v", res)
	}
	if res, _ := cs.Check(tbl, unsat); res != Unsat {
		t.Fatalf("unsat query = %v", res)
	}
	// Cache hits: no new spills.
	cs.Check(tbl, sat)
	cs.Check(tbl, unsat)

	if len(got) != 2 {
		t.Fatalf("spill fired %d times, want 2", len(got))
	}
	for _, s := range got {
		if s.origin != 42 {
			t.Fatalf("spilled origin = %d, want 42", s.origin)
		}
	}
	if got[0].d != DigestOf(sat) || got[0].res != Sat {
		t.Fatalf("first spill = %+v", got[0])
	}
	if got[1].d != DigestOf(unsat) || got[1].res != Unsat {
		t.Fatalf("second spill = %+v", got[1])
	}
}

// TestCachedSolverEvictionInvalidationSplit: capacity evictions and
// origin invalidations are separate counters — conflating them made the
// LRU look undersized whenever incremental invalidation dropped entries.
func TestCachedSolverEvictionInvalidationSplit(t *testing.T) {
	cs := NewCached(New())
	cs.MaxEntries = 4
	tbl := NewVarTable()
	vars := make([]Var, 8)
	for i := range vars {
		vars[i] = tbl.NewVar(string(rune('a' + i)))
	}
	// Fill past capacity: 8 distinct queries into 4 slots.
	for i, v := range vars {
		cs.Origin = uint64(100 + i%2)
		cs.Check(tbl, []Constraint{Ge(VarExpr(v), ConstExpr(int64(i)))})
	}
	if cs.Evictions != 4 {
		t.Fatalf("Evictions = %d, want 4", cs.Evictions)
	}
	if cs.Invalidations != 0 {
		t.Fatalf("Invalidations = %d before any invalidation", cs.Invalidations)
	}
	n := cs.InvalidateOrigins(map[uint64]bool{101: true})
	if n == 0 {
		t.Fatal("InvalidateOrigins dropped nothing")
	}
	if cs.Invalidations != n {
		t.Fatalf("Invalidations = %d, want %d", cs.Invalidations, n)
	}
	if cs.Evictions != 4 {
		t.Fatalf("Evictions moved to %d after invalidation", cs.Evictions)
	}
}

// TestSharedCacheSeedAndPersistHits: seeded entries serve lookups, count
// as PersistHits, and are not re-offered to the spill hook; fresh stores
// are offered exactly once.
func TestSharedCacheSeedAndPersistHits(t *testing.T) {
	sc := NewSharedCache(0)
	spills := 0
	sc.Spill = func(d Digest, bsig, origin uint64, cons []Constraint, res Result, model Model) {
		spills++
	}
	tbl := NewVarTable()
	x := tbl.NewVar("x")
	warm := []Constraint{Ge(VarExpr(x), ConstExpr(3))}
	fresh := []Constraint{Le(VarExpr(x), ConstExpr(-5))}
	wd, fd := DigestOf(warm), DigestOf(fresh)
	bsig := boundsSig(tbl, warm)

	sc.Seed(wd, bsig, 7, warm, Sat, Model{x: 3})
	if spills != 0 {
		t.Fatalf("Seed offered to spill hook (%d calls)", spills)
	}
	res, m, ok := sc.lookup(wd, bsig, warm)
	if !ok || res != Sat || m[x] != 3 {
		t.Fatalf("seeded lookup = (%v, %v, %v)", res, m, ok)
	}
	if c := sc.Counters(); c.PersistHits != 1 || c.Hits != 1 {
		t.Fatalf("counters = %+v, want 1 hit / 1 persist-hit", c)
	}

	sc.store(fd, boundsSig(tbl, fresh), 8, fresh, Unsat, nil)
	if spills != 1 {
		t.Fatalf("store offered %d times, want 1", spills)
	}
	if _, _, ok := sc.lookup(fd, boundsSig(tbl, fresh), fresh); !ok {
		t.Fatal("stored entry missed")
	}
	if c := sc.Counters(); c.PersistHits != 1 {
		t.Fatalf("fresh hit counted as persist hit: %+v", sc.Counters())
	}
}

// TestSharedCacheInvalidateOrigins: only entries from dead origins drop,
// and the drop lands in Invalidations, not Evictions.
func TestSharedCacheInvalidateOrigins(t *testing.T) {
	sc := NewSharedCache(0)
	tbl := NewVarTable()
	x := tbl.NewVar("x")
	y := tbl.NewVar("y")
	cx := []Constraint{Ge(VarExpr(x), ConstExpr(1))}
	cy := []Constraint{Ge(VarExpr(y), ConstExpr(2))}
	sc.store(DigestOf(cx), boundsSig(tbl, cx), 100, cx, Sat, Model{x: 1})
	sc.store(DigestOf(cy), boundsSig(tbl, cy), 200, cy, Sat, Model{y: 2})

	if n := sc.InvalidateOrigins(map[uint64]bool{100: true}); n != 1 {
		t.Fatalf("InvalidateOrigins = %d, want 1", n)
	}
	if _, _, ok := sc.lookup(DigestOf(cx), boundsSig(tbl, cx), cx); ok {
		t.Fatal("dead-origin entry survived")
	}
	if _, _, ok := sc.lookup(DigestOf(cy), boundsSig(tbl, cy), cy); !ok {
		t.Fatal("live-origin entry dropped")
	}
	c := sc.Counters()
	if c.Invalidations != 1 || c.Evictions != 0 {
		t.Fatalf("counters = %+v, want 1 invalidation / 0 evictions", c)
	}
}
