package solver

import "context"

// Partition splits a conjunction into independent components: two
// constraints belong to the same component iff they (transitively) share a
// variable. Since components are variable-disjoint, the conjunction is
// satisfiable iff every component is, and a model is the union of the
// component models — KLEE's "independent constraint" optimization.
// Constant-only constraints are gathered into a single leading component.
//
// The result preserves determinism: components are ordered by the first
// constraint index they contain, and constraints keep their relative
// order within a component.
func Partition(cons []Constraint) [][]Constraint {
	if len(cons) <= 1 {
		if len(cons) == 0 {
			return nil
		}
		return [][]Constraint{cons}
	}
	// Union-find over constraint indices, linking through variables.
	parent := make([]int, len(cons))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	varOwner := make(map[Var]int)
	groundIdx := -1
	for i, c := range cons {
		if len(c.E.Terms) == 0 {
			if groundIdx == -1 {
				groundIdx = i
			} else {
				union(groundIdx, i)
			}
			continue
		}
		for _, tm := range c.E.Terms {
			if owner, ok := varOwner[tm.Var]; ok {
				union(owner, i)
			} else {
				varOwner[tm.Var] = i
			}
		}
	}
	groups := make(map[int][]Constraint)
	order := make([]int, 0, 8)
	for i, c := range cons {
		root := find(i)
		if _, seen := groups[root]; !seen {
			order = append(order, root)
		}
		groups[root] = append(groups[root], c)
	}
	out := make([][]Constraint, 0, len(order))
	for _, root := range order {
		out = append(out, groups[root])
	}
	return out
}

// CheckPartitioned decides the conjunction by solving each independent
// component separately through the cache and merging the models. Component
// results memoize individually, so a long path condition that grows by one
// constraint re-solves only the affected component.
func (cs *CachedSolver) CheckPartitioned(t *VarTable, cons []Constraint) (Result, Model) {
	return cs.CheckPartitionedCtx(context.Background(), t, cons)
}

// CheckPartitionedCtx is CheckPartitioned under a context; the context is
// consulted per component, so a wide conjunction stops between components
// once the caller is cancelled.
func (cs *CachedSolver) CheckPartitionedCtx(ctx context.Context, t *VarTable, cons []Constraint) (Result, Model) {
	return cs.CheckPartitionedDigestCtx(ctx, t, cons, DigestOf(cons))
}

// CheckPartitionedDigestCtx is CheckPartitionedCtx for callers that
// maintain the whole-conjunction digest incrementally (the executor's
// rolling per-state digest). The digest keys the single-component path
// directly; the multi-component path digests each component from its
// per-constraint hashes, so component verdicts memoize individually and a
// path condition that grows by one constraint re-solves only the affected
// component.
func (cs *CachedSolver) CheckPartitionedDigestCtx(ctx context.Context, t *VarTable, cons []Constraint, d Digest) (Result, Model) {
	comps := Partition(cons)
	if len(comps) <= 1 {
		return cs.checkDigest(ctx, t, cons, d, nil)
	}
	merged := make(Model)
	result := Sat
	for _, comp := range comps {
		res, m := cs.checkDigest(ctx, t, comp, DigestOf(comp), nil)
		switch res {
		case Unsat:
			// One unsatisfiable component refutes the conjunction.
			return Unsat, nil
		case Unknown:
			result = Unknown
		case Sat:
			for k, v := range m {
				merged[k] = v
			}
		}
	}
	if result != Sat {
		return result, nil
	}
	return Sat, merged
}
