// Package solver implements a decision procedure for conjunctions of linear
// integer constraints, playing the role STP plays for KLEE in the paper.
// Path conditions produced by the symbolic executor — branch outcomes,
// buffer-bound queries, and the statistical module's threshold predicates —
// are all conjunctions of linear (in)equalities over symbolic integers and
// string-length variables, which is exactly the fragment this solver
// decides.
//
// The procedure layers three engines:
//
//  1. interval (bounds) propagation to a fixpoint,
//  2. Fourier–Motzkin elimination for rational infeasibility proofs,
//  3. branch-and-propagate integer model search (with disequality
//     splitting).
//
// It answers Sat (with a model), Unsat, or Unknown (resource budget hit).
package solver

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Var identifies a solver variable. Variables are created through a VarTable
// so they carry names (for diagnostics and witness extraction) and intrinsic
// bounds (e.g. string lengths are non-negative, bytes are 0..255).
type Var int32

// NoVar is an invalid variable sentinel.
const NoVar Var = -1

// Term is a coefficient–variable product.
type Term struct {
	Coeff int64
	Var   Var
}

// LinExpr is a linear expression Σ Coeff·Var + Const in a canonical form:
// terms sorted by variable, no zero coefficients, no duplicate variables.
type LinExpr struct {
	Terms []Term
	Const int64
}

// ConstExpr returns the constant expression c.
func ConstExpr(c int64) LinExpr { return LinExpr{Const: c} }

// VarExpr returns the expression 1·v.
func VarExpr(v Var) LinExpr { return LinExpr{Terms: []Term{{Coeff: 1, Var: v}}} }

// IsConst reports whether the expression has no variable terms.
func (e LinExpr) IsConst() bool { return len(e.Terms) == 0 }

// SingleVar returns (v, coeff, true) when the expression is coeff·v + Const
// with exactly one term.
func (e LinExpr) SingleVar() (Var, int64, bool) {
	if len(e.Terms) != 1 {
		return NoVar, 0, false
	}
	return e.Terms[0].Var, e.Terms[0].Coeff, true
}

// normalize sorts terms and merges duplicates, dropping zero coefficients.
func normalize(terms []Term, c int64) LinExpr {
	sort.Slice(terms, func(i, j int) bool { return terms[i].Var < terms[j].Var })
	out := terms[:0]
	for _, t := range terms {
		if t.Coeff == 0 {
			continue
		}
		if n := len(out); n > 0 && out[n-1].Var == t.Var {
			out[n-1].Coeff += t.Coeff
			if out[n-1].Coeff == 0 {
				out = out[:n-1]
			}
			continue
		}
		out = append(out, t)
	}
	return LinExpr{Terms: out, Const: c}
}

// Add returns e + o.
func (e LinExpr) Add(o LinExpr) LinExpr {
	terms := make([]Term, 0, len(e.Terms)+len(o.Terms))
	terms = append(terms, e.Terms...)
	terms = append(terms, o.Terms...)
	return normalize(terms, e.Const+o.Const)
}

// Sub returns e − o.
func (e LinExpr) Sub(o LinExpr) LinExpr { return e.Add(o.Neg()) }

// Neg returns −e.
func (e LinExpr) Neg() LinExpr {
	terms := make([]Term, len(e.Terms))
	for i, t := range e.Terms {
		terms[i] = Term{Coeff: -t.Coeff, Var: t.Var}
	}
	return LinExpr{Terms: terms, Const: -e.Const}
}

// MulConst returns k·e.
func (e LinExpr) MulConst(k int64) LinExpr {
	if k == 0 {
		return LinExpr{}
	}
	terms := make([]Term, len(e.Terms))
	for i, t := range e.Terms {
		terms[i] = Term{Coeff: k * t.Coeff, Var: t.Var}
	}
	return LinExpr{Terms: terms, Const: k * e.Const}
}

// AddConst returns e + k.
func (e LinExpr) AddConst(k int64) LinExpr {
	return LinExpr{Terms: e.Terms, Const: e.Const + k}
}

// Eval evaluates the expression under a model; missing variables read 0.
func (e LinExpr) Eval(m Model) int64 {
	v := e.Const
	for _, t := range e.Terms {
		v += t.Coeff * m[t.Var]
	}
	return v
}

// String renders the expression with variable names from t (or v<i> when
// t is nil).
func (e LinExpr) String(t *VarTable) string {
	if len(e.Terms) == 0 {
		return strconv.FormatInt(e.Const, 10)
	}
	var sb strings.Builder
	for i, tm := range e.Terms {
		name := fmt.Sprintf("v%d", tm.Var)
		if t != nil {
			name = t.Name(tm.Var)
		}
		switch {
		case i == 0 && tm.Coeff == 1:
			sb.WriteString(name)
		case i == 0 && tm.Coeff == -1:
			sb.WriteString("-" + name)
		case i == 0:
			fmt.Fprintf(&sb, "%d*%s", tm.Coeff, name)
		case tm.Coeff == 1:
			sb.WriteString(" + " + name)
		case tm.Coeff == -1:
			sb.WriteString(" - " + name)
		case tm.Coeff > 0:
			fmt.Fprintf(&sb, " + %d*%s", tm.Coeff, name)
		default:
			fmt.Fprintf(&sb, " - %d*%s", -tm.Coeff, name)
		}
	}
	if e.Const > 0 {
		fmt.Fprintf(&sb, " + %d", e.Const)
	} else if e.Const < 0 {
		fmt.Fprintf(&sb, " - %d", -e.Const)
	}
	return sb.String()
}

// ConstraintOp is the relation of a constraint's expression to zero.
type ConstraintOp int

// Constraint operations: E ≤ 0, E = 0, E ≠ 0.
const (
	OpLe ConstraintOp = iota + 1
	OpEq
	OpNe
)

// Constraint asserts E Op 0.
type Constraint struct {
	E  LinExpr
	Op ConstraintOp
}

// Constructors translate the usual comparison forms into canonical
// constraints (integers: a < b  ⇔  a − b + 1 ≤ 0).

// Le returns a ≤ b.
func Le(a, b LinExpr) Constraint { return Constraint{E: a.Sub(b), Op: OpLe} }

// Lt returns a < b.
func Lt(a, b LinExpr) Constraint { return Constraint{E: a.Sub(b).AddConst(1), Op: OpLe} }

// Ge returns a ≥ b.
func Ge(a, b LinExpr) Constraint { return Le(b, a) }

// Gt returns a > b.
func Gt(a, b LinExpr) Constraint { return Lt(b, a) }

// Eq returns a = b.
func Eq(a, b LinExpr) Constraint { return Constraint{E: a.Sub(b), Op: OpEq} }

// Ne returns a ≠ b.
func Ne(a, b LinExpr) Constraint { return Constraint{E: a.Sub(b), Op: OpNe} }

// Negate returns the logical negation of the constraint.
// ¬(E ≤ 0) = (−E + 1 ≤ 0); ¬(E = 0) = (E ≠ 0); ¬(E ≠ 0) = (E = 0).
func (c Constraint) Negate() Constraint {
	switch c.Op {
	case OpLe:
		return Constraint{E: c.E.Neg().AddConst(1), Op: OpLe}
	case OpEq:
		return Constraint{E: c.E, Op: OpNe}
	case OpNe:
		return Constraint{E: c.E, Op: OpEq}
	default:
		panic("solver: invalid constraint op")
	}
}

// Holds evaluates the constraint under a model.
func (c Constraint) Holds(m Model) bool {
	v := c.E.Eval(m)
	switch c.Op {
	case OpLe:
		return v <= 0
	case OpEq:
		return v == 0
	case OpNe:
		return v != 0
	default:
		return false
	}
}

// IsTriviallyTrue reports whether the constraint holds regardless of any
// assignment (constant expression satisfying the relation).
func (c Constraint) IsTriviallyTrue() bool {
	if !c.E.IsConst() {
		return false
	}
	switch c.Op {
	case OpLe:
		return c.E.Const <= 0
	case OpEq:
		return c.E.Const == 0
	case OpNe:
		return c.E.Const != 0
	default:
		return false
	}
}

// IsTriviallyFalse reports whether the constraint is unsatisfiable on its
// own.
func (c Constraint) IsTriviallyFalse() bool {
	if !c.E.IsConst() {
		return false
	}
	return !c.IsTriviallyTrue()
}

// String renders the constraint in a readable relational form.
func (c Constraint) String(t *VarTable) string {
	op := "<= 0"
	switch c.Op {
	case OpEq:
		op = "== 0"
	case OpNe:
		op = "!= 0"
	}
	// Render single-variable constraints in the friendlier "x <= k" form.
	if v, coeff, ok := c.E.SingleVar(); ok && (coeff == 1 || coeff == -1) {
		name := fmt.Sprintf("v%d", v)
		if t != nil {
			name = t.Name(v)
		}
		k := -c.E.Const
		switch {
		case c.Op == OpLe && coeff == 1:
			return fmt.Sprintf("%s <= %d", name, k)
		case c.Op == OpLe && coeff == -1:
			return fmt.Sprintf("%s >= %d", name, -k)
		case c.Op == OpEq && coeff == 1:
			return fmt.Sprintf("%s == %d", name, k)
		case c.Op == OpEq && coeff == -1:
			return fmt.Sprintf("%s == %d", name, -k)
		case c.Op == OpNe && coeff == 1:
			return fmt.Sprintf("%s != %d", name, k)
		case c.Op == OpNe && coeff == -1:
			return fmt.Sprintf("%s != %d", name, -k)
		}
	}
	return c.E.String(t) + " " + op
}

// Model is a satisfying assignment.
type Model map[Var]int64

// Result is the outcome of a satisfiability check.
type Result int

// Check outcomes.
const (
	Unknown Result = iota
	Sat
	Unsat
)

// String returns "sat", "unsat" or "unknown".
func (r Result) String() string {
	switch r {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	default:
		return "unknown"
	}
}
