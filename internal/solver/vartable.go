package solver

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// VarInfo carries a variable's metadata.
type VarInfo struct {
	Name string
	// Intrinsic bounds; Lo/Hi are ignored when the corresponding flag is
	// false.
	HasLo, HasHi bool
	Lo, Hi       int64
}

// VarTable allocates variables. It is append-only so symbolic-execution
// states can share one table while keeping independent constraint sets.
//
// The table is safe for concurrent use: allocation takes a mutex, while
// Info — the solver's hot path — reads the backing store through an atomic
// pointer without locking. A reader may only ask about variables it has a
// happens-before edge to (its own allocations, or variables published to it
// through a lock, channel, or barrier), which the parallel frontier
// executor guarantees by publishing states only at epoch boundaries.
//
// Besides plain dense allocation, the table supports interleaved "lanes"
// (see NewLaneGroup): concurrent workers draw IDs from disjoint arithmetic
// progressions so the variable numbering — which the solver is sensitive
// to through term ordering and branching heuristics — depends only on
// which worker allocates, never on cross-worker timing.
//
// Metadata lives in fixed-size pages allocated on first write, and Reserve
// claims ID ranges without touching storage at all. The ID space can
// therefore be arbitrarily sparse at negligible cost — lane striding and
// per-string byte blocks reserve far more IDs than are ever materialized,
// and a flat array sized by the highest touched ID would spend most of its
// memory (and its zeroing time) on gaps.
type VarTable struct {
	mu    sync.Mutex
	hi    int // 1 + highest assigned ID (size of the ID space)
	pages atomic.Pointer[[]*varPage]
	// ranges holds the dense table's Reserve blocks; lane blocks live in
	// their LaneGroup (one sorted list per lane), reachable via groups.
	ranges atomic.Pointer[[]byteRange]
	groups atomic.Pointer[[]*LaneGroup]
}

const (
	varPageShift = 9 // 512 entries per page
	varPageSize  = 1 << varPageShift
	varPageMask  = varPageSize - 1
)

type varPage [varPageSize]VarInfo

// NewVarTable returns an empty table.
func NewVarTable() *VarTable {
	t := &VarTable{}
	t.pages.Store(&[]*varPage{})
	t.ranges.Store(&[]byteRange{})
	t.groups.Store(&[]*LaneGroup{})
	return t
}

// NewVar allocates an unbounded variable.
func (t *VarTable) NewVar(name string) Var {
	return t.alloc(VarInfo{Name: name})
}

// NewVarBounded allocates a variable with intrinsic bounds [lo, hi].
func (t *VarTable) NewVarBounded(name string, lo, hi int64) Var {
	return t.alloc(VarInfo{Name: name, HasLo: true, Lo: lo, HasHi: true, Hi: hi})
}

// NewVarMin allocates a variable with only a lower bound (e.g. a string
// length, which is ≥ 0).
func (t *VarTable) NewVarMin(name string, lo int64) Var {
	return t.alloc(VarInfo{Name: name, HasLo: true, Lo: lo})
}

func (t *VarTable) alloc(info VarInfo) Var {
	t.mu.Lock()
	id := t.hi
	t.setLocked(id, info)
	t.mu.Unlock()
	return Var(id)
}

// byteRange records one Reserve call: count IDs starting at first, spaced
// stride apart, all sharing the template metadata. The template's Name is a
// label prefix — Name() renders entry i as "label[i]". Storing one record
// per block (instead of one table entry per ID) is what makes reserving a
// large, mostly-untouched block O(1) in both time and space.
type byteRange struct {
	first  Var
	stride int32
	count  int32
	// single marks a one-ID record for an ordinary named variable (lane
	// allocations store these instead of page entries); its info is exact
	// rather than an indexed template.
	single bool
	info   VarInfo
}

// rangeFor returns the range containing v, if any. Ranges in the list are
// sorted by first ID and pairwise disjoint (each comes from one monotone
// allocation counter), so a binary search for the last range starting at or
// before v decides membership.
func rangeFor(ranges []byteRange, v Var) (byteRange, bool) {
	lo, hi := 0, len(ranges)
	for lo < hi {
		mid := (lo + hi) / 2
		if ranges[mid].first <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return byteRange{}, false
	}
	r := ranges[lo-1]
	d := int32(v - r.first)
	if d%r.stride != 0 || d/r.stride >= r.count {
		return byteRange{}, false
	}
	return r, true
}

// appendRange publishes ranges+r through p. Every published view is
// immutable — the new entry is written into spare capacity one past any
// reader's length, then a longer view is published — so the array is
// copied only on geometric capacity growth, keeping appends amortized O(1)
// while lock-free readers binary-search whatever view they loaded. Caller
// holds t.mu.
func appendRange(p *atomic.Pointer[[]byteRange], r byteRange) {
	old := *p.Load()
	if len(old) == cap(old) {
		grown := cap(old) * 2
		if grown < 16 {
			grown = 16
		}
		nd := make([]byteRange, len(old), grown)
		copy(nd, old)
		old = nd
	}
	nr := old[: len(old)+1 : cap(old)]
	nr[len(old)] = r
	p.Store(&nr)
}

// Reserve claims count consecutive IDs that all carry info's bounds, with
// entry i named "<info.Name>[i]". No per-ID storage is touched; the block
// is recorded as a single range. It returns the first ID and the distance
// between consecutive ones (always 1 for the dense table; lanes reserve
// strided blocks).
func (t *VarTable) Reserve(count int, info VarInfo) (Var, int32) {
	if count <= 0 {
		return NoVar, 1
	}
	t.mu.Lock()
	first := Var(t.hi)
	t.hi += count
	appendRange(&t.ranges, byteRange{first: first, stride: 1, count: int32(count), info: info})
	t.mu.Unlock()
	return first, 1
}

// setLocked assigns info to id, advancing the high-water mark and
// allocating the containing page as needed. Caller holds t.mu.
func (t *VarTable) setLocked(id int, info VarInfo) {
	if id >= t.hi {
		t.hi = id + 1
	}
	p := t.pageLocked(id >> varPageShift)
	p[id&varPageMask] = info
}

// pageLocked returns page pi, allocating it if absent. Caller holds t.mu.
// The page index is replaced copy-on-write (never mutated in place) so
// lock-free readers always see a consistent slice; pages themselves are
// stable once published. Entry writes into a page are ordered against
// readers by the caller-side happens-before contract documented on VarTable.
func (t *VarTable) pageLocked(pi int) *varPage {
	ps := *t.pages.Load()
	if pi < len(ps) {
		if p := ps[pi]; p != nil {
			return p
		}
	}
	n := len(ps)
	if pi >= n {
		n = pi + 1
	}
	np := make([]*varPage, n)
	copy(np, ps)
	p := new(varPage)
	np[pi] = p
	t.pages.Store(&np)
	return p
}

// Len returns the size of the ID space (1 + the highest allocated ID; gaps
// from strided lane allocation count).
func (t *VarTable) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.hi
}

// Export returns the metadata of every ID in [0, Len()) — the snapshot
// codec's view of a densely allocated table. Only tables without lane
// groups can be exported faithfully this way (a strided table's block
// structure is not captured); callers gate on Dense.
func (t *VarTable) Export() []VarInfo {
	n := t.Len()
	infos := make([]VarInfo, n)
	for i := range infos {
		infos[i] = t.Info(Var(i))
	}
	return infos
}

// Dense reports whether the table has only plain dense allocations — no
// lane groups and no Reserve blocks — so Export/Restore round-trips it
// exactly. The sequential execution engine only ever allocates densely.
func (t *VarTable) Dense() bool {
	return len(*t.groups.Load()) == 0 && len(*t.ranges.Load()) == 0
}

// Restore replays an exported metadata slice into an empty table,
// reassigning the same IDs in order. It is the deserialization half of
// Export and fails on a table that has already allocated.
func (t *VarTable) Restore(infos []VarInfo) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.hi != 0 {
		return fmt.Errorf("solver: restore into a non-empty table (%d IDs)", t.hi)
	}
	for i, info := range infos {
		t.setLocked(i, info)
	}
	return nil
}

// lookupRange finds the Reserve block containing v: the dense table's list
// first, then the owning lane's list (v's residue modulo the group stride
// identifies the lane, so only one sorted per-lane list is searched).
func (t *VarTable) lookupRange(v Var) (byteRange, bool) {
	if r, ok := rangeFor(*t.ranges.Load(), v); ok {
		return r, true
	}
	gs := *t.groups.Load()
	for i := len(gs) - 1; i >= 0; i-- {
		g := gs[i]
		if int(v) < g.base {
			continue
		}
		lane := (int(v) - g.base) % g.stride
		if r, ok := rangeFor(*g.laneRanges[lane].Load(), v); ok {
			return r, true
		}
	}
	return byteRange{}, false
}

// Info returns the variable's metadata. IDs inside a Reserve block report
// the block's template (shared bounds; Name is the unindexed label); IDs
// never allocated report a zero VarInfo.
func (t *VarTable) Info(v Var) VarInfo {
	ps := *t.pages.Load()
	pi := int(v) >> varPageShift
	if v >= 0 && pi < len(ps) && ps[pi] != nil {
		if info := ps[pi][int(v)&varPageMask]; info.Name != "" {
			return info
		}
	}
	if r, ok := t.lookupRange(v); ok {
		return r.info
	}
	return VarInfo{}
}

// Name returns the variable's name; block entries render as "label[i]".
func (t *VarTable) Name(v Var) string {
	ps := *t.pages.Load()
	pi := int(v) >> varPageShift
	if v >= 0 && pi < len(ps) && ps[pi] != nil {
		if name := ps[pi][int(v)&varPageMask].Name; name != "" {
			return name
		}
	}
	if r, ok := t.lookupRange(v); ok {
		if r.single {
			return r.info.Name
		}
		return fmt.Sprintf("%s[%d]", r.info.Name, int32(v-r.first)/r.stride)
	}
	return fmt.Sprintf("v%d?", int(v))
}

// VarAllocator abstracts variable allocation so code can run against the
// dense table (sequential execution) or a lane (one worker of the parallel
// frontier) without caring which.
type VarAllocator interface {
	NewVar(name string) Var
	NewVarBounded(name string, lo, hi int64) Var
	NewVarMin(name string, lo int64) Var
	// Reserve claims count IDs spaced stride apart starting at the returned
	// first ID. Every ID carries info's bounds; entry i is named
	// "<info.Name>[i]". The block costs O(1) regardless of count.
	Reserve(count int, info VarInfo) (first Var, stride int32)
}

var (
	_ VarAllocator = (*VarTable)(nil)
	_ VarAllocator = (*Lane)(nil)
)

// LaneGroup partitions the ID space above its creation point into stride
// interleaved lanes: lane i allocates base+i, base+i+stride,
// base+i+2*stride, … Two lanes can allocate concurrently without ever
// colliding, and the IDs a lane hands out depend only on how many
// allocations that lane has made — not on what other lanes do — which keeps
// variable numbering deterministic under parallel execution.
//
// Once a group exists, all further allocation on the table must go through
// its lanes (a dense NewVar would land inside another lane's progression).
type LaneGroup struct {
	t      *VarTable
	base   int
	stride int
	// laneRanges[i] is lane i's sorted Reserve-block list, published
	// copy-on-write so the table's lock-free Info/Name lookups can search
	// it while the owning lane appends.
	laneRanges []atomic.Pointer[[]byteRange]
}

// NewLaneGroup creates a lane group with the given stride at the current
// high-water mark and registers it for block-metadata lookups.
func (t *VarTable) NewLaneGroup(stride int) *LaneGroup {
	g := &LaneGroup{t: t, stride: stride, laneRanges: make([]atomic.Pointer[[]byteRange], stride)}
	for i := range g.laneRanges {
		g.laneRanges[i].Store(&[]byteRange{})
	}
	t.mu.Lock()
	g.base = t.hi
	gs := *t.groups.Load()
	ngs := make([]*LaneGroup, len(gs)+1)
	copy(ngs, gs)
	ngs[len(gs)] = g
	t.groups.Store(&ngs)
	t.mu.Unlock()
	return g
}

// Lane returns lane i of the group (0 ≤ i < stride). Each lane must be used
// by at most one goroutine at a time; handing a lane to another goroutine
// requires a happens-before edge (the frontier executor's epoch barrier).
func (g *LaneGroup) Lane(i int) *Lane {
	if i < 0 || i >= g.stride {
		panic(fmt.Sprintf("solver: lane %d out of range [0,%d)", i, g.stride))
	}
	return &Lane{g: g, idx: i}
}

// Lane allocates variables from one arithmetic progression of a LaneGroup.
type Lane struct {
	g   *LaneGroup
	idx int
	n   int // slots handed out so far
}

// NewVar allocates an unbounded variable from the lane.
func (l *Lane) NewVar(name string) Var {
	return l.alloc(VarInfo{Name: name})
}

// NewVarBounded allocates a bounded variable from the lane.
func (l *Lane) NewVarBounded(name string, lo, hi int64) Var {
	return l.alloc(VarInfo{Name: name, HasLo: true, Lo: lo, HasHi: true, Hi: hi})
}

// NewVarMin allocates a lower-bounded variable from the lane.
func (l *Lane) NewVarMin(name string, lo int64) Var {
	return l.alloc(VarInfo{Name: name, HasLo: true, Lo: lo})
}

// alloc records the variable as a single-ID range in the lane's list
// rather than a page entry: lane IDs are sparse in the table's ID space
// (consecutive lane slots sit a stride apart, and block reservations leave
// large gaps), so per-ID pages would be mostly empty.
func (l *Lane) alloc(info VarInfo) Var {
	id := l.next()
	t := l.g.t
	t.mu.Lock()
	if int(id) >= t.hi {
		t.hi = int(id) + 1
	}
	appendRange(&l.g.laneRanges[l.idx],
		byteRange{first: id, stride: int32(l.g.stride), count: 1, single: true, info: info})
	t.mu.Unlock()
	return id
}

// Reserve claims count lane slots (IDs spaced one group stride apart) and
// returns the first ID and that stride. Like VarTable.Reserve it records a
// single range carrying info's template — no per-ID storage.
func (l *Lane) Reserve(count int, info VarInfo) (Var, int32) {
	if count <= 0 {
		return NoVar, int32(l.g.stride)
	}
	first := Var(l.g.base + l.idx + l.g.stride*l.n)
	l.n += count
	last := int(first) + (count-1)*l.g.stride
	t := l.g.t
	t.mu.Lock()
	if last >= t.hi {
		t.hi = last + 1
	}
	appendRange(&l.g.laneRanges[l.idx],
		byteRange{first: first, stride: int32(l.g.stride), count: int32(count), info: info})
	t.mu.Unlock()
	return first, int32(l.g.stride)
}

func (l *Lane) next() Var {
	id := l.g.base + l.idx + l.g.stride*l.n
	l.n++
	return Var(id)
}
