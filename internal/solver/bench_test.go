package solver

import (
	"hash/fnv"
	"sort"
	"strconv"
	"testing"
)

// BenchmarkCheckBoxConstraints measures the common path-condition shape:
// single-variable bounds.
func BenchmarkCheckBoxConstraints(b *testing.B) {
	tbl := NewVarTable()
	x := tbl.NewVarMin("len", 0)
	i := tbl.NewVarMin("i", 0)
	cons := []Constraint{
		Gt(VarExpr(x), ConstExpr(518)),
		Lt(VarExpr(i), VarExpr(x)),
		Ge(VarExpr(i), ConstExpr(512)),
	}
	s := New()
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		if res, _ := s.Check(tbl, cons); res != Sat {
			b.Fatal(res)
		}
	}
}

// BenchmarkCheckUnsat measures refutation of an infeasible branch.
func BenchmarkCheckUnsat(b *testing.B) {
	tbl := NewVarTable()
	x := tbl.NewVarMin("len", 0)
	cons := []Constraint{
		Gt(VarExpr(x), ConstExpr(518)),
		Le(VarExpr(x), ConstExpr(100)),
	}
	s := New()
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		if res, _ := s.Check(tbl, cons); res != Unsat {
			b.Fatal(res)
		}
	}
}

// BenchmarkCheckFourierMotzkin forces the FM fallback (cyclic chain).
func BenchmarkCheckFourierMotzkin(b *testing.B) {
	tbl := NewVarTable()
	x := tbl.NewVar("x")
	y := tbl.NewVar("y")
	z := tbl.NewVar("z")
	cons := []Constraint{
		Lt(VarExpr(x), VarExpr(y)),
		Lt(VarExpr(y), VarExpr(z)),
		Lt(VarExpr(z), VarExpr(x)),
	}
	s := New()
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		if res, _ := s.Check(tbl, cons); res != Unsat {
			b.Fatal(res)
		}
	}
}

// BenchmarkCheckWideConjunction measures a defang-style path condition:
// many independent byte disequalities plus one length bound.
func BenchmarkCheckWideConjunction(b *testing.B) {
	tbl := NewVarTable()
	length := tbl.NewVarBounded("len", 0, 1200)
	cons := []Constraint{Ge(VarExpr(length), ConstExpr(1000))}
	for i := 0; i < 200; i++ {
		bv := tbl.NewVarBounded("b", 0, 255)
		cons = append(cons, Ne(VarExpr(bv), ConstExpr('<')))
		cons = append(cons, Ne(VarExpr(bv), ConstExpr('>')))
	}
	s := New()
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		if res, _ := s.Check(tbl, cons); res != Sat {
			b.Fatal(res)
		}
	}
}

// BenchmarkCheckPartitionedWide measures the same conjunction through the
// independence optimization with caching.
func BenchmarkCheckPartitionedWide(b *testing.B) {
	tbl := NewVarTable()
	length := tbl.NewVarBounded("len", 0, 1200)
	cons := []Constraint{Ge(VarExpr(length), ConstExpr(1000))}
	for i := 0; i < 200; i++ {
		bv := tbl.NewVarBounded("b", 0, 255)
		cons = append(cons, Ne(VarExpr(bv), ConstExpr('<')))
		cons = append(cons, Ne(VarExpr(bv), ConstExpr('>')))
	}
	cs := NewCached(New())
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		if res, _ := cs.CheckPartitioned(tbl, cons); res != Sat {
			b.Fatal(res)
		}
	}
}

// BenchmarkCacheHit measures the memoized path.
func BenchmarkCacheHit(b *testing.B) {
	tbl := NewVarTable()
	x := tbl.NewVar("x")
	cons := []Constraint{Ge(VarExpr(x), ConstExpr(3)), Le(VarExpr(x), ConstExpr(9))}
	cs := NewCached(New())
	cs.Check(tbl, cons)
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		if res, _ := cs.Check(tbl, cons); res != Sat {
			b.Fatal(res)
		}
	}
}

// legacyHashConstraints is the pre-digest cache key: stringify every
// constraint, sort, and hash — O(n log n) with an allocation per
// constraint. Kept here as the benchmark baseline for DigestOf.
func legacyHashConstraints(cons []Constraint) uint64 {
	keys := make([]string, len(cons))
	for i, c := range cons {
		buf := make([]byte, 0, 16+12*len(c.E.Terms))
		buf = strconv.AppendInt(buf, int64(c.Op), 10)
		buf = append(buf, '|')
		buf = strconv.AppendInt(buf, c.E.Const, 10)
		for _, tm := range c.E.Terms {
			buf = append(buf, ';')
			buf = strconv.AppendInt(buf, int64(tm.Var), 10)
			buf = append(buf, '*')
			buf = strconv.AppendInt(buf, tm.Coeff, 10)
		}
		keys[i] = string(buf)
	}
	sort.Strings(keys)
	h := fnv.New64a()
	for _, k := range keys {
		h.Write([]byte(k))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// benchConjunction builds an n-constraint path condition of the defang
// shape (byte disequalities plus a length bound).
func benchConjunction(n int) []Constraint {
	tbl := NewVarTable()
	length := tbl.NewVarBounded("len", 0, 1200)
	cons := []Constraint{Ge(VarExpr(length), ConstExpr(1000))}
	for i := 1; i < n; i++ {
		bv := tbl.NewVarBounded("b", 0, 255)
		cons = append(cons, Ne(VarExpr(bv), ConstExpr('<')))
	}
	return cons
}

// BenchmarkHashLegacySort is the old sort+stringify cache key over a
// 64-constraint path condition.
func BenchmarkHashLegacySort(b *testing.B) {
	cons := benchConjunction(64)
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		if legacyHashConstraints(cons) == 0 {
			b.Fatal("zero hash")
		}
	}
}

// BenchmarkHashDigestOf is the replacement: one alloc-free additive pass.
func BenchmarkHashDigestOf(b *testing.B) {
	cons := benchConjunction(64)
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		if DigestOf(cons).Sum == 0 {
			b.Fatal("zero digest")
		}
	}
}

// BenchmarkHashDigestIncremental is the executor's actual hot path: extend
// an existing digest by one appended constraint instead of re-keying the
// conjunction.
func BenchmarkHashDigestIncremental(b *testing.B) {
	cons := benchConjunction(64)
	base := DigestOf(cons[:63])
	last := cons[63]
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		if base.Add(HashConstraint(last)).Sum == 0 {
			b.Fatal("zero digest")
		}
	}
}

// BenchmarkCheckPartitionedCachedHot replays one conjunction through the
// full cache stack (steady state: every component hits).
func BenchmarkCheckPartitionedCachedHot(b *testing.B) {
	tbl := NewVarTable()
	length := tbl.NewVarBounded("len", 0, 1200)
	cons := []Constraint{Ge(VarExpr(length), ConstExpr(1000))}
	for i := 0; i < 64; i++ {
		bv := tbl.NewVarBounded("b", 0, 255)
		cons = append(cons, Ne(VarExpr(bv), ConstExpr('<')))
	}
	cs := NewCached(New())
	if res, _ := cs.CheckPartitioned(tbl, cons); res != Sat {
		b.Fatal(res)
	}
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		if res, _ := cs.CheckPartitioned(tbl, cons); res != Sat {
			b.Fatal(res)
		}
	}
}

// BenchmarkCheckPartitionedUncached is the same query with every cache
// layer disabled — the ablation baseline the ≥2x win is measured against.
func BenchmarkCheckPartitionedUncached(b *testing.B) {
	tbl := NewVarTable()
	length := tbl.NewVarBounded("len", 0, 1200)
	cons := []Constraint{Ge(VarExpr(length), ConstExpr(1000))}
	for i := 0; i < 64; i++ {
		bv := tbl.NewVarBounded("b", 0, 255)
		cons = append(cons, Ne(VarExpr(bv), ConstExpr('<')))
	}
	cs := NewCached(New())
	cs.Disabled = true
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		if res, _ := cs.CheckPartitioned(tbl, cons); res != Sat {
			b.Fatal(res)
		}
	}
}
