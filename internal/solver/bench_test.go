package solver

import "testing"

// BenchmarkCheckBoxConstraints measures the common path-condition shape:
// single-variable bounds.
func BenchmarkCheckBoxConstraints(b *testing.B) {
	tbl := NewVarTable()
	x := tbl.NewVarMin("len", 0)
	i := tbl.NewVarMin("i", 0)
	cons := []Constraint{
		Gt(VarExpr(x), ConstExpr(518)),
		Lt(VarExpr(i), VarExpr(x)),
		Ge(VarExpr(i), ConstExpr(512)),
	}
	s := New()
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		if res, _ := s.Check(tbl, cons); res != Sat {
			b.Fatal(res)
		}
	}
}

// BenchmarkCheckUnsat measures refutation of an infeasible branch.
func BenchmarkCheckUnsat(b *testing.B) {
	tbl := NewVarTable()
	x := tbl.NewVarMin("len", 0)
	cons := []Constraint{
		Gt(VarExpr(x), ConstExpr(518)),
		Le(VarExpr(x), ConstExpr(100)),
	}
	s := New()
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		if res, _ := s.Check(tbl, cons); res != Unsat {
			b.Fatal(res)
		}
	}
}

// BenchmarkCheckFourierMotzkin forces the FM fallback (cyclic chain).
func BenchmarkCheckFourierMotzkin(b *testing.B) {
	tbl := NewVarTable()
	x := tbl.NewVar("x")
	y := tbl.NewVar("y")
	z := tbl.NewVar("z")
	cons := []Constraint{
		Lt(VarExpr(x), VarExpr(y)),
		Lt(VarExpr(y), VarExpr(z)),
		Lt(VarExpr(z), VarExpr(x)),
	}
	s := New()
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		if res, _ := s.Check(tbl, cons); res != Unsat {
			b.Fatal(res)
		}
	}
}

// BenchmarkCheckWideConjunction measures a defang-style path condition:
// many independent byte disequalities plus one length bound.
func BenchmarkCheckWideConjunction(b *testing.B) {
	tbl := NewVarTable()
	length := tbl.NewVarBounded("len", 0, 1200)
	cons := []Constraint{Ge(VarExpr(length), ConstExpr(1000))}
	for i := 0; i < 200; i++ {
		bv := tbl.NewVarBounded("b", 0, 255)
		cons = append(cons, Ne(VarExpr(bv), ConstExpr('<')))
		cons = append(cons, Ne(VarExpr(bv), ConstExpr('>')))
	}
	s := New()
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		if res, _ := s.Check(tbl, cons); res != Sat {
			b.Fatal(res)
		}
	}
}

// BenchmarkCheckPartitionedWide measures the same conjunction through the
// independence optimization with caching.
func BenchmarkCheckPartitionedWide(b *testing.B) {
	tbl := NewVarTable()
	length := tbl.NewVarBounded("len", 0, 1200)
	cons := []Constraint{Ge(VarExpr(length), ConstExpr(1000))}
	for i := 0; i < 200; i++ {
		bv := tbl.NewVarBounded("b", 0, 255)
		cons = append(cons, Ne(VarExpr(bv), ConstExpr('<')))
		cons = append(cons, Ne(VarExpr(bv), ConstExpr('>')))
	}
	cs := NewCached(New())
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		if res, _ := cs.CheckPartitioned(tbl, cons); res != Sat {
			b.Fatal(res)
		}
	}
}

// BenchmarkCacheHit measures the memoized path.
func BenchmarkCacheHit(b *testing.B) {
	tbl := NewVarTable()
	x := tbl.NewVar("x")
	cons := []Constraint{Ge(VarExpr(x), ConstExpr(3)), Le(VarExpr(x), ConstExpr(9))}
	cs := NewCached(New())
	cs.Check(tbl, cons)
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		if res, _ := cs.Check(tbl, cons); res != Sat {
			b.Fatal(res)
		}
	}
}
