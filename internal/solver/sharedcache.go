package solver

import (
	"sync"
	"sync/atomic"
)

// SharedCache is a process-wide, race-safe query cache shared by the
// per-executor CachedSolvers of parallel candidate verification workers.
// A conjunction solved by one worker is served from here to every other
// worker that asks, so siblings reuse each other's solver effort.
//
// Shared entries are only ever exact, verified matches (digest + intrinsic
// bounds signature + constraint multiset): different executors build
// different VarTables, where the same Var ID can carry different intrinsic
// bounds, and the bounds signature refuses such cross-table hits. The
// heuristic fast paths (UNSAT cores, model reuse) stay per-executor where
// a single table makes them sound.
//
// Because the underlying solver is deterministic, serving a shared entry
// returns exactly what a local solve would have; hit/miss counts here are
// timing dependent and belong in obs telemetry, never in Report counters.
type SharedCache struct {
	shards [sharedCacheShards]sharedShard
	// perShard is each shard's LRU capacity.
	perShard int

	// Spill, when set, receives every verdict published through store so a
	// persistence layer can write it out asynchronously. Set before the
	// workers start (it is read without synchronization) and must never
	// block. Seeded (already-persisted) entries are not re-offered.
	Spill SpillFunc

	hits          atomic.Int64
	misses        atomic.Int64
	stores        atomic.Int64
	evictions     atomic.Int64
	invalidations atomic.Int64
	persistHits   atomic.Int64
}

const sharedCacheShards = 16

type sharedShard struct {
	mu  sync.Mutex
	lru lruCache
}

// NewSharedCache returns a shared cache holding up to maxEntries verdicts
// (0 or negative selects DefaultCacheEntries). Capacity is split evenly
// across shards.
func NewSharedCache(maxEntries int) *SharedCache {
	if maxEntries <= 0 {
		maxEntries = DefaultCacheEntries
	}
	per := maxEntries / sharedCacheShards
	if per < 1 {
		per = 1
	}
	return &SharedCache{perShard: per}
}

func (sc *SharedCache) shard(d Digest) *sharedShard {
	return &sc.shards[d.Sum%sharedCacheShards]
}

// lookup returns the stored verdict for an exact, verified match.
func (sc *SharedCache) lookup(d Digest, bsig uint64, cons []Constraint) (Result, Model, bool) {
	sh := sc.shard(d)
	sh.mu.Lock()
	e := sh.lru.lookupBsig(d, bsig, cons)
	var res Result = Unknown
	var m Model
	persisted := false
	if e != nil {
		res, m, persisted = e.res, e.model, e.persisted
	}
	sh.mu.Unlock()
	if e != nil {
		sc.hits.Add(1)
		if persisted {
			sc.persistHits.Add(1)
		}
	} else {
		sc.misses.Add(1)
	}
	return res, m, e != nil
}

// store publishes a solved verdict. The conjunction is copied by the LRU,
// so callers may keep mutating their slice. Models are stored as-is: the
// executor never mutates a model in place (extendModel copies), so sharing
// the map across goroutines is read-only and safe.
func (sc *SharedCache) store(d Digest, bsig, origin uint64, cons []Constraint, res Result, model Model) {
	sh := sc.shard(d)
	sh.mu.Lock()
	ev := sh.lru.add(d, bsig, origin, cons, res, model, sc.perShard)
	sh.mu.Unlock()
	sc.stores.Add(1)
	if ev > 0 {
		sc.evictions.Add(int64(ev))
	}
	if sc.Spill != nil {
		sc.Spill(d, bsig, origin, cons, res, model)
	}
}

// Seed inserts a verdict loaded from a persistent store, marking it so
// warm-start hits are counted apart (PersistHits) and so the spill hook
// does not re-offer what is already on disk. Callers must have verified
// the entry (digest recomputation + model check) before seeding.
func (sc *SharedCache) Seed(d Digest, bsig, origin uint64, cons []Constraint, res Result, model Model) {
	sh := sc.shard(d)
	sh.mu.Lock()
	sh.lru.add(d, bsig, origin, cons, res, model, sc.perShard)
	if e := sh.lru.entry(d); e != nil {
		e.persisted = true
	}
	sh.mu.Unlock()
}

// InvalidateOrigins drops every cached verdict whose origin FnHash is in
// dead, returning the number removed (counted as invalidations, not
// evictions).
func (sc *SharedCache) InvalidateOrigins(dead map[uint64]bool) int {
	total := 0
	for i := range sc.shards {
		sh := &sc.shards[i]
		sh.mu.Lock()
		total += sh.lru.invalidateOrigins(dead)
		sh.mu.Unlock()
	}
	if total > 0 {
		sc.invalidations.Add(int64(total))
	}
	return total
}

// SharedCacheCounters is a snapshot of a SharedCache's telemetry.
// PersistHits counts hits served by entries seeded from a persistent store
// (a subset of Hits); Invalidations counts entries dropped because their
// origin function changed.
type SharedCacheCounters struct {
	Hits, Misses, Stores, Evictions int64
	PersistHits, Invalidations      int64
}

// Counters snapshots the cache telemetry (approximate under concurrency,
// which is fine: these feed obs metrics, not Report determinism).
func (sc *SharedCache) Counters() SharedCacheCounters {
	return SharedCacheCounters{
		Hits:          sc.hits.Load(),
		Misses:        sc.misses.Load(),
		Stores:        sc.stores.Load(),
		Evictions:     sc.evictions.Load(),
		PersistHits:   sc.persistHits.Load(),
		Invalidations: sc.invalidations.Load(),
	}
}

// Len returns the total number of cached verdicts across shards.
func (sc *SharedCache) Len() int {
	n := 0
	for i := range sc.shards {
		sh := &sc.shards[i]
		sh.mu.Lock()
		n += sh.lru.len()
		sh.mu.Unlock()
	}
	return n
}
