// Package workload assembles labeled log corpora for the evaluation
// programs. It emulates the paper's log collection (§VII-A): generate a
// large number of random user runs, label each correct or faulty by its
// concrete outcome, and sample a balanced set (one hundred of each in the
// paper) at the configured logging rate.
package workload

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/apps"
	"repro/internal/corpus"
	"repro/internal/interp"
	"repro/internal/monitor"
	"repro/internal/trace"
)

// Options configures corpus construction.
type Options struct {
	// SampleRate is the per-event logging probability (1.0 or 0.3 in the
	// paper's main tables; 0.2–1.0 in the sensitivity study).
	SampleRate float64
	// Seed drives both input generation and log sampling.
	Seed int64
	// Correct and Faulty are the run counts to collect (default 100/100).
	Correct, Faulty int
}

// DefaultRuns is the paper's per-class run count.
const DefaultRuns = 100

// BuildCorpus generates inputs with the app's workload generator, executes
// them under the program monitor, and returns a balanced labeled corpus.
func BuildCorpus(app *apps.App, opts Options) (*trace.Corpus, error) {
	return BuildCorpusCtx(context.Background(), app, opts)
}

// BuildCorpusCtx is BuildCorpus with cancellation and tracing: the
// monitor's collection span and run/record counters attach to whatever
// observability handle rides in ctx.
func BuildCorpusCtx(ctx context.Context, app *apps.App, opts Options) (*trace.Corpus, error) {
	nc, nf := opts.Correct, opts.Faulty
	if nc == 0 {
		nc = DefaultRuns
	}
	if nf == 0 {
		nf = DefaultRuns
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	gen := func(i int) *interp.Input { return app.NewInput(rng) }
	cfg := monitor.Config{SampleRate: opts.SampleRate, Seed: opts.Seed}
	corpus, err := monitor.BalancedCorpusCtx(ctx, app.Program(), gen, nc, nf, cfg)
	if err != nil {
		return nil, fmt.Errorf("workload: %s: %w", app.Name, err)
	}
	return corpus, nil
}

// BuildCorpusStoreCtx is BuildCorpusCtx spilling straight to a segmented
// on-disk corpus store: the balanced collection loop appends each accepted
// run to the store and never holds the corpus in memory. With an empty
// store and the same options, the stored runs are identical (content,
// order, IDs) to what BuildCorpusCtx returns.
func BuildCorpusStoreCtx(ctx context.Context, app *apps.App, opts Options, store *corpus.Store, wopts corpus.Options) error {
	nc, nf := opts.Correct, opts.Faulty
	if nc == 0 {
		nc = DefaultRuns
	}
	if nf == 0 {
		nf = DefaultRuns
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	gen := func(i int) *interp.Input { return app.NewInput(rng) }
	cfg := monitor.Config{SampleRate: opts.SampleRate, Seed: opts.Seed}
	if err := monitor.BalancedCorpusStoreCtx(ctx, app.Program(), gen, nc, nf, cfg, store, wopts); err != nil {
		return fmt.Errorf("workload: %s: %w", app.Name, err)
	}
	return nil
}

// BuildCorpusParallel is BuildCorpus with parallel run collection: inputs
// are generated sequentially (the generator's RNG stream stays
// deterministic), executed under the monitor by a worker pool, and the
// first quota of each class (in generation order) is kept — so the result
// is deterministic for a given seed regardless of worker count.
func BuildCorpusParallel(app *apps.App, opts Options, workers int) (*trace.Corpus, error) {
	return BuildCorpusParallelCtx(context.Background(), app, opts, workers)
}

// BuildCorpusParallelCtx is BuildCorpusParallel with cancellation and
// tracing. Each collection batch opens its own monitor span.
func BuildCorpusParallelCtx(ctx context.Context, app *apps.App, opts Options, workers int) (*trace.Corpus, error) {
	nc, nf := opts.Correct, opts.Faulty
	if nc == 0 {
		nc = DefaultRuns
	}
	if nf == 0 {
		nf = DefaultRuns
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	cfg := monitor.Config{SampleRate: opts.SampleRate, Seed: opts.Seed}
	out := &trace.Corpus{Program: app.Name}
	haveC, haveF := 0, 0
	limit := (nc + nf) * 100
	generated := 0
	for generated < limit && (haveC < nc || haveF < nf) {
		batch := (nc + nf) * 2
		if generated+batch > limit {
			batch = limit - generated
		}
		inputs := make([]*interp.Input, batch)
		for i := range inputs {
			inputs[i] = app.NewInput(rng)
		}
		generated += batch
		part, err := monitor.CollectCorpusParallelCtx(ctx, app.Program(), inputs, cfg, workers)
		if err != nil {
			return nil, fmt.Errorf("workload: %s: %w", app.Name, err)
		}
		for i := range part.Runs {
			run := part.Runs[i]
			if run.Faulty {
				if haveF >= nf {
					continue
				}
				haveF++
			} else {
				if haveC >= nc {
					continue
				}
				haveC++
			}
			run.ID = len(out.Runs)
			out.Runs = append(out.Runs, run)
		}
	}
	if haveC < nc || haveF < nf {
		return nil, fmt.Errorf("workload: %s: generator yielded %d correct / %d faulty runs, want %d/%d",
			app.Name, haveC, haveF, nc, nf)
	}
	return out, nil
}

// FaultRate estimates the generator's raw fault probability over n runs
// (diagnostics for workload tuning).
func FaultRate(app *apps.App, seed int64, n int) (float64, error) {
	rng := rand.New(rand.NewSource(seed))
	faults := 0
	for i := 0; i < n; i++ {
		res, err := interp.Run(app.Program(), app.NewInput(rng), interp.Config{})
		if err != nil {
			return 0, err
		}
		if res.Faulty() {
			faults++
		}
	}
	return float64(faults) / float64(n), nil
}
