package workload

import (
	"testing"

	"repro/internal/apps"
)

func TestBuildCorpusParallelDeterministic(t *testing.T) {
	app, _ := apps.Get("ctree")
	opts := Options{SampleRate: 0.3, Seed: 5, Correct: 15, Faulty: 15}
	c1, err := BuildCorpusParallel(app, opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := BuildCorpusParallel(app, opts, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(c1.Runs) != len(c2.Runs) {
		t.Fatalf("run counts differ: %d vs %d", len(c1.Runs), len(c2.Runs))
	}
	for i := range c1.Runs {
		a, b := c1.Runs[i], c2.Runs[i]
		if a.Faulty != b.Faulty || len(a.Records) != len(b.Records) {
			t.Fatalf("run %d differs across worker counts", i)
		}
	}
	correct, faulty := c1.Split()
	if len(correct) != 15 || len(faulty) != 15 {
		t.Errorf("quotas: %d/%d", len(correct), len(faulty))
	}
}

func TestBuildCorpusParallelUsableByPipeline(t *testing.T) {
	app, _ := apps.Get("polymorph")
	corpus, err := BuildCorpusParallel(app, Options{SampleRate: 0.3, Seed: 1, Correct: 40, Faulty: 40}, 4)
	if err != nil {
		t.Fatal(err)
	}
	runs, locs, vars := corpus.Counts()
	if runs != 80 || locs == 0 || vars == 0 {
		t.Errorf("counts = %d/%d/%d", runs, locs, vars)
	}
	for i := range corpus.Runs {
		if corpus.Runs[i].ID != i {
			t.Fatalf("run IDs not renumbered: run %d has ID %d", i, corpus.Runs[i].ID)
		}
	}
}
