package workload

import (
	"testing"

	"repro/internal/apps"
)

func TestBuildCorpusBalanced(t *testing.T) {
	for _, name := range []string{"polymorph", "ctree"} {
		app, err := apps.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		corpus, err := BuildCorpus(app, Options{SampleRate: 0.5, Seed: 2, Correct: 20, Faulty: 20})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		correct, faulty := corpus.Split()
		if len(correct) != 20 || len(faulty) != 20 {
			t.Errorf("%s: split = %d/%d, want 20/20", name, len(correct), len(faulty))
		}
		if corpus.Program != name {
			t.Errorf("%s: corpus labeled %q", name, corpus.Program)
		}
		// Every faulty run carries its fault annotation (needed by the
		// failure-point identification and clustering).
		for _, r := range faulty {
			if r.FaultFunc == "" || r.FaultKind == "" {
				t.Errorf("%s: faulty run %d lacks fault annotation", name, r.ID)
			}
		}
	}
}

func TestBuildCorpusDefaults(t *testing.T) {
	app, _ := apps.Get("msgtool")
	corpus, err := BuildCorpus(app, Options{SampleRate: 1.0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus.Runs) != 2*DefaultRuns {
		t.Errorf("default corpus size = %d, want %d", len(corpus.Runs), 2*DefaultRuns)
	}
}

func TestBuildCorpusDeterministic(t *testing.T) {
	app, _ := apps.Get("polymorph")
	c1, err := BuildCorpus(app, Options{SampleRate: 0.3, Seed: 9, Correct: 10, Faulty: 10})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := BuildCorpus(app, Options{SampleRate: 0.3, Seed: 9, Correct: 10, Faulty: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(c1.Runs) != len(c2.Runs) {
		t.Fatal("corpus sizes differ")
	}
	for i := range c1.Runs {
		a, b := c1.Runs[i], c2.Runs[i]
		if a.Faulty != b.Faulty || len(a.Records) != len(b.Records) {
			t.Fatalf("run %d differs between identical seeds", i)
		}
	}
}

func TestFaultRate(t *testing.T) {
	for _, name := range []string{"polymorph", "ctree", "thttpd", "grep", "msgtool"} {
		app, _ := apps.Get(name)
		rate, err := FaultRate(app, 4, 200)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Generators are tuned to produce a healthy mix of both classes.
		if rate < 0.1 || rate > 0.9 {
			t.Errorf("%s: fault rate %.2f outside [0.1, 0.9]", name, rate)
		}
	}
}
