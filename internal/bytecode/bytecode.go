// Package bytecode compiles checked MiniC programs into a compact
// stack-machine instruction set. It plays the role LLVM bitcode plays in the
// paper: both the concrete interpreter (the program monitor's substrate) and
// the symbolic executor (the KLEE substitute) step the same instruction
// stream one instruction at a time.
package bytecode

import (
	"fmt"
	"strings"

	"repro/internal/minic"
)

// Op is a bytecode opcode.
type Op uint8

// Opcodes. The machine is a simple operand-stack machine: most instructions
// pop operands from and push results to the current frame's stack.
const (
	OpNop Op = iota

	OpConstInt // push Imm
	OpConstStr // push Str

	OpLoadLocal   // push locals[A]
	OpStoreLocal  // locals[A] = pop
	OpLoadGlobal  // push globals[A]
	OpStoreGlobal // globals[A] = pop
	OpNewBuf      // locals[A] = new buffer with capacity B

	OpBin // A = minic.BinOp (arithmetic/comparison); pops R, L; pushes result
	OpNeg // pushes -pop
	OpNot // pushes (pop == 0) as 0/1

	OpJump    // pc = A
	OpJumpZ   // if pop == 0 { pc = A }
	OpJumpNZ  // if pop != 0 { pc = A }
	OpCall    // call Funcs[A] with B args popped (last arg on top)
	OpBuiltin // invoke builtin A with B args
	OpReturn  // return; A==1 means a value is on the stack
	OpPop     // discard top of stack
)

var opNames = map[Op]string{
	OpNop: "nop", OpConstInt: "const.i", OpConstStr: "const.s",
	OpLoadLocal: "load.l", OpStoreLocal: "store.l",
	OpLoadGlobal: "load.g", OpStoreGlobal: "store.g",
	OpNewBuf: "newbuf", OpBin: "bin", OpNeg: "neg", OpNot: "not",
	OpJump: "jmp", OpJumpZ: "jz", OpJumpNZ: "jnz",
	OpCall: "call", OpBuiltin: "builtin", OpReturn: "ret", OpPop: "pop",
}

// String returns the mnemonic for the opcode.
func (op Op) String() string {
	if s, ok := opNames[op]; ok {
		return s
	}
	return fmt.Sprintf("Op(%d)", int(op))
}

// Instr is a single instruction. Operand meaning depends on Op.
type Instr struct {
	Op  Op
	A   int
	B   int
	Imm int64
	Str string
	Pos minic.Pos
}

// Fn is a compiled function.
type Fn struct {
	Name       string
	Index      int
	ParamNames []string
	ParamTypes []minic.Type
	Ret        minic.Type
	NumLocals  int
	Code       []Instr
}

// GlobalInfo describes a global slot.
type GlobalInfo struct {
	Name string
	Type minic.Type
}

// Program is a compiled MiniC program.
type Program struct {
	Name    string
	Funcs   []*Fn
	Globals []GlobalInfo

	// InitIndex and MainIndex locate the synthetic global-initializer
	// function (run before main) and the program entry point.
	InitIndex int
	MainIndex int

	byName map[string]*Fn
}

// Fn returns the compiled function with the given name, or nil.
func (p *Program) Fn(name string) *Fn {
	return p.byName[name]
}

// GlobalIndex returns the slot of the named global, or -1.
func (p *Program) GlobalIndex(name string) int {
	for i, g := range p.Globals {
		if g.Name == name {
			return i
		}
	}
	return -1
}

// InitFuncName is the name of the synthetic function that evaluates global
// initializers before main runs. It is not instrumented by the monitor.
const InitFuncName = "$init"

// Assemble reconstructs a Program from decoded parts (the snapshot codec's
// entry point back into this package), rebuilding the private name index
// that Compile normally populates and validating the structural invariants
// a well-formed program carries.
func Assemble(name string, funcs []*Fn, globals []GlobalInfo, initIndex, mainIndex int) (*Program, error) {
	p := &Program{
		Name:      name,
		Funcs:     funcs,
		Globals:   globals,
		InitIndex: initIndex,
		MainIndex: mainIndex,
		byName:    make(map[string]*Fn, len(funcs)),
	}
	for i, fn := range funcs {
		if fn == nil {
			return nil, fmt.Errorf("bytecode: assemble %s: nil function at %d", name, i)
		}
		if fn.Index != i {
			return nil, fmt.Errorf("bytecode: assemble %s: function %q has index %d at position %d", name, fn.Name, fn.Index, i)
		}
		if _, dup := p.byName[fn.Name]; dup {
			return nil, fmt.Errorf("bytecode: assemble %s: duplicate function %q", name, fn.Name)
		}
		p.byName[fn.Name] = fn
	}
	if initIndex < 0 || initIndex >= len(funcs) {
		return nil, fmt.Errorf("bytecode: assemble %s: init index %d out of range", name, initIndex)
	}
	if mainIndex < 0 || mainIndex >= len(funcs) {
		return nil, fmt.Errorf("bytecode: assemble %s: main index %d out of range", name, mainIndex)
	}
	return p, nil
}

// Compile lowers a checked MiniC program to bytecode.
func Compile(prog *minic.Program) (*Program, error) {
	cp := &Program{Name: prog.Name, byName: make(map[string]*Fn)}
	for _, g := range prog.Globals {
		cp.Globals = append(cp.Globals, GlobalInfo{Name: g.Name, Type: g.Type})
	}
	// Assign indices first so calls can reference forward declarations.
	for i, f := range prog.Funcs {
		fn := &Fn{
			Name:      f.Name,
			Index:     i,
			Ret:       f.Ret,
			NumLocals: f.NumLocals,
		}
		for _, prm := range f.Params {
			fn.ParamNames = append(fn.ParamNames, prm.Name)
			fn.ParamTypes = append(fn.ParamTypes, prm.Type)
		}
		cp.Funcs = append(cp.Funcs, fn)
		cp.byName[f.Name] = fn
	}
	for i, f := range prog.Funcs {
		c := &compiler{prog: cp}
		if err := c.compileBlock(f.Body); err != nil {
			return nil, err
		}
		// Implicit return (zero value for non-void functions that fall off
		// the end; the checker does not enforce explicit returns).
		switch f.Ret {
		case minic.TypeVoid:
			c.emit(Instr{Op: OpReturn, A: 0})
		case minic.TypeString:
			c.emit(Instr{Op: OpConstStr, Str: ""})
			c.emit(Instr{Op: OpReturn, A: 1})
		default:
			c.emit(Instr{Op: OpConstInt, Imm: 0})
			c.emit(Instr{Op: OpReturn, A: 1})
		}
		cp.Funcs[i].Code = c.code
	}
	// Synthetic $init evaluates global initializers in declaration order.
	initFn := &Fn{Name: InitFuncName, Index: len(cp.Funcs), Ret: minic.TypeVoid}
	ic := &compiler{prog: cp}
	for _, g := range prog.Globals {
		if g.Init == nil {
			continue
		}
		if err := ic.compileExpr(g.Init); err != nil {
			return nil, err
		}
		ic.emit(Instr{Op: OpStoreGlobal, A: g.Index, Pos: g.Pos})
	}
	ic.emit(Instr{Op: OpReturn, A: 0})
	initFn.Code = ic.code
	cp.Funcs = append(cp.Funcs, initFn)
	cp.byName[InitFuncName] = initFn
	cp.InitIndex = initFn.Index

	mainFn := cp.Fn("main")
	if mainFn == nil {
		return nil, fmt.Errorf("bytecode: program %q has no main", prog.Name)
	}
	cp.MainIndex = mainFn.Index
	return cp, nil
}

// MustCompile parses, checks and compiles src, panicking on error. Intended
// for constant sources (tests, application registry).
func MustCompile(name, src string) *Program {
	ast := minic.MustParse(name, src)
	cp, err := Compile(ast)
	if err != nil {
		panic(fmt.Sprintf("bytecode.MustCompile(%s): %v", name, err))
	}
	return cp
}

type loopCtx struct {
	breaks    []int // instruction indices to patch to loop end
	continues []int // instruction indices to patch to loop post/cond
}

type compiler struct {
	prog  *Program
	code  []Instr
	loops []*loopCtx
}

func (c *compiler) emit(in Instr) int {
	c.code = append(c.code, in)
	return len(c.code) - 1
}

func (c *compiler) here() int { return len(c.code) }

func (c *compiler) patch(at, target int) { c.code[at].A = target }

func (c *compiler) compileBlock(b *minic.BlockStmt) error {
	for _, st := range b.Stmts {
		if err := c.compileStmt(st); err != nil {
			return err
		}
	}
	return nil
}

func (c *compiler) compileStmt(st minic.Stmt) error {
	switch s := st.(type) {
	case *minic.BlockStmt:
		return c.compileBlock(s)
	case *minic.VarDeclStmt:
		if s.Init != nil {
			if err := c.compileExpr(s.Init); err != nil {
				return err
			}
		} else if s.Type == minic.TypeString {
			c.emit(Instr{Op: OpConstStr, Str: "", Pos: s.Pos})
		} else {
			c.emit(Instr{Op: OpConstInt, Imm: 0, Pos: s.Pos})
		}
		c.emit(Instr{Op: OpStoreLocal, A: s.Slot, Pos: s.Pos})
		return nil
	case *minic.BufDeclStmt:
		c.emit(Instr{Op: OpNewBuf, A: s.Slot, B: int(s.Cap), Pos: s.Pos})
		return nil
	case *minic.AssignStmt:
		if err := c.compileExpr(s.Value); err != nil {
			return err
		}
		if s.IsGlobal {
			c.emit(Instr{Op: OpStoreGlobal, A: s.Slot, Pos: s.Pos})
		} else {
			c.emit(Instr{Op: OpStoreLocal, A: s.Slot, Pos: s.Pos})
		}
		return nil
	case *minic.IfStmt:
		if err := c.compileExpr(s.Cond); err != nil {
			return err
		}
		jz := c.emit(Instr{Op: OpJumpZ, Pos: s.Pos})
		if err := c.compileBlock(s.Then); err != nil {
			return err
		}
		if s.Else == nil {
			c.patch(jz, c.here())
			return nil
		}
		jend := c.emit(Instr{Op: OpJump, Pos: s.Pos})
		c.patch(jz, c.here())
		if err := c.compileStmt(s.Else); err != nil {
			return err
		}
		c.patch(jend, c.here())
		return nil
	case *minic.WhileStmt:
		top := c.here()
		if err := c.compileExpr(s.Cond); err != nil {
			return err
		}
		jz := c.emit(Instr{Op: OpJumpZ, Pos: s.Pos})
		lc := &loopCtx{}
		c.loops = append(c.loops, lc)
		if err := c.compileBlock(s.Body); err != nil {
			return err
		}
		c.loops = c.loops[:len(c.loops)-1]
		for _, at := range lc.continues {
			c.patch(at, top)
		}
		c.emit(Instr{Op: OpJump, A: top, Pos: s.Pos})
		end := c.here()
		c.patch(jz, end)
		for _, at := range lc.breaks {
			c.patch(at, end)
		}
		return nil
	case *minic.ForStmt:
		if s.Init != nil {
			if err := c.compileStmt(s.Init); err != nil {
				return err
			}
		}
		top := c.here()
		var jz int = -1
		if s.Cond != nil {
			if err := c.compileExpr(s.Cond); err != nil {
				return err
			}
			jz = c.emit(Instr{Op: OpJumpZ, Pos: s.Pos})
		}
		lc := &loopCtx{}
		c.loops = append(c.loops, lc)
		if err := c.compileBlock(s.Body); err != nil {
			return err
		}
		c.loops = c.loops[:len(c.loops)-1]
		post := c.here()
		for _, at := range lc.continues {
			c.patch(at, post)
		}
		if s.Post != nil {
			if err := c.compileStmt(s.Post); err != nil {
				return err
			}
		}
		c.emit(Instr{Op: OpJump, A: top, Pos: s.Pos})
		end := c.here()
		if jz >= 0 {
			c.patch(jz, end)
		}
		for _, at := range lc.breaks {
			c.patch(at, end)
		}
		return nil
	case *minic.ReturnStmt:
		if s.Value != nil {
			if err := c.compileExpr(s.Value); err != nil {
				return err
			}
			c.emit(Instr{Op: OpReturn, A: 1, Pos: s.Pos})
		} else {
			c.emit(Instr{Op: OpReturn, A: 0, Pos: s.Pos})
		}
		return nil
	case *minic.BreakStmt:
		if len(c.loops) == 0 {
			return fmt.Errorf("bytecode: break outside loop at %s", s.Pos)
		}
		lc := c.loops[len(c.loops)-1]
		lc.breaks = append(lc.breaks, c.emit(Instr{Op: OpJump, Pos: s.Pos}))
		return nil
	case *minic.ContinueStmt:
		if len(c.loops) == 0 {
			return fmt.Errorf("bytecode: continue outside loop at %s", s.Pos)
		}
		lc := c.loops[len(c.loops)-1]
		lc.continues = append(lc.continues, c.emit(Instr{Op: OpJump, Pos: s.Pos}))
		return nil
	case *minic.ExprStmt:
		if err := c.compileExpr(s.X); err != nil {
			return err
		}
		if s.X.ResultType() != minic.TypeVoid {
			c.emit(Instr{Op: OpPop, Pos: s.Pos})
		}
		return nil
	default:
		return fmt.Errorf("bytecode: unknown statement %T", st)
	}
}

func (c *compiler) compileExpr(e minic.Expr) error {
	switch x := e.(type) {
	case *minic.IntLit:
		c.emit(Instr{Op: OpConstInt, Imm: x.Value, Pos: x.Pos})
		return nil
	case *minic.StringLit:
		c.emit(Instr{Op: OpConstStr, Str: x.Value, Pos: x.Pos})
		return nil
	case *minic.Ident:
		if x.IsGlobal {
			c.emit(Instr{Op: OpLoadGlobal, A: x.Slot, Pos: x.Pos})
		} else {
			c.emit(Instr{Op: OpLoadLocal, A: x.Slot, Pos: x.Pos})
		}
		return nil
	case *minic.UnaryExpr:
		if err := c.compileExpr(x.X); err != nil {
			return err
		}
		if x.Op == minic.TokenMinus {
			c.emit(Instr{Op: OpNeg, Pos: x.Pos})
		} else {
			c.emit(Instr{Op: OpNot, Pos: x.Pos})
		}
		return nil
	case *minic.BinExpr:
		return c.compileBin(x)
	case *minic.CallExpr:
		for _, arg := range x.Args {
			if err := c.compileExpr(arg); err != nil {
				return err
			}
		}
		if x.Builtin != minic.BuiltinNone {
			c.emit(Instr{Op: OpBuiltin, A: int(x.Builtin), B: len(x.Args), Pos: x.Pos})
		} else {
			// Function indices are assigned before any body compiles, so
			// forward references resolve here.
			c.emit(Instr{Op: OpCall, A: c.prog.byName[x.Name].Index, B: len(x.Args), Pos: x.Pos})
		}
		return nil
	default:
		return fmt.Errorf("bytecode: unknown expression %T", e)
	}
}

func (c *compiler) compileBin(x *minic.BinExpr) error {
	switch x.Op {
	case minic.OpAnd:
		// a && b  =>  a? (b? 1 : 0) : 0, with explicit branching so the
		// symbolic executor forks exactly as C/KLEE would.
		if err := c.compileExpr(x.L); err != nil {
			return err
		}
		jz1 := c.emit(Instr{Op: OpJumpZ, Pos: x.Pos})
		if err := c.compileExpr(x.R); err != nil {
			return err
		}
		jz2 := c.emit(Instr{Op: OpJumpZ, Pos: x.Pos})
		c.emit(Instr{Op: OpConstInt, Imm: 1, Pos: x.Pos})
		jend := c.emit(Instr{Op: OpJump, Pos: x.Pos})
		fls := c.here()
		c.patch(jz1, fls)
		c.patch(jz2, fls)
		c.emit(Instr{Op: OpConstInt, Imm: 0, Pos: x.Pos})
		c.patch(jend, c.here())
		return nil
	case minic.OpOr:
		if err := c.compileExpr(x.L); err != nil {
			return err
		}
		jnz1 := c.emit(Instr{Op: OpJumpNZ, Pos: x.Pos})
		if err := c.compileExpr(x.R); err != nil {
			return err
		}
		jnz2 := c.emit(Instr{Op: OpJumpNZ, Pos: x.Pos})
		c.emit(Instr{Op: OpConstInt, Imm: 0, Pos: x.Pos})
		jend := c.emit(Instr{Op: OpJump, Pos: x.Pos})
		tru := c.here()
		c.patch(jnz1, tru)
		c.patch(jnz2, tru)
		c.emit(Instr{Op: OpConstInt, Imm: 1, Pos: x.Pos})
		c.patch(jend, c.here())
		return nil
	default:
		if err := c.compileExpr(x.L); err != nil {
			return err
		}
		if err := c.compileExpr(x.R); err != nil {
			return err
		}
		c.emit(Instr{Op: OpBin, A: int(x.Op), Pos: x.Pos})
		return nil
	}
}

// Disassemble renders a function's code for debugging.
func Disassemble(fn *Fn) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s (%d params, %d locals)\n", fn.Name, len(fn.ParamNames), fn.NumLocals)
	for i, in := range fn.Code {
		fmt.Fprintf(&sb, "  %4d  %-8s", i, in.Op)
		switch in.Op {
		case OpConstInt:
			fmt.Fprintf(&sb, " %d", in.Imm)
		case OpConstStr:
			fmt.Fprintf(&sb, " %q", in.Str)
		case OpLoadLocal, OpStoreLocal, OpLoadGlobal, OpStoreGlobal:
			fmt.Fprintf(&sb, " %d", in.A)
		case OpNewBuf:
			fmt.Fprintf(&sb, " slot=%d cap=%d", in.A, in.B)
		case OpBin:
			fmt.Fprintf(&sb, " %s", minic.BinOp(in.A))
		case OpJump, OpJumpZ, OpJumpNZ:
			fmt.Fprintf(&sb, " ->%d", in.A)
		case OpCall:
			fmt.Fprintf(&sb, " fn=%d nargs=%d", in.A, in.B)
		case OpBuiltin:
			fmt.Fprintf(&sb, " %s nargs=%d", minic.BuiltinName(minic.Builtin(in.A)), in.B)
		case OpReturn:
			fmt.Fprintf(&sb, " hasval=%d", in.A)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// DisassembleProgram renders every function in the program.
func DisassembleProgram(p *Program) string {
	var sb strings.Builder
	for _, fn := range p.Funcs {
		sb.WriteString(Disassemble(fn))
		sb.WriteByte('\n')
	}
	return sb.String()
}
