package bytecode

import (
	"strings"
	"testing"

	"repro/internal/minic"
)

func compileSrc(t *testing.T, src string) *Program {
	t.Helper()
	ast, err := minic.ParseAndCheck(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := Compile(ast)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

func TestCompileMinimal(t *testing.T) {
	prog := compileSrc(t, `func main() int { return 7; }`)
	if prog.Fn("main") == nil {
		t.Fatal("no main")
	}
	if prog.Fn(InitFuncName) == nil {
		t.Fatal("no $init")
	}
	main := prog.Funcs[prog.MainIndex]
	if main.Name != "main" {
		t.Errorf("MainIndex points at %q", main.Name)
	}
	// return 7: const.i 7; ret 1.
	if main.Code[0].Op != OpConstInt || main.Code[0].Imm != 7 {
		t.Errorf("code[0] = %+v", main.Code[0])
	}
	if main.Code[1].Op != OpReturn || main.Code[1].A != 1 {
		t.Errorf("code[1] = %+v", main.Code[1])
	}
}

func TestCompileGlobalsInit(t *testing.T) {
	prog := compileSrc(t, `
global int a = 5;
global string s = "x";
global int zero;
func main() int { return a; }`)
	init := prog.Funcs[prog.InitIndex]
	stores := 0
	for _, in := range init.Code {
		if in.Op == OpStoreGlobal {
			stores++
		}
	}
	if stores != 2 {
		t.Errorf("init stores = %d, want 2 (zero-valued global has no store)", stores)
	}
	if prog.GlobalIndex("s") != 1 || prog.GlobalIndex("missing") != -1 {
		t.Errorf("GlobalIndex wrong")
	}
}

func TestCompileImplicitReturns(t *testing.T) {
	prog := compileSrc(t, `
func v() void { print(1); }
func i() int { print(1); }
func s() string { print(1); }
func main() int { v(); i(); s(); return 0; }`)
	last := func(name string) []Instr {
		code := prog.Fn(name).Code
		return code[len(code)-2:]
	}
	if code := last("v"); code[1].Op != OpReturn || code[1].A != 0 {
		t.Errorf("void implicit return: %+v", code)
	}
	if code := last("i"); code[0].Op != OpConstInt || code[1].A != 1 {
		t.Errorf("int implicit return: %+v", code)
	}
	if code := last("s"); code[0].Op != OpConstStr || code[1].A != 1 {
		t.Errorf("string implicit return: %+v", code)
	}
}

func TestCompileBranchTargets(t *testing.T) {
	prog := compileSrc(t, `
func main() int {
  int x = 1;
  if (x > 0) { x = 2; } else { x = 3; }
  while (x < 10) { x = x + 1; }
  return x;
}`)
	main := prog.Fn("main")
	// All jump targets must be within code bounds.
	for i, in := range main.Code {
		switch in.Op {
		case OpJump, OpJumpZ, OpJumpNZ:
			if in.A < 0 || in.A > len(main.Code) {
				t.Errorf("instr %d: jump target %d out of range", i, in.A)
			}
		}
	}
}

func TestCompileBreakContinue(t *testing.T) {
	prog := compileSrc(t, `
func main() int {
  int s = 0;
  for (int i = 0; i < 10; i = i + 1) {
    if (i == 3) { continue; }
    if (i == 7) { break; }
    s = s + i;
  }
  return s;
}`)
	// Verified semantically by the interpreter tests; here just ensure no
	// unpatched (zero-target-into-self) jumps that would loop forever on
	// instruction 0.
	main := prog.Fn("main")
	for i, in := range main.Code {
		if (in.Op == OpJump || in.Op == OpJumpZ || in.Op == OpJumpNZ) && in.A == i {
			t.Errorf("instr %d jumps to itself", i)
		}
	}
}

func TestCompileForwardCall(t *testing.T) {
	prog := compileSrc(t, `
func caller() int { return callee(); }
func callee() int { return 42; }
func main() int { return caller(); }`)
	caller := prog.Fn("caller")
	for _, in := range caller.Code {
		if in.Op == OpCall {
			if prog.Funcs[in.A].Name != "callee" {
				t.Errorf("forward call resolved to %q", prog.Funcs[in.A].Name)
			}
			return
		}
	}
	t.Fatal("no call instruction found")
}

func TestCompileShortCircuitShape(t *testing.T) {
	prog := compileSrc(t, `func main() int { int a = 1; return a > 0 && a < 5; }`)
	main := prog.Fn("main")
	jz := 0
	for _, in := range main.Code {
		if in.Op == OpJumpZ {
			jz++
		}
	}
	if jz < 2 {
		t.Errorf("&& compiled without two JumpZ: %s", Disassemble(main))
	}
}

func TestDisassembleOutput(t *testing.T) {
	prog := compileSrc(t, `
func f(int a) int { buf b[4]; bufwrite(b, 0, a); return bufread(b, 0); }
func main() int { return f('x'); }`)
	out := DisassembleProgram(prog)
	for _, want := range []string{"func f", "func main", "newbuf", "bufwrite", "call", "ret"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
}

func TestParamMetadata(t *testing.T) {
	prog := compileSrc(t, `func f(int n, string s, buf b) void { return; } func main() int { return 0; }`)
	f := prog.Fn("f")
	if len(f.ParamNames) != 3 || f.ParamNames[1] != "s" {
		t.Errorf("param names = %v", f.ParamNames)
	}
	if f.ParamTypes[0] != minic.TypeInt || f.ParamTypes[1] != minic.TypeString || f.ParamTypes[2] != minic.TypeBuf {
		t.Errorf("param types = %v", f.ParamTypes)
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCompile did not panic on bad source")
		}
	}()
	MustCompile("bad", "this is not minic")
}
