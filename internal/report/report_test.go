package report

import (
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/workload"
)

func pipelineReport(t *testing.T) *core.Report {
	t.Helper()
	app, err := apps.Get("polymorph")
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := workload.BuildCorpus(app, workload.Options{SampleRate: 0.3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.Run(app.Program(), corpus, core.Config{Spec: app.Spec})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestHTMLReport(t *testing.T) {
	rep := pipelineReport(t)
	html, err := HTML(rep, "2026-07-05 12:00")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"<!DOCTYPE html>",
		"StatSym report — polymorph",
		"Vulnerable path found",
		"convert_fileName",
		"Top predicates",
		"Candidate paths",
		"Exploration attempts",
		"Witness input",
		"2026-07-05 12:00",
	} {
		if !strings.Contains(html, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// html/template escaping: no raw angle brackets from witness bytes
	// should break the document structure (spot check: balanced tags).
	if strings.Count(html, "<table>") != strings.Count(html, "</table>") {
		t.Error("unbalanced tables")
	}
	if strings.Count(html, "<h2") < 4 {
		t.Error("missing sections")
	}
}

func TestBuildModel(t *testing.T) {
	rep := pipelineReport(t)
	m := Build(rep, "now")
	if !m.Found {
		t.Fatal("model not marked found")
	}
	if m.Program != "polymorph" || m.Runs != 200 {
		t.Errorf("header: %+v", m)
	}
	if len(m.Predicates) == 0 || len(m.Skeleton) == 0 || len(m.Candidates) == 0 {
		t.Error("empty sections")
	}
	if m.VulnFunc != "convert_fileName" {
		t.Errorf("vuln func = %s", m.VulnFunc)
	}
	if len(m.Path) == 0 || len(m.Constraints) == 0 {
		t.Error("vulnerable path details missing")
	}
	if m.CandidateUsed < 1 {
		t.Errorf("candidate used = %d", m.CandidateUsed)
	}
}

func TestSummarizeTruncation(t *testing.T) {
	long := strings.Repeat("x", 200)
	s := summarize(long)
	if !strings.Contains(s, "200 bytes") || len(s) > 80 {
		t.Errorf("summarize = %q", s)
	}
	if summarize("short") != "short" {
		t.Error("short strings should pass through")
	}
}
