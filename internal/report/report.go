// Package report renders a StatSym pipeline run as a self-contained HTML
// document: corpus statistics, ranked predicates, the transition skeleton
// and candidate paths, per-candidate exploration outcomes, and the
// verified vulnerable path with its constraints and witness. The artifact
// is what an engineer would attach to a bug ticket.
package report

import (
	"fmt"
	"html/template"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/symexec"
)

// Model is the template input assembled from a pipeline report.
type Model struct {
	Program     string
	GeneratedAt string

	Runs, Locations, Variables int
	LogKB                      int
	StatTime, SymTime          string

	// Phases is the per-phase wall-time breakdown (monitor / statistical
	// analysis / symbolic execution); the monitor row is present only when
	// the caller measured collection (reports built from a loaded corpus
	// have no monitor phase).
	Phases []PhaseRow

	// Solver totals across every attempt, with the constraint-cache hit
	// rate (empty when no solver query ran).
	SolverTime string
	CacheHits  int
	CacheRate  string

	Predicates []PredicateRow
	Skeleton   []string
	Candidates []CandidateRow
	Attempts   []AttemptRow

	// Metrics is the flattened registry snapshot, present only when the
	// run was traced with -metrics (WriteHTMLWithMetrics).
	Metrics []MetricRow

	Found         bool
	VulnKind      string
	VulnFunc      string
	VulnPos       string
	Path          []string
	Constraints   []string
	WitnessInts   map[string]int64
	WitnessStrs   map[string]string
	WitnessEnv    map[string]string
	WitnessArgs   []string
	CandidateUsed int
	TotalPaths    int
}

// PredicateRow is one ranked predicate.
type PredicateRow struct {
	Rank     int
	Text     string
	Location string
	Score    string
}

// CandidateRow is one candidate path.
type CandidateRow struct {
	Rank    int
	Len     int
	Detours int
	Score   string
	Nodes   string
}

// AttemptRow is one guided exploration attempt.
type AttemptRow struct {
	Index        int
	Status       string
	Paths        int
	Steps        int64
	SolverChecks int
	CacheHits    int
	CacheMisses  int
	// FastPaths is the number of queries answered by the cache's
	// UNSAT-subset / SAT-model-reuse shortcuts (a subset of the misses).
	FastPaths  int
	SolverTime string
	Elapsed    string
}

// PhaseRow is one pipeline phase's wall time.
type PhaseRow struct {
	Phase string
	Time  string
}

// MetricRow is one registry entry from a traced run.
type MetricRow struct {
	Name  string
	Value int64
}

// Build assembles the template model from a pipeline report. now is
// rendered verbatim (callers pass time.Now().Format(...) so tests can pin
// it).
func Build(rep *core.Report, now string) *Model {
	m := &Model{
		Program:     rep.Program,
		GeneratedAt: now,
		Runs:        rep.Runs,
		Locations:   rep.Locations,
		Variables:   rep.Variables,
		LogKB:       rep.LogBytes / 1024,
		StatTime:    rep.StatTime.Round(time.Microsecond).String(),
		SymTime:     rep.SymTime.Round(time.Microsecond).String(),
	}
	if rep.MonTime > 0 {
		m.Phases = append(m.Phases, PhaseRow{"log collection (monitor)", rep.MonTime.Round(time.Microsecond).String()})
	}
	m.Phases = append(m.Phases,
		PhaseRow{"statistical analysis", m.StatTime},
		PhaseRow{"symbolic execution", m.SymTime})
	if queries := rep.CacheHits + rep.CacheMisses; queries > 0 {
		m.SolverTime = rep.SolverTime.Round(time.Microsecond).String()
		m.CacheHits = rep.CacheHits
		m.CacheRate = fmt.Sprintf("%.1f%%", 100*float64(rep.CacheHits)/float64(queries))
		m.Phases = append(m.Phases, PhaseRow{"└ constraint solving", m.SolverTime})
	}
	for i, p := range rep.Analysis.Top(15) {
		m.Predicates = append(m.Predicates, PredicateRow{
			Rank:     i + 1,
			Text:     p.String(),
			Location: p.Loc.String(),
			Score:    fmt.Sprintf("%.3f", p.Score),
		})
	}
	if rep.PathRes != nil {
		for _, l := range rep.PathRes.Skeleton {
			m.Skeleton = append(m.Skeleton, l.String())
		}
		for i, cand := range rep.PathRes.Candidates {
			m.Candidates = append(m.Candidates, CandidateRow{
				Rank:    i + 1,
				Len:     cand.Len(),
				Detours: cand.Detours,
				Score:   fmt.Sprintf("%.3f", cand.AvgScore),
				Nodes:   cand.String(),
			})
		}
	}
	for _, a := range rep.Candidates {
		status := "no vulnerability"
		switch {
		case a.Found:
			status = "vulnerable path found"
		case a.Cancelled:
			status = "cancelled"
		case a.Infeasible:
			status = "infeasible / abandoned"
		}
		m.Attempts = append(m.Attempts, AttemptRow{
			Index:        a.Index,
			Status:       status,
			Paths:        a.Paths,
			Steps:        a.Steps,
			SolverChecks: a.SolverChecks,
			CacheHits:    a.CacheHits,
			CacheMisses:  a.CacheMisses,
			FastPaths:    a.CacheFastSat + a.CacheFastUnsat,
			SolverTime:   a.SolverTime.Round(time.Microsecond).String(),
			Elapsed:      a.Elapsed.Round(time.Microsecond).String(),
		})
	}
	if rep.Found() {
		m.fillVuln(rep.Vuln)
		m.CandidateUsed = rep.CandidateUsed
		m.TotalPaths = rep.TotalPaths
	}
	return m
}

func (m *Model) fillVuln(v *symexec.Vulnerability) {
	m.Found = true
	m.VulnKind = v.Kind.String()
	m.VulnFunc = v.Func
	m.VulnPos = v.Pos.String()
	for _, loc := range v.Path {
		m.Path = append(m.Path, loc.String())
	}
	limit := len(v.Constraints)
	if limit > 40 {
		limit = 40
	}
	for _, c := range v.Constraints[:limit] {
		m.Constraints = append(m.Constraints, c.String(nil))
	}
	if v.Witness != nil {
		m.WitnessInts = v.Witness.Ints
		m.WitnessStrs = map[string]string{}
		for k, s := range v.Witness.Strs {
			m.WitnessStrs[k] = summarize(s)
		}
		m.WitnessEnv = map[string]string{}
		for k, s := range v.Witness.Env {
			m.WitnessEnv[k] = summarize(s)
		}
		for _, a := range v.Witness.Args {
			m.WitnessArgs = append(m.WitnessArgs, summarize(a))
		}
	}
}

func summarize(s string) string {
	if len(s) <= 64 {
		return s
	}
	return fmt.Sprintf("%s… (%d bytes)", s[:48], len(s))
}

var page = template.Must(template.New("report").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>StatSym report — {{.Program}}</title>
<style>
 body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 70rem; color: #1a1a1a; }
 h1 { border-bottom: 3px solid #b00; padding-bottom: .3rem; }
 h2 { margin-top: 2rem; border-bottom: 1px solid #ccc; }
 table { border-collapse: collapse; width: 100%; font-size: .9rem; }
 th, td { border: 1px solid #ddd; padding: .35rem .6rem; text-align: left; }
 th { background: #f4f4f4; }
 code, .mono { font-family: ui-monospace, monospace; font-size: .85rem; }
 .found { color: #b00; font-weight: 700; }
 .chip { background: #eee; border-radius: 4px; padding: 0 .4rem; margin-right: .3rem; }
 ol.path li { font-family: ui-monospace, monospace; font-size: .85rem; }
</style>
</head>
<body>
<h1>StatSym report — {{.Program}}</h1>
<p>Generated {{.GeneratedAt}}.
<span class="chip">{{.Runs}} runs</span>
<span class="chip">{{.Locations}} locations</span>
<span class="chip">{{.Variables}} variables</span>
<span class="chip">{{.LogKB}} KB logs</span>
<span class="chip">statistical analysis {{.StatTime}}</span>
<span class="chip">symbolic execution {{.SymTime}}</span>
{{if .CacheRate}}<span class="chip">solver cache {{.CacheRate}}</span>{{end}}
</p>

<h2>Phase timing</h2>
<table><tr><th>phase</th><th>wall time</th></tr>
{{range .Phases}}<tr><td>{{.Phase}}</td><td class="mono">{{.Time}}</td></tr>{{end}}
</table>

{{if .Found}}
<h2 class="found">Vulnerable path found: {{.VulnKind}} in {{.VulnFunc}} (at {{.VulnPos}})</h2>
<p>Verified with candidate path {{.CandidateUsed}} after exploring {{.TotalPaths}} paths.</p>
<h3>Path</h3>
<ol class="path">{{range .Path}}<li>{{.}}</li>{{end}}</ol>
<h3>Path constraints</h3>
<p class="mono">{{range .Constraints}}{{.}}<br>{{end}}</p>
<h3>Witness input</h3>
<table><tr><th>channel</th><th>value</th></tr>
{{range $k, $v := .WitnessInts}}<tr><td>int {{$k}}</td><td class="mono">{{$v}}</td></tr>{{end}}
{{range $k, $v := .WitnessStrs}}<tr><td>string {{$k}}</td><td class="mono">{{$v}}</td></tr>{{end}}
{{range $k, $v := .WitnessEnv}}<tr><td>env {{$k}}</td><td class="mono">{{$v}}</td></tr>{{end}}
{{if .WitnessArgs}}<tr><td>argv</td><td class="mono">{{range .WitnessArgs}}{{.}} {{end}}</td></tr>{{end}}
</table>
{{else}}
<h2>No vulnerable path verified</h2>
{{end}}

<h2>Top predicates</h2>
<table><tr><th>#</th><th>predicate</th><th>location</th><th>score</th></tr>
{{range .Predicates}}<tr><td>{{.Rank}}</td><td class="mono">{{.Text}}</td><td class="mono">{{.Location}}</td><td>{{.Score}}</td></tr>{{end}}
</table>

<h2>Skeleton</h2>
<ol class="path">{{range .Skeleton}}<li>{{.}}</li>{{end}}</ol>

<h2>Candidate paths</h2>
<table><tr><th>#</th><th>nodes</th><th>detours</th><th>avg score</th><th>path</th></tr>
{{range .Candidates}}<tr><td>{{.Rank}}</td><td>{{.Len}}</td><td>{{.Detours}}</td><td>{{.Score}}</td><td class="mono">{{.Nodes}}</td></tr>{{end}}
</table>

<h2>Exploration attempts</h2>
<table><tr><th>candidate</th><th>status</th><th>paths</th><th>steps</th><th>solver checks</th><th>cache hits</th><th>cache misses</th><th>fast paths</th><th>solver time</th><th>time</th></tr>
{{range .Attempts}}<tr><td>{{.Index}}</td><td>{{.Status}}</td><td>{{.Paths}}</td><td>{{.Steps}}</td><td>{{.SolverChecks}}</td><td>{{.CacheHits}}</td><td>{{.CacheMisses}}</td><td>{{.FastPaths}}</td><td>{{.SolverTime}}</td><td>{{.Elapsed}}</td></tr>{{end}}
</table>

{{if .Metrics}}
<h2>Metrics</h2>
<table><tr><th>metric</th><th>value</th></tr>
{{range .Metrics}}<tr><td class="mono">{{.Name}}</td><td class="mono">{{.Value}}</td></tr>{{end}}
</table>
{{end}}
</body>
</html>
`))

// WriteHTML renders the pipeline report to w.
func WriteHTML(w io.Writer, rep *core.Report, now string) error {
	return page.Execute(w, Build(rep, now))
}

// WriteHTMLWithMetrics renders the pipeline report plus a flattened
// metrics-registry snapshot (obs.Registry.Snapshot) as an extra section,
// sorted by metric name. A nil or empty snapshot is the same as WriteHTML.
func WriteHTMLWithMetrics(w io.Writer, rep *core.Report, now string, snap map[string]int64) error {
	m := Build(rep, now)
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m.Metrics = append(m.Metrics, MetricRow{Name: name, Value: snap[name]})
	}
	return page.Execute(w, m)
}

// HTML renders to a string (convenience for tests and callers).
func HTML(rep *core.Report, now string) (string, error) {
	var sb strings.Builder
	if err := WriteHTML(&sb, rep, now); err != nil {
		return "", err
	}
	return sb.String(), nil
}
