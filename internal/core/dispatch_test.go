package core

import (
	"bufio"
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/dispatch"
	"repro/internal/symexec/snapshot"
	"repro/internal/trace"
	"repro/internal/workload"
)

// dispatchApps is the five-app differential surface: every evaluation
// workload the digest invariant is pinned on.
var dispatchApps = []string{"polymorph", "ctree", "thttpd", "grep", "msgtool"}

// startCoreWorker serves real attempt units (NewDispatchRunner) on a unix
// socket, exactly like `symexec -serve-worker` does in its own process.
func startCoreWorker(t *testing.T, wc WorkerConfig) string {
	t.Helper()
	addr := filepath.Join(t.TempDir(), "w.sock")
	l, err := dispatch.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	go dispatch.Serve(l, NewDispatchRunner(wc))
	t.Cleanup(func() { l.Close() })
	return addr
}

func dispatchCorpus(t *testing.T, name string) (*apps.App, *trace.Corpus) {
	t.Helper()
	app, err := apps.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := workload.BuildCorpus(app, workload.Options{SampleRate: 0.3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return app, corpus
}

// requireSameOutcomes compares two reports field-for-field the way the
// parallel determinism test does: everything must match except the
// wall-clock fields (Elapsed, SolverTime) and the dispatch telemetry.
func requireSameOutcomes(t *testing.T, label string, ref, got *Report) {
	t.Helper()
	if rd, gd := DetectionDigest(ref), DetectionDigest(got); rd != gd {
		t.Errorf("%s: detection digest diverged:\n--- reference ---\n%s--- %s ---\n%s", label, rd, label, gd)
	}
	if got.TotalPaths != ref.TotalPaths || got.TotalSteps != ref.TotalSteps {
		t.Errorf("%s: totals diverged: reference (%d paths, %d steps), got (%d paths, %d steps)",
			label, ref.TotalPaths, ref.TotalSteps, got.TotalPaths, got.TotalSteps)
	}
	if len(got.Candidates) != len(ref.Candidates) {
		t.Fatalf("%s: attempted candidates: reference %d, got %d", label, len(ref.Candidates), len(got.Candidates))
	}
	for i := range ref.Candidates {
		r, g := ref.Candidates[i], got.Candidates[i]
		r.Elapsed, g.Elapsed = 0, 0
		r.SolverTime, g.SolverTime = 0, 0
		if r != g {
			t.Errorf("%s: candidate %d outcome diverged:\n  reference %+v\n  got       %+v", label, i+1, r, g)
		}
	}
}

// TestDispatchDifferential pins the tentpole invariant on all five
// evaluation apps: the detection digest (and every deterministic outcome
// counter) is byte-identical whether candidates are verified by the
// sequential loop, a local-only dispatch pool, one or two real worker
// processes, or a mixed topology with local parallelism — and at least one
// unit is actually stolen by a worker across the sweep.
func TestDispatchDifferential(t *testing.T) {
	totalRemote := 0
	for _, name := range dispatchApps {
		t.Run(name, func(t *testing.T) {
			app, corpus := dispatchCorpus(t, name)
			base := Config{Spec: app.Spec}
			ref, err := Run(app.Program(), corpus, base)
			if err != nil {
				t.Fatal(err)
			}

			w1 := startCoreWorker(t, WorkerConfig{})
			w2 := startCoreWorker(t, WorkerConfig{})
			topologies := []struct {
				label string
				cfg   func(Config) Config
			}{
				{"dispatch-local-only", func(c Config) Config { c.Dispatch = true; return c }},
				{"dispatch-1-worker", func(c Config) Config { c.Dispatch = true; c.WorkerAddrs = []string{w1}; return c }},
				{"dispatch-2-workers", func(c Config) Config { c.Dispatch = true; c.WorkerAddrs = []string{w1, w2}; return c }},
				{"dispatch-mixed", func(c Config) Config {
					c.Dispatch = true
					c.WorkerAddrs = []string{w1, w2}
					c.Parallel = 2
					return c
				}},
			}
			for _, topo := range topologies {
				got, err := Run(app.Program(), corpus, topo.cfg(base))
				if err != nil {
					t.Fatalf("%s: %v", topo.label, err)
				}
				requireSameOutcomes(t, topo.label, ref, got)
				totalRemote += got.DispatchRemote
			}
		})
	}
	if totalRemote == 0 {
		t.Error("no unit was ever stolen by a worker across the whole differential sweep")
	}
}

// TestDispatchWorkerCrashRecovery kills the worker mid-unit — the
// connection drops after the unit is accepted, as if the process died — and
// requires (a) the unit to be re-dispatched locally, and (b) the detection
// digest to stay byte-identical: a lost worker costs speed, never a
// detection.
func TestDispatchWorkerCrashRecovery(t *testing.T) {
	app, corpus := dispatchCorpus(t, "polymorph")
	base := Config{Spec: app.Spec}
	ref, err := Run(app.Program(), corpus, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.PathRes.Candidates) < 2 {
		t.Fatalf("crash test needs >= 2 candidates to guarantee a steal, got %d", len(ref.PathRes.Candidates))
	}

	// A worker that crashes on every unit: handshake, accept the unit,
	// slam the connection shut without replying.
	addr := filepath.Join(t.TempDir(), "crash.sock")
	l, err := dispatch.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				snapshot.ReadFrame(conn)
				snapshot.WriteFrame(conn, snapshot.FrameHelloAck, []byte(dispatch.Magic))
				snapshot.ReadFrame(conn) // accept the unit, then "die"
			}(conn)
		}
	}()

	cfg := base
	cfg.Dispatch = true
	cfg.WorkerAddrs = []string{addr}
	// The digest must match on every run; the steal itself is guaranteed
	// by the readiness barrier, but a few retries keep the assertion
	// immune to scheduler pathology on loaded single-core hosts.
	redispatched := 0
	for try := 0; try < 5 && redispatched == 0; try++ {
		got, err := Run(app.Program(), corpus, cfg)
		if err != nil {
			t.Fatal(err)
		}
		requireSameOutcomes(t, "crashing-worker", ref, got)
		if got.DispatchRemote != 0 {
			t.Errorf("crashing worker completed %d units", got.DispatchRemote)
		}
		redispatched = got.DispatchRedispatched
	}
	if redispatched < 1 {
		t.Error("no unit was ever re-dispatched locally after the worker crash")
	}
}

// TestDispatchDeadlineRecovery: a hung worker (accepts the unit, never
// replies) must be cut off by UnitDeadline and its unit re-run locally,
// with the digest unchanged.
func TestDispatchDeadlineRecovery(t *testing.T) {
	app, corpus := dispatchCorpus(t, "polymorph")
	base := Config{Spec: app.Spec}
	ref, err := Run(app.Program(), corpus, base)
	if err != nil {
		t.Fatal(err)
	}

	addr := filepath.Join(t.TempDir(), "hung.sock")
	l, err := dispatch.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				snapshot.ReadFrame(conn)
				snapshot.WriteFrame(conn, snapshot.FrameHelloAck, []byte(dispatch.Magic))
				snapshot.ReadFrame(conn)     // accept the unit...
				time.Sleep(30 * time.Second) // ...and hang well past the deadline
			}(conn)
		}
	}()

	cfg := base
	cfg.Dispatch = true
	cfg.WorkerAddrs = []string{addr}
	cfg.UnitDeadline = 200 * time.Millisecond
	got, err := Run(app.Program(), corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireSameOutcomes(t, "hung-worker", ref, got)
	if got.DispatchRemote != 0 {
		t.Errorf("hung worker completed %d units", got.DispatchRemote)
	}
}

// TestAttemptUnitRoundTrip: the attempt unit and result codecs invert.
func TestAttemptUnitRoundTrip(t *testing.T) {
	app, corpus := dispatchCorpus(t, "polymorph")
	cfg := Config{Spec: app.Spec, Tau: 7, MinPredScore: 0.25,
		PerCandidateMaxSteps: 12345, MaxStates: 99, Workers: 3, Scope: "all", Summaries: true}
	rep, err := Run(app.Program(), corpus, Config{Spec: app.Spec})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PathRes.Candidates) == 0 {
		t.Fatal("no candidates")
	}
	cand := rep.PathRes.Candidates[0]
	payload := EncodeAttemptUnit(app.Program(), cand, 3, cfg)
	prog2, cand2, rank, cfg2, err := DecodeAttemptUnit(payload)
	if err != nil {
		t.Fatal(err)
	}
	if rank != 3 || prog2.Name != app.Program().Name {
		t.Fatalf("rank=%d prog=%q", rank, prog2.Name)
	}
	if cfg2.Tau != 7 || cfg2.MinPredScore != 0.25 || cfg2.PerCandidateMaxSteps != 12345 ||
		cfg2.MaxStates != 99 || cfg2.Workers != cfg.effectiveWorkers() ||
		cfg2.Scope != "all" || !cfg2.Summaries {
		t.Fatalf("config diverged: %+v", cfg2)
	}
	if cand2.Len() != cand.Len() {
		t.Fatalf("candidate length %d, want %d", cand2.Len(), cand.Len())
	}

	out := CandidateOutcome{Index: 3, PathLen: 9, Found: true, Paths: 4, Steps: 1000,
		Suspends: 2, Matches: 8, Elapsed: time.Second, SolverChecks: 17, CacheHits: 5,
		CacheMisses: 12, SolverTime: time.Millisecond, SummaryCalls: 1}
	blob := encodeAttemptResult(out, nil)
	out2, vuln, err := decodeAttemptResult(blob)
	if err != nil {
		t.Fatal(err)
	}
	if vuln != nil || out2 != out {
		t.Fatalf("result round trip diverged:\n  in  %+v\n  out %+v", out, out2)
	}
}

// TestDispatchLogWritten: the -dispatch-log JSONL audit trail carries only
// known events and ends with exactly one merge line.
func TestDispatchLogWritten(t *testing.T) {
	app, corpus := dispatchCorpus(t, "polymorph")
	w := startCoreWorker(t, WorkerConfig{})
	logPath := filepath.Join(t.TempDir(), "dispatch.jsonl")
	cfg := Config{Spec: app.Spec, Dispatch: true, WorkerAddrs: []string{w}, DispatchLog: logPath}
	if _, err := Run(app.Program(), corpus, cfg); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	merges, lines := 0, 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		lines++
		var ev DispatchEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		if !KnownDispatchEvents[ev.Event] {
			t.Fatalf("line %d: unknown event %q", lines, ev.Event)
		}
		if ev.T.IsZero() {
			t.Fatalf("line %d: missing timestamp", lines)
		}
		if ev.Event == "merge" {
			merges++
		}
	}
	if lines < 2 {
		t.Fatalf("dispatch log has %d lines, want at least dial+merge", lines)
	}
	if merges != 1 {
		t.Fatalf("dispatch log has %d merge lines, want 1", merges)
	}
}
