package core

import (
	"context"
	"sort"

	"repro/internal/bytecode"
	"repro/internal/trace"
)

// MultiReport is the output of multi-vulnerability discovery (§III-C of
// the paper: "we can isolate different vulnerabilities and use StatSym to
// identify (and eliminate) vulnerable paths one-by-one through an
// iterative process").
type MultiReport struct {
	// Clusters lists the fault clusters in processing order (largest
	// first); Reports holds one pipeline report per cluster.
	Clusters []FaultCluster
	Reports  []*Report
}

// FaultCluster groups the faulty runs attributed to one vulnerability.
// This implementation clusters by the fault signature the monitor records
// (fault kind + faulting function) — the role the paper delegates to bug
// isolation and log clustering techniques [9], [11].
type FaultCluster struct {
	FaultFunc string
	FaultKind string
	Runs      int
}

// Found counts clusters whose vulnerable path was verified.
func (m *MultiReport) Found() int {
	n := 0
	for _, r := range m.Reports {
		if r.Found() {
			n++
		}
	}
	return n
}

// RunMulti discovers multiple vulnerabilities: it partitions the faulty
// runs by fault signature, then runs the StatSym pipeline once per
// cluster, pairing each cluster's faulty logs with the full set of correct
// logs. Clusters are processed in decreasing size.
func RunMulti(prog *bytecode.Program, corpus *trace.Corpus, cfg Config) (*MultiReport, error) {
	return RunMultiContext(context.Background(), prog, corpus, cfg)
}

// RunMultiContext is RunMulti under a context: cancellation stops after
// the in-flight cluster's pipeline winds down, returning the clusters
// processed so far.
func RunMultiContext(ctx context.Context, prog *bytecode.Program, corpus *trace.Corpus, cfg Config) (*MultiReport, error) {
	correct, faulty := corpus.Split()

	type key struct{ fn, kind string }
	clusters := make(map[key][]*trace.Run)
	for _, run := range faulty {
		k := key{fn: run.FaultFunc, kind: run.FaultKind}
		clusters[k] = append(clusters[k], run)
	}
	keys := make([]key, 0, len(clusters))
	for k := range clusters {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if len(clusters[a]) != len(clusters[b]) {
			return len(clusters[a]) > len(clusters[b])
		}
		if a.fn != b.fn {
			return a.fn < b.fn
		}
		return a.kind < b.kind
	})

	out := &MultiReport{}
	for _, k := range keys {
		if ctx.Err() != nil {
			break
		}
		members := clusters[k]
		sub := &trace.Corpus{Program: corpus.Program}
		for _, r := range correct {
			sub.Runs = append(sub.Runs, *r)
		}
		for _, r := range members {
			sub.Runs = append(sub.Runs, *r)
		}
		rep, err := RunContext(ctx, prog, sub, cfg)
		if err != nil {
			return out, err
		}
		out.Clusters = append(out.Clusters, FaultCluster{
			FaultFunc: k.fn,
			FaultKind: k.kind,
			Runs:      len(members),
		})
		out.Reports = append(out.Reports, rep)
	}
	return out, nil
}
