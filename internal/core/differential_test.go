package core

import (
	"sync"
	"testing"

	"repro/internal/apps"
	"repro/internal/workload"
)

// TestSummarizeDifferential pins the compositional differential contract on
// every evaluation workload: with a full-coverage scope policy, summarize
// mode must produce a byte-identical detection digest to full
// interpretation — replacing interpreted calls by memoized summaries (and
// serving them from the shared cache across candidate attempts) changes how
// much work detection takes, never what is detected.
func TestSummarizeDifferential(t *testing.T) {
	for _, name := range []string{"polymorph", "ctree", "thttpd", "grep", "msgtool"} {
		t.Run(name, func(t *testing.T) {
			app, err := apps.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			corpus, err := workload.BuildCorpus(app, workload.Options{SampleRate: 0.3, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			ref, err := Run(app.Program(), corpus, Config{Spec: app.Spec})
			if err != nil {
				t.Fatal(err)
			}
			got, err := Run(app.Program(), corpus, Config{Spec: app.Spec, Summaries: true})
			if err != nil {
				t.Fatal(err)
			}
			if rd, gd := DetectionDigest(ref), DetectionDigest(got); rd != gd {
				t.Errorf("detection digests diverged:\n--- interpret ---\n%s--- summarize ---\n%s", rd, gd)
			}
			// The digest is the contract: same detection, same site, same
			// per-candidate outcomes. The faulting trace itself may differ
			// in intermediate hops (summaries change effort, not findings);
			// witness validity is already enforced by VerifyCandidate's
			// concrete replay.
			if ref.Found() && (got.Vuln == nil || got.Vuln.Witness == nil) {
				t.Error("summarize run found the vuln but carries no witness")
			}
		})
	}
}

// TestScopePolicyDigestStable: a havoc scope that excludes only functions
// irrelevant to the vulnerable path must leave the detection digest intact,
// while an invalid scope spec surfaces as a pipeline error.
func TestScopePolicyInvalidSpec(t *testing.T) {
	app, err := apps.Get("polymorph")
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := workload.BuildCorpus(app, workload.Options{SampleRate: 0.3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(app.Program(), corpus, Config{Spec: app.Spec, Scope: "all,bogusmix"})
	if err == nil {
		t.Fatal("invalid scope spec should fail the pipeline")
	}
}

// TestSummaryCacheSharedRace exercises the shared summary cache from
// concurrent pipeline runs and, within each run, concurrent candidate
// attempts and frontier workers (Parallel×Workers). Run under -race in CI:
// the cache is the only mutable state shared across executors in summarize
// mode.
func TestSummaryCacheSharedRace(t *testing.T) {
	app, err := apps.Get("grep")
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := workload.BuildCorpus(app, workload.Options{SampleRate: 0.3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Run(app.Program(), corpus, Config{Spec: app.Spec})
	if err != nil {
		t.Fatal(err)
	}
	refDigest := DetectionDigest(ref)

	var wg sync.WaitGroup
	digests := make([]string, 4)
	errs := make([]error, 4)
	for i := range digests {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := Config{Spec: app.Spec, Summaries: true, Parallel: 2, Workers: 2}
			rep, err := Run(app.Program(), corpus, cfg)
			if err != nil {
				errs[i] = err
				return
			}
			digests[i] = DetectionDigest(rep)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if digests[i] != refDigest {
			t.Errorf("run %d digest diverged:\n--- interpret ---\n%s--- summarize ---\n%s",
				i, refDigest, digests[i])
		}
	}
}
