package core

import (
	"encoding/binary"
	"encoding/json"
	"hash/fnv"
	"os"
	"path/filepath"

	"repro/internal/corpus"
	"repro/internal/pathid"
	"repro/internal/stats"
	"repro/internal/trace"
)

// The statistical phase — predicate construction and candidate-path
// building — is a pure function of (corpus, path config). When a CacheDir
// is set, its result is memoized next to the solver-cache store and
// replayed on warm runs whose corpus fingerprint and configuration match,
// skipping the derivation entirely. Like the solver cache this is a
// wall-clock-only optimization: a hit replays byte-exact predicates and
// candidates (JSON float encoding round-trips exactly), so the detection
// digest cannot move; any mismatch, corruption, or decode failure falls
// back to recomputing and overwriting the artifact.

// statsCacheName is the memoized-stats artifact, a sibling of the
// solver-cache manifest inside CacheDir.
const statsCacheName = "statscache.json"

const statsCacheVersion = 1

// savedNode flattens a pathid.PathNode for storage: the predicate pointer
// becomes an index into the artifact's predicate list (-1 for none), so
// reloaded candidates share the reloaded *stats.Predicate values exactly
// as built ones share the analysis's.
type savedNode struct {
	Loc  trace.Location `json:"loc"`
	Pred int            `json:"pred"`
}

type savedCandidate struct {
	Nodes    []savedNode `json:"nodes"`
	AvgScore float64     `json:"avgScore"`
	Detours  int         `json:"detours"`
}

type statsCacheArtifact struct {
	Version int    `json:"version"`
	Program string `json:"program"`
	// Corpus is the corpusFingerprint of the runs the stats were derived
	// from; Path is the candidate-construction config verbatim. Both must
	// match exactly for a hit.
	Corpus     uint64           `json:"corpus"`
	Path       pathid.Config    `json:"path"`
	Analysis   *stats.Analysis  `json:"analysis"`
	Skeleton   []trace.Location `json:"skeleton"`
	Detours    []pathid.Detour  `json:"detours"`
	Candidates []savedCandidate `json:"candidates"`
}

// corpusFingerprint hashes the corpus content — program, run annotations,
// every record's location and observations — in one allocation-free linear
// pass (FNV-64a). Field boundaries are length-prefixed so concatenations
// cannot collide structurally.
func corpusFingerprint(c *trace.Corpus) uint64 {
	h := fnv.New64a()
	var buf [binary.MaxVarintLen64]byte
	num := func(v uint64) {
		n := binary.PutUvarint(buf[:], v)
		h.Write(buf[:n])
	}
	str := func(s string) {
		num(uint64(len(s)))
		h.Write([]byte(s))
	}
	str(c.Program)
	num(uint64(len(c.Runs)))
	for i := range c.Runs {
		r := &c.Runs[i]
		num(uint64(r.ID))
		if r.Faulty {
			num(1)
		} else {
			num(0)
		}
		str(r.FaultKind)
		str(r.FaultFunc)
		num(uint64(len(r.Records)))
		for j := range r.Records {
			rec := &r.Records[j]
			str(rec.Loc.Func)
			num(uint64(rec.Loc.Kind))
			num(uint64(len(rec.Obs)))
			for k := range rec.Obs {
				o := &rec.Obs[k]
				str(o.Var)
				num(uint64(o.Class))
				num(uint64(o.Kind))
				num(uint64(o.Int))
				str(o.Str)
			}
		}
	}
	return h.Sum64()
}

// loadStatsCache replays a memoized stats phase if the artifact matches
// (program, corpus fingerprint, path config) exactly. Any failure — no
// file, stale key, corrupt JSON, out-of-range predicate index — is a miss.
// The returned Result carries no Graph: callers that need it (statsym
// -dot) set Config.NeedGraph and bypass the cache.
func loadStatsCache(dir string, fp uint64, program string, pathCfg pathid.Config) (*stats.Analysis, *pathid.Result, bool) {
	blob, err := os.ReadFile(filepath.Join(dir, statsCacheName))
	if err != nil {
		return nil, nil, false
	}
	var art statsCacheArtifact
	if json.Unmarshal(blob, &art) != nil {
		return nil, nil, false
	}
	if art.Version != statsCacheVersion || art.Program != program ||
		art.Corpus != fp || art.Path != pathCfg || art.Analysis == nil {
		return nil, nil, false
	}
	res := &pathid.Result{
		Skeleton: art.Skeleton,
		Detours:  art.Detours,
	}
	for _, sc := range art.Candidates {
		cp := &pathid.CandidatePath{AvgScore: sc.AvgScore, Detours: sc.Detours}
		for _, n := range sc.Nodes {
			node := pathid.PathNode{Loc: n.Loc}
			if n.Pred >= 0 {
				if n.Pred >= len(art.Analysis.Predicates) {
					return nil, nil, false
				}
				node.Pred = art.Analysis.Predicates[n.Pred]
			}
			cp.Nodes = append(cp.Nodes, node)
		}
		res.Candidates = append(res.Candidates, cp)
	}
	return art.Analysis, res, true
}

// saveStatsCache memoizes a freshly derived stats phase, atomically
// (temp+rename) so a crash can only leave the previous artifact or none.
// Best-effort: a save failure costs the next run a recompute, nothing else.
func saveStatsCache(dir string, fp uint64, program string, pathCfg pathid.Config,
	analysis *stats.Analysis, res *pathid.Result) {
	predIdx := make(map[*stats.Predicate]int, len(analysis.Predicates))
	for i, p := range analysis.Predicates {
		predIdx[p] = i
	}
	art := statsCacheArtifact{
		Version:  statsCacheVersion,
		Program:  program,
		Corpus:   fp,
		Path:     pathCfg,
		Analysis: analysis,
		Skeleton: res.Skeleton,
		Detours:  res.Detours,
	}
	for _, cp := range res.Candidates {
		sc := savedCandidate{AvgScore: cp.AvgScore, Detours: cp.Detours}
		for _, n := range cp.Nodes {
			idx := -1
			if n.Pred != nil {
				i, ok := predIdx[n.Pred]
				if !ok {
					// A candidate references a predicate outside the
					// analysis (should not happen): don't persist a
					// partial view.
					return
				}
				idx = i
			}
			sc.Nodes = append(sc.Nodes, savedNode{Loc: n.Loc, Pred: idx})
		}
		art.Candidates = append(art.Candidates, sc)
	}
	blob, err := json.Marshal(&art)
	if err != nil {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	_ = corpus.WriteFileAtomic(dir, statsCacheName, blob)
}
