package core

import (
	"context"
	"fmt"

	"repro/internal/bytecode"
	"repro/internal/corpus"
	"repro/internal/symexec"
	"repro/internal/trace"
)

// JobInputs bundles one analysis request the way a service submits it:
// the compiled program, its symbolic input spec, and exactly one corpus
// source — an in-memory corpus or an on-disk segment store. This is the
// job-shaped entry point the statsymd daemon (internal/service) schedules
// through; it exists so callers assembling jobs from wire specs have one
// function to hand them to instead of re-deriving the RunContext-vs-
// RunStoreContext split.
type JobInputs struct {
	Prog   *bytecode.Program
	Spec   *symexec.InputSpec
	Corpus *trace.Corpus // exactly one of Corpus / Store
	Store  *corpus.Store
}

// RunJob executes the full pipeline for one job under ctx. The config's
// Spec is overridden by the job's; everything else (budgets, parallelism,
// dispatch topology, cache directories) applies as for RunContext. The
// report — and therefore DetectionDigest — is byte-identical to what the
// equivalent direct RunContext/RunStoreContext call produces, which is
// the service differential contract.
func RunJob(ctx context.Context, in JobInputs, cfg Config) (*Report, error) {
	if in.Prog == nil {
		return nil, fmt.Errorf("core: job has no program")
	}
	cfg.Spec = in.Spec
	switch {
	case in.Corpus != nil && in.Store != nil:
		return nil, fmt.Errorf("core: job has both an in-memory corpus and a store")
	case in.Corpus != nil:
		return RunContext(ctx, in.Prog, in.Corpus, cfg)
	case in.Store != nil:
		return RunStoreContext(ctx, in.Prog, in.Store, cfg)
	default:
		return nil, fmt.Errorf("core: job has no corpus")
	}
}
