package core

import (
	"fmt"
	"hash/fnv"
	"strings"
)

// DetectionDigest renders everything the pipeline *detected* as a canonical
// string: whether a vulnerability was found, its site, which candidate
// verified it, and each attempt's outcome. Two runs that detect the same
// things produce byte-identical digests.
//
// This is the comparison surface of the compositional differential mode:
// with a full-coverage scope policy, summarize mode must produce the same
// digest as full interpretation on every app. Effort counters (steps,
// paths, solver queries, wall times) are deliberately excluded — replacing
// interpretation by constraint instantiation changes how much work detection
// takes, never what is detected.
func DetectionDigest(r *Report) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "program=%s found=%v used=%d\n", r.Program, r.Found(), r.CandidateUsed)
	if r.Vuln != nil {
		fmt.Fprintf(&sb, "vuln=%s func=%s pos=%s\n", r.Vuln.Kind, r.Vuln.Func, r.Vuln.Pos)
	}
	for _, c := range r.Candidates {
		fmt.Fprintf(&sb, "cand=%d len=%d label=%s found=%v infeasible=%v\n",
			c.Index, c.PathLen, c.Label(), c.Found, c.Infeasible)
	}
	return sb.String()
}

// DigestToken compresses the report's detection digest to a fixed-width
// printable token (FNV-64a of the canonical string) for one-line CLI
// output and ledger rows; equality of tokens is the cold-vs-warm
// determinism check the CI smoke job greps for.
func DigestToken(r *Report) string {
	h := fnv.New64a()
	h.Write([]byte(DetectionDigest(r)))
	return fmt.Sprintf("%016x", h.Sum64())
}
