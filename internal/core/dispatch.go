package core

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bytecode"
	"repro/internal/dispatch"
	"repro/internal/obs"
	"repro/internal/pathid"
	"repro/internal/solver"
	"repro/internal/solver/persist"
	"repro/internal/summary"
	"repro/internal/symexec"
	"repro/internal/symexec/snapshot"
)

// Distributed candidate verification (the coordinator side of the
// coordinator/worker topology; internal/dispatch is the wire, this file is
// the scheduler).
//
// The unit of distribution is one whole candidate attempt: hermetic by
// construction (VerifyCandidateCtx builds its own executor, solver, and
// guidance over the shipped program), deterministic under step/state
// budgets, and large enough that the wire cost — one program + spec +
// candidate out, one outcome back — is noise against the attempt itself.
// Local slots and remote workers pull ranks from one shared queue, so
// workers steal exactly the attempts the local slots have not claimed;
// outcomes merge through the same rank-order replay as the in-process
// parallel engine (mergeAttempts), which is what makes DetectionDigest
// byte-identical for every topology: zero workers, N workers, or workers
// that crash mid-unit (their units re-run locally).

// attemptUnitVersion versions the FrameAttemptUnit payload.
const attemptUnitVersion = 1

// EncodeAttemptUnit serializes one candidate attempt for a worker: the
// scalar verification knobs, then the program, input spec, and candidate
// path. Workers receive everything the attempt depends on — a worker
// process never loads the corpus or runs the statistical phase.
func EncodeAttemptUnit(prog *bytecode.Program, cand *pathid.CandidatePath, rank int, cfg Config) []byte {
	w := snapshot.NewWriter()
	w.Uvarint(attemptUnitVersion)
	w.Int(rank)
	w.Int(cfg.Tau)
	w.Float(cfg.MinPredScore)
	w.Varint(cfg.PerCandidateMaxSteps)
	w.Int(cfg.MaxStates)
	w.Varint(int64(cfg.PerCandidateTimeout))
	w.Bool(cfg.DisableInter)
	w.Bool(cfg.DisablePredicates)
	// Ship the per-attempt frontier share, not the raw Workers knob: the
	// worker runs one attempt with Parallel=0, so its effectiveWorkers()
	// must land on the same value the coordinator's local slots use —
	// engine choice (sequential vs epoch) is part of determinism.
	w.Int(cfg.effectiveWorkers())
	w.String(cfg.Scope)
	w.Bool(cfg.Summaries)
	snapshot.EncodeProgram(w, prog)
	symexec.EncodeSpec(w, cfg.Spec)
	snapshot.EncodeCandidate(w, cand)
	return w.Bytes()
}

// DecodeAttemptUnit parses a FrameAttemptUnit payload into the attempt's
// program, candidate, rank, and a worker-side Config.
func DecodeAttemptUnit(payload []byte) (*bytecode.Program, *pathid.CandidatePath, int, Config, error) {
	var cfg Config
	r := snapshot.NewReader(payload)
	ver, err := r.Uvarint()
	if err != nil {
		return nil, nil, 0, cfg, err
	}
	if ver != attemptUnitVersion {
		return nil, nil, 0, cfg, fmt.Errorf("core: attempt unit version %d not supported (want %d)", ver, attemptUnitVersion)
	}
	rank, err := r.Int()
	if err != nil {
		return nil, nil, 0, cfg, err
	}
	if cfg.Tau, err = r.Int(); err != nil {
		return nil, nil, 0, cfg, err
	}
	if cfg.MinPredScore, err = r.Float(); err != nil {
		return nil, nil, 0, cfg, err
	}
	if cfg.PerCandidateMaxSteps, err = r.Varint(); err != nil {
		return nil, nil, 0, cfg, err
	}
	if cfg.MaxStates, err = r.Int(); err != nil {
		return nil, nil, 0, cfg, err
	}
	ns, err := r.Varint()
	if err != nil {
		return nil, nil, 0, cfg, err
	}
	cfg.PerCandidateTimeout = time.Duration(ns)
	if cfg.DisableInter, err = r.Bool(); err != nil {
		return nil, nil, 0, cfg, err
	}
	if cfg.DisablePredicates, err = r.Bool(); err != nil {
		return nil, nil, 0, cfg, err
	}
	if cfg.Workers, err = r.Int(); err != nil {
		return nil, nil, 0, cfg, err
	}
	if cfg.Scope, err = r.String(); err != nil {
		return nil, nil, 0, cfg, err
	}
	if cfg.Summaries, err = r.Bool(); err != nil {
		return nil, nil, 0, cfg, err
	}
	prog, err := snapshot.DecodeProgram(r)
	if err != nil {
		return nil, nil, 0, cfg, err
	}
	if cfg.Spec, err = symexec.DecodeSpec(r); err != nil {
		return nil, nil, 0, cfg, err
	}
	cand, err := snapshot.DecodeCandidate(r)
	if err != nil {
		return nil, nil, 0, cfg, err
	}
	return prog, cand, rank, cfg, nil
}

// encodeAttemptResult serializes one attempt's outcome (and vulnerability,
// when verified) as the FrameResult payload.
func encodeAttemptResult(out CandidateOutcome, vuln *symexec.Vulnerability) []byte {
	w := snapshot.NewWriter()
	w.Uvarint(attemptUnitVersion)
	w.Int(out.Index)
	w.Int(out.PathLen)
	w.Bool(out.Found)
	w.Int(out.Paths)
	w.Varint(out.Steps)
	w.Int(out.Suspends)
	w.Int(out.Matches)
	w.Varint(int64(out.Elapsed))
	w.Bool(out.Infeasible)
	w.Bool(out.Cancelled)
	w.Int(out.SolverChecks)
	w.Int(out.CacheHits)
	w.Int(out.CacheMisses)
	w.Int(out.CacheFastSat)
	w.Int(out.CacheFastUnsat)
	w.Varint(int64(out.SolverTime))
	w.Int(out.SummaryCalls)
	w.Int(out.SummaryPaths)
	w.Int(out.HavocCalls)
	w.Int(out.DepthExhausted)
	if vuln != nil {
		w.Bool(true)
		symexec.EncodeVulnerability(w, vuln)
	} else {
		w.Bool(false)
	}
	return w.Bytes()
}

// decodeAttemptResult parses a FrameResult payload back into the outcome.
func decodeAttemptResult(payload []byte) (CandidateOutcome, *symexec.Vulnerability, error) {
	var out CandidateOutcome
	r := snapshot.NewReader(payload)
	ver, err := r.Uvarint()
	if err != nil {
		return out, nil, err
	}
	if ver != attemptUnitVersion {
		return out, nil, fmt.Errorf("core: attempt result version %d not supported (want %d)", ver, attemptUnitVersion)
	}
	var ns int64
	if out.Index, err = r.Int(); err != nil {
		return out, nil, err
	}
	if out.PathLen, err = r.Int(); err != nil {
		return out, nil, err
	}
	if out.Found, err = r.Bool(); err != nil {
		return out, nil, err
	}
	if out.Paths, err = r.Int(); err != nil {
		return out, nil, err
	}
	if out.Steps, err = r.Varint(); err != nil {
		return out, nil, err
	}
	if out.Suspends, err = r.Int(); err != nil {
		return out, nil, err
	}
	if out.Matches, err = r.Int(); err != nil {
		return out, nil, err
	}
	if ns, err = r.Varint(); err != nil {
		return out, nil, err
	}
	out.Elapsed = time.Duration(ns)
	if out.Infeasible, err = r.Bool(); err != nil {
		return out, nil, err
	}
	if out.Cancelled, err = r.Bool(); err != nil {
		return out, nil, err
	}
	if out.SolverChecks, err = r.Int(); err != nil {
		return out, nil, err
	}
	if out.CacheHits, err = r.Int(); err != nil {
		return out, nil, err
	}
	if out.CacheMisses, err = r.Int(); err != nil {
		return out, nil, err
	}
	if out.CacheFastSat, err = r.Int(); err != nil {
		return out, nil, err
	}
	if out.CacheFastUnsat, err = r.Int(); err != nil {
		return out, nil, err
	}
	if ns, err = r.Varint(); err != nil {
		return out, nil, err
	}
	out.SolverTime = time.Duration(ns)
	if out.SummaryCalls, err = r.Int(); err != nil {
		return out, nil, err
	}
	if out.SummaryPaths, err = r.Int(); err != nil {
		return out, nil, err
	}
	if out.HavocCalls, err = r.Int(); err != nil {
		return out, nil, err
	}
	if out.DepthExhausted, err = r.Int(); err != nil {
		return out, nil, err
	}
	hasVuln, err := r.Bool()
	if err != nil {
		return out, nil, err
	}
	var vuln *symexec.Vulnerability
	if hasVuln {
		if vuln, err = symexec.DecodeVulnerability(r); err != nil {
			return out, nil, err
		}
	}
	return out, vuln, nil
}

// WorkerConfig tunes one worker process's unit execution.
type WorkerConfig struct {
	// CacheDir attaches the worker to the same persistent solver-cache
	// store the coordinator uses (wall-clock only, like everywhere else:
	// each loaded verdict is re-verified before use).
	CacheDir string
	// Obs receives the worker's spans and metrics (nil: silent).
	Obs *obs.Obs
}

// NewDispatchRunner returns the worker-side unit executor for
// dispatch.Serve: FrameAttemptUnit payloads run one candidate attempt,
// FrameStateUnit payloads resume and drain one frontier shard. Each unit
// is hermetic — decode, execute, encode — so a malformed unit fails that
// unit only, never the worker.
func NewDispatchRunner(wc WorkerConfig) dispatch.Runner {
	return func(typ byte, payload []byte) ([]byte, error) {
		switch typ {
		case snapshot.FrameAttemptUnit:
			return runAttemptUnit(wc, payload)
		case snapshot.FrameStateUnit:
			return runStateUnitPayload(payload)
		default:
			return nil, fmt.Errorf("core: unknown unit frame %#x", typ)
		}
	}
}

// runAttemptUnit executes one shipped candidate attempt.
func runAttemptUnit(wc WorkerConfig, payload []byte) ([]byte, error) {
	prog, cand, rank, cfg, err := DecodeAttemptUnit(payload)
	if err != nil {
		return nil, fmt.Errorf("decode attempt unit: %w", err)
	}
	ctx := obs.NewContext(context.Background(), wc.Obs)
	if wc.CacheDir != "" {
		cfg.sharedCache = solver.NewSharedCache(0)
		cfg.originHashes = summary.HashProgram(prog)
		session, err := persist.Attach(persist.Config{
			Dir:     wc.CacheDir,
			Program: prog,
			Shared:  cfg.sharedCache,
			Obs:     wc.Obs,
		})
		if err != nil {
			// The persistent cache is a wall-clock accelerator; a worker
			// that cannot attach it still answers correctly.
			obs.Warn(ctx, "worker cache attach failed", obs.A("error", err.Error()))
			cfg.sharedCache = nil
			cfg.originHashes = nil
		} else {
			defer func() {
				if cerr := session.Close(); cerr != nil {
					obs.Warn(ctx, "worker cache seal failed", obs.A("error", cerr.Error()))
				}
			}()
		}
	}
	out, vuln := VerifyCandidateCtx(ctx, prog, cand, rank, cfg)
	return encodeAttemptResult(out, vuln), nil
}

// runStateUnitPayload resumes one frontier shard and drains it.
func runStateUnitPayload(payload []byte) ([]byte, error) {
	u, err := symexec.DecodeStateUnit(payload)
	if err != nil {
		return nil, fmt.Errorf("decode state unit: %w", err)
	}
	res, err := symexec.RunStateUnit(context.Background(), u)
	if err != nil {
		return nil, err
	}
	return symexec.EncodeStateResult(res), nil
}

// DispatchEvent is one line of the -dispatch-log JSONL audit trail.
type DispatchEvent struct {
	T      time.Time `json:"t"`
	Event  string    `json:"event"`
	Rank   int       `json:"rank,omitempty"`
	Worker string    `json:"worker,omitempty"`
	Err    string    `json:"err,omitempty"`
	// Merge-event summary: the winning rank and the remote/local/
	// redispatched unit counts.
	Winner int `json:"winner,omitempty"`
	Remote int `json:"remote,omitempty"`
	Local  int `json:"local,omitempty"`
	Redisp int `json:"redispatched,omitempty"`
}

// KnownDispatchEvents enumerates the legal Event values (tracecheck
// validates log lines against this set).
var KnownDispatchEvents = map[string]bool{
	"dial":        true,
	"dial_failed": true,
	"steal":       true,
	"local":       true,
	"redispatch":  true,
	"worker_dead": true,
	"merge":       true,
}

// dispatchLog mirrors every scheduling event to the JSONL file (when
// configured) and the obs sink's "dispatch" category (when observing).
type dispatchLog struct {
	mu  sync.Mutex
	f   *os.File
	enc *json.Encoder
	o   *obs.Obs
}

func openDispatchLog(path string, o *obs.Obs) *dispatchLog {
	l := &dispatchLog{o: o}
	if path == "" {
		return l
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		obs.Warn(obs.NewContext(context.Background(), o), "dispatch log open failed",
			obs.A("path", path), obs.A("error", err.Error()))
		return l
	}
	l.f = f
	l.enc = json.NewEncoder(f)
	return l
}

func (l *dispatchLog) note(ev DispatchEvent) {
	ev.T = time.Now()
	l.mu.Lock()
	if l.enc != nil {
		l.enc.Encode(ev) // an unwritable audit log never fails the run
	}
	l.mu.Unlock()
	if l.o != nil {
		attrs := map[string]any{}
		if ev.Rank != 0 {
			attrs["rank"] = ev.Rank
		}
		if ev.Worker != "" {
			attrs["worker"] = ev.Worker
		}
		if ev.Err != "" {
			attrs["err"] = ev.Err
		}
		if ev.Event == "merge" {
			attrs["winner"] = ev.Winner
			attrs["remote"] = ev.Remote
			attrs["local"] = ev.Local
			attrs["redispatched"] = ev.Redisp
		}
		l.o.Emit(obs.Event{Type: obs.EventDispatch, Name: ev.Event, Attrs: attrs})
	}
}

func (l *dispatchLog) close() {
	if l.f != nil {
		l.f.Close()
	}
}

// verifyCandidatesDispatch verifies cands under the coordinator/worker
// backend and merges the outcomes into rep deterministically. Invoked by
// RunContext when cfg.Dispatch is set.
//
// Topology: max(1, cfg.Parallel) local slots plus one puller per connected
// worker, all draining one rank queue — remote workers steal whatever the
// local slots have not claimed. Any worker failure (dial, transport,
// deadline, or a unit-level error) re-runs that unit locally on the same
// goroutine, so a lost worker costs speed, never a detection.
func verifyCandidatesDispatch(ctx context.Context, prog *bytecode.Program, cands []*pathid.CandidatePath, cfg Config, rep *Report) {
	o := obs.FromContext(ctx)
	dlog := openDispatchLog(cfg.DispatchLog, o)
	defer dlog.close()

	attempts := make([]attempt, len(cands))
	ctxs := make([]context.Context, len(cands))
	cancels := make([]context.CancelFunc, len(cands))
	for i := range cands {
		ctxs[i], cancels[i] = context.WithCancel(ctx)
	}
	defer func() {
		for _, cancel := range cancels {
			cancel()
		}
	}()

	// Winner machinery, identical to the in-process parallel engine: the
	// lowest successful rank cancels every higher-ranked sibling.
	var mu sync.Mutex
	winner := 0
	noteSuccess := func(rank int) {
		mu.Lock()
		defer mu.Unlock()
		if winner != 0 && winner <= rank {
			return
		}
		winner = rank
		for i := rank; i < len(cancels); i++ {
			cancels[i]()
		}
	}
	beyondWinner := func(rank int) bool {
		mu.Lock()
		defer mu.Unlock()
		return winner != 0 && rank > winner
	}

	var remote, local, redispatched, dead atomic.Int64
	runLocal := func(i int) {
		rank := i + 1
		outcome, vuln := VerifyCandidateCtx(ctxs[i], prog, cands[i], rank, cfg)
		attempts[i] = attempt{outcome: outcome, vuln: vuln, complete: !outcome.Cancelled}
		if vuln != nil {
			noteSuccess(rank)
		}
	}

	indices := make(chan int)
	var wg sync.WaitGroup
	// Feeding starts only after every puller is parked at the queue
	// (ready.Wait below). Without the barrier, a single-core scheduler can
	// let the first local slot drain the whole queue before a worker
	// goroutine ever runs — turning every remote topology into a de facto
	// local run. With it, the first sends hand one rank to each parked
	// puller, so connected workers always get a chance to steal.
	var ready sync.WaitGroup

	// Local slots. Dispatch works with Parallel unset — one local slot
	// keeps draining ranks the workers do not steal.
	slots := cfg.Parallel
	if slots < 1 {
		slots = 1
	}
	if slots > len(cands) {
		slots = len(cands)
	}
	for s := 0; s < slots; s++ {
		wg.Add(1)
		ready.Add(1)
		go func() {
			defer wg.Done()
			ready.Done()
			for i := range indices {
				rank := i + 1
				if beyondWinner(rank) || ctxs[i].Err() != nil {
					continue
				}
				dlog.note(DispatchEvent{Event: "local", Rank: rank})
				local.Add(1)
				runLocal(i)
			}
		}()
	}

	// Worker pullers: one goroutine per connected worker, pulling from
	// the same queue (that pull IS the steal). The attempt ships encoded;
	// any failure falls back to runLocal on this goroutine, and a dead
	// client stops pulling.
	for _, addr := range cfg.WorkerAddrs {
		c, err := dispatch.Dial(addr)
		if err != nil {
			dlog.note(DispatchEvent{Event: "dial_failed", Worker: addr, Err: err.Error()})
			obs.Warn(ctx, "dispatch worker unreachable", obs.A("addr", addr), obs.A("error", err.Error()))
			dead.Add(1)
			continue
		}
		dlog.note(DispatchEvent{Event: "dial", Worker: addr})
		// Caller cancellation severs in-flight round trips: closing the
		// connection fails the pending Do, and the puller's local re-run
		// sees the already-cancelled per-rank context, so it records the
		// partial attempt and unwinds — same accounting as the in-process
		// engines.
		stop := context.AfterFunc(ctx, func() { c.Close() })
		wg.Add(1)
		ready.Add(1)
		go func(addr string, c *dispatch.Client) {
			defer wg.Done()
			defer stop()
			defer c.Close()
			ready.Done()
			for i := range indices {
				rank := i + 1
				if beyondWinner(rank) || ctxs[i].Err() != nil {
					continue
				}
				if c.Dead() != nil {
					// A dead worker's puller degrades into one more local
					// slot so queued ranks never stall behind it.
					dlog.note(DispatchEvent{Event: "local", Rank: rank})
					local.Add(1)
					runLocal(i)
					continue
				}
				dlog.note(DispatchEvent{Event: "steal", Rank: rank, Worker: addr})
				unit := EncodeAttemptUnit(prog, cands[i], rank, cfg)
				if o != nil {
					o.Metrics.Counter(obs.MetricDispatchUnitBytes).Add(int64(len(unit)))
				}
				reply, err := c.Do(snapshot.FrameAttemptUnit, unit, cfg.UnitDeadline)
				var outcome CandidateOutcome
				var vuln *symexec.Vulnerability
				if err == nil {
					if o != nil {
						o.Metrics.Counter(obs.MetricDispatchResultBytes).Add(int64(len(reply)))
					}
					outcome, vuln, err = decodeAttemptResult(reply)
				}
				if err != nil {
					if c.Dead() != nil {
						dlog.note(DispatchEvent{Event: "worker_dead", Worker: addr, Err: c.Dead().Error()})
						dead.Add(1)
					}
					dlog.note(DispatchEvent{Event: "redispatch", Rank: rank, Worker: addr, Err: err.Error()})
					obs.Warn(ctx, "dispatch unit re-run locally",
						obs.A("rank", rank), obs.A("addr", addr), obs.A("error", err.Error()))
					redispatched.Add(1)
					runLocal(i)
					continue
				}
				remote.Add(1)
				attempts[i] = attempt{outcome: outcome, vuln: vuln, complete: !outcome.Cancelled}
				if vuln != nil {
					noteSuccess(rank)
				}
			}
		}(addr, c)
	}

	ready.Wait()
	for i := range cands {
		indices <- i
	}
	close(indices)
	wg.Wait()

	mergeAttempts(rep, attempts)
	rep.DispatchRemote = int(remote.Load())
	rep.DispatchLocal = int(local.Load())
	rep.DispatchRedispatched = int(redispatched.Load())
	rep.DispatchWorkersDead = int(dead.Load())
	dlog.note(DispatchEvent{Event: "merge", Winner: rep.CandidateUsed,
		Remote: rep.DispatchRemote, Local: rep.DispatchLocal, Redisp: rep.DispatchRedispatched})
	if o != nil {
		m := o.Metrics
		m.Counter(obs.MetricDispatchRemote).Add(int64(rep.DispatchRemote))
		m.Counter(obs.MetricDispatchLocal).Add(int64(rep.DispatchLocal))
		m.Counter(obs.MetricDispatchRedispatched).Add(int64(rep.DispatchRedispatched))
		m.Counter(obs.MetricDispatchWorkersDead).Add(int64(rep.DispatchWorkersDead))
	}
}
