package core

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/interp"
	"repro/internal/symexec"
	"repro/internal/workload"
)

func TestRunMultiMsgtool(t *testing.T) {
	app, err := apps.Get("msgtool")
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := workload.BuildCorpus(app, workload.Options{SampleRate: 0.3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := RunMulti(app.Program(), corpus, Config{Spec: app.Spec})
	if err != nil {
		t.Fatal(err)
	}
	if len(multi.Clusters) != 2 {
		t.Fatalf("clusters = %d, want 2: %+v", len(multi.Clusters), multi.Clusters)
	}
	if multi.Found() != 2 {
		t.Fatalf("found %d of 2 vulnerabilities", multi.Found())
	}
	// Each discovered vulnerability sits in its own cluster's function and
	// its witness reproduces that exact fault.
	seen := map[string]bool{}
	for i, rep := range multi.Reports {
		cl := multi.Clusters[i]
		if rep.Vuln.Func != cl.FaultFunc {
			t.Errorf("cluster %d: vuln in %s, cluster is %s", i, rep.Vuln.Func, cl.FaultFunc)
		}
		seen[rep.Vuln.Func] = true
		res, err := interp.Run(app.Program(), rep.Vuln.Witness, interp.Config{})
		if err != nil || !res.Faulty() || res.FaultFunc != cl.FaultFunc {
			t.Errorf("cluster %d: witness replay fault=%v in %q err=%v",
				i, res.Fault, res.FaultFunc, err)
		}
	}
	if !seen["pack_header"] || !seen["unpack_payload"] {
		t.Errorf("did not isolate both bugs: %v", seen)
	}
}

func TestRunMultiSingleBugDegeneratesToRun(t *testing.T) {
	app, _ := apps.Get("polymorph")
	corpus, err := workload.BuildCorpus(app, workload.Options{SampleRate: 0.3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := RunMulti(app.Program(), corpus, Config{Spec: app.Spec})
	if err != nil {
		t.Fatal(err)
	}
	if len(multi.Clusters) != 1 {
		t.Fatalf("single-bug program produced %d clusters", len(multi.Clusters))
	}
	if multi.Found() != 1 {
		t.Errorf("found = %d", multi.Found())
	}
	if multi.Clusters[0].FaultFunc != "convert_fileName" {
		t.Errorf("cluster = %+v", multi.Clusters[0])
	}
}

func TestBillingIntegerPredicates(t *testing.T) {
	// The billing app's defect is gated by an integer threshold, not a
	// string length: the pipeline must construct integer predicates and
	// use them.
	app, err := apps.Get("billing")
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := workload.BuildCorpus(app, workload.Options{SampleRate: 0.3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(app.Program(), corpus, Config{Spec: app.Spec})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Found() {
		t.Fatal("billing assertion failure not found")
	}
	if rep.Vuln.Func != "apply_discount" || rep.Vuln.Kind != interp.FaultAssert {
		t.Errorf("vuln = %s", rep.Vuln.Site())
	}
	// The top predicate is an integer (non-string) threshold at the fault
	// site on the discount percentage.
	top := rep.Analysis.Top(1)[0]
	if top.IsString {
		t.Errorf("top predicate is string-based: %s", top)
	}
	if top.Var != "percent" || top.Loc.Func != "apply_discount" {
		t.Errorf("top predicate = %s @ %s", top, top.Loc)
	}
	// The witness discount must be in the failing range (>= 91 given the
	// 10x-assertion in the source).
	w := rep.Vuln.Witness
	if w.Ints["discount"] < 88 {
		t.Errorf("witness discount = %d, want the failing range", w.Ints["discount"])
	}
	res, err := interp.Run(app.Program(), w, interp.Config{})
	if err != nil || !res.Faulty() || res.FaultFunc != "apply_discount" {
		t.Errorf("witness replay: %v / %+v", err, res)
	}
}

func TestBillingDivZeroViaSymbolicBuckets(t *testing.T) {
	// With buckets symbolic instead of concretized, the division-by-zero
	// oracle fires in split_tax; exploring past the first find surfaces
	// both defect kinds.
	app, _ := apps.Get("billing")
	spec := *app.Spec
	spec.ConcreteInts = nil // make buckets symbolic
	opts := symexec.DefaultOptions()
	opts.StopAtFirstVuln = false
	opts.MaxSteps = 5_000_000
	ex := symexec.New(app.Program(), &spec, opts)
	res := ex.Run()
	kinds := map[interp.FaultKind]bool{}
	funcs := map[string]bool{}
	for _, v := range res.Vulns {
		kinds[v.Kind] = true
		funcs[v.Func] = true
	}
	if !kinds[interp.FaultAssert] || !funcs["apply_discount"] {
		t.Errorf("assertion defect missing: %v / %v", kinds, funcs)
	}
	if !kinds[interp.FaultDivZero] || !funcs["split_tax"] {
		t.Errorf("division-by-zero defect missing: %v / %v", kinds, funcs)
	}
}
