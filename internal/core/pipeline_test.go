package core

import (
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/interp"
	"repro/internal/workload"
)

// runPipeline executes the StatSym pipeline on an app at 30% sampling.
func runPipeline(t *testing.T, name string, cfg Config) *Report {
	t.Helper()
	app, err := apps.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := workload.BuildCorpus(app, workload.Options{SampleRate: 0.3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Spec == nil {
		cfg.Spec = app.Spec
	}
	rep, err := Run(app.Program(), corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// checkVuln validates a report's vulnerability against the app's known
// fault and replays the witness concretely.
func checkVuln(t *testing.T, name string, rep *Report) {
	t.Helper()
	app, _ := apps.Get(name)
	if !rep.Found() {
		t.Fatalf("%s: vulnerable path not found; candidates: %+v", name, rep.Candidates)
	}
	v := rep.Vuln
	if v.Func != app.VulnFunc || v.Kind != app.VulnKind {
		t.Errorf("%s: found %s in %s, want %s in %s", name, v.Kind, v.Func, app.VulnKind, app.VulnFunc)
	}
	if v.Witness == nil {
		t.Fatalf("%s: no witness", name)
	}
	res, err := interp.Run(app.Program(), v.Witness, interp.Config{})
	if err != nil {
		t.Fatalf("%s: witness replay error: %v", name, err)
	}
	if !res.Faulty() || res.FaultFunc != app.VulnFunc {
		t.Errorf("%s: witness replay gave fault=%v in %q, want %v in %q",
			name, res.Fault, res.FaultFunc, app.VulnKind, app.VulnFunc)
	}
	// The discovered path must end at (or contain) the fault function's
	// entry.
	hasFault := false
	for _, loc := range v.Path {
		if loc.Func == app.VulnFunc {
			hasFault = true
		}
	}
	if !hasFault {
		t.Errorf("%s: vulnerable path misses the fault function: %v", name, v.Path)
	}
}

func TestPipelinePolymorph(t *testing.T) {
	rep := runPipeline(t, "polymorph", Config{})
	checkVuln(t, "polymorph", rep)
	if rep.TotalPaths > 100 {
		t.Errorf("guided search explored %d paths; expected a small number", rep.TotalPaths)
	}
}

func TestPipelineCTree(t *testing.T) {
	rep := runPipeline(t, "ctree", Config{})
	checkVuln(t, "ctree", rep)
}

func TestPipelineThttpd(t *testing.T) {
	rep := runPipeline(t, "thttpd", Config{})
	checkVuln(t, "thttpd", rep)
	// The witness request must overflow the 1000-byte defang buffer once
	// '<' and '>' expand to 4-byte entities: plain bytes + 4x angles must
	// reach the capacity.
	req := rep.Vuln.Witness.Strs["request"]
	expanded := 0
	for i := 0; i < len(req); i++ {
		if req[i] == '<' || req[i] == '>' {
			expanded += 4
		} else {
			expanded++
		}
	}
	if expanded < 1000 {
		t.Errorf("witness expands to %d bytes (< 1000): request %d bytes", expanded, len(req))
	}
}

func TestPipelineGrep(t *testing.T) {
	rep := runPipeline(t, "grep", Config{})
	checkVuln(t, "grep", rep)
	if n := len(rep.Vuln.Witness.Env["STONESOUP_TAINT_SOURCE"]); n < 128 {
		t.Errorf("witness taint only %d bytes", n)
	}
}

func TestPureBaselineTable4Shape(t *testing.T) {
	// Pure symbolic execution succeeds on polymorph and exhausts its
	// state budget on the other three (Table IV).
	for _, name := range []string{"polymorph", "ctree", "thttpd", "grep"} {
		app, _ := apps.Get(name)
		res := RunPure(app.Program(), app.Spec, 10_000, 5_000_000, 30*time.Second)
		if app.PureFails {
			if res.Found() {
				t.Errorf("%s: pure symbolic execution unexpectedly succeeded", name)
			}
			if !res.Exhausted && !res.StepLimited && !res.TimedOut {
				t.Errorf("%s: pure run neither found nor failed: %+v", name, res)
			}
		} else if !res.Found() {
			t.Errorf("%s: pure symbolic execution failed (exhausted=%v): %+v",
				name, res.Exhausted, res)
		}
	}
}

func TestPipelineReportFields(t *testing.T) {
	rep := runPipeline(t, "polymorph", Config{})
	if rep.Runs != 200 {
		t.Errorf("runs = %d, want 200", rep.Runs)
	}
	if rep.Locations == 0 || rep.Variables == 0 || rep.LogBytes == 0 {
		t.Errorf("empty corpus stats: %+v", rep)
	}
	if rep.StatTime <= 0 {
		t.Errorf("stat time not measured")
	}
	if len(rep.PathRes.Candidates) == 0 {
		t.Errorf("no candidates in report")
	}
	if rep.CandidateUsed < 1 || rep.CandidateUsed > len(rep.PathRes.Candidates) {
		t.Errorf("candidate used = %d of %d", rep.CandidateUsed, len(rep.PathRes.Candidates))
	}
	if rep.Detours() < 0 {
		t.Errorf("negative detours")
	}
}

func TestPipelineLowSampling(t *testing.T) {
	// The paper's claim: effective even at 20% sampling.
	app, _ := apps.Get("polymorph")
	corpus, err := workload.BuildCorpus(app, workload.Options{SampleRate: 0.2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(app.Program(), corpus, Config{Spec: app.Spec})
	if err != nil {
		t.Fatal(err)
	}
	checkVuln(t, "polymorph", rep)
}

func TestPipelineSeedsStability(t *testing.T) {
	// Different workload seeds must not break discovery.
	for _, seed := range []int64{2, 7, 13} {
		app, _ := apps.Get("ctree")
		corpus, err := workload.BuildCorpus(app, workload.Options{SampleRate: 0.3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(app.Program(), corpus, Config{Spec: app.Spec})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Found() {
			t.Errorf("seed %d: not found", seed)
		}
	}
}

func TestAblationConfigsStillFind(t *testing.T) {
	// Disabling either guidance mechanism must not break discovery on
	// polymorph (it degrades efficiency, not capability).
	for _, cfg := range []Config{
		{DisablePredicates: true},
		{DisableInter: true},
		{DisableInter: true, DisablePredicates: true},
	} {
		rep := runPipeline(t, "polymorph", cfg)
		if !rep.Found() {
			t.Errorf("config %+v: not found", cfg)
		}
	}
}

func TestGuidedBeatsPureOnPaths(t *testing.T) {
	rep := runPipeline(t, "polymorph", Config{})
	if !rep.Found() {
		t.Fatal("guided search failed")
	}
	app, _ := apps.Get("polymorph")
	pure := RunPure(app.Program(), app.Spec, 20_000, 20_000_000, time.Minute)
	if !pure.Found() {
		t.Fatal("pure baseline failed on polymorph")
	}
	if rep.TotalPaths*10 > pure.Paths {
		t.Errorf("guided explored %d paths vs pure %d; expected at least 10x reduction",
			rep.TotalPaths, pure.Paths)
	}
}
