package core

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/obs"
	"repro/internal/obs/live"
	"repro/internal/workload"
)

// TestLiveIntrospectionDifferential pins the observability contract on
// every evaluation workload: running the pipeline with a live
// introspection server attached — hub sink, aggressive progress
// interval, and concurrent scrapers hammering /metrics and /progress
// the whole time — must produce a byte-identical detection digest to a
// bare run. The server only ever reads atomics and receives events on a
// never-blocking fan-out, so scraping cannot perturb the search.
func TestLiveIntrospectionDifferential(t *testing.T) {
	for _, name := range []string{"polymorph", "ctree", "thttpd", "grep", "msgtool"} {
		t.Run(name, func(t *testing.T) {
			app, err := apps.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			corpus, err := workload.BuildCorpus(app, workload.Options{SampleRate: 0.3, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			bare, err := Run(app.Program(), corpus, Config{Spec: app.Spec})
			if err != nil {
				t.Fatal(err)
			}

			hub := live.NewHub()
			o := obs.New(hub)
			o.Interval = time.Millisecond // force frequent progress frames
			srv := live.NewServer(o, hub)
			srv.Tick = 5 * time.Millisecond
			addr, err := srv.Start("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()

			// Scrapers run for the whole pipeline: metrics polling plus a
			// held-open SSE stream consuming frames as they arrive.
			scrapeCtx, stopScrape := context.WithCancel(context.Background())
			var wg sync.WaitGroup
			wg.Add(2)
			go func() {
				defer wg.Done()
				for scrapeCtx.Err() == nil {
					resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				}
			}()
			go func() {
				defer wg.Done()
				req, _ := http.NewRequestWithContext(scrapeCtx, "GET",
					fmt.Sprintf("http://%s/progress?tick=5ms", addr), nil)
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					return
				}
				defer resp.Body.Close()
				io.Copy(io.Discard, resp.Body) // until scrapeCtx cancels
			}()

			ctx := obs.NewContext(context.Background(), o)
			observed, err := RunContext(ctx, app.Program(), corpus, Config{Spec: app.Spec})
			stopScrape()
			wg.Wait()
			if err != nil {
				t.Fatal(err)
			}

			if bd, od := DetectionDigest(bare), DetectionDigest(observed); bd != od {
				t.Errorf("detection digests diverged under live introspection:\n--- bare ---\n%s--- observed ---\n%s", bd, od)
			}
			if hub.Events() == 0 {
				t.Error("hub saw no events — the observed run was not actually instrumented")
			}
		})
	}
}
