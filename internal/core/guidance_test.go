package core

import (
	"testing"

	"repro/internal/bytecode"
	"repro/internal/pathid"
	"repro/internal/solver"
	"repro/internal/stats"
	"repro/internal/symexec"
	"repro/internal/trace"
)

func loc(f string, k trace.EventKind) trace.Location {
	return trace.Location{Func: f, Kind: k}
}

func mkPath(preds map[string]*stats.Predicate, locs ...trace.Location) *pathid.CandidatePath {
	cp := &pathid.CandidatePath{}
	for _, l := range locs {
		cp.Nodes = append(cp.Nodes, pathid.PathNode{Loc: l, Pred: preds[l.String()]})
	}
	return cp
}

// hookEnv builds a minimal executor so Guidance.Hook can be driven by hand.
func hookEnv(t *testing.T) (*symexec.Executor, *symexec.State) {
	t.Helper()
	prog := bytecode.MustCompile("g", `func main() int { return 0; }`)
	ex := symexec.New(prog, nil, symexec.DefaultOptions())
	st := &symexec.State{Status: symexec.StatusActive}
	return ex, st
}

func TestHookAdvancesOnMatch(t *testing.T) {
	path := mkPath(nil, loc("main", trace.EventEnter), loc("a", trace.EventEnter), loc("b", trace.EventEnter))
	g := NewGuidance(path)
	ex, st := hookEnv(t)

	if d := g.Hook(ex, st, loc("main", trace.EventEnter), nil); d != symexec.HookContinue {
		t.Fatal("suspended on first match")
	}
	if st.PathIndex != 1 || st.Diverted != 0 {
		t.Errorf("after main: index=%d diverted=%d", st.PathIndex, st.Diverted)
	}
	g.Hook(ex, st, loc("a", trace.EventEnter), nil)
	if st.PathIndex != 2 {
		t.Errorf("after a: index=%d", st.PathIndex)
	}
}

func TestHookForwardScanSkipsMissedNodes(t *testing.T) {
	// Execution skips node a entirely; crossing b must advance past both.
	path := mkPath(nil, loc("main", trace.EventEnter), loc("a", trace.EventEnter), loc("b", trace.EventEnter))
	g := NewGuidance(path)
	ex, st := hookEnv(t)
	g.Hook(ex, st, loc("main", trace.EventEnter), nil)
	g.Hook(ex, st, loc("b", trace.EventEnter), nil)
	if st.PathIndex != 3 {
		t.Errorf("forward scan: index=%d, want 3", st.PathIndex)
	}
	if st.Diverted != 0 {
		t.Errorf("diverted=%d, want 0", st.Diverted)
	}
}

func TestHookCountsOffPathHops(t *testing.T) {
	path := mkPath(nil, loc("main", trace.EventEnter), loc("b", trace.EventEnter))
	g := NewGuidance(path)
	g.Tau = 2
	ex, st := hookEnv(t)
	g.Hook(ex, st, loc("main", trace.EventEnter), nil)

	if d := g.Hook(ex, st, loc("x", trace.EventEnter), nil); d != symexec.HookContinue {
		t.Fatal("suspended before tau")
	}
	if d := g.Hook(ex, st, loc("x", trace.EventLeave), nil); d != symexec.HookContinue {
		t.Fatal("suspended before tau")
	}
	if st.Diverted != 2 {
		t.Fatalf("diverted = %d, want 2", st.Diverted)
	}
	// Third off-path hop exceeds tau=2.
	if d := g.Hook(ex, st, loc("y", trace.EventEnter), nil); d != symexec.HookSuspend {
		t.Fatal("expected suspension beyond tau")
	}
	if g.Suspends.Load() != 1 {
		t.Errorf("suspends = %d", g.Suspends.Load())
	}
}

func TestHookMatchResetsDivergence(t *testing.T) {
	path := mkPath(nil, loc("main", trace.EventEnter), loc("b", trace.EventEnter))
	g := NewGuidance(path)
	g.Tau = 5
	ex, st := hookEnv(t)
	g.Hook(ex, st, loc("main", trace.EventEnter), nil)
	g.Hook(ex, st, loc("x", trace.EventEnter), nil)
	g.Hook(ex, st, loc("x", trace.EventLeave), nil)
	if st.Diverted != 2 {
		t.Fatalf("diverted = %d", st.Diverted)
	}
	g.Hook(ex, st, loc("b", trace.EventEnter), nil)
	if st.Diverted != 0 {
		t.Errorf("diverted after match = %d, want 0", st.Diverted)
	}
}

func TestHookOnPathRevisitsNeutral(t *testing.T) {
	// Re-crossing an already-passed candidate node (loop) neither advances
	// nor diverts.
	path := mkPath(nil, loc("main", trace.EventEnter), loc("a", trace.EventEnter), loc("b", trace.EventEnter))
	g := NewGuidance(path)
	ex, st := hookEnv(t)
	g.Hook(ex, st, loc("main", trace.EventEnter), nil)
	g.Hook(ex, st, loc("a", trace.EventEnter), nil)
	for i := 0; i < 20; i++ {
		if d := g.Hook(ex, st, loc("a", trace.EventEnter), nil); d != symexec.HookContinue {
			t.Fatal("loop revisit suspended")
		}
	}
	if st.Diverted != 0 || st.PathIndex != 2 {
		t.Errorf("after revisits: diverted=%d index=%d", st.Diverted, st.PathIndex)
	}
}

func TestHookRevivedStatesUnguided(t *testing.T) {
	path := mkPath(nil, loc("main", trace.EventEnter))
	g := NewGuidance(path)
	g.Tau = 0
	ex, st := hookEnv(t)
	st.Revived = true
	for i := 0; i < 10; i++ {
		if d := g.Hook(ex, st, loc("zzz", trace.EventEnter), nil); d != symexec.HookSuspend {
			continue
		}
		t.Fatal("revived state suspended")
	}
}

func TestHookDisableInter(t *testing.T) {
	path := mkPath(nil, loc("main", trace.EventEnter))
	g := NewGuidance(path)
	g.Tau = 0
	g.DisableInter = true
	ex, st := hookEnv(t)
	if d := g.Hook(ex, st, loc("off", trace.EventEnter), nil); d != symexec.HookSuspend {
		// Expected: no suspension when inter guidance disabled.
	} else {
		t.Fatal("DisableInter did not disable hop suspension")
	}
}

func TestGuidedSchedulerOrdering(t *testing.T) {
	s := NewGuidedScheduler()
	mk := func(diverted, pathIndex int) *symexec.State {
		return &symexec.State{Diverted: diverted, PathIndex: pathIndex}
	}
	far := mk(0, 5)
	near := mk(0, 2)
	diverted := mk(3, 9)
	s.Add(diverted)
	s.Add(near)
	s.Add(far)
	if got := s.Next(); got != far {
		t.Errorf("first = %+v, want the furthest-along zero-divergence state", got)
	}
	if got := s.Next(); got != near {
		t.Errorf("second = %+v, want the other zero-divergence state", got)
	}
	if got := s.Next(); got != diverted {
		t.Errorf("third = %+v, want the diverted state", got)
	}
	if s.Next() != nil || s.Len() != 0 {
		t.Error("scheduler not empty")
	}
}

func TestPredicateConstraintsConversion(t *testing.T) {
	// Symbolic int: >= threshold becomes a solver constraint.
	tbl := solver.NewVarTable()
	x := tbl.NewVar("x")
	p := &stats.Predicate{Op: stats.PredGe, Threshold: 536.5}
	cons, concrete, _ := predicateConstraints(p, symexec.LinVal(solver.VarExpr(x)))
	if concrete || len(cons) != 1 {
		t.Fatalf("cons=%v concrete=%v", cons, concrete)
	}
	if got := cons[0].String(tbl); got != "x >= 537" {
		t.Errorf("constraint = %q", got)
	}

	// Concrete int: evaluated in place.
	_, concrete, holds := predicateConstraints(p, symexec.IntVal(600))
	if !concrete || !holds {
		t.Errorf("600 >= 536.5 should hold concretely")
	}
	_, concrete, holds = predicateConstraints(p, symexec.IntVal(100))
	if !concrete || holds {
		t.Errorf("100 >= 536.5 should fail concretely")
	}

	// <= direction.
	pLe := &stats.Predicate{Op: stats.PredLe, Threshold: 9.5}
	cons, _, _ = predicateConstraints(pLe, symexec.LinVal(solver.VarExpr(x)))
	if got := cons[0].String(tbl); got != "x <= 9" {
		t.Errorf("constraint = %q", got)
	}

	// String value: constrains its length.
	lenVar := tbl.NewVarMin("len(s)", 0)
	sym := &symexec.SymString{ID: 1, Label: "s", LenVar: lenVar}
	cons, concrete, _ = predicateConstraints(p, symexec.SymStrVal(sym))
	if concrete || len(cons) != 1 {
		t.Fatalf("string predicate: cons=%v", cons)
	}
	if got := cons[0].String(tbl); got != "len(s) >= 537" {
		t.Errorf("string constraint = %q", got)
	}

	// PredNever yields nothing via applyPredicate path (tested at the
	// conversion level: buffer values are skipped).
	bufVal := symexec.BufVal(symexec.NewSymBuffer(4))
	cons, concrete, _ = predicateConstraints(p, bufVal)
	if len(cons) != 0 || concrete {
		t.Errorf("buffer value should be skipped")
	}
}
