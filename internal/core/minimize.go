package core

import (
	"sort"

	"repro/internal/bytecode"
	"repro/internal/interp"
)

// MinimizeWitness shrinks a fault-reproducing input while preserving the
// failure (same fault kind in the same function), using concrete replays
// as the oracle. Strings (including env values and argv entries) shrink by
// binary search on their length; integers shrink toward zero. The result
// is a minimal-ish exploit input suitable for regression suites — one of
// the applications the paper lists for discovered vulnerable paths
// (input filtering, debugging).
//
// The returned input is a deep copy; the argument is not modified.
func MinimizeWitness(prog *bytecode.Program, witness *interp.Input, maxReplays int) (*interp.Input, int) {
	if maxReplays <= 0 {
		maxReplays = 256
	}
	target, baseline := replayFault(prog, witness)
	if !baseline {
		// The witness does not reproduce; nothing to minimize.
		return cloneInput(witness), 0
	}
	cur := cloneInput(witness)
	replays := 0
	reproduces := func(in *interp.Input) bool {
		if replays >= maxReplays {
			return false
		}
		replays++
		got, faulted := replayFault(prog, in)
		return faulted && got == target
	}

	// Shrink string channels by binary search on length.
	shrinkStr := func(get func() string, set func(string)) {
		s := get()
		lo, hi := 0, len(s) // invariant: hi-length prefix reproduces
		for lo < hi {
			mid := (lo + hi) / 2
			set(s[:mid])
			if reproduces(cur) {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		set(s[:hi])
	}
	for _, k := range sortedKeys(cur.Strs) {
		key := k
		shrinkStr(func() string { return cur.Strs[key] }, func(v string) { cur.Strs[key] = v })
	}
	for _, k := range sortedKeys(cur.Env) {
		key := k
		shrinkStr(func() string { return cur.Env[key] }, func(v string) { cur.Env[key] = v })
	}
	for i := range cur.Args {
		idx := i
		shrinkStr(func() string { return cur.Args[idx] }, func(v string) { cur.Args[idx] = v })
	}

	// Shrink integers: try zero, then binary search the magnitude. The
	// search assumes a monotone threshold (reproduction for every value
	// beyond some magnitude), which covers the length- and count-style
	// inputs of the evaluation programs; a final check restores the
	// original on any violation.
	for _, k := range sortedKeys(cur.Ints) {
		orig := cur.Ints[k]
		if orig == 0 {
			continue
		}
		cur.Ints[k] = 0
		if reproduces(cur) {
			continue
		}
		sign := int64(1)
		mag := orig
		if orig < 0 {
			sign = -1
			mag = -orig
		}
		// Invariant: sign*hi reproduces, sign*lo does not.
		lo, hi := int64(0), mag
		for hi-lo > 1 {
			mid := lo + (hi-lo)/2
			cur.Ints[k] = sign * mid
			if reproduces(cur) {
				hi = mid
			} else {
				lo = mid
			}
		}
		cur.Ints[k] = sign * hi
		if !reproduces(cur) {
			cur.Ints[k] = orig
		}
	}

	// Final sanity: the minimized input must still reproduce; otherwise
	// return the original.
	if got, faulted := replayFault(prog, cur); !faulted || got != target {
		return cloneInput(witness), replays
	}
	return cur, replays
}

// faultSig identifies a failure for minimization purposes.
type faultSig struct {
	kind interp.FaultKind
	fn   string
}

func replayFault(prog *bytecode.Program, in *interp.Input) (faultSig, bool) {
	res, err := interp.Run(prog, in, interp.Config{})
	if err != nil || !res.Faulty() {
		return faultSig{}, false
	}
	return faultSig{kind: res.Fault, fn: res.FaultFunc}, true
}

func cloneInput(in *interp.Input) *interp.Input {
	out := &interp.Input{
		Ints: make(map[string]int64, len(in.Ints)),
		Strs: make(map[string]string, len(in.Strs)),
		Env:  make(map[string]string, len(in.Env)),
	}
	for k, v := range in.Ints {
		out.Ints[k] = v
	}
	for k, v := range in.Strs {
		out.Strs[k] = v
	}
	for k, v := range in.Env {
		out.Env[k] = v
	}
	if in.Args != nil {
		out.Args = append([]string(nil), in.Args...)
	}
	return out
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
