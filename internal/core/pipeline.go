package core

import (
	"fmt"
	"time"

	"repro/internal/bytecode"
	"repro/internal/pathid"
	"repro/internal/stats"
	"repro/internal/symexec"
	"repro/internal/trace"
)

// Config tunes the StatSym pipeline.
type Config struct {
	// Tau is the hop-divergence threshold τ (default 10, §VII-A).
	Tau int
	// MinPredScore gates predicate application (default 0.5).
	MinPredScore float64
	// Path tunes candidate-path construction.
	Path pathid.Config
	// Spec is the symbolic-input configuration shared with the baseline.
	Spec *symexec.InputSpec

	// PerCandidateTimeout bounds statistics-guided symbolic execution per
	// candidate path (the paper uses 15 minutes; benchmarks scale this
	// down). Zero means no wall-clock bound.
	PerCandidateTimeout time.Duration
	// PerCandidateMaxSteps bounds instructions per candidate (0: executor
	// default).
	PerCandidateMaxSteps int64
	// MaxStates bounds live states per candidate (0: executor default).
	MaxStates int
	// TotalTimeout bounds the whole symbolic-execution phase.
	TotalTimeout time.Duration

	// DisableInter / DisablePredicates switch off the two guidance
	// mechanisms independently (ablations).
	DisableInter      bool
	DisablePredicates bool
}

// CandidateOutcome records one guided exploration attempt.
type CandidateOutcome struct {
	Index    int // 1-based rank of the candidate path
	PathLen  int
	Found    bool
	Paths    int // paths explored during this attempt
	Steps    int64
	Suspends int
	Matches  int
	Elapsed  time.Duration
	// Infeasible marks candidates abandoned with every prioritized state
	// suspended or exhausted (the thttpd first-candidate case, §VII-C2).
	Infeasible bool
}

// Report is the pipeline's full output.
type Report struct {
	Program string

	// Corpus statistics.
	Runs, Locations, Variables int
	LogBytes                   int

	Analysis *stats.Analysis
	PathRes  *pathid.Result

	// Module times: StatTime covers predicate construction and candidate
	// path construction (the paper's "Statistical Module" column);
	// SymTime covers guided symbolic execution.
	StatTime time.Duration
	SymTime  time.Duration

	Candidates []CandidateOutcome
	// Vuln is the verified vulnerability (nil if none found).
	Vuln *symexec.Vulnerability
	// CandidateUsed is the 1-based rank of the successful candidate.
	CandidateUsed int
	// TotalPaths sums paths explored across attempts (Table IV).
	TotalPaths int
	TotalSteps int64
}

// Found reports whether the pipeline verified a vulnerable path.
func (r *Report) Found() bool { return r.Vuln != nil }

// Detours returns the number of detours found by statistical analysis
// (Tables II and III).
func (r *Report) Detours() int {
	if r.PathRes == nil {
		return 0
	}
	return len(r.PathRes.Detours)
}

// Run executes the StatSym pipeline of Fig. 5 over a pre-collected corpus:
//
//	(a)–(d) statistical analysis: predicates construction and ranking;
//	        candidate-path construction (skeleton + detours);
//	(e)     statistics-guided symbolic execution per candidate path until
//	        a vulnerable path is verified or candidates run out.
func Run(prog *bytecode.Program, corpus *trace.Corpus, cfg Config) (*Report, error) {
	if cfg.Tau == 0 {
		cfg.Tau = DefaultTau
	}
	if cfg.MinPredScore == 0 {
		cfg.MinPredScore = DefaultMinPredScore
	}
	rep := &Report{Program: prog.Name}
	rep.Runs, rep.Locations, rep.Variables = corpus.Counts()
	rep.LogBytes = corpus.SizeBytes()

	// Statistical analysis module.
	statStart := time.Now()
	rep.Analysis = stats.Analyze(corpus)
	pres, err := pathid.Build(corpus, rep.Analysis, cfg.Path)
	rep.StatTime = time.Since(statStart)
	if err != nil {
		return rep, fmt.Errorf("core: candidate path construction: %w", err)
	}
	rep.PathRes = pres

	// Statistics-guided symbolic execution module.
	symStart := time.Now()
	var symDeadline time.Time
	if cfg.TotalTimeout > 0 {
		symDeadline = symStart.Add(cfg.TotalTimeout)
	}
	for i, cand := range pres.Candidates {
		if !symDeadline.IsZero() && time.Now().After(symDeadline) {
			break
		}
		outcome := runCandidate(prog, cand, i+1, cfg)
		rep.Candidates = append(rep.Candidates, outcome.CandidateOutcome)
		rep.TotalPaths += outcome.Paths
		rep.TotalSteps += outcome.Steps
		if outcome.Found {
			rep.Vuln = outcome.vuln
			rep.CandidateUsed = i + 1
			break
		}
	}
	rep.SymTime = time.Since(symStart)
	return rep, nil
}

type candidateResult struct {
	CandidateOutcome
	vuln *symexec.Vulnerability
}

// runCandidate performs one statistics-guided exploration (step e.2).
func runCandidate(prog *bytecode.Program, cand *pathid.CandidatePath, rank int, cfg Config) candidateResult {
	out, vuln := VerifyCandidate(prog, cand, cfg)
	out.Index = rank
	return candidateResult{CandidateOutcome: out, vuln: vuln}
}

// VerifyCandidate runs statistics-guided symbolic execution against one
// candidate vulnerable path (step e.2 of Fig. 5) and reports the outcome
// together with the vulnerability, if verified. Callers that construct
// their own candidate lists (tests, alternative ranking strategies) can
// drive the verification loop directly.
func VerifyCandidate(prog *bytecode.Program, cand *pathid.CandidatePath, cfg Config) (CandidateOutcome, *symexec.Vulnerability) {
	if cfg.Tau == 0 {
		cfg.Tau = DefaultTau
	}
	if cfg.MinPredScore == 0 {
		cfg.MinPredScore = DefaultMinPredScore
	}
	g := NewGuidance(cand)
	g.Tau = cfg.Tau
	g.MinPredScore = cfg.MinPredScore
	g.DisableInter = cfg.DisableInter
	g.DisablePredicates = cfg.DisablePredicates
	opts := symexec.DefaultOptions()
	opts.Sched = NewGuidedScheduler()
	opts.Hook = g.Hook
	opts.Timeout = cfg.PerCandidateTimeout
	if cfg.PerCandidateMaxSteps > 0 {
		opts.MaxSteps = cfg.PerCandidateMaxSteps
	}
	if cfg.MaxStates > 0 {
		opts.MaxStates = cfg.MaxStates
	}
	ex := symexec.New(prog, cfg.Spec, opts)
	res := ex.Run()
	out := CandidateOutcome{
		Index:    1,
		PathLen:  cand.Len(),
		Found:    res.Found(),
		Paths:    res.Paths,
		Steps:    res.Steps,
		Suspends: g.Suspends,
		Matches:  g.Matches,
		Elapsed:  res.Elapsed,
	}
	if res.Found() {
		return out, res.Vulns[0]
	}
	// Candidate abandoned: either the guided frontier died out
	// (infeasible candidate) or a resource bound hit.
	out.Infeasible = res.TimedOut || res.Exhausted || res.StepLimited || res.SuspendedAtEnd > 0
	return out, nil
}

// RunPure executes the pure-symbolic-execution baseline (unmodified KLEE in
// the paper's Table IV) with the same input spec and resource bounds.
func RunPure(prog *bytecode.Program, spec *symexec.InputSpec, maxStates int, maxSteps int64, timeout time.Duration) *symexec.Result {
	opts := symexec.DefaultOptions()
	opts.Sched = symexec.NewBFS()
	if maxStates > 0 {
		opts.MaxStates = maxStates
	}
	if maxSteps > 0 {
		opts.MaxSteps = maxSteps
	}
	opts.Timeout = timeout
	ex := symexec.New(prog, spec, opts)
	return ex.Run()
}
