package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/bytecode"
	"repro/internal/obs"
	"repro/internal/pathid"
	"repro/internal/solver"
	"repro/internal/solver/persist"
	"repro/internal/stats"
	"repro/internal/summary"
	"repro/internal/symexec"
	"repro/internal/trace"
)

// Config tunes the StatSym pipeline.
type Config struct {
	// Tau is the hop-divergence threshold τ (default 10, §VII-A).
	Tau int
	// MinPredScore gates predicate application (default 0.5).
	MinPredScore float64
	// Path tunes candidate-path construction.
	Path pathid.Config
	// Stream tunes the streaming statistical front-end used by the
	// store-backed pipeline (RunStoreContext); ignored by the in-memory
	// path. Both settings are exact — they never change the analysis.
	Stream stats.StreamOpts
	// Spec is the symbolic-input configuration shared with the baseline.
	Spec *symexec.InputSpec

	// PerCandidateTimeout bounds statistics-guided symbolic execution per
	// candidate path (the paper uses 15 minutes; benchmarks scale this
	// down). Zero means no wall-clock bound.
	PerCandidateTimeout time.Duration
	// PerCandidateMaxSteps bounds instructions per candidate (0: executor
	// default).
	PerCandidateMaxSteps int64
	// MaxStates bounds live states per candidate (0: executor default).
	MaxStates int
	// TotalTimeout bounds the whole symbolic-execution phase.
	TotalTimeout time.Duration

	// Parallel is the candidate-verification worker count. Values above 1
	// verify the ranked candidate paths concurrently (see parallel.go);
	// 0 and 1 keep the sequential Fig. 5 loop. Outcomes and report
	// counters are deterministic in rank order regardless of the value,
	// provided the per-candidate budgets are step/state bounds rather
	// than wall-clock ones.
	Parallel int

	// Workers is the in-candidate frontier worker count handed to the
	// symbolic executor (symexec.Options.Workers). 0 keeps the sequential
	// per-candidate engine; >= 1 selects the deterministic epoch engine,
	// whose results are identical for every worker count. When combined
	// with Parallel > 1 the two multiply, so the budget is divided:
	// each concurrent attempt gets max(1, Workers/Parallel) frontier
	// workers — which leaves outcomes unchanged (the epoch engine is
	// worker-count-invariant), only the wall-clock split.
	Workers int

	// Dispatch selects the coordinator/worker candidate-verification
	// backend (dispatch.go): ranked candidate attempts are pulled from one
	// shared queue by local slots and by one goroutine per connected
	// worker process, so remote workers steal whatever the local slots
	// have not claimed yet. Outcomes merge in rank order exactly like the
	// in-process engines, so DetectionDigest is byte-identical for any
	// topology — zero workers, N workers, or workers that die mid-run.
	// Works with an empty WorkerAddrs (a local-only dispatch run, useful
	// for A/B tests).
	Dispatch bool
	// WorkerAddrs lists worker processes to dial (dispatch.SplitAddr
	// syntax: "unix:/path", "/path", "tcp:host:port", "host:port"). A
	// worker that cannot be dialed is skipped with a warning; a worker
	// that fails mid-unit has its unit re-run locally.
	WorkerAddrs []string
	// DispatchLog, when set, appends one JSON line per scheduling event
	// (dial, steal, local, redispatch, merge) to that file — the audit
	// trail tracecheck validates.
	DispatchLog string
	// UnitDeadline bounds one remote unit's round trip (zero:
	// dispatch.DefaultUnitDeadline). A worker that misses the deadline is
	// declared dead and its unit re-runs locally.
	UnitDeadline time.Duration

	// DisableInter / DisablePredicates switch off the two guidance
	// mechanisms independently (ablations).
	DisableInter      bool
	DisablePredicates bool

	// DisableSharedCache turns off the cross-candidate solver cache that
	// RunContext otherwise installs (ablations and A/B determinism tests).
	// The shared cache only ever changes wall-clock time — verdicts and
	// Report counters are identical with it on or off.
	DisableSharedCache bool

	// CacheDir, when set, attaches a persistent cross-run solver-cache
	// store at that directory: verdicts cached by earlier runs are loaded
	// (verified entry-by-entry) into this run's shared cache at warm
	// start, and fresh verdicts spill back behind the solver's hot path.
	// Wall-clock only — every loaded entry is re-verified against its own
	// conjunction before use, so a stale or corrupt store degrades speed,
	// never detection results. Ignored when DisableSharedCache is set.
	CacheDir string
	// Incremental, with CacheDir, skips candidate paths that do not cross
	// any function whose bytecode hash changed since the store's manifest
	// was written: unchanged code keeps its prior verdicts, only the delta
	// is re-verified. A store with no recorded changes runs every
	// candidate (a plain warm run). Skipped candidates are counted in
	// Report.SkippedCandidates. This is an analysis-scoping policy — a
	// vulnerability in skipped (unchanged) code was already reported by
	// the run that populated the store.
	Incremental bool
	// NeedGraph forces the statistical phase to run even on a warm cache
	// hit, because the caller consumes the transition graph (statsym
	// -dot), which the memoized artifact does not carry. Irrelevant
	// without CacheDir.
	NeedGraph bool

	// Scope is the compositional scope policy (summary.ParsePolicy syntax:
	// "" or "all" interprets everything; "all,-f,-g" havocs f and g;
	// "f,g,h" interprets exactly that list plus main). Out-of-scope calls
	// are replaced by havoc summaries — fresh symbolic return plus the
	// callee's declared side-effect set.
	Scope string
	// Summaries enables summarize call mode: summarizable in-scope calls
	// are replaced by memoized path summaries mined once per function body
	// and reused across candidate attempts. With a full-coverage Scope this
	// is detection-equivalent to full interpretation (the differential
	// tests pin it); it changes step/path counters, not what is found.
	Summaries bool

	// sharedCache is the cross-candidate solver cache threaded by
	// RunContext into every candidate verification of one pipeline run.
	sharedCache *solver.SharedCache
	// calls is the compositional call strategy shared by every candidate
	// attempt of one pipeline run; summaryCache is the cross-attempt
	// summary store behind it (the cross-attempt reuse is the point: the
	// same function body is mined once for the whole run).
	calls        symexec.CallStrategy
	summaryCache *summary.Cache
	// originHashes maps bytecode.Fn.Index to summary.FnHash so the solver
	// layer can attribute each cached verdict to the function whose branch
	// issued it (persistent-cache invalidation granularity). Computed once
	// per run when CacheDir is set.
	originHashes []uint64
}

// callMode maps the public Scope/Summaries knobs to a call-strategy mode.
func (cfg Config) callMode() string {
	switch {
	case cfg.Summaries:
		return symexec.CallSummarize
	case cfg.Scope != "" && cfg.Scope != "all":
		return symexec.CallHavoc
	default:
		return symexec.CallInterpret
	}
}

// initCalls builds the compositional call strategy once per pipeline run
// (no-op when one is already installed or the mode is interpret).
func (cfg *Config) initCalls(prog *bytecode.Program) error {
	mode := cfg.callMode()
	if cfg.calls != nil || mode == symexec.CallInterpret {
		return nil
	}
	pol, err := summary.ParsePolicy(cfg.Scope)
	if err != nil {
		return err
	}
	if mode == symexec.CallSummarize {
		cfg.summaryCache = summary.NewCache()
	}
	cfg.calls, err = symexec.NewCallStrategy(prog, mode, pol, cfg.summaryCache)
	return err
}

// effectiveWorkers returns the frontier worker count for one candidate
// attempt: the full Workers budget when attempts run one at a time, an
// even share (at least 1, keeping the epoch engine and its invariance)
// when Parallel attempts run concurrently.
func (cfg Config) effectiveWorkers() int {
	w := cfg.Workers
	if w <= 0 {
		return 0
	}
	if cfg.Parallel > 1 {
		w /= cfg.Parallel
		if w < 1 {
			w = 1
		}
	}
	return w
}

// withDefaults returns cfg with unset tunables replaced by the paper
// defaults. Every pipeline entry point (sequential, parallel, and direct
// candidate verification) normalizes its Config through this single place.
func (cfg Config) withDefaults() Config {
	if cfg.Tau == 0 {
		cfg.Tau = DefaultTau
	}
	if cfg.MinPredScore == 0 {
		cfg.MinPredScore = DefaultMinPredScore
	}
	return cfg
}

// CandidateOutcome records one guided exploration attempt.
type CandidateOutcome struct {
	Index    int // 1-based rank of the candidate path
	PathLen  int
	Found    bool
	Paths    int // paths explored during this attempt
	Steps    int64
	Suspends int
	Matches  int
	Elapsed  time.Duration
	// Infeasible marks candidates abandoned with every prioritized state
	// suspended or exhausted (the thttpd first-candidate case, §VII-C2).
	Infeasible bool
	// Cancelled marks attempts interrupted by context cancellation
	// (user interrupt or a lower-ranked candidate winning the parallel
	// race); their counters reflect only the work done before the stop.
	Cancelled bool

	// Solver effort for this attempt: total satisfiability queries, the
	// query-cache split (exact hits, misses, and the KLEE-style fast-path
	// answers within the misses), and the wall clock spent inside
	// non-memoized solver checks (previously computed in internal/solver
	// but dropped outside the ablation bench).
	SolverChecks   int
	CacheHits      int
	CacheMisses    int
	CacheFastSat   int
	CacheFastUnsat int
	SolverTime     time.Duration

	// Compositional-call counters for this attempt (zero under interpret
	// mode): calls replaced by summary instantiation, feasible paths those
	// produced, calls replaced by havoc, and paths cut by the call-depth
	// bound. Deterministic — mirrored from symexec.Result, not the cache.
	SummaryCalls   int
	SummaryPaths   int
	HavocCalls     int
	DepthExhausted int
}

// Label is the outcome's one-word status, shared by the CLIs, the HTML
// report, and verify-span close events.
func (o CandidateOutcome) Label() string {
	switch {
	case o.Found:
		return "found"
	case o.Cancelled:
		return "cancelled"
	case o.Infeasible:
		return "abandoned"
	default:
		return "no-vuln"
	}
}

// Report is the pipeline's full output.
type Report struct {
	Program string

	// Corpus statistics.
	Runs, Locations, Variables int
	LogBytes                   int

	Analysis *stats.Analysis
	PathRes  *pathid.Result

	// Module times: StatTime covers predicate construction and candidate
	// path construction (the paper's "Statistical Module" column);
	// SymTime covers guided symbolic execution.
	StatTime time.Duration
	SymTime  time.Duration

	Candidates []CandidateOutcome
	// Vuln is the verified vulnerability (nil if none found).
	Vuln *symexec.Vulnerability
	// CandidateUsed is the 1-based rank of the successful candidate.
	CandidateUsed int
	// MonTime is the corpus-collection (monitor) wall time when the
	// caller collected logs as part of this run; zero when a pre-built
	// corpus was loaded. Set by the caller (cmd/statsym, bench) since
	// collection happens before RunContext.
	MonTime time.Duration

	// TotalPaths sums paths explored across attempts (Table IV).
	// TotalSteps sums instruction counts the same way. Both include the
	// partial counters of an attempt interrupted mid-flight by a caller
	// cancellation (that attempt appears in Candidates with
	// Cancelled=true) but never the work of ranks the run did not reach —
	// in parallel runs, attempts cancelled because a lower rank already
	// verified the vulnerability are discarded, matching the sequential
	// loop which never starts them (see parallel.go).
	TotalPaths int
	TotalSteps int64
	// CacheHits/CacheMisses/fast-path counters/SolverTime aggregate the
	// per-candidate solver effort across the recorded attempts.
	CacheHits      int
	CacheMisses    int
	CacheFastSat   int
	CacheFastUnsat int
	SolverTime     time.Duration
	// Compositional-call totals across the recorded attempts (deterministic,
	// from the executors' Result counters).
	SummaryCalls   int
	SummaryPaths   int
	HavocCalls     int
	DepthExhausted int
	// Summary-cache telemetry for the run (summarize mode only): lookup
	// hits/misses and mined/failed summary counts. Deterministic under
	// sequential verification; approximate under Parallel > 1, where
	// concurrent attempts race lookups — never part of DetectionDigest.
	SummaryHits   int64
	SummaryMisses int64
	SummaryMined  int64
	// Persistent solver-cache traffic for the run (CacheDir set only):
	// entries loaded and verified at warm start, verified-on-load
	// rejections (on-disk corruption), entries invalidated by function
	// changes or tombstones, entries spilled to disk this run, and
	// lookup hits served from loaded entries. Wall-clock telemetry —
	// never part of DetectionDigest.
	PersistLoaded      int64
	PersistRejected    int64
	PersistInvalidated int64
	PersistSpilled     int64
	PersistHits        int64
	// SkippedCandidates counts candidate paths elided by Incremental
	// mode (no dirty function on the path).
	SkippedCandidates int
	// Dispatch scheduling telemetry (Dispatch mode only): attempts
	// executed by remote workers ("stolen"), attempts executed by the
	// local slots, attempts re-run locally after a worker failure, and
	// workers lost to transport errors. Counts cover every attempt
	// started, including ones a lower-ranked success later discarded.
	// Wall-clock telemetry — never part of DetectionDigest.
	DispatchRemote       int
	DispatchLocal        int
	DispatchRedispatched int
	DispatchWorkersDead  int
	// StatsCached reports that the statistical phase was replayed from
	// the CacheDir memo instead of being derived (wall-clock only; the
	// replay is byte-exact). PathRes.Graph is nil on a replay.
	StatsCached bool
	// Cancelled reports that the symbolic-execution phase was interrupted
	// by context cancellation before it could finish; the report carries
	// whatever the pipeline completed up to that point.
	Cancelled bool
}

// Found reports whether the pipeline verified a vulnerable path.
func (r *Report) Found() bool { return r.Vuln != nil }

// Detours returns the number of detours found by statistical analysis
// (Tables II and III).
func (r *Report) Detours() int {
	if r.PathRes == nil {
		return 0
	}
	return len(r.PathRes.Detours)
}

// Run executes the StatSym pipeline of Fig. 5 over a pre-collected corpus:
//
//	(a)–(d) statistical analysis: predicates construction and ranking;
//	        candidate-path construction (skeleton + detours);
//	(e)     statistics-guided symbolic execution per candidate path until
//	        a vulnerable path is verified or candidates run out.
func Run(prog *bytecode.Program, corpus *trace.Corpus, cfg Config) (*Report, error) {
	return RunContext(context.Background(), prog, corpus, cfg)
}

// RunContext is Run under a context. Cancelling ctx stops the
// symbolic-execution phase cooperatively: the in-flight candidate
// attempt(s) wind down within one scheduling quantum, the partial report
// (statistics, completed attempts, counters so far) is still returned, and
// Report.Cancelled is set. With cfg.Parallel > 1 the ranked candidates are
// verified by a bounded worker pool instead of the sequential loop; the
// resulting report is deterministic and identical to the sequential one.
func RunContext(ctx context.Context, prog *bytecode.Program, corpus *trace.Corpus, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := &Report{Program: prog.Name}
	rep.Runs, rep.Locations, rep.Variables = corpus.Counts()
	rep.LogBytes = corpus.SizeBytes()

	// The "pipeline" span is the trace root. When the caller already
	// opened one (cmd/statsym and bench wrap corpus collection plus this
	// call in a single root so the monitor phase nests under it), reuse
	// it instead of opening a second root.
	if obs.SpanFromContext(ctx) == nil {
		var pspan *obs.Span
		ctx, pspan = obs.StartSpan(ctx, "pipeline", obs.A("program", prog.Name))
		defer func() {
			pspan.End(obs.A("found", rep.Found()), obs.A("cancelled", rep.Cancelled),
				obs.A("paths", rep.TotalPaths), obs.A("steps", rep.TotalSteps))
		}()
	}

	// Statistical analysis module. With a CacheDir, the phase's output —
	// a pure function of (corpus, path config) — is memoized on disk and
	// replayed on warm runs whose corpus fingerprint matches; a hit skips
	// both predicate derivation and candidate construction. Byte-exact
	// replay, so detection is untouched (pinned by the cold-vs-warm
	// differential tests); bypassed when the caller needs the transition
	// graph, which the artifact does not carry.
	statStart := time.Now()
	var corpusFP uint64
	if cfg.CacheDir != "" && !cfg.NeedGraph {
		corpusFP = corpusFingerprint(corpus)
		if analysis, pres, ok := loadStatsCache(cfg.CacheDir, corpusFP, prog.Name, cfg.Path); ok {
			rep.Analysis, rep.PathRes, rep.StatsCached = analysis, pres, true
			rep.StatTime = time.Since(statStart)
			if o := obs.FromContext(ctx); o != nil {
				o.Metrics.Counter(obs.MetricStatsCacheHits).Add(1)
			}
			obs.Progress(ctx, obs.A("phase", "stats"), obs.A("cached", true),
				obs.A("predicates", len(rep.Analysis.Predicates)),
				obs.A("candidates", len(rep.PathRes.Candidates)))
		}
	}
	if !rep.StatsCached {
		_, aspan := obs.StartSpan(ctx, "stats")
		rep.Analysis = stats.Analyze(corpus)
		aspan.End(obs.A("predicates", len(rep.Analysis.Predicates)))
		obs.Progress(ctx, obs.A("phase", "stats"),
			obs.A("predicates", len(rep.Analysis.Predicates)))
		_, cspan := obs.StartSpan(ctx, "candidates")
		pres, err := pathid.Build(corpus, rep.Analysis, cfg.Path)
		rep.StatTime = time.Since(statStart)
		if err != nil {
			cspan.End(obs.A("error", err.Error()))
			return rep, fmt.Errorf("core: candidate path construction: %w", err)
		}
		cspan.End(obs.A("candidates", len(pres.Candidates)), obs.A("detours", len(pres.Detours)))
		obs.Progress(ctx, obs.A("phase", "candidates"),
			obs.A("candidates", len(pres.Candidates)), obs.A("detours", len(pres.Detours)))
		rep.PathRes = pres
		if cfg.CacheDir != "" && !cfg.NeedGraph {
			if o := obs.FromContext(ctx); o != nil {
				o.Metrics.Counter(obs.MetricStatsCacheMisses).Add(1)
			}
			saveStatsCache(cfg.CacheDir, corpusFP, prog.Name, cfg.Path, rep.Analysis, pres)
		}
	}

	if err := runSymPhase(ctx, prog, cfg, rep); err != nil {
		return rep, err
	}
	return rep, nil
}

// runSymPhase is the statistics-guided symbolic execution module — the
// back half of the pipeline, shared by the in-memory (RunContext) and
// store-backed (RunStoreContext) front ends. It consumes rep.PathRes and
// fills in the attempt outcomes, totals, and SymTime.
func runSymPhase(ctx context.Context, prog *bytecode.Program, cfg Config, rep *Report) error {
	symStart := time.Now()
	symCtx := ctx
	if cfg.TotalTimeout > 0 {
		var cancel context.CancelFunc
		symCtx, cancel = context.WithTimeout(ctx, cfg.TotalTimeout)
		defer cancel()
	}
	cands := rep.PathRes.Candidates
	// One shared solver cache per parallel pipeline run: concurrent
	// candidate verifications reuse each other's verdicts. Wall-clock
	// only — counters and outcomes are unaffected. Sequential runs skip
	// it (anything a lone worker could hit is already in its local LRU,
	// so the shared layer would pay a lock-and-copy per miss for
	// nothing) — unless a persistent CacheDir is attached, which needs
	// the shared layer as its in-memory face even for one worker.
	if !cfg.DisableSharedCache && (cfg.CacheDir != "" || (cfg.Parallel > 1 && len(cands) > 1)) {
		cfg.sharedCache = solver.NewSharedCache(0)
	}
	var session *persist.Session
	if cfg.CacheDir != "" && cfg.sharedCache != nil {
		cfg.originHashes = summary.HashProgram(prog)
		s, err := persist.Attach(persist.Config{
			Dir:     cfg.CacheDir,
			Program: prog,
			Shared:  cfg.sharedCache,
			Obs:     obs.FromContext(ctx),
		})
		if err != nil {
			rep.SymTime = time.Since(symStart)
			return fmt.Errorf("core: solver cache: %w", err)
		}
		session = s
		obs.Progress(ctx, obs.A("phase", "solvercache"),
			obs.A("loaded", s.Stats().Loaded),
			obs.A("rejected", s.Stats().Rejected),
			obs.A("invalidated", s.Stats().Invalidated))
		if cfg.Incremental && session.Diff.HasChanges() {
			kept, skipped := filterCandidatesByDirty(cands, session.Diff.Dirty)
			rep.SkippedCandidates = skipped
			cands = kept
		}
	}
	// The compositional call strategy is built once per run — even for
	// sequential verification, since the summary cache's value is reusing
	// mined summaries across candidate attempts.
	if err := cfg.initCalls(prog); err != nil {
		rep.SymTime = time.Since(symStart)
		return fmt.Errorf("core: call strategy: %w", err)
	}
	switch {
	case cfg.Dispatch && len(cands) > 0:
		verifyCandidatesDispatch(symCtx, prog, cands, cfg, rep)
	case cfg.Parallel > 1 && len(cands) > 1:
		verifyCandidatesParallel(symCtx, prog, cands, cfg, rep)
	default:
		verifyCandidatesSequential(symCtx, prog, cands, cfg, rep)
	}
	// Seal the persistent cache before reading its counters: Close drains
	// the write-behind spill and advances the store manifest to this
	// program's function set. A seal failure costs the next run its warm
	// start, nothing else — degrade to a warning.
	if session != nil {
		if err := session.Close(); err != nil {
			obs.Warn(ctx, "solver cache seal failed", obs.A("error", err.Error()))
		}
		st := session.Stats()
		rep.PersistLoaded = st.Loaded
		rep.PersistRejected = st.Rejected
		rep.PersistInvalidated = st.Invalidated
		rep.PersistSpilled = st.Spilled
		rep.PersistHits = session.PersistHits()
	}
	if cfg.sharedCache != nil {
		if o := obs.FromContext(ctx); o != nil {
			c := cfg.sharedCache.Counters()
			o.Metrics.Counter(obs.MetricSharedCacheStores).Add(c.Stores)
			o.Metrics.Counter(obs.MetricSharedCacheEvictions).Add(c.Evictions)
			if c.Invalidations > 0 {
				o.Metrics.Counter(obs.MetricSharedCacheInvalidations).Add(c.Invalidations)
			}
		}
	}
	if cfg.summaryCache != nil {
		c := cfg.summaryCache.Counters()
		rep.SummaryHits = c.Hits
		rep.SummaryMisses = c.Misses
		rep.SummaryMined = c.Mined
		if o := obs.FromContext(ctx); o != nil {
			o.Metrics.Counter(obs.MetricSummaryHits).Add(c.Hits)
			o.Metrics.Counter(obs.MetricSummaryMisses).Add(c.Misses)
			o.Metrics.Counter(obs.MetricSummaryMined).Add(c.Mined)
			o.Metrics.Counter(obs.MetricSummaryFailed).Add(c.Failed)
		}
	}
	// A cancellation of the caller's context is surfaced as such; an
	// expired TotalTimeout is the pipeline completing at its budget, the
	// same as before contexts.
	if ctx.Err() != nil && !rep.Found() {
		rep.Cancelled = true
	}
	rep.SymTime = time.Since(symStart)
	return nil
}

// addOutcome appends one attempt to the report and folds its counters
// into the totals — the single accumulation point shared by the
// sequential loop and the parallel merge, so the two stay consistent.
func (r *Report) addOutcome(o CandidateOutcome) {
	r.Candidates = append(r.Candidates, o)
	r.TotalPaths += o.Paths
	r.TotalSteps += o.Steps
	r.CacheHits += o.CacheHits
	r.CacheMisses += o.CacheMisses
	r.CacheFastSat += o.CacheFastSat
	r.CacheFastUnsat += o.CacheFastUnsat
	r.SolverTime += o.SolverTime
	r.SummaryCalls += o.SummaryCalls
	r.SummaryPaths += o.SummaryPaths
	r.HavocCalls += o.HavocCalls
	r.DepthExhausted += o.DepthExhausted
}

// verifyCandidatesSequential is the paper's Fig. 5 loop: attempt candidates
// in rank order, stop at the first verified vulnerable path.
func verifyCandidatesSequential(ctx context.Context, prog *bytecode.Program, cands []*pathid.CandidatePath, cfg Config, rep *Report) {
	for i, cand := range cands {
		if ctx.Err() != nil {
			break
		}
		outcome, vuln := VerifyCandidateCtx(ctx, prog, cand, i+1, cfg)
		rep.addOutcome(outcome)
		if vuln != nil {
			rep.Vuln = vuln
			rep.CandidateUsed = i + 1
			break
		}
	}
}

// VerifyCandidate runs statistics-guided symbolic execution against one
// candidate vulnerable path (step e.2 of Fig. 5) and reports the outcome
// together with the vulnerability, if verified. The outcome's Index is 1;
// callers holding a ranked list should use VerifyCandidateCtx with the
// candidate's true rank.
func VerifyCandidate(prog *bytecode.Program, cand *pathid.CandidatePath, cfg Config) (CandidateOutcome, *symexec.Vulnerability) {
	return VerifyCandidateCtx(context.Background(), prog, cand, 1, cfg)
}

// VerifyCandidateCtx verifies one candidate path under a context. rank is
// the candidate's 1-based position in the ranked list and is recorded as
// the outcome's Index, so direct callers (tests, alternative ranking
// strategies, the parallel engine) get correct indices without patching
// the outcome afterwards.
func VerifyCandidateCtx(ctx context.Context, prog *bytecode.Program, cand *pathid.CandidatePath, rank int, cfg Config) (CandidateOutcome, *symexec.Vulnerability) {
	cfg = cfg.withDefaults()
	g := NewGuidance(cand)
	g.Tau = cfg.Tau
	g.MinPredScore = cfg.MinPredScore
	g.DisableInter = cfg.DisableInter
	g.DisablePredicates = cfg.DisablePredicates
	// Direct callers (tests, alternative rankers) reach here without the
	// pipeline's runSymPhase having built the call strategy; build one for
	// this attempt. An invalid Scope is surfaced by RunContext — here it
	// falls back to interpretation, which is always sound.
	if cfg.calls == nil {
		_ = cfg.initCalls(prog)
	}
	opts := symexec.DefaultOptions()
	opts.Sched = NewGuidedScheduler()
	opts.Hook = g.Hook
	opts.SharedCache = cfg.sharedCache
	opts.OriginHashes = cfg.originHashes
	opts.Calls = cfg.calls
	opts.Workers = cfg.effectiveWorkers()
	// Guided attempts draft a narrow epoch: the guidance concentrates the
	// budget on states tracking the candidate path, and a wide draft
	// force-steps off-path states the sequential loop would leave parked,
	// multiplying steps-to-detection by the width. Width 4 keeps the
	// epoch engine's detections aligned with the sequential engine on the
	// bundled apps while still overlapping four quanta per epoch. (Pure
	// exploration keeps the wider default — breadth is the point there.)
	opts.EpochWidth = GuidedEpochWidth
	opts.Timeout = cfg.PerCandidateTimeout
	if cfg.PerCandidateMaxSteps > 0 {
		opts.MaxSteps = cfg.PerCandidateMaxSteps
	}
	if cfg.MaxStates > 0 {
		opts.MaxStates = cfg.MaxStates
	}
	// The verify span rides into the executor through the context, so
	// progress snapshots attach to this candidate's span. In parallel
	// runs every worker derives its context from the pipeline root, so
	// the concurrent verify spans all nest under it deterministically.
	ctx, vspan := obs.StartSpan(ctx, "verify", obs.A("rank", rank), obs.A("path_len", cand.Len()))
	obs.Progress(ctx, obs.A("phase", "verify"), obs.A("rank", rank),
		obs.A("path_len", cand.Len()))
	runStart := time.Now()
	ex := symexec.New(prog, cfg.Spec, opts)
	res := ex.RunContext(ctx)
	out := CandidateOutcome{
		Index:          rank,
		PathLen:        cand.Len(),
		Found:          res.Found(),
		Paths:          res.Paths,
		Steps:          res.Steps,
		Suspends:       int(g.Suspends.Load()),
		Matches:        int(g.Matches.Load()),
		Elapsed:        res.Elapsed,
		Cancelled:      res.Cancelled,
		SolverChecks:   res.SolverChecks,
		CacheHits:      res.CacheHits,
		CacheMisses:    res.CacheMisses,
		CacheFastSat:   res.CacheFastSat,
		CacheFastUnsat: res.CacheFastUnsat,
		SolverTime:     res.SolverTime,
		SummaryCalls:   res.SummaryCalls,
		SummaryPaths:   res.SummaryPaths,
		HavocCalls:     res.HavocCalls,
		DepthExhausted: res.DepthExhausted,
	}
	var vuln *symexec.Vulnerability
	if res.Found() {
		vuln = res.Vulns[0]
	} else {
		// Candidate abandoned: either the guided frontier died out
		// (infeasible candidate) or a resource bound hit. A cancelled
		// attempt is neither — it simply never finished.
		out.Infeasible = !res.Cancelled &&
			(res.TimedOut || res.Exhausted || res.StepLimited || res.SuspendedAtEnd > 0)
		if !res.Cancelled {
			// One-line warning so logs distinguish budget exhaustion
			// (timeout / step / state limits) from τ-divergence.
			obs.Warn(ctx, "candidate abandoned",
				obs.A("rank", rank), obs.A("reason", abandonReason(res)),
				obs.A("steps", res.Steps), obs.A("paths", res.Paths))
		}
	}
	if o := obs.FromContext(ctx); o != nil {
		m := o.Metrics
		m.Counter(obs.MetricCandidateAttempts).Inc()
		if vuln != nil {
			m.Counter(obs.MetricCandidateFound).Inc()
		} else if out.Infeasible {
			m.Counter(obs.MetricCandidateInfeasible).Inc()
		}
	}
	// The aggregated solver effort renders as a synthetic child span: its
	// duration is the candidate's accumulated solver wall time, not one
	// contiguous interval.
	vspan.EmitChild("solver", runStart, res.SolverTime,
		obs.A("checks", res.SolverChecks), obs.A("sat", res.SolverSat),
		obs.A("unsat", res.SolverUnsat), obs.A("unknown", res.SolverUnknowns),
		obs.A("cache_hits", res.CacheHits), obs.A("cache_misses", res.CacheMisses),
		obs.A("cache_fast_sat", res.CacheFastSat), obs.A("cache_fast_unsat", res.CacheFastUnsat))
	vspan.End(obs.A("rank", rank), obs.A("outcome", out.Label()),
		obs.A("paths", out.Paths), obs.A("steps", out.Steps))
	return out, vuln
}

// abandonReason classifies why an attempt stopped without a verified
// vulnerability: the three budget exhaustions are distinguishable from
// τ-divergence (the guided frontier suspended or died out) in event logs.
func abandonReason(res *symexec.Result) string {
	switch {
	case res.TimedOut:
		return "per-candidate-timeout"
	case res.StepLimited:
		return "max-steps"
	case res.Exhausted:
		return "max-states"
	case res.SuspendedAtEnd > 0:
		return "tau-divergence"
	default:
		return "frontier-exhausted"
	}
}

// RunPure executes the pure-symbolic-execution baseline (unmodified KLEE in
// the paper's Table IV) with the same input spec and resource bounds.
func RunPure(prog *bytecode.Program, spec *symexec.InputSpec, maxStates int, maxSteps int64, timeout time.Duration) *symexec.Result {
	return RunPureContext(context.Background(), prog, spec, maxStates, maxSteps, timeout)
}

// RunPureContext is RunPure under a context (cancellation stops the
// baseline the same way it stops guided attempts).
func RunPureContext(ctx context.Context, prog *bytecode.Program, spec *symexec.InputSpec, maxStates int, maxSteps int64, timeout time.Duration) *symexec.Result {
	return RunPureWorkers(ctx, prog, spec, maxStates, maxSteps, timeout, 0)
}

// RunPureWorkers is RunPureContext with an in-run frontier worker count
// (0: sequential engine; >= 1: the deterministic epoch engine).
func RunPureWorkers(ctx context.Context, prog *bytecode.Program, spec *symexec.InputSpec, maxStates int, maxSteps int64, timeout time.Duration, workers int) *symexec.Result {
	opts := symexec.DefaultOptions()
	opts.Sched = symexec.NewBFS()
	if maxStates > 0 {
		opts.MaxStates = maxStates
	}
	if maxSteps > 0 {
		opts.MaxSteps = maxSteps
	}
	opts.Timeout = timeout
	opts.Workers = workers
	ex := symexec.New(prog, spec, opts)
	return ex.RunContext(ctx)
}
