package core

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/bytecode"
	"repro/internal/pathid"
	"repro/internal/symexec"
)

// Parallel candidate verification (modeled on monitor.CollectCorpusParallel).
//
// The Fig. 5 loop verifies ranked candidate paths one at a time; the
// attempts are independent symbolic executions (each builds its own
// executor, solver, and guidance state over the shared read-only program),
// so they parallelize like the monitor's corpus collection does. The
// engine preserves the sequential loop's semantics exactly:
//
//   - candidates are dispatched to a bounded worker pool in rank order;
//   - when the candidate at rank r verifies the vulnerability, every
//     higher-ranked sibling (rank > r) is cancelled — they could only be
//     reached after a rank-r failure, which now cannot happen. Candidates
//     ranked below r keep running: one of them may succeed at an even
//     lower rank, which is the answer the sequential loop would give;
//   - outcomes merge in rank order up to and including the lowest
//     successful rank, so Report.Candidates, CandidateUsed, TotalPaths,
//     and TotalSteps are byte-identical to a sequential run whenever the
//     per-candidate budgets are deterministic (step/state bounds).
//     Wall-clock budgets remain timing-dependent, in parallel and
//     sequential runs alike;
//   - a caller cancellation mirrors the sequential loop's accounting:
//     the lowest-ranked attempt caught mid-flight is recorded with its
//     partial counters (Cancelled=true) and everything after it is
//     discarded — see mergeAttempts.

// verifyCandidatesParallel verifies cands concurrently and merges the
// outcomes into rep deterministically. Invoked by RunContext when
// cfg.Parallel > 1.
func verifyCandidatesParallel(ctx context.Context, prog *bytecode.Program, cands []*pathid.CandidatePath, cfg Config, rep *Report) {
	workers := cfg.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cands) {
		workers = len(cands)
	}

	attempts := make([]attempt, len(cands))
	ctxs := make([]context.Context, len(cands))
	cancels := make([]context.CancelFunc, len(cands))
	for i := range cands {
		ctxs[i], cancels[i] = context.WithCancel(ctx)
	}
	defer func() {
		for _, cancel := range cancels {
			cancel()
		}
	}()

	// winner is the lowest successful 1-based rank so far (0: none).
	var mu sync.Mutex
	winner := 0
	noteSuccess := func(rank int) {
		mu.Lock()
		defer mu.Unlock()
		if winner != 0 && winner <= rank {
			return
		}
		winner = rank
		// First-success cancel: siblings at rank > winner are pointless.
		for i := rank; i < len(cancels); i++ {
			cancels[i]()
		}
	}
	beyondWinner := func(rank int) bool {
		mu.Lock()
		defer mu.Unlock()
		return winner != 0 && rank > winner
	}

	indices := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				rank := i + 1
				if beyondWinner(rank) || ctxs[i].Err() != nil {
					continue
				}
				outcome, vuln := VerifyCandidateCtx(ctxs[i], prog, cands[i], rank, cfg)
				attempts[i] = attempt{
					outcome:  outcome,
					vuln:     vuln,
					complete: !outcome.Cancelled,
				}
				if vuln != nil {
					noteSuccess(rank)
				}
			}
		}()
	}
	for i := range cands {
		indices <- i
	}
	close(indices)
	wg.Wait()

	mergeAttempts(rep, attempts)
}

// attempt records one candidate verification for the rank-order merge.
type attempt struct {
	outcome  CandidateOutcome
	vuln     *symexec.Vulnerability
	complete bool // ran to its own stop condition, not cancelled/skipped
}

// started reports whether the attempt actually ran (a zero attempt is a
// rank that was skipped before starting — beyond the winner, or after the
// caller's context died).
func (a *attempt) started() bool { return a.outcome.Index != 0 }

// mergeAttempts replays the sequential loop over the recorded attempts so
// the merged report is deterministic and rank-ordered:
//
//   - complete attempts accumulate in rank order up to and including the
//     first success, exactly like the Fig. 5 loop;
//   - ranks past the first success are discarded — the sequential loop
//     never runs them, so their counters (including any partial work done
//     before the first-success cancel reached them) must not leak into
//     TotalPaths/TotalSteps;
//   - an incomplete attempt below the winner means the caller's context
//     died mid-flight. The sequential loop records that in-flight attempt
//     with its partial counters and Cancelled=true before stopping, so
//     the merge includes the first such attempt (and only the first: a
//     sequential run has exactly one attempt in flight when the cancel
//     lands) and stops there.
func mergeAttempts(rep *Report, attempts []attempt) {
	for i := range attempts {
		a := &attempts[i]
		if !a.complete {
			if a.started() && a.outcome.Cancelled {
				rep.addOutcome(a.outcome)
			}
			break
		}
		rep.addOutcome(a.outcome)
		if a.vuln != nil {
			rep.Vuln = a.vuln
			rep.CandidateUsed = i + 1
			break
		}
	}
}
