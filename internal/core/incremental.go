package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bytecode"
	"repro/internal/pathid"
	"repro/internal/solver/persist"
)

// IncrementalPlan describes what an incremental re-analysis will do before
// the pipeline runs: the function-set diff between the persistent cache's
// manifest and the freshly compiled program.
type IncrementalPlan struct {
	// Fresh reports that no usable prior manifest exists (first run, or
	// the directory is not a cache store yet): everything runs, nothing
	// is skipped.
	Fresh bool
	// Diff is the manifest-vs-program function diff (zero when Fresh).
	Diff persist.FnDiff
}

// PlanIncremental diffs the persistent cache at cacheDir against prog
// without mutating the store. A missing or not-yet-initialized directory
// yields a Fresh plan, not an error — the run simply starts cold.
func PlanIncremental(cacheDir string, prog *bytecode.Program) (*IncrementalPlan, error) {
	if !persist.IsStoreDir(cacheDir) {
		return &IncrementalPlan{Fresh: true}, nil
	}
	st, err := persist.Open(cacheDir)
	if err != nil {
		return nil, err
	}
	if p := st.Program(); p != "" && p != prog.Name {
		return nil, fmt.Errorf("core: cache dir %s belongs to program %q, not %q", cacheDir, p, prog.Name)
	}
	old := st.Fns()
	if len(old) == 0 {
		return &IncrementalPlan{Fresh: true}, nil
	}
	return &IncrementalPlan{Diff: persist.DiffFns(old, persist.FnsOf(prog))}, nil
}

// Describe renders the plan as a one-line human summary for CLI output.
func (p *IncrementalPlan) Describe() string {
	if p.Fresh {
		return "incremental: no prior manifest, full run"
	}
	d := p.Diff
	if !d.HasChanges() {
		return fmt.Sprintf("incremental: no function changes (%d unchanged, %d renamed), full warm run",
			d.Unchanged, d.Renamed)
	}
	dirty := append([]string(nil), d.Dirty...)
	sort.Strings(dirty)
	const show = 5
	list := dirty
	more := ""
	if len(list) > show {
		more = fmt.Sprintf(" (+%d more)", len(list)-show)
		list = list[:show]
	}
	return fmt.Sprintf("incremental: %d dirty, %d removed, %d unchanged; re-running candidates crossing [%s]%s",
		len(d.Dirty), len(d.Removed), d.Unchanged, strings.Join(list, " "), more)
}

// filterCandidatesByDirty keeps candidates whose path crosses at least one
// dirty function and drops the rest: verdicts along unchanged-only paths
// were produced (and persisted) by the run that wrote the manifest, so only
// the delta needs re-verification. Returns the kept slice in original rank
// order plus the skipped count.
func filterCandidatesByDirty(cands []*pathid.CandidatePath, dirty []string) ([]*pathid.CandidatePath, int) {
	if len(dirty) == 0 {
		return cands, 0
	}
	dirtySet := make(map[string]bool, len(dirty))
	for _, name := range dirty {
		dirtySet[name] = true
	}
	kept := cands[:0:0]
	for _, c := range cands {
		if candidateCrosses(c, dirtySet) {
			kept = append(kept, c)
		}
	}
	return kept, len(cands) - len(kept)
}

// candidateCrosses reports whether any node of the candidate path sits in
// one of the named functions.
func candidateCrosses(c *pathid.CandidatePath, fns map[string]bool) bool {
	for i := range c.Nodes {
		if fns[c.Nodes[i].Loc.Func] {
			return true
		}
	}
	return false
}
