package core

import (
	"testing"

	"repro/internal/apps"
	corpusstore "repro/internal/corpus"
	"repro/internal/workload"
)

// TestStorePipelineDifferential pins the store-backed pipeline against the
// in-memory one end to end: collect the same corpus both ways (in memory
// and spilled to a segmented store), run RunContext and RunStoreContext,
// and require identical reports — statistics, candidate outcomes, and the
// verified vulnerable path — modulo wall-clock fields. Two apps cover the
// found (polymorph) and first-candidate-infeasible (thttpd) shapes; the
// five-app statistical differential lives in internal/corpus.
func TestStorePipelineDifferential(t *testing.T) {
	for _, name := range []string{"polymorph", "thttpd"} {
		t.Run(name, func(t *testing.T) {
			app, err := apps.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			opts := workload.Options{SampleRate: 0.3, Seed: 1}
			corpus, err := workload.BuildCorpus(app, opts)
			if err != nil {
				t.Fatal(err)
			}
			store, err := corpusstore.Create(t.TempDir(), app.Name)
			if err != nil {
				t.Fatal(err)
			}
			// Tiny segments so the streaming path crosses real block and
			// segment boundaries, not one big buffer.
			wopts := corpusstore.Options{BlockBytes: 4 << 10, SegmentBytes: 32 << 10}
			if err := workload.BuildCorpusStoreCtx(t.Context(), app, opts, store, wopts); err != nil {
				t.Fatal(err)
			}
			if store.TotalRuns() != len(corpus.Runs) {
				t.Fatalf("store holds %d runs, in-memory corpus %d", store.TotalRuns(), len(corpus.Runs))
			}

			cfg := Config{Spec: app.Spec}
			ref, err := Run(app.Program(), corpus, cfg)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := RunStore(app.Program(), store, cfg)
			if err != nil {
				t.Fatal(err)
			}

			if rep.Runs != ref.Runs || rep.Locations != ref.Locations || rep.Variables != ref.Variables {
				t.Errorf("corpus stats diverged: store (%d,%d,%d), memory (%d,%d,%d)",
					rep.Runs, rep.Locations, rep.Variables, ref.Runs, ref.Locations, ref.Variables)
			}
			if len(rep.Analysis.Predicates) != len(ref.Analysis.Predicates) {
				t.Fatalf("predicate count: store %d, memory %d",
					len(rep.Analysis.Predicates), len(ref.Analysis.Predicates))
			}
			for i, p := range ref.Analysis.Predicates {
				q := rep.Analysis.Predicates[i]
				if *q != *p {
					t.Errorf("predicate %d diverged:\n  store  %+v\n  memory %+v", i, *q, *p)
				}
			}
			if rep.Found() != ref.Found() || rep.CandidateUsed != ref.CandidateUsed {
				t.Fatalf("store: found=%v used=%d, memory: found=%v used=%d",
					rep.Found(), rep.CandidateUsed, ref.Found(), ref.CandidateUsed)
			}
			if ref.Found() {
				if rep.Vuln.Func != ref.Vuln.Func || rep.Vuln.Kind != ref.Vuln.Kind || rep.Vuln.Pos != ref.Vuln.Pos {
					t.Errorf("vulnerability diverged: store %s in %s at %s, memory %s in %s at %s",
						rep.Vuln.Kind, rep.Vuln.Func, rep.Vuln.Pos,
						ref.Vuln.Kind, ref.Vuln.Func, ref.Vuln.Pos)
				}
			}
			if rep.TotalPaths != ref.TotalPaths || rep.TotalSteps != ref.TotalSteps {
				t.Errorf("totals diverged: store (%d paths, %d steps), memory (%d paths, %d steps)",
					rep.TotalPaths, rep.TotalSteps, ref.TotalPaths, ref.TotalSteps)
			}
			if len(rep.Candidates) != len(ref.Candidates) {
				t.Fatalf("attempted candidates: store %d, memory %d", len(rep.Candidates), len(ref.Candidates))
			}
			for i := range ref.Candidates {
				a, b := ref.Candidates[i], rep.Candidates[i]
				a.Elapsed, b.Elapsed = 0, 0
				a.SolverTime, b.SolverTime = 0, 0
				if a != b {
					t.Errorf("candidate %d outcome diverged:\n  memory %+v\n  store  %+v", i+1, a, b)
				}
			}
		})
	}
}
