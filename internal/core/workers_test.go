package core

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/workload"
)

// TestParallelFrontierDifferential pins the epoch engine's pipeline-level
// determinism contract on every evaluation workload: with Workers=1 and
// Workers=4 the report's counters, per-candidate outcomes, and the
// verified vulnerable path must be identical (the engine's results depend
// on EpochWidth, never on the worker count).
func TestParallelFrontierDifferential(t *testing.T) {
	for _, name := range []string{"polymorph", "ctree", "thttpd", "grep", "msgtool"} {
		t.Run(name, func(t *testing.T) {
			app, err := apps.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			corpus, err := workload.BuildCorpus(app, workload.Options{SampleRate: 0.3, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			var ref *Report
			for _, workers := range []int{1, 4} {
				cfg := Config{Spec: app.Spec, Workers: workers}
				rep, err := Run(app.Program(), corpus, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if ref == nil {
					ref = rep
					continue
				}
				if rep.Found() != ref.Found() || rep.CandidateUsed != ref.CandidateUsed {
					t.Fatalf("workers=4: found=%v used=%d, want found=%v used=%d",
						rep.Found(), rep.CandidateUsed, ref.Found(), ref.CandidateUsed)
				}
				if ref.Found() {
					if rep.Vuln.Func != ref.Vuln.Func || rep.Vuln.Kind != ref.Vuln.Kind || rep.Vuln.Pos != ref.Vuln.Pos {
						t.Errorf("vulnerability diverged: workers=1 %s in %s at %s, workers=4 %s in %s at %s",
							ref.Vuln.Kind, ref.Vuln.Func, ref.Vuln.Pos,
							rep.Vuln.Kind, rep.Vuln.Func, rep.Vuln.Pos)
					}
					if len(rep.Vuln.Path) != len(ref.Vuln.Path) {
						t.Errorf("verified path length diverged: workers=1 %d, workers=4 %d",
							len(ref.Vuln.Path), len(rep.Vuln.Path))
					} else {
						for i := range ref.Vuln.Path {
							if rep.Vuln.Path[i] != ref.Vuln.Path[i] {
								t.Errorf("verified path node %d diverged: workers=1 %s, workers=4 %s",
									i, ref.Vuln.Path[i], rep.Vuln.Path[i])
							}
						}
					}
				}
				if rep.TotalPaths != ref.TotalPaths || rep.TotalSteps != ref.TotalSteps {
					t.Errorf("totals diverged: workers=1 (%d paths, %d steps), workers=4 (%d paths, %d steps)",
						ref.TotalPaths, ref.TotalSteps, rep.TotalPaths, rep.TotalSteps)
				}
				if len(rep.Candidates) != len(ref.Candidates) {
					t.Fatalf("attempted candidates: workers=1 %d, workers=4 %d",
						len(ref.Candidates), len(rep.Candidates))
				}
				for i := range ref.Candidates {
					a, b := ref.Candidates[i], rep.Candidates[i]
					a.Elapsed, b.Elapsed = 0, 0
					a.SolverTime, b.SolverTime = 0, 0
					if a != b {
						t.Errorf("candidate %d outcome diverged:\n  workers=1 %+v\n  workers=4 %+v", i+1, a, b)
					}
				}
			}
		})
	}
}

// TestParallelFrontierComposesWithCandidates: in-candidate workers compose
// with cross-candidate parallelism — the combined mode must reproduce the
// epoch engine's sequential-verifier report exactly (effectiveWorkers
// divides the budget, and the engine is worker-count-invariant).
func TestParallelFrontierComposesWithCandidates(t *testing.T) {
	app, err := apps.Get("thttpd") // >1 candidate: rank 1 infeasible, rank 2 wins
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := workload.BuildCorpus(app, workload.Options{SampleRate: 0.3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var ref *Report
	for _, cfg := range []Config{
		{Spec: app.Spec, Workers: 2},
		{Spec: app.Spec, Workers: 2, Parallel: 2},
		{Spec: app.Spec, Workers: 4, Parallel: 2},
	} {
		rep, err := Run(app.Program(), corpus, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = rep
			continue
		}
		if rep.Found() != ref.Found() || rep.CandidateUsed != ref.CandidateUsed ||
			rep.TotalPaths != ref.TotalPaths || rep.TotalSteps != ref.TotalSteps {
			t.Errorf("workers=%d parallel=%d diverged: found=%v used=%d paths=%d steps=%d, want found=%v used=%d paths=%d steps=%d",
				cfg.Workers, cfg.Parallel, rep.Found(), rep.CandidateUsed, rep.TotalPaths, rep.TotalSteps,
				ref.Found(), ref.CandidateUsed, ref.TotalPaths, ref.TotalSteps)
		}
		if len(rep.Candidates) != len(ref.Candidates) {
			t.Fatalf("workers=%d parallel=%d: %d candidates, want %d",
				cfg.Workers, cfg.Parallel, len(rep.Candidates), len(ref.Candidates))
		}
		for i := range ref.Candidates {
			a, b := ref.Candidates[i], rep.Candidates[i]
			a.Elapsed, b.Elapsed = 0, 0
			a.SolverTime, b.SolverTime = 0, 0
			if a != b {
				t.Errorf("workers=%d parallel=%d candidate %d diverged:\n  reference %+v\n  got       %+v",
					cfg.Workers, cfg.Parallel, i+1, a, b)
			}
		}
	}
}
