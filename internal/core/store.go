package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/bytecode"
	"repro/internal/corpus"
	"repro/internal/obs"
	"repro/internal/pathid"
	"repro/internal/stats"
)

// RunStore executes the StatSym pipeline over an on-disk segmented corpus
// store instead of an in-memory corpus. See RunStoreContext.
func RunStore(prog *bytecode.Program, store *corpus.Store, cfg Config) (*Report, error) {
	return RunStoreContext(context.Background(), prog, store, cfg)
}

// RunStoreContext is RunContext with the statistical front-end streaming
// straight off the corpus store: predicate construction and transition
// mining each make one bounded-memory pass over the segments (block
// buffer + value sketches + transition counters, never the corpus), and
// produce byte-identical Analysis and candidate output to the in-memory
// path — so everything downstream, including the final Report modulo
// timings, is identical too. Report.LogBytes is the store's on-disk
// (compressed) size here, the store-path analogue of the in-memory
// corpus's serialized size.
func RunStoreContext(ctx context.Context, prog *bytecode.Program, store *corpus.Store, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := &Report{Program: prog.Name}
	if store.Obs == nil {
		store.Obs = obs.FromContext(ctx)
	}
	var err error
	rep.Runs, rep.Locations, rep.Variables, err = store.Counts()
	if err != nil {
		return rep, fmt.Errorf("core: corpus store: %w", err)
	}
	rep.LogBytes = int(store.TotalBytes())

	if obs.SpanFromContext(ctx) == nil {
		var pspan *obs.Span
		ctx, pspan = obs.StartSpan(ctx, "pipeline", obs.A("program", prog.Name), obs.A("store", store.Dir()))
		defer func() {
			pspan.End(obs.A("found", rep.Found()), obs.A("cancelled", rep.Cancelled),
				obs.A("paths", rep.TotalPaths), obs.A("steps", rep.TotalSteps))
		}()
	}

	// Statistical analysis module: two streaming passes over the store
	// (predicates, then transitions). Each pass decodes one block at a
	// time; the passes share nothing but the segment files.
	statStart := time.Now()
	_, aspan := obs.StartSpan(ctx, "stats", obs.A("streaming", true))
	it := store.Iter()
	rep.Analysis, err = stats.AnalyzeStream(ctx, it, cfg.Stream)
	it.Close()
	if err != nil {
		aspan.End(obs.A("error", err.Error()))
		return rep, fmt.Errorf("core: streaming analysis: %w", err)
	}
	aspan.End(obs.A("predicates", len(rep.Analysis.Predicates)))
	obs.Progress(ctx, obs.A("phase", "stats"),
		obs.A("predicates", len(rep.Analysis.Predicates)))

	_, cspan := obs.StartSpan(ctx, "candidates", obs.A("streaming", true))
	git := store.Iter()
	pres, err := pathid.BuildStream(git, rep.Analysis, cfg.Path)
	git.Close()
	rep.StatTime = time.Since(statStart)
	if err != nil {
		cspan.End(obs.A("error", err.Error()))
		return rep, fmt.Errorf("core: candidate path construction: %w", err)
	}
	cspan.End(obs.A("candidates", len(pres.Candidates)), obs.A("detours", len(pres.Detours)))
	obs.Progress(ctx, obs.A("phase", "candidates"),
		obs.A("candidates", len(pres.Candidates)), obs.A("detours", len(pres.Detours)))
	rep.PathRes = pres

	if err := runSymPhase(ctx, prog, cfg, rep); err != nil {
		return rep, err
	}
	return rep, nil
}
