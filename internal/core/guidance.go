// Package core is StatSym itself: the integration of statistical inference
// and symbolic execution (§IV–§VI of the paper). It contains
//
//   - the StatSym state manager and scheduler, realized as a guidance hook
//     and a priority scheduler over the symbolic executor: states are
//     prioritized by how closely they follow the current candidate
//     vulnerable path (fewer diverted hops first), predicate constraints
//     are applied at matching path nodes (intra-function search), and
//     states that deviate beyond the hop threshold τ or that conflict with
//     the predicates are suspended — explored only when nothing better
//     remains, so the worst case degenerates to pure symbolic execution
//     (footnote 1);
//   - the end-to-end pipeline of Fig. 5: preprocess logs, construct and
//     rank predicates, build candidate paths, and drive statistics-guided
//     symbolic execution candidate-by-candidate until the vulnerable path
//     is verified.
package core

import (
	"container/heap"
	"sync/atomic"

	"repro/internal/pathid"
	"repro/internal/solver"
	"repro/internal/stats"
	"repro/internal/symexec"
	"repro/internal/trace"
)

// DefaultTau is the paper's default hop-divergence threshold (§VII-A).
const DefaultTau = 10

// DefaultMinPredScore is the minimum confidence score for a predicate to
// be used as an intra-function gate.
const DefaultMinPredScore = 0.5

// GuidedEpochWidth is the epoch draft width for guided attempts under the
// parallel frontier engine (symexec.Options.EpochWidth). Guided search
// wants a narrow draft — see VerifyCandidateCtx.
const GuidedEpochWidth = 4

// Guidance is StatSym's state-manager logic for one candidate path. Wire
// Hook into symexec.Options.Hook and NewGuidedScheduler into Options.Sched.
type Guidance struct {
	// Path is the candidate vulnerable path being verified.
	Path *pathid.CandidatePath
	// Tau is the allowed hop divergence from the candidate path (τ).
	Tau int
	// MinPredScore gates which predicates become solver constraints.
	MinPredScore float64

	// DisableInter turns off inter-function guidance (hop counting and
	// suspension); DisablePredicates turns off intra-function predicate
	// gating. Both exist for the ablation benchmarks (§V-C separates the
	// two mechanisms).
	DisableInter      bool
	DisablePredicates bool

	// Counters for reporting. Atomic because under the parallel frontier
	// engine the hook fires concurrently on worker goroutines; the totals
	// are order-independent sums over a deterministic set of quanta, so the
	// final values stay deterministic.
	Matches    atomic.Int64
	Suspends   atomic.Int64
	PredApply  atomic.Int64
	PredReject atomic.Int64

	// onPath is the set of candidate-path locations: crossing one of them
	// out of order (e.g. a function re-entered by a loop) is neutral, not
	// a diverted hop — only genuinely off-path locations count against τ.
	onPath map[trace.Location]bool
}

// NewGuidance returns guidance for a candidate path with paper defaults.
func NewGuidance(path *pathid.CandidatePath) *Guidance {
	g := &Guidance{Path: path, Tau: DefaultTau, MinPredScore: DefaultMinPredScore}
	g.onPath = make(map[trace.Location]bool, len(path.Nodes))
	for _, n := range path.Nodes {
		g.onPath[n.Loc] = true
	}
	return g
}

// Hook implements symexec.LocationHook — the StatSym State Manager's
// per-location decision (§VI-C): match against the candidate path
// (inter-function search), apply the node's predicate constraints
// (intra-function search), count diverted hops, and suspend beyond τ.
func (g *Guidance) Hook(ex *symexec.Executor, st *symexec.State, loc trace.Location, view *symexec.VarView) symexec.HookDecision {
	if st.Revived {
		// Revived states run unguided; the search has degenerated to pure
		// symbolic execution for them.
		return symexec.HookContinue
	}
	nodes := g.Path.Nodes
	// Forward-scan matching: the next crossing of any upcoming candidate
	// node advances the cursor there. Candidate nodes the execution never
	// crosses (e.g. an optional-branch detour the current path skips) are
	// jumped over rather than stalling the cursor, so later predicates
	// still gate the search.
	match := -1
	for j := st.PathIndex; j < len(nodes); j++ {
		if nodes[j].Loc == loc {
			match = j
			break
		}
	}
	if match >= 0 {
		node := nodes[match]
		st.PathIndex = match + 1
		st.Diverted = 0
		g.Matches.Add(1)
		if !g.DisablePredicates && node.Pred != nil && node.Pred.Score >= g.MinPredScore {
			switch g.applyPredicate(ex, st, node.Pred, view) {
			case predConflict:
				g.Suspends.Add(1)
				g.PredReject.Add(1)
				return symexec.HookSuspend
			case predApplied:
				g.PredApply.Add(1)
			}
		}
		return symexec.HookContinue
	}
	if g.DisableInter {
		return symexec.HookContinue
	}
	if g.onPath[loc] {
		// A candidate-path location crossed out of order (loops, repeated
		// calls): neutral with respect to the hop budget.
		return symexec.HookContinue
	}
	// Off-path hop.
	st.Diverted++
	if st.Diverted > g.Tau {
		g.Suspends.Add(1)
		return symexec.HookSuspend
	}
	return symexec.HookContinue
}

type predOutcome int

const (
	predSkipped predOutcome = iota
	predApplied
	predConflict
)

// applyPredicate converts a statistical predicate into constraints over
// the state's live values and adds them if consistent; reports a conflict
// when the state's path condition (or concrete values) contradict it.
func (g *Guidance) applyPredicate(ex *symexec.Executor, st *symexec.State, p *stats.Predicate, view *symexec.VarView) predOutcome {
	if p.Op == stats.PredNever {
		// "< -infinity" predicates mark locations vulnerable paths never
		// reach; they carry no constraint.
		return predSkipped
	}
	val, ok := resolveVar(p, view)
	if !ok {
		return predSkipped
	}
	cons, concrete, holds := predicateConstraints(p, val)
	if concrete {
		if holds {
			return predSkipped
		}
		return predConflict
	}
	if len(cons) == 0 {
		return predSkipped
	}
	if !ex.TryAddConstraints(st, cons) {
		return predConflict
	}
	return predApplied
}

// resolveVar finds the runtime value the predicate's variable denotes at
// the current location.
func resolveVar(p *stats.Predicate, view *symexec.VarView) (symexec.Value, bool) {
	switch p.Class {
	case trace.ClassParam:
		return view.Param(p.Var)
	case trace.ClassGlobal:
		return view.Global(p.Var)
	case trace.ClassReturn:
		return view.Return()
	default:
		return symexec.Value{}, false
	}
}

// predicateConstraints translates a threshold predicate into solver
// constraints over a symbolic value. For concrete values it evaluates
// directly (concrete=true, holds reports the outcome).
func predicateConstraints(p *stats.Predicate, val symexec.Value) (cons []solver.Constraint, concrete, holds bool) {
	k := p.IntThreshold()
	var expr solver.LinExpr
	switch val.Kind {
	case symexec.KindInt:
		if val.IsCond {
			return nil, false, false
		}
		expr = val.Lin
	case symexec.KindString:
		// The numeric transform analyzed string lengths, so the predicate
		// constrains len(value).
		expr = val.Str.LenExpr()
	default:
		return nil, false, false
	}
	if expr.IsConst() {
		v := expr.Const
		if p.Op == stats.PredGe {
			return nil, true, v >= k
		}
		return nil, true, v <= k
	}
	if p.Op == stats.PredGe {
		return []solver.Constraint{solver.Ge(expr, solver.ConstExpr(k))}, false, false
	}
	return []solver.Constraint{solver.Le(expr, solver.ConstExpr(k))}, false, false
}

// GuidedScheduler is the StatSym State Scheduler (§VI-C): a priority queue
// that gives states with fewer diverted hops higher priority; among equal
// divergence the most recently created state runs first, so the search
// chases the candidate path depth-first instead of flooding breadth-first.
type GuidedScheduler struct {
	h guidedHeap
}

// NewGuidedScheduler returns an empty guided scheduler.
func NewGuidedScheduler() *GuidedScheduler { return &GuidedScheduler{} }

// Name implements symexec.Scheduler.
func (s *GuidedScheduler) Name() string { return "statsym-guided" }

// Add implements symexec.Scheduler.
func (s *GuidedScheduler) Add(st *symexec.State) { heap.Push(&s.h, st) }

// Next implements symexec.Scheduler.
func (s *GuidedScheduler) Next() *symexec.State {
	if s.h.Len() == 0 {
		return nil
	}
	return heap.Pop(&s.h).(*symexec.State)
}

// Len implements symexec.Scheduler.
func (s *GuidedScheduler) Len() int { return s.h.Len() }

type guidedHeap []*symexec.State

func (h guidedHeap) Len() int { return len(h) }

func (h guidedHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	// Primary: fewer diverted hops. Secondary: further along the candidate
	// path. Tertiary: newer state first (depth-first chase).
	if a.Diverted != b.Diverted {
		return a.Diverted < b.Diverted
	}
	if a.PathIndex != b.PathIndex {
		return a.PathIndex > b.PathIndex
	}
	return a.Seq() > b.Seq()
}

func (h guidedHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *guidedHeap) Push(x any) { *h = append(*h, x.(*symexec.State)) }

func (h *guidedHeap) Pop() any {
	old := *h
	n := len(old)
	st := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return st
}

// Interface compliance.
var _ symexec.Scheduler = (*GuidedScheduler)(nil)
