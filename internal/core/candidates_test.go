package core

import (
	"testing"

	"repro/internal/bytecode"
	"repro/internal/pathid"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"

	"repro/internal/apps"
)

// TestInfeasibleCandidateThenGood reproduces the thttpd §VII-C2 story in
// miniature: the first candidate path is infeasible (its node order cannot
// occur), the verification loop marks it as such within its budget, and
// the second (correct) candidate verifies the vulnerability.
func TestInfeasibleCandidateThenGood(t *testing.T) {
	src := `
func stage_a(int x) int { return x + 1; }
func stage_b(int x) int {
  buf b[8];
  int i = 0;
  while (i < x) {
    bufwrite(b, i, i);
    i = i + 1;
  }
  return i;
}
func main() int {
  int x = input_int("x");
  if (x < 0) { return 0; }
  if (x > 40) { return 0; }
  stage_a(x);
  stage_b(x);
  return 0;
}`
	prog := bytecode.MustCompile("twostage", src)
	loc := func(f string, k trace.EventKind) trace.Location {
		return trace.Location{Func: f, Kind: k}
	}
	pred := &stats.Predicate{
		Loc: loc("stage_b", trace.EventEnter), Var: "x",
		Class: trace.ClassParam, Op: stats.PredGe, Threshold: 8.5, Score: 1.0,
	}
	// Candidate 1 is impossible: it demands stage_b before stage_a, and a
	// predicate that the never-reached cursor would have applied. With a
	// modest per-candidate budget it is abandoned.
	bad := &pathid.CandidatePath{Nodes: []pathid.PathNode{
		{Loc: loc("main", trace.EventEnter)},
		{Loc: loc("stage_b", trace.EventLeave)},
		{Loc: loc("stage_b", trace.EventLeave)}, // unreachable twice
		{Loc: loc("stage_a", trace.EventEnter)},
	}}
	good := &pathid.CandidatePath{Nodes: []pathid.PathNode{
		{Loc: loc("main", trace.EventEnter)},
		{Loc: loc("stage_a", trace.EventEnter)},
		{Loc: loc("stage_b", trace.EventEnter), Pred: pred},
	}}
	cfg := Config{PerCandidateMaxSteps: 200_000}

	outBad, vulnBad := VerifyCandidate(prog, bad, cfg)
	outGood, vulnGood := VerifyCandidate(prog, good, cfg)

	// The bad candidate may or may not stumble onto the bug via fallback
	// (footnote 1 semantics); the good candidate must find it quickly
	// with the predicate applied.
	if vulnGood == nil {
		t.Fatalf("good candidate failed: %+v", outGood)
	}
	if outGood.Matches < 3 {
		t.Errorf("good candidate matched %d nodes, want 3", outGood.Matches)
	}
	if vulnGood.Witness.Ints["x"] < 8 {
		t.Errorf("witness x = %d, predicate not applied", vulnGood.Witness.Ints["x"])
	}
	if vulnBad == nil && !outBad.Infeasible {
		t.Errorf("bad candidate neither found nor marked infeasible: %+v", outBad)
	}
	if vulnGood != nil && outGood.Steps > outBad.Steps && vulnBad == nil {
		t.Errorf("good candidate (%d steps) cost more than abandoned bad one (%d)",
			outGood.Steps, outBad.Steps)
	}
}

// TestPipelineIteratesCandidates checks the candidate loop end to end: the
// report's CandidateUsed points at the candidate that actually succeeded,
// and earlier entries (if any) are marked non-found.
func TestPipelineIteratesCandidates(t *testing.T) {
	app, _ := apps.Get("thttpd")
	corpus, err := workload.BuildCorpus(app, workload.Options{SampleRate: 0.3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(app.Program(), corpus, Config{Spec: app.Spec})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Found() {
		t.Fatal("not found")
	}
	for i, c := range rep.Candidates {
		isLast := i == len(rep.Candidates)-1
		if isLast && !c.Found {
			t.Errorf("last attempted candidate not marked found")
		}
		if !isLast && c.Found {
			t.Errorf("non-final candidate %d marked found", i+1)
		}
	}
	if got := rep.Candidates[len(rep.Candidates)-1].Index; got != rep.CandidateUsed {
		t.Errorf("CandidateUsed = %d, last attempt = %d", rep.CandidateUsed, got)
	}
}
