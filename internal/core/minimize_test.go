package core

import (
	"testing"
	"testing/quick"

	"repro/internal/apps"
	"repro/internal/bytecode"
	"repro/internal/interp"
)

func TestMinimizeStringWitness(t *testing.T) {
	src := `
func vuln(string s) void {
  buf b[16];
  int i = 0;
  while (i < len(s)) { bufwrite(b, i, char(s, i)); i = i + 1; }
  return;
}
func main() int { vuln(input_string("p")); return 0; }`
	prog := bytecode.MustCompile("min", src)
	big := make([]byte, 500)
	for i := range big {
		big[i] = 'x'
	}
	witness := &interp.Input{Strs: map[string]string{"p": string(big)}}
	min, replays := MinimizeWitness(prog, witness, 0)
	// Minimal reproducer: 16 characters (index 16 hits the 16-cap buffer
	// via the in-loop write at i=16 requires len >= 17... the loop writes
	// while i < len, so the first OOB write happens at i=16, needing
	// len >= 17? No: i=16 < len requires len >= 17; but the copy of a
	// 16-char string writes indices 0..15 and stays in bounds, so the
	// minimum is 17.
	if got := len(min.Strs["p"]); got != 17 {
		t.Errorf("minimized length = %d, want 17 (replays=%d)", got, replays)
	}
	res, err := interp.Run(prog, min, interp.Config{})
	if err != nil || !res.Faulty() {
		t.Fatalf("minimized witness does not reproduce: %v %v", err, res)
	}
	if replays == 0 || replays > 64 {
		t.Errorf("replays = %d, expected a small positive count", replays)
	}
}

func TestMinimizeIntWitness(t *testing.T) {
	src := `
func f(int x) void {
  if (x >= 3) { assert(0); }
  return;
}
func main() int { f(input_int("x")); return 0; }`
	prog := bytecode.MustCompile("minint", src)
	witness := &interp.Input{Ints: map[string]int64{"x": 1 << 30}}
	min, _ := MinimizeWitness(prog, witness, 0)
	if min.Ints["x"] != 3 {
		t.Errorf("minimized x = %d, want 3", min.Ints["x"])
	}
}

func TestMinimizeNegativeInt(t *testing.T) {
	src := `
func main() int {
  int x = input_int("x");
  if (x <= -5) { assert(0); }
  return 0;
}`
	prog := bytecode.MustCompile("minneg", src)
	witness := &interp.Input{Ints: map[string]int64{"x": -100000}}
	min, _ := MinimizeWitness(prog, witness, 0)
	if min.Ints["x"] != -5 {
		t.Errorf("minimized x = %d, want -5", min.Ints["x"])
	}
}

func TestMinimizePreservesFaultSite(t *testing.T) {
	// Two bugs: shrinking the decode body must keep crashing in
	// unpack_payload, never drifting to pack_header.
	app, _ := apps.Get("msgtool")
	prog := app.Program()
	body := make([]byte, 199)
	for i := range body {
		body[i] = 'b'
	}
	witness := &interp.Input{
		Args: []string{"decode"},
		Strs: map[string]string{"body": string(body)},
	}
	min, _ := MinimizeWitness(prog, witness, 0)
	res, err := interp.Run(prog, min, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultFunc != "unpack_payload" {
		t.Errorf("minimized witness faults in %q, want unpack_payload", res.FaultFunc)
	}
	// unpack_payload writes a terminator at index len(body), so a 96-byte
	// body already overflows the 96-byte buffer.
	if got := len(min.Strs["body"]); got != 96 {
		t.Errorf("minimized body length = %d, want 96", got)
	}
}

func TestMinimizeNonReproducingWitness(t *testing.T) {
	prog := bytecode.MustCompile("ok", `func main() int { return 0; }`)
	witness := &interp.Input{Strs: map[string]string{"p": "xxx"}}
	min, replays := MinimizeWitness(prog, witness, 0)
	if replays != 0 {
		t.Errorf("replays = %d for non-reproducing witness", replays)
	}
	if min.Strs["p"] != "xxx" {
		t.Errorf("non-reproducing witness was modified")
	}
}

func TestMinimizeDoesNotMutateInput(t *testing.T) {
	src := `
func main() int {
  string s = input_string("s");
  if (len(s) > 4) { assert(0); }
  return 0;
}`
	prog := bytecode.MustCompile("imm", src)
	witness := &interp.Input{Strs: map[string]string{"s": "abcdefgh"}}
	MinimizeWitness(prog, witness, 0)
	if witness.Strs["s"] != "abcdefgh" {
		t.Errorf("original witness mutated: %q", witness.Strs["s"])
	}
}

// TestMinimizeProperty: for the threshold program, minimization always
// lands exactly on the threshold regardless of the starting value.
func TestMinimizeProperty(t *testing.T) {
	src := `
func main() int {
  string s = input_string("s");
  if (len(s) >= 10) { abort(); }
  return 0;
}`
	prog := bytecode.MustCompile("prop", src)
	f := func(extra uint8) bool {
		n := 10 + int(extra)
		payload := make([]byte, n)
		witness := &interp.Input{Strs: map[string]string{"s": string(payload)}}
		min, _ := MinimizeWitness(prog, witness, 0)
		return len(min.Strs["s"]) == 10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
