package core

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/apps"
	"repro/internal/pathid"
	"repro/internal/solver/persist"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestPersistColdWarmDifferential pins the persistent solver cache's
// correctness contract on every evaluation workload: a warm run served
// from disk — and a run over a deliberately corrupted store — must
// produce byte-identical detection digests to the cold run that filled
// it. The cache may only change how long detection takes.
func TestPersistColdWarmDifferential(t *testing.T) {
	for _, name := range []string{"polymorph", "ctree", "thttpd", "grep", "msgtool"} {
		t.Run(name, func(t *testing.T) {
			app, err := apps.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			corpus, err := workload.BuildCorpus(app, workload.Options{SampleRate: 0.3, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()

			cold, err := Run(app.Program(), corpus, Config{Spec: app.Spec, CacheDir: dir})
			if err != nil {
				t.Fatal(err)
			}
			refDigest := DetectionDigest(cold)
			if cold.PersistLoaded != 0 {
				t.Fatalf("cold run loaded %d entries from a fresh store", cold.PersistLoaded)
			}
			if cold.PersistSpilled == 0 {
				t.Fatal("cold run spilled nothing — warm start has nothing to work with")
			}

			warm, err := Run(app.Program(), corpus, Config{Spec: app.Spec, CacheDir: dir})
			if err != nil {
				t.Fatal(err)
			}
			if got := DetectionDigest(warm); got != refDigest {
				t.Errorf("warm digest diverged:\n--- cold ---\n%s--- warm ---\n%s", refDigest, got)
			}
			if warm.PersistLoaded == 0 {
				t.Error("warm run loaded nothing from the store")
			}
			if warm.PersistRejected != 0 {
				t.Errorf("warm run rejected %d entries from a clean store", warm.PersistRejected)
			}
			if cold.StatsCached {
				t.Error("cold run claims a stats-cache replay")
			}
			if !warm.StatsCached {
				t.Error("warm run did not replay the memoized stats phase")
			}

			// Poison the store on disk: flip a byte in the middle of every
			// sealed segment. Re-verification must reject the damage and the
			// run must fall back to solving — same digest, zero trust.
			segs, err := filepath.Glob(filepath.Join(dir, "*"+persist.SegmentSuffix))
			if err != nil || len(segs) == 0 {
				t.Fatalf("no sealed segments to corrupt (err=%v)", err)
			}
			for _, seg := range segs {
				blob, err := os.ReadFile(seg)
				if err != nil {
					t.Fatal(err)
				}
				blob[len(blob)/2] ^= 0xFF
				if err := os.WriteFile(seg, blob, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			poisoned, err := Run(app.Program(), corpus, Config{Spec: app.Spec, CacheDir: dir})
			if err != nil {
				t.Fatal(err)
			}
			if got := DetectionDigest(poisoned); got != refDigest {
				t.Errorf("poisoned-cache digest diverged:\n--- cold ---\n%s--- poisoned ---\n%s", refDigest, got)
			}
			// Every segment was damaged, so the full persisted set cannot
			// have loaded cleanly: either the damaged block rejected, or the
			// load aborted partway (blocks before the flip are intact —
			// partial warm start is fine, it only costs speed).
			total := cold.PersistSpilled + warm.PersistSpilled
			if poisoned.PersistLoaded >= total && poisoned.PersistRejected == 0 {
				t.Errorf("corrupted store served all %d entries with no rejections", poisoned.PersistLoaded)
			}
		})
	}
}

// TestStatsCacheFallbacks pins the memoized stats phase's degradation
// modes: a corrupted artifact falls back to derivation (digest intact), a
// different corpus misses (content-keyed, not provenance-keyed), and
// NeedGraph bypasses the memo so the transition graph is always built.
func TestStatsCacheFallbacks(t *testing.T) {
	app, err := apps.Get("polymorph")
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := workload.BuildCorpus(app, workload.Options{SampleRate: 0.3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cold, err := Run(app.Program(), corpus, Config{Spec: app.Spec, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	refDigest := DetectionDigest(cold)
	memo := filepath.Join(dir, "statscache.json")
	if _, err := os.Stat(memo); err != nil {
		t.Fatalf("cold run left no stats memo: %v", err)
	}

	// Corrupt the artifact: the warm run must derive instead of replay.
	if err := os.WriteFile(memo, []byte(`{"version":`), 0o644); err != nil {
		t.Fatal(err)
	}
	warm, err := Run(app.Program(), corpus, Config{Spec: app.Spec, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if warm.StatsCached {
		t.Error("corrupt stats memo was replayed")
	}
	if DetectionDigest(warm) != refDigest {
		t.Error("digest diverged after stats-memo corruption")
	}

	// A different corpus (different seed) must miss on content.
	other, err := workload.BuildCorpus(app, workload.Options{SampleRate: 0.3, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(app.Program(), other, Config{Spec: app.Spec, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if rep.StatsCached {
		t.Error("stats memo for a different corpus was replayed")
	}

	// NeedGraph: warm run with a matching memo still derives, and carries
	// the graph the memo cannot.
	if _, err := Run(app.Program(), other, Config{Spec: app.Spec, CacheDir: dir}); err != nil {
		t.Fatal(err) // reseed the memo for `other`
	}
	gr, err := Run(app.Program(), other, Config{Spec: app.Spec, CacheDir: dir, NeedGraph: true})
	if err != nil {
		t.Fatal(err)
	}
	if gr.StatsCached {
		t.Error("NeedGraph run replayed the memo")
	}
	if gr.PathRes.Graph == nil {
		t.Error("NeedGraph run carries no transition graph")
	}
}

// TestPersistIncrementalNoChanges: with -incremental semantics and an
// unchanged program, the plan reports no changes and the run is a full
// warm run — nothing skipped, digest intact.
func TestPersistIncrementalNoChanges(t *testing.T) {
	app, err := apps.Get("polymorph")
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := workload.BuildCorpus(app, workload.Options{SampleRate: 0.3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	plan, err := PlanIncremental(dir, app.Program())
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Fresh {
		t.Fatal("plan against an empty dir is not fresh")
	}

	cold, err := Run(app.Program(), corpus, Config{Spec: app.Spec, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}

	plan, err = PlanIncremental(dir, app.Program())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Fresh || plan.Diff.HasChanges() {
		t.Fatalf("unchanged program diffed as changed: %+v", plan.Diff)
	}

	warm, err := Run(app.Program(), corpus, Config{Spec: app.Spec, CacheDir: dir, Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	if warm.SkippedCandidates != 0 {
		t.Fatalf("incremental run skipped %d candidates with no changes", warm.SkippedCandidates)
	}
	if DetectionDigest(warm) != DetectionDigest(cold) {
		t.Error("incremental warm digest diverged from cold")
	}
}

// TestPlanIncrementalForeignProgram: pointing -incremental at a store
// filled by a different program is a hard error, not a silent cold start —
// mixing programs in one store would poison its manifest.
func TestPlanIncrementalForeignProgram(t *testing.T) {
	appA, err := apps.Get("polymorph")
	if err != nil {
		t.Fatal(err)
	}
	appB, err := apps.Get("grep")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := persist.Create(dir, appA.Program().Name); err != nil {
		t.Fatal(err)
	}
	if _, err := PlanIncremental(dir, appB.Program()); err == nil {
		t.Fatal("foreign-program store accepted")
	}
}

// TestFilterCandidatesByDirty: only candidates whose path crosses a dirty
// function are kept for re-analysis; the rest are counted, not silently
// dropped.
func TestFilterCandidatesByDirty(t *testing.T) {
	mk := func(fns ...string) *pathid.CandidatePath {
		c := &pathid.CandidatePath{}
		for _, fn := range fns {
			c.Nodes = append(c.Nodes, pathid.PathNode{Loc: trace.Location{Func: fn}})
		}
		return c
	}
	cands := []*pathid.CandidatePath{
		mk("main", "parse"),
		mk("main", "render"),
		mk("parse", "emit"),
	}
	kept, skipped := filterCandidatesByDirty(cands, []string{"parse"})
	if len(kept) != 2 || skipped != 1 {
		t.Fatalf("kept %d / skipped %d, want 2 / 1", len(kept), skipped)
	}
	for _, c := range kept {
		if !candidateCrosses(c, map[string]bool{"parse": true}) {
			t.Fatalf("kept candidate %v does not cross parse", c)
		}
	}
	// An empty dirty set (e.g. only removals) keeps everything: skipping
	// must be justified by a positive "this path is unaffected" match.
	kept, skipped = filterCandidatesByDirty(cands, nil)
	if len(kept) != 3 || skipped != 0 {
		t.Fatalf("empty dirty set: kept %d / skipped %d, want 3 / 0", len(kept), skipped)
	}
}
