package core

import (
	"context"
	"testing"

	"repro/internal/apps"
	"repro/internal/workload"
)

// runBoth executes the pipeline on one corpus twice — the paper's
// sequential loop and the parallel verifier — under step/state budgets
// only (no wall-clock limits), so both runs are fully deterministic.
func runBoth(t *testing.T, name string, workers int) (seq, par *Report) {
	t.Helper()
	app, err := apps.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := workload.BuildCorpus(app, workload.Options{SampleRate: 0.3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	base := Config{Spec: app.Spec}
	seq, err = Run(app.Program(), corpus, base)
	if err != nil {
		t.Fatal(err)
	}
	parCfg := base
	parCfg.Parallel = workers
	par, err = Run(app.Program(), corpus, parCfg)
	if err != nil {
		t.Fatal(err)
	}
	return seq, par
}

// TestParallelMatchesSequential: with Parallel > 1 the report's counters
// must be identical to the sequential loop on every evaluation app — the
// determinism guarantee documented on verifyCandidatesParallel.
func TestParallelMatchesSequential(t *testing.T) {
	for _, name := range []string{"polymorph", "ctree", "thttpd", "grep"} {
		t.Run(name, func(t *testing.T) {
			seq, par := runBoth(t, name, 4)
			if seq.Found() != par.Found() {
				t.Fatalf("found: sequential %v, parallel %v", seq.Found(), par.Found())
			}
			if par.CandidateUsed != seq.CandidateUsed {
				t.Errorf("CandidateUsed: sequential %d, parallel %d", seq.CandidateUsed, par.CandidateUsed)
			}
			if seq.Found() {
				if seq.Vuln.Func != par.Vuln.Func || seq.Vuln.Kind != par.Vuln.Kind || seq.Vuln.Pos != par.Vuln.Pos {
					t.Errorf("vulnerability diverged: sequential %s in %s at %s, parallel %s in %s at %s",
						seq.Vuln.Kind, seq.Vuln.Func, seq.Vuln.Pos,
						par.Vuln.Kind, par.Vuln.Func, par.Vuln.Pos)
				}
			}
			if par.TotalPaths != seq.TotalPaths || par.TotalSteps != seq.TotalSteps {
				t.Errorf("totals diverged: sequential (%d paths, %d steps), parallel (%d paths, %d steps)",
					seq.TotalPaths, seq.TotalSteps, par.TotalPaths, par.TotalSteps)
			}
			if len(par.Candidates) != len(seq.Candidates) {
				t.Fatalf("attempted candidates: sequential %d, parallel %d",
					len(seq.Candidates), len(par.Candidates))
			}
			for i := range seq.Candidates {
				s, p := seq.Candidates[i], par.Candidates[i]
				// Elapsed and SolverTime are wall-clock and legitimately
				// differ; zero them before comparing the outcome structs
				// field-for-field.
				s.Elapsed, p.Elapsed = 0, 0
				s.SolverTime, p.SolverTime = 0, 0
				if s != p {
					t.Errorf("candidate %d outcome diverged:\n  sequential %+v\n  parallel   %+v", i+1, s, p)
				}
			}
		})
	}
}

// TestSharedCacheDeterminism: the shared solver cache is a wall-clock
// optimization only. Sequential and parallel runs, with the shared cache on
// and off, must produce identical report counters and identical per-candidate
// outcomes (Elapsed/SolverTime excepted) — the invariant that lets the cache
// default to on.
func TestSharedCacheDeterminism(t *testing.T) {
	for _, name := range []string{"polymorph", "thttpd"} {
		t.Run(name, func(t *testing.T) {
			app, err := apps.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			corpus, err := workload.BuildCorpus(app, workload.Options{SampleRate: 0.3, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			configs := []Config{
				{Spec: app.Spec}, // sequential, shared cache on
				{Spec: app.Spec, DisableSharedCache: true},              // sequential, off
				{Spec: app.Spec, Parallel: 4},                           // parallel, on
				{Spec: app.Spec, Parallel: 4, DisableSharedCache: true}, // parallel, off
			}
			var ref *Report
			for ci, cfg := range configs {
				rep, err := Run(app.Program(), corpus, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if ref == nil {
					ref = rep
					continue
				}
				if rep.Found() != ref.Found() || rep.CandidateUsed != ref.CandidateUsed {
					t.Errorf("config %d: found=%v used=%d, want found=%v used=%d",
						ci, rep.Found(), rep.CandidateUsed, ref.Found(), ref.CandidateUsed)
				}
				if rep.TotalPaths != ref.TotalPaths || rep.TotalSteps != ref.TotalSteps ||
					rep.CacheHits != ref.CacheHits || rep.CacheMisses != ref.CacheMisses ||
					rep.CacheFastSat != ref.CacheFastSat || rep.CacheFastUnsat != ref.CacheFastUnsat {
					t.Errorf("config %d counters diverged:\n  got  paths=%d steps=%d hits=%d misses=%d fastSat=%d fastUnsat=%d\n  want paths=%d steps=%d hits=%d misses=%d fastSat=%d fastUnsat=%d",
						ci, rep.TotalPaths, rep.TotalSteps,
						rep.CacheHits, rep.CacheMisses, rep.CacheFastSat, rep.CacheFastUnsat,
						ref.TotalPaths, ref.TotalSteps,
						ref.CacheHits, ref.CacheMisses, ref.CacheFastSat, ref.CacheFastUnsat)
				}
				if len(rep.Candidates) != len(ref.Candidates) {
					t.Fatalf("config %d: %d candidates, want %d", ci, len(rep.Candidates), len(ref.Candidates))
				}
				for i := range ref.Candidates {
					a, b := ref.Candidates[i], rep.Candidates[i]
					a.Elapsed, b.Elapsed = 0, 0
					a.SolverTime, b.SolverTime = 0, 0
					if a != b {
						t.Errorf("config %d candidate %d diverged:\n  reference %+v\n  got       %+v", ci, i+1, a, b)
					}
				}
			}
		})
	}
}

// TestParallelWorkerCountInvariance: the merged report must not depend on
// the worker count (1 worker through more workers than candidates).
func TestParallelWorkerCountInvariance(t *testing.T) {
	app, err := apps.Get("thttpd") // thttpd has >1 candidate: rank 1 infeasible, rank 2 wins
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := workload.BuildCorpus(app, workload.Options{SampleRate: 0.3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var reference *Report
	for _, workers := range []int{2, 8} {
		cfg := Config{Spec: app.Spec, Parallel: workers}
		rep, err := Run(app.Program(), corpus, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if reference == nil {
			reference = rep
			continue
		}
		if rep.CandidateUsed != reference.CandidateUsed ||
			rep.TotalPaths != reference.TotalPaths ||
			rep.TotalSteps != reference.TotalSteps ||
			len(rep.Candidates) != len(reference.Candidates) {
			t.Errorf("workers=%d diverged from workers=2: used %d/%d paths %d/%d steps %d/%d",
				workers, rep.CandidateUsed, reference.CandidateUsed,
				rep.TotalPaths, reference.TotalPaths, rep.TotalSteps, reference.TotalSteps)
		}
	}
}

// TestRunContextAlreadyCancelled: a dead context must still yield a
// well-formed partial report — statistical analysis present, no candidate
// attempts, Cancelled flagged — with no error.
func TestRunContextAlreadyCancelled(t *testing.T) {
	app, err := apps.Get("polymorph")
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := workload.BuildCorpus(app, workload.Options{SampleRate: 0.3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := RunContext(ctx, app.Program(), corpus, Config{Spec: app.Spec})
	if err != nil {
		t.Fatalf("cancelled pipeline returned error: %v", err)
	}
	if !rep.Cancelled {
		t.Errorf("Cancelled not set on partial report")
	}
	if rep.Found() {
		t.Errorf("found a vulnerability under a dead context: %+v", rep.Vuln)
	}
	if rep.Analysis == nil || rep.PathRes == nil {
		t.Fatalf("partial report missing analysis results: %+v", rep)
	}
	if len(rep.PathRes.Candidates) == 0 {
		t.Errorf("statistical analysis produced no candidates")
	}
	for _, c := range rep.Candidates {
		if c.Found {
			t.Errorf("candidate %d claims a find under a dead context", c.Index)
		}
	}
}

// TestRunContextAlreadyCancelledParallel: same contract through the
// parallel verifier.
func TestRunContextAlreadyCancelledParallel(t *testing.T) {
	app, err := apps.Get("thttpd")
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := workload.BuildCorpus(app, workload.Options{SampleRate: 0.3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := RunContext(ctx, app.Program(), corpus, Config{Spec: app.Spec, Parallel: 4})
	if err != nil {
		t.Fatalf("cancelled parallel pipeline returned error: %v", err)
	}
	if !rep.Cancelled {
		t.Errorf("Cancelled not set on partial report")
	}
	if rep.Found() {
		t.Errorf("found a vulnerability under a dead context: %+v", rep.Vuln)
	}
}

// TestVerifyCandidateRank: the explicit rank parameter must flow into the
// outcome's 1-based Index.
func TestVerifyCandidateRank(t *testing.T) {
	app, err := apps.Get("polymorph")
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := workload.BuildCorpus(app, workload.Options{SampleRate: 0.3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(app.Program(), corpus, Config{Spec: app.Spec})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PathRes.Candidates) == 0 {
		t.Fatal("no candidates to verify")
	}
	cand := rep.PathRes.Candidates[0]
	out, _ := VerifyCandidateCtx(context.Background(), app.Program(), cand, 3, Config{Spec: app.Spec})
	if out.Index != 3 {
		t.Errorf("outcome Index = %d, want the rank passed in (3)", out.Index)
	}
	legacy, _ := VerifyCandidate(app.Program(), cand, Config{Spec: app.Spec})
	if legacy.Index != 1 {
		t.Errorf("legacy wrapper Index = %d, want 1", legacy.Index)
	}
}
