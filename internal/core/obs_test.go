package core

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/obs"
	"repro/internal/symexec"
	"repro/internal/trace"
	"repro/internal/workload"
)

// obsCorpus builds the standard test corpus for one app.
func obsCorpus(t *testing.T, name string) (*apps.App, *trace.Corpus) {
	t.Helper()
	app, err := apps.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := workload.BuildCorpus(app, workload.Options{SampleRate: 0.3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return app, corpus
}

// runObserved runs the pipeline with a recording sink attached and
// returns the report plus the recorded events.
func runObserved(t *testing.T, name string, mut func(*Config)) (*Report, []obs.Event) {
	t.Helper()
	app, corpus := obsCorpus(t, name)
	cfg := Config{Spec: app.Spec}
	if mut != nil {
		mut(&cfg)
	}
	rec := &obs.Recorder{}
	ctx := obs.NewContext(context.Background(), obs.New(rec))
	rep, err := RunContext(ctx, app.Program(), corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep, rec.Events()
}

// spanIndex collects open/close events per span ID.
type spanIndex struct {
	open  map[int64]obs.Event
	close map[int64]obs.Event
}

func indexSpans(t *testing.T, events []obs.Event) *spanIndex {
	t.Helper()
	idx := &spanIndex{open: map[int64]obs.Event{}, close: map[int64]obs.Event{}}
	for _, ev := range events {
		switch ev.Type {
		case obs.EventSpanOpen:
			if _, dup := idx.open[ev.Span]; dup {
				t.Errorf("span %d opened twice", ev.Span)
			}
			idx.open[ev.Span] = ev
		case obs.EventSpanClose:
			if _, ok := idx.open[ev.Span]; !ok {
				t.Errorf("span %d closed without an open", ev.Span)
			}
			if _, dup := idx.close[ev.Span]; dup {
				t.Errorf("span %d closed twice", ev.Span)
			}
			idx.close[ev.Span] = ev
		}
	}
	for id, ev := range idx.open {
		if _, ok := idx.close[id]; !ok {
			t.Errorf("span %d (%s) never closed", id, ev.Name)
		}
	}
	return idx
}

// TestPipelineSpanTreeParallel: with Parallel=8, the concurrent verify
// spans must all nest under the single pipeline root deterministically,
// each solver span under its verify span, and every span must balance
// open/close. Run under -race this also exercises the registry and sink
// from 8 workers (the ISSUE's race-cleanliness requirement).
func TestPipelineSpanTreeParallel(t *testing.T) {
	rep, events := runObserved(t, "thttpd", func(c *Config) { c.Parallel = 8 })
	idx := indexSpans(t, events)

	var rootID int64
	for id, ev := range idx.open {
		if ev.Name == "pipeline" {
			if rootID != 0 {
				t.Fatalf("two pipeline roots: %d and %d", rootID, id)
			}
			rootID = id
		}
	}
	if rootID == 0 {
		t.Fatal("no pipeline root span")
	}
	if got := idx.open[rootID].Parent; got != 0 {
		t.Fatalf("pipeline root has parent %d", got)
	}

	verifyRanks := map[int]int64{}
	for id, ev := range idx.open {
		switch ev.Name {
		case "stats", "candidates":
			if ev.Parent != rootID {
				t.Errorf("%s span parent = %d, want pipeline %d", ev.Name, ev.Parent, rootID)
			}
		case "verify":
			if ev.Parent != rootID {
				t.Errorf("verify span %d parent = %d, want pipeline %d", id, ev.Parent, rootID)
			}
			rank, ok := idx.open[id].Attrs["rank"].(int)
			if !ok {
				t.Fatalf("verify span %d missing integer rank attr: %v", id, idx.open[id].Attrs)
			}
			if prev, dup := verifyRanks[rank]; dup {
				t.Errorf("rank %d has two verify spans (%d and %d)", rank, prev, id)
			}
			verifyRanks[rank] = id
		case "solver":
			parent := idx.open[ev.Parent]
			if parent.Name != "verify" {
				t.Errorf("solver span %d parent is %q, want a verify span", id, parent.Name)
			}
		}
	}
	// Every recorded attempt has its verify span.
	for _, c := range rep.Candidates {
		if _, ok := verifyRanks[c.Index]; !ok {
			t.Errorf("attempt rank %d has no verify span", c.Index)
		}
	}
	// Durations are sane: non-negative, and no child outlives the root.
	rootDur := idx.close[rootID].DurUS
	for id, ev := range idx.close {
		if ev.DurUS < 0 {
			t.Errorf("span %d (%s) negative duration", id, ev.Name)
		}
		if id != rootID && ev.DurUS > rootDur {
			t.Errorf("span %d (%s) duration %dµs exceeds pipeline root %dµs", id, ev.Name, ev.DurUS, rootDur)
		}
	}
}

// TestSpanDurationsConsistentWithReport: in a sequential run the span
// durations must account for the Report's phase times — the verify spans
// sum to no more than SymTime, and stats+candidates fit inside StatTime
// (all measured inside the respective phase windows).
func TestSpanDurationsConsistentWithReport(t *testing.T) {
	rep, events := runObserved(t, "polymorph", nil)
	idx := indexSpans(t, events)
	var verifySum, statSum int64
	for id, ev := range idx.open {
		switch ev.Name {
		case "verify":
			verifySum += idx.close[id].DurUS
		case "stats", "candidates":
			statSum += idx.close[id].DurUS
		}
	}
	// A microsecond of slack per span absorbs rounding.
	slack := int64(len(idx.open))
	if max := rep.SymTime.Microseconds() + slack; verifySum > max {
		t.Errorf("verify spans sum to %dµs, exceeding SymTime %dµs", verifySum, max)
	}
	if max := rep.StatTime.Microseconds() + slack; statSum > max {
		t.Errorf("stats+candidates spans sum to %dµs, exceeding StatTime %dµs", statSum, max)
	}
	if len(rep.Candidates) == 0 || verifySum == 0 {
		t.Fatalf("expected at least one timed verify span (candidates=%d, sum=%d)", len(rep.Candidates), verifySum)
	}
}

// TestAbandonWarnDistinguishesBudget: a candidate killed by the state
// budget must emit a warn event naming max-states, so budget exhaustion
// is distinguishable from τ-divergence in logs.
func TestAbandonWarnDistinguishesBudget(t *testing.T) {
	rep, events := runObserved(t, "polymorph", func(c *Config) { c.MaxStates = 1 })
	if rep.Found() {
		t.Fatal("MaxStates=1 should prevent verification")
	}
	warns := 0
	for _, ev := range events {
		if ev.Type != obs.EventWarn {
			continue
		}
		warns++
		if ev.Msg != "candidate abandoned" {
			t.Errorf("warn msg = %q", ev.Msg)
		}
		if reason := ev.Attrs["reason"]; reason != "max-states" {
			t.Errorf("warn reason = %v, want max-states", reason)
		}
	}
	if warns != len(rep.Candidates) {
		t.Errorf("got %d warns for %d abandoned candidates", warns, len(rep.Candidates))
	}
}

// TestAbandonWarnMaxSteps: same channel, step-budget flavor.
func TestAbandonWarnMaxSteps(t *testing.T) {
	_, events := runObserved(t, "polymorph", func(c *Config) { c.PerCandidateMaxSteps = 1 })
	found := false
	for _, ev := range events {
		if ev.Type == obs.EventWarn && ev.Attrs["reason"] == "max-steps" {
			found = true
		}
	}
	if !found {
		t.Error("no warn event with reason max-steps")
	}
}

// TestJSONLTraceParses: an end-to-end run through the real JSONL sink
// must produce a line-parseable trace with balanced spans, and the
// solver metrics surfaced in the report must match the registry.
func TestJSONLTraceParses(t *testing.T) {
	app, corpus := obsCorpus(t, "polymorph")
	var buf bytes.Buffer
	sink := obs.NewJSONLSink(&buf)
	o := obs.New(sink)
	o.Interval = time.Millisecond
	ctx := obs.NewContext(context.Background(), o)
	rep, err := RunContext(ctx, app.Program(), corpus, Config{Spec: app.Spec})
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	opens, closes := 0, 0
	for i, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var ev obs.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("trace line %d unparseable: %v\n%s", i+1, err, line)
		}
		switch ev.Type {
		case obs.EventSpanOpen:
			opens++
		case obs.EventSpanClose:
			closes++
		case obs.EventProgress, obs.EventWarn:
		default:
			t.Errorf("trace line %d has unknown type %q", i+1, ev.Type)
		}
	}
	if opens == 0 || opens != closes {
		t.Errorf("unbalanced trace: %d opens, %d closes", opens, closes)
	}
	snap := o.Metrics.Snapshot()
	var wantChecks int64
	for _, c := range rep.Candidates {
		wantChecks += int64(c.SolverChecks)
	}
	if got := snap[obs.MetricSolverChecks]; got != wantChecks {
		t.Errorf("registry solver.checks = %d, report sum = %d", got, wantChecks)
	}
	if got := snap[obs.MetricCacheHits]; got != int64(rep.CacheHits) {
		t.Errorf("registry cache hits = %d, report %d", got, rep.CacheHits)
	}
	if rep.SolverTime <= 0 {
		t.Error("report SolverTime not populated")
	}
}

// TestMergeAttemptsSemantics pins the documented rank-order merge,
// including the TotalSteps accounting for caller-cancelled partial
// attempts (satellite fix: sequential and parallel replays agree).
func TestMergeAttemptsSemantics(t *testing.T) {
	out := func(rank int, steps int64, cancelled bool) CandidateOutcome {
		return CandidateOutcome{Index: rank, Paths: rank, Steps: steps, Cancelled: cancelled}
	}
	vuln := &symexec.Vulnerability{}

	t.Run("cancelled partial counts once", func(t *testing.T) {
		rep := &Report{}
		mergeAttempts(rep, []attempt{
			{outcome: out(1, 10, false), complete: true},
			{outcome: out(2, 5, true)},  // caught mid-flight by caller cancel
			{outcome: out(3, 99, true)}, // also cancelled; sequential never had it in flight
			{},                          // never started
		})
		if len(rep.Candidates) != 2 || rep.TotalSteps != 15 {
			t.Errorf("got %d candidates, %d steps; want 2 candidates, 15 steps: %+v",
				len(rep.Candidates), rep.TotalSteps, rep.Candidates)
		}
	})

	t.Run("stops at first success", func(t *testing.T) {
		rep := &Report{}
		a2 := attempt{outcome: out(2, 20, false), vuln: vuln, complete: true}
		mergeAttempts(rep, []attempt{
			{outcome: out(1, 10, false), complete: true},
			a2,
			{outcome: out(3, 40, false), complete: true}, // completed before the cancel reached it
		})
		if rep.CandidateUsed != 2 || rep.TotalSteps != 30 || len(rep.Candidates) != 2 {
			t.Errorf("used=%d steps=%d candidates=%d; want 2/30/2",
				rep.CandidateUsed, rep.TotalSteps, len(rep.Candidates))
		}
	})

	t.Run("skipped ranks contribute nothing", func(t *testing.T) {
		rep := &Report{}
		mergeAttempts(rep, []attempt{
			{outcome: out(1, 10, true)}, // cancelled mid-flight, lowest rank
			{},                          // skipped
		})
		if len(rep.Candidates) != 1 || rep.TotalSteps != 10 || !rep.Candidates[0].Cancelled {
			t.Errorf("partial merge wrong: %+v", rep)
		}
	})
}

// TestParallelCancelAccountingInvariant: whatever instant the caller's
// cancel lands, the merged report must stay internally consistent —
// totals equal the sum over recorded attempts, and at most one attempt
// (the last) is a cancelled partial, exactly like a sequential replay.
func TestParallelCancelAccountingInvariant(t *testing.T) {
	app, corpus := obsCorpus(t, "thttpd")
	for _, delay := range []time.Duration{time.Millisecond, 10 * time.Millisecond} {
		ctx, cancel := context.WithTimeout(context.Background(), delay)
		rep, err := RunContext(ctx, app.Program(), corpus, Config{Spec: app.Spec, Parallel: 4})
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		var paths int
		var steps int64
		for i, c := range rep.Candidates {
			paths += c.Paths
			steps += c.Steps
			if c.Cancelled && i != len(rep.Candidates)-1 {
				t.Errorf("delay %v: cancelled attempt at position %d is not last", delay, i)
			}
		}
		if paths != rep.TotalPaths || steps != rep.TotalSteps {
			t.Errorf("delay %v: totals (%d paths, %d steps) != candidate sums (%d, %d)",
				delay, rep.TotalPaths, rep.TotalSteps, paths, steps)
		}
	}
}
