package monitor

import (
	"context"
	"fmt"
	"time"

	"repro/internal/bytecode"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Context-aware corpus collection. These variants are the observability
// entry points: each opens a "monitor" span under whatever parent rides in
// ctx, folds run and record counts into the metrics registry, and checks
// ctx between concrete runs so a caller cancellation stops collection
// promptly. Unlike the pipeline (which returns a partial report), an
// interrupted collection returns ctx.Err(): a truncated corpus would
// silently skew the statistical analysis downstream.

// CollectCorpusCtx is CollectCorpus with cancellation and tracing.
func CollectCorpusCtx(ctx context.Context, prog *bytecode.Program, inputs []*interp.Input, cfg Config) (*trace.Corpus, error) {
	_, sp := obs.StartSpan(ctx, "monitor", obs.A("inputs", len(inputs)))
	corpus, err := collectSeq(ctx, prog, inputs, cfg)
	if err != nil {
		sp.End(obs.A("error", err.Error()))
		return nil, err
	}
	records := 0
	for i := range corpus.Runs {
		records += len(corpus.Runs[i].Records)
	}
	noteRuns(ctx, len(corpus.Runs), records)
	sp.End(obs.A("runs", len(corpus.Runs)), obs.A("records", records))
	return corpus, nil
}

// BalancedCorpusCtx is BalancedCorpus with cancellation, tracing, and
// periodic progress snapshots (the balanced loop can run up to 100× the
// requested count when faults are rare, so it is the long pole worth
// watching live).
func BalancedCorpusCtx(ctx context.Context, prog *bytecode.Program, gen func(i int) *interp.Input,
	wantCorrect, wantFaulty int, cfg Config) (*trace.Corpus, error) {
	_, sp := obs.StartSpan(ctx, "monitor",
		obs.A("want_correct", wantCorrect), obs.A("want_faulty", wantFaulty))
	o := obs.FromContext(ctx)
	lastSnap := time.Now()

	corpus := &trace.Corpus{Program: prog.Name}
	nc, nf, records := 0, 0, 0
	limit := (wantCorrect + wantFaulty) * 100
	for i := 0; i < limit && (nc < wantCorrect || nf < wantFaulty); i++ {
		if err := ctx.Err(); err != nil {
			sp.End(obs.A("cancelled", true))
			return nil, err
		}
		run, err := CollectRun(prog, gen(i), cfg, i)
		if err != nil {
			sp.End(obs.A("error", err.Error()))
			return nil, err
		}
		if o != nil && o.Interval > 0 && time.Since(lastSnap) >= o.Interval {
			lastSnap = time.Now()
			o.Progress(sp,
				obs.A("generated", i+1),
				obs.A("correct", nc), obs.A("faulty", nf))
		}
		if run.Faulty {
			if nf >= wantFaulty {
				continue
			}
			nf++
		} else {
			if nc >= wantCorrect {
				continue
			}
			nc++
		}
		records += len(run.Records)
		run.ID = len(corpus.Runs)
		corpus.Runs = append(corpus.Runs, *run)
	}
	if nc < wantCorrect || nf < wantFaulty {
		sp.End(obs.A("error", "generator exhausted"))
		return nil, fmt.Errorf("monitor: generator yielded %d correct / %d faulty runs, want %d/%d",
			nc, nf, wantCorrect, wantFaulty)
	}
	noteRuns(ctx, len(corpus.Runs), records)
	sp.End(obs.A("runs", len(corpus.Runs)), obs.A("records", records))
	return corpus, nil
}

// CollectCorpusParallelCtx is CollectCorpusParallel with cancellation and
// tracing. The span covers the whole pool; workers poll ctx between runs.
func CollectCorpusParallelCtx(ctx context.Context, prog *bytecode.Program, inputs []*interp.Input, cfg Config, workers int) (*trace.Corpus, error) {
	_, sp := obs.StartSpan(ctx, "monitor",
		obs.A("inputs", len(inputs)), obs.A("workers", workers))
	corpus, err := collectParallel(ctx, prog, inputs, cfg, workers)
	if err != nil {
		sp.End(obs.A("error", err.Error()))
		return nil, err
	}
	records := 0
	for i := range corpus.Runs {
		records += len(corpus.Runs[i].Records)
	}
	noteRuns(ctx, len(corpus.Runs), records)
	sp.End(obs.A("runs", len(corpus.Runs)), obs.A("records", records))
	return corpus, nil
}

// noteRuns folds collection counts into the registry, if one is attached.
func noteRuns(ctx context.Context, runs, records int) {
	o := obs.FromContext(ctx)
	if o == nil {
		return
	}
	o.Metrics.Counter(obs.MetricMonitorRuns).Add(int64(runs))
	o.Metrics.Counter(obs.MetricMonitorRecords).Add(int64(records))
}
