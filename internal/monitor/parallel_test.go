package monitor

import (
	"testing"

	"repro/internal/bytecode"
	"repro/internal/interp"
)

func TestCollectCorpusParallelMatchesSequential(t *testing.T) {
	prog := bytecode.MustCompile("mon", testSrc)
	var inputs []*interp.Input
	for i := 0; i < 40; i++ {
		n := int64(i % 12)
		inputs = append(inputs, &interp.Input{Ints: map[string]int64{"n": n}})
	}
	cfg := Config{SampleRate: 0.5, Seed: 7}
	seq, err := CollectCorpus(prog, inputs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16} {
		par, err := CollectCorpusParallel(prog, inputs, cfg, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(par.Runs) != len(seq.Runs) {
			t.Fatalf("workers=%d: %d runs vs %d", workers, len(par.Runs), len(seq.Runs))
		}
		for i := range seq.Runs {
			a, b := seq.Runs[i], par.Runs[i]
			if a.Faulty != b.Faulty || len(a.Records) != len(b.Records) || a.FaultFunc != b.FaultFunc {
				t.Fatalf("workers=%d: run %d differs (faulty %v/%v, records %d/%d)",
					workers, i, a.Faulty, b.Faulty, len(a.Records), len(b.Records))
			}
			for j := range a.Records {
				if a.Records[j].Loc != b.Records[j].Loc {
					t.Fatalf("workers=%d: run %d record %d loc differs", workers, i, j)
				}
			}
		}
	}
}

func TestCollectCorpusParallelSmallInputs(t *testing.T) {
	prog := bytecode.MustCompile("mon", testSrc)
	inputs := []*interp.Input{{Ints: map[string]int64{"n": 1}}}
	c, err := CollectCorpusParallel(prog, inputs, Config{SampleRate: 1}, 8)
	if err != nil || len(c.Runs) != 1 {
		t.Fatalf("c=%v err=%v", c, err)
	}
}
