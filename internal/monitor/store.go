package monitor

import (
	"context"
	"fmt"
	"time"

	"repro/internal/bytecode"
	"repro/internal/corpus"
	"repro/internal/interp"
	"repro/internal/obs"
)

// Store-backed collection: the monitor spills runs straight into a
// segmented on-disk corpus store instead of accumulating them in memory,
// so collection scales with disk, not RAM. Runs are appended in the same
// order (and with the same renumbered IDs, when the store starts empty)
// that the in-memory collectors would have produced, so downstream
// streaming analysis is byte-identical to the in-memory pipeline.

// CollectCorpusStoreCtx executes the inputs under the monitor and appends
// every run to the store. The writer is sealed before returning; on error
// nothing partial becomes visible beyond already-sealed segments.
func CollectCorpusStoreCtx(ctx context.Context, prog *bytecode.Program, inputs []*interp.Input,
	cfg Config, store *corpus.Store, wopts corpus.Options) error {
	_, sp := obs.StartSpan(ctx, "monitor",
		obs.A("inputs", len(inputs)), obs.A("store", store.Dir()))
	w := store.NewWriter(wopts)
	next := store.TotalRuns()
	records := 0
	for i, in := range inputs {
		if err := ctx.Err(); err != nil {
			sp.End(obs.A("cancelled", true))
			return err
		}
		run, err := CollectRun(prog, in, cfg, i)
		if err != nil {
			sp.End(obs.A("error", err.Error()))
			return err
		}
		run.ID = next
		next++
		records += len(run.Records)
		if err := w.Append(run); err != nil {
			sp.End(obs.A("error", err.Error()))
			return err
		}
	}
	if err := w.Close(); err != nil {
		sp.End(obs.A("error", err.Error()))
		return err
	}
	noteRuns(ctx, len(inputs), records)
	sp.End(obs.A("runs", len(inputs)), obs.A("records", records),
		obs.A("sealed_bytes", w.SealedBytes()))
	return nil
}

// BalancedCorpusStoreCtx is BalancedCorpusCtx spilling to a store: it
// keeps generating runs until the correct/faulty quotas fill (or the 100×
// generation limit trips), appending accepted runs to the store as it
// goes. Peak memory is one run plus the writer's block buffer.
func BalancedCorpusStoreCtx(ctx context.Context, prog *bytecode.Program, gen func(i int) *interp.Input,
	wantCorrect, wantFaulty int, cfg Config, store *corpus.Store, wopts corpus.Options) error {
	_, sp := obs.StartSpan(ctx, "monitor",
		obs.A("want_correct", wantCorrect), obs.A("want_faulty", wantFaulty),
		obs.A("store", store.Dir()))
	o := obs.FromContext(ctx)
	lastSnap := time.Now()

	w := store.NewWriter(wopts)
	next := store.TotalRuns()
	nc, nf, records := 0, 0, 0
	limit := (wantCorrect + wantFaulty) * 100
	for i := 0; i < limit && (nc < wantCorrect || nf < wantFaulty); i++ {
		if err := ctx.Err(); err != nil {
			w.Close() // keep what's already durable
			sp.End(obs.A("cancelled", true))
			return err
		}
		run, err := CollectRun(prog, gen(i), cfg, i)
		if err != nil {
			w.Close()
			sp.End(obs.A("error", err.Error()))
			return err
		}
		if o != nil && o.Interval > 0 && time.Since(lastSnap) >= o.Interval {
			lastSnap = time.Now()
			o.Progress(sp,
				obs.A("generated", i+1),
				obs.A("correct", nc), obs.A("faulty", nf))
		}
		if run.Faulty {
			if nf >= wantFaulty {
				continue
			}
			nf++
		} else {
			if nc >= wantCorrect {
				continue
			}
			nc++
		}
		records += len(run.Records)
		run.ID = next
		next++
		if err := w.Append(run); err != nil {
			sp.End(obs.A("error", err.Error()))
			return err
		}
	}
	if err := w.Close(); err != nil {
		sp.End(obs.A("error", err.Error()))
		return err
	}
	if nc < wantCorrect || nf < wantFaulty {
		sp.End(obs.A("error", "generator exhausted"))
		return fmt.Errorf("monitor: generator yielded %d correct / %d faulty runs, want %d/%d",
			nc, nf, wantCorrect, wantFaulty)
	}
	noteRuns(ctx, nc+nf, records)
	sp.End(obs.A("runs", nc+nf), obs.A("records", records),
		obs.A("sealed_bytes", w.SealedBytes()))
	return nil
}
