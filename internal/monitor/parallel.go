package monitor

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/bytecode"
	"repro/internal/interp"
	"repro/internal/trace"
)

// CollectCorpusParallel runs every input under the monitor using a bounded
// worker pool and returns the runs in input order, so the result is
// deterministic and identical to CollectCorpus for the same inputs. Field
// log collection is embarrassingly parallel (each run is an independent VM
// execution); this is the throughput path for large corpora.
func CollectCorpusParallel(prog *bytecode.Program, inputs []*interp.Input, cfg Config, workers int) (*trace.Corpus, error) {
	return CollectCorpusParallelCtx(context.Background(), prog, inputs, cfg, workers)
}

// collectParallel is the worker-pool engine behind CollectCorpusParallelCtx.
// Workers poll ctx between runs, so a cancellation stops the pool within
// one concrete execution per worker.
func collectParallel(ctx context.Context, prog *bytecode.Program, inputs []*interp.Input, cfg Config, workers int) (*trace.Corpus, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(inputs) {
		workers = len(inputs)
	}
	if workers <= 1 {
		return collectSeq(ctx, prog, inputs, cfg)
	}

	runs := make([]*trace.Run, len(inputs))
	indices := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error

	setErr := func(err error) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr == nil {
			firstErr = err
		}
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				if err := ctx.Err(); err != nil {
					setErr(err)
					continue
				}
				run, err := CollectRun(prog, inputs[i], cfg, i)
				if err != nil {
					setErr(err)
					continue
				}
				runs[i] = run
			}
		}()
	}
	for i := range inputs {
		indices <- i
	}
	close(indices)
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr
	}
	corpus := &trace.Corpus{Program: prog.Name, Runs: make([]trace.Run, 0, len(runs))}
	for _, r := range runs {
		corpus.Runs = append(corpus.Runs, *r)
	}
	return corpus, nil
}

// collectSeq is the sequential collection loop shared by CollectCorpusCtx
// and the single-worker fallback of collectParallel. No span of its own —
// callers own the "monitor" span.
func collectSeq(ctx context.Context, prog *bytecode.Program, inputs []*interp.Input, cfg Config) (*trace.Corpus, error) {
	corpus := &trace.Corpus{Program: prog.Name}
	for i, in := range inputs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		run, err := CollectRun(prog, in, cfg, i)
		if err != nil {
			return nil, err
		}
		corpus.Runs = append(corpus.Runs, *run)
	}
	return corpus, nil
}
