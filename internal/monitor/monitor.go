// Package monitor implements the runtime sampling and logging component of
// the paper (§VI-A) — the Valgrind/Fjalar substitute. It drives the
// concrete VM over test inputs, observing function entry and exit points,
// and records global variables, function parameters and return values into
// trace logs, subsampling events at a tunable rate to model partial logging
// (§III-B).
package monitor

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/bytecode"
	"repro/internal/interp"
	"repro/internal/trace"
)

// Config controls log collection.
type Config struct {
	// SampleRate is the probability that any single entry/exit event is
	// logged (1.0 = full logging, 0.3 = the paper's default partial rate).
	SampleRate float64
	// Seed makes sampling deterministic; each run derives its own stream.
	Seed int64
	// MaxSteps bounds each concrete run (0: interpreter default).
	MaxSteps int
}

// CollectRun executes prog over input once and returns its (possibly
// subsampled) log, annotated correct/faulty.
func CollectRun(prog *bytecode.Program, input *interp.Input, cfg Config, runID int) (*trace.Run, error) {
	rate := cfg.SampleRate
	if rate <= 0 {
		rate = 1.0
	}
	rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(runID)))
	run := &trace.Run{ID: runID}
	hook := func(ev interp.HookEvent) {
		if rate < 1.0 && rng.Float64() >= rate {
			return
		}
		run.Records = append(run.Records, buildRecord(prog, ev))
	}
	res, err := interp.Run(prog, input, interp.Config{Hook: hook, MaxSteps: cfg.MaxSteps})
	if err != nil {
		return nil, fmt.Errorf("monitor: run %d: %w", runID, err)
	}
	run.Faulty = res.Faulty()
	if run.Faulty {
		run.FaultKind = res.Fault.String()
		run.FaultFunc = res.FaultFunc
	}
	return run, nil
}

// buildRecord converts a VM hook event into a log record: globals at both
// entry and exit, parameters at entry, the return value at exit.
func buildRecord(prog *bytecode.Program, ev interp.HookEvent) trace.Record {
	rec := trace.Record{Loc: trace.Location{Func: ev.Fn.Name, Kind: ev.Kind}}
	for gi, g := range prog.Globals {
		rec.Obs = append(rec.Obs, observe(g.Name, trace.ClassGlobal, ev.Globals[gi]))
	}
	if ev.Kind == trace.EventEnter {
		for pi, pname := range ev.Fn.ParamNames {
			// Buffers are not logged (Fjalar logs scalar/string views).
			if ev.Params[pi].Kind == interp.KindBuf {
				continue
			}
			rec.Obs = append(rec.Obs, observe(pname, trace.ClassParam, ev.Params[pi]))
		}
	}
	if ev.Kind == trace.EventLeave && ev.Ret != nil {
		rec.Obs = append(rec.Obs, observe("ret", trace.ClassReturn, *ev.Ret))
	}
	return rec
}

func observe(name string, class trace.VarClass, v interp.Value) trace.Observation {
	ob := trace.Observation{Var: name, Class: class}
	switch v.Kind {
	case interp.KindString:
		ob.Kind = trace.ValueString
		ob.Str = v.Str
	default:
		ob.Kind = trace.ValueInt
		ob.Int = v.Int
	}
	return ob
}

// CollectCorpus runs every input and assembles the labeled corpus the
// statistical module consumes.
func CollectCorpus(prog *bytecode.Program, inputs []*interp.Input, cfg Config) (*trace.Corpus, error) {
	return CollectCorpusCtx(context.Background(), prog, inputs, cfg)
}

// BalancedCorpus collects logs until it has wantCorrect correct and
// wantFaulty faulty runs (the paper samples one hundred of each, §VII-A),
// drawing inputs from gen. It returns an error when the generator cannot
// produce the requested mix within 100× the requested run count.
func BalancedCorpus(prog *bytecode.Program, gen func(i int) *interp.Input,
	wantCorrect, wantFaulty int, cfg Config) (*trace.Corpus, error) {
	return BalancedCorpusCtx(context.Background(), prog, gen, wantCorrect, wantFaulty, cfg)
}
