package monitor

import (
	"bytes"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/interp"
	"repro/internal/trace"
)

const testSrc = `
global int calls = 0;
func work(int n, string tag) int {
  calls = calls + 1;
  buf b[8];
  int i = 0;
  while (i < n) {
    bufwrite(b, i, 'x');
    i = i + 1;
  }
  return n * 2;
}
func main() int {
  int n = input_int("n");
  work(n, "t");
  return 0;
}`

func collectOne(t *testing.T, n int64, cfg Config) *trace.Run {
	t.Helper()
	prog := bytecode.MustCompile("mon", testSrc)
	run, err := CollectRun(prog, &interp.Input{Ints: map[string]int64{"n": n}}, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	return run
}

func TestFullLoggingCapturesAllEvents(t *testing.T) {
	run := collectOne(t, 3, Config{SampleRate: 1.0})
	if run.Faulty {
		t.Fatal("benign run marked faulty")
	}
	// main:enter, work:enter, work:leave, main:leave.
	if len(run.Records) != 4 {
		t.Fatalf("records = %d, want 4: %+v", len(run.Records), run.Records)
	}
	if run.Records[1].Loc.String() != "work():enter" {
		t.Errorf("record 1 loc = %s", run.Records[1].Loc)
	}
}

func TestObservationsContent(t *testing.T) {
	run := collectOne(t, 3, Config{SampleRate: 1.0})
	enter := run.Records[1]
	// Globals + params (buffer params would be skipped; n and tag logged).
	var haveCalls, haveN, haveTag bool
	for _, ob := range enter.Obs {
		switch {
		case ob.Var == "calls" && ob.Class == trace.ClassGlobal:
			haveCalls = true
			// The entry hook fires before the body executes.
			if ob.Int != 0 {
				t.Errorf("calls at work entry = %d, want 0", ob.Int)
			}
		case ob.Var == "n" && ob.Class == trace.ClassParam:
			haveN = true
			if ob.Int != 3 {
				t.Errorf("n = %d", ob.Int)
			}
		case ob.Var == "tag" && ob.Class == trace.ClassParam:
			haveTag = true
			if ob.Str != "t" || ob.Numeric() != 1 {
				t.Errorf("tag = %+v", ob)
			}
		}
	}
	if !haveCalls || !haveN || !haveTag {
		t.Errorf("missing observations: calls=%v n=%v tag=%v", haveCalls, haveN, haveTag)
	}
	leave := run.Records[2]
	var haveRet, haveCallsAtLeave bool
	for _, ob := range leave.Obs {
		if ob.Class == trace.ClassReturn {
			haveRet = true
			if ob.Int != 6 {
				t.Errorf("return = %d, want 6", ob.Int)
			}
		}
		if ob.Var == "calls" && ob.Class == trace.ClassGlobal {
			haveCallsAtLeave = true
			if ob.Int != 1 {
				t.Errorf("calls at work leave = %d, want 1", ob.Int)
			}
		}
	}
	if !haveRet || !haveCallsAtLeave {
		t.Error("missing return or global observation at leave")
	}
}

func TestFaultyRunTruncatedLog(t *testing.T) {
	// n=20 overflows the 8-byte buffer inside work: the log must end
	// before work():leave (footnote 3: no return captured in faulty runs).
	run := collectOne(t, 20, Config{SampleRate: 1.0})
	if !run.Faulty {
		t.Fatal("overflow run not marked faulty")
	}
	if run.FaultKind != "buffer-overflow" || run.FaultFunc != "work" {
		t.Errorf("fault = %s in %s", run.FaultKind, run.FaultFunc)
	}
	last, _ := run.FinalLocation()
	if last.String() != "work():enter" {
		t.Errorf("final location = %s, want work():enter", last)
	}
}

func TestSamplingReducesRecords(t *testing.T) {
	prog := bytecode.MustCompile("mon", testSrc)
	full := 0
	sampled := 0
	for i := 0; i < 50; i++ {
		in := &interp.Input{Ints: map[string]int64{"n": 4}}
		rf, err := CollectRun(prog, in, Config{SampleRate: 1.0, Seed: 1}, i)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := CollectRun(prog, in, Config{SampleRate: 0.3, Seed: 1}, i)
		if err != nil {
			t.Fatal(err)
		}
		full += len(rf.Records)
		sampled += len(rs.Records)
	}
	if sampled >= full/2 {
		t.Errorf("30%% sampling kept %d of %d records", sampled, full)
	}
	if sampled == 0 {
		t.Error("sampling dropped everything")
	}
}

func TestSamplingDeterministic(t *testing.T) {
	prog := bytecode.MustCompile("mon", testSrc)
	in := &interp.Input{Ints: map[string]int64{"n": 4}}
	r1, _ := CollectRun(prog, in, Config{SampleRate: 0.5, Seed: 42}, 7)
	r2, _ := CollectRun(prog, in, Config{SampleRate: 0.5, Seed: 42}, 7)
	if len(r1.Records) != len(r2.Records) {
		t.Errorf("same seed, different logs: %d vs %d", len(r1.Records), len(r2.Records))
	}
	r3, _ := CollectRun(prog, in, Config{SampleRate: 0.5, Seed: 43}, 7)
	_ = r3 // different seed may or may not differ; just ensure no panic
}

func TestBalancedCorpus(t *testing.T) {
	prog := bytecode.MustCompile("mon", testSrc)
	gen := func(i int) *interp.Input {
		// Alternate benign and overflowing inputs.
		n := int64(i % 6)
		if i%2 == 1 {
			n = int64(10 + i%8)
		}
		return &interp.Input{Ints: map[string]int64{"n": n}}
	}
	corpus, err := BalancedCorpus(prog, gen, 10, 10, Config{SampleRate: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	correct, faulty := corpus.Split()
	if len(correct) != 10 || len(faulty) != 10 {
		t.Errorf("corpus split = %d/%d, want 10/10", len(correct), len(faulty))
	}
}

func TestBalancedCorpusImpossible(t *testing.T) {
	prog := bytecode.MustCompile("mon", testSrc)
	gen := func(i int) *interp.Input {
		return &interp.Input{Ints: map[string]int64{"n": 1}} // never faults
	}
	if _, err := BalancedCorpus(prog, gen, 1, 1, Config{SampleRate: 1.0}); err == nil {
		t.Error("expected error when faulty runs are impossible")
	}
}

func TestCorpusRoundTrip(t *testing.T) {
	prog := bytecode.MustCompile("mon", testSrc)
	gen := func(i int) *interp.Input {
		n := int64(i % 5)
		if i%2 == 1 {
			n = 15
		}
		return &interp.Input{Ints: map[string]int64{"n": n}}
	}
	corpus, err := BalancedCorpus(prog, gen, 5, 5, Config{SampleRate: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := corpus.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := trace.ReadCorpus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Program != corpus.Program || len(back.Runs) != len(corpus.Runs) {
		t.Fatalf("round trip mismatch: %s/%d vs %s/%d",
			back.Program, len(back.Runs), corpus.Program, len(corpus.Runs))
	}
	for i := range corpus.Runs {
		a, b := &corpus.Runs[i], &back.Runs[i]
		if a.Faulty != b.Faulty || len(a.Records) != len(b.Records) {
			t.Errorf("run %d mismatch", i)
		}
	}
}
