package symexec

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/interp"
)

// TestDifferentialConcreteAgreement: for programs whose inputs are fully
// concretized, symbolic execution follows exactly one path and must agree
// with the concrete interpreter on both the outcome (fault or not, fault
// site) and the absence of forking. This is the engine's core soundness
// check, run across randomly generated straight-line-with-control-flow
// programs.
func TestDifferentialConcreteAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(20260705))
	for trial := 0; trial < 120; trial++ {
		src, inputs := genProgram(rng)
		prog, err := compileQuiet(src)
		if err != nil {
			t.Fatalf("trial %d: generated program does not compile: %v\n%s", trial, err, src)
		}
		concrete, err := interp.Run(prog, inputs, interp.Config{MaxSteps: 200_000})
		if err != nil {
			// Resource errors (step limits) are excluded from comparison.
			continue
		}

		spec := &InputSpec{
			ConcreteInts: inputs.Ints,
			ConcreteStrs: inputs.Strs,
		}
		opts := DefaultOptions()
		opts.MaxSteps = 400_000
		ex := New(prog, spec, opts)
		sym := ex.Run()

		if sym.Forks != 0 {
			t.Errorf("trial %d: concrete run forked %d times\n%s", trial, sym.Forks, src)
			continue
		}
		if concrete.Faulty() != sym.Found() {
			t.Errorf("trial %d: concrete fault=%v (%v in %s) but symbolic found=%v\n%s",
				trial, concrete.Faulty(), concrete.Fault, concrete.FaultFunc, sym.Found(), src)
			continue
		}
		if concrete.Faulty() {
			v := sym.Vulns[0]
			if v.Kind != concrete.Fault || v.Func != concrete.FaultFunc {
				t.Errorf("trial %d: fault mismatch: concrete %v in %s, symbolic %v in %s\n%s",
					trial, concrete.Fault, concrete.FaultFunc, v.Kind, v.Func, src)
			}
		}
	}
}

// compileQuiet compiles without the MustCompile panic.
func compileQuiet(src string) (prog *bytecode.Program, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	return bytecode.MustCompile("gen", src), nil
}

// genProgram emits a random MiniC program over two int inputs and one
// string input, exercising arithmetic, branches, loops, buffers and string
// operations, together with a concrete input assignment.
func genProgram(rng *rand.Rand) (string, *interp.Input) {
	a := rng.Int63n(40) - 10
	b := rng.Int63n(40) - 10
	strLen := rng.Intn(12)
	payload := make([]byte, strLen)
	for i := range payload {
		payload[i] = byte('a' + rng.Intn(26))
	}
	bufCap := 2 + rng.Intn(8)

	stmts := []string{
		"  int a = input_int(\"a\");",
		"  int b = input_int(\"b\");",
		"  string s = input_string(\"s\");",
		fmt.Sprintf("  buf w[%d];", bufCap),
		"  int acc = 0;",
	}
	nStmts := 3 + rng.Intn(6)
	for i := 0; i < nStmts; i++ {
		switch rng.Intn(8) {
		case 0:
			stmts = append(stmts, fmt.Sprintf("  acc = acc + a * %d - b;", rng.Intn(5)))
		case 1:
			stmts = append(stmts, fmt.Sprintf("  if (a > %d) { acc = acc + 1; } else { acc = acc - 1; }", rng.Intn(20)-10))
		case 2:
			stmts = append(stmts, fmt.Sprintf(
				"  for (int i%d = 0; i%d < %d; i%d = i%d + 1) { acc = acc + i%d; }",
				i, i, rng.Intn(6), i, i, i))
		case 3:
			stmts = append(stmts, "  acc = acc + len(s);")
		case 4:
			stmts = append(stmts, fmt.Sprintf("  if (len(s) > %d) { acc = acc + char(s, %d); }", rng.Intn(12), rng.Intn(4)))
		case 5:
			stmts = append(stmts, fmt.Sprintf("  bufwrite(w, acc %% %d, a);", bufCap)) // may fault on negative index
		case 6:
			stmts = append(stmts, fmt.Sprintf("  if (b != 0) { acc = acc + a / b; } else { acc = acc + %d; }", rng.Intn(9)))
		case 7:
			stmts = append(stmts, fmt.Sprintf("  if (s == %q) { acc = acc + 100; }", "xy"))
		}
	}
	stmts = append(stmts, "  return helper(acc);")

	src := fmt.Sprintf(`
func helper(int v) int {
  if (v > 1000) { return 1000; }
  if (v < -1000) { return -1000; }
  return v;
}
func main() int {
%s
}
`, joinLines(stmts))
	in := &interp.Input{
		Ints: map[string]int64{"a": a, "b": b},
		Strs: map[string]string{"s": string(payload)},
	}
	return src, in
}

func joinLines(lines []string) string {
	out := ""
	for _, l := range lines {
		out += l + "\n"
	}
	return out
}

// TestDifferentialCaseGuards: case 4 above indexes s at 0..3 only when
// len(s) > k for random k, which can still overread; the differential
// check must classify those identically. This focused test pins one such
// case down deterministically.
func TestDifferentialStringOverread(t *testing.T) {
	src := `
func main() int {
  string s = input_string("s");
  int acc = 0;
  if (len(s) > 1) { acc = acc + char(s, 3); }
  return acc;
}`
	prog := bytecode.MustCompile("overread", src)
	in := &interp.Input{Strs: map[string]string{"s": "ab"}} // len 2: char(s,3) overreads
	concrete, err := interp.Run(prog, in, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if concrete.Fault != interp.FaultStringIndex {
		t.Fatalf("concrete fault = %v", concrete.Fault)
	}
	spec := &InputSpec{ConcreteStrs: in.Strs}
	ex := New(prog, spec, DefaultOptions())
	sym := ex.Run()
	if !sym.Found() || sym.Vulns[0].Kind != interp.FaultStringIndex {
		t.Errorf("symbolic disagreement: %+v", sym.Vulns)
	}
}
