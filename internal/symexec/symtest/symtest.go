// Package symtest is a fluent test harness for the symbolic executor:
// declare a MiniC source plus expectations and get a compiled, executed,
// witness-replayed scenario in about ten lines. It exists so executor
// behavior — including the compositional call modes — can be pinned with
// tests that read as specifications:
//
//	symtest.Run(t, symtest.T{
//	    Source: `func main() int { assert(1 == 2); return 0; }`,
//	}).ExpectFault(interp.FaultAssert, "main").ConfirmWitness()
package symtest

import (
	"testing"

	"repro/internal/bytecode"
	"repro/internal/interp"
	"repro/internal/summary"
	"repro/internal/symexec"
)

// T declares one executor scenario. Source is required; everything else
// defaults to the plain symbolic-execution configuration (interpret all
// calls, symexec.DefaultOptions).
type T struct {
	// Source is the MiniC program under test.
	Source string
	// Spec optionally bounds the symbolic inputs.
	Spec *symexec.InputSpec
	// Mode selects the call strategy: "" or symexec.CallInterpret,
	// symexec.CallHavoc, symexec.CallSummarize.
	Mode string
	// Scope is the -scope policy spec ("" means everything in scope).
	Scope string
	// Cache optionally shares mined summaries with other scenarios
	// (summarize mode only).
	Cache *summary.Cache
	// Opts mutates the executor options after defaults are applied.
	Opts func(*symexec.Options)
}

// Outcome wraps the executor result with chainable expectation helpers.
// Every Expect* method fails the test in place (with t.Helper framing) and
// returns the outcome for chaining.
type Outcome struct {
	t   *testing.T
	src string
	Res *symexec.Result
}

// Run compiles and executes the scenario.
func Run(t *testing.T, tt T) *Outcome {
	t.Helper()
	prog := bytecode.MustCompile("symtest", tt.Source)
	opts := symexec.DefaultOptions()
	if tt.Opts != nil {
		tt.Opts(&opts)
	}
	pol, err := summary.ParsePolicy(tt.Scope)
	if err != nil {
		t.Fatalf("symtest: scope %q: %v", tt.Scope, err)
	}
	opts.Calls, err = symexec.NewCallStrategy(prog, tt.Mode, pol, tt.Cache)
	if err != nil {
		t.Fatalf("symtest: call mode %q: %v", tt.Mode, err)
	}
	ex := symexec.New(prog, tt.Spec, opts)
	return &Outcome{t: t, src: tt.Source, Res: ex.Run()}
}

// Vuln returns the first detected vulnerability, failing the test if none.
func (o *Outcome) Vuln() *symexec.Vulnerability {
	o.t.Helper()
	if !o.Res.Found() {
		o.t.Fatalf("symtest: no vulnerability found (paths=%d exhausted=%v)",
			o.Res.Paths, o.Res.Exhausted)
	}
	return o.Res.Vulns[0]
}

// ExpectFound asserts at least one vulnerability was detected.
func (o *Outcome) ExpectFound() *Outcome {
	o.t.Helper()
	o.Vuln()
	return o
}

// ExpectClean asserts no vulnerability was detected.
func (o *Outcome) ExpectClean() *Outcome {
	o.t.Helper()
	if o.Res.Found() {
		o.t.Fatalf("symtest: unexpected vulnerability: %s", o.Res.Vulns[0].Site())
	}
	return o
}

// ExpectFault asserts the first vulnerability has the given kind and
// faulting function.
func (o *Outcome) ExpectFault(kind interp.FaultKind, fn string) *Outcome {
	o.t.Helper()
	v := o.Vuln()
	if v.Kind != kind || v.Func != fn {
		o.t.Fatalf("symtest: vuln = %s, want %v in %q", v.Site(), kind, fn)
	}
	return o
}

// ConfirmWitness replays the first vulnerability's witness on the concrete
// VM and asserts the same fault fires in the same function — the end-to-end
// soundness check every detection must pass.
func (o *Outcome) ConfirmWitness() *Outcome {
	o.t.Helper()
	v := o.Vuln()
	if v.Witness == nil {
		o.t.Fatalf("symtest: vulnerability has no witness: %s", v.Site())
	}
	prog := bytecode.MustCompile("symtest-confirm", o.src)
	res, err := interp.Run(prog, v.Witness, interp.Config{})
	if err != nil {
		o.t.Fatalf("symtest: concrete replay error: %v", err)
	}
	if res.Fault != v.Kind {
		o.t.Fatalf("symtest: concrete replay fault = %v, want %v (witness %+v)",
			res.Fault, v.Kind, v.Witness)
	}
	if res.FaultFunc != v.Func {
		o.t.Errorf("symtest: concrete replay fault func = %q, want %q", res.FaultFunc, v.Func)
	}
	return o
}

// WitnessInt returns the named integer from the witness.
func (o *Outcome) WitnessInt(name string) int64 {
	o.t.Helper()
	v := o.Vuln()
	if v.Witness == nil {
		o.t.Fatalf("symtest: vulnerability has no witness: %s", v.Site())
	}
	return v.Witness.Ints[name]
}

// WitnessStr returns the named string from the witness.
func (o *Outcome) WitnessStr(name string) string {
	o.t.Helper()
	v := o.Vuln()
	if v.Witness == nil {
		o.t.Fatalf("symtest: vulnerability has no witness: %s", v.Site())
	}
	return v.Witness.Strs[name]
}
