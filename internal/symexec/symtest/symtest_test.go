package symtest_test

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/symexec"
	"repro/internal/symexec/symtest"
)

// TestSymConcreteAssertFailure is ported from the executor's internal test
// suite onto the symtest harness.
func TestSymConcreteAssertFailure(t *testing.T) {
	symtest.Run(t, symtest.T{
		Source: `func main() int { assert(1 == 2); return 0; }`,
	}).ExpectFault(interp.FaultAssert, "main")
}

// fig2Src is the paper's motivating example (Fig. 2): assert(0) guarded by
// a >= 3 deep in a loop driven by the symbolic input.
const fig2Src = `
func vul_func(int a) void {
  if (a >= 3) { assert(0); }
  return;
}
func f1(int x) void {
  if (x >= 1000 || x < 0) {
    return;
  }
  int i = 0;
  while (i < x) {
    vul_func(i);
    i = i + 1;
  }
  return;
}
func main() int {
  int m = input_int("sym_m");
  f1(m);
  return 0;
}`

// TestSymBranchOnSymbolicInt is ported from the executor's internal test
// suite onto the symtest harness.
func TestSymBranchOnSymbolicInt(t *testing.T) {
	o := symtest.Run(t, symtest.T{Source: fig2Src}).
		ExpectFault(interp.FaultAssert, "vul_func").
		ConfirmWitness()
	if m := o.WitnessInt("sym_m"); m < 4 {
		t.Errorf("witness m = %d, want >= 4 (loop must reach i=3)", m)
	}
}

// TestFig2UnderSummarize pins the same detection when summarizable leaves
// are replaced by memoized path summaries.
func TestFig2UnderSummarize(t *testing.T) {
	o := symtest.Run(t, symtest.T{Source: fig2Src, Mode: symexec.CallSummarize}).
		ExpectFault(interp.FaultAssert, "vul_func").
		ConfirmWitness()
	if m := o.WitnessInt("sym_m"); m < 4 {
		t.Errorf("witness m = %d, want >= 4", m)
	}
}

// TestScopedHavocHidesCalleeFault documents the havoc soundness trade in
// harness form: an out-of-scope callee's fault is invisible, and putting it
// back in scope restores the detection.
func TestScopedHavocHidesCalleeFault(t *testing.T) {
	src := `
func check(int n) void { assert(n < 10); return; }
func main() int {
  check(input_int("n"));
  return 0;
}`
	symtest.Run(t, symtest.T{Source: src, Mode: symexec.CallHavoc, Scope: "all,-check"}).
		ExpectClean()
	symtest.Run(t, symtest.T{Source: src, Mode: symexec.CallHavoc, Scope: "all"}).
		ExpectFault(interp.FaultAssert, "check").
		ConfirmWitness()
}

// TestSummarizedLeafReturnValueFlows checks a mined summary's return
// expression participates in downstream faults exactly like an interpreted
// return value would.
func TestSummarizedLeafReturnValueFlows(t *testing.T) {
	src := `
func double(int a) int { return a + a; }
func main() int {
  int x = input_int("x");
  assert(double(x) != 14);
  return 0;
}`
	o := symtest.Run(t, symtest.T{Source: src, Mode: symexec.CallSummarize}).
		ExpectFault(interp.FaultAssert, "main").
		ConfirmWitness()
	if x := o.WitnessInt("x"); x != 7 {
		t.Errorf("witness x = %d, want 7", x)
	}
	if o.Res.SummaryCalls == 0 {
		t.Error("summarize mode never applied a summary")
	}
}
