package symexec

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/solver"
)

// This file implements the parallel in-candidate frontier engine. The
// sequential loop (runSequential) steps one state per scheduling quantum;
// here a pool of workers steps many frontier states concurrently while
// keeping the run deterministic.
//
// The engine proceeds in epochs. Each epoch:
//
//  1. Draft: up to EpochWidth states are popped from the scheduler in its
//     canonical order, on the main goroutine.
//  2. Execute: each drafted state runs one scheduling quantum on a worker
//     (static stride assignment: worker w takes drafted slots w, w+W, ...).
//     Workers never touch shared mutable structures except through the
//     locked input registry, the atomic visit counters, and the
//     copy-on-write state internals, all of which are order-independent.
//  3. Merge: on the main goroutine, in draft order, each slot's outcome is
//     folded back — step/fork deltas, vulnerabilities (site-deduped, with
//     StopAtFirstVuln honored at the first merged vulnerability), forked
//     children (addState in creation order), suspension/completion, and
//     rescheduling.
//
// Determinism argument: everything that influences exploration — the draft
// sequence, each quantum's execution, and the merge order — is a function
// of EpochWidth and the program, never of the worker count. Every drafted
// slot runs its quantum to completion even when an earlier slot's outcome
// will stop the run; post-stop slots are then discarded wholesale at merge.
// Per-slot solvers are persistent across epochs, so slot i's cache-counter
// sequence is also W-independent. Hence Workers=1 and Workers=N produce
// byte-identical Results, and the differential tests pin exactly that.
//
// Variable identity is kept deterministic by lane-striped allocation
// (solver.LaneGroup): slot i allocates fresh solver variables from lane i,
// the main executor from lane EpochWidth, and the input registry's
// overflow path from lane EpochWidth+1, so concurrent allocations never
// depend on interleaving.

// quantumOut is the collected outcome of one scheduling quantum executed
// on a worker slot: forked children in creation order, plus the drafted
// state's disposition.
type quantumOut struct {
	children []*State
	suspend  bool
	done     bool
}

// runQuantumCollect is runQuantum for worker slots: instead of mutating
// the scheduler, the suspended pool, and the global result, it collects
// the quantum's outcome for deterministic merging. Step and fork deltas
// accumulate in the slot's private res; vulnerabilities in its private
// Vulns list.
func (sx *Executor) runQuantumCollect(st *State) (out quantumOut) {
	for i := 0; i < sx.Opts.BatchSize; i++ {
		children, suspend, done := sx.step(st)
		out.children = append(out.children, children...)
		if suspend {
			out.suspend = true
			return out
		}
		if done {
			out.done = true
			return out
		}
		if sx.stopped {
			return out
		}
	}
	return out
}

// newSlot builds a worker-slot view of the executor: shared program,
// variable table, input registry, visit counters and options; private
// result deltas, solver stack (with the shared physical-verdict cache),
// and variable lane.
func (ex *Executor) newSlot(lane *solver.Lane, shared *solver.SharedCache) *Executor {
	sx := &Executor{
		Prog:     ex.Prog,
		Table:    ex.Table,
		Solver:   solver.NewCached(solver.New()),
		Opts:     ex.Opts,
		inputs:   ex.inputs,
		res:      &Result{},
		ctx:      ex.ctx,
		visits:   ex.visits,
		lane:     lane,
		parallel: true,
	}
	sx.Solver.Shared = shared
	sx.Solver.FastPaths = ex.Opts.SolverFastPaths
	return sx
}

// resetDeltas clears a slot's per-quantum accumulators.
func (sx *Executor) resetDeltas() {
	sx.res.Steps = 0
	sx.res.Forks = 0
	sx.res.SummaryCalls = 0
	sx.res.SummaryPaths = 0
	sx.res.HavocCalls = 0
	sx.res.DepthExhausted = 0
	sx.res.Vulns = sx.res.Vulns[:0]
	sx.stopped = false
}

// mergeOut folds one quantum's outcome into the main executor. The caller
// owns the executor (the epoch merge phase, or the free-run lock). A
// quantum merged after the run has stopped is discarded wholesale — its
// deltas never surface, which is deterministic because the stop point is.
func (ex *Executor) mergeOut(sx *Executor, st *State, out quantumOut) {
	if sx.visitDelta != nil {
		// Visit counts always merge — every drafted slot runs to completion
		// regardless of worker count, so the sums are schedule-deterministic
		// even for quanta whose other deltas are discarded below.
		ex.flushVisits(sx)
	}
	if ex.stopped {
		sx.resetDeltas()
		return
	}
	ex.res.Steps += sx.res.Steps
	ex.res.Forks += sx.res.Forks
	ex.res.SummaryCalls += sx.res.SummaryCalls
	ex.res.SummaryPaths += sx.res.SummaryPaths
	ex.res.HavocCalls += sx.res.HavocCalls
	ex.res.DepthExhausted += sx.res.DepthExhausted
	for _, v := range sx.res.Vulns {
		dup := false
		for _, prev := range ex.res.Vulns {
			if prev.Site() == v.Site() {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		ex.res.Vulns = append(ex.res.Vulns, v)
		if ex.Opts.StopAtFirstVuln {
			ex.stopped = true
			break
		}
	}
	sx.resetDeltas()
	if ex.stopped {
		// Mirror the sequential engine's stop-at-vulnerability: the rest of
		// the quantum's outcome (children, rescheduling) is dropped.
		return
	}
	for _, child := range out.children {
		ex.addState(child)
		if ex.stopped {
			break
		}
	}
	switch {
	case out.suspend:
		st.Status = StatusSuspended
		ex.suspended = append(ex.suspended, st)
		ex.suspensions++
		if ex.hops != nil {
			ex.hops.Observe(int64(st.Diverted))
		}
	case out.done:
		ex.res.Paths++
	default:
		if !ex.stopped {
			ex.sched.Add(st)
		}
	}
}

// foldSlotSolver adds a slot solver's counters into the main solver's, so
// the common counter fold in RunContext sees the whole run. Wall time is
// tracked separately (extraWall) because WallTime is internally atomic.
func (ex *Executor) foldSlotSolver(sx *Executor) {
	ex.Solver.Queries.Checks += sx.Solver.Queries.Checks
	ex.Solver.Queries.Sat += sx.Solver.Queries.Sat
	ex.Solver.Queries.Unsat += sx.Solver.Queries.Unsat
	ex.Solver.Queries.Unknown += sx.Solver.Queries.Unknown
	ex.Solver.Hits += sx.Solver.Hits
	ex.Solver.Misses += sx.Solver.Misses
	ex.Solver.FastSat += sx.Solver.FastSat
	ex.Solver.FastUnsat += sx.Solver.FastUnsat
	ex.Solver.Evictions += sx.Solver.Evictions
	ex.Solver.SharedHits += sx.Solver.SharedHits
	ex.Solver.SharedMisses += sx.Solver.SharedMisses
	ex.extraWall += sx.Solver.WallTime()
}

// frontier is the epoch engine's run state.
type frontier struct {
	ex      *Executor
	width   int // draft slots per epoch (determines the schedule)
	workers int // goroutines (wall-clock only)
	slots   []*Executor
	drafted []*State
	outs    []quantumOut
	busy    []time.Duration
	fill    *obs.Histogram
	start   time.Time
}

// installLanes carves the executor's variable table into deterministic
// lanes: one per slot, one for the main executor, one for the registry's
// overflow path. Called once, before any worker starts.
func (ex *Executor) installLanes(nslots int) *solver.LaneGroup {
	group := ex.Table.NewLaneGroup(nslots + 2)
	ex.lane = group.Lane(nslots)
	ex.inputs.mu.Lock()
	ex.inputs.overflow = group.Lane(nslots + 1)
	ex.inputs.mu.Unlock()
	return group
}

func newFrontier(ex *Executor, width, workers int) *frontier {
	group := ex.installLanes(width)
	shared := ex.Opts.SharedCache
	if shared == nil && workers > 1 {
		// Workers within one attempt share physical solves; counters are
		// unaffected (see solver.CachedSolver.Shared), so Workers=1 without
		// a shared cache still matches Workers=N with one.
		shared = solver.NewSharedCache(0)
	}
	if shared != nil {
		ex.Solver.Shared = shared
	}
	f := &frontier{
		ex:      ex,
		width:   width,
		workers: workers,
		slots:   make([]*Executor, width),
		drafted: make([]*State, 0, width),
		outs:    make([]quantumOut, width),
		busy:    make([]time.Duration, workers),
		start:   time.Now(),
	}
	for i := 0; i < width; i++ {
		sx := ex.newSlot(group.Lane(i), shared)
		// Buffered visit counters: plain increments during the quantum,
		// flushed at the merge barrier (see recordVisit).
		sx.visitDelta = make([][]int64, len(ex.Prog.Funcs))
		for j, fn := range ex.Prog.Funcs {
			sx.visitDelta[j] = make([]int64, len(fn.Code))
		}
		sx.visitDirty = make([]visitRef, 0, ex.Opts.BatchSize)
		f.slots[i] = sx
	}
	if ex.obsv != nil {
		f.fill = ex.obsv.Metrics.Histogram(obs.MetricEpochFill, obs.EpochFillBuckets...)
	}
	return f
}

// runEpochs is the deterministic parallel engine (Options.Workers >= 1).
func (ex *Executor) runEpochs() {
	width := ex.Opts.EpochWidth
	if width <= 0 {
		width = DefaultEpochWidth
	}
	workers := ex.Opts.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > width {
		workers = width
	}
	f := newFrontier(ex, width, workers)
	f.run()
	f.finish()
}

func (f *frontier) run() {
	ex := f.ex
	for !ex.stopped {
		if ex.res.Steps >= ex.Opts.MaxSteps {
			ex.res.StepLimited = true
			return
		}
		if err := ex.ctx.Err(); err != nil {
			ex.noteInterrupt(err)
			return
		}
		if ex.obsv != nil && ex.obsv.Interval > 0 && time.Since(ex.lastSnap) >= ex.obsv.Interval {
			ex.emitProgress()
			ex.lastSnap = time.Now()
		}
		// Draft in canonical scheduler order. The suspended pool is revived
		// only when the scheduler is empty before anything was drafted,
		// matching the sequential engine's fallback priority (children of
		// this epoch's quanta run before revived states).
		f.drafted = f.drafted[:0]
		for len(f.drafted) < f.width {
			cur := ex.sched.Next()
			if cur == nil {
				if len(f.drafted) > 0 || len(ex.suspended) == 0 {
					break
				}
				ex.reviveSuspended()
				continue
			}
			f.drafted = append(f.drafted, cur)
		}
		if len(f.drafted) == 0 {
			return
		}
		ex.res.Epochs++
		if f.fill != nil {
			f.fill.Observe(int64(len(f.drafted)))
		}
		f.dispatch()
		f.merge()
	}
}

// dispatch executes every drafted slot's quantum, on the caller when one
// worker suffices, else on a static-stride worker pool. All drafted slots
// always run to completion — even if an earlier slot's outcome will stop
// the run — so guidance bookkeeping and per-slot solver counters are
// independent of the worker count.
func (f *frontier) dispatch() {
	n := len(f.drafted)
	w := f.workers
	if w > n {
		w = n
	}
	// Goroutines beyond the runnable-thread limit cannot overlap and only
	// pay scheduling latency at the epoch barrier. Results are unchanged:
	// draft order, quantum boundaries, and merge order depend only on
	// EpochWidth, never on how slots are spread across workers.
	if p := runtime.GOMAXPROCS(0); w > p {
		w = p
	}
	if w <= 1 {
		t0 := time.Now()
		for i := 0; i < n; i++ {
			f.outs[i] = f.slots[i].runQuantumCollect(f.drafted[i])
		}
		f.busy[0] += time.Since(t0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for wk := 0; wk < w; wk++ {
		go func(wk int) {
			defer wg.Done()
			t0 := time.Now()
			for i := wk; i < n; i += w {
				f.outs[i] = f.slots[i].runQuantumCollect(f.drafted[i])
			}
			f.busy[wk] += time.Since(t0)
		}(wk)
	}
	wg.Wait()
}

// merge folds the epoch's outcomes back in draft order.
func (f *frontier) merge() {
	for i, st := range f.drafted {
		out := f.outs[i]
		f.outs[i] = quantumOut{}
		f.ex.mergeOut(f.slots[i], st, out)
	}
}

// finish folds the slots' solver counters and emits the engine metrics.
func (f *frontier) finish() {
	ex := f.ex
	for i, sx := range f.slots {
		// Per-slot solver wall is recorded before the fold collapses it
		// into the run total, so traces keep the split by lane instead of
		// one undifferentiated accumulation.
		if ex.obsv != nil {
			if w := sx.Solver.WallTime(); w > 0 {
				ex.obsv.Metrics.Counter(obs.SlotSolverWallMetric(i)).Add(int64(w))
			}
		}
		ex.foldSlotSolver(sx)
	}
	if ex.obsv == nil {
		return
	}
	var busy time.Duration
	for _, b := range f.busy {
		busy += b
	}
	m := ex.obsv.Metrics
	m.Counter(obs.MetricWorkerBusyNanos).Add(int64(busy))
	if elapsed := time.Since(f.start); elapsed > 0 && f.workers > 0 {
		util := 100 * int64(busy) / (int64(elapsed) * int64(f.workers))
		m.Gauge(obs.MetricWorkerUtilPct).SetMax(util)
	}
}

// runFree is the free-running engine (Options.FreeRun with Workers > 1):
// workers pull states from the scheduler continuously and merge outcomes
// under a lock. No epoch barrier, so idle time is minimal — but the
// exploration order, and with it every counter and which vulnerability is
// found first, depends on timing. Only the set of reachable behaviors is
// preserved, not the sequential engine's determinism.
func (ex *Executor) runFree() {
	w := ex.Opts.Workers
	group := ex.installLanes(w)
	shared := ex.Opts.SharedCache
	if shared == nil {
		shared = solver.NewSharedCache(0)
	}
	ex.Solver.Shared = shared
	slots := make([]*Executor, w)
	for i := range slots {
		slots[i] = ex.newSlot(group.Lane(i), shared)
	}

	var mu sync.Mutex
	cond := sync.NewCond(&mu)
	inflight := 0
	// halted reports (and records, once) any stop condition. Caller holds mu.
	halted := func() bool {
		if ex.stopped {
			return true
		}
		if ex.res.Steps >= ex.Opts.MaxSteps {
			ex.res.StepLimited = true
			return true
		}
		if err := ex.ctx.Err(); err != nil {
			if !ex.res.TimedOut && !ex.res.Cancelled {
				ex.noteInterrupt(err)
			}
			return true
		}
		return false
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for wk := 0; wk < w; wk++ {
		go func(sx *Executor) {
			defer wg.Done()
			mu.Lock()
			for {
				if halted() {
					break
				}
				cur := ex.sched.Next()
				if cur == nil {
					if inflight > 0 {
						// A running quantum may fork children; wait for its
						// merge before concluding the frontier is empty.
						cond.Wait()
						continue
					}
					if len(ex.suspended) > 0 {
						ex.reviveSuspended()
						continue
					}
					break
				}
				inflight++
				mu.Unlock()
				out := sx.runQuantumCollect(cur)
				mu.Lock()
				inflight--
				ex.mergeOut(sx, cur, out)
				cond.Broadcast()
			}
			mu.Unlock()
			cond.Broadcast()
		}(slots[wk])
	}
	wg.Wait()
	for i, sx := range slots {
		if ex.obsv != nil {
			if wall := sx.Solver.WallTime(); wall > 0 {
				ex.obsv.Metrics.Counter(obs.SlotSolverWallMetric(i)).Add(int64(wall))
			}
		}
		ex.foldSlotSolver(sx)
	}
}
