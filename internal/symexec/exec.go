package symexec

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/bytecode"
	"repro/internal/interp"
	"repro/internal/minic"
	"repro/internal/obs"
	"repro/internal/solver"
	"repro/internal/trace"
)

// HookDecision is the guidance hook's verdict for a state at a location.
type HookDecision int

// Hook decisions.
const (
	HookContinue HookDecision = iota
	HookSuspend
)

// LocationHook observes a state crossing an instrumentation location
// (function entry/exit). StatSym's state manager is implemented as such a
// hook: it tracks candidate-path progress, applies predicate constraints,
// and suspends states that diverge beyond the hop threshold.
type LocationHook func(ex *Executor, st *State, loc trace.Location, view *VarView) HookDecision

// Options configures an execution.
type Options struct {
	// Sched selects the state scheduler (default: BFS, the pure baseline).
	Sched Scheduler
	// MaxStates bounds live states; exceeding it aborts the run with
	// Exhausted=true — the analogue of KLEE running out of memory
	// ("state exploration failure due to lack of available memory",
	// §VII-B). Zero means DefaultMaxStates.
	MaxStates int
	// MaxSteps bounds total executed instructions (0: DefaultMaxSteps).
	MaxSteps int64
	// Timeout bounds wall-clock time (0: none).
	Timeout time.Duration
	// StopAtFirstVuln stops the whole run at the first vulnerability.
	StopAtFirstVuln bool
	// BatchSize is the scheduling quantum in instructions (0: default).
	BatchSize int
	// MaxDepth bounds the call stack.
	MaxDepth int
	// CheckStringReads enables out-of-bounds oracles on char() with
	// symbolic operands (extra solver queries). Defaults to true via
	// DefaultOptions.
	CheckStringReads bool
	// Hook is the guidance hook (nil for pure symbolic execution).
	Hook LocationHook
	// Calls selects the compositional call strategy (nil: interpret every
	// call, today's behavior). Build one with NewCallStrategy; the same
	// strategy value is shared read-only by the frontier engine's worker
	// slots, so implementations must be concurrency-safe.
	Calls CallStrategy
	// SharedCache, when set, lets this executor's solver reuse verdicts
	// solved by other executors (parallel candidate verification). Purely
	// a wall-clock optimization: verdicts, models, and all Result counters
	// are unaffected (the solver is deterministic and the local logical
	// counters are maintained identically on shared hits).
	SharedCache *solver.SharedCache
	// OriginHashes, when set, is the per-function content-hash table
	// (summary.HashProgram, indexed by Fn.Index). The executor stamps each
	// solver query with the hash of the function whose branch issued it,
	// so the persistent cache can attribute — and later invalidate —
	// entries by origin function. Purely attributive: never consulted for
	// verdicts.
	OriginHashes []uint64
	// SolverFastPaths enables the solver cache's heuristic layer
	// (UNSAT-core subsumption, Sat-model reuse). Unlike the exact-match
	// caches this can change exploration — reused models carry different
	// concrete values and subsumption can sharpen Unknown into Unsat — so
	// it is opt-in (see solver.CachedSolver.FastPaths).
	SolverFastPaths bool
	// Workers selects the engine. 0 (the default) runs the original
	// sequential loop. >= 1 runs the epoch-based parallel frontier engine
	// (frontier.go) with that many worker goroutines: states are drafted
	// from the scheduler in canonical order, stepped concurrently, and
	// merged back in draft order. Results depend only on EpochWidth, never
	// on the worker count, so Workers=1 and Workers=8 produce identical
	// Results (and the race detector stays clean). Note the epoch engine is
	// a different deterministic engine from the sequential loop: variable
	// numbering is laned and input channels are pre-registered, so its
	// exploration can differ from Workers=0 on programs where those matter.
	Workers int
	// EpochWidth is the number of states drafted per epoch (0:
	// DefaultEpochWidth). It, not Workers, determines the schedule.
	EpochWidth int
	// FreeRun, with Workers > 1, drops the epoch barrier: workers pull
	// states continuously and merge under a lock. Fastest wall-clock, but
	// exploration order — and therefore counters and which vulnerability is
	// found first — becomes timing-dependent. Off by default.
	FreeRun bool
}

// Default limits.
const (
	DefaultMaxStates  = 20_000
	DefaultMaxSteps   = 20_000_000
	DefaultBatchSize  = 64
	DefaultMaxDepth   = 128
	DefaultEpochWidth = 8
)

// DefaultOptions returns the pure-symbolic-execution defaults.
func DefaultOptions() Options {
	return Options{
		StopAtFirstVuln:  true,
		CheckStringReads: true,
	}
}

// Vulnerability is a proven-reachable fault with its complete path,
// constraints, and a concrete witness input — the tool's primary output
// ("the complete execution path (and path constraints) that leads to the
// program failure point", §IV).
type Vulnerability struct {
	Kind        interp.FaultKind
	Func        string
	Pos         minic.Pos
	Path        []trace.Location
	Constraints []solver.Constraint
	Model       solver.Model
	Witness     *interp.Input
}

// Site returns a stable identifier of the fault site.
func (v *Vulnerability) Site() string {
	return fmt.Sprintf("%s:%s@%s", v.Kind, v.Func, v.Pos)
}

// Result summarizes an execution.
type Result struct {
	Vulns []*Vulnerability
	// Paths counts completed paths (terminated, faulted, or proven
	// infeasible states) — the "#paths" column of Table IV.
	Paths int
	// StatesCreated counts every state ever scheduled; MaxLive is the
	// peak live-state count.
	StatesCreated int
	MaxLive       int
	Steps         int64
	Forks         int
	// Compositional-call counters (deterministic; timing-dependent summary
	// cache hit/miss rates live on summary.Cache instead). SummaryCalls
	// counts calls replaced by summary instantiation, SummaryPaths the
	// feasible paths those instantiations produced, HavocCalls the
	// out-of-scope calls replaced by havoc summaries, and DepthExhausted
	// the paths cut off by the MaxDepth call-stack bound.
	SummaryCalls   int
	SummaryPaths   int
	HavocCalls     int
	DepthExhausted int
	// SolverChecks/SolverUnknowns count satisfiability queries issued to
	// the solver (excluding model-cache fast paths); SolverSat/SolverUnsat
	// split the decided queries by verdict.
	SolverChecks   int
	SolverUnknowns int
	SolverSat      int
	SolverUnsat    int
	// CacheHits/CacheMisses are the solver query-cache counters and
	// SolverTime the wall clock spent inside non-memoized solver checks —
	// surfaced here so pipeline reports need not reach into the solver.
	// CacheFastSat/CacheFastUnsat count queries answered by the KLEE-style
	// subset/superset shortcuts (a subclass of CacheMisses), and
	// CacheEvictions counts LRU evictions from the exact-match cache.
	CacheHits      int
	CacheMisses    int
	CacheFastSat   int
	CacheFastUnsat int
	CacheEvictions int
	SolverTime     time.Duration
	// Exhausted reports the state-budget abort (KLEE OOM analogue);
	// StepLimited and TimedOut report the other resource aborts.
	Exhausted   bool
	StepLimited bool
	TimedOut    bool
	// Cancelled reports that the run's context was cancelled by the
	// caller (user interrupt, a sibling candidate winning the race) —
	// distinct from TimedOut, which reports an expired wall-clock budget.
	Cancelled bool
	Elapsed   time.Duration
	// SuspendedAtEnd counts states still suspended when the run stopped.
	SuspendedAtEnd int
	// Revivals counts suspended-pool revivals (guidance fallback events).
	Revivals int
	// Epochs counts merge epochs of the parallel frontier engine (0 under
	// the sequential engine). Deterministic: a function of EpochWidth and
	// the program, never of Workers.
	Epochs int64
}

// Found reports whether at least one vulnerability was discovered.
func (r *Result) Found() bool { return len(r.Vulns) > 0 }

// Executor drives symbolic execution of one program.
type Executor struct {
	Prog   *bytecode.Program
	Table  *solver.VarTable
	Solver *solver.CachedSolver
	Opts   Options

	inputs    *inputRegistry
	sched     Scheduler
	suspended []*State
	res       *Result

	nextID  int
	nextSeq int
	ctx     context.Context
	stopped bool

	// resumed marks an executor reconstructed from a checkpoint: its
	// scheduler is already populated, so RunContext must not re-run
	// program initialization (see checkpoint.go).
	resumed bool

	visits [][]int64

	// Parallel frontier engine plumbing (see frontier.go). lane, when set,
	// supplies this executor view's fresh variable IDs (each worker slot has
	// its own lane so concurrent allocation is deterministic); parallel
	// marks the visit counters as shared across workers (atomic updates);
	// extraWall accumulates the worker slots' solver wall time.
	lane      *solver.Lane
	parallel  bool
	extraWall time.Duration

	// Epoch-engine slots buffer visit counts locally (visitDelta, with
	// visitDirty listing the touched instructions) and flush them into the
	// main executor's arrays at the merge barrier, where the scheduler —
	// the only reader — runs. This replaces a contended atomic add per
	// instruction with a plain local increment; free-run slots leave these
	// nil and keep the atomic path, since there the scheduler reads counts
	// while workers are mid-quantum.
	visitDelta [][]int64
	visitDirty []visitRef

	// Observability (nil when disabled — the only cost is nil checks).
	// obsv/span are resolved once per RunContext from the context; hops is
	// the pre-resolved diverted-hop histogram so the suspension path does
	// not take the registry lock; suspensions feeds the pruned-states
	// counter.
	obsv        *obs.Obs
	span        *obs.Span
	hops        *obs.Histogram
	lastSnap    time.Time
	suspensions int64
}

// New prepares an executor for prog with the given symbolic-input spec.
func New(prog *bytecode.Program, spec *InputSpec, opts Options) *Executor {
	table := solver.NewVarTable()
	if opts.Sched == nil {
		opts.Sched = NewBFS()
	}
	if opts.MaxStates == 0 {
		opts.MaxStates = DefaultMaxStates
	}
	if opts.MaxSteps == 0 {
		opts.MaxSteps = DefaultMaxSteps
	}
	if opts.BatchSize == 0 {
		opts.BatchSize = DefaultBatchSize
	}
	if opts.MaxDepth == 0 {
		opts.MaxDepth = DefaultMaxDepth
	}
	ex := &Executor{
		Prog:   prog,
		Table:  table,
		Solver: solver.NewCached(solver.New()),
		Opts:   opts,
		inputs: newInputRegistry(table, spec),
		sched:  opts.Sched,
		res:    &Result{},
		visits: make([][]int64, len(prog.Funcs)),
	}
	ex.Solver.Shared = opts.SharedCache
	ex.Solver.FastPaths = opts.SolverFastPaths
	if cov, ok := opts.Sched.(*CoverageScheduler); ok {
		cov.SetVisitFunc(ex.visitCount)
	}
	if opts.Workers > 0 {
		ex.parallel = true
		// Deterministic variable identity under concurrency: pre-register
		// every literal-named input channel and reserve byte blocks for
		// symbolic strings, so IDs never depend on which worker gets there
		// first.
		ex.inputs.blocks = true
		ex.inputs.prescan(prog)
		// Visit counters become shared across workers; allocate them all up
		// front so recordVisit never races a lazy allocation.
		for i, fn := range prog.Funcs {
			ex.visits[i] = make([]int64, len(fn.Code))
		}
	}
	return ex
}

// alloc returns this executor view's variable allocator: its lane under the
// parallel frontier engine, the dense table otherwise.
func (ex *Executor) alloc() solver.VarAllocator {
	if ex.lane != nil {
		return ex.lane
	}
	return ex.Table
}

func (ex *Executor) newVar(name string) solver.Var {
	return ex.alloc().NewVar(name)
}

func (ex *Executor) newVarBounded(name string, lo, hi int64) solver.Var {
	return ex.alloc().NewVarBounded(name, lo, hi)
}

func (ex *Executor) freshStr(label string, maxLen int64) *SymString {
	return ex.inputs.freshStr(ex.alloc(), label, maxLen)
}

func (ex *Executor) visitCount(fnIndex, pc int) int64 {
	v := ex.visits[fnIndex]
	if v == nil || pc >= len(v) {
		return 0
	}
	if ex.parallel {
		// Free-running workers may be mid-quantum while the scheduler
		// consults visit counts.
		return atomic.LoadInt64(&v[pc])
	}
	return v[pc]
}

// visitRef names one instruction with a buffered visit delta.
type visitRef struct {
	fn, pc int32
}

func (ex *Executor) recordVisit(fnIndex, pc int) {
	if ex.visits[fnIndex] == nil {
		ex.visits[fnIndex] = make([]int64, len(ex.Prog.Funcs[fnIndex].Code))
	}
	if pc < len(ex.visits[fnIndex]) {
		if ex.visitDelta != nil {
			// Epoch-engine slot: buffer locally, flushed at the merge
			// barrier (order-independent sums keep scheduling deterministic).
			d := ex.visitDelta[fnIndex]
			if d[pc] == 0 {
				ex.visitDirty = append(ex.visitDirty, visitRef{fn: int32(fnIndex), pc: int32(pc)})
			}
			d[pc]++
			return
		}
		if ex.parallel {
			// Free-running worker slots share the main executor's arrays;
			// counts are order-independent sums, so atomic increments keep
			// them coherent. (Parallel mode pre-allocates every array.)
			atomic.AddInt64(&ex.visits[fnIndex][pc], 1)
			return
		}
		ex.visits[fnIndex][pc]++
	}
}

// flushVisits folds a slot's buffered visit counts into the main arrays.
// Called at the merge barrier, where no worker is running.
func (ex *Executor) flushVisits(sx *Executor) {
	for _, ref := range sx.visitDirty {
		d := sx.visitDelta[ref.fn]
		ex.visits[ref.fn][ref.pc] += d[ref.pc]
		d[ref.pc] = 0
	}
	sx.visitDirty = sx.visitDirty[:0]
}

// Run executes until a stop condition: vulnerability found (with
// StopAtFirstVuln), state space exhausted, budget exceeded, or no states
// remain.
func (ex *Executor) Run() *Result {
	return ex.RunContext(context.Background())
}

// RunContext is Run under a context: the step loop checks the context
// cooperatively once per scheduling quantum, so cancellation latency is
// bounded by one batch of instructions (plus at most one solver query,
// each of which is itself budget-bounded). Options.Timeout, when set, is
// layered on top of ctx as a deadline; an expired deadline is recorded as
// TimedOut, an explicit cancellation as Cancelled. Either way the Result
// is complete and internally consistent — counters reflect exactly the
// work done before the stop.
func (ex *Executor) RunContext(ctx context.Context) *Result {
	start := time.Now()
	if ctx == nil {
		ctx = context.Background()
	}
	if ex.Opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, ex.Opts.Timeout)
		defer cancel()
	}
	ex.ctx = ctx
	if o := obs.FromContext(ctx); o != nil {
		ex.obsv = o
		ex.span = obs.SpanFromContext(ctx)
		ex.hops = o.Metrics.Histogram(obs.MetricDivertedHops, obs.HopBuckets...)
		ex.lastSnap = start
	}
	if !ex.resumed {
		st, err := ex.initialState()
		if err != nil {
			// Initialization of globals cannot fork or fault in checked
			// programs; treat failures as an empty result.
			ex.res.Elapsed = time.Since(start)
			return ex.res
		}
		ex.addState(st)
	}
	switch {
	case ex.Opts.Workers > 1 && ex.Opts.FreeRun:
		ex.runFree()
	case ex.Opts.Workers > 0:
		ex.runEpochs()
	default:
		ex.runSequential()
	}
	ex.res.SuspendedAtEnd = len(ex.suspended)
	// Logical solver counters (CachedSolver.Queries, not S.Stats): they
	// are identical whether or not a SharedCache served some verdicts, so
	// Report counters stay deterministic across run configurations.
	ex.res.SolverChecks = ex.Solver.Queries.Checks
	ex.res.SolverUnknowns = ex.Solver.Queries.Unknown
	ex.res.SolverSat = ex.Solver.Queries.Sat
	ex.res.SolverUnsat = ex.Solver.Queries.Unsat
	ex.res.CacheHits = ex.Solver.Hits
	ex.res.CacheMisses = ex.Solver.Misses
	ex.res.CacheFastSat = ex.Solver.FastSat
	ex.res.CacheFastUnsat = ex.Solver.FastUnsat
	ex.res.CacheEvictions = ex.Solver.Evictions
	ex.res.SolverTime = ex.Solver.WallTime() + ex.extraWall
	ex.res.Elapsed = time.Since(start)
	if ex.obsv != nil {
		ex.mirrorMetrics()
	}
	return ex.res
}

// runSequential is the original single-threaded scheduling loop.
func (ex *Executor) runSequential() {
	for !ex.stopped {
		if ex.res.Steps >= ex.Opts.MaxSteps {
			ex.res.StepLimited = true
			break
		}
		if err := ex.ctx.Err(); err != nil {
			ex.noteInterrupt(err)
			break
		}
		if ex.obsv != nil && ex.obsv.Interval > 0 && time.Since(ex.lastSnap) >= ex.obsv.Interval {
			ex.emitProgress()
			ex.lastSnap = time.Now()
		}
		cur := ex.sched.Next()
		if cur == nil {
			if len(ex.suspended) == 0 {
				break
			}
			// Revive the suspended pool: guidance found nothing among the
			// prioritized states, so fall back toward pure symbolic
			// execution (paper footnote 1).
			ex.reviveSuspended()
			continue
		}
		ex.runQuantum(cur)
	}
}

// reviveSuspended returns every suspended state to the scheduler.
func (ex *Executor) reviveSuspended() {
	ex.res.Revivals++
	for _, s := range ex.suspended {
		s.Revived = true
		s.Status = StatusActive
		ex.sched.Add(s)
	}
	ex.suspended = ex.suspended[:0]
}

// emitProgress streams a snapshot of the live counters to the event sink,
// attached to the enclosing span (the per-candidate verify span in the
// pipeline). Called at most once per Obs.Interval from the scheduling
// loop, so a long quantum delays a snapshot by at most one batch.
func (ex *Executor) emitProgress() {
	phase := "explore"
	if ex.span != nil {
		phase = ex.span.Name
	}
	attrs := []obs.Attr{
		obs.A("phase", phase),
		obs.A("steps", ex.res.Steps),
		obs.A("paths", ex.res.Paths),
		obs.A("states_live", ex.liveStates()),
		obs.A("states_created", ex.res.StatesCreated),
		obs.A("suspended", len(ex.suspended)),
		obs.A("solver_checks", ex.Solver.Queries.Checks),
		obs.A("cache_hits", ex.Solver.Hits),
		obs.A("cache_misses", ex.Solver.Misses),
		obs.A("solver_wall_us", ex.Solver.WallTime().Microseconds()),
	}
	if ex.res.Epochs > 0 {
		attrs = append(attrs, obs.A("epochs", ex.res.Epochs))
	}
	if ex.res.SummaryCalls > 0 {
		attrs = append(attrs, obs.A("summary_calls", ex.res.SummaryCalls))
	}
	ex.obsv.Progress(ex.span, attrs...)
}

// mirrorMetrics folds the run's final counters into the shared metrics
// registry under the standard names. Done once at the end of the run —
// the hot loop touches no metric except the pre-resolved hop histogram.
func (ex *Executor) mirrorMetrics() {
	m := ex.obsv.Metrics
	r := ex.res
	m.Counter(obs.MetricSteps).Add(r.Steps)
	m.Counter(obs.MetricForks).Add(int64(r.Forks))
	m.Counter(obs.MetricPaths).Add(int64(r.Paths))
	m.Counter(obs.MetricStatesCreated).Add(int64(r.StatesCreated))
	m.Counter(obs.MetricStatesPruned).Add(ex.suspensions)
	m.Counter(obs.MetricRevivals).Add(int64(r.Revivals))
	m.Gauge(obs.MetricStatesLive).SetMax(int64(r.MaxLive))
	m.Counter(obs.MetricSolverChecks).Add(int64(r.SolverChecks))
	m.Counter(obs.MetricSolverSat).Add(int64(r.SolverSat))
	m.Counter(obs.MetricSolverUnsat).Add(int64(r.SolverUnsat))
	m.Counter(obs.MetricSolverUnknown).Add(int64(r.SolverUnknowns))
	m.Counter(obs.MetricCacheHits).Add(int64(r.CacheHits))
	m.Counter(obs.MetricCacheMisses).Add(int64(r.CacheMisses))
	m.Counter(obs.MetricCacheFastSat).Add(int64(r.CacheFastSat))
	m.Counter(obs.MetricCacheFastUnsat).Add(int64(r.CacheFastUnsat))
	// Evictions split by cause: capacity pressure (r.CacheEvictions, the
	// historical meaning) vs origin invalidation after a code change. The
	// unsplit counter stays as the total for dashboard continuity.
	m.Counter(obs.MetricCacheEvictions).Add(int64(r.CacheEvictions) + int64(ex.Solver.Invalidations))
	m.Counter(obs.MetricCacheEvictionsCapacity).Add(int64(r.CacheEvictions))
	if ex.Solver.Invalidations > 0 {
		m.Counter(obs.MetricCacheEvictionsInvalidate).Add(int64(ex.Solver.Invalidations))
	}
	if ex.Solver.Shared != nil {
		// Per-executor contributions; summed across executors they equal
		// the SharedCache's own totals.
		m.Counter(obs.MetricSharedCacheHits).Add(int64(ex.Solver.SharedHits))
		m.Counter(obs.MetricSharedCacheMisses).Add(int64(ex.Solver.SharedMisses))
	}
	if r.SummaryCalls > 0 || r.SummaryPaths > 0 {
		m.Counter(obs.MetricSummaryCalls).Add(int64(r.SummaryCalls))
		m.Counter(obs.MetricSummaryPaths).Add(int64(r.SummaryPaths))
	}
	if r.HavocCalls > 0 {
		m.Counter(obs.MetricHavocCalls).Add(int64(r.HavocCalls))
	}
	if r.DepthExhausted > 0 {
		m.Counter(obs.MetricDepthExhausted).Add(int64(r.DepthExhausted))
	}
	if r.Epochs > 0 {
		m.Counter(obs.MetricEpochs).Add(r.Epochs)
		m.Gauge(obs.MetricWorkers).SetMax(int64(ex.Opts.Workers))
	}
}

// noteInterrupt records why the context stopped the run: a deadline is a
// timeout (the classic resource abort), anything else is a cancellation.
func (ex *Executor) noteInterrupt(err error) {
	if err == context.DeadlineExceeded {
		ex.res.TimedOut = true
		return
	}
	ex.res.Cancelled = true
}

// runCtx returns the active run context (Background outside RunContext,
// e.g. for hook-driven solver calls issued from tests).
func (ex *Executor) runCtx() context.Context {
	if ex.ctx == nil {
		return context.Background()
	}
	return ex.ctx
}

// initialState runs $init (straight-line global initializers) and returns
// a state poised at main's entry.
func (ex *Executor) initialState() (*State, error) {
	prog := ex.Prog
	st := &State{ID: ex.nextID, Status: StatusActive}
	ex.nextID++
	st.Globals = make([]Value, len(prog.Globals))
	for i, g := range prog.Globals {
		if g.Type == minic.TypeString {
			st.Globals[i] = StrVal("")
		} else {
			st.Globals[i] = IntVal(0)
		}
	}
	initFn := prog.Funcs[prog.InitIndex]
	st.Frames = []*Frame{{Fn: initFn, Locals: make([]Value, initFn.NumLocals)}}
	for len(st.Frames) > 0 {
		children, suspend, done := ex.step(st)
		if len(children) > 0 || suspend {
			return nil, fmt.Errorf("symexec: global initializers must be deterministic")
		}
		if done {
			break
		}
	}
	if st.Status == StatusFaulted {
		return nil, fmt.Errorf("symexec: fault during global initialization")
	}
	// Enter main.
	st.Status = StatusActive
	mainFn := prog.Funcs[prog.MainIndex]
	st.Frames = []*Frame{{Fn: mainFn, Locals: make([]Value, mainFn.NumLocals)}}
	ex.fireLocation(st, trace.Location{Func: mainFn.Name, Kind: trace.EventEnter}, nil)
	return st, nil
}

func (ex *Executor) addState(st *State) {
	if st.ID < 0 {
		st.ID = ex.nextID
		ex.nextID++
	}
	st.seq = ex.nextSeq
	ex.nextSeq++
	ex.res.StatesCreated++
	if st.pendingSuspend {
		// The guidance hook suspended this child at its birth (per-path
		// Leave events of a summary application); park it directly.
		st.pendingSuspend = false
		st.Status = StatusSuspended
		ex.suspended = append(ex.suspended, st)
		ex.suspensions++
		if ex.hops != nil {
			ex.hops.Observe(int64(st.Diverted))
		}
	} else {
		st.Status = StatusActive
		ex.sched.Add(st)
	}
	if live := ex.liveStates(); live > ex.res.MaxLive {
		ex.res.MaxLive = live
	}
	if ex.liveStates() > ex.Opts.MaxStates {
		ex.res.Exhausted = true
		ex.stopped = true
	}
}

func (ex *Executor) liveStates() int {
	return ex.sched.Len() + len(ex.suspended)
}

// runQuantum executes up to BatchSize instructions of st, then reinserts
// it into the scheduler if it is still runnable.
func (ex *Executor) runQuantum(st *State) {
	for i := 0; i < ex.Opts.BatchSize; i++ {
		children, suspend, done := ex.step(st)
		for _, child := range children {
			ex.addState(child)
			if ex.stopped {
				return
			}
		}
		if suspend {
			st.Status = StatusSuspended
			ex.suspended = append(ex.suspended, st)
			ex.suspensions++
			if ex.hops != nil {
				ex.hops.Observe(int64(st.Diverted))
			}
			return
		}
		if done {
			ex.res.Paths++
			return
		}
		if ex.stopped || ex.res.Steps >= ex.Opts.MaxSteps {
			break
		}
	}
	if !ex.stopped {
		ex.sched.Add(st)
	}
}

// --- satisfiability plumbing ---

func allHold(cons []solver.Constraint, m solver.Model) bool {
	for _, c := range cons {
		if !c.Holds(m) {
			return false
		}
	}
	return true
}

// satisfiable decides pc(st) ∧ extra. Three incremental fast paths avoid
// most full solver queries on long loop chains:
//
//  1. model check: the extras already hold under the cached model;
//  2. bounds refutation: a single-variable extra contradicts the interval
//     the path condition implies for that variable;
//  3. disjoint solve: extras whose variables the path condition does not
//     mention are decided in isolation and their model merged.
func (ex *Executor) satisfiable(st *State, extra ...solver.Constraint) (bool, solver.Model) {
	// Stamp the query with its origin function's content hash (persistence
	// attribution; see Options.OriginHashes). The model-check shortcut
	// below issues no solver query, so stamping first costs nothing there.
	if ex.Opts.OriginHashes != nil && len(st.Frames) > 0 {
		if fn := st.Frames[len(st.Frames)-1].Fn; fn.Index < len(ex.Opts.OriginHashes) {
			ex.Solver.Origin = ex.Opts.OriginHashes[fn.Index]
		}
	}
	if st.LastModel != nil && allHold(extra, st.LastModel) && allHold(st.Constraints, st.LastModel) {
		return true, st.LastModel
	}
	if ex.refutedByBounds(st, extra) {
		return false, nil
	}
	if st.LastModel != nil && ex.disjointFromPC(st, extra) {
		res, m := ex.Solver.CheckCtx(ex.runCtx(), ex.Table, extra)
		switch res {
		case solver.Sat:
			merged := make(solver.Model, len(st.LastModel)+len(m))
			for k, v := range st.LastModel {
				merged[k] = v
			}
			for k, v := range m {
				merged[k] = v
			}
			return true, merged
		case solver.Unsat:
			return false, nil
		}
		// Unknown: fall through to the full query.
	}
	query := make([]solver.Constraint, 0, len(st.Constraints)+len(extra))
	query = append(query, st.Constraints...)
	// The query digest extends the state's rolling path-condition digest,
	// so the whole conjunction is never re-hashed.
	qd := st.pcDigest
	for _, c := range extra {
		query = append(query, c)
		qd = qd.Add(solver.HashConstraint(c))
	}
	// Independent-component solving (KLEE's independence optimization):
	// only the components touched by the new constraints re-solve; the
	// rest hit the query cache.
	res, m := ex.Solver.CheckPartitionedDigestCtx(ex.runCtx(), ex.Table, query, qd)
	switch res {
	case solver.Sat:
		return true, m
	case solver.Unsat:
		return false, nil
	default:
		// Unknown: explore optimistically (sound for vulnerability search:
		// definite faults are still confirmed by concrete witnesses).
		return true, nil
	}
}

// disjointFromPC reports whether no extra constraint mentions a variable
// of the path condition.
func (ex *Executor) disjointFromPC(st *State, extra []solver.Constraint) bool {
	for _, c := range extra {
		for _, tm := range c.E.Terms {
			if st.mentions(tm.Var) {
				return false
			}
		}
	}
	return true
}

// refutedByBounds reports a cheap contradiction: a single-variable extra
// constraint incompatible with the interval implied by the path condition
// plus the variable's intrinsic bounds.
func (ex *Executor) refutedByBounds(st *State, extra []solver.Constraint) bool {
	for _, c := range extra {
		v, coeff, single := c.E.SingleVar()
		if !single || (coeff != 1 && coeff != -1) {
			continue
		}
		b := st.bounds[v]
		info := ex.Table.Info(v)
		if info.HasLo && (!b.HasLo || info.Lo > b.Lo) {
			b.Lo, b.HasLo = info.Lo, true
		}
		if info.HasHi && (!b.HasHi || info.Hi < b.Hi) {
			b.Hi, b.HasHi = info.Hi, true
		}
		switch {
		case c.Op == solver.OpLe && coeff == 1: // v <= k
			if k := -c.E.Const; b.HasLo && b.Lo > k {
				return true
			}
		case c.Op == solver.OpLe && coeff == -1: // v >= k
			if k := c.E.Const; b.HasHi && b.Hi < k {
				return true
			}
		case c.Op == solver.OpEq:
			k := -c.E.Const
			if coeff == -1 {
				k = c.E.Const
			}
			if (b.HasLo && k < b.Lo) || (b.HasHi && k > b.Hi) {
				return true
			}
		case c.Op == solver.OpNe:
			k := -c.E.Const
			if coeff == -1 {
				k = c.E.Const
			}
			if b.HasLo && b.HasHi && b.Lo == k && b.Hi == k {
				return true
			}
		}
	}
	return false
}

// commit appends constraints to the path condition and installs the model
// that witnesses them.
func (ex *Executor) commit(st *State, m solver.Model, cons ...solver.Constraint) {
	for _, c := range cons {
		addPathConstraint(st, c)
	}
	if m != nil {
		st.LastModel = m
	}
}

// TryAddConstraints applies predicate constraints to a state if they are
// consistent with its path condition; reports whether they were applied.
// Used by the guidance hook for intra-function predicate gating (§VI-C).
func (ex *Executor) TryAddConstraints(st *State, cons []solver.Constraint) bool {
	if len(cons) == 0 {
		return true
	}
	ok, m := ex.satisfiable(st, cons...)
	if !ok {
		return false
	}
	ex.commit(st, m, cons...)
	return true
}

// seedModelValue installs a seed assignment into a state's cached model
// without disturbing solver-derived bindings. It only creates a model when
// the path condition is still empty (so the invariant "the cached model
// satisfies the path condition" holds trivially) and never overwrites an
// existing binding.
func (ex *Executor) seedModelValue(st *State, v solver.Var, val int64) {
	if st.LastModel == nil {
		if len(st.Constraints) > 0 {
			return
		}
		st.LastModel = solver.Model{v: val}
		return
	}
	if _, exists := st.LastModel[v]; exists {
		return
	}
	ex.extendModel(st, v, val)
}

// maybeSeedStr seeds a symbolic string's length (and records the value for
// byte seeding) when a seed input supplies the channel.
func (ex *Executor) maybeSeedStr(st *State, v Value, kind byte, name string, argIdx int64) {
	if v.Kind != KindString || v.Str == nil || v.Str.IsLit {
		return
	}
	seed, ok := ex.inputs.seedStr(kind, name, argIdx)
	if !ok {
		return
	}
	ex.inputs.noteSeedStr(v.Str.ID, seed)
	ex.seedModelValue(st, v.Str.LenVar, int64(len(seed)))
}

// extendModel installs var=val into the state's cached model (copy on
// write: models are shared across forks).
func (ex *Executor) extendModel(st *State, v solver.Var, val int64) {
	if st.LastModel == nil {
		return
	}
	nm := make(solver.Model, len(st.LastModel)+1)
	for k, x := range st.LastModel {
		nm[k] = x
	}
	nm[v] = val
	st.LastModel = nm
}

// addPathConstraint appends c, compacting single-variable bounds so loop
// chains do not grow the path condition linearly (x ≥ 6 subsumes x ≥ 5).
func addPathConstraint(st *State, c solver.Constraint) {
	if c.IsTriviallyTrue() {
		return
	}
	st.noteVars(c)
	if v, coeff, ok := c.E.SingleVar(); ok && (coeff == 1 || coeff == -1) && c.Op == solver.OpLe {
		for i, old := range st.Constraints {
			if old.Op != solver.OpLe {
				continue
			}
			ov, ocoeff, ook := old.E.SingleVar()
			if !ook || ov != v || ocoeff != coeff {
				continue
			}
			// Same form: coeff·v + k ≤ 0. Larger k is tighter.
			if c.E.Const >= old.E.Const {
				st.replaceConstraint(i, c)
			}
			return
		}
	}
	st.appendConstraint(c)
}

// --- vulnerability reporting ---

func (ex *Executor) report(st *State, kind interp.FaultKind, pos minic.Pos, m solver.Model, extra ...solver.Constraint) {
	if m == nil {
		// Unknown-model detection: confirm with a full query.
		ok, mm := ex.satisfiable(st, extra...)
		if !ok || mm == nil {
			return
		}
		m = mm
	}
	cons := make([]solver.Constraint, 0, len(st.Constraints)+len(extra))
	cons = append(cons, st.Constraints...)
	cons = append(cons, extra...)
	path := make([]trace.Location, len(st.Trace))
	copy(path, st.Trace)
	v := &Vulnerability{
		Kind:        kind,
		Func:        st.CurrentFunc(),
		Pos:         pos,
		Path:        path,
		Constraints: cons,
		Model:       m,
		Witness:     ex.inputs.witness(m),
	}
	for _, prev := range ex.res.Vulns {
		if prev.Site() == v.Site() {
			return
		}
	}
	ex.res.Vulns = append(ex.res.Vulns, v)
	if ex.Opts.StopAtFirstVuln {
		ex.stopped = true
	}
}

// SymbolicInputs lists the symbolic channels registered so far.
func (ex *Executor) SymbolicInputs() []string { return ex.inputs.symbolicInputNames() }

// fireLocation records a location crossing and runs the guidance hook.
func (ex *Executor) fireLocation(st *State, loc trace.Location, ret *Value) HookDecision {
	st.Trace = append(st.Trace, loc)
	if ex.Opts.Hook == nil {
		return HookContinue
	}
	view := &VarView{ex: ex, st: st, loc: loc, ret: ret}
	return ex.Opts.Hook(ex, st, loc, view)
}

// VarView resolves logged-variable names to runtime values at a location,
// mirroring what the monitor records (globals, parameters, return value).
// The guidance hook uses it to turn statistical predicates into solver
// constraints over the state's live values.
type VarView struct {
	ex  *Executor
	st  *State
	loc trace.Location
	ret *Value
}

// Param returns the named parameter of the function just entered.
func (v *VarView) Param(name string) (Value, bool) {
	if v.loc.Kind != trace.EventEnter {
		return Value{}, false
	}
	fr := v.st.Top()
	for i, pn := range fr.Fn.ParamNames {
		if pn == name {
			return fr.Locals[i], true
		}
	}
	return Value{}, false
}

// Global returns the named global's current value.
func (v *VarView) Global(name string) (Value, bool) {
	idx := v.ex.Prog.GlobalIndex(name)
	if idx < 0 {
		return Value{}, false
	}
	return v.st.Globals[idx], true
}

// Return returns the function's return value at an exit location.
func (v *VarView) Return() (Value, bool) {
	if v.loc.Kind != trace.EventLeave || v.ret == nil {
		return Value{}, false
	}
	return *v.ret, true
}

// Result returns the (live) result record; final after Run returns.
func (ex *Executor) Result() *Result { return ex.res }

// Coverage reports the fraction of each function's instructions executed
// at least once across all explored states (the $init function is
// excluded). The paper's §VI-C notes StatSym preserves the baseline's
// code-coverage capability; this surfaces the measurement.
func (ex *Executor) Coverage() map[string]float64 {
	out := make(map[string]float64, len(ex.Prog.Funcs))
	for _, fn := range ex.Prog.Funcs {
		if fn.Name == bytecode.InitFuncName || len(fn.Code) == 0 {
			continue
		}
		visited := 0
		if v := ex.visits[fn.Index]; v != nil {
			for _, count := range v {
				if count > 0 {
					visited++
				}
			}
		}
		out[fn.Name] = float64(visited) / float64(len(fn.Code))
	}
	return out
}

// TotalCoverage is the instruction-weighted aggregate of Coverage.
func (ex *Executor) TotalCoverage() float64 {
	total, visited := 0, 0
	for _, fn := range ex.Prog.Funcs {
		if fn.Name == bytecode.InitFuncName {
			continue
		}
		total += len(fn.Code)
		if v := ex.visits[fn.Index]; v != nil {
			for _, count := range v {
				if count > 0 {
					visited++
				}
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(visited) / float64(total)
}
