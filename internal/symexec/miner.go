package symexec

import (
	"repro/internal/bytecode"
	"repro/internal/minic"
	"repro/internal/solver"
	"repro/internal/summary"
)

// This file implements summary mining: a bounded intra-procedural symbolic
// exploration of one function over canonical parameter variables. The i-th
// parameter is solver.Var(i) on a miner-private VarTable (NewVar on a fresh
// table hands out sequential IDs from 0), so mined constraints substitute
// directly against call-site argument expressions.
//
// Mining is a pure, deterministic function of the bytecode: a private table,
// a private solver, and a DFS worklist popped in a fixed order. That purity
// is what makes the shared summary cache determinism-safe — a cache hit
// returns exactly what local mining would have computed, on any worker.

// Mining budgets. Summarizable functions are effect-free leaves, so these
// bounds are generous; a function that exceeds them gets a Failed entry and
// is interpreted forever after.
const (
	mineMaxPaths = 24
	mineMaxSteps = 4096
)

// mstate is one miner path in progress. Clones are full copies: miner
// states are small (a handful of locals and constraints), so copy-on-write
// machinery would cost more than it saves.
type mstate struct {
	pc     int
	locals []Value
	stack  []Value
	cons   []solver.Constraint
}

func (m *mstate) clone() *mstate {
	return &mstate{
		pc:     m.pc,
		locals: append([]Value(nil), m.locals...),
		stack:  append([]Value(nil), m.stack...),
		cons:   append([]solver.Constraint(nil), m.cons...),
	}
}

func (m *mstate) push(v Value) { m.stack = append(m.stack, v) }

func (m *mstate) pop() Value {
	v := m.stack[len(m.stack)-1]
	m.stack = m.stack[:len(m.stack)-1]
	return v
}

// miner holds the private solver stack of one mining run.
type miner struct {
	fn    *bytecode.Fn
	table *solver.VarTable
	sol   *solver.CachedSolver
	steps int
	paths []summary.PathSummary
}

// mineSummary explores fn exhaustively (within budget) and returns its
// path summary. The result is complete: every path either appears in
// Paths or was proven infeasible, so applying the summary at a call site —
// forking once per path feasible under the caller's path condition — loses
// no behavior. On any unsupported construct or budget overrun the summary
// is marked Failed (a negative-cache entry; callers interpret instead).
func mineSummary(fn *bytecode.Fn) *summary.FnSummary {
	sum := &summary.FnSummary{Name: fn.Name, NParams: len(fn.ParamTypes)}
	mr := &miner{
		fn:    fn,
		table: solver.NewVarTable(),
		sol:   solver.NewCached(solver.New()),
	}
	init := &mstate{locals: make([]Value, fn.NumLocals)}
	for i := range fn.ParamTypes {
		// Canonical parameter variables Var(0..n-1).
		init.locals[i] = LinVal(solver.VarExpr(mr.table.NewVar(fn.Name + ".param")))
	}
	for i := len(fn.ParamTypes); i < fn.NumLocals; i++ {
		init.locals[i] = IntVal(0)
	}
	work := []*mstate{init}
	for len(work) > 0 {
		m := work[len(work)-1]
		work = work[:len(work)-1]
		forks, ok := mr.runPath(m)
		if !ok {
			sum.Failed = true
			return sum
		}
		work = append(work, forks...)
		if len(mr.paths) > mineMaxPaths {
			sum.Failed = true
			return sum
		}
	}
	sum.Paths = mr.paths
	return sum
}

// runPath steps m until it returns, forks, or dies. Forked siblings are
// returned for the worklist; ok=false aborts the whole mine.
func (mr *miner) runPath(m *mstate) (forks []*mstate, ok bool) {
	code := mr.fn.Code
	for {
		mr.steps++
		if mr.steps > mineMaxSteps || m.pc >= len(code) {
			return nil, false
		}
		in := code[m.pc]
		m.pc++
		switch in.Op {
		case bytecode.OpNop:

		case bytecode.OpConstInt:
			m.push(IntVal(in.Imm))
		case bytecode.OpLoadLocal:
			m.push(m.locals[in.A])
		case bytecode.OpStoreLocal:
			v := m.pop()
			if v.IsCond {
				// Stored comparisons are materialized by pushBool in the
				// executor before any store; a CondVal here means the next-op
				// deferral below mispredicted. Abort rather than guess.
				return nil, false
			}
			m.locals[in.A] = v

		case bytecode.OpNeg:
			v := m.pop()
			if v.IsCond {
				return nil, false
			}
			m.push(LinVal(v.Lin.Neg()))
		case bytecode.OpNot:
			v := m.pop()
			if v.IsCond {
				return nil, false
			}
			if c, cok := v.IsConcreteInt(); cok {
				m.push(IntVal(boolToInt(c == 0)))
				break
			}
			f, aborted := mr.pushBool(m, solver.Constraint{E: v.Lin, Op: solver.OpEq})
			if aborted {
				return nil, false
			}
			forks = append(forks, f...)

		case bytecode.OpBin:
			f, aborted := mr.stepBin(m, minic.BinOp(in.A))
			if aborted {
				return nil, false
			}
			forks = append(forks, f...)

		case bytecode.OpJump:
			m.pc = in.A
		case bytecode.OpJumpZ, bytecode.OpJumpNZ:
			f, aborted := mr.stepJump(m, in)
			if aborted {
				return nil, false
			}
			forks = append(forks, f...)

		case bytecode.OpReturn:
			return forks, mr.recordReturn(m, in.A == 1)

		case bytecode.OpPop:
			m.pop()

		default:
			// Calls, builtins, globals, buffers, strings: outside the
			// summarizable fragment (the static filter should have caught
			// these — this is the dynamic backstop).
			return nil, false
		}
	}
}

// stepBin mirrors the executor's integer OpBin handling over miner states.
func (mr *miner) stepBin(m *mstate, op minic.BinOp) (forks []*mstate, aborted bool) {
	r := m.pop()
	l := m.pop()
	if l.IsCond || r.IsCond || l.Kind != KindInt || r.Kind != KindInt {
		return nil, true
	}
	lc, lok := l.IsConcreteInt()
	rc, rok := r.IsConcreteInt()
	switch op {
	case minic.OpAdd:
		m.push(LinVal(l.Lin.Add(r.Lin)))
	case minic.OpSub:
		m.push(LinVal(l.Lin.Sub(r.Lin)))
	case minic.OpMul:
		switch {
		case lok:
			m.push(LinVal(r.Lin.MulConst(lc)))
		case rok:
			m.push(LinVal(l.Lin.MulConst(rc)))
		default:
			// Nonlinear product: the executor over-approximates with a fresh
			// variable, which a reusable summary cannot express. Abort.
			return nil, true
		}
	case minic.OpEq, minic.OpNeq, minic.OpLt, minic.OpLe, minic.OpGt, minic.OpGe:
		if lok && rok {
			m.push(IntVal(boolToInt(concreteCompare(op, lc, rc))))
			return nil, false
		}
		return mr.pushBool(m, compareConstraint(op, l.Lin, r.Lin))
	default:
		// Division/modulo need auxiliary variables; out of fragment.
		return nil, true
	}
	return nil, false
}

// pushBool mirrors the executor's comparison delivery: deferred as a
// CondVal when the next instruction consumes it as a jump condition,
// otherwise forked into 0/1 materializations. The current state takes the
// true side; the clone takes the false side (fixed order — mining has no
// model to direct it, and determinism is what matters).
func (mr *miner) pushBool(m *mstate, c solver.Constraint) (forks []*mstate, aborted bool) {
	if m.pc < len(mr.fn.Code) {
		next := mr.fn.Code[m.pc].Op
		if next == bytecode.OpJumpZ || next == bytecode.OpJumpNZ {
			m.push(CondVal(c))
			return nil, false
		}
	}
	neg := c.Negate()
	okT := mr.feasible(m.cons, c)
	okF := mr.feasible(m.cons, neg)
	switch {
	case okT && okF:
		child := m.clone()
		appendMinedConstraint(child, neg)
		child.push(IntVal(0))
		appendMinedConstraint(m, c)
		m.push(IntVal(1))
		return []*mstate{child}, false
	case okT:
		appendMinedConstraint(m, c)
		m.push(IntVal(1))
	case okF:
		appendMinedConstraint(m, neg)
		m.push(IntVal(0))
	default:
		// Both sides refuted: the Unknown-optimistic path condition was
		// actually unsatisfiable. Rare; abort the mine (interpretation is
		// always a sound fallback) rather than model dead paths.
		return nil, true
	}
	return nil, false
}

// stepJump mirrors the executor's conditional-jump forking.
func (mr *miner) stepJump(m *mstate, in bytecode.Instr) (forks []*mstate, aborted bool) {
	v := m.pop()
	if c, cok := v.IsConcreteInt(); cok {
		isZero := c == 0
		if (in.Op == bytecode.OpJumpZ && isZero) || (in.Op == bytecode.OpJumpNZ && !isZero) {
			m.pc = in.A
		}
		return nil, false
	}
	var nonZero solver.Constraint
	if v.IsCond {
		nonZero = v.Cond
	} else {
		nonZero = solver.Constraint{E: v.Lin, Op: solver.OpNe}
	}
	zero := nonZero.Negate()
	stayCond, jumpCond := nonZero, zero
	if in.Op == bytecode.OpJumpNZ {
		stayCond, jumpCond = zero, nonZero
	}
	okStay := mr.feasible(m.cons, stayCond)
	okJump := mr.feasible(m.cons, jumpCond)
	switch {
	case okStay && okJump:
		child := m.clone()
		appendMinedConstraint(child, jumpCond)
		child.pc = in.A
		appendMinedConstraint(m, stayCond)
		return []*mstate{child}, false
	case okStay:
		appendMinedConstraint(m, stayCond)
	case okJump:
		appendMinedConstraint(m, jumpCond)
		m.pc = in.A
	default:
		return nil, true
	}
	return nil, false
}

// recordReturn appends the finished path (or two, when the return value is
// a deferred comparison) to the mined set.
func (mr *miner) recordReturn(m *mstate, hasValue bool) bool {
	if !hasValue {
		mr.paths = append(mr.paths, summary.PathSummary{Cons: m.cons})
		return true
	}
	v := m.pop()
	if v.Kind != KindInt {
		return false
	}
	if v.IsCond {
		// `return a < b` with the comparison still deferred: materialize
		// both outcomes as separate paths.
		neg := v.Cond.Negate()
		if mr.feasible(m.cons, v.Cond) {
			cons := append(append([]solver.Constraint(nil), m.cons...), v.Cond)
			one := solver.ConstExpr(1)
			mr.paths = append(mr.paths, summary.PathSummary{Cons: cons, Ret: &one})
		}
		if mr.feasible(m.cons, neg) {
			cons := append(append([]solver.Constraint(nil), m.cons...), neg)
			zero := solver.ConstExpr(0)
			mr.paths = append(mr.paths, summary.PathSummary{Cons: cons, Ret: &zero})
		}
		return true
	}
	ret := v.Lin
	mr.paths = append(mr.paths, summary.PathSummary{Cons: m.cons, Ret: &ret})
	return true
}

// feasible decides cons ∧ extra on the miner's private solver. Unknown is
// treated as satisfiable, matching the executor's optimistic exploration.
func (mr *miner) feasible(cons []solver.Constraint, extra solver.Constraint) bool {
	if extra.IsTriviallyTrue() {
		return true
	}
	if extra.IsTriviallyFalse() {
		return false
	}
	q := make([]solver.Constraint, 0, len(cons)+1)
	q = append(q, cons...)
	q = append(q, extra)
	res, _ := mr.sol.Check(mr.table, q)
	return res != solver.Unsat
}

// appendMinedConstraint grows a miner path condition, skipping trivially
// true constraints so summaries stay minimal.
func appendMinedConstraint(m *mstate, c solver.Constraint) {
	if c.IsTriviallyTrue() {
		return
	}
	m.cons = append(m.cons, c)
}
