package symexec

import (
	"testing"

	"repro/internal/bytecode"
	"repro/internal/interp"
	"repro/internal/trace"
)

// runSym compiles and symbolically executes src.
func runSym(t *testing.T, src string, spec *InputSpec, opts Options) *Result {
	t.Helper()
	prog := bytecode.MustCompile("test", src)
	ex := New(prog, spec, opts)
	return ex.Run()
}

// confirmWitness replays a vulnerability's witness on the concrete VM and
// checks the same fault fires in the same function.
func confirmWitness(t *testing.T, src string, v *Vulnerability) {
	t.Helper()
	if v.Witness == nil {
		t.Fatalf("vulnerability has no witness: %+v", v)
	}
	prog := bytecode.MustCompile("confirm", src)
	res, err := interp.Run(prog, v.Witness, interp.Config{})
	if err != nil {
		t.Fatalf("concrete replay error: %v", err)
	}
	if res.Fault != v.Kind {
		t.Fatalf("concrete replay fault = %v, want %v (witness %+v)", res.Fault, v.Kind, v.Witness)
	}
	if res.FaultFunc != v.Func {
		t.Errorf("concrete replay fault func = %q, want %q", res.FaultFunc, v.Func)
	}
}

func TestSymNoInputsTerminates(t *testing.T) {
	res := runSym(t, `func main() int { return 1 + 2; }`, nil, DefaultOptions())
	if res.Found() {
		t.Errorf("unexpected vulnerability: %+v", res.Vulns)
	}
	if res.Paths != 1 {
		t.Errorf("paths = %d, want 1", res.Paths)
	}
}

// TestSymConcreteAssertFailure and TestSymBranchOnSymbolicInt (the Fig. 2
// motivating example) moved to internal/symexec/symtest, ported onto the
// fluent harness.

func TestSymBufferOverflowStringLength(t *testing.T) {
	// The polymorph pattern: copy a symbolic string into a fixed buffer
	// without a bounds check.
	src := `
func copy_in(string s) void {
  buf dst[16];
  int i = 0;
  while (i < len(s)) {
    bufwrite(dst, i, char(s, i));
    i = i + 1;
  }
  return;
}
func main() int {
  copy_in(input_string("payload"));
  return 0;
}`
	spec := &InputSpec{MaxStrLen: 32}
	res := runSym(t, src, spec, DefaultOptions())
	if !res.Found() {
		t.Fatalf("overflow not found: exhausted=%v paths=%d", res.Exhausted, res.Paths)
	}
	v := res.Vulns[0]
	if v.Kind != interp.FaultBufferOverflow || v.Func != "copy_in" {
		t.Fatalf("vuln = %s", v.Site())
	}
	if got := len(v.Witness.Strs["payload"]); got < 17 {
		t.Errorf("witness payload length = %d, want >= 17", got)
	}
	confirmWitness(t, src, v)
}

func TestSymOverflowUnreachableWhenGuarded(t *testing.T) {
	src := `
func copy_in(string s) void {
  buf dst[16];
  int i = 0;
  while (i < len(s) && i < 16) {
    bufwrite(dst, i, char(s, i));
    i = i + 1;
  }
  return;
}
func main() int {
  copy_in(input_string("payload"));
  return 0;
}`
	res := runSym(t, src, &InputSpec{MaxStrLen: 32}, DefaultOptions())
	if res.Found() {
		t.Errorf("false positive on guarded copy: %s", res.Vulns[0].Site())
	}
}

func TestSymPathTraceRecorded(t *testing.T) {
	src := `
func a() void { b(); return; }
func b() void { assert(0); return; }
func main() int { a(); return 0; }`
	res := runSym(t, src, nil, DefaultOptions())
	if !res.Found() {
		t.Fatal("not found")
	}
	path := res.Vulns[0].Path
	want := []trace.Location{
		{Func: "main", Kind: trace.EventEnter},
		{Func: "a", Kind: trace.EventEnter},
		{Func: "b", Kind: trace.EventEnter},
	}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Errorf("path[%d] = %v, want %v", i, path[i], want[i])
		}
	}
}

func TestSymDivZeroOracle(t *testing.T) {
	src := `
func main() int {
  int d = input_int("d");
  return 100 / d;
}`
	res := runSym(t, src, nil, DefaultOptions())
	if !res.Found() || res.Vulns[0].Kind != interp.FaultDivZero {
		t.Fatalf("div-zero not detected: %+v", res.Vulns)
	}
	if res.Vulns[0].Witness.Ints["d"] != 0 {
		t.Errorf("witness d = %d, want 0", res.Vulns[0].Witness.Ints["d"])
	}
}

func TestSymDivModExact(t *testing.T) {
	// x / 10 == 3 && x % 10 == 7 forces x == 37.
	src := `
func main() int {
  int x = input_int("x");
  if (x >= 0) {
    if (x / 10 == 3 && x % 10 == 7) {
      assert(0);
    }
  }
  return 0;
}`
	res := runSym(t, src, nil, DefaultOptions())
	if !res.Found() {
		t.Fatal("not found")
	}
	if got := res.Vulns[0].Witness.Ints["x"]; got != 37 {
		t.Errorf("witness x = %d, want 37", got)
	}
	confirmWitness(t, src, res.Vulns[0])
}

func TestSymStringEqualityFork(t *testing.T) {
	src := `
func main() int {
  string s = input_string("opt");
  if (s == "-x") { assert(0); }
  return 0;
}`
	res := runSym(t, src, &InputSpec{MaxStrLen: 8}, DefaultOptions())
	if !res.Found() {
		t.Fatal("not found")
	}
	if got := res.Vulns[0].Witness.Strs["opt"]; got != "-x" {
		t.Errorf("witness opt = %q, want %q", got, "-x")
	}
	confirmWitness(t, src, res.Vulns[0])
}

func TestSymCharConstraints(t *testing.T) {
	// Byte constraints: first char must be '<'.
	src := `
func main() int {
  string s = input_string("req");
  if (len(s) > 0) {
    if (char(s, 0) == '<') { assert(0); }
  }
  return 0;
}`
	res := runSym(t, src, &InputSpec{MaxStrLen: 8}, DefaultOptions())
	if !res.Found() {
		t.Fatal("not found")
	}
	w := res.Vulns[0].Witness.Strs["req"]
	if len(w) == 0 || w[0] != '<' {
		t.Errorf("witness = %q, want leading '<'", w)
	}
	confirmWitness(t, src, res.Vulns[0])
}

func TestSymConcreteInputsStayConcrete(t *testing.T) {
	src := `
func main() int {
  string opt = input_string("opt");
  if (opt == "-f") {
    assert(0);
  }
  return 0;
}`
	// opt concretized to "-f": assertion is definitely reachable, single
	// path, no forking on string equality.
	spec := &InputSpec{ConcreteStrs: map[string]string{"opt": "-f"}}
	res := runSym(t, src, spec, DefaultOptions())
	if !res.Found() {
		t.Fatal("not found")
	}
	if res.Forks != 0 {
		t.Errorf("forks = %d, want 0 for fully concrete run", res.Forks)
	}
}

func TestSymArgsChannels(t *testing.T) {
	src := `
func main() int {
  if (nargs() != 2) { return 1; }
  string a0 = arg(0);
  string a1 = arg(1);
  if (a0 == "-f") {
    buf dst[8];
    int i = 0;
    while (i < len(a1)) { bufwrite(dst, i, char(a1, i)); i = i + 1; }
  }
  return 0;
}`
	spec := &InputSpec{
		NArgs:        2,
		ConcreteArgs: map[int]string{0: "-f"},
		MaxStrLen:    16,
	}
	res := runSym(t, src, spec, DefaultOptions())
	if !res.Found() {
		t.Fatal("overflow via argv not found")
	}
	v := res.Vulns[0]
	if len(v.Witness.Args) != 2 || v.Witness.Args[0] != "-f" {
		t.Fatalf("witness args = %v", v.Witness.Args)
	}
	if len(v.Witness.Args[1]) < 9 {
		t.Errorf("witness arg1 length = %d, want >= 9", len(v.Witness.Args[1]))
	}
	confirmWitness(t, src, v)
}

func TestSymEnvChannel(t *testing.T) {
	src := `
func main() int {
  string e = env("TAINT");
  if (len(e) > 64) { assert(0); }
  return 0;
}`
	res := runSym(t, src, &InputSpec{MaxStrLen: 128}, DefaultOptions())
	if !res.Found() {
		t.Fatal("not found")
	}
	if got := len(res.Vulns[0].Witness.Env["TAINT"]); got <= 64 {
		t.Errorf("witness env length = %d, want > 64", got)
	}
	confirmWitness(t, src, res.Vulns[0])
}

func TestSymStateExhaustion(t *testing.T) {
	// A per-character three-way branching loop over a symbolic string
	// explodes exponentially — the pure-symbolic-execution failure mode
	// of CTree/Grep/thttpd in Table IV.
	src := `
func process(string s) int {
  int acc = 0;
  int i = 0;
  while (i < len(s)) {
    int c = char(s, i);
    if (c == '<') { acc = acc + 4; }
    else {
      if (c == '>') { acc = acc + 4; }
      else { acc = acc + 1; }
    }
    i = i + 1;
  }
  return acc;
}
func main() int {
  int r = process(input_string("body"));
  if (r > 1000000) { assert(0); }
  return 0;
}`
	opts := DefaultOptions()
	opts.MaxStates = 200
	res := runSym(t, src, &InputSpec{MaxStrLen: 64}, opts)
	if !res.Exhausted {
		t.Errorf("expected state exhaustion, got paths=%d found=%v", res.Paths, res.Found())
	}
}

func TestSymSchedulers(t *testing.T) {
	src := `
func check(int x) void {
  if (x > 5) { if (x < 10) { assert(0); } }
  return;
}
func main() int {
  check(input_int("x"));
  return 0;
}`
	for _, mk := range []func() Scheduler{
		func() Scheduler { return NewBFS() },
		func() Scheduler { return NewDFS() },
		func() Scheduler { return NewRandom(7) },
		func() Scheduler { return NewCoverage() },
	} {
		opts := DefaultOptions()
		opts.Sched = mk()
		res := runSym(t, src, nil, opts)
		if !res.Found() {
			t.Errorf("scheduler %s failed to find the bug", opts.Sched.Name())
			continue
		}
		x := res.Vulns[0].Witness.Ints["x"]
		if x <= 5 || x >= 10 {
			t.Errorf("scheduler %s witness x = %d outside (5,10)", opts.Sched.Name(), x)
		}
	}
}

func TestSymDeterminism(t *testing.T) {
	src := `
func main() int {
  int x = input_int("x");
  int acc = 0;
  int i = 0;
  while (i < 5) {
    if (x > i * 10) { acc = acc + 1; }
    i = i + 1;
  }
  if (acc == 3) { assert(0); }
  return 0;
}`
	r1 := runSym(t, src, nil, DefaultOptions())
	r2 := runSym(t, src, nil, DefaultOptions())
	if r1.Found() != r2.Found() || r1.Paths != r2.Paths || r1.Forks != r2.Forks || r1.Steps != r2.Steps {
		t.Errorf("nondeterministic: %+v vs %+v", r1, r2)
	}
	if r1.Found() {
		if r1.Vulns[0].Witness.Ints["x"] != r2.Vulns[0].Witness.Ints["x"] {
			t.Errorf("witness differs across runs")
		}
		confirmWitness(t, src, r1.Vulns[0])
	}
}

func TestSymConstraintCompaction(t *testing.T) {
	// A 100-iteration loop should not accumulate 100 bound constraints.
	src := `
func main() int {
  int x = input_int("x");
  int i = 0;
  while (i < x) {
    i = i + 1;
    if (i >= 100) { break; }
  }
  return i;
}`
	prog := bytecode.MustCompile("compact", src)
	ex := New(prog, nil, DefaultOptions())
	res := ex.Run()
	if res.Exhausted {
		t.Fatal("unexpected exhaustion")
	}
	// There is no assertion; just confirm the run completes with a sane
	// number of paths (x <= 0, x in 1..99 exits, x >= 100 break) and that
	// the executor terminated.
	if res.Paths == 0 {
		t.Errorf("no paths completed")
	}
}

func TestSymStepLimit(t *testing.T) {
	src := `
func main() int {
  int i = 0;
  while (i >= 0) { i = i + 1; }
  return i;
}`
	opts := DefaultOptions()
	opts.MaxSteps = 5000
	res := runSym(t, src, nil, opts)
	if !res.StepLimited {
		t.Errorf("expected step limit, got %+v", res)
	}
}

func TestSymHookObservesLocations(t *testing.T) {
	src := `
func inner(int a) int { return a + 1; }
func main() int { return inner(input_int("a")); }`
	prog := bytecode.MustCompile("hook", src)
	var locs []trace.Location
	opts := DefaultOptions()
	opts.Hook = func(ex *Executor, st *State, loc trace.Location, view *VarView) HookDecision {
		locs = append(locs, loc)
		if loc.Func == "inner" && loc.Kind == trace.EventEnter {
			if _, ok := view.Param("a"); !ok {
				t.Errorf("param a not visible at inner entry")
			}
		}
		if loc.Func == "inner" && loc.Kind == trace.EventLeave {
			if _, ok := view.Return(); !ok {
				t.Errorf("return value not visible at inner exit")
			}
		}
		return HookContinue
	}
	ex := New(prog, nil, opts)
	ex.Run()
	want := []trace.Location{
		{Func: "main", Kind: trace.EventEnter},
		{Func: "inner", Kind: trace.EventEnter},
		{Func: "inner", Kind: trace.EventLeave},
		{Func: "main", Kind: trace.EventLeave},
	}
	if len(locs) != len(want) {
		t.Fatalf("locs = %v", locs)
	}
	for i := range want {
		if locs[i] != want[i] {
			t.Errorf("locs[%d] = %v, want %v", i, locs[i], want[i])
		}
	}
}

func TestSymHookSuspension(t *testing.T) {
	// Suspend every state that enters slow(); the bug behind slow() is
	// only reachable after the suspended pool is revived.
	src := `
func slow(int x) void {
  if (x == 42) { assert(0); }
  return;
}
func main() int {
  slow(input_int("x"));
  return 0;
}`
	prog := bytecode.MustCompile("susp", src)
	suspended := 0
	opts := DefaultOptions()
	opts.Hook = func(ex *Executor, st *State, loc trace.Location, view *VarView) HookDecision {
		if loc.Func == "slow" && loc.Kind == trace.EventEnter && !st.Revived {
			suspended++
			return HookSuspend
		}
		return HookContinue
	}
	ex := New(prog, nil, opts)
	res := ex.Run()
	if suspended == 0 {
		t.Fatal("hook never suspended")
	}
	if res.Revivals == 0 {
		t.Errorf("suspended pool never revived")
	}
	if !res.Found() {
		t.Errorf("bug not found after revival")
	}
}

func TestSymGlobalsSymbolic(t *testing.T) {
	src := `
global int total = 0;
func add(int v) void { total = total + v; return; }
func main() int {
  add(input_int("a"));
  add(input_int("b"));
  if (total == 77) { assert(0); }
  return 0;
}`
	res := runSym(t, src, nil, DefaultOptions())
	if !res.Found() {
		t.Fatal("not found")
	}
	w := res.Vulns[0].Witness
	if w.Ints["a"]+w.Ints["b"] != 77 {
		t.Errorf("witness a+b = %d, want 77", w.Ints["a"]+w.Ints["b"])
	}
	confirmWitness(t, src, res.Vulns[0])
}

func TestSymConcatLengthRelation(t *testing.T) {
	src := `
func main() int {
  string a = input_string("a");
  string b = input_string("b");
  string c = a + b;
  if (len(c) > 30) { assert(0); }
  return 0;
}`
	res := runSym(t, src, &InputSpec{MaxStrLen: 20}, DefaultOptions())
	if !res.Found() {
		t.Fatal("not found")
	}
	w := res.Vulns[0].Witness
	if len(w.Strs["a"])+len(w.Strs["b"]) <= 30 {
		t.Errorf("witness lengths %d+%d, want sum > 30", len(w.Strs["a"]), len(w.Strs["b"]))
	}
	confirmWitness(t, src, res.Vulns[0])
}

func TestSymStringReadOracle(t *testing.T) {
	// Reading past the end of the string is itself a detectable overread.
	src := `
func main() int {
  string s = input_string("s");
  int n = input_int("n");
  if (n >= 0) {
    return char(s, n);
  }
  return 0;
}`
	res := runSym(t, src, &InputSpec{MaxStrLen: 8}, DefaultOptions())
	if !res.Found() || res.Vulns[0].Kind != interp.FaultStringIndex {
		t.Fatalf("overread not detected: %+v", res.Vulns)
	}
	confirmWitness(t, src, res.Vulns[0])
}
