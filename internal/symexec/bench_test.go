package symexec

import (
	"testing"

	"repro/internal/bytecode"
	"repro/internal/solver"
	"repro/internal/trace"
)

// BenchmarkSymexecConcreteChain measures single-path symbolic execution
// (everything concrete: the interpreter-parity fast path).
func BenchmarkSymexecConcreteChain(b *testing.B) {
	prog := bytecode.MustCompile("conc", `
func main() int {
  int s = 0;
  for (int i = 0; i < 1000; i = i + 1) { s = s + i; }
  return s;
}`)
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		ex := New(prog, nil, DefaultOptions())
		res := ex.Run()
		if res.Paths != 1 || res.Forks != 0 {
			b.Fatalf("res=%+v", res)
		}
	}
}

// BenchmarkSymexecSymbolicLoop measures a guard-forking loop over a
// symbolic bound — the copy-loop shape of every evaluation program.
func BenchmarkSymexecSymbolicLoop(b *testing.B) {
	prog := bytecode.MustCompile("symloop", `
func main() int {
  int x = input_int("x");
  int i = 0;
  while (i < x) {
    if (i >= 64) { return i; }
    i = i + 1;
  }
  return i;
}`)
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		opts := DefaultOptions()
		opts.StopAtFirstVuln = false
		ex := New(prog, nil, opts)
		res := ex.Run()
		if res.Paths == 0 {
			b.Fatal("no paths")
		}
	}
}

// BenchmarkSymexecOverflowHunt measures the end-to-end vulnerability
// search on the canonical string-copy overflow.
func BenchmarkSymexecOverflowHunt(b *testing.B) {
	prog := bytecode.MustCompile("hunt", `
func sink(string s) void {
  buf dst[32];
  int i = 0;
  while (i < len(s)) {
    bufwrite(dst, i, char(s, i));
    i = i + 1;
  }
  return;
}
func main() int {
  sink(input_string("p"));
  return 0;
}`)
	spec := &InputSpec{MaxStrLen: 64}
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		ex := New(prog, spec, DefaultOptions())
		res := ex.Run()
		if !res.Found() {
			b.Fatal("overflow not found")
		}
	}
}

// benchForkState builds a state shaped like mid-exploration reality: a
// deep call stack with populated locals/stacks, globals, a written buffer,
// a grown path condition and its variable bookkeeping.
func benchForkState(depth, localsPerFrame, nCons int) *State {
	tbl := solver.NewVarTable()
	st := &State{ID: 1, Status: StatusActive}
	for d := 0; d < depth; d++ {
		fr := &Frame{Fn: &bytecode.Fn{Name: "f"}, PC: d}
		for l := 0; l < localsPerFrame; l++ {
			fr.Locals = append(fr.Locals, IntVal(int64(d*100+l)))
		}
		fr.Stack = append(fr.Stack, IntVal(int64(d)))
		st.Frames = append(st.Frames, fr)
	}
	for g := 0; g < 8; g++ {
		st.Globals = append(st.Globals, IntVal(int64(g)))
	}
	buf := NewSymBuffer(64)
	st.setBufCell(buf, 0, IntVal(1))
	for i := 0; i < nCons; i++ {
		v := tbl.NewVarBounded("v", 0, 255)
		c := solver.Ge(solver.VarExpr(v), solver.ConstExpr(int64(i%16)))
		st.appendConstraint(c)
		st.noteVars(c)
	}
	return st
}

// legacyFork reproduces the pre-copy-on-write fork: deep-copy every frame,
// the globals, the constraint and trace slices, the bookkeeping maps and
// the buffer heap. Kept as the benchmark baseline for State.fork.
func legacyFork(st *State) *State {
	ns := &State{ID: -1, Status: StatusActive, Depth: st.Depth,
		PathIndex: st.PathIndex, Diverted: st.Diverted, Revived: st.Revived,
		LastModel: st.LastModel, pcDigest: st.pcDigest}
	ns.Frames = make([]*Frame, len(st.Frames))
	for i, f := range st.Frames {
		ns.Frames[i] = f.ownedCopy()
	}
	ns.Globals = append([]Value(nil), st.Globals...)
	ns.Constraints = make([]solver.Constraint, len(st.Constraints), len(st.Constraints)+4)
	copy(ns.Constraints, st.Constraints)
	ns.Trace = make([]trace.Location, len(st.Trace), len(st.Trace)+4)
	copy(ns.Trace, st.Trace)
	if st.pcVars != nil {
		ns.pcVars = make(map[solver.Var]struct{}, len(st.pcVars))
		for v := range st.pcVars {
			ns.pcVars[v] = struct{}{}
		}
	}
	if st.bounds != nil {
		ns.bounds = make(map[solver.Var]VarBounds, len(st.bounds))
		for v, b := range st.bounds {
			ns.bounds[v] = b
		}
	}
	if st.heap != nil {
		ns.heap = make(map[*SymBuffer]*bufCells, len(st.heap))
		ns.heapTok = new(heapToken)
		for b, c := range st.heap {
			nc := &bufCells{owner: ns.heapTok, smeared: c.smeared,
				chunks: make([]*cellChunk, len(c.chunks))}
			for i, ch := range c.chunks {
				if ch != nil {
					nch := &cellChunk{owner: ns.heapTok, data: ch.data}
					nc.chunks[i] = nch
				}
			}
			ns.heap[b] = nc
		}
	}
	return ns
}

// BenchmarkForkDeepCopy is the old eager fork on a deep state.
func BenchmarkForkDeepCopy(b *testing.B) {
	st := benchForkState(8, 16, 32)
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		if legacyFork(st) == nil {
			b.Fatal("nil fork")
		}
	}
}

// BenchmarkForkCoW is the copy-on-write fork on the same state (only the
// top frame is copied eagerly).
func BenchmarkForkCoW(b *testing.B) {
	st := benchForkState(8, 16, 32)
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		if st.fork() == nil {
			b.Fatal("nil fork")
		}
	}
}

// BenchmarkForkCoWThenTouch forks and immediately performs the typical
// post-fork writes (append a constraint, mutate the top frame), charging
// the copy-on-write costs a real fork incurs on its first step.
func BenchmarkForkCoWThenTouch(b *testing.B) {
	st := benchForkState(8, 16, 32)
	tbl := solver.NewVarTable()
	v := tbl.NewVarBounded("w", 0, 255)
	c := solver.Ge(solver.VarExpr(v), solver.ConstExpr(1))
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		child := st.fork()
		child.appendConstraint(c)
		child.noteVars(c)
		child.Top().Locals[0] = IntVal(int64(n))
	}
}
