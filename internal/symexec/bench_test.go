package symexec

import (
	"testing"

	"repro/internal/bytecode"
)

// BenchmarkSymexecConcreteChain measures single-path symbolic execution
// (everything concrete: the interpreter-parity fast path).
func BenchmarkSymexecConcreteChain(b *testing.B) {
	prog := bytecode.MustCompile("conc", `
func main() int {
  int s = 0;
  for (int i = 0; i < 1000; i = i + 1) { s = s + i; }
  return s;
}`)
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		ex := New(prog, nil, DefaultOptions())
		res := ex.Run()
		if res.Paths != 1 || res.Forks != 0 {
			b.Fatalf("res=%+v", res)
		}
	}
}

// BenchmarkSymexecSymbolicLoop measures a guard-forking loop over a
// symbolic bound — the copy-loop shape of every evaluation program.
func BenchmarkSymexecSymbolicLoop(b *testing.B) {
	prog := bytecode.MustCompile("symloop", `
func main() int {
  int x = input_int("x");
  int i = 0;
  while (i < x) {
    if (i >= 64) { return i; }
    i = i + 1;
  }
  return i;
}`)
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		opts := DefaultOptions()
		opts.StopAtFirstVuln = false
		ex := New(prog, nil, opts)
		res := ex.Run()
		if res.Paths == 0 {
			b.Fatal("no paths")
		}
	}
}

// BenchmarkSymexecOverflowHunt measures the end-to-end vulnerability
// search on the canonical string-copy overflow.
func BenchmarkSymexecOverflowHunt(b *testing.B) {
	prog := bytecode.MustCompile("hunt", `
func sink(string s) void {
  buf dst[32];
  int i = 0;
  while (i < len(s)) {
    bufwrite(dst, i, char(s, i));
    i = i + 1;
  }
  return;
}
func main() int {
  sink(input_string("p"));
  return 0;
}`)
	spec := &InputSpec{MaxStrLen: 64}
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		ex := New(prog, spec, DefaultOptions())
		res := ex.Run()
		if !res.Found() {
			b.Fatal("overflow not found")
		}
	}
}
