package symexec

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/trace"
)

// ckptSrc branches on two symbolic inputs and overflows a fixed buffer on
// one path, so runs create plenty of states, heap traffic, string byte
// materialization, and a real vulnerability.
const ckptSrc = `
func copy_in(string s) int {
  buf dst[6];
  int i = 0;
  while (i < len(s)) {
    bufwrite(dst, i, char(s, i));
    i = i + 1;
  }
  return i;
}
func main() int {
  int a = input_int("a");
  string s = input_string("s");
  int r = 0;
  if (a > 10) {
    r = copy_in(s);
  } else {
    if (a > 3) { r = a + 1; } else { r = a; }
  }
  if (a > 20) { r = r + 2; }
  return r;
}
`

func ckptOpts() Options {
	return Options{
		StopAtFirstVuln:  false,
		CheckStringReads: true,
		MaxStates:        5_000,
		MaxSteps:         1_000_000,
	}
}

func ckptSpec() *InputSpec { return &InputSpec{MaxStrLen: 8} }

// compareDeterministic fails the test if any counter outside the
// wall-clock / cache-split family differs.
func compareDeterministic(t *testing.T, got, want *Result) {
	t.Helper()
	type row struct {
		name      string
		got, want int64
	}
	rows := []row{
		{"Paths", int64(got.Paths), int64(want.Paths)},
		{"StatesCreated", int64(got.StatesCreated), int64(want.StatesCreated)},
		{"Steps", got.Steps, want.Steps},
		{"Forks", int64(got.Forks), int64(want.Forks)},
		{"Vulns", int64(len(got.Vulns)), int64(len(want.Vulns))},
		{"SolverChecks", int64(got.SolverChecks), int64(want.SolverChecks)},
		{"SolverSat", int64(got.SolverSat), int64(want.SolverSat)},
		{"SolverUnsat", int64(got.SolverUnsat), int64(want.SolverUnsat)},
		{"StepLimited", b2i(got.StepLimited), b2i(want.StepLimited)},
		{"Exhausted", b2i(got.Exhausted), b2i(want.Exhausted)},
	}
	for _, r := range rows {
		if r.got != r.want {
			t.Errorf("%s = %d, want %d", r.name, r.got, r.want)
		}
	}
	for i := range want.Vulns {
		if i >= len(got.Vulns) {
			break
		}
		g, w := got.Vulns[i], want.Vulns[i]
		if g.Kind != w.Kind || g.Func != w.Func || g.Pos != w.Pos {
			t.Errorf("vuln %d = (%v, %s, %v), want (%v, %s, %v)", i, g.Kind, g.Func, g.Pos, w.Kind, w.Func, w.Pos)
		}
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// TestCheckpointResumeEquivalence pins the codec's core promise: interrupt
// a run at a step budget, serialize it, resume the blob in a fresh
// executor, and the final result matches an uninterrupted run on every
// deterministic counter.
func TestCheckpointResumeEquivalence(t *testing.T) {
	prog := bytecode.MustCompile("ckpt", ckptSrc)

	full := New(prog, ckptSpec(), ckptOpts()).Run()
	if full.StepLimited || !full.Found() {
		t.Fatalf("uninterrupted run: StepLimited=%v Found=%v (want complete, vulnerable)", full.StepLimited, full.Found())
	}

	// Interrupt partway: the budget must land after some exploration but
	// before exhaustion.
	partOpts := ckptOpts()
	partOpts.MaxSteps = full.Steps / 3
	partEx := New(prog, ckptSpec(), partOpts)
	part := partEx.Run()
	if !part.StepLimited {
		t.Fatalf("partial run not step-limited (steps=%d, budget=%d)", part.Steps, partOpts.MaxSteps)
	}

	blob, err := partEx.EncodeCheckpoint()
	if err != nil {
		t.Fatalf("EncodeCheckpoint: %v", err)
	}
	resumed, err := ResumeExecutor(blob, ckptOpts())
	if err != nil {
		t.Fatalf("ResumeExecutor: %v", err)
	}
	res := resumed.Run()
	compareDeterministic(t, res, full)
}

// TestCheckpointReencodeStable: decode∘encode is the identity on the wire
// — re-encoding a freshly resumed executor reproduces the blob byte for
// byte.
func TestCheckpointReencodeStable(t *testing.T) {
	prog := bytecode.MustCompile("ckpt", ckptSrc)
	opts := ckptOpts()
	opts.MaxSteps = 400
	ex := New(prog, ckptSpec(), opts)
	ex.Run()
	blob, err := ex.EncodeCheckpoint()
	if err != nil {
		t.Fatalf("EncodeCheckpoint: %v", err)
	}
	resumed, err := ResumeExecutor(blob, opts)
	if err != nil {
		t.Fatalf("ResumeExecutor: %v", err)
	}
	blob2, err := resumed.EncodeCheckpoint()
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatalf("re-encoded checkpoint differs (%d vs %d bytes)", len(blob), len(blob2))
	}
}

// TestFrontierShardsUnion: splitting the frontier across shards and
// running each to exhaustion covers exactly the undivided run's work.
func TestFrontierShardsUnion(t *testing.T) {
	prog := bytecode.MustCompile("ckpt", ckptSrc)
	full := New(prog, ckptSpec(), ckptOpts()).Run()

	partOpts := ckptOpts()
	partOpts.MaxSteps = full.Steps / 3
	partEx := New(prog, ckptSpec(), partOpts)
	part := partEx.Run()
	if !part.StepLimited {
		t.Fatalf("partial run not step-limited")
	}

	shards, err := partEx.EncodeFrontierShards(3)
	if err != nil {
		t.Fatalf("EncodeFrontierShards: %v", err)
	}
	totPaths, totForks, totVulns := part.Paths, part.Forks, len(part.Vulns)
	var totSteps int64 = part.Steps
	for i, blob := range shards {
		ex, err := ResumeExecutor(blob, ckptOpts())
		if err != nil {
			t.Fatalf("shard %d resume: %v", i, err)
		}
		r := ex.Run()
		if r.StepLimited || r.Exhausted {
			t.Fatalf("shard %d did not run to exhaustion", i)
		}
		totPaths += r.Paths
		totForks += r.Forks
		totSteps += r.Steps
		totVulns += len(r.Vulns)
	}
	if totPaths != full.Paths {
		t.Errorf("sharded paths = %d, want %d", totPaths, full.Paths)
	}
	if totForks != full.Forks {
		t.Errorf("sharded forks = %d, want %d", totForks, full.Forks)
	}
	if totSteps != full.Steps {
		t.Errorf("sharded steps = %d, want %d", totSteps, full.Steps)
	}
	if totVulns != len(full.Vulns) {
		t.Errorf("sharded vulns = %d, want %d", totVulns, len(full.Vulns))
	}
}

// TestCheckpointGuards: configurations outside the provable-equivalence
// envelope are refused.
func TestCheckpointGuards(t *testing.T) {
	prog := bytecode.MustCompile("ckpt", ckptSrc)
	opts := ckptOpts()
	opts.Workers = 2
	ex := New(prog, ckptSpec(), opts)
	if _, err := ex.EncodeCheckpoint(); err == nil {
		t.Error("parallel executor checkpointed")
	}
	hooked := ckptOpts()
	hooked.Hook = func(*Executor, *State, trace.Location, *VarView) HookDecision { return HookContinue }
	if _, err := New(prog, ckptSpec(), hooked).EncodeCheckpoint(); err == nil {
		t.Error("hooked executor checkpointed")
	}
	if _, err := ResumeExecutor(nil, opts); err == nil {
		t.Error("resume accepted parallel options")
	}
}

// TestCheckpointGarbageRejected: corrupt or truncated blobs produce
// errors, never panics.
func TestCheckpointGarbageRejected(t *testing.T) {
	prog := bytecode.MustCompile("ckpt", ckptSrc)
	opts := ckptOpts()
	opts.MaxSteps = 300
	ex := New(prog, ckptSpec(), opts)
	ex.Run()
	blob, err := ex.EncodeCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(blob); cut += 17 {
		if _, err := ResumeExecutor(blob[:cut], ckptOpts()); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	bad := append([]byte(nil), blob...)
	bad[len(bad)/2] ^= 0x3C
	// A mid-blob flip may or may not decode; it must never panic.
	ResumeExecutor(bad, ckptOpts())
}

// TestCheckpointFileRoundTrip exercises the framed .ssnap file form.
func TestCheckpointFileRoundTrip(t *testing.T) {
	prog := bytecode.MustCompile("ckpt", ckptSrc)
	opts := ckptOpts()
	opts.MaxSteps = 300
	ex := New(prog, ckptSpec(), opts)
	ex.Run()
	blob, err := ex.EncodeCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.ssnap")
	if err := WriteCheckpointFile(path, blob); err != nil {
		t.Fatalf("WriteCheckpointFile: %v", err)
	}
	back, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatalf("ReadCheckpointFile: %v", err)
	}
	if !bytes.Equal(back, blob) {
		t.Fatal("file round trip changed the payload")
	}
	if _, err := ResumeExecutor(back, ckptOpts()); err != nil {
		t.Fatalf("resume from file payload: %v", err)
	}
}
