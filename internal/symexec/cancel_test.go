// External test package: these tests drive the executor through the real
// evaluation apps, and the apps registry itself imports symexec, so they
// cannot live in the internal test package without an import cycle.
package symexec_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/symexec"
	"repro/internal/trace"
)

// TestRunContextAlreadyCancelled: an executor handed a dead context must
// stop before exploring anything and report Cancelled, not TimedOut.
func TestRunContextAlreadyCancelled(t *testing.T) {
	app, err := apps.Get("thttpd")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ex := symexec.New(app.Program(), app.Spec, symexec.DefaultOptions())
	res := ex.RunContext(ctx)
	if !res.Cancelled {
		t.Errorf("Cancelled not set: %+v", res)
	}
	if res.TimedOut {
		t.Errorf("cancellation misreported as timeout: %+v", res)
	}
	if res.Found() {
		t.Errorf("found a vulnerability without running: %+v", res)
	}
	if res.Paths != 0 {
		t.Errorf("explored %d paths under a dead context", res.Paths)
	}
}

// TestRunContextMidRunCancel cancels from inside the guidance hook after a
// fixed number of location crossings and checks the partial result is
// internally consistent: Cancelled set, counters monotone and bounded by
// the work actually done, and no competing stop cause reported.
func TestRunContextMidRunCancel(t *testing.T) {
	app, err := apps.Get("thttpd")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fires := 0
	opts := symexec.DefaultOptions()
	opts.Sched = symexec.NewBFS()
	opts.Hook = func(ex *symexec.Executor, st *symexec.State, loc trace.Location, view *symexec.VarView) symexec.HookDecision {
		fires++
		if fires == 25 {
			cancel()
		}
		return symexec.HookContinue
	}
	ex := symexec.New(app.Program(), app.Spec, opts)
	res := ex.RunContext(ctx)
	if !res.Cancelled {
		t.Fatalf("Cancelled not set after mid-run cancel: %+v", res)
	}
	if res.TimedOut || res.Exhausted || res.StepLimited {
		t.Errorf("cancellation reported alongside a budget stop: %+v", res)
	}
	if res.Steps <= 0 {
		t.Errorf("no steps recorded before the cancel: %+v", res)
	}
	if res.StatesCreated <= 0 || res.MaxLive <= 0 {
		t.Errorf("state counters empty: %+v", res)
	}
	if res.Paths < 0 || res.Paths > res.StatesCreated {
		t.Errorf("paths %d inconsistent with %d states created", res.Paths, res.StatesCreated)
	}
	if res.Elapsed <= 0 {
		t.Errorf("elapsed not measured")
	}
	// Cancellation is observed at the next quantum boundary: the run must
	// not have continued far beyond the hook that pulled the trigger.
	if fires > 25+symexec.DefaultBatchSize {
		t.Errorf("hook fired %d times after cancel at 25", fires-25)
	}
}

// TestRunContextTimeoutIsNotCancel: an expired Options.Timeout must keep
// reporting TimedOut (the pre-context behavior), never Cancelled.
func TestRunContextTimeoutIsNotCancel(t *testing.T) {
	app, err := apps.Get("thttpd")
	if err != nil {
		t.Fatal(err)
	}
	opts := symexec.DefaultOptions()
	opts.Timeout = time.Nanosecond
	ex := symexec.New(app.Program(), app.Spec, opts)
	res := ex.RunContext(context.Background())
	if !res.TimedOut {
		t.Errorf("TimedOut not set: %+v", res)
	}
	if res.Cancelled {
		t.Errorf("timeout misreported as cancellation: %+v", res)
	}
}

// TestRunContextNilContext: a nil context behaves like Background (the
// compatibility path used by Run).
func TestRunContextNilContext(t *testing.T) {
	app, err := apps.Get("polymorph")
	if err != nil {
		t.Fatal(err)
	}
	opts := symexec.DefaultOptions()
	opts.MaxSteps = 50_000
	ex := symexec.New(app.Program(), app.Spec, opts)
	res := ex.RunContext(nil) //nolint:staticcheck // deliberate: nil must be tolerated
	if res.Cancelled {
		t.Errorf("nil context reported cancellation: %+v", res)
	}
}
