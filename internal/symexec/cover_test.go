package symexec

import (
	"strings"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/interp"
	"repro/internal/solver"
	"repro/internal/trace"
)

func TestSymBufReadSymbolicIndex(t *testing.T) {
	// Unguarded read with a symbolic index: the OOB-read oracle fires;
	// guarded reads return fresh values and keep going.
	src := `
func main() int {
  int i = input_int("i");
  buf b[8];
  bufwrite(b, 0, 7);
  return bufread(b, i);
}`
	res := runSym(t, src, nil, DefaultOptions())
	if !res.Found() || res.Vulns[0].Kind != interp.FaultBufferOOBRead {
		t.Fatalf("OOB read not detected: %+v", res.Vulns)
	}
	confirmWitness(t, src, res.Vulns[0])

	guarded := `
func main() int {
  int i = input_int("i");
  buf b[8];
  if (i >= 0) {
    if (i < 8) {
      return bufread(b, i);
    }
  }
  return 0;
}`
	res = runSym(t, guarded, nil, DefaultOptions())
	if res.Found() {
		t.Errorf("guarded symbolic read reported: %s", res.Vulns[0].Site())
	}
}

func TestSymComparisonAsValue(t *testing.T) {
	// Storing a comparison result forks eagerly at the comparison (the
	// pushBool non-jump path).
	src := `
func main() int {
  int x = input_int("x");
  int flag = x > 10;
  int other = !(x > 100);
  if (flag + other == 2) { assert(0); }
  return 0;
}`
	res := runSym(t, src, nil, DefaultOptions())
	if !res.Found() {
		t.Fatal("not found")
	}
	w := res.Vulns[0].Witness.Ints["x"]
	if w <= 10 || w > 100 {
		t.Errorf("witness x = %d, want (10, 100]", w)
	}
	confirmWitness(t, src, res.Vulns[0])
}

func TestSymNegationOfComparison(t *testing.T) {
	src := `
func main() int {
  int x = input_int("x");
  int notBig = !(x > 5);
  if (notBig == 1) {
    if (x == 3) { assert(0); }
  }
  return 0;
}`
	res := runSym(t, src, nil, DefaultOptions())
	if !res.Found() || res.Vulns[0].Witness.Ints["x"] != 3 {
		t.Fatalf("res = %+v", res.Vulns)
	}
	confirmWitness(t, src, res.Vulns[0])
}

func TestSymAtoiConcreteInSymbolicRun(t *testing.T) {
	src := `
func main() int {
  int v = atoi("  -37xyz");
  if (v == -37) { assert(0); }
  return 0;
}`
	res := runSym(t, src, nil, DefaultOptions())
	if !res.Found() {
		t.Error("concrete atoi mis-parsed under symbolic execution")
	}
}

func TestSymBufStrSymbolicLength(t *testing.T) {
	src := `
func main() int {
  int n = input_int("n");
  buf b[8];
  bufwrite(b, 0, 'a');
  if (n >= 0) {
    if (n <= 8) {
      string s = bufstr(b, n);
      if (len(s) > 8) { assert(0); }
    }
  }
  return 0;
}`
	res := runSym(t, src, nil, DefaultOptions())
	if res.Found() {
		t.Errorf("bufstr length bound violated: %s", res.Vulns[0].Site())
	}
}

func TestSymSubstrSymbolicIndices(t *testing.T) {
	src := `
func main() int {
  int i = input_int("i");
  string s = input_string("s");
  string sub = substr(s, i, i + 3);
  if (len(sub) > len(s)) { assert(0); }
  return 0;
}`
	res := runSym(t, src, &InputSpec{MaxStrLen: 8}, DefaultOptions())
	if res.Found() {
		t.Errorf("substr bound violated: %+v", res.Vulns)
	}
}

func TestValueStringForms(t *testing.T) {
	if got := IntVal(42).String(); got != "42" {
		t.Errorf("IntVal.String = %q", got)
	}
	if got := StrVal("hi").String(); got != `"hi"` {
		t.Errorf("StrVal.String = %q", got)
	}
	b := BufVal(NewSymBuffer(4))
	if got := b.String(); got != "buf[4]" {
		t.Errorf("BufVal.String = %q", got)
	}
	tbl := solver.NewVarTable()
	x := tbl.NewVar("x")
	cv := CondVal(solver.Ge(solver.VarExpr(x), solver.ConstExpr(1)))
	if !strings.Contains(cv.String(), "cond(") {
		t.Errorf("CondVal.String = %q", cv.String())
	}
	sym := &SymString{ID: 3, Label: "p", LenVar: tbl.NewVarMin("len(p)", 0)}
	if got := SymStrVal(sym).String(); !strings.Contains(got, "sym-str(p#3)") {
		t.Errorf("SymStrVal.String = %q", got)
	}
}

func TestSchedulerNames(t *testing.T) {
	names := map[string]Scheduler{
		"bfs":      NewBFS(),
		"dfs":      NewDFS(),
		"random":   NewRandom(1),
		"coverage": NewCoverage(),
	}
	for want, s := range names {
		if s.Name() != want {
			t.Errorf("Name() = %q, want %q", s.Name(), want)
		}
	}
}

func TestStateAddConstraintAndSeq(t *testing.T) {
	st := &State{}
	tbl := solver.NewVarTable()
	x := tbl.NewVar("x")
	st.AddConstraint(solver.Ge(solver.VarExpr(x), solver.ConstExpr(1)))
	if len(st.Constraints) != 1 {
		t.Errorf("constraints = %d", len(st.Constraints))
	}
	if st.Seq() != 0 {
		t.Errorf("zero state Seq = %d", st.Seq())
	}
}

func TestTryAddConstraintsDirect(t *testing.T) {
	prog := bytecode.MustCompile("tac", `func main() int { return input_int("x"); }`)
	ex := New(prog, nil, DefaultOptions())
	res := ex.Run()
	_ = res
	// Fresh state via a second executor: drive TryAddConstraints by hand.
	ex2 := New(prog, nil, DefaultOptions())
	st := &State{Status: StatusActive}
	x := ex2.Table.NewVarBounded("x", 0, 10)
	if !ex2.TryAddConstraints(st, []solver.Constraint{solver.Ge(solver.VarExpr(x), solver.ConstExpr(3))}) {
		t.Fatal("consistent constraint rejected")
	}
	if ex2.TryAddConstraints(st, []solver.Constraint{solver.Le(solver.VarExpr(x), solver.ConstExpr(1))}) {
		t.Fatal("contradiction accepted")
	}
	if !ex2.TryAddConstraints(st, nil) {
		t.Fatal("empty constraint set rejected")
	}
}

func TestVarViewGlobal(t *testing.T) {
	src := `
global int counter = 5;
func probe() int { return counter; }
func main() int { return probe(); }`
	prog := bytecode.MustCompile("vv", src)
	sawGlobal := false
	opts := DefaultOptions()
	opts.Hook = func(ex *Executor, st *State, loc trace.Location, view *VarView) HookDecision {
		if loc.Func == "probe" {
			if v, ok := view.Global("counter"); ok {
				if c, isConst := v.IsConcreteInt(); isConst && c == 5 {
					sawGlobal = true
				}
			}
			if _, ok := view.Global("missing"); ok {
				t.Error("missing global resolved")
			}
		}
		return HookContinue
	}
	ex := New(prog, nil, opts)
	ex.Run()
	if !sawGlobal {
		t.Error("global not visible through VarView")
	}
}
