package symexec

import (
	"fmt"

	"repro/internal/bytecode"
	"repro/internal/minic"
	"repro/internal/solver"
	"repro/internal/summary"
	"repro/internal/trace"
)

// CallStrategy decides what happens at an OpCall after the arguments are
// popped. handled=false hands the call back to the executor, which pushes a
// frame and interprets the body (today's behavior); handled=true means the
// strategy fully processed the call and (children, suspend, done) are the
// step outcome.
//
// Strategies are built once per run (NewCallStrategy) and shared read-only
// across the frontier engine's worker slots via the Options copy, so
// implementations must be safe for concurrent OnCall invocations on
// different states.
type CallStrategy interface {
	// Name returns the mode name ("interpret", "havoc", "summarize").
	Name() string
	OnCall(ex *Executor, st *State, callee *bytecode.Fn, args []Value) (children []*State, suspend, done, handled bool)
}

// Call-strategy mode names.
const (
	CallInterpret = "interpret"
	CallHavoc     = "havoc"
	CallSummarize = "summarize"
)

// NewCallStrategy builds the call strategy for prog. mode "" or
// "interpret" returns nil (the executor's native behavior). "havoc"
// interprets in-scope calls and havocs the rest. "summarize" additionally
// replaces summarizable in-scope calls by memoized path summaries from
// cache (a nil cache gets a private one; pass a shared cache to reuse
// summaries across candidate attempts).
func NewCallStrategy(prog *bytecode.Program, mode string, scope *summary.Policy, cache *summary.Cache) (CallStrategy, error) {
	switch mode {
	case "", CallInterpret:
		return nil, nil
	case CallHavoc:
		return &havocCalls{policy: scope, fx: summary.Analyze(prog)}, nil
	case CallSummarize:
		if cache == nil {
			cache = summary.NewCache()
		}
		return &summarizeCalls{
			havocCalls: havocCalls{policy: scope, fx: summary.Analyze(prog)},
			cache:      cache,
			hashes:     summary.HashProgram(prog),
		}, nil
	default:
		return nil, fmt.Errorf("symexec: unknown call mode %q (want interpret, havoc, or summarize)", mode)
	}
}

// havocCalls interprets in-scope calls and replaces out-of-scope calls by
// havoc summaries derived from the effect analysis.
type havocCalls struct {
	policy *summary.Policy
	fx     []summary.FnEffects
}

func (h *havocCalls) Name() string { return CallHavoc }

func (h *havocCalls) OnCall(ex *Executor, st *State, callee *bytecode.Fn, args []Value) ([]*State, bool, bool, bool) {
	if h.policy.InScope(callee.Name) || callee.Ret == minic.TypeBuf {
		// Buffer-returning functions cannot be havocked faithfully (the
		// caller would alias a buffer the havoc cannot produce); interpret
		// them even out of scope.
		return nil, false, false, false
	}
	children, suspend, done := ex.applyHavoc(st, callee, &h.fx[callee.Index], args)
	return children, suspend, done, true
}

// summarizeCalls layers memoized path summaries on top of havocCalls:
// out-of-scope calls havoc, summarizable in-scope calls apply mined
// summaries, everything else interprets.
type summarizeCalls struct {
	havocCalls
	cache  *summary.Cache
	hashes []uint64
}

func (s *summarizeCalls) Name() string { return CallSummarize }

func (s *summarizeCalls) OnCall(ex *Executor, st *State, callee *bytecode.Fn, args []Value) ([]*State, bool, bool, bool) {
	if !s.policy.InScope(callee.Name) {
		return s.havocCalls.OnCall(ex, st, callee, args)
	}
	if !s.fx[callee.Index].Summarizable || !intArgs(args) {
		return nil, false, false, false
	}
	key := s.hashes[callee.Index]
	sum, ok := s.cache.Lookup(key)
	if !ok {
		sum = mineSummary(callee)
		s.cache.Store(key, sum)
	}
	if sum.Failed {
		return nil, false, false, false
	}
	children, suspend, done := ex.applySummary(st, callee, sum, args)
	return children, suspend, done, true
}

// intArgs reports whether every argument is a plain (non-deferred) integer
// expression — the form summary instantiation substitutes. Always true for
// summarizable callees (the type checker enforces int parameters, and
// deferred comparisons are materialized before calls); kept as a dynamic
// backstop.
func intArgs(args []Value) bool {
	for _, a := range args {
		if a.Kind != KindInt || a.IsCond {
			return false
		}
	}
	return true
}

// instExpr substitutes call-site argument expressions for the canonical
// parameter variables (Var(i) = i-th parameter) of a mined expression.
func instExpr(e solver.LinExpr, args []Value) solver.LinExpr {
	out := solver.ConstExpr(e.Const)
	for _, t := range e.Terms {
		out = out.Add(args[int(t.Var)].Lin.MulConst(t.Coeff))
	}
	return out
}

// instPath is one summary path instantiated at a call site.
type instPath struct {
	cons []solver.Constraint
	m    solver.Model
	ret  *solver.LinExpr
}

// applySummary replaces a call by its memoized summary: the state forks
// once per path feasible under its path condition, each taking the path's
// instantiated entry constraints and return expression — constraint
// instantiation instead of interpretation.
//
// Hook parity with interpretation is preserved: the callee frame is pushed
// transiently so the Enter event (and a guidance suspension at it) sees the
// same state shape, each feasible path fires its own Leave event, and a
// Leave suspension parks the child via the pending-suspend marker. An Enter
// suspension leaves the frame in place and reports unhandled-style suspend:
// when the state resumes it interprets the body, which is always sound.
//
// No fresh solver variables are allocated (instantiation reuses argument
// expressions), constraints flow through addPathConstraint (keeping the
// rolling path-condition digests coherent), and forks are ordered by mined
// path order — so the epoch engine's determinism argument is untouched.
func (ex *Executor) applySummary(st *State, callee *bytecode.Fn, sum *summary.FnSummary, args []Value) (children []*State, suspend, done bool) {
	nf := &Frame{Fn: callee, Locals: make([]Value, callee.NumLocals)}
	copy(nf.Locals, args)
	st.Frames = append(st.Frames, nf)
	if dec := ex.fireLocation(st, trace.Location{Func: callee.Name, Kind: trace.EventEnter}, nil); dec == HookSuspend {
		return nil, true, false
	}

	// Instantiate each mined path and keep the feasible ones.
	feas := make([]instPath, 0, len(sum.Paths))
pathLoop:
	for i := range sum.Paths {
		p := &sum.Paths[i]
		inst := make([]solver.Constraint, 0, len(p.Cons))
		for _, c := range p.Cons {
			ic := solver.Constraint{E: instExpr(c.E, args), Op: c.Op}
			if ic.IsTriviallyTrue() {
				continue
			}
			if ic.IsTriviallyFalse() {
				continue pathLoop
			}
			inst = append(inst, ic)
		}
		ip := instPath{cons: inst}
		if p.Ret != nil {
			r := instExpr(*p.Ret, args)
			ip.ret = &r
		}
		if len(inst) > 0 {
			ok, m := ex.satisfiable(st, inst...)
			if !ok {
				continue
			}
			ip.m = m
		}
		feas = append(feas, ip)
	}
	// Model-directed path selection, mirroring pushBool/stepJump: the
	// current state follows the summary path its cached model already
	// satisfies (in a guided run the seeded model tracks the candidate
	// path — shunting st onto an arbitrary mined path would derail the
	// guided search); the other feasible paths become fork children.
	if st.LastModel != nil {
		for i := range feas {
			if allHold(feas[i].cons, st.LastModel) {
				picked := feas[i]
				copy(feas[1:i+1], feas[:i])
				feas[0] = picked
				break
			}
		}
	}
	ex.res.SummaryCalls++
	ex.res.SummaryPaths += len(feas)
	if len(feas) == 0 {
		// Every summarized path is refuted: the caller's own (optimistically
		// Unknown-satisfiable) path condition is infeasible.
		st.Status = StatusInfeasible
		return nil, false, true
	}

	// Fork siblings for the extra feasible paths before constraining st,
	// then apply path i to state i. Each state finishes the call exactly as
	// a return would: Leave event with the frame still pushed, pop,
	// ensureTopOwned, push the (instantiated) return value.
	children = make([]*State, len(feas)-1)
	for i := range children {
		children[i] = st.fork()
	}
	ex.res.Forks += len(children)
	states := append([]*State{st}, children...)
	for i, state := range states {
		p := feas[i]
		ex.commit(state, p.m, p.cons...)
		if len(feas) > 1 {
			state.Depth++
		}
		var ret Value
		var retPtr *Value
		if callee.Ret != minic.TypeVoid {
			if p.ret != nil {
				ret = LinVal(*p.ret)
			} else {
				ret = IntVal(0)
			}
			retPtr = &ret
		}
		dec := ex.fireLocation(state, trace.Location{Func: callee.Name, Kind: trace.EventLeave}, retPtr)
		state.Frames = state.Frames[:len(state.Frames)-1]
		state.ensureTopOwned()
		if retPtr != nil {
			state.push(ret)
		}
		if dec == HookSuspend {
			if i == 0 {
				suspend = true
			} else {
				state.pendingSuspend = true
			}
		}
	}
	return children, suspend, false
}

// applyHavoc replaces a call by its havoc summary: a fresh symbolic return
// value plus the callee's declared side-effect set — every transitively
// written global becomes a fresh symbolic value, and buffer arguments are
// smeared when the callee may write through them. Faults inside the
// havocked callee are NOT modeled (the documented soundness trade: havoc
// over-approximates data, not control — see DESIGN.md §13).
//
// The callee frame is pushed transiently across the Enter and Leave events
// so guidance hooks observe the same locations interpretation would emit.
// Fresh variables come from ex.newVar/ex.freshStr, which are lane-striped
// under the frontier engine, so worker-count invariance is preserved.
func (ex *Executor) applyHavoc(st *State, callee *bytecode.Fn, fx *summary.FnEffects, args []Value) (children []*State, suspend, done bool) {
	ex.res.HavocCalls++
	nf := &Frame{Fn: callee, Locals: make([]Value, callee.NumLocals)}
	copy(nf.Locals, args)
	st.Frames = append(st.Frames, nf)
	suspendEnter := ex.fireLocation(st, trace.Location{Func: callee.Name, Kind: trace.EventEnter}, nil) == HookSuspend

	for _, g := range fx.WritesGlobals {
		st.ensureGlobalsOwned()
		gi := ex.Prog.Globals[g]
		if gi.Type == minic.TypeString {
			st.Globals[g] = SymStrVal(ex.freshStr("havoc_"+gi.Name, DefaultMaxStrLen))
		} else {
			st.Globals[g] = LinVal(solver.VarExpr(ex.newVar("havoc_" + gi.Name)))
		}
	}
	if fx.WritesBuf {
		for _, a := range args {
			if a.Kind == KindBuf && a.Buf != nil {
				st.bufCellsForWrite(a.Buf).smeared = true
			}
		}
	}

	var ret Value
	var retPtr *Value
	switch callee.Ret {
	case minic.TypeInt:
		ret = LinVal(solver.VarExpr(ex.newVar("havoc_" + callee.Name)))
		retPtr = &ret
	case minic.TypeString:
		ret = SymStrVal(ex.freshStr("havoc_"+callee.Name, DefaultMaxStrLen))
		retPtr = &ret
	}
	suspendLeave := ex.fireLocation(st, trace.Location{Func: callee.Name, Kind: trace.EventLeave}, retPtr) == HookSuspend
	st.Frames = st.Frames[:len(st.Frames)-1]
	st.ensureTopOwned()
	if retPtr != nil {
		st.push(ret)
	}
	return nil, suspendEnter || suspendLeave, false
}
