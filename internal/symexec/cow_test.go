package symexec

import (
	"testing"

	"repro/internal/bytecode"
	"repro/internal/solver"
)

// cowState builds a two-frame state with globals, a buffer and a couple of
// path constraints — enough surface to probe every copy-on-write seam.
func cowState(t *testing.T) (*State, *solver.VarTable, solver.Var) {
	t.Helper()
	tbl := solver.NewVarTable()
	x := tbl.NewVar("x")
	caller := &bytecode.Fn{Name: "caller"}
	callee := &bytecode.Fn{Name: "callee"}
	st := &State{
		ID:     1,
		Status: StatusActive,
		Frames: []*Frame{
			{Fn: caller, PC: 3, Locals: []Value{IntVal(10), IntVal(11)}, Stack: []Value{IntVal(99)}},
			{Fn: callee, PC: 0, Locals: []Value{IntVal(20)}},
		},
		Globals: []Value{IntVal(7), IntVal(8)},
	}
	st.appendConstraint(solver.Ge(solver.VarExpr(x), solver.ConstExpr(0)))
	st.appendConstraint(solver.Le(solver.VarExpr(x), solver.ConstExpr(100)))
	return st, tbl, x
}

// digestInvariant asserts the rolling digest matches a from-scratch hash of
// the path condition.
func digestInvariant(t *testing.T, st *State, label string) {
	t.Helper()
	if got, want := st.PCDigest(), solver.DigestOf(st.Constraints); got != want {
		t.Fatalf("%s: pcDigest %+v != DigestOf %+v", label, got, want)
	}
}

func TestForkTopFrameIsolation(t *testing.T) {
	st, _, _ := cowState(t)
	child := st.fork()
	// The top frame is copied eagerly: mutations on either side are private.
	st.Top().Locals[0] = IntVal(-1)
	st.push(IntVal(42))
	if v, _ := child.Top().Locals[0].IsConcreteInt(); v != 20 {
		t.Errorf("child top local changed with parent: %v", child.Top().Locals[0])
	}
	if len(child.Top().Stack) != 0 {
		t.Errorf("child top stack grew with parent: %d values", len(child.Top().Stack))
	}
	child.Top().Locals[0] = IntVal(-2)
	if v, _ := st.Top().Locals[0].IsConcreteInt(); v != -1 {
		t.Errorf("parent top local changed with child: %v", st.Top().Locals[0])
	}
}

func TestForkBuriedFrameCopyOnReturn(t *testing.T) {
	st, _, _ := cowState(t)
	child := st.fork()
	if st.Frames[0] != child.Frames[0] {
		t.Fatal("buried frame not shared after fork")
	}
	// Parent returns: the buried frame surfaces and must be privatized
	// before the parent mutates it.
	st.Frames = st.Frames[:1]
	st.ensureTopOwned()
	if st.Frames[0] == child.Frames[0] {
		t.Fatal("surfaced frame still shared after ensureTopOwned")
	}
	st.Top().Locals[1] = IntVal(-5)
	st.push(IntVal(1))
	if v, _ := child.Frames[0].Locals[1].IsConcreteInt(); v != 11 {
		t.Errorf("child's buried frame mutated through parent: %v", child.Frames[0].Locals[1])
	}
	if len(child.Frames[0].Stack) != 1 {
		t.Errorf("child's buried stack length = %d, want 1", len(child.Frames[0].Stack))
	}
	// The child's own return finds refs == 0 (parent released its claim) and
	// keeps the frame without another copy.
	child.Frames = child.Frames[:1]
	fr := child.Frames[0]
	child.ensureTopOwned()
	if child.Frames[0] != fr {
		t.Error("child copied a frame it exclusively owned")
	}
}

func TestForkGlobalsIsolation(t *testing.T) {
	st, _, _ := cowState(t)
	child := st.fork()
	st.ensureGlobalsOwned()
	st.Globals[0] = IntVal(-7)
	if v, _ := child.Globals[0].IsConcreteInt(); v != 7 {
		t.Errorf("child global changed with parent: %v", child.Globals[0])
	}
	child.ensureGlobalsOwned()
	child.Globals[1] = IntVal(-8)
	if v, _ := st.Globals[1].IsConcreteInt(); v != 8 {
		t.Errorf("parent global changed with child: %v", st.Globals[1])
	}
}

func TestForkBufferIsolation(t *testing.T) {
	st, _, _ := cowState(t)
	buf := NewSymBuffer(4)
	// Untouched buffers read as zeroes in any state (lazy materialization).
	if v, _ := st.bufCell(buf, 2).IsConcreteInt(); v != 0 {
		t.Fatalf("fresh buffer cell = %v, want 0", v)
	}
	st.setBufCell(buf, 2, IntVal(5))
	child := st.fork()
	// Parent write after the fork stays private.
	st.setBufCell(buf, 2, IntVal(6))
	if v, _ := child.bufCell(buf, 2).IsConcreteInt(); v != 5 {
		t.Errorf("child buffer cell changed with parent: %v", child.bufCell(buf, 2))
	}
	// Child smears its copy; the parent's stays addressable.
	child.bufCellsForWrite(buf).smeared = true
	if st.bufSmeared(buf) {
		t.Error("parent buffer smeared by child write")
	}
	if !child.bufSmeared(buf) {
		t.Error("child smear lost")
	}
	if v, _ := st.bufCell(buf, 2).IsConcreteInt(); v != 6 {
		t.Errorf("parent buffer cell = %v, want 6", st.bufCell(buf, 2))
	}
}

func TestForkConstraintPrefixSharing(t *testing.T) {
	st, tbl, x := cowState(t)
	y := tbl.NewVar("y")
	child := st.fork()
	if len(child.Constraints) != 2 {
		t.Fatalf("child constraints = %d, want 2", len(child.Constraints))
	}
	// Parent appends in place (capacity permitting) or reallocates; either
	// way the child's clamped view never sees it.
	st.appendConstraint(solver.Ge(solver.VarExpr(y), solver.ConstExpr(1)))
	if len(child.Constraints) != 2 {
		t.Fatalf("parent append visible to child: %d constraints", len(child.Constraints))
	}
	digestInvariant(t, st, "parent after append")
	digestInvariant(t, child, "child after parent append")
	// Child appends independently (its view is at capacity, so this
	// reallocates) without disturbing the parent's third constraint.
	child.appendConstraint(solver.Le(solver.VarExpr(y), solver.ConstExpr(9)))
	if got := st.Constraints[2].String(tbl); got != solver.Ge(solver.VarExpr(y), solver.ConstExpr(1)).String(tbl) {
		t.Errorf("parent constraint clobbered by child append: %s", got)
	}
	digestInvariant(t, child, "child after own append")
	// In-place compaction inside the shared prefix must copy first.
	tighter := solver.Ge(solver.VarExpr(x), solver.ConstExpr(5))
	st.replaceConstraint(0, tighter)
	if child.Constraints[0].String(tbl) == tighter.String(tbl) {
		t.Error("parent compaction leaked into child's shared prefix")
	}
	digestInvariant(t, st, "parent after compaction")
	digestInvariant(t, child, "child after parent compaction")
}

func TestForkVarsBookkeepingIsolation(t *testing.T) {
	st, tbl, x := cowState(t)
	y := tbl.NewVar("y")
	st.noteVars(solver.Ge(solver.VarExpr(x), solver.ConstExpr(0)))
	child := st.fork()
	// Parent notes a new variable; the child's view must not gain it.
	st.noteVars(solver.Ge(solver.VarExpr(y), solver.ConstExpr(1)))
	if child.mentions(y) {
		t.Error("child pcVars mutated through parent")
	}
	if !st.mentions(y) || !st.mentions(x) || !child.mentions(x) {
		t.Error("mention bookkeeping lost")
	}
}

// TestForkDigestMatchesRebuild drives a deeper interleaving of forks,
// appends and compactions and re-checks the digest invariant at each step.
func TestForkDigestMatchesRebuild(t *testing.T) {
	st, tbl, _ := cowState(t)
	states := []*State{st}
	for i := 0; i < 4; i++ {
		v := tbl.NewVar("g")
		next := states[len(states)-1]
		child := next.fork()
		child.appendConstraint(solver.Ge(solver.VarExpr(v), solver.ConstExpr(int64(i))))
		next.appendConstraint(solver.Le(solver.VarExpr(v), solver.ConstExpr(int64(i+10))))
		next.replaceConstraint(0, solver.Ge(solver.VarExpr(v), solver.ConstExpr(int64(i-1))))
		states = append(states, child)
	}
	for i, s := range states {
		digestInvariant(t, s, "state "+string(rune('0'+i)))
	}
}
