package snapshot

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := map[byte][]byte{
		FrameHello:       []byte("hello"),
		FrameAttemptUnit: bytes.Repeat([]byte{0x5A}, 300), // multi-byte length varint
		FrameResult:      nil,                             // empty payload is legal
	}
	order := []byte{FrameHello, FrameAttemptUnit, FrameResult}
	for _, typ := range order {
		if err := WriteFrame(&buf, typ, payloads[typ]); err != nil {
			t.Fatalf("WriteFrame(%#x): %v", typ, err)
		}
	}
	r := bytes.NewReader(buf.Bytes())
	for _, want := range order {
		typ, payload, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if typ != want || !bytes.Equal(payload, payloads[want]) {
			t.Fatalf("frame = (%#x, %d bytes), want (%#x, %d bytes)", typ, len(payload), want, len(payloads[want]))
		}
	}
	if _, _, err := ReadFrame(r); err != io.EOF {
		t.Fatalf("end of stream = %v, want io.EOF", err)
	}
}

func TestFrameTornRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameStateUnit, []byte("some payload bytes")); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	// Every proper prefix that is at least one byte long is a torn frame.
	for cut := 1; cut < len(whole); cut++ {
		_, _, err := ReadFrame(bytes.NewReader(whole[:cut]))
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut at %d: err = %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
}

func TestFrameCorruptionRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameCheckpoint, []byte("checkpoint payload")); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	// Flip one bit in every byte position; each must fail (the type byte
	// and payload are covered by the CRC; a corrupted length either breaks
	// the CRC, tears the frame, or trips the size limit).
	for i := range whole {
		bad := append([]byte(nil), whole...)
		bad[i] ^= 0x40
		if _, _, err := ReadFrame(bytes.NewReader(bad)); err == nil {
			t.Fatalf("bit flip at byte %d accepted", i)
		}
	}
}

func TestFrameChecksumMismatchMessage(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameError, []byte("xyz")); err != nil {
		t.Fatal(err)
	}
	bad := buf.Bytes()
	bad[1+1] ^= 0xFF // corrupt the first payload byte, leaving lengths intact
	_, _, err := ReadFrame(bytes.NewReader(bad))
	if err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("err = %v, want checksum mismatch", err)
	}
}

func TestFrameOversizeLengthRejected(t *testing.T) {
	// Hand-craft a header claiming a payload beyond MaxFramePayload.
	var buf bytes.Buffer
	buf.WriteByte(FrameHello)
	// uvarint of MaxFramePayload+1
	v := uint64(MaxFramePayload + 1)
	for v >= 0x80 {
		buf.WriteByte(byte(v) | 0x80)
		v >>= 7
	}
	buf.WriteByte(byte(v))
	_, _, err := ReadFrame(bytes.NewReader(buf.Bytes()))
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("err = %v, want length-limit rejection", err)
	}
	if err := WriteFrame(io.Discard, FrameHello, make([]byte, MaxFramePayload+1)); err == nil {
		t.Fatal("oversize write accepted")
	}
}

func TestFrameGarbageStream(t *testing.T) {
	// A stream of random-ish garbage must error out, not panic or succeed.
	garbage := []byte{0x99, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}
	if _, _, err := ReadFrame(bytes.NewReader(garbage)); err == nil {
		t.Fatal("garbage stream accepted")
	}
}
