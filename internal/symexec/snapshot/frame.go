package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Wire framing for the dispatch socket protocol and checkpoint files. A
// frame is:
//
//	[1 type byte][uvarint payload length][payload][4-byte CRC32 LE]
//
// where the checksum covers the type byte and the payload. The length is
// bounded by MaxFramePayload, so a corrupt length cannot make a reader
// allocate unbounded memory, and the trailing checksum rejects torn or
// bit-flipped frames before any payload decoding runs.

// MaxFramePayload bounds a frame's payload (256 MiB); anything larger is
// treated as corruption.
const MaxFramePayload = 1 << 28

// Frame type bytes. Values below 0x10 are reserved for the transport
// (handshake, results, errors); application unit kinds start at 0x10.
const (
	FrameHello    byte = 0x01
	FrameHelloAck byte = 0x02
	FrameResult   byte = 0x03
	FrameError    byte = 0x04

	// FrameAttemptUnit ships one whole candidate-verification attempt;
	// FrameStateUnit ships a frontier shard (a checkpointed state subtree)
	// of one symbolic execution.
	FrameAttemptUnit byte = 0x10
	FrameStateUnit   byte = 0x11

	// FrameCheckpoint is the single frame of a checkpoint (.ssnap) file.
	FrameCheckpoint byte = 0x20
)

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > MaxFramePayload {
		return fmt.Errorf("snapshot: frame payload %d exceeds limit %d", len(payload), MaxFramePayload)
	}
	hdr := make([]byte, 1, 1+binary.MaxVarintLen64)
	hdr[0] = typ
	hdr = binary.AppendUvarint(hdr, uint64(len(payload)))
	crc := crc32.NewIEEE()
	crc.Write(hdr[:1])
	crc.Write(payload)
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	_, err := w.Write(sum[:])
	return err
}

// ReadFrame reads one frame from r. A clean end-of-stream before the first
// byte returns io.EOF; a stream that ends mid-frame returns
// io.ErrUnexpectedEOF (a torn frame); a checksum or length violation
// returns a descriptive error. The payload is freshly allocated.
func ReadFrame(r io.Reader) (byte, []byte, error) {
	var typ [1]byte
	if _, err := io.ReadFull(r, typ[:]); err != nil {
		return 0, nil, err // io.EOF at a frame boundary is the clean shutdown signal
	}
	n, err := readUvarint(r)
	if err != nil {
		return 0, nil, torn(err)
	}
	if n > MaxFramePayload {
		return 0, nil, fmt.Errorf("snapshot: frame length %d exceeds limit %d (corrupt frame)", n, MaxFramePayload)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, torn(err)
	}
	var sum [4]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		return 0, nil, torn(err)
	}
	crc := crc32.NewIEEE()
	crc.Write(typ[:])
	crc.Write(payload)
	if got := crc.Sum32(); got != binary.LittleEndian.Uint32(sum[:]) {
		return 0, nil, fmt.Errorf("snapshot: frame checksum mismatch (%#x != %#x)", got, binary.LittleEndian.Uint32(sum[:]))
	}
	return typ[0], payload, nil
}

// torn maps any mid-frame read error to io.ErrUnexpectedEOF-flavored
// corruption while keeping the underlying error visible.
func torn(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// readUvarint decodes a uvarint byte-by-byte from r (bounded at 10 bytes,
// like binary.ReadUvarint, without requiring an io.ByteReader).
func readUvarint(r io.Reader) (uint64, error) {
	var v uint64
	var b [1]byte
	for shift := uint(0); shift < 64; shift += 7 {
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return 0, err
		}
		v |= uint64(b[0]&0x7f) << shift
		if b[0] < 0x80 {
			return v, nil
		}
	}
	return 0, fmt.Errorf("snapshot: uvarint overflow")
}
