package snapshot

import (
	"fmt"
	"sort"

	"repro/internal/bytecode"
	"repro/internal/interp"
	"repro/internal/minic"
	"repro/internal/pathid"
	"repro/internal/solver"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Codecs for the wire-crossing value types: the compiled program, candidate
// paths (with their statistical predicates), solver terms, and concrete
// inputs. Each Encode/Decode pair round-trips exactly; decoders validate
// structural invariants (index ranges, lengths) so a corrupt payload fails
// with an error instead of producing an inconsistent value.

// EncodeProgram writes a compiled program.
func EncodeProgram(w *Writer, p *bytecode.Program) {
	w.String(p.Name)
	w.Int(len(p.Globals))
	for _, g := range p.Globals {
		w.Sym(g.Name)
		w.Int(int(g.Type))
	}
	w.Int(len(p.Funcs))
	for _, fn := range p.Funcs {
		w.Sym(fn.Name)
		w.Int(len(fn.ParamNames))
		for i, pn := range fn.ParamNames {
			w.Sym(pn)
			w.Int(int(fn.ParamTypes[i]))
		}
		w.Int(int(fn.Ret))
		w.Int(fn.NumLocals)
		w.Int(len(fn.Code))
		for _, in := range fn.Code {
			w.Byte(byte(in.Op))
			w.Int(in.A)
			w.Int(in.B)
			w.Varint(in.Imm)
			w.Sym(in.Str)
			EncodePos(w, in.Pos)
		}
	}
	w.Int(p.InitIndex)
	w.Int(p.MainIndex)
}

// DecodeProgram reads a compiled program and rebuilds its indexes.
func DecodeProgram(r *Reader) (*bytecode.Program, error) {
	name, err := r.String()
	if err != nil {
		return nil, err
	}
	nglobals, err := r.Int()
	if err != nil {
		return nil, err
	}
	if nglobals < 0 || nglobals > r.Len() {
		return nil, fmt.Errorf("snapshot: global count %d out of range", nglobals)
	}
	globals := make([]bytecode.GlobalInfo, nglobals)
	for i := range globals {
		if globals[i].Name, err = r.Sym(); err != nil {
			return nil, err
		}
		t, err := r.Int()
		if err != nil {
			return nil, err
		}
		globals[i].Type = minic.Type(t)
	}
	nfuncs, err := r.Int()
	if err != nil {
		return nil, err
	}
	if nfuncs < 0 || nfuncs > r.Len() {
		return nil, fmt.Errorf("snapshot: function count %d out of range", nfuncs)
	}
	funcs := make([]*bytecode.Fn, nfuncs)
	for i := range funcs {
		fn := &bytecode.Fn{Index: i}
		if fn.Name, err = r.Sym(); err != nil {
			return nil, err
		}
		nparams, err := r.Int()
		if err != nil {
			return nil, err
		}
		if nparams < 0 || nparams > r.Len() {
			return nil, fmt.Errorf("snapshot: param count %d out of range", nparams)
		}
		for j := 0; j < nparams; j++ {
			pn, err := r.Sym()
			if err != nil {
				return nil, err
			}
			pt, err := r.Int()
			if err != nil {
				return nil, err
			}
			fn.ParamNames = append(fn.ParamNames, pn)
			fn.ParamTypes = append(fn.ParamTypes, minic.Type(pt))
		}
		ret, err := r.Int()
		if err != nil {
			return nil, err
		}
		fn.Ret = minic.Type(ret)
		if fn.NumLocals, err = r.Int(); err != nil {
			return nil, err
		}
		ncode, err := r.Int()
		if err != nil {
			return nil, err
		}
		if ncode < 0 || ncode > r.Len() {
			return nil, fmt.Errorf("snapshot: code length %d out of range", ncode)
		}
		fn.Code = make([]bytecode.Instr, ncode)
		for j := range fn.Code {
			op, err := r.Byte()
			if err != nil {
				return nil, err
			}
			in := bytecode.Instr{Op: bytecode.Op(op)}
			if in.A, err = r.Int(); err != nil {
				return nil, err
			}
			if in.B, err = r.Int(); err != nil {
				return nil, err
			}
			if in.Imm, err = r.Varint(); err != nil {
				return nil, err
			}
			if in.Str, err = r.Sym(); err != nil {
				return nil, err
			}
			if in.Pos, err = DecodePos(r); err != nil {
				return nil, err
			}
			fn.Code[j] = in
		}
		funcs[i] = fn
	}
	initIdx, err := r.Int()
	if err != nil {
		return nil, err
	}
	mainIdx, err := r.Int()
	if err != nil {
		return nil, err
	}
	return bytecode.Assemble(name, funcs, globals, initIdx, mainIdx)
}

// EncodePos writes a source position.
func EncodePos(w *Writer, p minic.Pos) {
	w.Int(p.Line)
	w.Int(p.Col)
}

// DecodePos reads a source position.
func DecodePos(r *Reader) (minic.Pos, error) {
	line, err := r.Int()
	if err != nil {
		return minic.Pos{}, err
	}
	col, err := r.Int()
	if err != nil {
		return minic.Pos{}, err
	}
	return minic.Pos{Line: line, Col: col}, nil
}

// EncodeLocation writes an instrumentation location.
func EncodeLocation(w *Writer, l trace.Location) {
	w.Sym(l.Func)
	w.Int(int(l.Kind))
}

// DecodeLocation reads an instrumentation location.
func DecodeLocation(r *Reader) (trace.Location, error) {
	fn, err := r.Sym()
	if err != nil {
		return trace.Location{}, err
	}
	k, err := r.Int()
	if err != nil {
		return trace.Location{}, err
	}
	return trace.Location{Func: fn, Kind: trace.EventKind(k)}, nil
}

// EncodePredicate writes one statistical predicate (nil allowed).
func EncodePredicate(w *Writer, p *stats.Predicate) {
	if p == nil {
		w.Bool(false)
		return
	}
	w.Bool(true)
	EncodeLocation(w, p.Loc)
	w.Sym(p.Var)
	w.Int(int(p.Class))
	w.Bool(p.IsString)
	w.Int(int(p.Op))
	w.Float(p.Threshold)
	w.Float(p.Score)
	w.Int(p.Err)
	w.Int(p.CountC)
	w.Int(p.CountF)
}

// DecodePredicate reads one statistical predicate (nil when absent).
func DecodePredicate(r *Reader) (*stats.Predicate, error) {
	present, err := r.Bool()
	if err != nil || !present {
		return nil, err
	}
	p := &stats.Predicate{}
	if p.Loc, err = DecodeLocation(r); err != nil {
		return nil, err
	}
	if p.Var, err = r.Sym(); err != nil {
		return nil, err
	}
	cls, err := r.Int()
	if err != nil {
		return nil, err
	}
	p.Class = trace.VarClass(cls)
	if p.IsString, err = r.Bool(); err != nil {
		return nil, err
	}
	op, err := r.Int()
	if err != nil {
		return nil, err
	}
	p.Op = stats.PredOp(op)
	if p.Threshold, err = r.Float(); err != nil {
		return nil, err
	}
	if p.Score, err = r.Float(); err != nil {
		return nil, err
	}
	if p.Err, err = r.Int(); err != nil {
		return nil, err
	}
	if p.CountC, err = r.Int(); err != nil {
		return nil, err
	}
	if p.CountF, err = r.Int(); err != nil {
		return nil, err
	}
	return p, nil
}

// EncodeCandidate writes one ranked candidate path.
func EncodeCandidate(w *Writer, c *pathid.CandidatePath) {
	w.Int(len(c.Nodes))
	for _, n := range c.Nodes {
		EncodeLocation(w, n.Loc)
		EncodePredicate(w, n.Pred)
	}
	w.Float(c.AvgScore)
	w.Int(c.Detours)
}

// DecodeCandidate reads one ranked candidate path.
func DecodeCandidate(r *Reader) (*pathid.CandidatePath, error) {
	n, err := r.Int()
	if err != nil {
		return nil, err
	}
	if n < 0 || n > r.Len() {
		return nil, fmt.Errorf("snapshot: candidate node count %d out of range", n)
	}
	c := &pathid.CandidatePath{Nodes: make([]pathid.PathNode, n)}
	for i := range c.Nodes {
		if c.Nodes[i].Loc, err = DecodeLocation(r); err != nil {
			return nil, err
		}
		if c.Nodes[i].Pred, err = DecodePredicate(r); err != nil {
			return nil, err
		}
	}
	if c.AvgScore, err = r.Float(); err != nil {
		return nil, err
	}
	if c.Detours, err = r.Int(); err != nil {
		return nil, err
	}
	return c, nil
}

// EncodeLinExpr writes a linear expression.
func EncodeLinExpr(w *Writer, e solver.LinExpr) {
	w.Int(len(e.Terms))
	for _, t := range e.Terms {
		w.Varint(t.Coeff)
		w.Varint(int64(t.Var))
	}
	w.Varint(e.Const)
}

// DecodeLinExpr reads a linear expression.
func DecodeLinExpr(r *Reader) (solver.LinExpr, error) {
	n, err := r.Int()
	if err != nil {
		return solver.LinExpr{}, err
	}
	if n < 0 || n > r.Len() {
		return solver.LinExpr{}, fmt.Errorf("snapshot: term count %d out of range", n)
	}
	var e solver.LinExpr
	if n > 0 {
		e.Terms = make([]solver.Term, n)
		for i := range e.Terms {
			if e.Terms[i].Coeff, err = r.Varint(); err != nil {
				return solver.LinExpr{}, err
			}
			v, err := r.Varint()
			if err != nil {
				return solver.LinExpr{}, err
			}
			e.Terms[i].Var = solver.Var(v)
		}
	}
	if e.Const, err = r.Varint(); err != nil {
		return solver.LinExpr{}, err
	}
	return e, nil
}

// EncodeConstraint writes one constraint.
func EncodeConstraint(w *Writer, c solver.Constraint) {
	w.Byte(byte(c.Op))
	EncodeLinExpr(w, c.E)
}

// DecodeConstraint reads one constraint.
func DecodeConstraint(r *Reader) (solver.Constraint, error) {
	op, err := r.Byte()
	if err != nil {
		return solver.Constraint{}, err
	}
	e, err := DecodeLinExpr(r)
	if err != nil {
		return solver.Constraint{}, err
	}
	return solver.Constraint{Op: solver.ConstraintOp(op), E: e}, nil
}

// EncodeConstraints writes a constraint slice.
func EncodeConstraints(w *Writer, cons []solver.Constraint) {
	w.Int(len(cons))
	for _, c := range cons {
		EncodeConstraint(w, c)
	}
}

// DecodeConstraints reads a constraint slice.
func DecodeConstraints(r *Reader) ([]solver.Constraint, error) {
	n, err := r.Int()
	if err != nil {
		return nil, err
	}
	if n < 0 || n > r.Len() {
		return nil, fmt.Errorf("snapshot: constraint count %d out of range", n)
	}
	if n == 0 {
		return nil, nil
	}
	cons := make([]solver.Constraint, n)
	for i := range cons {
		if cons[i], err = DecodeConstraint(r); err != nil {
			return nil, err
		}
	}
	return cons, nil
}

// EncodeModel writes a model in sorted variable order (nil allowed).
func EncodeModel(w *Writer, m solver.Model) {
	if m == nil {
		w.Varint(-1)
		return
	}
	vars := make([]solver.Var, 0, len(m))
	for v := range m {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })
	w.Varint(int64(len(vars)))
	for _, v := range vars {
		w.Varint(int64(v))
		w.Varint(m[v])
	}
}

// DecodeModel reads a model (nil when encoded as nil).
func DecodeModel(r *Reader) (solver.Model, error) {
	n, err := r.Varint()
	if err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, nil
	}
	if n > int64(r.Len()) {
		return nil, fmt.Errorf("snapshot: model size %d out of range", n)
	}
	m := make(solver.Model, n)
	for i := int64(0); i < n; i++ {
		v, err := r.Varint()
		if err != nil {
			return nil, err
		}
		val, err := r.Varint()
		if err != nil {
			return nil, err
		}
		m[solver.Var(v)] = val
	}
	return m, nil
}

// EncodeInput writes a concrete program input (nil allowed).
func EncodeInput(w *Writer, in *interp.Input) {
	if in == nil {
		w.Bool(false)
		return
	}
	w.Bool(true)
	EncodeIntMap(w, in.Ints)
	EncodeStrMap(w, in.Strs)
	EncodeStrMap(w, in.Env)
	w.Int(len(in.Args))
	for _, a := range in.Args {
		w.String(a)
	}
}

// DecodeInput reads a concrete program input (nil when absent).
func DecodeInput(r *Reader) (*interp.Input, error) {
	present, err := r.Bool()
	if err != nil || !present {
		return nil, err
	}
	in := &interp.Input{}
	if in.Ints, err = DecodeIntMap(r); err != nil {
		return nil, err
	}
	if in.Strs, err = DecodeStrMap(r); err != nil {
		return nil, err
	}
	if in.Env, err = DecodeStrMap(r); err != nil {
		return nil, err
	}
	n, err := r.Int()
	if err != nil {
		return nil, err
	}
	if n < 0 || n > r.Len() {
		return nil, fmt.Errorf("snapshot: arg count %d out of range", n)
	}
	for i := 0; i < n; i++ {
		a, err := r.String()
		if err != nil {
			return nil, err
		}
		in.Args = append(in.Args, a)
	}
	return in, nil
}

// EncodeIntMap writes a string-to-int64 map in sorted key order.
func EncodeIntMap(w *Writer, m map[string]int64) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.Int(len(keys))
	for _, k := range keys {
		w.Sym(k)
		w.Varint(m[k])
	}
}

// DecodeIntMap reads a string-to-int64 map.
func DecodeIntMap(r *Reader) (map[string]int64, error) {
	n, err := r.Int()
	if err != nil {
		return nil, err
	}
	if n < 0 || n > r.Len() {
		return nil, fmt.Errorf("snapshot: map size %d out of range", n)
	}
	m := make(map[string]int64, n)
	for i := 0; i < n; i++ {
		k, err := r.Sym()
		if err != nil {
			return nil, err
		}
		v, err := r.Varint()
		if err != nil {
			return nil, err
		}
		m[k] = v
	}
	return m, nil
}

// EncodeStrMap writes a string-to-string map in sorted key order.
func EncodeStrMap(w *Writer, m map[string]string) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.Int(len(keys))
	for _, k := range keys {
		w.Sym(k)
		w.String(m[k])
	}
}

// DecodeStrMap reads a string-to-string map.
func DecodeStrMap(r *Reader) (map[string]string, error) {
	n, err := r.Int()
	if err != nil {
		return nil, err
	}
	if n < 0 || n > r.Len() {
		return nil, fmt.Errorf("snapshot: map size %d out of range", n)
	}
	m := make(map[string]string, n)
	for i := 0; i < n; i++ {
		k, err := r.Sym()
		if err != nil {
			return nil, err
		}
		v, err := r.String()
		if err != nil {
			return nil, err
		}
		m[k] = v
	}
	return m, nil
}
