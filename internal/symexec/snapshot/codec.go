// Package snapshot is the compact wire codec of the distributed frontier:
// it serializes programs, candidate paths, solver terms, and (through the
// symexec package's wire layer) forked execution states so coordinator and
// worker processes can exchange them over a socket. The encoding reuses the
// corpus layer's primitives — uvarint/zigzag integers, length-prefixed
// strings, a bounds-checked reader that turns corrupt bytes into errors
// rather than panics — and adds a string-interning dictionary so repeated
// names (function names, variable labels, channel keys) cost one varint
// after first use.
//
// The codec is deterministic: encoding the same value twice produces the
// same bytes (maps are emitted in sorted key order), which lets tests and
// the dispatch layer compare payloads directly.
package snapshot

import (
	"fmt"
	"math"

	"repro/internal/corpus"
)

// Writer accumulates one encoded payload.
type Writer struct {
	buf  []byte
	syms map[string]uint64
}

// NewWriter returns an empty writer.
func NewWriter() *Writer {
	return &Writer{syms: make(map[string]uint64)}
}

// Bytes returns the encoded payload. The slice aliases the writer's buffer.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Byte appends one raw byte.
func (w *Writer) Byte(b byte) { w.buf = append(w.buf, b) }

// Bool appends a bool as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.Byte(1)
	} else {
		w.Byte(0)
	}
}

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(v uint64) {
	for v >= 0x80 {
		w.buf = append(w.buf, byte(v)|0x80)
		v >>= 7
	}
	w.buf = append(w.buf, byte(v))
}

// Varint appends a zigzag varint.
func (w *Writer) Varint(v int64) {
	w.Uvarint(uint64(v)<<1 ^ uint64(v>>63))
}

// Int appends an int as a zigzag varint.
func (w *Writer) Int(v int) { w.Varint(int64(v)) }

// Float appends a float64 as its IEEE bits.
func (w *Writer) Float(v float64) { w.Uvarint(math.Float64bits(v)) }

// String appends a uvarint-length-prefixed string (no interning).
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Blob appends a uvarint-length-prefixed byte slice (for nesting one
// encoded payload — a checkpoint, a shard — inside another).
func (w *Writer) Blob(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// Sym appends an interned string: a dictionary index for strings seen
// before, or the next index followed by the raw bytes on first use.
func (w *Writer) Sym(s string) {
	if id, ok := w.syms[s]; ok {
		w.Uvarint(id)
		return
	}
	id := uint64(len(w.syms))
	w.syms[s] = id
	w.Uvarint(id)
	w.String(s)
}

// Reader decodes a payload produced by Writer. It embeds the corpus layer's
// bounds-checked cursor, so malformed input yields descriptive errors.
type Reader struct {
	*corpus.ByteReader
	syms []string
}

// NewReader returns a cursor over b.
func NewReader(b []byte) *Reader {
	return &Reader{ByteReader: corpus.NewByteReader(b)}
}

// Bool reads one bool byte (anything nonzero decodes as true).
func (r *Reader) Bool() (bool, error) {
	b, err := r.Byte()
	return b != 0, err
}

// Int reads a zigzag varint as an int.
func (r *Reader) Int() (int, error) {
	v, err := r.Varint()
	return int(v), err
}

// Float reads a float64 from its IEEE bits.
func (r *Reader) Float() (float64, error) {
	bits, err := r.Uvarint()
	return math.Float64frombits(bits), err
}

// Sym reads an interned string, extending the dictionary on first use.
func (r *Reader) Sym() (string, error) {
	id, err := r.Uvarint()
	if err != nil {
		return "", err
	}
	if id < uint64(len(r.syms)) {
		return r.syms[id], nil
	}
	if id != uint64(len(r.syms)) {
		return "", fmt.Errorf("snapshot: symbol id %d out of order (dictionary has %d)", id, len(r.syms))
	}
	s, err := r.String()
	if err != nil {
		return "", err
	}
	r.syms = append(r.syms, s)
	return s, nil
}

// Blob reads a length-prefixed byte slice written by Writer.Blob. The
// returned slice is a copy — it stays valid after the source buffer is
// recycled.
func (r *Reader) Blob() ([]byte, error) {
	s, err := r.String()
	if err != nil {
		return nil, err
	}
	return []byte(s), nil
}
